#!/usr/bin/env bash
# End-to-end smoke of the resident service: start gga_serve, run the
# Figure 5 manifest as a remote job over HTTP with two workers — the
# first dies holding its lease to exercise expiry and retry — and
# byte-diff the served render against the offline gga_worker + gga_merge
# pipeline. Also submits a local single-plan job and checks /stats
# telemetry is live.
#
# Usage: scripts/serve_smoke.sh [scale]
#   scale   manifest scale (default 0.05)
#   BUILD_DIR=... to reuse/redirect the build tree (default: build).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
scale=${1:-0.05}
build_dir=${BUILD_DIR:-"$repo_root/build"}
work=$(mktemp -d)

cleanup() {
  # The smoke leaves nothing running: kill the service and any workers.
  for pid in "${serve_pid:-}" "${worker_pid:-}" "${crashy_pid:-}"; do
    if [[ -n "$pid" ]]; then
      kill "$pid" 2>/dev/null || true
    fi
  done
  wait 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

cmake -B "$build_dir" -S "$repo_root" > /dev/null
cmake --build "$build_dir" -j --target \
  gga_manifest gga_worker gga_merge gga_serve_bin > /dev/null

# --- offline reference: the single-process pipeline ----------------------

"$build_dir/gga_manifest" fig5 --scale "$scale" --out "$work/fig5.json"
"$build_dir/gga_worker" --manifest "$work/fig5.json" --shard 0/1 \
  --threads 4 --out "$work/all.json"
"$build_dir/gga_merge" --manifest "$work/fig5.json" --render \
  "$work/all.json" > "$work/reference.txt"

# --- resident service ----------------------------------------------------

# An 8 s lease: long enough that a slow CI machine's healthy shard run
# does not burn attempts, short enough that the killed worker's orphaned
# shard is reassigned quickly.
"$build_dir/gga_serve" --port 0 --port-file "$work/port" \
  --threads 2 --lease-ms 8000 --retry-base-ms 100 --retry-cap-ms 500 \
  --max-attempts 10 --tick-ms 50 &
serve_pid=$!
for _ in $(seq 100); do
  [[ -s "$work/port" ]] && break
  sleep 0.1
done
port=$(cat "$work/port")
echo "serve up on port $port"

# The first worker connects alone, so it is guaranteed to win the first
# shard assignment — on which it dies (exit 17), leaving an expired
# lease for the orchestrator to notice and reassign.
"$build_dir/gga_worker" --connect "$port" --name crashy --poll-ms 50 \
  --exit-after-assignments 1 &
crashy_pid=$!

# Submit the remote job (2 shards) and a local single-plan job.
python3 - "$port" "$work" <<'EOF'
import json, sys, urllib.request

port, work = sys.argv[1], sys.argv[2]
base = f"http://127.0.0.1:{port}"

def post(path, body):
    req = urllib.request.Request(base + path, data=json.dumps(body).encode(),
                                 method="POST")
    with urllib.request.urlopen(req) as r:
        return r.status, r.read().decode()

with open(f"{work}/fig5.json") as f:
    manifest = json.load(f)

status, text = post("/v1/jobs", {"manifest": manifest,
                                 "execution": "remote", "shards": 2,
                                 "tenant": "smoke"})
assert status == 202, (status, text)
remote = json.loads(text)["id"]
print(f"remote job {remote} admitted")

status, text = post("/v1/jobs", {"plan": manifest["units"][0],
                                 "tenant": "smoke"})
assert status == 202, (status, text)
local = json.loads(text)["id"]

with open(f"{work}/jobs", "w") as f:
    f.write(f"{remote} {local}\n")
EOF

# The crash hook must actually fire (exit code 17) once the job exists.
set +e
wait "$crashy_pid"
crashy_status=$?
set -e
crashy_pid=""
if [[ "$crashy_status" -ne 17 ]]; then
  echo "crashy worker exited with $crashy_status, expected 17" >&2
  exit 1
fi
echo "crashy worker died on schedule (exit 17)"

# The second worker runs the other shard at once and the orphaned shard
# after its lease expires; its idle window must outlast that lease.
"$build_dir/gga_worker" --connect "$port" --name steady --poll-ms 50 \
  --threads 4 --idle-exit-ms 20000 &
worker_pid=$!

# --- drive the jobs to completion over HTTP ------------------------------

python3 - "$port" "$work" <<'EOF'
import json, sys, time, urllib.request

port, work = sys.argv[1], sys.argv[2]
base = f"http://127.0.0.1:{port}"

def get(path):
    with urllib.request.urlopen(base + path) as r:
        return r.status, r.read().decode()

with open(f"{work}/jobs") as f:
    remote, local = f.read().split()

deadline = time.time() + 600
for jid in (remote, local):
    since = 0
    while True:
        status, text = get(f"/v1/jobs/{jid}?wait_ms=2000&since={since}")
        assert status == 200, (status, text)
        snap = json.loads(text)
        if snap["state"] in ("done", "failed", "canceled"):
            assert snap["state"] == "done", snap
            break
        since = snap["version"]
        assert time.time() < deadline, f"timed out waiting for {jid}"
print("both jobs done")

status, text = get(f"/v1/jobs/{remote}/render")
assert status == 200, (status, text)
with open(f"{work}/served.txt", "w") as f:
    f.write(text)

status, text = get("/stats")
assert status == 200, (status, text)
stats = json.loads(text)
assert stats["jobs"]["done"] == 2, stats["jobs"]
assert stats["executor"]["completed_total"] >= 1, stats["executor"]
assert stats["graph_store"]["misses"] >= 1, stats["graph_store"]
assert stats["orchestrator"]["completed_shards_total"] == 2, \
    stats["orchestrator"]
# The killed worker's lease must have expired and been retried.
assert stats["orchestrator"]["expired_leases_total"] >= 1, \
    stats["orchestrator"]
assert stats["orchestrator"]["retries_total"] >= 1, stats["orchestrator"]
assert stats["unit_latency_ms_by_app"], "no latency histograms"
print("orchestrator stats:", json.dumps(stats["orchestrator"]))
EOF

# --- byte-identity of the served render ----------------------------------

diff "$work/reference.txt" "$work/served.txt"
echo "served remote-job render is byte-identical to the offline pipeline"

kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
echo "serve smoke passed"
