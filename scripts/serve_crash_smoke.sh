#!/usr/bin/env bash
# Crash-recovery smoke of the resident service: prove that a gga_serve
# killed without warning loses no work. Phase A arms a GGA_FAULTS crash
# point so the server _exits(41) immediately after journaling an
# admission — the job must be back after restart. Phase B runs the
# Figure 5 manifest as a 2-shard remote job, lets one worker finish one
# shard, SIGKILLs the server while the other shard's lease is held,
# restarts on the same --state-dir, and asserts the recovered job
# finishes with ZERO completed shards re-executed (orchestrator
# counters) and a /render byte-identical to the offline pipeline. Also
# smokes --worker-token (an unauthenticated register must 401).
#
# Usage: scripts/serve_crash_smoke.sh [scale]
#   scale   manifest scale (default 0.05)
#   BUILD_DIR=... to reuse/redirect the build tree (default: build).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
scale=${1:-0.05}
build_dir=${BUILD_DIR:-"$repo_root/build"}
work=$(mktemp -d)
state="$work/state"

cleanup() {
  for pid in "${serve_pid:-}" "${worker_pid:-}"; do
    if [[ -n "$pid" ]]; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  wait 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

cmake -B "$build_dir" -S "$repo_root" > /dev/null
cmake --build "$build_dir" -j --target \
  gga_manifest gga_worker gga_merge gga_serve_bin > /dev/null

# --- offline reference: the single-process pipeline ----------------------

"$build_dir/gga_manifest" fig5 --scale "$scale" --out "$work/fig5.json"
"$build_dir/gga_worker" --manifest "$work/fig5.json" --shard 0/1 \
  --threads 4 --out "$work/all.json"
"$build_dir/gga_merge" --manifest "$work/fig5.json" --render \
  "$work/all.json" > "$work/reference.txt"

start_serve() {
  # $1: extra env assignment ("" for none). Writes the bound port to
  # $work/port and sets serve_pid.
  rm -f "$work/port"
  env ${1:+"$1"} "$build_dir/gga_serve" --port 0 --port-file "$work/port" \
    --state-dir "$state" --worker-token hunter2 \
    --threads 2 --lease-ms 8000 --retry-base-ms 100 --retry-cap-ms 500 \
    --max-attempts 10 --tick-ms 50 --drain-ms 2000 &
  serve_pid=$!
  for _ in $(seq 100); do
    [[ -s "$work/port" ]] && break
    sleep 0.1
  done
  port=$(cat "$work/port")
}

submit_remote() {
  # Submits the fig5 manifest as a 2-shard remote job; prints the job id.
  python3 - "$port" "$work" <<'EOF'
import json, sys, urllib.request
port, work = sys.argv[1], sys.argv[2]
with open(f"{work}/fig5.json") as f:
    manifest = json.load(f)
body = json.dumps({"manifest": manifest, "execution": "remote",
                   "shards": 2, "tenant": "smoke"}).encode()
req = urllib.request.Request(f"http://127.0.0.1:{port}/v1/jobs",
                             data=body, method="POST")
with urllib.request.urlopen(req) as r:
    assert r.status == 202, r.status
    print(json.loads(r.read().decode())["id"])
EOF
}

# --- phase A: crash between journal appends ------------------------------

echo "phase A: crash point after the admission append"
start_serve "GGA_FAULTS=crash.journal.after-append=1"

set +e
submit_remote > "$work/job_a" 2>/dev/null
submit_status=$?
wait "$serve_pid"
serve_status=$?
set -e
serve_pid=""
if [[ "$serve_status" -ne 41 ]]; then
  echo "serve exited with $serve_status, expected the crash point's 41" >&2
  exit 1
fi
# The client may or may not have gotten its 202 out before the process
# died — either way the admission record is durable.
echo "serve died at the crash point (exit 41, submit status $submit_status)"

start_serve ""
python3 - "$port" <<'EOF'
import json, sys, urllib.request
port = sys.argv[1]
with urllib.request.urlopen(f"http://127.0.0.1:{port}/stats") as r:
    stats = json.loads(r.read().decode())
assert stats["journal"]["recovered_jobs"] == 1, stats["journal"]
assert stats["jobs"]["total"] == 1, stats["jobs"]
print("phase A: admitted job survived the crash")
EOF
# Reuse the recovered job for phase B: it is the same 2-shard fig5 job.
job=$(python3 -c '
import json, sys, urllib.request
with urllib.request.urlopen(f"http://127.0.0.1:{sys.argv[1]}/v1/jobs") as r:
    jobs = json.loads(r.read().decode())["jobs"]
assert len(jobs) == 1, jobs
print(jobs[0]["id"])' "$port")
echo "phase A passed (recovered $job)"

# --- worker auth smoke ---------------------------------------------------

python3 - "$port" <<'EOF'
import json, sys, urllib.error, urllib.request
port = sys.argv[1]
req = urllib.request.Request(
    f"http://127.0.0.1:{port}/v1/workers/register",
    data=json.dumps({"name": "intruder"}).encode(), method="POST")
try:
    urllib.request.urlopen(req)
    raise SystemExit("unauthenticated register was accepted")
except urllib.error.HTTPError as e:
    assert e.code == 401, e.code
print("unauthenticated worker register correctly rejected (401)")
EOF

# --- phase B: SIGKILL mid-remote-job with a held lease -------------------

echo "phase B: one shard done, then SIGKILL with the other lease held"
"$build_dir/gga_worker" --connect "$port" --token hunter2 --name first \
  --poll-ms 50 --threads 4 --idle-exit-ms 3000 &
worker_pid=$!

# Wait until exactly one shard completed and the other is still leased
# out — the most damning instant to die.
python3 - "$port" <<'EOF'
import json, sys, time, urllib.request
port = sys.argv[1]
deadline = time.time() + 600
while True:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/stats") as r:
        orch = json.loads(r.read().decode())["orchestrator"]
    if orch["completed_shards_total"] == 1 and orch["shards_assigned"] == 1:
        print("one shard done, one lease held:", json.dumps(orch))
        break
    assert orch["completed_shards_total"] < 2, orch
    assert time.time() < deadline, f"timed out: {orch}"
    time.sleep(0.05)
EOF

kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "serve SIGKILLed"
# The orphaned worker exits on its own once its polls start failing.
wait "$worker_pid" 2>/dev/null || true
worker_pid=""

start_serve ""
echo "serve restarted on the same state dir (port $port)"

python3 - "$port" <<'EOF'
import json, sys, urllib.request
port = sys.argv[1]
with urllib.request.urlopen(f"http://127.0.0.1:{port}/stats") as r:
    stats = json.loads(r.read().decode())
assert stats["journal"]["recovered_jobs"] == 1, stats["journal"]
orch = stats["orchestrator"]
# The completed shard came back from the journal, not from re-execution.
assert orch["recovered_parts_total"] == 1, orch
assert orch["completed_shards_total"] == 0, orch
print("recovered:", json.dumps(orch))
EOF

"$build_dir/gga_worker" --connect "$port" --token hunter2 --name second \
  --poll-ms 50 --threads 4 --idle-exit-ms 20000 &
worker_pid=$!

python3 - "$port" "$work" "$job" <<'EOF'
import json, sys, time, urllib.request
port, work, job = sys.argv[1], sys.argv[2], sys.argv[3]
base = f"http://127.0.0.1:{port}"

def get(path):
    with urllib.request.urlopen(base + path) as r:
        return r.status, r.read().decode()

deadline = time.time() + 600
since = 0
while True:
    status, text = get(f"/v1/jobs/{job}?wait_ms=2000&since={since}")
    assert status == 200, (status, text)
    snap = json.loads(text)
    if snap["state"] in ("done", "failed", "canceled"):
        assert snap["state"] == "done", snap
        break
    since = snap["version"]
    assert time.time() < deadline, f"timed out waiting for {job}"

status, text = get("/stats")
assert status == 200, (status, text)
orch = json.loads(text)["orchestrator"]
# ZERO recovered shards re-executed: this process ran exactly one.
assert orch["completed_shards_total"] == 1, orch
assert orch["recovered_parts_total"] == 1, orch

status, text = get(f"/v1/jobs/{job}/render")
assert status == 200, (status, text)
with open(f"{work}/served.txt", "w") as f:
    f.write(text)
print("recovered job done; final orchestrator stats:", json.dumps(orch))
EOF

diff "$work/reference.txt" "$work/served.txt"
echo "post-crash render is byte-identical to the offline pipeline"

kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
echo "serve crash smoke passed"
