#!/usr/bin/env bash
# Build the Release benchmarks and refresh the machine-readable perf
# trajectories tracked across PRs:
#   BENCH_engine.json  event-engine events/sec, wheel-vs-heap speedup,
#                      end-to-end PR/CC/SSSP run times (micro_substrate)
#   BENCH_graph.json   graph cold-start costs: synthesis, serial vs
#                      parallel CSR build, snapshot save/load (graph_build)
#   BENCH_serve.json   served throughput + per-lane latency percentiles
#                      under a closed-loop client mix (gga_serve + gga_loadgen)
#
# Usage: scripts/bench.sh [engine|graph|serve|all] [output.json]
#   suite default: all (outputs land at the repo root under the names
#   above; a second argument redirects the single-suite runs)
#   BUILD_DIR=... to reuse/redirect the build tree (default: build-bench).
#   BENCH_THREADS=N to pin the graph suite's thread budget (default:
#   the binary's GGA_BUILD_THREADS/GGA_SESSION_THREADS resolution).
#   BENCH_SERVE_SECONDS=S per-phase load duration (default 10)
#   BENCH_SERVE_SCALE=S / BENCH_SERVE_BATCH_SCALE=S workload scales for
#   the serve suite (defaults: the load generator's 0.05 / 0.1)
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
suite=${1:-all}
build_dir=${BUILD_DIR:-"$repo_root/build-bench"}

case "$suite" in
  engine|graph|serve|all) ;;
  *) echo "usage: scripts/bench.sh [engine|graph|serve|all] [output.json]" >&2
     exit 2 ;;
esac
if [[ "$suite" == all && $# -gt 1 ]]; then
  echo "a single output path needs a single suite (engine, graph, or serve)" >&2
  exit 2
fi

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release

if [[ "$suite" == engine || "$suite" == all ]]; then
  out=${2:-"$repo_root/BENCH_engine.json"}
  cmake --build "$build_dir" -j --target micro_substrate
  "$build_dir/micro_substrate" --json "$out"
  echo "wrote $out"
fi

if [[ "$suite" == graph || "$suite" == all ]]; then
  out=${2:-"$repo_root/BENCH_graph.json"}
  cmake --build "$build_dir" -j --target graph_build
  graph_args=(--json "$out")
  if [[ -n "${BENCH_THREADS:-}" ]]; then
    graph_args+=(--threads "$BENCH_THREADS")
  fi
  "$build_dir/graph_build" "${graph_args[@]}"
  echo "wrote $out"
fi

if [[ "$suite" == serve || "$suite" == all ]]; then
  out=${2:-"$repo_root/BENCH_serve.json"}
  cmake --build "$build_dir" -j --target gga_serve_bin gga_loadgen
  port_file=$(mktemp)
  rm -f "$port_file"
  "$build_dir/gga_serve" --port 0 --port-file "$port_file" --threads 4 &
  serve_pid=$!
  trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.2
  done
  if [[ ! -s "$port_file" ]]; then
    echo "gga_serve did not write its port file" >&2
    exit 1
  fi
  loadgen_args=(--port "$(cat "$port_file")"
                --duration-s "${BENCH_SERVE_SECONDS:-10}"
                --json "$out")
  if [[ -n "${BENCH_SERVE_SCALE:-}" ]]; then
    loadgen_args+=(--scale "$BENCH_SERVE_SCALE")
  fi
  if [[ -n "${BENCH_SERVE_BATCH_SCALE:-}" ]]; then
    loadgen_args+=(--batch-scale "$BENCH_SERVE_BATCH_SCALE")
  fi
  "$build_dir/gga_loadgen" "${loadgen_args[@]}"
  kill "$serve_pid" 2>/dev/null || true
  wait "$serve_pid" 2>/dev/null || true
  trap - EXIT
  rm -f "$port_file"
  echo "wrote $out"
fi
