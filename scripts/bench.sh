#!/usr/bin/env bash
# Build the Release benchmarks and refresh BENCH_engine.json, the
# machine-readable perf trajectory tracked across PRs (event-engine
# events/sec, ns/event, wheel-vs-heap speedup, end-to-end run times).
#
# Usage: scripts/bench.sh [output.json]
#   BUILD_DIR=... to reuse/redirect the build tree (default: build-bench).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
out=${1:-"$repo_root/BENCH_engine.json"}
build_dir=${BUILD_DIR:-"$repo_root/build-bench"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j --target micro_substrate
"$build_dir/micro_substrate" --json "$out"
echo "wrote $out"
