#!/usr/bin/env bash
# Build the Release benchmarks and refresh the machine-readable perf
# trajectories tracked across PRs:
#   BENCH_engine.json  event-engine events/sec, wheel-vs-heap speedup,
#                      end-to-end PR/CC/SSSP run times (micro_substrate)
#   BENCH_graph.json   graph cold-start costs: synthesis, serial vs
#                      parallel CSR build, snapshot save/load (graph_build)
#
# Usage: scripts/bench.sh [engine|graph|all] [output.json]
#   suite default: all (outputs land at the repo root under the names
#   above; a second argument redirects the single-suite runs)
#   BUILD_DIR=... to reuse/redirect the build tree (default: build-bench).
#   BENCH_THREADS=N to pin the graph suite's thread budget (default:
#   the binary's GGA_BUILD_THREADS/GGA_SESSION_THREADS resolution).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
suite=${1:-all}
build_dir=${BUILD_DIR:-"$repo_root/build-bench"}

case "$suite" in
  engine|graph|all) ;;
  *) echo "usage: scripts/bench.sh [engine|graph|all] [output.json]" >&2
     exit 2 ;;
esac
if [[ "$suite" == all && $# -gt 1 ]]; then
  echo "a single output path needs a single suite (engine or graph)" >&2
  exit 2
fi

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release

if [[ "$suite" == engine || "$suite" == all ]]; then
  out=${2:-"$repo_root/BENCH_engine.json"}
  cmake --build "$build_dir" -j --target micro_substrate
  "$build_dir/micro_substrate" --json "$out"
  echo "wrote $out"
fi

if [[ "$suite" == graph || "$suite" == all ]]; then
  out=${2:-"$repo_root/BENCH_graph.json"}
  cmake --build "$build_dir" -j --target graph_build
  graph_args=(--json "$out")
  if [[ -n "${BENCH_THREADS:-}" ]]; then
    graph_args+=(--threads "$BENCH_THREADS")
  fi
  "$build_dir/graph_build" "${graph_args[@]}"
  echo "wrote $out"
fi
