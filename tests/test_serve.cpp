/**
 * @file
 * Tests for the resident service: HTTP transport, request routing
 * (driven through the socketless Service::handle seam), multi-tenant
 * admission, local job lifecycle with long-poll and result streaming,
 * and the remote orchestration protocol — assignment leases, part
 * verification, duplicate discard, retry with backoff, and the
 * byte-identity of a remotely merged job to an in-process runManifest.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "eval/run.hpp"
#include "harness/workloads.hpp"
#include "support/faults.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "serve/worker_client.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace gga {
namespace {

WorkUnit
unitFor(AppId app, const char* cfg, double scale = 0.05)
{
    WorkUnit u;
    u.app = app;
    u.preset = GraphPreset::Dct;
    u.scale = scale;
    u.config = parseConfig(cfg);
    return u;
}

/** 4 fast units on the small Dct preset. */
Manifest
tinyManifest()
{
    Manifest m;
    m.add(unitFor(AppId::Mis, "SG1"));
    m.add(unitFor(AppId::Mis, "TG0"));
    m.add(unitFor(AppId::Cc, "DG1"));
    m.add(unitFor(AppId::Cc, "DD1"));
    return m;
}

HttpRequest
request(std::string method, std::string path,
        std::map<std::string, std::string> query = {},
        std::string body = {},
        std::map<std::string, std::string> headers = {})
{
    HttpRequest r;
    r.method = std::move(method);
    r.path = std::move(path);
    r.target = r.path;
    r.query = std::move(query);
    r.body = std::move(body);
    r.headers = std::move(headers);
    return r;
}

ServiceOptions
quickOptions()
{
    ServiceOptions o;
    o.port = 0;
    o.session.threads = 2;
    o.retry.leaseMs = 40;
    o.retry.retryBaseMs = 1;
    o.retry.retryCapMs = 4;
    o.retry.maxAttempts = 3;
    o.tickMs = 5;
    return o;
}

Json
parseBody(const HttpResponse& r)
{
    return Json::parse(r.body);
}

/** Poll job status through handle() until terminal; returns the state. */
std::string
awaitTerminal(Service& svc, const std::string& id)
{
    std::uint64_t since = 0;
    for (int i = 0; i < 600; ++i) {
        const HttpResponse r = svc.handle(request(
            "GET", "/v1/jobs/" + id,
            {{"wait_ms", "200"}, {"since", std::to_string(since)}}));
        EXPECT_EQ(r.status, 200) << r.body;
        const Json j = parseBody(r);
        const std::string state = j.at("state").asString();
        if (state == "done" || state == "failed" || state == "canceled")
            return state;
        since = j.at("version").asU64();
    }
    return "timeout";
}

// --- transport -----------------------------------------------------------

TEST(ServeHttp, SocketedRequestsRouteAndKeepAliveWorks)
{
    Service svc(quickOptions());
    svc.start();
    ASSERT_NE(svc.port(), 0);

    const HttpResponse ok = httpRequest(svc.port(), "GET", "/healthz");
    EXPECT_EQ(ok.status, 200);
    EXPECT_EQ(parseBody(ok).at("status").asString(), "ok");

    EXPECT_EQ(httpRequest(svc.port(), "GET", "/nope").status, 404);
    EXPECT_EQ(httpRequest(svc.port(), "POST", "/healthz").status, 405);
    // A malformed JSON body is a client error, not a connection killer.
    EXPECT_EQ(httpRequest(svc.port(), "POST", "/v1/jobs", "{oops").status,
              400);

    const HttpResponse stats = httpRequest(svc.port(), "GET", "/stats");
    EXPECT_EQ(stats.status, 200);
    EXPECT_EQ(parseBody(stats).at("jobs").at("total").asU64(), 0u);

    svc.stop();
    EXPECT_THROW(httpRequest(svc.port(), "GET", "/healthz"), ServeError);
}

TEST(ServeHttp, QueryParametersDecode)
{
    Service svc(quickOptions());
    svc.start();
    // tenant filter percent-decodes and round-trips through the listing
    const HttpResponse r =
        httpRequest(svc.port(), "GET", "/v1/jobs?tenant=team%20a");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(parseBody(r).at("jobs").asArray().size(), 0u);
}

// --- submit validation ---------------------------------------------------

TEST(ServeSubmit, RejectsMalformedBodies)
{
    Service svc(quickOptions());
    const Manifest m = tinyManifest();
    const std::string manifestText = m.toJson().dump();

    const auto post = [&](const std::string& body) {
        return svc.handle(request("POST", "/v1/jobs", {}, body)).status;
    };
    EXPECT_EQ(post("{}"), 400); // neither plan nor manifest
    EXPECT_EQ(post("{\"plan\": " + m.units()[0].toJson().dump() +
                   ", \"manifest\": " + manifestText + "}"),
              400); // both
    EXPECT_EQ(post("{\"manifest\": " + manifestText +
                   ", \"execution\": \"elsewhere\"}"),
              400);
    EXPECT_EQ(post("{\"manifest\": " + manifestText +
                   ", \"shards\": 2}"),
              400); // shards without remote
    EXPECT_EQ(post("{\"manifest\": " + manifestText +
                   ", \"execution\": \"remote\", \"shards\": 99}"),
              400); // more shards than units
    EXPECT_EQ(post("{\"manifest\": {\"units\": []}}"), 400); // empty
    EXPECT_EQ(post("{\"plan\": {\"app\": \"NOPE\"}}"), 400);
}

TEST(ServeSubmit, BadPriorityIs400AndStatsExposeExecutorLanes)
{
    Service svc(quickOptions());
    const std::string manifestText = tinyManifest().toJson().dump();
    EXPECT_EQ(svc.handle(request("POST", "/v1/jobs", {},
                                 "{\"manifest\": " + manifestText +
                                     ", \"priority\": \"urgent\"}"))
                  .status,
              400);

    // A valid priority admits; afterwards the executor section carries
    // the scheduler's lane depths and steal counters.
    const HttpResponse sub = svc.handle(
        request("POST", "/v1/jobs", {},
                "{\"manifest\": " + manifestText +
                    ", \"priority\": \"interactive\"}"));
    ASSERT_EQ(sub.status, 202) << sub.body;
    EXPECT_EQ(awaitTerminal(svc, parseBody(sub).at("id").asString()),
              "done");

    const Json stats = parseBody(svc.handle(request("GET", "/stats")));
    const Json& exec = stats.at("executor");
    ASSERT_NE(exec.find("interactive_depth"), nullptr);
    ASSERT_NE(exec.find("batch_depth"), nullptr);
    ASSERT_NE(exec.find("steals_total"), nullptr);
    ASSERT_NE(exec.find("steal_failures"), nullptr);
    ASSERT_NE(exec.find("pinned"), nullptr);
    ASSERT_NE(exec.find("batch_niced"), nullptr);
    // The job drained, so both lanes are idle again.
    EXPECT_EQ(exec.at("interactive_depth").asU64(), 0u);
    EXPECT_EQ(exec.at("batch_depth").asU64(), 0u);
}

TEST(ServeSubmit, UnknownJobIs404)
{
    Service svc(quickOptions());
    EXPECT_EQ(svc.handle(request("GET", "/v1/jobs/job-99")).status, 404);
    EXPECT_EQ(svc.handle(request("GET", "/v1/jobs/job-99/results")).status,
              404);
    EXPECT_EQ(svc.handle(request("GET", "/v1/jobs/job-99/render")).status,
              404);
    EXPECT_EQ(svc.handle(request("DELETE", "/v1/jobs/job-99")).status,
              404);
}

// --- multi-tenant admission ----------------------------------------------

TEST(ServeAdmission, PerTenantBoundRejectsWith429)
{
    ServiceOptions o = quickOptions();
    o.maxQueuedPerTenant = 1;
    Service svc(o);
    // Remote jobs with no connected workers stay live indefinitely.
    const std::string body = "{\"manifest\": " +
                             tinyManifest().toJson().dump() +
                             ", \"execution\": \"remote\", \"shards\": 2}";

    const HttpResponse first = svc.handle(request(
        "POST", "/v1/jobs", {}, body, {{"x-gga-tenant", "alice"}}));
    ASSERT_EQ(first.status, 202) << first.body;
    const std::string id = parseBody(first).at("id").asString();
    EXPECT_EQ(parseBody(first).at("tenant").asString(), "alice");

    // Same tenant: over quota. Different tenant: admitted.
    EXPECT_EQ(svc.handle(request("POST", "/v1/jobs", {}, body,
                                 {{"x-gga-tenant", "alice"}}))
                  .status,
              429);
    EXPECT_EQ(svc.handle(request("POST", "/v1/jobs", {}, body,
                                 {{"x-gga-tenant", "bob"}}))
                  .status,
              202);

    // Canceling frees the quota.
    EXPECT_EQ(svc.handle(request("DELETE", "/v1/jobs/" + id)).status, 200);
    EXPECT_EQ(svc.handle(request("POST", "/v1/jobs", {}, body,
                                 {{"x-gga-tenant", "alice"}}))
                  .status,
              202);

    // The listing filters by tenant.
    const HttpResponse listed = svc.handle(
        request("GET", "/v1/jobs", {{"tenant", "bob"}}));
    EXPECT_EQ(parseBody(listed).at("jobs").asArray().size(), 1u);
}

// --- local jobs ----------------------------------------------------------

TEST(ServeLocal, JobRunsToDoneAndStreamsRows)
{
    Service svc(quickOptions());
    const Manifest manifest = tinyManifest();

    const HttpResponse sub = svc.handle(
        request("POST", "/v1/jobs", {},
                "{\"manifest\": " + manifest.toJson().dump() + "}"));
    ASSERT_EQ(sub.status, 202) << sub.body;
    const Json snap = parseBody(sub);
    const std::string id = snap.at("id").asString();
    EXPECT_EQ(snap.at("tenant").asString(), "default");
    EXPECT_EQ(snap.at("execution").asString(), "local");
    EXPECT_EQ(snap.at("total_units").asU64(), manifest.size());

    EXPECT_EQ(awaitTerminal(svc, id), "done");

    // Stream the rows out in two pages via the after cursor.
    const HttpResponse page1 = svc.handle(request(
        "GET", "/v1/jobs/" + id + "/results", {{"after", "0"}}));
    ASSERT_EQ(page1.status, 200);
    const Json p1 = parseBody(page1);
    EXPECT_TRUE(p1.at("done").asBool());
    EXPECT_EQ(p1.at("rows").asArray().size(), manifest.size());
    EXPECT_EQ(p1.at("next").asU64(), manifest.size());
    const HttpResponse page2 = svc.handle(
        request("GET", "/v1/jobs/" + id + "/results",
                {{"after", std::to_string(manifest.size())}}));
    EXPECT_EQ(parseBody(page2).at("rows").asArray().size(), 0u);

    // The assembled results are byte-identical to an in-process run.
    Session reference;
    const ResultSet expected = runManifest(reference, manifest);
    const std::optional<ResultSet> got = svc.jobs().finalResults(id);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->toJson().dump(), expected.toJson().dump());

    // No figure meta on a hand-built manifest: render is a clean 400.
    EXPECT_EQ(svc.handle(request("GET", "/v1/jobs/" + id + "/render"))
                  .status,
              400);

    // Stats picked up the executed units.
    const Json stats = parseBody(svc.handle(request("GET", "/stats")));
    EXPECT_EQ(stats.at("jobs").at("done").asU64(), 1u);
    EXPECT_GE(stats.at("executor").at("completed_total").asU64(),
              manifest.size());
    EXPECT_GE(stats.at("graph_store").at("misses").asU64(), 1u);
    const Json& lat = stats.at("unit_latency_ms_by_app");
    ASSERT_NE(lat.find("MIS"), nullptr);
    EXPECT_EQ(lat.at("MIS").at("count").asU64(), 2u);
}

TEST(ServeLocal, SinglePlanJobAndInvalidPlanFails)
{
    Service svc(quickOptions());

    WorkUnit u = unitFor(AppId::Mis, "SG1");
    u.seed = 5; // seeded plan flows through the service unchanged
    const HttpResponse sub = svc.handle(
        request("POST", "/v1/jobs", {},
                "{\"plan\": " + u.toJson().dump() + "}"));
    ASSERT_EQ(sub.status, 202) << sub.body;
    const std::string id = parseBody(sub).at("id").asString();
    EXPECT_EQ(awaitTerminal(svc, id), "done");
    const std::optional<ResultSet> rs = svc.jobs().finalResults(id);
    ASSERT_TRUE(rs.has_value());
    ASSERT_EQ(rs->size(), 1u);
    EXPECT_EQ(rs->results()[0].key, u.key());

    // A structurally valid unit with an invalid app/config pairing is
    // admitted and then fails at plan validation, not crashes.
    const HttpResponse bad = svc.handle(
        request("POST", "/v1/jobs", {},
                "{\"plan\": " +
                    unitFor(AppId::Pr, "DD1").toJson().dump() + "}"));
    ASSERT_EQ(bad.status, 202) << bad.body;
    const std::string badId = parseBody(bad).at("id").asString();
    EXPECT_EQ(awaitTerminal(svc, badId), "failed");
    const Json snap = parseBody(
        svc.handle(request("GET", "/v1/jobs/" + badId)));
    EXPECT_NE(snap.at("error").asString().find("invalid run plan"),
              std::string::npos);
}

// --- remote orchestration ------------------------------------------------

/** Register a worker through the wire layer; returns its id. */
std::string
registerWorker(Service& svc, const std::string& name)
{
    const HttpResponse r = svc.handle(request(
        "POST", "/v1/workers/register", {}, "{\"name\": \"" + name + "\"}"));
    EXPECT_EQ(r.status, 200);
    return parseBody(r).at("worker").asString();
}

/** One poll; nullopt on 204. */
std::optional<Json>
pollWorker(Service& svc, const std::string& worker)
{
    const HttpResponse r = svc.handle(request(
        "POST", "/v1/workers/poll", {}, "{\"worker\": \"" + worker + "\"}"));
    if (r.status == 204)
        return std::nullopt;
    EXPECT_EQ(r.status, 200) << r.body;
    return parseBody(r);
}

/** Execute an assignment like gga_worker --connect and post the part. */
HttpResponse
runAndPost(Service& svc, Session& session, const std::string& worker,
           const Json& assignment)
{
    const Manifest shard = Manifest::fromJson(assignment.at("manifest"));
    const ResultSet results = runManifest(session, shard);
    Json part = Json::object();
    part.set("worker", Json(worker));
    part.set("job", assignment.at("job"));
    part.set("shard", assignment.at("shard"));
    part.set("results", results.toJson());
    return svc.handle(
        request("POST", "/v1/workers/parts", {}, part.dump()));
}

TEST(ServeRemote, ShardedJobMergesByteIdenticalWithDuplicateDiscard)
{
    Service svc(quickOptions());
    const Manifest manifest = tinyManifest();

    const HttpResponse sub = svc.handle(request(
        "POST", "/v1/jobs", {},
        "{\"manifest\": " + manifest.toJson().dump() +
            ", \"execution\": \"remote\", \"shards\": 2}"));
    ASSERT_EQ(sub.status, 202) << sub.body;
    const std::string id = parseBody(sub).at("id").asString();

    // Unknown workers are rejected before touching the orchestrator.
    EXPECT_EQ(svc.handle(request("POST", "/v1/workers/poll", {},
                                 "{\"worker\": \"w-bogus\"}"))
                  .status,
              404);

    const std::string worker = registerWorker(svc, "t0");
    Session workerSession;

    std::optional<Json> a0 = pollWorker(svc, worker);
    ASSERT_TRUE(a0.has_value());
    EXPECT_EQ(a0->at("job").asString(), id);
    EXPECT_EQ(a0->at("shard_count").asU64(), 2u);
    std::optional<Json> a1 = pollWorker(svc, worker);
    ASSERT_TRUE(a1.has_value());
    EXPECT_NE(a0->at("shard").asU64(), a1->at("shard").asU64());
    // Both shards leased: nothing left to hand out.
    EXPECT_FALSE(pollWorker(svc, worker).has_value());

    const HttpResponse first = runAndPost(svc, workerSession, worker, *a0);
    EXPECT_EQ(first.status, 200);
    EXPECT_EQ(parseBody(first).at("status").asString(), "accepted");

    // A slow replica re-posting the finished shard while the job is
    // still in flight is discarded, never merged twice.
    const HttpResponse dup = runAndPost(svc, workerSession, worker, *a0);
    EXPECT_EQ(dup.status, 200);
    EXPECT_EQ(parseBody(dup).at("status").asString(), "duplicate");

    const HttpResponse last = runAndPost(svc, workerSession, worker, *a1);
    EXPECT_EQ(last.status, 200);
    EXPECT_EQ(parseBody(last).at("status").asString(), "accepted");

    EXPECT_EQ(awaitTerminal(svc, id), "done");

    // Once every shard merged, the job leaves the assignment pool: a
    // straggler part for it is unknown, not silently re-merged.
    EXPECT_EQ(runAndPost(svc, workerSession, worker, *a1).status, 404);

    Session reference;
    const ResultSet expected = runManifest(reference, manifest);
    const std::optional<ResultSet> got = svc.jobs().finalResults(id);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->toJson().dump(), expected.toJson().dump());

    const Json stats = parseBody(svc.handle(request("GET", "/stats")));
    EXPECT_EQ(stats.at("orchestrator").at("completed_shards_total").asU64(),
              2u);
    EXPECT_EQ(stats.at("orchestrator").at("duplicate_parts_total").asU64(),
              1u);
}

TEST(ServeRemote, BadPartIsRejectedAndShardRetried)
{
    Service svc(quickOptions());
    const Manifest manifest = tinyManifest();

    const HttpResponse sub = svc.handle(request(
        "POST", "/v1/jobs", {},
        "{\"manifest\": " + manifest.toJson().dump() +
            ", \"execution\": \"remote\", \"shards\": 1}"));
    ASSERT_EQ(sub.status, 202) << sub.body;
    const std::string id = parseBody(sub).at("id").asString();

    const std::string worker = registerWorker(svc, "flaky");
    std::optional<Json> a = pollWorker(svc, worker);
    ASSERT_TRUE(a.has_value());

    // Post an empty part: fails verifyComplete, shard goes back to
    // Waiting with backoff.
    Json bad = Json::object();
    bad.set("worker", Json(worker));
    bad.set("job", a->at("job"));
    bad.set("shard", a->at("shard"));
    bad.set("results", ResultSet{}.toJson());
    const HttpResponse rejected = svc.handle(
        request("POST", "/v1/workers/parts", {}, bad.dump()));
    EXPECT_EQ(rejected.status, 400);

    // After the (1 ms) backoff the same shard is reassigned.
    std::optional<Json> retry;
    for (int i = 0; i < 100 && !retry; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        retry = pollWorker(svc, worker);
    }
    ASSERT_TRUE(retry.has_value());
    EXPECT_EQ(retry->at("shard").asU64(), a->at("shard").asU64());

    Session workerSession;
    EXPECT_EQ(runAndPost(svc, workerSession, worker, *retry).status, 200);
    EXPECT_EQ(awaitTerminal(svc, id), "done");

    const Json stats = parseBody(svc.handle(request("GET", "/stats")));
    EXPECT_EQ(stats.at("orchestrator").at("rejected_parts_total").asU64(),
              1u);
    EXPECT_GE(stats.at("orchestrator").at("retries_total").asU64(), 1u);
}

TEST(ServeRemote, ExpiredLeasesReassignThenFailTheJob)
{
    ServiceOptions o = quickOptions();
    o.retry.leaseMs = 1; // every assignment expires immediately
    o.retry.maxAttempts = 2;
    Service svc(o); // not started: tick() driven by hand
    const Manifest manifest = tinyManifest();

    const HttpResponse sub = svc.handle(request(
        "POST", "/v1/jobs", {},
        "{\"manifest\": " + manifest.toJson().dump() +
            ", \"execution\": \"remote\", \"shards\": 1}"));
    ASSERT_EQ(sub.status, 202) << sub.body;
    const std::string id = parseBody(sub).at("id").asString();

    const std::string worker = registerWorker(svc, "crashy");

    // Attempt 1: lease, let it expire, never post the part.
    ASSERT_TRUE(pollWorker(svc, worker).has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    svc.orchestrator().tick();

    // Attempt 2: reassigned after backoff; expire it too.
    std::optional<Json> again;
    for (int i = 0; i < 100 && !again; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        again = pollWorker(svc, worker);
    }
    ASSERT_TRUE(again.has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    svc.orchestrator().tick();

    // Out of attempts: the job fails with a lease-expiry error.
    const Json snap = parseBody(
        svc.handle(request("GET", "/v1/jobs/" + id)));
    EXPECT_EQ(snap.at("state").asString(), "failed");
    EXPECT_FALSE(snap.at("error").asString().empty());
    EXPECT_FALSE(pollWorker(svc, worker).has_value());

    const Json stats = parseBody(svc.handle(request("GET", "/stats")));
    EXPECT_EQ(stats.at("orchestrator").at("expired_leases_total").asU64(),
              2u);
}

TEST(ServeRemote, ChecksumMismatchRejectsPartBeforeManifestCheck)
{
    Service svc(quickOptions());
    const Manifest manifest = tinyManifest();
    const HttpResponse sub = svc.handle(request(
        "POST", "/v1/jobs", {},
        "{\"manifest\": " + manifest.toJson().dump() +
            ", \"execution\": \"remote\", \"shards\": 1}"));
    ASSERT_EQ(sub.status, 202) << sub.body;
    const std::string id = parseBody(sub).at("id").asString();

    const std::string worker = registerWorker(svc, "bitrot");
    std::optional<Json> a = pollWorker(svc, worker);
    ASSERT_TRUE(a.has_value());
    Session session;
    const Manifest shard = Manifest::fromJson(a->at("manifest"));
    const ResultSet results = runManifest(session, shard);
    const std::string canon = results.toJson().dump();
    const std::uint64_t good = fnv1a(canon.data(), canon.size());

    const auto post = [&](std::uint64_t sum) {
        Json part = Json::object();
        part.set("worker", Json(worker));
        part.set("job", a->at("job"));
        part.set("shard", a->at("shard"));
        part.set("checksum", Json(sum));
        part.set("results", results.toJson());
        return svc.handle(
            request("POST", "/v1/workers/parts", {}, part.dump()));
    };

    // The payload is complete — only the checksum disagrees. Without the
    // checksum this would sail through verifyComplete with corrupted
    // metric values.
    const HttpResponse rejected = post(good + 1);
    EXPECT_EQ(rejected.status, 400);
    EXPECT_NE(parseBody(rejected).at("error").asString().find("checksum"),
              std::string::npos);

    // After backoff the shard is reassigned; a matching checksum passes.
    std::optional<Json> retry;
    for (int i = 0; i < 100 && !retry; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        retry = pollWorker(svc, worker);
    }
    ASSERT_TRUE(retry.has_value());
    EXPECT_EQ(post(good).status, 200);
    EXPECT_EQ(awaitTerminal(svc, id), "done");

    const Json stats = parseBody(svc.handle(request("GET", "/stats")));
    EXPECT_EQ(stats.at("orchestrator").at("rejected_parts_total").asU64(),
              1u);
}

// --- worker auth ---------------------------------------------------------

TEST(ServeAuth, WorkerEndpointsRequireTheTokenWhenConfigured)
{
    ServiceOptions o = quickOptions();
    o.workerToken = "s3cret";
    Service svc(o);

    const std::string body = "{\"name\": \"w\"}";
    // Missing and wrong tokens are 401 before any orchestrator state is
    // touched; the matching token works.
    EXPECT_EQ(
        svc.handle(request("POST", "/v1/workers/register", {}, body))
            .status,
        401);
    EXPECT_EQ(svc.handle(request("POST", "/v1/workers/register", {}, body,
                                 {{"x-gga-worker-token", "wrong"}}))
                  .status,
              401);
    const HttpResponse ok =
        svc.handle(request("POST", "/v1/workers/register", {}, body,
                           {{"x-gga-worker-token", "s3cret"}}));
    ASSERT_EQ(ok.status, 200) << ok.body;
    const std::string worker = parseBody(ok).at("worker").asString();

    EXPECT_EQ(svc.handle(request("POST", "/v1/workers/poll", {},
                                 "{\"worker\": \"" + worker + "\"}"))
                  .status,
              401);
    EXPECT_EQ(svc.handle(request("POST", "/v1/workers/parts", {},
                                 "{\"worker\": \"" + worker + "\"}"))
                  .status,
              401);
    EXPECT_EQ(svc.handle(request("POST", "/v1/workers/poll", {},
                                 "{\"worker\": \"" + worker + "\"}",
                                 {{"x-gga-worker-token", "s3cret"}}))
                  .status,
              204);
    // Client endpoints are unaffected by the worker token.
    EXPECT_EQ(svc.handle(request("GET", "/v1/jobs")).status, 200);
}

// --- per-tenant rate limiting --------------------------------------------

TEST(ServeRateLimit, OverRateSubmitGets429WithRetryAfter)
{
    ServiceOptions o = quickOptions();
    o.ratePerTenant = 1; // burst of 1, then ~1/s
    Service svc(o);
    const std::string body =
        "{\"manifest\": " + tinyManifest().toJson().dump() + "}";

    const HttpResponse first = svc.handle(request(
        "POST", "/v1/jobs", {}, body, {{"x-gga-tenant", "alice"}}));
    ASSERT_EQ(first.status, 202) << first.body;

    // Same tenant, same second: throttled, with a machine-readable
    // retry hint. Another tenant has its own bucket.
    const HttpResponse throttled = svc.handle(request(
        "POST", "/v1/jobs", {}, body, {{"x-gga-tenant", "alice"}}));
    EXPECT_EQ(throttled.status, 429);
    ASSERT_EQ(throttled.headers.count("Retry-After"), 1u);
    EXPECT_GE(std::stoul(throttled.headers.at("Retry-After")), 1u);
    EXPECT_EQ(svc.handle(request("POST", "/v1/jobs", {}, body,
                                 {{"x-gga-tenant", "bob"}}))
                  .status,
              202);

    const Json stats = parseBody(svc.handle(request("GET", "/stats")));
    EXPECT_EQ(stats.at("rate_limiter").at("throttled_total").asU64(), 1u);
}

TEST(ServeRateLimit, AdmissionBound429CarriesNoRetryAfter)
{
    ServiceOptions o = quickOptions();
    o.maxQueuedPerTenant = 1; // admission-bound, rate limiter off
    Service svc(o);
    const std::string body = "{\"manifest\": " +
                             tinyManifest().toJson().dump() +
                             ", \"execution\": \"remote\", \"shards\": 2}";
    ASSERT_EQ(svc.handle(request("POST", "/v1/jobs", {}, body)).status,
              202);
    const HttpResponse full =
        svc.handle(request("POST", "/v1/jobs", {}, body));
    EXPECT_EQ(full.status, 429);
    // Quota 429 clears when a job finishes, not on a clock — no header.
    EXPECT_EQ(full.headers.count("Retry-After"), 0u);
}

// --- slow-loris defense --------------------------------------------------

TEST(ServeHttp, StalledRequestTimesOutWith408)
{
    ServiceOptions o = quickOptions();
    o.ioTimeoutMs = 50;
    Service svc(o);
    svc.start();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(svc.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr),
              0);
    // Send half a request line and stall — the classic slow loris.
    const char torso[] = "POST /v1/jobs HTT";
    ASSERT_GT(::send(fd, torso, sizeof torso - 1, 0), 0);

    std::string buf(4096, '\0');
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    ASSERT_GT(n, 0) << "connection closed without a response";
    buf.resize(static_cast<std::size_t>(n));
    EXPECT_NE(buf.find("408"), std::string::npos) << buf;
    ::close(fd);

    // The stalled connection pinned nothing: normal requests still work.
    EXPECT_EQ(httpRequest(svc.port(), "GET", "/healthz").status, 200);
    svc.stop();
}

// --- end-to-end fault injection ------------------------------------------

TEST(ServeFaultInjection, ThinPartIsRejectedThenRetriedToDone)
{
    faults::configure("");
    ServiceOptions o = quickOptions();
    o.retry.leaseMs = 10000; // no expiry races: the retry must come from
                             // the rejected part, not a lost lease
    o.workerToken = "tok";   // exercises gga_worker --token end to end
    Service svc(o);
    svc.start();

    const Manifest manifest = tinyManifest();
    const HttpResponse sub = svc.handle(request(
        "POST", "/v1/jobs", {},
        "{\"manifest\": " + manifest.toJson().dump() +
            ", \"execution\": \"remote\", \"shards\": 1}"));
    ASSERT_EQ(sub.status, 202) << sub.body;
    const std::string id = parseBody(sub).at("id").asString();

    // First part the real worker client posts is thinned by one row:
    // its checksum matches the thinned payload, so it is the manifest
    // verification that rejects it, and the shard re-runs.
    faults::configure("worker.part.thin=1");
    WorkerClientOptions w;
    w.port = svc.port();
    w.name = "flaky";
    w.token = "tok";
    w.pollMs = 2;
    w.idleExitMs = 500;
    Session workerSession;
    const std::size_t posted = runWorkerClient(workerSession, w);

    EXPECT_EQ(posted, 1u); // only the clean retry counted
    EXPECT_EQ(awaitTerminal(svc, id), "done");

    // Stats read while the plan is still armed — configure("") resets
    // the injection counters.
    const Json stats = parseBody(svc.handle(request("GET", "/stats")));
    faults::configure("");
    EXPECT_EQ(stats.at("orchestrator").at("rejected_parts_total").asU64(),
              1u);
    EXPECT_EQ(stats.at("orchestrator").at("completed_shards_total").asU64(),
              1u);
    EXPECT_GE(stats.at("faults").at("injected_total").asU64(), 1u);
    EXPECT_TRUE(stats.at("faults").at("enabled").asBool());

    Session reference;
    const ResultSet expected = runManifest(reference, manifest);
    const std::optional<ResultSet> got = svc.jobs().finalResults(id);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->toJson().dump(), expected.toJson().dump());
    svc.stop();
}

// --- policy arithmetic ---------------------------------------------------

TEST(RetryPolicy, BackoffDoublesAndCaps)
{
    RetryPolicy p;
    p.retryBaseMs = 500;
    p.retryCapMs = 8000;
    EXPECT_EQ(p.backoffMs(1), 500u);
    EXPECT_EQ(p.backoffMs(2), 1000u);
    EXPECT_EQ(p.backoffMs(3), 2000u);
    EXPECT_EQ(p.backoffMs(5), 8000u);
    EXPECT_EQ(p.backoffMs(20), 8000u); // no overflow wraparound
}

TEST(LatencyHistogramTest, BucketsByLog2)
{
    LatencyHistogram h;
    h.record(0.5); // bucket 0: < 1 ms
    h.record(3.0); // bucket 2: [2, 4)
    h.record(3.5);
    h.record(1e9); // clamps into the top bucket
    EXPECT_EQ(h.count, 4u);
    EXPECT_DOUBLE_EQ(h.maxMs, 1e9);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[2], 2u);
    EXPECT_EQ(h.buckets[LatencyHistogram::kBuckets - 1], 1u);
}

} // namespace
} // namespace gga
