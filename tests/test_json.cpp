/**
 * @file
 * Error-path and boundary tests for the support-layer JSON codec. The
 * parser now reads untrusted network bodies (the resident service), so
 * malformed input, hostile nesting depth, escape handling, and 64-bit
 * integer boundaries all need explicit coverage beyond the round-trip
 * checks the eval-layer tests do in passing.
 */

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "support/json.hpp"

namespace gga {
namespace {

// --- malformed documents -------------------------------------------------

TEST(JsonErrors, EmptyAndWhitespaceOnlyInputThrows)
{
    EXPECT_THROW(Json::parse(""), JsonError);
    EXPECT_THROW(Json::parse("   \n\t  "), JsonError);
}

TEST(JsonErrors, TrailingGarbageThrows)
{
    EXPECT_THROW(Json::parse("{} x"), JsonError);
    EXPECT_THROW(Json::parse("1 2"), JsonError);
    EXPECT_THROW(Json::parse("[1,2]]"), JsonError);
    EXPECT_NO_THROW(Json::parse("{}  \n"));
}

TEST(JsonErrors, TruncatedContainersThrow)
{
    EXPECT_THROW(Json::parse("["), JsonError);
    EXPECT_THROW(Json::parse("[1, 2"), JsonError);
    EXPECT_THROW(Json::parse("{\"k\""), JsonError);
    EXPECT_THROW(Json::parse("{\"k\":"), JsonError);
    EXPECT_THROW(Json::parse("{\"k\": 1,"), JsonError);
}

TEST(JsonErrors, MissingColonOrBadSeparatorThrows)
{
    EXPECT_THROW(Json::parse("{\"k\" 1}"), JsonError);
    EXPECT_THROW(Json::parse("{\"k\"; 1}"), JsonError);
    EXPECT_THROW(Json::parse("[1; 2]"), JsonError);
}

TEST(JsonErrors, InvalidLiteralsThrow)
{
    EXPECT_THROW(Json::parse("tru"), JsonError);
    EXPECT_THROW(Json::parse("falze"), JsonError);
    EXPECT_THROW(Json::parse("nul"), JsonError);
    EXPECT_THROW(Json::parse("None"), JsonError);
}

TEST(JsonErrors, InvalidNumbersThrow)
{
    EXPECT_THROW(Json::parse("-"), JsonError);
    EXPECT_THROW(Json::parse("1.2.3"), JsonError);
    EXPECT_THROW(Json::parse("1e"), JsonError);
    EXPECT_THROW(Json::parse("--1"), JsonError);
    EXPECT_THROW(Json::parse("+1"), JsonError);
}

TEST(JsonErrors, DuplicateObjectKeysThrow)
{
    EXPECT_THROW(Json::parse("{\"a\": 1, \"a\": 2}"), JsonError);
    // Same key at different levels is fine.
    EXPECT_NO_THROW(Json::parse("{\"a\": {\"a\": 1}}"));
}

// --- hostile nesting depth -----------------------------------------------

TEST(JsonErrors, DeepNestingIsRejectedNotStackOverflowed)
{
    // A service body of 100k open brackets must fail cleanly with
    // JsonError, not recurse off the stack.
    const std::string bomb(100000, '[');
    EXPECT_THROW(Json::parse(bomb), JsonError);

    const std::string deep =
        std::string(300, '[') + std::string(300, ']');
    EXPECT_THROW(Json::parse(deep), JsonError);

    // Mixed object/array nesting counts against the same budget.
    std::string mixed;
    for (int i = 0; i < 200; ++i)
        mixed += "{\"k\":[";
    EXPECT_THROW(Json::parse(mixed), JsonError);
}

TEST(JsonErrors, ReasonableNestingStillParses)
{
    const std::string deep =
        std::string(200, '[') + "7" + std::string(200, ']');
    Json v = Json::parse(deep);
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(v.isArray());
        ASSERT_EQ(v.asArray().size(), 1u);
        Json inner = v.asArray()[0]; // copy out before overwriting v
        v = std::move(inner);
    }
    EXPECT_EQ(v.asU64(), 7u);
}

// --- string escapes ------------------------------------------------------

TEST(JsonStrings, StandardEscapesRoundTrip)
{
    const Json v = Json::parse("\"a\\n\\t\\r\\b\\f\\\"\\\\\\/z\"");
    EXPECT_EQ(v.asString(), "a\n\t\r\b\f\"\\/z");
    EXPECT_EQ(Json::parse(v.dump()).asString(), v.asString());
}

TEST(JsonStrings, UnicodeEscapesDecodeToUtf8)
{
    EXPECT_EQ(Json::parse("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(Json::parse("\"\\u00e9\"").asString(), "\xc3\xa9");     // é
    EXPECT_EQ(Json::parse("\"\\u20ac\"").asString(), "\xe2\x82\xac"); // €
}

TEST(JsonStrings, ControlCharactersDumpAsEscapesAndRoundTrip)
{
    const Json v(std::string("a\x01\x02z"));
    const std::string text = v.dump();
    EXPECT_NE(text.find("\\u0001"), std::string::npos);
    EXPECT_EQ(Json::parse(text).asString(), v.asString());
}

TEST(JsonStrings, BadEscapesThrow)
{
    EXPECT_THROW(Json::parse("\"\\q\""), JsonError);
    EXPECT_THROW(Json::parse("\"\\u12\""), JsonError);   // truncated
    EXPECT_THROW(Json::parse("\"\\u12zz\""), JsonError); // bad hex
    EXPECT_THROW(Json::parse("\"\\"), JsonError);        // dangling
    EXPECT_THROW(Json::parse("\"abc"), JsonError);       // unterminated
}

// --- 64-bit integer boundaries -------------------------------------------

TEST(JsonNumbers, U64MaxRoundTripsExactly)
{
    const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
    const Json v = Json::parse("18446744073709551615");
    ASSERT_TRUE(v.isU64());
    EXPECT_EQ(v.asU64(), max);
    EXPECT_EQ(v.dump(), "18446744073709551615");
    EXPECT_EQ(Json::parse(Json(max).dump()).asU64(), max);
}

TEST(JsonNumbers, I64MinRoundTripsExactly)
{
    const std::int64_t min = std::numeric_limits<std::int64_t>::min();
    const Json v = Json::parse("-9223372036854775808");
    ASSERT_TRUE(v.isI64());
    EXPECT_EQ(v.asI64(), min);
    EXPECT_EQ(Json::parse(Json(min).dump()).asI64(), min);
}

TEST(JsonNumbers, BeyondU64FallsBackToDouble)
{
    // One past u64 max: no integer representation, so the strict parse
    // degrades to double rather than silently wrapping.
    const Json v = Json::parse("18446744073709551616");
    EXPECT_TRUE(v.isDouble());
    EXPECT_DOUBLE_EQ(v.asDouble(), 18446744073709551616.0);
}

TEST(JsonNumbers, DoublesRoundTripBitExactly)
{
    for (const double d : {0.1, 1.0 / 3.0, 1e-300, 1e300, -2.5}) {
        const Json v = Json::parse(Json(d).dump());
        ASSERT_TRUE(v.isNumber());
        EXPECT_EQ(v.asDouble(), d);
    }
}

// --- accessor mismatches -------------------------------------------------

TEST(JsonAccessors, KindMismatchThrows)
{
    const Json v = Json::parse("{\"n\": 1, \"s\": \"x\"}");
    EXPECT_THROW(v.at("s").asU64(), JsonError);
    EXPECT_THROW(v.at("n").asString(), JsonError);
    EXPECT_THROW(v.asArray(), JsonError);
    EXPECT_THROW(Json(-1).asU64(), JsonError);
}

TEST(JsonAccessors, MissingKeyThrowsButFindReturnsNull)
{
    const Json v = Json::parse("{\"a\": 1}");
    EXPECT_THROW(v.at("b"), JsonError);
    EXPECT_EQ(v.find("b"), nullptr);
    EXPECT_NE(v.find("a"), nullptr);
}

} // namespace
} // namespace gga
