// WorkStealDeque: owner push/pop semantics, growth, and a concurrent
// torture run — one owner cycling pushBottom/popBottom against several
// thieves, every element consumed exactly once. The torture test is the
// one the TSan CI job exists for: the deque is the only lock-free
// structure in the repo, and its orderings are correct or this explodes.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/work_steal_deque.hpp"

namespace {

using gga::WorkStealDeque;
using Steal = WorkStealDeque<std::uint64_t>::Steal;

TEST(WorkStealDequeTest, PopsInLifoOrderFromOwner)
{
    WorkStealDeque<std::uint64_t> deq;
    for (std::uint64_t v = 1; v <= 5; ++v)
        deq.pushBottom(v);
    EXPECT_EQ(deq.sizeEstimate(), 5u);
    std::uint64_t out = 0;
    for (std::uint64_t expect = 5; expect >= 1; --expect) {
        ASSERT_TRUE(deq.popBottom(out));
        EXPECT_EQ(out, expect);
    }
    EXPECT_FALSE(deq.popBottom(out));
    EXPECT_EQ(deq.sizeEstimate(), 0u);
}

TEST(WorkStealDequeTest, StealsInFifoOrderFromThief)
{
    WorkStealDeque<std::uint64_t> deq;
    for (std::uint64_t v = 1; v <= 5; ++v)
        deq.pushBottom(v);
    std::uint64_t out = 0;
    for (std::uint64_t expect = 1; expect <= 5; ++expect) {
        ASSERT_EQ(deq.steal(out), Steal::Got);
        EXPECT_EQ(out, expect);
    }
    EXPECT_EQ(deq.steal(out), Steal::Empty);
    EXPECT_FALSE(deq.popBottom(out));
}

TEST(WorkStealDequeTest, GrowsPastInitialCapacityWithoutLoss)
{
    WorkStealDeque<std::uint64_t> deq(4);
    constexpr std::uint64_t kCount = 1000;
    for (std::uint64_t v = 0; v < kCount; ++v)
        deq.pushBottom(v);
    EXPECT_EQ(deq.sizeEstimate(), kCount);
    // Mixed consumption across the grown ring: half stolen (oldest
    // first), half popped (newest first).
    std::uint64_t out = 0;
    for (std::uint64_t expect = 0; expect < kCount / 2; ++expect) {
        ASSERT_EQ(deq.steal(out), Steal::Got);
        EXPECT_EQ(out, expect);
    }
    for (std::uint64_t expect = kCount; expect-- > kCount / 2;) {
        ASSERT_TRUE(deq.popBottom(out));
        EXPECT_EQ(out, expect);
    }
    EXPECT_FALSE(deq.popBottom(out));
}

TEST(WorkStealDequeTest, OwnerAndThievesConsumeEveryElementExactlyOnce)
{
    constexpr int kThieves = 3;
    constexpr std::uint64_t kElements = 20000;

    WorkStealDeque<std::uint64_t> deq(8); // small: forces growth races
    std::vector<std::atomic<std::uint32_t>> seen(kElements);
    for (auto& s : seen)
        s.store(0);
    std::atomic<std::uint64_t> consumed{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> thieves;
    thieves.reserve(kThieves);
    for (int t = 0; t < kThieves; ++t) {
        thieves.emplace_back([&] {
            std::uint64_t v = 0;
            while (!done.load(std::memory_order_acquire)) {
                switch (deq.steal(v)) {
                case Steal::Got:
                    seen[v].fetch_add(1);
                    consumed.fetch_add(1);
                    break;
                case Steal::Abort:
                case Steal::Empty:
                    break;
                }
            }
        });
    }

    // Owner: push in bursts, pop some back — the popBottom/steal race on
    // the last element is the hard part of the algorithm.
    std::uint64_t next = 0;
    while (next < kElements) {
        for (int burst = 0; burst < 64 && next < kElements; ++burst)
            deq.pushBottom(next++);
        std::uint64_t v = 0;
        for (int pops = 0; pops < 24; ++pops) {
            if (!deq.popBottom(v))
                break;
            seen[v].fetch_add(1);
            consumed.fetch_add(1);
        }
    }
    // Drain whatever the thieves haven't taken.
    std::uint64_t v = 0;
    while (consumed.load() < kElements) {
        if (deq.popBottom(v)) {
            seen[v].fetch_add(1);
            consumed.fetch_add(1);
        }
    }
    done.store(true, std::memory_order_release);
    for (std::thread& t : thieves)
        t.join();

    for (std::uint64_t i = 0; i < kElements; ++i)
        ASSERT_EQ(seen[i].load(), 1u) << "element " << i;
    EXPECT_EQ(deq.sizeEstimate(), 0u);
}

} // namespace
