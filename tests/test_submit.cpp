/**
 * @file
 * Tests for the async execution layer: the TaskPool executor,
 * Session::submit / submitAll (parity with the synchronous run path,
 * batches in flight at several thread widths, invalid plans surfacing as
 * future errors), and sweeps sharing one executor.
 */

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.hpp"
#include "api/task_pool.hpp"
#include "eval/manifest.hpp"
#include "eval/run.hpp"
#include "graph/generator.hpp"
#include "harness/sweep.hpp"
#include "harness/workloads.hpp"
#include "support/faults.hpp"

namespace gga {
namespace {

const CsrGraph&
smallGraph()
{
    static const CsrGraph g = [] {
        GenSpec spec;
        spec.name = "submit-small";
        spec.numVertices = 500;
        spec.numDirectedEdges = 2500;
        spec.dist = DegreeDist::PowerLaw;
        spec.p1 = 2.2;
        spec.p2 = 1.4;
        spec.maxDegree = 40;
        spec.fracIntraBlock = 0.3;
        spec.seed = 777;
        return generateGraph(spec);
    }();
    return g;
}

Session
makeSession(unsigned threads)
{
    SessionOptions opts;
    opts.threads = threads;
    return Session(opts);
}

// --- TaskPool -------------------------------------------------------------

TEST(TaskPoolTest, RunsEveryJobAtSeveralWidths)
{
    for (unsigned width : {1u, 2u, 4u}) {
        TaskPool pool(width);
        EXPECT_EQ(pool.width(), width);
        std::atomic<int> ran{0};
        std::vector<std::future<int>> futures;
        for (int i = 0; i < 32; ++i) {
            futures.push_back(pool.submit([i, &ran] {
                ran.fetch_add(1);
                return i * i;
            }));
        }
        for (int i = 0; i < 32; ++i)
            EXPECT_EQ(futures[i].get(), i * i) << "width " << width;
        EXPECT_EQ(ran.load(), 32);
    }
}

TEST(TaskPoolTest, WidthZeroClampsToOneWorker)
{
    TaskPool pool(0);
    EXPECT_EQ(pool.width(), 1u);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(TaskPoolTest, ExceptionsPropagateThroughFutures)
{
    TaskPool pool(2);
    std::future<int> bad =
        pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The worker that carried the throwing task keeps serving.
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(TaskPoolTest, DestructorDrainsPostedJobs)
{
    std::atomic<int> ran{0};
    {
        TaskPool pool(1);
        for (int i = 0; i < 8; ++i)
            pool.post([&ran] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 8);
}

TEST(TaskPoolTest, InteractiveLaneOvertakesQueuedBatchWork)
{
    TaskPool pool(1);
    // Park the single worker so everything below queues behind it.
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    pool.post([opened] { opened.wait(); }, Lane::Interactive);
    while (pool.active() == 0)
        std::this_thread::yield();

    std::mutex order_mu;
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        pool.post(
            [&order_mu, &order, i] {
                const std::lock_guard<std::mutex> lock(order_mu);
                order.push_back(100 + i);
            },
            Lane::Batch);
    }
    for (int i = 0; i < 3; ++i) {
        pool.post(
            [&order_mu, &order, i] {
                const std::lock_guard<std::mutex> lock(order_mu);
                order.push_back(i);
            },
            Lane::Interactive);
    }
    EXPECT_EQ(pool.pending(Lane::Interactive), 3u);
    EXPECT_EQ(pool.pending(Lane::Batch), 3u);

    gate.set_value();
    while (pool.completedTotal() < 7)
        std::this_thread::yield();
    // Interactive tasks posted LAST still ran first, FIFO within lanes.
    // (order_mu, not the completion counter, synchronizes the reads.)
    const std::vector<int> want{0, 1, 2, 100, 101, 102};
    const std::lock_guard<std::mutex> lock(order_mu);
    EXPECT_EQ(order, want);
}

TEST(TaskPoolTest, PostAllBatchesFanOutThroughStealing)
{
    TaskPool pool(4);
    std::atomic<int> ran{0};
    std::vector<TaskPool::Task> tasks;
    // The expanding worker pops the slow head in batch order and holds it
    // for 200ms; its siblings have nothing else, so the remaining units
    // MUST arrive via steals.
    tasks.emplace_back([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        ran.fetch_add(1);
    });
    for (int i = 0; i < 15; ++i) {
        tasks.emplace_back([&ran] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ran.fetch_add(1);
        });
    }
    pool.postAll(std::move(tasks), Lane::Batch);
    while (pool.completedTotal() < 16)
        std::this_thread::yield();
    EXPECT_EQ(ran.load(), 16);
    EXPECT_GT(pool.stats().stealsTotal, 0u);
}

// --- stealing determinism -------------------------------------------------

TEST(StealingDeterminism, ManifestBytesIdenticalAcrossWidthsUnderYields)
{
    // A manifest wide enough to fan out, with seeds making keys distinct.
    Manifest manifest;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        WorkUnit u;
        // CC's dynamic traversal requires a PushPull config; PR is static.
        u.app = seed % 2 == 0 ? AppId::Pr : AppId::Cc;
        u.config = *tryParseConfig(seed % 2 == 0 ? "SG1" : "DD1");
        u.preset = GraphPreset::Raj;
        u.scale = 0.05;
        u.seed = seed;
        manifest.add(u);
    }

    // Arm the executor's scheduling perturbation: every 3rd dequeue
    // yields, shuffling which worker runs what. Results must not care.
    // RAII reset: a failing expectation must not leave later tests
    // running with faults armed.
    struct FaultReset
    {
        ~FaultReset() { faults::configure(""); }
    } reset;
    faults::configure("seed=1,pool.yield=2/3");
    std::optional<std::string> want;
    for (unsigned width : {1u, 2u, 8u}) {
        Session session = makeSession(width);
        const std::string got =
            runManifest(session, manifest).toJson().dump();
        if (!want)
            want = got;
        else
            EXPECT_EQ(got, *want) << "width " << width;
    }
}

// --- Session::submit ------------------------------------------------------

TEST(Submit, MatchesRunForEveryApp)
{
    Session serial;
    Session async = makeSession(2);
    const CsrGraph& g = smallGraph();

    for (AppId app : kAllApps) {
        const bool dynamic =
            algoProperties(app).traversal == TraversalKind::Dynamic;
        const RunPlan plan = RunPlan{}
                                 .app(app)
                                 .graph(g, "submit-small")
                                 .config(dynamic ? "DD1" : "SG1");
        const RunOutcome want = serial.run(plan);
        const RunOutcome got = async.submit(plan).get();
        EXPECT_EQ(got.result.cycles, want.result.cycles) << appName(app);
        EXPECT_EQ(got.result.kernels, want.result.kernels) << appName(app);
        EXPECT_EQ(got.result.events, want.result.events) << appName(app);
        EXPECT_TRUE(got.output == want.output) << appName(app);
        EXPECT_EQ(got.name(), want.name()) << appName(app);
    }
}

TEST(Submit, BatchOfFuturesInFlightAtSeveralWidths)
{
    const CsrGraph& g = smallGraph();

    // One batch spanning apps and configs, big enough to keep every
    // width's workers busy simultaneously.
    std::vector<RunPlan> plans;
    for (AppId app : {AppId::Pr, AppId::Mis, AppId::Cc}) {
        const bool dynamic =
            algoProperties(app).traversal == TraversalKind::Dynamic;
        for (const SystemConfig& cfg : figureConfigs(dynamic))
            plans.push_back(RunPlan{}
                                .app(app)
                                .graph(g, "submit-small")
                                .config(cfg)
                                .collectOutputs(false));
    }

    Session serial;
    std::vector<RunOutcome> want;
    for (const RunPlan& plan : plans)
        want.push_back(serial.run(plan));

    for (unsigned width : {1u, 2u, 4u}) {
        Session async = makeSession(width);
        std::vector<std::future<RunOutcome>> futures =
            async.submitAll(plans);
        ASSERT_EQ(futures.size(), want.size());
        for (std::size_t i = 0; i < futures.size(); ++i) {
            const RunOutcome got = futures[i].get();
            EXPECT_EQ(got.result.cycles, want[i].result.cycles)
                << want[i].name() << " at width " << width;
            EXPECT_EQ(got.result.events, want[i].result.events)
                << want[i].name() << " at width " << width;
            EXPECT_EQ(got.config, want[i].config) << "ordering at " << i;
        }
    }
}

TEST(Submit, InvalidPlanSurfacesThroughFutureNotFatal)
{
    Session session = makeSession(2);
    // PR is static: "DD1" fails the app x config predicate.
    std::future<RunOutcome> bad = session.submit(
        RunPlan{}.app(AppId::Pr).graph(smallGraph(), "g").config("DD1"));
    try {
        bad.get();
        FAIL() << "expected PlanError";
    } catch (const PlanError& err) {
        EXPECT_NE(std::string(err.what()).find("PR"), std::string::npos);
    }
    // A malformed config name and an empty plan surface the same way.
    EXPECT_THROW(session
                     .submit(RunPlan{}
                                 .app(AppId::Pr)
                                 .graph(smallGraph(), "g")
                                 .config("QQQ"))
                     .get(),
                 PlanError);
    EXPECT_THROW(session.submit(RunPlan{}).get(), PlanError);
    // The executor survives bad plans.
    const RunOutcome ok =
        session
            .submit(RunPlan{}.app(AppId::Pr).graph(smallGraph(), "g").config(
                "SG1"))
            .get();
    EXPECT_GT(ok.result.cycles, 0u);
}

TEST(Submit, ThreadsOptionResolves)
{
    EXPECT_EQ(makeSession(3).threads(), 3u);
    EXPECT_GE(Session().threads(), 1u); // environment default
}

// --- sweeps on a shared executor ------------------------------------------

TEST(SubmitSweep, ConcurrentSweepsMatchStandaloneSerial)
{
    const Workload mis{AppId::Mis, GraphPreset::Raj};
    const Workload cc{AppId::Cc, GraphPreset::Raj};
    const SimParams params;

    const SweepResult mis_serial =
        sweepWorkload(mis, figureConfigs(false), params, SweepOptions{1});
    const SweepResult cc_serial =
        sweepWorkload(cc, figureConfigs(true), params, SweepOptions{1});

    for (unsigned width : {2u, 4u}) {
        SessionOptions opts;
        opts.threads = width;
        // Sweeps default to the session's scale; match the standalone
        // overload's GGA_SCALE default so the comparison is apples to
        // apples.
        opts.scale = evaluationScale();
        Session session(opts);
        // Both sweeps in flight on one executor before either collects.
        PendingSweep a =
            submitSweep(session, mis, figureConfigs(false), params);
        PendingSweep b =
            submitSweep(session, cc, figureConfigs(true), params);
        const SweepResult mis_par = a.collect();
        const SweepResult cc_par = b.collect();

        for (const auto& [serial, par] :
             {std::pair<const SweepResult&, const SweepResult&>(mis_serial,
                                                                mis_par),
              std::pair<const SweepResult&, const SweepResult&>(cc_serial,
                                                                cc_par)}) {
            ASSERT_EQ(par.results.size(), serial.results.size());
            for (std::size_t i = 0; i < serial.results.size(); ++i) {
                EXPECT_EQ(par.results[i].config, serial.results[i].config);
                EXPECT_EQ(par.results[i].run.cycles,
                          serial.results[i].run.cycles);
                EXPECT_EQ(par.results[i].run.events,
                          serial.results[i].run.events);
            }
            EXPECT_EQ(par.best, serial.best);
            EXPECT_EQ(par.predicted, serial.predicted);
            EXPECT_EQ(par.bestCycles, serial.bestCycles);
            EXPECT_EQ(par.predictedCycles, serial.predictedCycles);
            EXPECT_EQ(par.baselineCycles, serial.baselineCycles);
        }
    }
}

} // namespace
} // namespace gga
