/**
 * @file
 * Property-style parameterized tests: invariants that must hold across
 * the whole design space and across inputs, on a small synthetic graph.
 */

#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "graph/generator.hpp"
#include "model/config.hpp"
#include "support/log.hpp"

namespace gga {
namespace {

const CsrGraph&
propGraph()
{
    static const CsrGraph g = [] {
        GenSpec spec;
        spec.name = "prop";
        spec.numVertices = 1500;
        spec.numDirectedEdges = 9000;
        spec.dist = DegreeDist::PowerLaw;
        spec.p1 = 2.4;
        spec.p2 = 2.0;
        spec.maxDegree = 128;
        spec.fracIntraBlock = 0.5;
        spec.seed = 21;
        return generateGraph(spec);
    }();
    return g;
}

struct AppParam
{
    AppId app;
};

class PerApp : public ::testing::TestWithParam<AppId>
{
};

/** Pull is insensitive to the consistency model: no atomics to relax. */
TEST_P(PerApp, PullInsensitiveToConsistency)
{
    const AppId app = GetParam();
    if (algoProperties(app).traversal == TraversalKind::Dynamic)
        GTEST_SKIP() << "dynamic apps have no pull variant";
    const Cycles tg0 =
        runWorkload(app, propGraph(), parseConfig("TG0")).cycles;
    const Cycles tg1 =
        runWorkload(app, propGraph(), parseConfig("TG1")).cycles;
    const Cycles tgr =
        runWorkload(app, propGraph(), parseConfig("TGR")).cycles;
    EXPECT_EQ(tg0, tg1);
    EXPECT_EQ(tg1, tgr);
}

/** Pull issues no fine-grained atomics at all. */
TEST_P(PerApp, PullHasNoAtomics)
{
    const AppId app = GetParam();
    if (algoProperties(app).traversal == TraversalKind::Dynamic)
        GTEST_SKIP();
    const RunResult r =
        runWorkload(app, propGraph(), parseConfig("TG0"));
    EXPECT_EQ(r.mem.l2Atomics, 0u);
    EXPECT_EQ(r.mem.l1AtomicHits, 0u);
}

/** GPU coherence never registers ownership; DeNovo never L2-atomics. */
TEST_P(PerApp, CoherenceMechanismsAreExclusive)
{
    const AppId app = GetParam();
    const bool dyn =
        algoProperties(app).traversal == TraversalKind::Dynamic;
    const RunResult gpu = runWorkload(app, propGraph(),
                                      parseConfig(dyn ? "DG1" : "SG1"));
    EXPECT_EQ(gpu.mem.ownershipRequests, 0u);
    EXPECT_EQ(gpu.mem.l1AtomicHits, 0u);
    const RunResult denovo = runWorkload(app, propGraph(),
                                         parseConfig(dyn ? "DD1" : "SD1"));
    EXPECT_EQ(denovo.mem.l2Atomics, 0u);
    EXPECT_GT(denovo.mem.ownershipRequests, 0u);
}

/** Relaxing atomics never slows a push/dynamic workload down (much). */
TEST_P(PerApp, RelaxationHelpsOrIsNeutral)
{
    const AppId app = GetParam();
    const bool dyn =
        algoProperties(app).traversal == TraversalKind::Dynamic;
    const Cycles drf1 =
        runWorkload(app, propGraph(), parseConfig(dyn ? "DG1" : "SG1"))
            .cycles;
    const Cycles rlx =
        runWorkload(app, propGraph(), parseConfig(dyn ? "DGR" : "SGR"))
            .cycles;
    // Allow 2% modeling noise (different interleavings).
    EXPECT_LT(rlx, drf1 + drf1 / 50);
}

/** DRF0's paired atomics cost at least as much as DRF1's unpaired. */
TEST_P(PerApp, Drf0IsNeverFasterThanDrf1)
{
    const AppId app = GetParam();
    const bool dyn =
        algoProperties(app).traversal == TraversalKind::Dynamic;
    const Cycles drf0 =
        runWorkload(app, propGraph(), parseConfig(dyn ? "DG0" : "SG0"))
            .cycles;
    const Cycles drf1 =
        runWorkload(app, propGraph(), parseConfig(dyn ? "DG1" : "SG1"))
            .cycles;
    EXPECT_GE(drf0, drf1);
}

/** Deterministic replay: identical runs produce identical cycle counts. */
TEST_P(PerApp, DeterministicReplay)
{
    const AppId app = GetParam();
    const bool dyn =
        algoProperties(app).traversal == TraversalKind::Dynamic;
    const SystemConfig cfg = parseConfig(dyn ? "DDR" : "SDR");
    const RunResult a = runWorkload(app, propGraph(), cfg);
    const RunResult b = runWorkload(app, propGraph(), cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.kernels, b.kernels);
}

/** Breakdown cycles are conserved: total == numSms x wall time. */
TEST_P(PerApp, BreakdownConservation)
{
    const AppId app = GetParam();
    const bool dyn =
        algoProperties(app).traversal == TraversalKind::Dynamic;
    const RunResult r = runWorkload(app, propGraph(),
                                    parseConfig(dyn ? "DG1" : "SG1"));
    const double expected = static_cast<double>(r.cycles) * 15;
    EXPECT_NEAR(r.breakdown.total(), expected, expected * 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllApps, PerApp,
                         ::testing::Values(AppId::Pr, AppId::Sssp,
                                           AppId::Mis, AppId::Clr,
                                           AppId::Bc, AppId::Cc),
                         [](const auto& info) {
                             return appName(info.param);
                         });

/** The DRF0 flush/invalidate machinery engages only under DRF0. */
TEST(Properties, Drf0FlushesPerAtomic)
{
    const RunResult drf0 =
        runWorkload(AppId::Pr, propGraph(), parseConfig("SG0"));
    const RunResult drf1 =
        runWorkload(AppId::Pr, propGraph(), parseConfig("SG1"));
    EXPECT_GT(drf0.mem.acquireInvalidatedLines,
              drf1.mem.acquireInvalidatedLines);
}

/** DeNovo with reuse executes a healthy share of atomics at the L1. */
TEST(Properties, DeNovoRealizesAtomicReuse)
{
    const RunResult r =
        runWorkload(AppId::Pr, propGraph(), parseConfig("SD1"));
    EXPECT_GT(r.mem.l1AtomicHits, r.mem.ownershipRequests);
}

/** Kernel counts depend only on the algorithm, not the configuration. */
TEST(Properties, KernelCountsConfigInvariant)
{
    for (AppId app : {AppId::Pr, AppId::Mis}) {
        const auto a =
            runWorkload(app, propGraph(), parseConfig("TG0")).kernels;
        const auto b =
            runWorkload(app, propGraph(), parseConfig("SDR")).kernels;
        EXPECT_EQ(a, b) << appName(app);
    }
}

} // namespace
} // namespace gga
