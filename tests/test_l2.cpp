/**
 * @file
 * Unit tests for the L2 system: latency ranges, per-word atomic
 * serialization, the DeNovo directory (registration, forwarding,
 * recalls), and ownership release.
 */

#include <gtest/gtest.h>

#include "sim/dram.hpp"
#include "sim/engine.hpp"
#include "sim/l2.hpp"
#include "sim/noc.hpp"
#include "sim/params.hpp"

namespace gga {
namespace {

struct L2Fixture : ::testing::Test
{
    L2Fixture() : noc(params), dram(params), l2(engine, params, noc, dram)
    {
    }

    Cycles
    timedRead(std::uint32_t sm, Addr line)
    {
        Cycles done = 0;
        l2.read(sm, line, [this, &done] { done = engine.now(); });
        engine.run();
        return done;
    }

    Cycles
    timedAtomic(std::uint32_t sm, Addr word)
    {
        Cycles done = 0;
        l2.atomic(sm, word, [this, &done] { done = engine.now(); });
        engine.run();
        return done;
    }

    Cycles
    timedGetO(std::uint32_t sm, Addr line)
    {
        Cycles done = 0;
        l2.getOwnership(sm, line, [this, &done] { done = engine.now(); });
        engine.run();
        return done;
    }

    SimParams params;
    Engine engine;
    MeshNoc noc;
    Dram dram;
    L2System l2;
};

TEST_F(L2Fixture, ColdReadGoesToDramThenHits)
{
    const Cycles cold = timedRead(0, 0x1000);
    EXPECT_GT(cold, params.dramLatency);
    const Cycles warm_done = timedRead(0, 0x1000);
    // Second read hits in L2: substantially faster than the cold one.
    EXPECT_LT(warm_done - cold, params.dramLatency);
    EXPECT_EQ(l2.stats().reads, 2u);
    EXPECT_EQ(l2.stats().readMisses, 1u);
}

TEST_F(L2Fixture, AtomicsToSameWordSerialize)
{
    // Warm the line first so timing is pure serialization.
    timedAtomic(0, 0x2000);
    std::vector<Cycles> completions;
    for (int i = 0; i < 4; ++i) {
        l2.atomic(0, 0x2000, [this, &completions] {
            completions.push_back(engine.now());
        });
    }
    engine.run();
    ASSERT_EQ(completions.size(), 4u);
    for (std::size_t i = 1; i < completions.size(); ++i) {
        EXPECT_GE(completions[i] - completions[i - 1],
                  params.atomicServiceInterval);
    }
}

TEST_F(L2Fixture, AtomicsToDifferentWordsOverlap)
{
    timedAtomic(0, 0x3000);
    timedAtomic(0, 0x3100); // warm both lines
    const Cycles t0 = engine.now();
    std::vector<Cycles> completions;
    l2.atomic(0, 0x3000, [this, &completions] {
        completions.push_back(engine.now());
    });
    l2.atomic(1, 0x3100, [this, &completions] {
        completions.push_back(engine.now());
    });
    engine.run();
    ASSERT_EQ(completions.size(), 2u);
    // Different words at (likely) different banks do not serialize by the
    // per-word rule; both finish well within 2x a single round trip.
    EXPECT_LT(completions[1] - t0, 2 * (params.l2BankLatency + 40));
}

TEST_F(L2Fixture, OwnershipRegistersAndForwards)
{
    EXPECT_FALSE(l2.ownerOf(0x4000).has_value());
    timedGetO(2, 0x4000);
    ASSERT_TRUE(l2.ownerOf(0x4000).has_value());
    EXPECT_EQ(*l2.ownerOf(0x4000), 2u);

    // A second SM takes ownership; the previous owner is recalled.
    std::uint32_t recalled_sm = ~0u;
    Addr recalled_line = 0;
    l2.setRecallHandler([&](std::uint32_t sm, Addr line) {
        recalled_sm = sm;
        recalled_line = line;
    });
    timedGetO(5, 0x4000);
    EXPECT_EQ(*l2.ownerOf(0x4000), 5u);
    EXPECT_EQ(recalled_sm, 2u);
    EXPECT_EQ(recalled_line, 0x4000u);
    EXPECT_EQ(l2.stats().forwards, 1u);
}

TEST_F(L2Fixture, ReadForwardsFromRemoteOwner)
{
    timedGetO(3, 0x5000);
    const std::uint64_t fwd_before = l2.stats().forwards;
    timedRead(7, 0x5000);
    EXPECT_EQ(l2.stats().forwards, fwd_before + 1);
    // Ownership unchanged by a read.
    EXPECT_EQ(*l2.ownerOf(0x5000), 3u);
}

TEST_F(L2Fixture, ReleaseOwnershipClearsDirectory)
{
    timedGetO(4, 0x6000);
    l2.releaseOwnership(4, 0x6000);
    engine.run();
    EXPECT_FALSE(l2.ownerOf(0x6000).has_value());
    // Releasing a line owned by someone else is ignored.
    timedGetO(1, 0x6000);
    l2.releaseOwnership(9, 0x6000);
    engine.run();
    EXPECT_EQ(*l2.ownerOf(0x6000), 1u);
}

TEST_F(L2Fixture, OwnershipHandoffsSerializePerLine)
{
    timedGetO(0, 0x7000);
    std::vector<Cycles> completions;
    for (std::uint32_t sm = 1; sm <= 3; ++sm) {
        l2.getOwnership(sm, 0x7000, [this, &completions] {
            completions.push_back(engine.now());
        });
    }
    engine.run();
    ASSERT_EQ(completions.size(), 3u);
    // Each handoff includes a bank->owner->requester transfer; they
    // cannot complete closer together than a couple of hops.
    for (std::size_t i = 1; i < completions.size(); ++i)
        EXPECT_GT(completions[i] - completions[i - 1], 4u);
}

} // namespace
} // namespace gga
