/**
 * @file
 * Tests for the Plan/Session API layer: registry completeness, plan
 * validation (no aborts on invalid input), old-vs-new output parity for
 * every application, the thread-safe GraphStore, and serial-vs-parallel
 * sweep equivalence.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/graph_store.hpp"
#include "api/registry.hpp"
#include "api/session.hpp"
#include "apps/runner.hpp"
#include "graph/generator.hpp"
#include "harness/sweep.hpp"
#include "harness/workloads.hpp"

namespace gga {
namespace {

const CsrGraph&
smallGraph()
{
    static const CsrGraph g = [] {
        GenSpec spec;
        spec.name = "api-small";
        spec.numVertices = 600;
        spec.numDirectedEdges = 3000;
        spec.dist = DegreeDist::PowerLaw;
        spec.p1 = 2.3;
        spec.p2 = 1.5;
        spec.maxDegree = 48;
        spec.fracIntraBlock = 0.3;
        spec.seed = 12345;
        return generateGraph(spec);
    }();
    return g;
}

// --- registry -------------------------------------------------------------

TEST(Registry, AllSixAppsRegistered)
{
    const AppRegistry& reg = AppRegistry::instance();
    EXPECT_EQ(reg.size(), 6u);
    for (AppId app : kAllApps) {
        const AppRegistry::Entry* e = reg.find(app);
        ASSERT_NE(e, nullptr) << appName(app);
        EXPECT_EQ(e->id, app);
        EXPECT_EQ(e->name, appName(app));
        EXPECT_TRUE(e->run && e->runLegacy && e->validConfig);
    }
    EXPECT_EQ(reg.find(static_cast<AppId>(99)), nullptr);
}

TEST(Registry, PropertiesMatchAlgoProperties)
{
    for (AppId app : kAllApps) {
        const AlgoProperties& expected = algoProperties(app);
        const AlgoProperties& got =
            AppRegistry::instance().at(app).properties;
        EXPECT_EQ(got.traversal, expected.traversal) << appName(app);
        EXPECT_EQ(got.control, expected.control) << appName(app);
        EXPECT_EQ(got.information, expected.information) << appName(app);
    }
}

TEST(Registry, ConfigPredicatesMatchTraversal)
{
    const AppRegistry& reg = AppRegistry::instance();
    std::vector<SystemConfig> all = allConfigs(false);
    for (const SystemConfig& c : allConfigs(true))
        all.push_back(c);
    for (AppId app : kAllApps) {
        const bool dynamic =
            algoProperties(app).traversal == TraversalKind::Dynamic;
        EXPECT_EQ(reg.validConfigs(app, all).size(), dynamic ? 6u : 12u)
            << appName(app);
        EXPECT_EQ(reg.at(app).validConfig(parseConfig("SG1")), !dynamic);
        EXPECT_EQ(reg.at(app).validConfig(parseConfig("DD1")), dynamic);
    }
}

TEST(Registry, FindByName)
{
    const AppRegistry& reg = AppRegistry::instance();
    ASSERT_NE(reg.findByName("SSSP"), nullptr);
    EXPECT_EQ(reg.findByName("SSSP")->id, AppId::Sssp);
    EXPECT_EQ(reg.findByName("nope"), nullptr);
}

// --- config parsing -------------------------------------------------------

TEST(Config, TryParseRoundTripsAllValid)
{
    for (bool dyn : {false, true}) {
        for (const SystemConfig& cfg : allConfigs(dyn)) {
            const std::optional<SystemConfig> parsed =
                tryParseConfig(cfg.name());
            ASSERT_TRUE(parsed.has_value()) << cfg.name();
            EXPECT_EQ(*parsed, cfg);
        }
    }
}

TEST(Config, TryParseRejectsMalformedWithoutAborting)
{
    EXPECT_FALSE(tryParseConfig(""));
    EXPECT_FALSE(tryParseConfig("SG"));
    EXPECT_FALSE(tryParseConfig("SGRX"));
    EXPECT_FALSE(tryParseConfig("XGR"));
    EXPECT_FALSE(tryParseConfig("SXR"));
    EXPECT_FALSE(tryParseConfig("SGX"));
    EXPECT_EQ(parseConfig("SGR"), *tryParseConfig("SGR"));
}

// --- plan validation ------------------------------------------------------

TEST(RunPlan, ValidationRejectsIncompletePlans)
{
    Session session;
    EXPECT_TRUE(session.validate(RunPlan{}).has_value());
    EXPECT_TRUE(session.validate(RunPlan{}.app(AppId::Pr)).has_value());
    EXPECT_TRUE(session
                    .validate(RunPlan{}.app(AppId::Pr).graph(
                        GraphPreset::Dct))
                    .has_value());
    EXPECT_FALSE(session
                     .validate(RunPlan{}
                                   .app(AppId::Pr)
                                   .graph(GraphPreset::Dct)
                                   .config("SG1"))
                     .has_value());
}

TEST(RunPlan, ValidationRejectsMalformedConfigName)
{
    Session session;
    const RunPlan plan =
        RunPlan{}.app(AppId::Pr).graph(GraphPreset::Dct).config("QQQ");
    const std::optional<std::string> why = session.validate(plan);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("QQQ"), std::string::npos);
}

TEST(RunPlan, ValidationRejectsInvalidAppConfigPair)
{
    Session session;
    // PR is static: PushPull ("DD1") must be rejected, without aborting.
    std::string error;
    const RunPlan plan =
        RunPlan{}.app(AppId::Pr).graph(GraphPreset::Dct).config("DD1");
    EXPECT_TRUE(session.validate(plan).has_value());
    EXPECT_FALSE(session.tryRun(plan, &error).has_value());
    EXPECT_NE(error.find("PR"), std::string::npos);
    // CC is dynamic: a Push config is likewise invalid.
    EXPECT_TRUE(session
                    .validate(RunPlan{}
                                  .app(AppId::Cc)
                                  .graph(GraphPreset::Dct)
                                  .config("SG1"))
                    .has_value());
}

// --- old-vs-new parity ----------------------------------------------------

TEST(Parity, AllAppsMatchLegacyRunners)
{
    Session session;
    const CsrGraph& g = smallGraph();
    const SimParams params;

    for (AppId app : kAllApps) {
        const bool dynamic =
            algoProperties(app).traversal == TraversalKind::Dynamic;
        const SystemConfig cfg = parseConfig(dynamic ? "DD1" : "SG1");

        std::vector<float> pr_ranks;
        std::vector<std::uint32_t> sssp_dist, mis_state, colors, bc_level,
            cc_labels;
        std::vector<double> bc_delta, bc_sigma;
        AppOutputs sinks;
        sinks.prRanks = &pr_ranks;
        sinks.ssspDist = &sssp_dist;
        sinks.misState = &mis_state;
        sinks.colors = &colors;
        sinks.bcDelta = &bc_delta;
        sinks.bcLevel = &bc_level;
        sinks.bcSigma = &bc_sigma;
        sinks.ccLabels = &cc_labels;
        const RunResult old_run = runWorkload(app, g, cfg, params, &sinks);

        const RunOutcome neu = session.run(
            RunPlan{}.app(app).graph(g, "api-small").config(cfg).params(
                params));

        EXPECT_EQ(neu.result.cycles, old_run.cycles) << appName(app);
        EXPECT_EQ(neu.result.kernels, old_run.kernels) << appName(app);
        EXPECT_TRUE(neu.hasOutput()) << appName(app);
        switch (app) {
          case AppId::Pr:
            ASSERT_NE(neu.pr(), nullptr);
            EXPECT_EQ(neu.pr()->ranks, pr_ranks);
            break;
          case AppId::Sssp:
            ASSERT_NE(neu.sssp(), nullptr);
            EXPECT_EQ(neu.sssp()->dist, sssp_dist);
            break;
          case AppId::Mis:
            ASSERT_NE(neu.mis(), nullptr);
            EXPECT_EQ(neu.mis()->state, mis_state);
            break;
          case AppId::Clr:
            ASSERT_NE(neu.clr(), nullptr);
            EXPECT_EQ(neu.clr()->colors, colors);
            break;
          case AppId::Bc:
            ASSERT_NE(neu.bc(), nullptr);
            EXPECT_EQ(neu.bc()->delta, bc_delta);
            EXPECT_EQ(neu.bc()->level, bc_level);
            EXPECT_EQ(neu.bc()->sigma, bc_sigma);
            break;
          case AppId::Cc:
            ASSERT_NE(neu.cc(), nullptr);
            EXPECT_EQ(neu.cc()->labels, cc_labels);
            break;
        }
    }
}

TEST(Seed, ZeroSeedMatchesUnseededPaperRuns)
{
    // seed=0 must be bit-identical to the legacy unseeded runners for
    // every app: the golden paper results key off it.
    Session session;
    const CsrGraph& g = smallGraph();
    for (AppId app : kAllApps) {
        const bool dynamic =
            algoProperties(app).traversal == TraversalKind::Dynamic;
        const RunPlan base = RunPlan{}
                                 .app(app)
                                 .graph(g, "api-small")
                                 .config(dynamic ? "DD1" : "SG1");
        const RunOutcome unseeded = session.run(base);
        const RunOutcome zero = session.run(RunPlan{base}.seed(0));
        EXPECT_EQ(zero.result.cycles, unseeded.result.cycles)
            << appName(app);
        EXPECT_EQ(zero.result.kernels, unseeded.result.kernels)
            << appName(app);
    }
}

TEST(Seed, PerturbsRandomizedAppsOnly)
{
    // MIS and CLR break symmetry with hashed priorities, so a nonzero
    // seed must change the computed sets/colorings; the deterministic
    // apps ignore the seed entirely.
    Session session;
    const CsrGraph& g = smallGraph();

    const auto misStateWith = [&](std::uint64_t seed) {
        const RunOutcome out = session.run(RunPlan{}
                                               .app(AppId::Mis)
                                               .graph(g, "api-small")
                                               .config("SG1")
                                               .seed(seed));
        EXPECT_NE(out.mis(), nullptr);
        return out.mis()->state;
    };
    const auto same_seed_repeat = misStateWith(7) == misStateWith(7);
    EXPECT_TRUE(same_seed_repeat);
    EXPECT_NE(misStateWith(7), misStateWith(0));

    const auto colorsWith = [&](std::uint64_t seed) {
        const RunOutcome out = session.run(RunPlan{}
                                               .app(AppId::Clr)
                                               .graph(g, "api-small")
                                               .config("SG1")
                                               .seed(seed));
        EXPECT_NE(out.clr(), nullptr);
        return out.clr()->colors;
    };
    EXPECT_NE(colorsWith(9), colorsWith(0));

    const auto prCyclesWith = [&](std::uint64_t seed) {
        return session
            .run(RunPlan{}
                     .app(AppId::Pr)
                     .graph(g, "api-small")
                     .config("SG1")
                     .seed(seed))
            .result.cycles;
    };
    EXPECT_EQ(prCyclesWith(7), prCyclesWith(0));
}

TEST(Parity, OutputsCanBeDisabled)
{
    Session session;
    const RunOutcome out = session.run(RunPlan{}
                                           .app(AppId::Cc)
                                           .graph(smallGraph(), "api-small")
                                           .config("DG1")
                                           .collectOutputs(false));
    EXPECT_FALSE(out.hasOutput());
    EXPECT_EQ(out.cc(), nullptr);
    EXPECT_GT(out.result.cycles, 0u);
}

TEST(Parity, ExplicitPlanCollectOutputsBeatsSessionDefault)
{
    SessionOptions opts;
    opts.collectOutputs = false;
    Session session(opts);
    const RunPlan base = RunPlan{}
                             .app(AppId::Cc)
                             .graph(smallGraph(), "api-small")
                             .config("DG1");
    // No explicit setting: the session default (off) applies.
    EXPECT_FALSE(session.run(base).hasOutput());
    // An explicit .collectOutputs(true) must override the session's
    // collect-off default, not be silently ANDed away.
    EXPECT_TRUE(session.run(RunPlan{base}.collectOutputs(true)).hasOutput());
    // And the reverse: an explicit off wins over a collect-on session.
    Session collecting;
    EXPECT_FALSE(
        collecting.run(RunPlan{base}.collectOutputs(false)).hasOutput());
    EXPECT_TRUE(collecting.run(base).hasOutput());
}

// --- graph store ----------------------------------------------------------

TEST(GraphStoreTest, ConcurrentGetSharesOneBuild)
{
    GraphStore store;
    GraphStore::GraphPtr a, b;
    std::thread t1([&] { a = store.get(GraphPreset::Dct, 0.05); });
    std::thread t2([&] { b = store.get(GraphPreset::Dct, 0.05); });
    t1.join();
    t2.join();
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a.get(), b.get()); // one deterministic build, shared
    EXPECT_EQ(store.size(), 1u);
    EXPECT_GE(a->numVertices(), 64u);
}

TEST(GraphStoreTest, KeysOnPresetAndScale)
{
    GraphStore store;
    const auto small = store.get(GraphPreset::Dct, 0.05);
    const auto other_scale = store.get(GraphPreset::Dct, 0.1);
    const auto other_preset = store.get(GraphPreset::Raj, 0.05);
    EXPECT_NE(small.get(), other_scale.get());
    EXPECT_NE(small.get(), other_preset.get());
    EXPECT_EQ(store.size(), 3u);
    // Same key twice: cached.
    EXPECT_EQ(store.get(GraphPreset::Dct, 0.05).get(), small.get());
}

TEST(GraphStoreTest, QuantizesNearlyEqualScaleKeys)
{
    // 0.1 + 0.2 != 0.3 as raw doubles; a raw-double key would cache two
    // copies of the same graph. The key quantizes to 1e-6, so both
    // spellings share one entry — and eviction finds it from either.
    GraphStore store;
    const double computed = 0.1 + 0.2;
    ASSERT_NE(computed, 0.3); // the premise: raw doubles differ
    EXPECT_EQ(GraphStore::quantizeScale(computed),
              GraphStore::quantizeScale(0.3));
    const auto a = store.get(GraphPreset::Dct, 0.3);
    const auto b = store.get(GraphPreset::Dct, computed);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(store.size(), 1u);
    // Scales at least 1e-6 apart stay distinct.
    EXPECT_NE(GraphStore::quantizeScale(0.3),
              GraphStore::quantizeScale(0.300001));
    EXPECT_TRUE(store.evict(GraphPreset::Dct, computed));
    EXPECT_EQ(store.size(), 0u);
}

TEST(GraphStoreTest, EvictionKeepsOutstandingHandlesValid)
{
    GraphStore store;
    const auto g = store.get(GraphPreset::Dct, 0.05);
    const VertexId n = g->numVertices();
    EXPECT_TRUE(store.evict(GraphPreset::Dct, 0.05));
    EXPECT_FALSE(store.evict(GraphPreset::Dct, 0.05));
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(g->numVertices(), n); // old handle still usable
    const auto rebuilt = store.get(GraphPreset::Dct, 0.05);
    EXPECT_EQ(rebuilt->numVertices(), n); // deterministic rebuild
}

// --- parallel sweep -------------------------------------------------------

TEST(ParallelSweep, BitIdenticalToSerial)
{
    const Workload wl{AppId::Mis, GraphPreset::Raj};
    const SimParams params;
    const SweepResult serial =
        sweepWorkload(wl, figureConfigs(false), params, SweepOptions{1});
    const SweepResult parallel =
        sweepWorkload(wl, figureConfigs(false), params, SweepOptions{3});

    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        EXPECT_EQ(parallel.results[i].config, serial.results[i].config);
        EXPECT_EQ(parallel.results[i].run.cycles,
                  serial.results[i].run.cycles);
        EXPECT_EQ(parallel.results[i].run.kernels,
                  serial.results[i].run.kernels);
        EXPECT_EQ(parallel.results[i].run.events,
                  serial.results[i].run.events);
    }
    EXPECT_EQ(parallel.best, serial.best);
    EXPECT_EQ(parallel.predicted, serial.predicted);
    EXPECT_EQ(parallel.bestCycles, serial.bestCycles);
    EXPECT_EQ(parallel.predictedCycles, serial.predictedCycles);
    EXPECT_EQ(parallel.baselineCycles, serial.baselineCycles);
}

TEST(ParallelSweep, DynamicWorkloadAcrossThreads)
{
    // CC exercises the PushPull body; two threads over its 4 figure
    // configs double as a concurrent-simulator smoke test.
    const Workload wl{AppId::Cc, GraphPreset::Raj};
    const SweepResult sweep = sweepWorkload(
        wl, figureConfigs(true), SimParams{}, SweepOptions{2});
    ASSERT_GE(sweep.results.size(), 4u);
    for (const ConfigResult& r : sweep.results)
        EXPECT_GE(r.run.cycles, sweep.bestCycles);
    EXPECT_NE(sweep.find(sweep.predicted), nullptr);
}

} // namespace
} // namespace gga
