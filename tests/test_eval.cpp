/**
 * @file
 * Tests for the sharded evaluation pipeline: JSON round trips of
 * work-unit manifests and result sets, shard partitioning and
 * shard-count invariance of the merged results, merge rejection of
 * duplicate/missing units, and the GraphStore capacity policy that
 * backs multi-worker hosts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "api/graph_store.hpp"
#include "eval/run.hpp"
#include "graph/mtx_io.hpp"
#include "graph/snapshot.hpp"
#include "harness/figures.hpp"
#include "harness/sweep.hpp"
#include "harness/workloads.hpp"
#include "support/json.hpp"

namespace gga {
namespace {

double
testScale()
{
    return evaluationScale(); // GGA_SCALE, 0.1 under ctest
}

// --- Json ----------------------------------------------------------------

TEST(Json, ScalarRoundTrip)
{
    const Json j = Json::parse(
        "{\"u\": 18446744073709551615, \"i\": -42, \"d\": 0.1, "
        "\"s\": \"a\\n\\\"b\\\"\", \"b\": true, \"n\": null, "
        "\"a\": [1, 2, 3]}");
    EXPECT_EQ(j.at("u").asU64(), 18446744073709551615ull);
    EXPECT_EQ(j.at("i").asI64(), -42);
    EXPECT_EQ(j.at("d").asDouble(), 0.1);
    EXPECT_EQ(j.at("s").asString(), "a\n\"b\"");
    EXPECT_TRUE(j.at("b").asBool());
    EXPECT_TRUE(j.at("n").isNull());
    EXPECT_EQ(j.at("a").asArray().size(), 3u);
    // dump -> parse is the identity (exact integers, exact doubles).
    EXPECT_EQ(Json::parse(j.dump()), j);
    EXPECT_EQ(Json::parse(j.dump(2)), j);
}

TEST(Json, MalformedInputThrows)
{
    EXPECT_THROW(Json::parse(""), JsonError);
    EXPECT_THROW(Json::parse("{"), JsonError);
    EXPECT_THROW(Json::parse("[1,]"), JsonError);
    EXPECT_THROW(Json::parse("{\"a\": 1} trailing"), JsonError);
    EXPECT_THROW(Json::parse("nul"), JsonError);
    EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
    // Duplicate keys would let at()/find() silently pick one of two
    // conflicting values in a hand-edited document.
    EXPECT_THROW(Json::parse("{\"a\": 1, \"a\": 2}"), JsonError);
}

TEST(Json, AccessorMismatchThrows)
{
    const Json j = Json::parse("{\"a\": -1}");
    EXPECT_THROW(j.at("a").asU64(), JsonError);
    EXPECT_THROW(j.at("a").asString(), JsonError);
    EXPECT_THROW(j.at("missing"), JsonError);
    EXPECT_EQ(j.find("missing"), nullptr);
}

// --- WorkUnit ------------------------------------------------------------

WorkUnit
presetUnit(AppId app, GraphPreset g, const char* cfg, double scale)
{
    WorkUnit u;
    u.app = app;
    u.preset = g;
    u.scale = scale;
    u.config = parseConfig(cfg);
    return u;
}

TEST(WorkUnit, JsonRoundTrip)
{
    WorkUnit u = presetUnit(AppId::Mis, GraphPreset::Raj, "SGR", 0.25);
    u.seed = 7;
    u.collectOutputs = true;
    SimParams p;
    p.l1SizeKiB = 64;
    u.params = p;
    const WorkUnit back = WorkUnit::fromJson(u.toJson());
    EXPECT_EQ(back, u);
    EXPECT_EQ(back.key(), u.key());

    WorkUnit file;
    file.app = AppId::Pr;
    file.path = "inputs/raj.mtx";
    file.config = parseConfig("TG0");
    EXPECT_EQ(WorkUnit::fromJson(file.toJson()), file);
}

TEST(WorkUnit, KeyEncodesIdentity)
{
    const WorkUnit base =
        presetUnit(AppId::Pr, GraphPreset::Raj, "SGR", 0.1);
    EXPECT_EQ(base.key(), "PR-RAJ@SGR x100000");

    WorkUnit seeded = base;
    seeded.seed = 3;
    WorkUnit tuned = base;
    SimParams p;
    p.relaxedAtomicWindow = 8;
    tuned.params = p;
    WorkUnit collecting = base;
    collecting.collectOutputs = true;
    const std::set<std::string> keys{base.key(), seeded.key(), tuned.key(),
                                     collecting.key()};
    EXPECT_EQ(keys.size(), 4u) << "every identity field must alter the key";
}

TEST(WorkUnit, FromJsonRejectsGarbage)
{
    EXPECT_THROW(
        WorkUnit::fromJson(Json::parse(
            "{\"app\": \"NOPE\", \"input\": {\"preset\": \"RAJ\"}, "
            "\"config\": \"TG0\"}")),
        EvalError);
    EXPECT_THROW(
        WorkUnit::fromJson(Json::parse(
            "{\"app\": \"PR\", \"input\": {}, \"config\": \"TG0\"}")),
        EvalError);
    EXPECT_THROW(
        WorkUnit::fromJson(Json::parse(
            "{\"app\": \"PR\", \"input\": {\"preset\": \"RAJ\", "
            "\"scale\": 2.0}, \"config\": \"TG0\"}")),
        EvalError);
    EXPECT_THROW(
        WorkUnit::fromJson(Json::parse(
            "{\"app\": \"PR\", \"input\": {\"preset\": \"RAJ\"}, "
            "\"config\": \"XYZ\"}")),
        EvalError);
    EXPECT_THROW(
        WorkUnit::fromJson(Json::parse(
            "{\"app\": \"PR\", \"input\": {\"preset\": \"RAJ\"}, "
            "\"config\": \"TG0\", \"params\": {\"mistyped\": 1}}")),
        EvalError);
    // Typos outside "params" must be as loud as typos inside it.
    EXPECT_THROW(
        WorkUnit::fromJson(Json::parse(
            "{\"app\": \"PR\", \"input\": {\"preset\": \"RAJ\"}, "
            "\"config\": \"TG0\", \"colect_outputs\": true}")),
        EvalError);
    EXPECT_THROW(
        WorkUnit::fromJson(Json::parse(
            "{\"app\": \"PR\", \"input\": {\"path\": \"g.mtx\", "
            "\"scale\": 0.1}, \"config\": \"TG0\"}")),
        EvalError);
    EXPECT_THROW(
        WorkUnit::fromJson(Json::parse(
            "{\"app\": \"PR\", \"input\": {\"preset\": \"RAJ\", "
            "\"path\": \"g.mtx\"}, \"config\": \"TG0\"}")),
        EvalError);
}

// --- Manifest ------------------------------------------------------------

Manifest
smallManifest()
{
    Manifest m;
    for (const char* cfg : {"TG0", "SG1", "SGR", "SD1", "SDR"})
        m.add(presetUnit(AppId::Mis, GraphPreset::Dct, cfg, 0.1));
    for (const char* cfg : {"DG1", "DGR", "DD1", "DDR"})
        m.add(presetUnit(AppId::Cc, GraphPreset::Dct, cfg, 0.1));
    return m;
}

TEST(Manifest, RejectsDuplicates)
{
    Manifest m = smallManifest();
    EXPECT_THROW(
        m.add(presetUnit(AppId::Mis, GraphPreset::Dct, "TG0", 0.1)),
        EvalError);
    EXPECT_FALSE(
        m.addUnique(presetUnit(AppId::Mis, GraphPreset::Dct, "TG0", 0.1)));
    EXPECT_EQ(m.size(), 9u);
}

TEST(Manifest, JsonAndFileRoundTrip)
{
    Manifest m = smallManifest();
    m.meta["figure"] = "test";
    m.meta["scale_units"] = "100000";
    EXPECT_EQ(Manifest::fromJson(m.toJson()), m);

    const std::string path =
        testing::TempDir() + "gga_manifest_roundtrip.json";
    m.save(path);
    EXPECT_EQ(Manifest::load(path), m);
    std::remove(path.c_str());
}

TEST(Manifest, ShardPartitionsExactly)
{
    const Manifest m = smallManifest();
    for (const ShardPolicy policy :
         {ShardPolicy::RoundRobin, ShardPolicy::ByCost}) {
        for (std::size_t count : {1u, 2u, 3u, 4u}) {
            std::set<std::string> seen;
            std::size_t total = 0;
            for (std::size_t i = 0; i < count; ++i) {
                const Manifest shard = m.shard(i, count, policy);
                total += shard.size();
                for (const WorkUnit& u : shard.units())
                    EXPECT_TRUE(seen.insert(u.key()).second)
                        << "unit in two shards: " << u.key();
                // Deterministic: the same call yields the same shard.
                EXPECT_EQ(m.shard(i, count, policy), shard);
            }
            EXPECT_EQ(total, m.size());
            EXPECT_EQ(seen.size(), m.size());
        }
    }
    EXPECT_THROW(m.shard(2, 2), EvalError);
    EXPECT_THROW(m.shard(0, 0), EvalError);
}

TEST(Manifest, SweepParamsAppendsOnePointPerUnit)
{
    Manifest m;
    std::vector<SimParams> points;
    for (std::uint32_t l1 : {8u, 32u, 128u}) {
        SimParams p;
        p.l1SizeKiB = l1;
        points.push_back(p);
    }
    const auto keys = m.sweepParams(AppId::Mis, GraphPreset::Ols,
                                    parseConfig("TG0"), points, 0.1);
    ASSERT_EQ(keys.size(), 3u);
    ASSERT_EQ(m.size(), 3u);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(m.units()[i].key(), keys[i]);
        ASSERT_TRUE(m.units()[i].params.has_value());
        EXPECT_EQ(m.units()[i].params->l1SizeKiB, points[i].l1SizeKiB);
    }
    EXPECT_EQ(std::set<std::string>(keys.begin(), keys.end()).size(), 3u);
}

// --- ResultSet -----------------------------------------------------------

UnitResult
fakeResult(const std::string& key, Cycles cycles)
{
    UnitResult r;
    r.key = key;
    r.run.cycles = cycles;
    r.run.breakdown.busy = 0.25 + static_cast<double>(cycles);
    r.run.mem.l1LoadHits = cycles * 3;
    r.run.events = cycles * 7;
    r.run.kernels = 2;
    return r;
}

TEST(ResultSet, SortedInsertAndLookup)
{
    ResultSet rs;
    rs.add(fakeResult("b", 2));
    rs.add(fakeResult("a", 1));
    rs.add(fakeResult("c", 3));
    ASSERT_EQ(rs.size(), 3u);
    EXPECT_EQ(rs.results()[0].key, "a");
    EXPECT_EQ(rs.results()[2].key, "c");
    EXPECT_EQ(rs.at("b").run.cycles, 2u);
    EXPECT_EQ(rs.find("missing"), nullptr);
    EXPECT_THROW(rs.at("missing"), EvalError);
    EXPECT_THROW(rs.add(fakeResult("a", 9)), EvalError);
}

TEST(ResultSet, JsonRoundTripIsExact)
{
    ResultSet rs;
    UnitResult r = fakeResult("unit", 123456789012345ull);
    OutputSummary s;
    s.kind = "PR";
    s.elements = 99;
    s.hash = 0xdeadbeefcafef00dull;
    r.output = s;
    rs.add(r);
    rs.add(fakeResult("other", 7));
    EXPECT_EQ(ResultSet::fromJson(rs.toJson()), rs);

    const std::string path = testing::TempDir() + "gga_results.json";
    rs.save(path);
    EXPECT_EQ(ResultSet::load(path), rs);
    std::remove(path.c_str());
}

TEST(ResultSet, FromJsonRejectsUnknownMembers)
{
    ResultSet rs;
    rs.add(fakeResult("u1", 1));
    Json j = rs.toJson();
    j.set("note", "hand-edited");
    EXPECT_THROW(ResultSet::fromJson(j), EvalError);

    Json unit = rs.toJson().at("results").asArray()[0];
    unit.set("cycels", 2); // typo'd member alongside the real one
    EXPECT_THROW(UnitResult::fromJson(unit), EvalError);

    Manifest m = smallManifest();
    Json mj = m.toJson();
    mj.set("scale", 0.5); // misplaced top-level member
    EXPECT_THROW(Manifest::fromJson(mj), EvalError);
}

TEST(ResultSet, MergeRejectsDuplicates)
{
    ResultSet a;
    a.add(fakeResult("u1", 1));
    a.add(fakeResult("u2", 2));
    ResultSet b;
    b.add(fakeResult("u2", 2));
    try {
        ResultSet::merge({a, b});
        FAIL() << "merge accepted a duplicated unit";
    } catch (const EvalError& err) {
        EXPECT_NE(std::string(err.what()).find("duplicate"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("u2"), std::string::npos);
    }
}

TEST(ResultSet, VerifyCompleteNamesMissingAndUnexpected)
{
    Manifest m;
    m.add(presetUnit(AppId::Pr, GraphPreset::Dct, "TG0", 0.1));
    m.add(presetUnit(AppId::Pr, GraphPreset::Dct, "SGR", 0.1));

    ResultSet rs;
    rs.add(fakeResult(m.units()[0].key(), 1));
    rs.add(fakeResult("PR-DCT@XXX", 2));
    try {
        rs.verifyComplete(m);
        FAIL() << "verifyComplete accepted an incomplete merge";
    } catch (const EvalError& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("missing"), std::string::npos);
        EXPECT_NE(what.find(m.units()[1].key()), std::string::npos);
        EXPECT_NE(what.find("unexpected"), std::string::npos);
        EXPECT_NE(what.find("PR-DCT@XXX"), std::string::npos);
    }

    ResultSet ok;
    ok.add(fakeResult(m.units()[0].key(), 1));
    ok.add(fakeResult(m.units()[1].key(), 2));
    EXPECT_NO_THROW(ok.verifyComplete(m));
}

// --- shard-count invariance (real simulations) ---------------------------

TEST(ShardInvariance, MergedShardsMatchInProcessRun)
{
    // A small but real slice of the fig5 matrix: every unit is an actual
    // simulation at the ctest GGA_SCALE. One unit collects outputs so
    // the summary hashes cross the JSON boundary too.
    const double scale = testScale();
    std::vector<SweepSpec> specs;
    specs.push_back(buildSweepSpec({AppId::Mis, GraphPreset::Dct},
                                   figureConfigs(false), SimParams{},
                                   scale));
    specs.push_back(buildSweepSpec({AppId::Cc, GraphPreset::Dct},
                                   figureConfigs(true), SimParams{},
                                   scale));
    Manifest manifest = manifestForSpecs(specs);
    WorkUnit with_outputs =
        presetUnit(AppId::Pr, GraphPreset::Dct, "SGR", scale);
    with_outputs.collectOutputs = true;
    manifest.add(with_outputs);

    Session session;
    const ResultSet in_process = runManifest(session, manifest);
    in_process.verifyComplete(manifest);

    for (std::size_t count : {2u, 4u}) {
        std::vector<ResultSet> parts;
        for (std::size_t i = 0; i < count; ++i) {
            // Each shard in its own Session, as separate worker
            // processes would run it — and through a JSON round trip,
            // as worker part files would ship it.
            Session worker;
            const ResultSet part =
                runManifest(worker, manifest.shard(i, count));
            parts.push_back(ResultSet::fromJson(part.toJson()));
        }
        const ResultSet merged = ResultSet::merge(parts);
        merged.verifyComplete(manifest);
        EXPECT_EQ(merged, in_process)
            << count << "-shard merge diverged from the in-process run";
    }

    // The sweep view over the merged results reproduces the legacy sweep.
    const SweepResult sweep = sweepFromResults(specs[0], in_process);
    EXPECT_EQ(sweep.results.size(), specs[0].configs.size());
    for (const ConfigResult& r : sweep.results)
        EXPECT_GE(r.run.cycles, sweep.bestCycles);
    EXPECT_NE(sweep.find(sweep.predicted), nullptr);

    // Outputs were summarized for exactly the collecting unit.
    const UnitResult& collected = in_process.at(with_outputs.key());
    ASSERT_TRUE(collected.output.has_value());
    EXPECT_EQ(collected.output->kind, "PR");
    EXPECT_GT(collected.output->elements, 0u);
}

TEST(ShardInvariance, DuplicateConfigsInSweepListAreTolerated)
{
    // The legacy sweep ran a duplicated configuration twice; the manifest
    // path runs the shared unit once and fans it back out to one result
    // slot per list entry.
    Session session;
    const std::vector<SystemConfig> configs = {parseConfig("TG0"),
                                               parseConfig("TG0")};
    const SweepResult sweep = sweepWorkload(
        session, {AppId::Mis, GraphPreset::Dct}, configs, SimParams{},
        testScale());
    ASSERT_GE(sweep.results.size(), 2u);
    EXPECT_EQ(sweep.results[0].config, sweep.results[1].config);
    EXPECT_EQ(sweep.results[0].run, sweep.results[1].run);
}

// --- MatrixMarket inputs through the GraphStore/Session ------------------

TEST(GraphStoreFile, FileInputsAreCachedAndRunnable)
{
    const std::string path = testing::TempDir() + "gga_store_input.mtx";
    {
        std::ofstream out(path);
        writeMatrixMarket(out, buildPresetScaled(GraphPreset::Dct, 0.05));
    }

    GraphStore& store = GraphStore::instance();
    const auto first = store.getFile(path);
    ASSERT_NE(first, nullptr);
    EXPECT_GT(first->numEdges(), 0u);
    EXPECT_EQ(store.getFile(path).get(), first.get()) << "not cached";

    // Runs through RunPlan::graphFile and matches the same graph passed
    // as a custom handle.
    Session session;
    const RunOutcome via_file = session.run(RunPlan{}
                                                .app(AppId::Pr)
                                                .graphFile(path)
                                                .config("SGR"));
    const RunOutcome via_handle =
        session.run(RunPlan{}.app(AppId::Pr).graph(first, "dct").config(
            "SGR"));
    EXPECT_EQ(via_file.result, via_handle.result);
    EXPECT_EQ(via_file.graphName, path);

    // And as a manifest work unit.
    WorkUnit u;
    u.app = AppId::Pr;
    u.path = path;
    u.config = parseConfig("SGR");
    Manifest m;
    m.add(u);
    const ResultSet rs = runManifest(session, m);
    EXPECT_EQ(rs.at(u.key()).run, via_file.result);

    EXPECT_TRUE(store.evictFile(path));
    EXPECT_FALSE(store.evictFile(path));
    std::remove(path.c_str());

    // Scale is a preset-only knob: a file plan with a scale is invalid.
    EXPECT_NE(session.validate(RunPlan{}
                                   .app(AppId::Pr)
                                   .graphFile(path)
                                   .scale(0.5)
                                   .config("SGR")),
              std::nullopt);
}

// --- GraphStore capacity policy ------------------------------------------

TEST(GraphStoreBudget, LruEvictionKeepsTotalUnderBudget)
{
    GraphStore& store = GraphStore::instance();
    store.clear();
    store.setBudgetBytes(0);

    // Three small graphs, then a budget that fits roughly one of them.
    const auto a = store.get(GraphPreset::Dct, 0.011);
    const auto b = store.get(GraphPreset::Dct, 0.012);
    const auto c = store.get(GraphPreset::Dct, 0.013);
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.totalBytes(),
              a->memoryBytes() + b->memoryBytes() + c->memoryBytes());
    EXPECT_EQ(store.stats().size(), 3u);
    // stats() is most-recently-used first.
    EXPECT_EQ(store.stats().front().name, "DCT");

    // Touch `a` so `b` is the LRU victim, then squeeze.
    (void)store.get(GraphPreset::Dct, 0.011);
    store.setBudgetBytes(a->memoryBytes() + c->memoryBytes());
    EXPECT_EQ(store.budgetBytes(), a->memoryBytes() + c->memoryBytes());
    EXPECT_EQ(store.size(), 2u) << "LRU entry should have been evicted";
    EXPECT_LE(store.totalBytes(), store.budgetBytes());
    // The evicted handle stays usable; a re-get rebuilds identically.
    EXPECT_GT(b->numVertices(), 0u);
    const auto b2 = store.get(GraphPreset::Dct, 0.012);
    EXPECT_EQ(b2->numVertices(), b->numVertices());
    EXPECT_EQ(b2->numEdges(), b->numEdges());

    // A budget smaller than any one graph still keeps the newest entry
    // (the store never evicts below one resident graph).
    store.setBudgetBytes(1);
    EXPECT_EQ(store.size(), 1u);

    store.setBudgetBytes(0);
    store.clear();
}

TEST(GraphStoreBudget, FullScalePresetsAreStoreOwned)
{
    // Full-scale entries used to alias the process-lifetime presetGraph
    // memo — 0 accounted bytes, unevictable, so --graph-budget-mb could
    // never bound a paper-sized worker. They are owned now: accounted,
    // reported, and evictable like every other entry.
    GraphStore& store = GraphStore::instance();
    store.clear();
    store.setBudgetBytes(0);

    const auto full = store.get(GraphPreset::Dct); // scale 1.0
    EXPECT_EQ(full->numEdges(), paperStats(GraphPreset::Dct).edges);
    EXPECT_EQ(store.totalBytes(), full->memoryBytes());
    ASSERT_EQ(store.stats().size(), 1u);
    EXPECT_EQ(store.stats().front().name, "DCT");
    EXPECT_DOUBLE_EQ(store.stats().front().scale, 1.0);
    EXPECT_EQ(store.stats().front().bytes, full->memoryBytes());

    EXPECT_TRUE(store.evict(GraphPreset::Dct));
    EXPECT_EQ(store.totalBytes(), 0u);
    EXPECT_GT(full->numEdges(), 0u) << "outstanding handles stay valid";
    store.clear();
}

TEST(GraphStoreBudget, EvictionOrdersAcrossEntryKinds)
{
    // Preset full-scale, scaled-preset, and MatrixMarket file entries
    // compete under one byte budget in pure LRU order.
    GraphStore& store = GraphStore::instance();
    store.clear();
    store.setBudgetBytes(0);

    const std::string path = testing::TempDir() + "gga_evict_order.mtx";
    {
        std::ofstream out(path);
        writeMatrixMarket(out, buildPresetScaled(GraphPreset::Raj, 0.05));
    }
    const auto full = store.get(GraphPreset::Dct); // oldest
    const auto scaled = store.get(GraphPreset::Dct, 0.05);
    const auto file = store.getFile(path); // newest
    ASSERT_EQ(store.size(), 3u);
    EXPECT_EQ(store.totalBytes(), full->memoryBytes() +
                                      scaled->memoryBytes() +
                                      file->memoryBytes());
    // stats() is most-recently-used first; all three kinds report bytes.
    const auto rows = store.stats();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].name, path);
    EXPECT_EQ(rows[1].name, "DCT");
    EXPECT_EQ(rows[2].name, "DCT");
    for (const auto& r : rows)
        EXPECT_GT(r.bytes, 0u) << r.name;

    // Touch the full-scale entry: the scaled preset becomes LRU and is
    // the first casualty of a squeeze; the file entry goes next.
    (void)store.get(GraphPreset::Dct);
    store.setBudgetBytes(full->memoryBytes() + file->memoryBytes());
    ASSERT_EQ(store.size(), 2u);
    EXPECT_EQ(store.stats()[0].name, "DCT");
    EXPECT_EQ(store.stats()[1].name, path);
    store.setBudgetBytes(full->memoryBytes());
    ASSERT_EQ(store.size(), 1u);
    EXPECT_EQ(store.stats()[0].name, "DCT");
    EXPECT_DOUBLE_EQ(store.stats()[0].scale, 1.0);

    // Pinned-while-in-use: the evicted handles are intact, and re-gets
    // rebuild bit-identical graphs.
    EXPECT_EQ(*store.get(GraphPreset::Dct, 0.05), *scaled);
    EXPECT_EQ(*store.getFile(path), *file);

    store.setBudgetBytes(0);
    store.clear();
    std::remove(path.c_str());
}

// --- GraphStore snapshot cache -------------------------------------------

TEST(GraphStoreSnapshot, CacheDirServesRejectsAndHeals)
{
    GraphStore& store = GraphStore::instance();
    store.clear();
    const std::string dir = testing::TempDir() + "gga_snap_cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    store.setCacheDir(dir);

    // First build populates the cache with one .csrbin per entry.
    const auto built = store.get(GraphPreset::Raj, 0.1);
    std::vector<std::filesystem::path> files;
    for (const auto& e : std::filesystem::directory_iterator(dir))
        files.push_back(e.path());
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(files[0].extension(), ".csrbin");

    // A fresh get() after eviction is served from the snapshot —
    // tampering with the file's payload would be caught, so equality
    // here means the bytes really round-tripped.
    store.evict(GraphPreset::Raj, 0.1);
    EXPECT_EQ(*store.get(GraphPreset::Raj, 0.1), *built);

    // Corrupt the snapshot: the store must reject it, resynthesize the
    // identical graph, and heal the cache file in passing.
    store.evict(GraphPreset::Raj, 0.1);
    std::filesystem::resize_file(files[0], 100);
    EXPECT_EQ(*store.get(GraphPreset::Raj, 0.1), *built);
    store.evict(GraphPreset::Raj, 0.1);
    EXPECT_EQ(loadCsrSnapshot(files[0].string()), *built)
        << "the damaged file should have been overwritten with a good copy";

    // The cache is scoped to the directory setting; clearing it returns
    // the store to pure in-memory behavior for the remaining tests.
    store.setCacheDir("");
    store.clear();
    std::filesystem::remove_all(dir);
}

TEST(GraphStoreSnapshot, WorkerBudgetBoundsAFullScaleManifest)
{
    // The acceptance path behind `gga_worker --graph-budget-mb` on a
    // paper-scale manifest: full-scale store-owned presets competing
    // under a budget smaller than their sum, while the snapshot cache
    // absorbs the rebuild cost of re-faulted entries.
    GraphStore& store = GraphStore::instance();
    store.clear();
    store.setBudgetBytes(0);
    const std::string dir = testing::TempDir() + "gga_budget_cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    Manifest m;
    m.add(presetUnit(AppId::Pr, GraphPreset::Dct, "TG0", 1.0));
    m.add(presetUnit(AppId::Pr, GraphPreset::Raj, "TG0", 1.0));
    m.add(presetUnit(AppId::Pr, GraphPreset::Wng, "TG0", 1.0));
    ASSERT_EQ(m.graphInputs().size(), 3u);

    // Budget below the three graphs' combined footprint (DCT alone is
    // ~1.6 MB) — the worker must shed inputs as it goes.
    const std::size_t budget = 3u << 20;
    SessionOptions opts;
    opts.graphBudgetBytes = budget;
    opts.graphCacheDir = dir;
    Session session(opts);
    const ResultSet results = runManifest(session, m);

    EXPECT_EQ(results.size(), 3u);
    EXPECT_EQ(store.budgetBytes(), budget);
    EXPECT_LE(store.totalBytes(), budget)
        << "resident graph bytes must stay bounded after a full-scale "
           "manifest";
    EXPECT_LT(store.size(), 3u)
        << "a budget below the combined footprint cannot keep every "
           "full-scale input resident";

    store.setBudgetBytes(0);
    store.setCacheDir("");
    store.clear();
    std::filesystem::remove_all(dir);
}

// --- per-app params presets ----------------------------------------------

TEST(RegistryParams, EveryAppRegistersTheTableIvPreset)
{
    for (const AppRegistry::Entry& e : AppRegistry::instance().entries())
        EXPECT_EQ(e.params, SimParams{}) << e.name;
}

TEST(RegistryParams, UnitWithoutParamsRunsTheRegistryPreset)
{
    const WorkUnit u = presetUnit(AppId::Pr, GraphPreset::Dct, "SGR", 0.1);
    const RunPlan plan = planForUnit(u);
    ASSERT_TRUE(plan.plannedParams().has_value());
    EXPECT_EQ(*plan.plannedParams(),
              AppRegistry::instance().at(AppId::Pr).params);
    EXPECT_EQ(plan.outputsRequested(), std::optional<bool>(false));
}

// --- figure sets ----------------------------------------------------------

TEST(FigureSet, ManifestMetaRebuildsTheSet)
{
    // Tiny scale: figureSet builds graphs to compute predictions.
    const FigureSet set = figureSet("fig5", 0.01);
    EXPECT_EQ(set.specs.size(), 36u);
    EXPECT_GT(set.manifest.size(), 0u);

    const Manifest round_tripped =
        Manifest::fromJson(set.manifest.toJson());
    const FigureSet rebuilt = figureSetFromManifest(round_tripped);
    EXPECT_EQ(rebuilt.figure, "fig5");
    EXPECT_EQ(rebuilt.manifest.units(), set.manifest.units());

    Manifest edited = round_tripped;
    edited.meta["scale_units"] = "20000"; // stale meta != units
    EXPECT_THROW(figureSetFromManifest(edited), EvalError);

    Manifest no_meta = round_tripped;
    no_meta.meta.clear();
    EXPECT_THROW(figureSetFromManifest(no_meta), EvalError);

    EXPECT_THROW(figureSet("fig9", 0.01), EvalError);
}

TEST(FigureSet, OffGridScaleQuantizesAndRebuilds)
{
    // A scale that is not on the 1e-6 key grid must be snapped at build
    // time, or the meta (scale_units) could not rebuild the exact units.
    const FigureSet set = figureSet("fig5", 0.0123456789);
    EXPECT_EQ(set.scale, 0.012346);
    for (const SweepSpec& s : set.specs)
        for (const WorkUnit& u : s.units)
            EXPECT_EQ(u.scale, set.scale);
    const FigureSet rebuilt = figureSetFromManifest(
        Manifest::fromJson(set.manifest.toJson()));
    EXPECT_EQ(rebuilt.manifest.units(), set.manifest.units());
}

TEST(FigureSet, NonDefaultParamsSurviveTheMetaRoundTrip)
{
    SimParams params;
    params.l1SizeKiB = 64;
    const FigureSet set = figureSet("fig5", 0.01, false, params);
    ASSERT_TRUE(set.manifest.meta.count("params"));
    const FigureSet rebuilt = figureSetFromManifest(
        Manifest::fromJson(set.manifest.toJson()));
    EXPECT_EQ(rebuilt.manifest.units(), set.manifest.units());
}

TEST(FigureSet, PartialDedupesOverlappingSweeps)
{
    const FigureSet set = figureSet("partial", 0.01);
    EXPECT_EQ(set.specs.size(), 36u);
    EXPECT_EQ(set.restricted.size(), 36u);
    std::size_t spec_units = 0;
    for (const SweepSpec& s : set.specs)
        spec_units += s.units.size();
    for (const SweepSpec& s : set.restricted)
        spec_units += s.units.size();
    EXPECT_LT(set.manifest.size(), spec_units)
        << "the restricted sweeps must share units with the full ones";
    // Every spec unit is resolvable in the manifest.
    for (const SweepSpec& s : set.restricted)
        for (const WorkUnit& u : s.units)
            EXPECT_TRUE(set.manifest.contains(u.key()));
}

} // namespace
} // namespace gga
