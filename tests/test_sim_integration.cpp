/**
 * @file
 * Integration tests of the SIMT execution layer: kernels on the full Gpu
 * with coroutine warps — issue accounting, barriers, consistency-model
 * timing relationships, and breakdown conservation.
 */

#include <gtest/gtest.h>

#include "apps/kernel_util.hpp"
#include "sim/gpu.hpp"
#include "sim/warp.hpp"

namespace gga {
namespace {

/** Kernel: every warp does `n` dependent compute ops. */
WarpTask
computeKernel(Warp& w, std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i)
        co_await w.compute(4);
}

/** Kernel: each warp loads one line derived from its id. */
WarpTask
loadKernel(Warp& w, DeviceBuffer<std::uint32_t>& buf)
{
    AddrSet lines;
    kutil::addElem(lines, buf, w.globalWarpId() % buf.size(),
                   w.params().lineBytes);
    co_await w.load(lines);
}

/** Kernel: `n` fire-and-forget atomics to distinct words per warp. */
WarpTask
atomicKernel(Warp& w, DeviceBuffer<std::uint32_t>& buf, std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i) {
        AddrSet words;
        words.pushUnique(
            kutil::wordOf(buf, (w.globalWarpId() * 131 + i) % buf.size()));
        co_await w.atomic(words, /*needs_value=*/false);
    }
}

/** Kernel: barrier between two compute phases, recording phase times. */
WarpTask
barrierKernel(Warp& w, std::vector<Cycles>& after_barrier, Engine& eng)
{
    co_await w.compute(10 * (1 + w.globalWarpId() % 8));
    co_await w.barrier();
    after_barrier.push_back(eng.now());
    co_await w.compute(1);
}

TEST(SimIntegration, BreakdownTotalsMatchWallTime)
{
    Gpu gpu(SimParams{}, CoherenceKind::Gpu, ConsistencyKind::Drf0);
    gpu.launch("compute", 2048,
               [](Warp& w) { return computeKernel(w, 8); });
    const StallBreakdown b = gpu.totalBreakdown();
    const double expected =
        static_cast<double>(gpu.now()) * gpu.params().numSms;
    EXPECT_NEAR(b.total(), expected, expected * 0.01);
    EXPECT_GT(b.busy, 0.0);
    EXPECT_GT(b.comp, 0.0);
}

TEST(SimIntegration, LoadsProduceDataStalls)
{
    Gpu gpu(SimParams{}, CoherenceKind::Gpu, ConsistencyKind::Drf0);
    DeviceBuffer<std::uint32_t> buf(gpu.mem(), 4096, "buf");
    gpu.launch("loads", 2048,
               [&buf](Warp& w) { return loadKernel(w, buf); });
    EXPECT_GT(gpu.totalBreakdown().data, 0.0);
    EXPECT_GT(gpu.memStats().l1LoadMisses, 0u);
}

TEST(SimIntegration, BarrierReleasesAllWarpsTogether)
{
    Gpu gpu(SimParams{}, CoherenceKind::Gpu, ConsistencyKind::Drf0);
    std::vector<Cycles> after;
    gpu.launch("barrier", 256, [&](Warp& w) {
        return barrierKernel(w, after, gpu.engine());
    });
    ASSERT_EQ(after.size(), 8u); // one thread block => 8 warps
    for (Cycles t : after)
        EXPECT_EQ(t, after.front());
    EXPECT_GT(gpu.totalBreakdown().sync, 0.0);
}

TEST(SimIntegration, MultipleKernelsAccumulate)
{
    Gpu gpu(SimParams{}, CoherenceKind::Gpu, ConsistencyKind::Drf1);
    gpu.launch("a", 512, [](Warp& w) { return computeKernel(w, 2); });
    const Cycles after_first = gpu.now();
    gpu.launch("b", 512, [](Warp& w) { return computeKernel(w, 2); });
    EXPECT_GT(gpu.now(), after_first);
    EXPECT_EQ(gpu.kernelsLaunched(), 2u);
}

struct ConsistencyTiming : ::testing::TestWithParam<int>
{
};

/** DRF0 > DRF1 > DRFrlx for an atomic-heavy kernel (GPU coherence). */
TEST(SimIntegration, ConsistencyOrderingOnAtomicKernel)
{
    Cycles cycles[3];
    int i = 0;
    for (ConsistencyKind con : {ConsistencyKind::Drf0, ConsistencyKind::Drf1,
                                ConsistencyKind::DrfRlx}) {
        Gpu gpu(SimParams{}, CoherenceKind::Gpu, con);
        DeviceBuffer<std::uint32_t> buf(gpu.mem(), 1 << 14, "data");
        gpu.launch("atomics", 1024, [&buf](Warp& w) {
            return atomicKernel(w, buf, 32);
        });
        cycles[i++] = gpu.now();
    }
    EXPECT_GT(cycles[0], cycles[1]); // DRF0 pays flush/invalidate + order
    EXPECT_GT(cycles[1], cycles[2]); // DRF1 pays atomic ordering
}

TEST(SimIntegration, DeNovoAtomicReuseBeatsGpuAtomics)
{
    // All warps hammer a small set of words repeatedly from one SM wave:
    // DeNovo executes them at the L1 after one registration.
    Cycles gpu_cycles = 0, denovo_cycles = 0;
    for (CoherenceKind coh : {CoherenceKind::Gpu, CoherenceKind::DeNovo}) {
        SimParams p;
        p.numSms = 1; // single SM: pure local-reuse scenario
        Gpu gpu(p, coh, ConsistencyKind::Drf1);
        DeviceBuffer<std::uint32_t> buf(gpu.mem(), 64, "hot");
        gpu.launch("hot-atomics", 256, [&buf](Warp& w) {
            return atomicKernel(w, buf, 64);
        });
        (coh == CoherenceKind::Gpu ? gpu_cycles : denovo_cycles) =
            gpu.now();
    }
    EXPECT_LT(denovo_cycles, gpu_cycles);
}

TEST(SimIntegration, RelaxedWindowBoundsOutstanding)
{
    // With a window of 1, DRFrlx behaves like DRF1 on atomic chains.
    SimParams p1;
    p1.relaxedAtomicWindow = 1;
    Gpu rlx1(p1, CoherenceKind::Gpu, ConsistencyKind::DrfRlx);
    DeviceBuffer<std::uint32_t> b1(rlx1.mem(), 1 << 14, "d1");
    rlx1.launch("a", 1024,
                [&b1](Warp& w) { return atomicKernel(w, b1, 16); });

    Gpu drf1(SimParams{}, CoherenceKind::Gpu, ConsistencyKind::Drf1);
    DeviceBuffer<std::uint32_t> b2(drf1.mem(), 1 << 14, "d2");
    drf1.launch("a", 1024,
                [&b2](Warp& w) { return atomicKernel(w, b2, 16); });

    const double ratio =
        static_cast<double>(rlx1.now()) / static_cast<double>(drf1.now());
    EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(SimIntegration, KernelEndDrainsStoreBuffers)
{
    Gpu gpu(SimParams{}, CoherenceKind::DeNovo, ConsistencyKind::DrfRlx);
    DeviceBuffer<std::uint32_t> buf(gpu.mem(), 1 << 14, "data");
    gpu.launch("atomics", 2048,
               [&buf](Warp& w) { return atomicKernel(w, buf, 8); });
    for (std::uint32_t s = 0; s < gpu.params().numSms; ++s) {
        EXPECT_TRUE(gpu.l1(s).storeBuffer().empty());
        EXPECT_EQ(gpu.l1(s).pendingStoreFills(), 0u);
    }
}

} // namespace
} // namespace gga
