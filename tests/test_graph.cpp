/**
 * @file
 * Unit tests for the graph substrate: builder canonicalization (both
 * construction paths), CSR invariants, degree statistics, MatrixMarket
 * IO, binary snapshot round trips.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/degree_stats.hpp"
#include "graph/mtx_io.hpp"
#include "graph/snapshot.hpp"
#include "support/rng.hpp"

namespace gga {
namespace {

/** Materialize a CSR span accessor for gtest's container EXPECT_EQ. */
template <typename T>
std::vector<T>
toVec(std::span<const T> s)
{
    return {s.begin(), s.end()};
}

TEST(GraphBuilder, SymmetrizesAndDedupes)
{
    GraphBuilder b(4);
    b.addEdge(0, 1);
    b.addEdge(0, 1); // duplicate
    b.addEdge(1, 0); // reverse of an existing pair
    b.addEdge(2, 3);
    const CsrGraph g = b.build();
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 4u); // pairs {0,1} and {2,3}, both directions
    EXPECT_TRUE(g.isSymmetric());
}

TEST(GraphBuilder, RemovesSelfLoops)
{
    GraphBuilder b(3);
    b.addEdge(0, 0);
    b.addEdge(1, 2);
    const CsrGraph g = b.build();
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(g.hasNoSelfLoops());
}

TEST(GraphBuilder, SortedAdjacency)
{
    GraphBuilder b(5);
    b.addEdge(0, 4);
    b.addEdge(0, 2);
    b.addEdge(0, 3);
    const CsrGraph g = b.build();
    const auto nb = g.neighbors(0);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(GraphBuilder, WeightsSymmetricAndInRange)
{
    GraphBuilder b(6);
    for (VertexId v = 1; v < 6; ++v)
        b.addEdge(0, v);
    const CsrGraph g = b.build(/*with_weights=*/true);
    ASSERT_TRUE(g.hasWeights());
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        for (EdgeId e = g.edgeBegin(u); e < g.edgeEnd(u); ++e) {
            const std::uint32_t w = g.edgeWeight(e);
            EXPECT_GE(w, 1u);
            EXPECT_LE(w, 31u);
            EXPECT_EQ(w, pairWeight(u, g.edgeTarget(e)));
            EXPECT_EQ(w, pairWeight(g.edgeTarget(e), u));
        }
    }
}

/**
 * A messy random multigraph — duplicates, reverses, self-loops, hubs —
 * for exercising both builder paths over identical input.
 */
GraphBuilder
messyBuilder(VertexId n, std::size_t raw_edges, std::uint64_t seed)
{
    GraphBuilder b(n);
    Xoshiro256StarStar rng(seed);
    for (std::size_t i = 0; i < raw_edges; ++i) {
        // A skewed source distribution makes a few hub rows, so the
        // parallel per-row phases see imbalanced work.
        const auto u = static_cast<VertexId>(
            rng.nextBounded((rng.next() & 3) ? n : n / 16 + 1));
        const auto v = static_cast<VertexId>(rng.nextBounded(n));
        b.addEdge(u, v);
        if ((rng.next() & 7) == 0)
            b.addEdge(u, v); // duplicate
        if ((rng.next() & 7) == 1)
            b.addEdge(v, u); // explicit reverse
        if ((rng.next() & 15) == 2)
            b.addEdge(u, u); // self-loop
    }
    return b;
}

TEST(GraphBuilder, CountingBuildMatchesReferenceSortAtAnyThreadCount)
{
    // ~79k raw edges: large enough that the builder really fans out
    // (its minimum slice is ~16k raw edges per worker).
    for (const bool keep_self_loops : {false, true}) {
        for (const bool with_weights : {false, true}) {
            GraphBuilder b = messyBuilder(997, 60000, 42);
            b.keepSelfLoops(keep_self_loops);
            const CsrGraph reference = b.buildReferenceSort(with_weights);
            for (const unsigned threads : {1u, 2u, 3u, 8u}) {
                b.threads(threads);
                EXPECT_EQ(b.build(with_weights), reference)
                    << "threads=" << threads << " weights=" << with_weights
                    << " self_loops=" << keep_self_loops;
            }
        }
    }
}

TEST(GraphBuilder, CountingBuildHandlesDegenerateShapes)
{
    // All edges in one row (a single scatter target) and an empty
    // builder both go through the counting path's boundary arithmetic.
    GraphBuilder star(64);
    for (VertexId v = 1; v < 64; ++v)
        star.addEdge(0, v);
    star.threads(4);
    EXPECT_EQ(star.build(true), star.buildReferenceSort(true));

    GraphBuilder empty(8);
    empty.threads(4);
    EXPECT_EQ(empty.build(), empty.buildReferenceSort());
    EXPECT_EQ(empty.build().numEdges(), 0u);
}

TEST(CsrGraph, DegreesAndAccessors)
{
    GraphBuilder b(4);
    b.addUndirected(0, 1);
    b.addUndirected(0, 2);
    b.addUndirected(0, 3);
    const CsrGraph g = b.build();
    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_DOUBLE_EQ(g.avgDegree(), 6.0 / 4.0);
    EXPECT_EQ(g.edgeEnd(0) - g.edgeBegin(0), 3u);
}

TEST(DegreeStats, StarGraph)
{
    GraphBuilder b(5);
    for (VertexId v = 1; v < 5; ++v)
        b.addEdge(0, v);
    const CsrGraph g = b.build();
    const DegreeStats s = computeDegreeStats(g);
    EXPECT_EQ(s.maxDegree, 4u);
    EXPECT_DOUBLE_EQ(s.avgDegree, 8.0 / 5.0);
    EXPECT_GT(s.stddevDegree, 1.0);
}

TEST(MtxIo, ParsesGeneralPattern)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% comment line\n"
        "3 3 2\n"
        "1 2\n"
        "3 1\n");
    const CsrGraph g = readMatrixMarket(in);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 4u); // symmetrized
    EXPECT_TRUE(g.isSymmetric());
}

TEST(MtxIo, ParsesSymmetricRealAndIgnoresValues)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "4 4 3\n"
        "2 1 0.5\n"
        "3 3 1.0\n" // self loop -> dropped
        "4 2 2.5\n");
    const CsrGraph g = readMatrixMarket(in);
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_TRUE(g.hasNoSelfLoops());
}

TEST(MtxIo, RoundTrips)
{
    GraphBuilder b(6);
    b.addUndirected(0, 1);
    b.addUndirected(2, 5);
    b.addUndirected(3, 4);
    const CsrGraph g = b.build();

    std::ostringstream out;
    writeMatrixMarket(out, g);
    std::istringstream in(out.str());
    const CsrGraph g2 = readMatrixMarket(in);
    EXPECT_EQ(g2.numVertices(), g.numVertices());
    EXPECT_EQ(g2.numEdges(), g.numEdges());
    EXPECT_EQ(toVec(g2.rowOffsets()), toVec(g.rowOffsets()));
    EXPECT_EQ(toVec(g2.colIndices()), toVec(g.colIndices()));
}

TEST(MtxIo, RoundTripsGraphWithSelfLoops)
{
    // The writer must emit v <= u pairs: a strict v < u dropped the
    // diagonal, so any graph carrying self-loops came back smaller.
    GraphBuilder b(4);
    b.keepSelfLoops(true);
    b.addUndirected(0, 1);
    b.addUndirected(1, 2);
    b.addEdge(0, 0);
    b.addEdge(3, 3);
    const CsrGraph g = b.build(/*with_weights=*/true);
    EXPECT_FALSE(g.hasNoSelfLoops());
    EXPECT_EQ(g.numEdges(), 6u); // 2 pairs doubled + 2 self-loops

    std::ostringstream out;
    writeMatrixMarket(out, g);

    // Lossless path: keep self-loops on re-read.
    std::istringstream in(out.str());
    const CsrGraph g2 =
        readMatrixMarket(in, /*with_weights=*/true,
                         /*keep_self_loops=*/true);
    EXPECT_EQ(toVec(g2.rowOffsets()), toVec(g.rowOffsets()));
    EXPECT_EQ(toVec(g2.colIndices()), toVec(g.colIndices()));
    // Weights are a deterministic endpoint hash, so they round-trip too.
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        EXPECT_EQ(g2.edgeWeight(e), g.edgeWeight(e)) << e;

    // Default read still canonicalizes (paper Sec. V-A): loops dropped.
    std::istringstream in2(out.str());
    const CsrGraph canon = readMatrixMarket(in2);
    EXPECT_TRUE(canon.hasNoSelfLoops());
    EXPECT_EQ(canon.numEdges(), 4u);
}

// --- binary CSR snapshots -------------------------------------------------

class CsrSnapshot : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = testing::TempDir() + "gga_snapshot_test.csrbin";
        std::remove(path_.c_str());
    }
    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(CsrSnapshot, RoundTripsExactly)
{
    const CsrGraph g = messyBuilder(257, 4000, 7).build(true);
    saveCsrSnapshot(path_, g);
    EXPECT_EQ(loadCsrSnapshot(path_), g);

    // Weightless graphs round-trip too (the flag bit, not a zero blob).
    const CsrGraph bare = messyBuilder(57, 400, 8).build(false);
    saveCsrSnapshot(path_, bare);
    const CsrGraph loaded = loadCsrSnapshot(path_);
    EXPECT_EQ(loaded, bare);
    EXPECT_FALSE(loaded.hasWeights());
}

TEST_F(CsrSnapshot, RejectsMissingTruncatedAndTrailing)
{
    EXPECT_THROW(loadCsrSnapshot(path_), SnapshotError) << "missing file";

    const CsrGraph g = messyBuilder(257, 4000, 9).build(true);
    saveCsrSnapshot(path_, g);
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    const auto full_size = static_cast<std::size_t>(in.tellg());
    in.close();
    for (const std::size_t keep :
         {std::size_t{10}, std::size_t{100}, full_size - 1}) {
        std::filesystem::resize_file(path_, keep);
        EXPECT_THROW(loadCsrSnapshot(path_), SnapshotError)
            << "truncated to " << keep << " bytes";
    }

    saveCsrSnapshot(path_, g);
    std::ofstream(path_, std::ios::binary | std::ios::app) << "junk";
    EXPECT_THROW(loadCsrSnapshot(path_), SnapshotError) << "trailing bytes";
}

TEST_F(CsrSnapshot, RejectsBitFlipsAnywhereInThePayload)
{
    const CsrGraph g = messyBuilder(257, 4000, 10).build(true);
    saveCsrSnapshot(path_, g);
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.close();
    for (const double frac : {0.3, 0.6, 0.95}) {
        const auto pos =
            static_cast<std::streamoff>(48 + (size - 48) * frac);
        std::fstream f(path_,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(pos);
        const char byte = static_cast<char>(f.get() ^ 0x20);
        f.seekp(pos);
        f.put(byte);
        f.close();
        EXPECT_THROW(loadCsrSnapshot(path_), SnapshotError)
            << "flip at offset " << pos;
        saveCsrSnapshot(path_, g); // restore for the next round
    }
}

TEST_F(CsrSnapshot, RejectsForeignFilesAndVersions)
{
    std::ofstream(path_, std::ios::binary)
        << "%%MatrixMarket matrix coordinate pattern general\n1 1 0\n";
    EXPECT_THROW(loadCsrSnapshot(path_), SnapshotError);

    // A future format version must be refused, not misparsed.
    const CsrGraph g = messyBuilder(57, 400, 11).build(true);
    saveCsrSnapshot(path_, g);
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8); // the version field follows the 8-byte magic
    const std::uint32_t future = kSnapshotFormatVersion + 1;
    f.write(reinterpret_cast<const char*>(&future), sizeof future);
    f.close();
    EXPECT_THROW(loadCsrSnapshot(path_), SnapshotError);
}

TEST_F(CsrSnapshot, MmapLoadIsByteIdenticalToCopyLoad)
{
    const CsrGraph g = messyBuilder(257, 4000, 12).build(true);
    saveCsrSnapshot(path_, g);
    const CsrGraph copied = loadCsrSnapshot(path_, SnapshotLoadMode::Copy);
    const CsrGraph mapped = loadCsrSnapshot(path_, SnapshotLoadMode::Mmap);
    const CsrGraph autod = loadCsrSnapshot(path_); // Auto defaults to mmap
    EXPECT_FALSE(copied.borrowsStorage());
    EXPECT_TRUE(mapped.borrowsStorage());
    EXPECT_TRUE(autod.borrowsStorage());
    EXPECT_EQ(copied, g);
    EXPECT_EQ(mapped, g);
    EXPECT_EQ(autod, g);
    EXPECT_EQ(toVec(mapped.rowOffsets()), toVec(copied.rowOffsets()));
    EXPECT_EQ(toVec(mapped.colIndices()), toVec(copied.colIndices()));
    EXPECT_EQ(toVec(mapped.weights()), toVec(copied.weights()));

    // Weightless snapshots map too (no weights blob, empty span).
    const CsrGraph bare = messyBuilder(57, 400, 13).build(false);
    saveCsrSnapshot(path_, bare);
    const CsrGraph bare_mapped =
        loadCsrSnapshot(path_, SnapshotLoadMode::Mmap);
    EXPECT_EQ(bare_mapped, bare);
    EXPECT_FALSE(bare_mapped.hasWeights());
}

TEST_F(CsrSnapshot, MmapRejectsCorruptionLikeTheCopyPath)
{
    const CsrGraph g = messyBuilder(257, 4000, 14).build(true);
    saveCsrSnapshot(path_, g);
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    const auto full_size = static_cast<std::size_t>(in.tellg());
    in.close();

    std::filesystem::resize_file(path_, full_size - 4);
    for (const auto mode :
         {SnapshotLoadMode::Mmap, SnapshotLoadMode::Copy}) {
        EXPECT_THROW(loadCsrSnapshot(path_, mode), SnapshotError)
            << "truncated";
    }

    saveCsrSnapshot(path_, g);
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(full_size / 2));
    f.put('\x7f');
    f.close();
    for (const auto mode :
         {SnapshotLoadMode::Mmap, SnapshotLoadMode::Copy}) {
        EXPECT_THROW(loadCsrSnapshot(path_, mode), SnapshotError)
            << "bit flip";
    }

    // A missing file is "mmap unavailable": Mmap mode refuses, Auto
    // falls back to the copy path and reports its error.
    std::remove(path_.c_str());
    EXPECT_THROW(loadCsrSnapshot(path_, SnapshotLoadMode::Mmap),
                 SnapshotError);
    EXPECT_THROW(loadCsrSnapshot(path_, SnapshotLoadMode::Auto),
                 SnapshotError);
}

TEST_F(CsrSnapshot, MappedGraphOutlivesTheSnapshotFile)
{
    // The mapping, not the file name, keeps the pages alive: a cache
    // eviction (unlink) under a resident graph must not invalidate it.
    const CsrGraph g = messyBuilder(257, 4000, 15).build(true);
    saveCsrSnapshot(path_, g);
    const CsrGraph mapped = loadCsrSnapshot(path_, SnapshotLoadMode::Mmap);
    ASSERT_EQ(std::remove(path_.c_str()), 0);
    EXPECT_EQ(mapped, g);

    // Copies of a borrowed graph share the mapping and stay valid after
    // the original goes away.
    auto copy = std::make_unique<CsrGraph>(mapped);
    const CsrGraph moved = [&] {
        CsrGraph tmp = *copy;
        copy.reset();
        return tmp;
    }();
    EXPECT_EQ(moved, g);
}

TEST(CsrSnapshotName, IsContentAddressed)
{
    EXPECT_EQ(csrSnapshotFileName("AMZ", 1000000, 0x1234abcdu),
              "AMZ_s1000000_000000001234abcd.csrbin");
    EXPECT_NE(csrSnapshotFileName("AMZ", 1000000, 1),
              csrSnapshotFileName("AMZ", 1000000, 2));
    EXPECT_NE(csrSnapshotFileName("AMZ", 500000, 1),
              csrSnapshotFileName("AMZ", 1000000, 1));
}

} // namespace
} // namespace gga
