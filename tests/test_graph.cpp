/**
 * @file
 * Unit tests for the graph substrate: builder canonicalization, CSR
 * invariants, degree statistics, MatrixMarket IO.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/degree_stats.hpp"
#include "graph/mtx_io.hpp"

namespace gga {
namespace {

TEST(GraphBuilder, SymmetrizesAndDedupes)
{
    GraphBuilder b(4);
    b.addEdge(0, 1);
    b.addEdge(0, 1); // duplicate
    b.addEdge(1, 0); // reverse of an existing pair
    b.addEdge(2, 3);
    const CsrGraph g = b.build();
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 4u); // pairs {0,1} and {2,3}, both directions
    EXPECT_TRUE(g.isSymmetric());
}

TEST(GraphBuilder, RemovesSelfLoops)
{
    GraphBuilder b(3);
    b.addEdge(0, 0);
    b.addEdge(1, 2);
    const CsrGraph g = b.build();
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(g.hasNoSelfLoops());
}

TEST(GraphBuilder, SortedAdjacency)
{
    GraphBuilder b(5);
    b.addEdge(0, 4);
    b.addEdge(0, 2);
    b.addEdge(0, 3);
    const CsrGraph g = b.build();
    const auto nb = g.neighbors(0);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(GraphBuilder, WeightsSymmetricAndInRange)
{
    GraphBuilder b(6);
    for (VertexId v = 1; v < 6; ++v)
        b.addEdge(0, v);
    const CsrGraph g = b.build(/*with_weights=*/true);
    ASSERT_TRUE(g.hasWeights());
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        for (EdgeId e = g.edgeBegin(u); e < g.edgeEnd(u); ++e) {
            const std::uint32_t w = g.edgeWeight(e);
            EXPECT_GE(w, 1u);
            EXPECT_LE(w, 31u);
            EXPECT_EQ(w, pairWeight(u, g.edgeTarget(e)));
            EXPECT_EQ(w, pairWeight(g.edgeTarget(e), u));
        }
    }
}

TEST(CsrGraph, DegreesAndAccessors)
{
    GraphBuilder b(4);
    b.addUndirected(0, 1);
    b.addUndirected(0, 2);
    b.addUndirected(0, 3);
    const CsrGraph g = b.build();
    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_DOUBLE_EQ(g.avgDegree(), 6.0 / 4.0);
    EXPECT_EQ(g.edgeEnd(0) - g.edgeBegin(0), 3u);
}

TEST(DegreeStats, StarGraph)
{
    GraphBuilder b(5);
    for (VertexId v = 1; v < 5; ++v)
        b.addEdge(0, v);
    const CsrGraph g = b.build();
    const DegreeStats s = computeDegreeStats(g);
    EXPECT_EQ(s.maxDegree, 4u);
    EXPECT_DOUBLE_EQ(s.avgDegree, 8.0 / 5.0);
    EXPECT_GT(s.stddevDegree, 1.0);
}

TEST(MtxIo, ParsesGeneralPattern)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% comment line\n"
        "3 3 2\n"
        "1 2\n"
        "3 1\n");
    const CsrGraph g = readMatrixMarket(in);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 4u); // symmetrized
    EXPECT_TRUE(g.isSymmetric());
}

TEST(MtxIo, ParsesSymmetricRealAndIgnoresValues)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "4 4 3\n"
        "2 1 0.5\n"
        "3 3 1.0\n" // self loop -> dropped
        "4 2 2.5\n");
    const CsrGraph g = readMatrixMarket(in);
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_TRUE(g.hasNoSelfLoops());
}

TEST(MtxIo, RoundTrips)
{
    GraphBuilder b(6);
    b.addUndirected(0, 1);
    b.addUndirected(2, 5);
    b.addUndirected(3, 4);
    const CsrGraph g = b.build();

    std::ostringstream out;
    writeMatrixMarket(out, g);
    std::istringstream in(out.str());
    const CsrGraph g2 = readMatrixMarket(in);
    EXPECT_EQ(g2.numVertices(), g.numVertices());
    EXPECT_EQ(g2.numEdges(), g.numEdges());
    EXPECT_EQ(g2.rowOffsets(), g.rowOffsets());
    EXPECT_EQ(g2.colIndices(), g.colIndices());
}

TEST(MtxIo, RoundTripsGraphWithSelfLoops)
{
    // The writer must emit v <= u pairs: a strict v < u dropped the
    // diagonal, so any graph carrying self-loops came back smaller.
    GraphBuilder b(4);
    b.keepSelfLoops(true);
    b.addUndirected(0, 1);
    b.addUndirected(1, 2);
    b.addEdge(0, 0);
    b.addEdge(3, 3);
    const CsrGraph g = b.build(/*with_weights=*/true);
    EXPECT_FALSE(g.hasNoSelfLoops());
    EXPECT_EQ(g.numEdges(), 6u); // 2 pairs doubled + 2 self-loops

    std::ostringstream out;
    writeMatrixMarket(out, g);

    // Lossless path: keep self-loops on re-read.
    std::istringstream in(out.str());
    const CsrGraph g2 =
        readMatrixMarket(in, /*with_weights=*/true,
                         /*keep_self_loops=*/true);
    EXPECT_EQ(g2.rowOffsets(), g.rowOffsets());
    EXPECT_EQ(g2.colIndices(), g.colIndices());
    // Weights are a deterministic endpoint hash, so they round-trip too.
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        EXPECT_EQ(g2.edgeWeight(e), g.edgeWeight(e)) << e;

    // Default read still canonicalizes (paper Sec. V-A): loops dropped.
    std::istringstream in2(out.str());
    const CsrGraph canon = readMatrixMarket(in2);
    EXPECT_TRUE(canon.hasNoSelfLoops());
    EXPECT_EQ(canon.numEdges(), 4u);
}

} // namespace
} // namespace gga
