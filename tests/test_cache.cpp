/**
 * @file
 * Unit tests for the set-associative tag array: hits, LRU eviction, state
 * transitions, flash invalidation semantics for both protocols.
 */

#include <gtest/gtest.h>

#include "sim/cache.hpp"

namespace gga {
namespace {

// A tiny 2-set, 2-way cache with 64B lines: 256 bytes total.
SetAssocCache
tinyCache()
{
    return SetAssocCache(256, 2, 64);
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c = tinyCache();
    EXPECT_EQ(c.lookup(0), LineState::Invalid);
    c.insert(0, LineState::Valid);
    EXPECT_EQ(c.lookup(0), LineState::Valid);
}

TEST(Cache, LruOrderRespectsRecency)
{
    // Direct test with a known-colliding set: use a 1-set cache.
    SetAssocCache c(128, 2, 64); // 1 set, 2 ways
    c.insert(0, LineState::Valid);
    c.insert(64, LineState::Valid);
    // Touch line 0 so line 64 is LRU.
    EXPECT_EQ(c.lookup(0), LineState::Valid);
    const auto ev = c.insert(128, LineState::Valid);
    EXPECT_EQ(ev.line, 64u);
    EXPECT_EQ(ev.state, LineState::Valid);
    EXPECT_EQ(c.lookup(0), LineState::Valid);
    EXPECT_EQ(c.lookup(64), LineState::Invalid);
    EXPECT_EQ(c.lookup(128), LineState::Valid);
}

TEST(Cache, InsertReportsDirtyEviction)
{
    SetAssocCache c(128, 2, 64);
    c.insert(0, LineState::Dirty);
    c.insert(64, LineState::Valid);
    EXPECT_EQ(c.lookup(64), LineState::Valid); // 0 is LRU now? no: 0 older
    const auto ev = c.insert(128, LineState::Valid);
    EXPECT_EQ(ev.line, 0u);
    EXPECT_EQ(ev.state, LineState::Dirty);
}

TEST(Cache, InvalidateSingleLine)
{
    SetAssocCache c = tinyCache();
    c.insert(0, LineState::Owned);
    c.invalidate(0);
    EXPECT_EQ(c.lookup(0), LineState::Invalid);
}

TEST(Cache, FlashInvalidateKeepsOwnedWhenAsked)
{
    SetAssocCache c = tinyCache();
    c.insert(0, LineState::Valid);
    c.insert(64, LineState::Owned);
    c.insert(128, LineState::Dirty);
    const std::uint64_t n = c.invalidateForAcquire(/*keep_owned=*/true);
    EXPECT_EQ(n, 2u); // Valid and Dirty dropped
    EXPECT_EQ(c.lookup(64), LineState::Owned);
    EXPECT_EQ(c.lookup(0), LineState::Invalid);
}

TEST(Cache, FlashInvalidateAllForGpu)
{
    SetAssocCache c = tinyCache();
    c.insert(0, LineState::Valid);
    c.insert(64, LineState::Owned);
    EXPECT_EQ(c.invalidateForAcquire(/*keep_owned=*/false), 2u);
    EXPECT_EQ(c.lookup(64), LineState::Invalid);
}

TEST(Cache, CollectAndCleanDirty)
{
    SetAssocCache c = tinyCache();
    c.insert(0, LineState::Dirty);
    c.insert(64, LineState::Valid);
    c.insert(128, LineState::Dirty);
    const auto dirty = c.collectLines(LineState::Dirty);
    EXPECT_EQ(dirty.size(), 2u);
    c.cleanDirty();
    EXPECT_TRUE(c.collectLines(LineState::Dirty).empty());
    EXPECT_EQ(c.lookup(0), LineState::Valid);
}

TEST(Cache, StateUpgradeInPlace)
{
    SetAssocCache c = tinyCache();
    c.insert(0, LineState::Valid);
    LineState* st = c.find(0);
    ASSERT_NE(st, nullptr);
    *st = LineState::Owned;
    EXPECT_EQ(c.lookup(0), LineState::Owned);
}

} // namespace
} // namespace gga
