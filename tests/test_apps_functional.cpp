/**
 * @file
 * Functional validation: every application, on small graphs, across the
 * full configuration space, must produce results matching the sequential
 * CPU references (exactly for discrete outputs, within tolerance for
 * floating-point ones).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "apps/reference.hpp"
#include "apps/runner.hpp"
#include "graph/generator.hpp"
#include "graph/presets.hpp"
#include "model/config.hpp"
#include "support/log.hpp"

namespace gga {
namespace {

const CsrGraph&
smallGraph()
{
    static const CsrGraph g = [] {
        GenSpec spec;
        spec.name = "small";
        spec.numVertices = 800;
        spec.numDirectedEdges = 4000;
        spec.dist = DegreeDist::PowerLaw;
        spec.p1 = 2.3;
        spec.p2 = 1.5;
        spec.maxDegree = 64;
        spec.fracIntraBlock = 0.3;
        spec.seed = 99;
        return generateGraph(spec);
    }();
    return g;
}

SimParams
testParams()
{
    SimParams p;
    return p;
}

class AllConfigs : public ::testing::TestWithParam<std::string>
{
};

class DynConfigs : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllConfigs, PrMatchesReference)
{
    const CsrGraph& g = smallGraph();
    const SystemConfig cfg = parseConfig(GetParam());
    std::vector<float> ranks;
    AppOutputs out;
    out.prRanks = &ranks;
    runPr(g, cfg, testParams(), &out);
    const std::vector<double> expect = ref::pagerank(g, kPrIterations);
    ASSERT_EQ(ranks.size(), expect.size());
    for (std::size_t v = 0; v < ranks.size(); ++v) {
        EXPECT_NEAR(ranks[v], expect[v],
                    std::max(1e-6, 1e-3 * expect[v]))
            << "vertex " << v;
    }
}

TEST_P(AllConfigs, SsspMatchesDijkstra)
{
    const CsrGraph& g = smallGraph();
    const SystemConfig cfg = parseConfig(GetParam());
    std::vector<std::uint32_t> dist;
    AppOutputs out;
    out.ssspDist = &dist;
    runSssp(g, cfg, testParams(), &out);
    const std::vector<std::uint32_t> expect = ref::dijkstra(g, 0);
    ASSERT_EQ(dist, expect);
}

TEST_P(AllConfigs, MisIsValidAndConfigInvariant)
{
    const CsrGraph& g = smallGraph();
    const SystemConfig cfg = parseConfig(GetParam());
    std::vector<std::uint32_t> state;
    AppOutputs out;
    out.misState = &state;
    runMis(g, cfg, testParams(), &out);
    EXPECT_TRUE(ref::validMis(g, state));

    // The round structure is deterministic, so every configuration must
    // produce the identical set.
    std::vector<std::uint32_t> baseline;
    AppOutputs base_out;
    base_out.misState = &baseline;
    runMis(g, parseConfig("TG0"), testParams(), &base_out);
    EXPECT_EQ(state, baseline);
}

TEST_P(AllConfigs, ClrIsProperColoring)
{
    const CsrGraph& g = smallGraph();
    const SystemConfig cfg = parseConfig(GetParam());
    std::vector<std::uint32_t> colors;
    AppOutputs out;
    out.colors = &colors;
    runClr(g, cfg, testParams(), &out);
    EXPECT_TRUE(ref::validColoring(g, colors));
}

TEST_P(AllConfigs, BcMatchesBrandes)
{
    const CsrGraph& g = smallGraph();
    const SystemConfig cfg = parseConfig(GetParam());
    std::vector<double> delta;
    std::vector<std::uint32_t> level;
    std::vector<double> sigma;
    AppOutputs out;
    out.bcDelta = &delta;
    out.bcLevel = &level;
    out.bcSigma = &sigma;
    runBc(g, cfg, testParams(), &out);
    const ref::BcRef expect = ref::brandes(g, 0);
    ASSERT_EQ(level, expect.level);
    for (std::size_t v = 0; v < delta.size(); ++v) {
        EXPECT_NEAR(sigma[v], expect.sigma[v],
                    1e-9 + 1e-9 * expect.sigma[v])
            << "sigma of vertex " << v;
        EXPECT_NEAR(delta[v], expect.delta[v],
                    1e-9 + 1e-9 * std::abs(expect.delta[v]))
            << "delta of vertex " << v;
    }
}

TEST_P(DynConfigs, CcMatchesUnionFind)
{
    const CsrGraph& g = smallGraph();
    const SystemConfig cfg = parseConfig(GetParam());
    std::vector<std::uint32_t> labels;
    AppOutputs out;
    out.ccLabels = &labels;
    runCc(g, cfg, testParams(), &out);
    const std::vector<std::uint32_t> expect = ref::components(g);
    EXPECT_TRUE(ref::samePartition(labels, expect));
}

INSTANTIATE_TEST_SUITE_P(DesignSpace, AllConfigs,
                         ::testing::Values("TG0", "TG1", "TGR", "TD0", "TD1",
                                           "TDR", "SG0", "SG1", "SGR", "SD0",
                                           "SD1", "SDR"));

INSTANTIATE_TEST_SUITE_P(DesignSpace, DynConfigs,
                         ::testing::Values("DG0", "DG1", "DGR", "DD0", "DD1",
                                           "DDR"));

} // namespace
} // namespace gga
