/**
 * @file
 * Unit tests for the synthetic graph generator: exact counts,
 * determinism, degree caps, grid topology, connectivity, scaling.
 */

#include <queue>

#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"
#include "graph/generator.hpp"
#include "graph/presets.hpp"

namespace gga {
namespace {

GenSpec
basicSpec()
{
    GenSpec s;
    s.name = "t";
    s.numVertices = 2000;
    s.numDirectedEdges = 12000;
    s.dist = DegreeDist::LogNormal;
    s.p1 = 1.5;
    s.p2 = 0.7;
    s.maxDegree = 64;
    s.fracIntraBlock = 0.4;
    s.seed = 5;
    return s;
}

/** Count vertices reachable from 0. */
VertexId
reachable(const CsrGraph& g)
{
    std::vector<char> seen(g.numVertices(), 0);
    std::queue<VertexId> q;
    q.push(0);
    seen[0] = 1;
    VertexId count = 1;
    while (!q.empty()) {
        const VertexId v = q.front();
        q.pop();
        for (VertexId t : g.neighbors(v)) {
            if (!seen[t]) {
                seen[t] = 1;
                ++count;
                q.push(t);
            }
        }
    }
    return count;
}

TEST(Generator, ExactCountsAndCanonicalForm)
{
    const CsrGraph g = generateGraph(basicSpec());
    EXPECT_EQ(g.numVertices(), 2000u);
    EXPECT_EQ(g.numEdges(), 12000u);
    EXPECT_TRUE(g.isSymmetric());
    EXPECT_TRUE(g.hasNoSelfLoops());
    EXPECT_TRUE(g.hasWeights());
}

TEST(Generator, Deterministic)
{
    const CsrGraph a = generateGraph(basicSpec());
    const CsrGraph b = generateGraph(basicSpec());
    EXPECT_EQ(a, b);
    GenSpec other = basicSpec();
    other.seed = 6;
    const CsrGraph c = generateGraph(other);
    EXPECT_FALSE(a == c);
}

TEST(Generator, BuildThreadCountCannotChangeTheGraph)
{
    // The parallel CSR construction must be invisible in the output:
    // same spec, any thread count, bit-identical arrays (determinism
    // goldens and snapshot caches both depend on it). Big enough that
    // the builder really fans out (~80k pairs vs its ~16k-edges-per-
    // worker minimum slice).
    GenSpec spec = basicSpec();
    spec.numVertices = 20000;
    spec.numDirectedEdges = 160000;
    const CsrGraph serial = generateGraph(spec, 1);
    for (const unsigned threads : {2u, 4u, 8u})
        EXPECT_EQ(generateGraph(spec, threads), serial)
            << threads << " threads";
    // And the scaled-preset path, which the GraphStore builds through.
    EXPECT_EQ(buildPresetScaled(GraphPreset::Dct, 0.5, 1),
              buildPresetScaled(GraphPreset::Dct, 0.5, 4));
    // A full-scale preset spans many synthesis blocks (13 for DCT), so
    // the per-block stub streams and the sharded merge really interleave
    // differently across thread counts.
    EXPECT_EQ(buildPresetScaled(GraphPreset::Dct, 1.0, 1),
              buildPresetScaled(GraphPreset::Dct, 1.0, 8));
}

TEST(Generator, PresetDegreeStatsTrackTableII)
{
    // The taxonomy *classes* are the hard constraint (test_taxonomy);
    // these looser bands on the raw Table II degree columns catch
    // degenerate synthesis early — a pad-dominated (near-uniform) output
    // fails the stddev floor, a lost hub mechanism fails the maxDegree
    // floor — with enough slack that legitimate generator retuning
    // stays green.
    for (GraphPreset p : kAllGraphPresets) {
        const CsrGraph g = buildPresetScaled(p, 1.0);
        const DegreeStats ds = computeDegreeStats(g);
        const PaperGraphStats& t = paperStats(p);
        EXPECT_NEAR(ds.avgDegree, t.avgDegree, 0.02 * t.avgDegree)
            << presetName(p);
        EXPECT_GE(ds.maxDegree, t.maxDegree / 2) << presetName(p);
        EXPECT_LE(ds.maxDegree, t.maxDegree + t.maxDegree / 2)
            << presetName(p);
        EXPECT_GE(ds.stddevDegree, t.stddevDegree / 3.0) << presetName(p);
        EXPECT_LE(ds.stddevDegree, t.stddevDegree * 3.0) << presetName(p);
    }
}

TEST(Generator, SpecContentHashSeparatesSpecs)
{
    const GenSpec base = basicSpec();
    GenSpec renamed = base;
    renamed.name = "different-label";
    EXPECT_EQ(specContentHash(base), specContentHash(renamed))
        << "the name is a label, not content";
    GenSpec reseeded = base;
    reseeded.seed = 6;
    EXPECT_NE(specContentHash(base), specContentHash(reseeded));
    GenSpec reshaped = base;
    reshaped.p2 = 0.71;
    EXPECT_NE(specContentHash(base), specContentHash(reshaped));
}

TEST(Generator, BackboneConnects)
{
    const CsrGraph g = generateGraph(basicSpec());
    EXPECT_EQ(reachable(g), g.numVertices());
}

TEST(Generator, LocalityKnobMovesAnl)
{
    GenSpec local = basicSpec();
    local.fracIntraBlock = 0.8;
    GenSpec remote = basicSpec();
    remote.fracIntraBlock = 0.0;
    const CsrGraph gl = generateGraph(local);
    const CsrGraph gr = generateGraph(remote);

    auto anl_fraction = [](const CsrGraph& g) {
        std::uint64_t local_edges = 0;
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            for (VertexId t : g.neighbors(v))
                local_edges += (v / 256 == t / 256);
        }
        return double(local_edges) / g.numEdges();
    };
    EXPECT_GT(anl_fraction(gl), anl_fraction(gr) + 0.3);
}

TEST(Generator, ForcedTopDegreesReachMax)
{
    GenSpec s = basicSpec();
    s.maxDegree = 400;
    s.forceTopDegrees = true;
    const CsrGraph g = generateGraph(s);
    const DegreeStats ds = computeDegreeStats(g);
    EXPECT_GT(ds.maxDegree, 250u);
    EXPECT_LE(ds.maxDegree, 400u);
}

TEST(Generator, Grid2dStructure)
{
    GenSpec s;
    s.name = "grid";
    s.topology = Topology::Grid2d;
    s.gridRows = 20;
    s.gridCols = 20;
    s.numVertices = 405; // 5 pendants
    s.numDirectedEdges = 2 * (2 * 20 * 19 + 5) - 6;
    s.permuteLabels = false;
    s.seed = 3;
    const CsrGraph g = generateGraph(s);
    EXPECT_EQ(g.numVertices(), 405u);
    EXPECT_EQ(g.numEdges(), s.numDirectedEdges);
    const DegreeStats ds = computeDegreeStats(g);
    EXPECT_LE(ds.maxDegree, 4u);
    EXPECT_EQ(reachable(g), g.numVertices());
}

TEST(Generator, ScaledPresetsKeepStructure)
{
    for (GraphPreset p : kAllGraphPresets) {
        const CsrGraph g = buildPresetScaled(p, 0.05);
        EXPECT_GT(g.numVertices(), 64u) << presetName(p);
        EXPECT_TRUE(g.isSymmetric()) << presetName(p);
        EXPECT_TRUE(g.hasNoSelfLoops()) << presetName(p);
    }
}

TEST(Generator, RejectsOddEdgeTarget)
{
    GenSpec s = basicSpec();
    s.numDirectedEdges = 12001;
    EXPECT_DEATH(generateGraph(s), "even");
}

} // namespace
} // namespace gga
