/**
 * @file
 * Golden-parity determinism suite for the simulator substrate.
 *
 * For every application x a GPU-coherence and a DeNovo config, run the
 * workload twice on the DCT preset at scale 0.1 and assert that
 *
 *   1. simulated cycles, processed events, and the full MemStats are
 *      bit-identical run-to-run (the engine replays deterministically),
 *   2. they match the pre-recorded golden values below, so changes to the
 *      event engine or the memory-system hot path that alter simulated
 *      behavior — rather than just host throughput — are caught at once.
 *
 * The suite pins scale explicitly (plan.scale(0.1)), so it is independent
 * of the GGA_SCALE environment ctest sets.
 *
 * Regenerating goldens after an intentional model change:
 *   GGA_DETERMINISM_PRINT=1 ./build/test_determinism
 * prints the kGolden table rows to paste below.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.hpp"
#include "model/config.hpp"
#include "sim/mem_stats.hpp"

namespace gga {
namespace {

constexpr double kScale = 0.1;

struct Golden
{
    AppId app;
    const char* cfg;
    Cycles cycles;
    std::uint64_t events;
    MemStats mem;
};

const char*
appTag(AppId a)
{
    switch (a) {
      case AppId::Pr: return "Pr";
      case AppId::Sssp: return "Sssp";
      case AppId::Mis: return "Mis";
      case AppId::Clr: return "Clr";
      case AppId::Bc: return "Bc";
      case AppId::Cc: return "Cc";
    }
    return "?";
}

/**
 * The covered design-space pairs: one GPU-coherence and one DeNovo config
 * per app, spanning push and pull as well as DRF0 and DRFrlx. CC is a
 * dynamic-traversal app and only accepts PushPull ('D') configs.
 */
std::vector<std::pair<AppId, const char*>>
coveredPairs()
{
    std::vector<std::pair<AppId, const char*>> pairs;
    for (AppId app : {AppId::Pr, AppId::Sssp, AppId::Mis, AppId::Clr,
                      AppId::Bc}) {
        pairs.emplace_back(app, "TG0");
        pairs.emplace_back(app, "SDR");
    }
    pairs.emplace_back(AppId::Cc, "DG0");
    pairs.emplace_back(AppId::Cc, "DDR");
    return pairs;
}

RunOutcome
runOnce(Session& session, AppId app, const char* cfg)
{
    return session.run(RunPlan{}
                           .app(app)
                           .graph(GraphPreset::Dct)
                           .scale(kScale)
                           .config(cfg)
                           .collectOutputs(false));
}

void
printRow(const RunOutcome& out, AppId app, const char* cfg)
{
    const MemStats& m = out.result.mem;
    std::printf("    {AppId::%s, \"%s\", %lluull, %lluull,\n"
                "     {%llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu, "
                "%llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu}},\n",
                appTag(app), cfg,
                static_cast<unsigned long long>(out.result.cycles),
                static_cast<unsigned long long>(out.result.events),
                static_cast<unsigned long long>(m.l1LoadHits),
                static_cast<unsigned long long>(m.l1LoadMisses),
                static_cast<unsigned long long>(m.l1Stores),
                static_cast<unsigned long long>(m.l1AtomicHits),
                static_cast<unsigned long long>(m.ownershipRequests),
                static_cast<unsigned long long>(m.ownershipForwards),
                static_cast<unsigned long long>(m.l2Atomics),
                static_cast<unsigned long long>(m.l2Reads),
                static_cast<unsigned long long>(m.l2ReadMisses),
                static_cast<unsigned long long>(m.l2Writes),
                static_cast<unsigned long long>(m.flushedLines),
                static_cast<unsigned long long>(m.acquireInvalidatedLines),
                static_cast<unsigned long long>(m.recalls),
                static_cast<unsigned long long>(m.dramReads),
                static_cast<unsigned long long>(m.dramWrites),
                static_cast<unsigned long long>(m.l1Retries),
                static_cast<unsigned long long>(m.l2ReadLagSum),
                static_cast<unsigned long long>(m.l2AtomicLagSum));
}

/**
 * Golden values recorded for this repository state (DCT preset, scale
 * 0.1). MemStats field order: l1LoadHits, l1LoadMisses, l1Stores,
 * l1AtomicHits, ownershipRequests, ownershipForwards, l2Atomics, l2Reads,
 * l2ReadMisses, l2Writes, flushedLines, acquireInvalidatedLines, recalls,
 * dramReads, dramWrites, l1Retries, l2ReadLagSum, l2AtomicLagSum.
 */
const std::vector<Golden>&
goldens()
{
    static const std::vector<Golden> kGolden = {
        // GGA_DETERMINISM_GOLDENS_BEGIN
    {AppId::Pr, "TG0", 144448ull, 250196ull,
     {116218, 123786, 5115, 0, 0, 0, 0, 77321, 1755, 13530, 12706, 37970, 0, 1755, 117, 79633, 17213920, 0}},
    {AppId::Pr, "SDR", 267678ull, 407363ull,
     {68554, 41400, 3465, 172140, 29609, 17286, 0, 36634, 2785, 0, 0, 12477, 15416, 2785, 183, 77964, 10273245, 0}},
    {AppId::Sssp, "TG0", 303740ull, 484368ull,
     {193158, 264351, 1819, 0, 0, 0, 0, 181683, 4931, 6378, 4697, 31934, 0, 4931, 149, 211400, 42993340, 0}},
    {AppId::Sssp, "SDR", 101525ull, 184125ull,
     {29045, 35107, 4168, 34337, 16449, 10080, 0, 33194, 3838, 0, 0, 9423, 7212, 3838, 88, 49791, 9713277, 0}},
    {AppId::Mis, "TG0", 48104ull, 85934ull,
     {30870, 41809, 1723, 0, 0, 0, 0, 29321, 1582, 4451, 4221, 17089, 0, 1582, 123, 26532, 6213353, 0}},
    {AppId::Mis, "SDR", 50739ull, 93654ull,
     {14155, 14383, 985, 26105, 7903, 5744, 0, 12783, 2893, 0, 0, 8362, 4077, 2893, 66, 16112, 2980342, 0}},
    {AppId::Clr, "TG0", 219168ull, 341697ull,
     {141795, 155250, 6679, 0, 0, 0, 0, 121656, 1577, 11750, 10423, 64873, 0, 1577, 52, 92540, 24647259, 0}},
    {AppId::Clr, "SDR", 248765ull, 353927ull,
     {80016, 57028, 4212, 106091, 20523, 14625, 0, 52899, 2573, 0, 0, 31746, 11204, 2573, 42, 54465, 12147230, 0}},
    {AppId::Bc, "TG0", 100813ull, 162503ull,
     {67032, 81457, 1945, 0, 0, 0, 0, 60099, 1647, 8275, 6621, 29277, 0, 1647, 576, 41702, 12415769, 0}},
    {AppId::Bc, "SDR", 98902ull, 159300ull,
     {42016, 46424, 3373, 13779, 13734, 9389, 0, 40001, 5118, 0, 0, 22829, 3715, 5118, 907, 31748, 9648458, 0}},
    {AppId::Cc, "DG0", 148978ull, 179431ull,
     {0, 13352, 330, 0, 0, 0, 74568, 12873, 1420, 398, 398, 13520, 0, 1420, 0, 57500, 3254458, 17082247}},
    {AppId::Cc, "DDR", 93671ull, 124281ull,
     {5358, 7994, 330, 71433, 11359, 9061, 0, 7577, 1750, 0, 0, 1562, 9061, 1750, 0, 1810, 1324838, 0}},
        // GGA_DETERMINISM_GOLDENS_END
    };
    return kGolden;
}

TEST(Determinism, RunToRunAndGoldenParity)
{
    const bool print_mode = std::getenv("GGA_DETERMINISM_PRINT") != nullptr;
    Session session;

    for (const auto& [app, cfg] : coveredPairs()) {
        SCOPED_TRACE(std::string(appTag(app)) + " @ " + cfg);
        const RunOutcome first = runOnce(session, app, cfg);
        const RunOutcome second = runOnce(session, app, cfg);

        // Run-to-run: the engine must replay bit-identically.
        EXPECT_EQ(first.result.cycles, second.result.cycles);
        EXPECT_EQ(first.result.events, second.result.events);
        EXPECT_TRUE(first.result.mem == second.result.mem);
        EXPECT_EQ(first.result.kernels, second.result.kernels);

        if (print_mode) {
            printRow(first, app, cfg);
            continue;
        }

        // Golden parity: match the pre-recorded substrate behavior.
        const Golden* golden = nullptr;
        for (const Golden& g : goldens()) {
            if (g.app == app && std::string(g.cfg) == cfg) {
                golden = &g;
                break;
            }
        }
        ASSERT_NE(golden, nullptr) << "no golden row recorded";
        EXPECT_EQ(first.result.cycles, golden->cycles);
        EXPECT_EQ(first.result.events, golden->events);
        if (!(first.result.mem == golden->mem)) {
            ADD_FAILURE() << "MemStats mismatch; regenerate with "
                             "GGA_DETERMINISM_PRINT=1 if intentional:";
            printRow(first, app, cfg);
        }
    }
}

} // namespace
} // namespace gga
