/**
 * @file
 * Golden-parity determinism suite for the simulator substrate.
 *
 * For every application x a GPU-coherence and a DeNovo config, run the
 * workload twice on the DCT preset at scale 0.1 and assert that
 *
 *   1. simulated cycles, processed events, and the full MemStats are
 *      bit-identical run-to-run (the engine replays deterministically),
 *   2. they match the pre-recorded golden values below, so changes to the
 *      event engine or the memory-system hot path that alter simulated
 *      behavior — rather than just host throughput — are caught at once.
 *
 * The suite pins scale explicitly (plan.scale(0.1)), so it is independent
 * of the GGA_SCALE environment ctest sets.
 *
 * Regenerating goldens after an intentional model change:
 *   GGA_DETERMINISM_PRINT=1 ./build/test_determinism
 * prints the kGolden table rows to paste below.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.hpp"
#include "model/config.hpp"
#include "sim/mem_stats.hpp"

namespace gga {
namespace {

constexpr double kScale = 0.1;

struct Golden
{
    AppId app;
    const char* cfg;
    Cycles cycles;
    std::uint64_t events;
    MemStats mem;
};

const char*
appTag(AppId a)
{
    switch (a) {
      case AppId::Pr: return "Pr";
      case AppId::Sssp: return "Sssp";
      case AppId::Mis: return "Mis";
      case AppId::Clr: return "Clr";
      case AppId::Bc: return "Bc";
      case AppId::Cc: return "Cc";
    }
    return "?";
}

/**
 * The covered design-space pairs: one GPU-coherence and one DeNovo config
 * per app, spanning push and pull as well as DRF0 and DRFrlx. CC is a
 * dynamic-traversal app and only accepts PushPull ('D') configs.
 */
std::vector<std::pair<AppId, const char*>>
coveredPairs()
{
    std::vector<std::pair<AppId, const char*>> pairs;
    for (AppId app : {AppId::Pr, AppId::Sssp, AppId::Mis, AppId::Clr,
                      AppId::Bc}) {
        pairs.emplace_back(app, "TG0");
        pairs.emplace_back(app, "SDR");
    }
    pairs.emplace_back(AppId::Cc, "DG0");
    pairs.emplace_back(AppId::Cc, "DDR");
    return pairs;
}

RunOutcome
runOnce(Session& session, AppId app, const char* cfg)
{
    return session.run(RunPlan{}
                           .app(app)
                           .graph(GraphPreset::Dct)
                           .scale(kScale)
                           .config(cfg)
                           .collectOutputs(false));
}

void
printRow(const RunOutcome& out, AppId app, const char* cfg)
{
    const MemStats& m = out.result.mem;
    std::printf("    {AppId::%s, \"%s\", %lluull, %lluull,\n"
                "     {%llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu, "
                "%llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu}},\n",
                appTag(app), cfg,
                static_cast<unsigned long long>(out.result.cycles),
                static_cast<unsigned long long>(out.result.events),
                static_cast<unsigned long long>(m.l1LoadHits),
                static_cast<unsigned long long>(m.l1LoadMisses),
                static_cast<unsigned long long>(m.l1Stores),
                static_cast<unsigned long long>(m.l1AtomicHits),
                static_cast<unsigned long long>(m.ownershipRequests),
                static_cast<unsigned long long>(m.ownershipForwards),
                static_cast<unsigned long long>(m.l2Atomics),
                static_cast<unsigned long long>(m.l2Reads),
                static_cast<unsigned long long>(m.l2ReadMisses),
                static_cast<unsigned long long>(m.l2Writes),
                static_cast<unsigned long long>(m.flushedLines),
                static_cast<unsigned long long>(m.acquireInvalidatedLines),
                static_cast<unsigned long long>(m.recalls),
                static_cast<unsigned long long>(m.dramReads),
                static_cast<unsigned long long>(m.dramWrites),
                static_cast<unsigned long long>(m.l1Retries),
                static_cast<unsigned long long>(m.l2ReadLagSum),
                static_cast<unsigned long long>(m.l2AtomicLagSum));
}

/**
 * Golden values recorded for this repository state (DCT preset, scale
 * 0.1). MemStats field order: l1LoadHits, l1LoadMisses, l1Stores,
 * l1AtomicHits, ownershipRequests, ownershipForwards, l2Atomics, l2Reads,
 * l2ReadMisses, l2Writes, flushedLines, acquireInvalidatedLines, recalls,
 * dramReads, dramWrites, l1Retries, l2ReadLagSum, l2AtomicLagSum.
 */
const std::vector<Golden>&
goldens()
{
    static const std::vector<Golden> kGolden = {
        // GGA_DETERMINISM_GOLDENS_BEGIN
    {AppId::Pr, "TG0", 144618ull, 244049ull,
     {118095, 121498, 5115, 0, 0, 0, 0, 76618, 1736, 13530, 12662, 38000, 0, 1736, 116, 75742, 16797349, 0}},
    {AppId::Pr, "SDR", 265760ull, 406694ull,
     {68619, 41582, 3465, 172430, 29511, 17483, 0, 36909, 2758, 0, 0, 12527, 15690, 2758, 162, 78245, 10238248, 0}},
    {AppId::Sssp, "TG0", 290838ull, 456305ull,
     {184383, 248825, 1731, 0, 0, 0, 0, 172058, 4840, 6144, 4530, 30086, 0, 4840, 150, 200243, 40661713, 0}},
    {AppId::Sssp, "SDR", 93335ull, 170197ull,
     {27830, 32257, 3835, 32314, 15453, 9543, 0, 30502, 3722, 0, 0, 8496, 6842, 3722, 78, 45952, 8963930, 0}},
    {AppId::Mis, "TG0", 47579ull, 85263ull,
     {32883, 40261, 1700, 0, 0, 0, 0, 29179, 1589, 4405, 4181, 16962, 0, 1589, 118, 26140, 6138063, 0}},
    {AppId::Mis, "SDR", 51612ull, 93281ull,
     {14363, 14366, 969, 26305, 7774, 5625, 0, 12762, 2894, 0, 0, 8376, 3978, 2894, 64, 16021, 2994886, 0}},
    {AppId::Clr, "TG0", 214151ull, 335059ull,
     {145997, 154055, 6627, 0, 0, 0, 0, 120237, 1579, 11597, 10282, 65032, 0, 1579, 53, 89047, 24075420, 0}},
    {AppId::Clr, "SDR", 252337ull, 352508ull,
     {81857, 56977, 4188, 107861, 20411, 14642, 0, 52856, 2593, 0, 0, 32402, 11213, 2593, 59, 53094, 12010054, 0}},
    {AppId::Bc, "TG0", 96952ull, 158568ull,
     {68494, 78932, 1963, 0, 0, 0, 0, 58620, 1637, 8366, 6740, 28603, 0, 1637, 573, 40581, 12065616, 0}},
    {AppId::Bc, "SDR", 96080ull, 156168ull,
     {41883, 45744, 3306, 13536, 13800, 9332, 0, 39417, 5105, 0, 0, 22613, 3758, 5105, 925, 31945, 9610232, 0}},
    {AppId::Cc, "DG0", 159064ull, 192021ull,
     {2, 13344, 330, 0, 0, 0, 80709, 12868, 1414, 392, 392, 13525, 0, 1414, 0, 61634, 3217766, 18300345}},
    {AppId::Cc, "DDR", 98704ull, 130489ull,
     {5385, 7961, 330, 75253, 12073, 9783, 0, 7546, 1744, 0, 0, 1533, 9783, 1744, 0, 1508, 1329936, 0}},
        // GGA_DETERMINISM_GOLDENS_END
    };
    return kGolden;
}

TEST(Determinism, RunToRunAndGoldenParity)
{
    const bool print_mode = std::getenv("GGA_DETERMINISM_PRINT") != nullptr;
    Session session;

    for (const auto& [app, cfg] : coveredPairs()) {
        SCOPED_TRACE(std::string(appTag(app)) + " @ " + cfg);
        const RunOutcome first = runOnce(session, app, cfg);
        const RunOutcome second = runOnce(session, app, cfg);

        // Run-to-run: the engine must replay bit-identically.
        EXPECT_EQ(first.result.cycles, second.result.cycles);
        EXPECT_EQ(first.result.events, second.result.events);
        EXPECT_TRUE(first.result.mem == second.result.mem);
        EXPECT_EQ(first.result.kernels, second.result.kernels);

        if (print_mode) {
            printRow(first, app, cfg);
            continue;
        }

        // Golden parity: match the pre-recorded substrate behavior.
        const Golden* golden = nullptr;
        for (const Golden& g : goldens()) {
            if (g.app == app && std::string(g.cfg) == cfg) {
                golden = &g;
                break;
            }
        }
        ASSERT_NE(golden, nullptr) << "no golden row recorded";
        EXPECT_EQ(first.result.cycles, golden->cycles);
        EXPECT_EQ(first.result.events, golden->events);
        if (!(first.result.mem == golden->mem)) {
            ADD_FAILURE() << "MemStats mismatch; regenerate with "
                             "GGA_DETERMINISM_PRINT=1 if intentional:";
            printRow(first, app, cfg);
        }
    }
}

} // namespace
} // namespace gga
