/**
 * @file
 * Tests for the harness layer: workload registry, sweeps (BEST/PRED
 * selection), and cross-configuration result invariants on a scaled
 * workload.
 */

#include <gtest/gtest.h>

#include "harness/figures.hpp"
#include "harness/sweep.hpp"
#include "harness/workloads.hpp"

namespace gga {
namespace {

TEST(Workloads, RegistryHasAll36)
{
    const auto wls = allWorkloads();
    EXPECT_EQ(wls.size(), 36u);
    EXPECT_EQ(wls.front().name(), "PR-AMZ");
    EXPECT_EQ(wls.back().name(), "CC-WNG");
    std::uint32_t dynamic = 0;
    for (const Workload& w : wls)
        dynamic += w.dynamic();
    EXPECT_EQ(dynamic, 6u); // the CC row
}

TEST(Workloads, BaselineConfigs)
{
    EXPECT_EQ(baselineConfig({AppId::Pr, GraphPreset::Amz}).name(), "TG0");
    EXPECT_EQ(baselineConfig({AppId::Cc, GraphPreset::Amz}).name(), "DG1");
}

TEST(Sweep, FindsBestAndIncludesPrediction)
{
    // Use a small custom graph through the runner directly to keep this
    // test fast: sweep MIS on a scaled RAJ across three configs.
    const Workload wl{AppId::Mis, GraphPreset::Raj};
    // Scaled graph via GGA_SCALE is process-global; instead run the
    // sweep machinery on the full registry graph only if small. RAJ is
    // the smallest input; use the figure configs.
    const SweepResult sweep = sweepWorkload(wl, figureConfigs(false));
    ASSERT_GE(sweep.results.size(), 5u);
    // BEST really is the minimum.
    for (const ConfigResult& r : sweep.results)
        EXPECT_GE(r.run.cycles, sweep.bestCycles);
    // The prediction was simulated too.
    EXPECT_NE(sweep.find(sweep.predicted), nullptr);
    EXPECT_EQ(sweep.find(sweep.predicted)->run.cycles,
              sweep.predictedCycles);
    // Baseline present.
    EXPECT_NE(sweep.find(parseConfig("TG0")), nullptr);
}

TEST(Figures, BreakdownCellsArePercentages)
{
    RunResult r;
    r.cycles = 200;
    r.breakdown.busy = 50;
    r.breakdown.data = 150;
    const auto cells = breakdownCells(r, 100.0);
    ASSERT_EQ(cells.size(), 6u);
    EXPECT_EQ(cells[0], "2.000"); // normalized
    EXPECT_EQ(cells[1], "25.0%");
    EXPECT_EQ(cells[3], "75.0%");
}

} // namespace
} // namespace gga
