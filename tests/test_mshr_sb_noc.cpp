/**
 * @file
 * Unit tests for MSHRs (merging, conflicts, capacity), the store buffer,
 * the mesh NoC latency model, and the DRAM channel model.
 */

#include <gtest/gtest.h>

#include "sim/dram.hpp"
#include "sim/mshr.hpp"
#include "sim/noc.hpp"
#include "sim/params.hpp"
#include "sim/store_buffer.hpp"

namespace gga {
namespace {

TEST(Mshr, NewEntryThenMerge)
{
    MshrTable m(4);
    int calls = 0;
    EXPECT_EQ(m.addWaiter(64, FillKind::Data, [&calls] { ++calls; }),
              MshrAdd::NewEntry);
    EXPECT_EQ(m.addWaiter(64, FillKind::Data, [&calls] { ++calls; }),
              MshrAdd::Merged);
    EXPECT_TRUE(m.isPending(64));
    auto waiters = m.complete(64);
    EXPECT_EQ(waiters.size(), 2u);
    for (auto& w : waiters)
        w();
    EXPECT_EQ(calls, 2);
    EXPECT_FALSE(m.isPending(64));
}

TEST(Mshr, OwnershipConflictsWithDataFill)
{
    MshrTable m(4);
    EXPECT_EQ(m.addWaiter(64, FillKind::Data, [] {}), MshrAdd::NewEntry);
    EXPECT_EQ(m.addWaiter(64, FillKind::Ownership, [] {}),
              MshrAdd::Conflict);
    // Data merges into an ownership fill, though.
    EXPECT_EQ(m.addWaiter(128, FillKind::Ownership, [] {}),
              MshrAdd::NewEntry);
    EXPECT_EQ(m.addWaiter(128, FillKind::Data, [] {}), MshrAdd::Merged);
}

TEST(Mshr, CapacityAndRetryOnFill)
{
    MshrTable m(1);
    EXPECT_FALSE(m.full());
    m.addWaiter(64, FillKind::Data, [] {});
    EXPECT_TRUE(m.full());
    int retried = 0;
    m.addRetryOnFill(64, [&retried] { ++retried; });
    auto waiters = m.complete(64);
    EXPECT_EQ(waiters.size(), 2u);
    // Retry attached to an absent line fires immediately.
    m.addRetryOnFill(999, [&retried] { ++retried; });
    EXPECT_EQ(retried, 1);
}

TEST(StoreBufferTest, AcquireRelease)
{
    StoreBuffer sb(2);
    EXPECT_TRUE(sb.empty());
    sb.acquire();
    sb.acquire();
    EXPECT_TRUE(sb.full());
    EXPECT_EQ(sb.freeEntries(), 0u);
    sb.release();
    EXPECT_FALSE(sb.full());
    EXPECT_EQ(sb.inUse(), 1u);
}

TEST(Noc, HopDistancesOnMesh)
{
    SimParams p;
    MeshNoc noc(p);
    EXPECT_EQ(noc.hops(0, 0), 0u);
    EXPECT_EQ(noc.hops(0, 3), 3u);   // same row
    EXPECT_EQ(noc.hops(0, 12), 3u);  // same column
    EXPECT_EQ(noc.hops(0, 15), 6u);  // opposite corner
    EXPECT_EQ(noc.hops(5, 10), 2u);
}

TEST(Noc, LatencyIsRouterPlusHops)
{
    SimParams p;
    MeshNoc noc(p);
    EXPECT_EQ(noc.latency(0, 0), p.nocRouterLatency);
    EXPECT_EQ(noc.latency(0, 15),
              p.nocRouterLatency + 6 * p.nocPerHopLatency);
}

TEST(DramTest, LatencyAndChannelOccupancy)
{
    SimParams p;
    Dram d(p);
    const Cycles t1 = d.access(0, 0, /*is_write=*/false);
    EXPECT_EQ(t1, p.dramLatency);
    // Same line (same channel) back-to-back queues behind the interval.
    const Cycles t2 = d.access(0, 0, /*is_write=*/false);
    EXPECT_EQ(t2, p.dramServiceInterval + p.dramLatency);
    EXPECT_EQ(d.reads(), 2u);
}

TEST(DramTest, WritesArePosted)
{
    SimParams p;
    Dram d(p);
    const Cycles t = d.access(10, 64, /*is_write=*/true);
    EXPECT_EQ(t, 10 + p.dramServiceInterval);
    EXPECT_EQ(d.writes(), 1u);
}

TEST(DramTest, ChannelsDrainWhenIdle)
{
    SimParams p;
    Dram d(p);
    d.access(0, 0, false);
    // Much later, the channel is free again: no residual queueing.
    const Cycles t = d.access(1000, 0, false);
    EXPECT_EQ(t, 1000 + p.dramLatency);
}

} // namespace
} // namespace gga
