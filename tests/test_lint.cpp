/**
 * @file
 * Self-test for tools/gga_lint: every rule must fire on its fixture
 * (tests/lint_fixtures/bad_*.cpp scoped into the rule's directory via
 * --as), the allowed-constructs fixture must stay clean under every
 * scope, and the real tree must lint clean — the same invariant CI
 * enforces, so a rule regression and a tree regression both fail here
 * first.
 *
 * ctest injects GGA_LINT_BIN (the built binary) and GGA_REPO_ROOT (the
 * source root); running the test binary by hand without them skips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct LintRun
{
    int exitCode = -1;
    std::string output;
};

/** Run gga_lint with @p argsTail appended; capture stdout+stderr. */
LintRun
runLint(const std::string& argsTail)
{
    const char* bin = std::getenv("GGA_LINT_BIN");
    EXPECT_NE(bin, nullptr);
    const std::string cmd = std::string(bin) + " " + argsTail + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    LintRun run;
    if (!pipe)
        return run;
    char buf[4096];
    std::size_t got = 0;
    while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0)
        run.output.append(buf, got);
    const int status = pclose(pipe);
    run.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return run;
}

std::string
repoRoot()
{
    const char* root = std::getenv("GGA_REPO_ROOT");
    EXPECT_NE(root, nullptr);
    return root ? root : "";
}

std::string
fixture(const std::string& name)
{
    return repoRoot() + "/tests/lint_fixtures/" + name;
}

bool
haveEnv()
{
    return std::getenv("GGA_LINT_BIN") && std::getenv("GGA_REPO_ROOT");
}

#define REQUIRE_ENV()                                                     \
    if (!haveEnv())                                                       \
    GTEST_SKIP() << "GGA_LINT_BIN / GGA_REPO_ROOT not set (run via ctest)"

/** Fixture scoped into a rule directory must fail citing that rule. */
void
expectRuleFires(const std::string& fixtureName, const std::string& asPath,
                const std::string& rule)
{
    const LintRun run =
        runLint("--as " + asPath + " " + fixture(fixtureName));
    EXPECT_EQ(run.exitCode, 1)
        << fixtureName << " as " << asPath << ":\n"
        << run.output;
    EXPECT_NE(run.output.find("[" + rule + "]"), std::string::npos)
        << fixtureName << " did not cite " << rule << ":\n"
        << run.output;
}

TEST(Lint, CleanTreeHasNoFindings)
{
    REQUIRE_ENV();
    const LintRun run = runLint("--root " + repoRoot());
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(Lint, RngFixtureFires)
{
    REQUIRE_ENV();
    expectRuleFires("bad_rng.cpp", "src/sim/fixture.cpp",
                    "determinism-rng");
    expectRuleFires("bad_rng.cpp", "src/graph/fixture.cpp",
                    "determinism-rng");
}

TEST(Lint, UnorderedFixtureFires)
{
    REQUIRE_ENV();
    expectRuleFires("bad_unordered.cpp", "src/sim/fixture.cpp",
                    "determinism-unordered");
}

TEST(Lint, RawNewFixtureFires)
{
    REQUIRE_ENV();
    expectRuleFires("bad_new.cpp", "src/api/fixture.cpp", "raw-new");
    // new AND delete expressions both fire: one finding per site.
    const LintRun run =
        runLint("--as src/api/fixture.cpp " + fixture("bad_new.cpp"));
    EXPECT_NE(run.output.find("raw new expression"), std::string::npos);
    EXPECT_NE(run.output.find("raw delete expression"), std::string::npos);
}

TEST(Lint, LocaleFixtureFires)
{
    REQUIRE_ENV();
    expectRuleFires("bad_locale.cpp", "src/support/json.cpp",
                    "locale-float");
    expectRuleFires("bad_locale.cpp", "src/support/table.cpp",
                    "locale-float");
    expectRuleFires("bad_locale.cpp", "src/harness/figures.cpp",
                    "locale-float");
}

TEST(Lint, MutexFixtureFires)
{
    REQUIRE_ENV();
    expectRuleFires("bad_mutex.cpp", "src/serve/fixture.cpp",
                    "raw-mutex");
}

TEST(Lint, RuleScopingIsByPath)
{
    REQUIRE_ENV();
    // The RNG fixture outside the determinism core is legal (support/rng
    // itself wraps an engine), and the locale fixture outside the
    // byte-identity-gated files is legal too.
    EXPECT_EQ(
        runLint("--as src/api/fixture.cpp " + fixture("bad_rng.cpp"))
            .exitCode,
        0);
    EXPECT_EQ(
        runLint("--as src/eval/fixture.cpp " + fixture("bad_locale.cpp"))
            .exitCode,
        0);
}

TEST(Lint, CleanFixturePassesUnderEveryScope)
{
    REQUIRE_ENV();
    for (const char* scope :
         {"src/sim/clean.cpp", "src/graph/clean.cpp",
          "src/support/json.cpp", "src/support/table.cpp",
          "src/serve/clean.cpp"}) {
        const LintRun run = runLint(std::string("--as ") + scope + " " +
                                    fixture("clean.cpp"));
        EXPECT_EQ(run.exitCode, 0)
            << "false positive under " << scope << ":\n"
            << run.output;
    }
}

TEST(Lint, ExemptFilesAreExempt)
{
    REQUIRE_ENV();
    // The two deliberate carve-outs: the pool may use placement/raw
    // memory machinery, the annotation wrapper IS the std::mutex owner.
    EXPECT_EQ(runLint("--as src/support/object_pool.hpp " +
                      fixture("bad_new.cpp"))
                  .exitCode,
              0);
    EXPECT_EQ(runLint("--as src/support/thread_annotations.hpp " +
                      fixture("bad_mutex.cpp"))
                  .exitCode,
              0);
}

TEST(Lint, UsageErrorsExitTwo)
{
    REQUIRE_ENV();
    EXPECT_EQ(runLint("--no-such-flag").exitCode, 2);
    EXPECT_EQ(runLint(fixture("does_not_exist.cpp")).exitCode, 2);
}

} // namespace
