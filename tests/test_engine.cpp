/**
 * @file
 * Unit tests for the discrete-event engine: time ordering, FIFO tie
 * breaking, reentrancy, and monotonic time.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace gga {
namespace {

TEST(Engine, ExecutesInTimeOrder)
{
    Engine e;
    std::vector<int> order;
    e.schedule(30, [&order] { order.push_back(3); });
    e.schedule(10, [&order] { order.push_back(1); });
    e.schedule(20, [&order] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, TiesBreakInScheduleOrder)
{
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        e.schedule(5, [&order, i] { order.push_back(i); });
    e.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Engine, CallbacksMayScheduleMore)
{
    Engine e;
    int depth = 0;
    EventFn chain = [&e, &depth]() {
        if (++depth < 10) {
            e.schedule(1, [&e, &depth] {
                if (++depth < 10)
                    e.schedule(1, [&depth] { ++depth; });
            });
        }
    };
    e.schedule(0, std::move(chain));
    e.run();
    EXPECT_GE(depth, 3);
    EXPECT_TRUE(e.empty());
}

TEST(Engine, ZeroDelayRunsAtSameTime)
{
    Engine e;
    Cycles seen = ~0ull;
    e.schedule(7, [&e, &seen] {
        e.schedule(0, [&e, &seen] { seen = e.now(); });
    });
    e.run();
    EXPECT_EQ(seen, 7u);
}

TEST(Engine, CountsProcessedEvents)
{
    Engine e;
    for (int i = 0; i < 5; ++i)
        e.schedule(i, [] {});
    e.run();
    EXPECT_EQ(e.processedEvents(), 5u);
}

} // namespace
} // namespace gga
