/**
 * @file
 * Unit tests for the discrete-event engine: time ordering, FIFO tie
 * breaking, reentrancy, and monotonic time.
 */

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace gga {
namespace {

TEST(Engine, ExecutesInTimeOrder)
{
    Engine e;
    std::vector<int> order;
    e.schedule(30, [&order] { order.push_back(3); });
    e.schedule(10, [&order] { order.push_back(1); });
    e.schedule(20, [&order] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, TiesBreakInScheduleOrder)
{
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        e.schedule(5, [&order, i] { order.push_back(i); });
    e.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Engine, CallbacksMayScheduleMore)
{
    Engine e;
    int depth = 0;
    EventFn chain = [&e, &depth]() {
        if (++depth < 10) {
            e.schedule(1, [&e, &depth] {
                if (++depth < 10)
                    e.schedule(1, [&depth] { ++depth; });
            });
        }
    };
    e.schedule(0, std::move(chain));
    e.run();
    EXPECT_GE(depth, 3);
    EXPECT_TRUE(e.empty());
}

TEST(Engine, ZeroDelayRunsAtSameTime)
{
    Engine e;
    Cycles seen = ~0ull;
    e.schedule(7, [&e, &seen] {
        e.schedule(0, [&e, &seen] { seen = e.now(); });
    });
    e.run();
    EXPECT_EQ(seen, 7u);
}

TEST(Engine, CountsProcessedEvents)
{
    Engine e;
    for (int i = 0; i < 5; ++i)
        e.schedule(i, [] {});
    e.run();
    EXPECT_EQ(e.processedEvents(), 5u);
}

TEST(Engine, FarDelaysCrossWheelLevels)
{
    // One event per wheel level plus the far list, scheduled out of
    // order; they must still run in time order.
    Engine e;
    std::vector<int> order;
    e.schedule(1ull << 31, [&order] { order.push_back(4); }); // far list
    e.schedule(1ull << 21, [&order] { order.push_back(3); }); // level 2
    e.schedule(1ull << 11, [&order] { order.push_back(2); }); // level 1
    e.schedule(1, [&order] { order.push_back(1); });          // level 0
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(e.now(), 1ull << 31);
}

TEST(Engine, TiesBreakInScheduleOrderAcrossLevels)
{
    // Same-time events inserted while the target sits at different wheel
    // levels (far vs direct) must still run in schedule order after
    // cascading.
    Engine e;
    std::vector<int> order;
    const Cycles t = (1ull << 21) + 5; // starts out on level 2
    e.scheduleAt(t, [&order] { order.push_back(0); });
    e.scheduleAt(t, [&order] { order.push_back(1); });
    // An earlier event close to t schedules two more at exactly t once
    // the time wheel has advanced near it (direct level-0 insert).
    e.scheduleAt(t - 1, [&e, &order] {
        e.schedule(1, [&order] { order.push_back(2); });
        e.schedule(1, [&order] { order.push_back(3); });
    });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, SparseTimelineAdvancesMonotonically)
{
    // Events separated by wide empty gaps; now() must hit each exactly.
    Engine e;
    std::vector<Cycles> seen;
    for (const Cycles t :
         {Cycles{3}, Cycles{1500}, Cycles{1u << 20}, Cycles{1u << 22},
          (Cycles{1} << 30) + 17, (Cycles{1} << 41) + 1}) {
        e.scheduleAt(t, [&e, &seen] { seen.push_back(e.now()); });
    }
    e.run();
    EXPECT_EQ(seen,
              (std::vector<Cycles>{3, 1500, 1u << 20, 1u << 22,
                                   (Cycles{1} << 30) + 17,
                                   (Cycles{1} << 41) + 1}));
}

TEST(Engine, InterleavedSchedulingMatchesReferenceOrder)
{
    // Randomized mix of delays spanning all levels, executed once on the
    // wheel and once on a reference (time, seq) sort: identical order.
    Engine e;
    std::vector<int> wheel_order;
    std::vector<std::pair<Cycles, int>> ref;
    std::uint64_t state = 12345;
    auto next = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t r = next();
        Cycles delay = 0;
        switch (r % 5) {
          case 0: delay = r % 3; break;            // 0..2
          case 1: delay = r % 40; break;           // small
          case 2: delay = 900 + r % 3000; break;   // level 1
          case 3: delay = (1u << 20) + r % 99999; break;
          default: delay = (Cycles{1} << 30) + r % 999; break;
        }
        ref.emplace_back(delay, i);
        e.schedule(delay, [&wheel_order, i] { wheel_order.push_back(i); });
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    e.run();
    ASSERT_EQ(wheel_order.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(wheel_order[i], ref[i].second) << "position " << i;
}

} // namespace
} // namespace gga
