/**
 * @file
 * Tests for the write-ahead job journal and crash recovery: record
 * round trips, terminal-job compaction, torn-tail tolerance, corrupt
 * part files, and full Service restarts — a recovered remote job never
 * re-executes its completed shards and still merges byte-identically,
 * and a recovered local job simply re-runs to the same bytes.
 */

#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "eval/run.hpp"
#include "harness/workloads.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "support/json.hpp"

namespace gga {
namespace {

WorkUnit
unitFor(AppId app, const char* cfg)
{
    WorkUnit u;
    u.app = app;
    u.preset = GraphPreset::Dct;
    u.scale = 0.05;
    u.config = parseConfig(cfg);
    return u;
}

Manifest
tinyManifest()
{
    Manifest m;
    m.add(unitFor(AppId::Mis, "SG1"));
    m.add(unitFor(AppId::Mis, "TG0"));
    m.add(unitFor(AppId::Cc, "DG1"));
    m.add(unitFor(AppId::Cc, "DD1"));
    return m;
}

/** A fresh empty state dir under the test temp root. */
std::string
freshDir(const std::string& name)
{
    const std::string dir = testing::TempDir() + "gga_journal_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

HttpRequest
request(std::string method, std::string path,
        std::map<std::string, std::string> query = {},
        std::string body = {})
{
    HttpRequest r;
    r.method = std::move(method);
    r.path = std::move(path);
    r.target = r.path;
    r.query = std::move(query);
    r.body = std::move(body);
    return r;
}

ServiceOptions
quickOptions(const std::string& stateDir)
{
    ServiceOptions o;
    o.port = 0;
    o.session.threads = 2;
    o.retry.leaseMs = 40;
    o.retry.retryBaseMs = 1;
    o.retry.retryCapMs = 4;
    o.retry.maxAttempts = 3;
    o.tickMs = 5;
    o.stateDir = stateDir;
    return o;
}

std::string
awaitTerminal(Service& svc, const std::string& id)
{
    std::uint64_t since = 0;
    for (int i = 0; i < 600; ++i) {
        const HttpResponse r = svc.handle(request(
            "GET", "/v1/jobs/" + id,
            {{"wait_ms", "200"}, {"since", std::to_string(since)}}));
        EXPECT_EQ(r.status, 200) << r.body;
        const Json j = Json::parse(r.body);
        const std::string state = j.at("state").asString();
        if (state == "done" || state == "failed" || state == "canceled")
            return state;
        since = j.at("version").asU64();
    }
    return "timeout";
}

// --- Journal unit tests --------------------------------------------------

TEST(Journal, RoundTripRecoversLiveJobsInAdmissionOrder)
{
    const std::string dir = freshDir("roundtrip");
    const Manifest m = tinyManifest();
    Session session;
    const ResultSet part0 =
        runManifest(session, m.shard(0, 2)); // a real shard part
    const std::string part0Json = part0.toJson().dump();

    {
        Journal j(dir);
        j.admit("job-2", "alice", true, 2, m);
        j.state("job-2", JobState::Running, "");
        j.part("job-2", 0, part0Json);
        j.admit("job-10", "bob", false, 0, m);
        // A state record for an unknown (already compacted) job is a
        // quiet no-op, not a resurrection.
        j.state("job-99", JobState::Running, "");
    }

    Journal j(dir);
    EXPECT_FALSE(j.tailWasDamaged());
    ASSERT_EQ(j.recovered().size(), 2u);
    // Admission order survives, including ids that don't sort as text
    // ("job-10" < "job-2" lexically).
    const Journal::RecoveredJob& first = j.recovered()[0];
    EXPECT_EQ(first.id, "job-2");
    EXPECT_EQ(first.tenant, "alice");
    EXPECT_TRUE(first.remote);
    EXPECT_EQ(first.shards, 2u);
    EXPECT_EQ(first.state, JobState::Running);
    EXPECT_EQ(first.manifest.toJson().dump(), m.toJson().dump());
    ASSERT_EQ(first.parts.size(), 1u);
    EXPECT_EQ(first.parts.at(0).toJson().dump(), part0Json);
    EXPECT_EQ(j.recovered()[1].id, "job-10");
    EXPECT_FALSE(j.recovered()[1].remote);
}

TEST(Journal, FinishCompactsRecordsAndDeletesPartFiles)
{
    const std::string dir = freshDir("compact");
    const Manifest m = tinyManifest();
    Journal j(dir);
    j.admit("job-1", "t", true, 2, m);
    j.part("job-1", 0, "{\"results\":[]}");
    j.state("job-1", JobState::Done, "");
    EXPECT_EQ(j.statsJson().at("live_jobs").asU64(), 1u);

    j.finish("job-1");
    const Json stats = j.statsJson();
    EXPECT_EQ(stats.at("live_jobs").asU64(), 0u);
    EXPECT_EQ(stats.at("records").asU64(), 0u);
    EXPECT_EQ(stats.at("bytes").asU64(), 0u);
    EXPECT_EQ(stats.at("compactions_total").asU64(), 1u);
    EXPECT_TRUE(std::filesystem::is_empty(dir + "/parts"));
    // finish() on an unknown job is idempotent.
    j.finish("job-1");

    Journal replay(dir);
    EXPECT_TRUE(replay.recovered().empty());
}

TEST(Journal, TerminalJobsFoundAtReplayAreCompactedAway)
{
    const std::string dir = freshDir("deferred");
    const Manifest m = tinyManifest();
    {
        // Done recorded but the process "died" before finish() compacted.
        Journal j(dir);
        j.admit("job-1", "t", true, 2, m);
        j.part("job-1", 0, "{\"results\":[]}");
        j.state("job-1", JobState::Done, "");
        j.admit("job-2", "t", false, 0, m);
    }
    Journal j(dir);
    ASSERT_EQ(j.recovered().size(), 1u);
    EXPECT_EQ(j.recovered()[0].id, "job-2");
    // The terminal job's records and part files were swept at replay.
    EXPECT_TRUE(std::filesystem::is_empty(dir + "/parts"));
}

TEST(Journal, TornTailIsDroppedAndEarlierRecordsSurvive)
{
    const std::string dir = freshDir("torntail");
    const Manifest m = tinyManifest();
    {
        Journal j(dir);
        j.admit("job-1", "t", false, 0, m);
        j.state("job-1", JobState::Running, "");
    }
    {
        // A crash mid-append leaves a half-written last line.
        std::ofstream f(dir + "/journal.jsonl", std::ios::app);
        f << "{\"t\":\"admit\",\"job\":\"job-2\",\"tena";
    }
    Journal j(dir);
    EXPECT_TRUE(j.tailWasDamaged());
    EXPECT_TRUE(j.statsJson().at("tail_damaged").asBool());
    ASSERT_EQ(j.recovered().size(), 1u);
    EXPECT_EQ(j.recovered()[0].id, "job-1");
    EXPECT_EQ(j.recovered()[0].state, JobState::Running);

    // The compacted rewrite healed the log: a second replay is clean.
    Journal again(dir);
    EXPECT_FALSE(again.tailWasDamaged());
    EXPECT_EQ(again.recovered().size(), 1u);
}

TEST(Journal, GarbageTailAfterGoodRecordsIsTolerated)
{
    const std::string dir = freshDir("garbage");
    const Manifest m = tinyManifest();
    {
        Journal j(dir);
        j.admit("job-1", "t", false, 0, m);
    }
    {
        std::ofstream f(dir + "/journal.jsonl", std::ios::app);
        f << "\xff\xfe not json at all\n{\"t\":\"state\"}\n";
    }
    Journal j(dir);
    EXPECT_TRUE(j.tailWasDamaged());
    ASSERT_EQ(j.recovered().size(), 1u);
}

TEST(Journal, CorruptPartFileDropsOnlyThatShard)
{
    const std::string dir = freshDir("corruptpart");
    const Manifest m = tinyManifest();
    {
        Journal j(dir);
        j.admit("job-1", "t", true, 2, m);
        j.part("job-1", 0, "{\"results\":[]}");
        j.part("job-1", 1, "{\"results\":[]}");
    }
    {
        // Flip the stored bytes so the recorded checksum no longer
        // matches — bit rot on disk.
        std::ofstream f(dir + "/parts/job-1.s0.json", std::ios::trunc);
        f << "{\"results\": [] }";
    }
    Journal j(dir);
    ASSERT_EQ(j.recovered().size(), 1u);
    const Journal::RecoveredJob& job = j.recovered()[0];
    EXPECT_EQ(job.parts.count(0), 0u); // dropped: shard 0 will re-run
    EXPECT_EQ(job.parts.count(1), 1u);
    EXPECT_FALSE(j.tailWasDamaged()); // a bad part is not tail damage
    EXPECT_EQ(j.statsJson().at("dropped_parts").asU64(), 1u);
}

// --- Service restart -----------------------------------------------------

/** Register a worker through the wire layer; returns its id. */
std::string
registerWorker(Service& svc, const std::string& name)
{
    const HttpResponse r = svc.handle(request(
        "POST", "/v1/workers/register", {}, "{\"name\": \"" + name + "\"}"));
    EXPECT_EQ(r.status, 200);
    return Json::parse(r.body).at("worker").asString();
}

std::optional<Json>
pollWorker(Service& svc, const std::string& worker)
{
    const HttpResponse r = svc.handle(request(
        "POST", "/v1/workers/poll", {}, "{\"worker\": \"" + worker + "\"}"));
    if (r.status == 204)
        return std::nullopt;
    EXPECT_EQ(r.status, 200) << r.body;
    return Json::parse(r.body);
}

HttpResponse
runAndPost(Service& svc, Session& session, const std::string& worker,
           const Json& assignment)
{
    const Manifest shard = Manifest::fromJson(assignment.at("manifest"));
    const ResultSet results = runManifest(session, shard);
    Json part = Json::object();
    part.set("worker", Json(worker));
    part.set("job", assignment.at("job"));
    part.set("shard", assignment.at("shard"));
    part.set("results", results.toJson());
    return svc.handle(
        request("POST", "/v1/workers/parts", {}, part.dump()));
}

TEST(ServeRecovery, RestartMidRemoteJobNeverRerunsCompletedShards)
{
    const std::string dir = freshDir("restart_remote");
    const Manifest manifest = tinyManifest();
    Session workerSession;
    std::string id;
    std::uint64_t doneShard = 0;

    {
        Service svc(quickOptions(dir));
        const HttpResponse sub = svc.handle(request(
            "POST", "/v1/jobs", {},
            "{\"manifest\": " + manifest.toJson().dump() +
                ", \"execution\": \"remote\", \"shards\": 2}"));
        ASSERT_EQ(sub.status, 202) << sub.body;
        id = Json::parse(sub.body).at("id").asString();

        const std::string worker = registerWorker(svc, "doomed");
        std::optional<Json> a0 = pollWorker(svc, worker);
        ASSERT_TRUE(a0.has_value());
        doneShard = a0->at("shard").asU64();
        const HttpResponse posted =
            runAndPost(svc, workerSession, worker, *a0);
        ASSERT_EQ(posted.status, 200) << posted.body;
        // Service destructs here with the second shard still leased out
        // — the crash, minus the SIGKILL (serve_crash_smoke.sh covers
        // the real-process version).
    }

    Service svc(quickOptions(dir));
    // The job is back under its original id, still running.
    const HttpResponse snap =
        svc.handle(request("GET", "/v1/jobs/" + id));
    ASSERT_EQ(snap.status, 200) << snap.body;
    EXPECT_EQ(Json::parse(snap.body).at("state").asString(), "running");

    Json stats = Json::parse(svc.handle(request("GET", "/stats")).body);
    EXPECT_EQ(stats.at("journal").at("recovered_jobs").asU64(), 1u);
    EXPECT_EQ(stats.at("journal").at("recovered_jobs_total").asU64(), 1u);
    EXPECT_EQ(stats.at("orchestrator").at("recovered_parts_total").asU64(),
              1u);
    EXPECT_EQ(stats.at("orchestrator").at("completed_shards_total").asU64(),
              0u);

    // Only the unfinished shard is handed out; the recovered one is
    // done and never re-leased.
    const std::string worker = registerWorker(svc, "successor");
    std::optional<Json> a = pollWorker(svc, worker);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->at("job").asString(), id);
    EXPECT_NE(a->at("shard").asU64(), doneShard);
    EXPECT_FALSE(pollWorker(svc, worker).has_value());

    EXPECT_EQ(runAndPost(svc, workerSession, worker, *a).status, 200);
    EXPECT_EQ(awaitTerminal(svc, id), "done");

    // Exactly one shard was executed by this process; the merged result
    // is still byte-identical to a single in-process run.
    stats = Json::parse(svc.handle(request("GET", "/stats")).body);
    EXPECT_EQ(stats.at("orchestrator").at("completed_shards_total").asU64(),
              1u);
    Session reference;
    const ResultSet expected = runManifest(reference, manifest);
    const std::optional<ResultSet> got = svc.jobs().finalResults(id);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->toJson().dump(), expected.toJson().dump());

    // Done -> compacted: a third boot has nothing to recover.
    const Json jstats = Json::parse(
        svc.handle(request("GET", "/stats")).body);
    EXPECT_EQ(jstats.at("journal").at("live_jobs").asU64(), 0u);
}

TEST(ServeRecovery, RestartWithAllShardsRecoveredFinishesImmediately)
{
    const std::string dir = freshDir("restart_alldone");
    const Manifest manifest = tinyManifest();
    Session workerSession;
    std::string id;

    {
        Service svc(quickOptions(dir));
        const HttpResponse sub = svc.handle(request(
            "POST", "/v1/jobs", {},
            "{\"manifest\": " + manifest.toJson().dump() +
                ", \"execution\": \"remote\", \"shards\": 2}"));
        ASSERT_EQ(sub.status, 202) << sub.body;
        id = Json::parse(sub.body).at("id").asString();
        const std::string worker = registerWorker(svc, "w");
        std::optional<Json> a0 = pollWorker(svc, worker);
        std::optional<Json> a1 = pollWorker(svc, worker);
        ASSERT_TRUE(a0 && a1);
        ASSERT_EQ(runAndPost(svc, workerSession, worker, *a0).status, 200);
        ASSERT_EQ(runAndPost(svc, workerSession, worker, *a1).status, 200);
        ASSERT_EQ(awaitTerminal(svc, id), "done");
        // Rewind the clock: re-journal the job as if the crash hit after
        // both parts landed but before the done record. (The public API
        // compacts done jobs instantly, so fabricate the crash state.)
        Journal j(dir);
        j.admit(id, "default", true, 2, manifest);
        j.state(id, JobState::Running, "");
        j.part(id, 0,
               runManifest(workerSession, manifest.shard(0, 2))
                   .toJson()
                   .dump());
        j.part(id, 1,
               runManifest(workerSession, manifest.shard(1, 2))
                   .toJson()
                   .dump());
    }

    Service svc(quickOptions(dir));
    EXPECT_EQ(awaitTerminal(svc, id), "done");
    const Json stats =
        Json::parse(svc.handle(request("GET", "/stats")).body);
    EXPECT_EQ(stats.at("orchestrator").at("recovered_parts_total").asU64(),
              2u);
    EXPECT_EQ(stats.at("orchestrator").at("completed_shards_total").asU64(),
              0u); // nothing re-executed
    Session reference;
    const ResultSet expected = runManifest(reference, manifest);
    const std::optional<ResultSet> got = svc.jobs().finalResults(id);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->toJson().dump(), expected.toJson().dump());
}

TEST(ServeRecovery, RecoveredLocalJobRerunsToTheSameBytes)
{
    const std::string dir = freshDir("restart_local");
    const Manifest manifest = tinyManifest();
    {
        // A local job that was admitted but never finished: journal it
        // by hand (a live Service would have raced it to done).
        Journal j(dir);
        j.admit("job-5", "carol", false, 0, manifest);
        j.state("job-5", JobState::Running, "");
    }

    Service svc(quickOptions(dir));
    EXPECT_EQ(awaitTerminal(svc, "job-5"), "done");
    const Json snap = Json::parse(
        svc.handle(request("GET", "/v1/jobs/job-5")).body);
    EXPECT_EQ(snap.at("tenant").asString(), "carol");

    Session reference;
    const ResultSet expected = runManifest(reference, manifest);
    const std::optional<ResultSet> got = svc.jobs().finalResults("job-5");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->toJson().dump(), expected.toJson().dump());

    // New admissions resume numbering past the recovered id.
    const HttpResponse sub = svc.handle(request(
        "POST", "/v1/jobs", {},
        "{\"manifest\": " + manifest.toJson().dump() + "}"));
    ASSERT_EQ(sub.status, 202);
    EXPECT_EQ(Json::parse(sub.body).at("id").asString(), "job-6");
}

} // namespace
} // namespace gga
