/**
 * @file
 * Tests for the deterministic fault-injection layer: trigger grammar
 * (N, N+, N/M), strict spec parsing, counter-based firing sequences,
 * seeded corruption determinism, and the /stats counters.
 */

#include <string>

#include <gtest/gtest.h>

#include "support/faults.hpp"
#include "support/json.hpp"

namespace gga {
namespace {

/** RAII disarm so one test's plan never leaks into the next. */
struct FaultGuard
{
    FaultGuard() { faults::configure(""); }
    ~FaultGuard() { faults::configure(""); }
};

TEST(Faults, DisarmedSitesNeverFire)
{
    FaultGuard guard;
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faults::fire("some.site"));
    EXPECT_EQ(faults::injectedTotal(), 0u);
    EXPECT_FALSE(faults::statsJson().at("enabled").asBool());
}

TEST(Faults, NthHitTriggerFiresExactlyOnce)
{
    FaultGuard guard;
    faults::configure("a=3");
    EXPECT_FALSE(faults::fire("a"));
    EXPECT_FALSE(faults::fire("a"));
    EXPECT_TRUE(faults::fire("a"));
    EXPECT_FALSE(faults::fire("a"));
    EXPECT_FALSE(faults::fire("a"));
    // Unlisted sites stay inert even while the plan is armed.
    EXPECT_FALSE(faults::fire("b"));
    EXPECT_EQ(faults::injectedTotal(), 1u);
}

TEST(Faults, OpenEndedTriggerFiresFromNOnward)
{
    FaultGuard guard;
    faults::configure("a=2+");
    EXPECT_FALSE(faults::fire("a"));
    EXPECT_TRUE(faults::fire("a"));
    EXPECT_TRUE(faults::fire("a"));
    EXPECT_TRUE(faults::fire("a"));
    EXPECT_EQ(faults::injectedTotal(), 3u);
}

TEST(Faults, PeriodicTriggerFiresEveryMth)
{
    FaultGuard guard;
    faults::configure("a=2/3");
    // Hits: 1 2 3 4 5 6 7 8 -> fires on 2, 5, 8.
    const bool expected[] = {false, true,  false, false,
                             true,  false, false, true};
    for (const bool want : expected)
        EXPECT_EQ(faults::fire("a"), want);
}

TEST(Faults, ConfigureResetsCountersAndSeparatesSites)
{
    FaultGuard guard;
    faults::configure("a=1,b=2");
    EXPECT_TRUE(faults::fire("a"));
    EXPECT_FALSE(faults::fire("b"));
    EXPECT_TRUE(faults::fire("b"));
    // Re-arming the same spec restarts every counter from zero.
    faults::configure("a=1,b=2");
    EXPECT_EQ(faults::injectedTotal(), 0u);
    EXPECT_TRUE(faults::fire("a"));
}

TEST(Faults, MalformedSpecsThrow)
{
    FaultGuard guard;
    EXPECT_THROW(faults::configure("a"), std::invalid_argument);
    EXPECT_THROW(faults::configure("a="), std::invalid_argument);
    EXPECT_THROW(faults::configure("a=0"), std::invalid_argument);
    EXPECT_THROW(faults::configure("a=x"), std::invalid_argument);
    EXPECT_THROW(faults::configure("a=1/0"), std::invalid_argument);
    EXPECT_THROW(faults::configure("a=1,a=2"), std::invalid_argument);
    EXPECT_THROW(faults::configure("=3"), std::invalid_argument);
    EXPECT_THROW(faults::configure("seed="), std::invalid_argument);
    // A failed configure leaves the previous (empty) plan armed.
    EXPECT_FALSE(faults::fire("a"));
}

TEST(Faults, CorruptionIsSeededAndDeterministic)
{
    FaultGuard guard;
    const std::string original(64, 'x');

    faults::configure("seed=7,c=1");
    std::string first = original;
    EXPECT_TRUE(faults::corrupt("c", first));
    EXPECT_NE(first, original); // a byte actually flipped

    // Same seed, same counters -> the identical mutation.
    faults::configure("seed=7,c=1");
    std::string second = original;
    EXPECT_TRUE(faults::corrupt("c", second));
    EXPECT_EQ(first, second);

    // A different seed lands a different mutation.
    faults::configure("seed=8,c=1");
    std::string third = original;
    EXPECT_TRUE(faults::corrupt("c", third));
    EXPECT_NE(third, first);

    // Unfired hits leave the data alone.
    faults::configure("seed=7,c=2");
    std::string untouched = original;
    EXPECT_FALSE(faults::corrupt("c", untouched));
    EXPECT_EQ(untouched, original);
}

TEST(Faults, TruncateDropsTheTailHalf)
{
    FaultGuard guard;
    faults::configure("t=1");
    std::string data(10, 'y');
    EXPECT_TRUE(faults::truncate("t", data));
    EXPECT_EQ(data.size(), 5u);
}

TEST(Faults, StatsReportHitsAndInjectionsPerSite)
{
    FaultGuard guard;
    faults::configure("a=2+");
    faults::fire("a");
    faults::fire("a");
    faults::fire("a");
    const Json stats = faults::statsJson();
    EXPECT_TRUE(stats.at("enabled").asBool());
    EXPECT_EQ(stats.at("injected_total").asU64(), 2u);
    EXPECT_EQ(stats.at("by_site").at("a").at("hits").asU64(), 3u);
    EXPECT_EQ(stats.at("by_site").at("a").at("injected").asU64(), 2u);
}

} // namespace
} // namespace gga
