/**
 * @file
 * Unit tests for the GSI-style stall classification.
 */

#include <gtest/gtest.h>

#include "sim/stall.hpp"

namespace gga {
namespace {

TEST(Stall, IdleWhenNoWarps)
{
    SmAccounting a;
    a.catchUp(100);
    EXPECT_DOUBLE_EQ(a.breakdown().idle, 100.0);
    EXPECT_DOUBLE_EQ(a.breakdown().total(), 100.0);
}

TEST(Stall, BusyCyclesCounted)
{
    SmAccounting a;
    a.warpArrived(0);
    a.onIssue(0);
    a.onIssue(1);
    a.onIssue(2);
    EXPECT_DOUBLE_EQ(a.breakdown().busy, 3.0);
}

TEST(Stall, SingleCategoryAttribution)
{
    SmAccounting a;
    a.warpArrived(0);
    a.blockWarp(WaitCat::Data, 0);
    a.unblockWarp(WaitCat::Data, 50);
    a.catchUp(50);
    EXPECT_DOUBLE_EQ(a.breakdown().data, 50.0);
    EXPECT_DOUBLE_EQ(a.breakdown().sync, 0.0);
}

TEST(Stall, ProportionalSplitAcrossCategories)
{
    SmAccounting a;
    a.warpArrived(0);
    a.warpArrived(0);
    a.warpArrived(0);
    a.blockWarp(WaitCat::Data, 0);
    a.blockWarp(WaitCat::Data, 0);
    a.blockWarp(WaitCat::Sync, 0);
    a.catchUp(30);
    EXPECT_DOUBLE_EQ(a.breakdown().data, 20.0);
    EXPECT_DOUBLE_EQ(a.breakdown().sync, 10.0);
}

TEST(Stall, TotalsAreConserved)
{
    SmAccounting a;
    a.warpArrived(0);
    a.blockWarp(WaitCat::Comp, 0);
    a.onIssue(10); // accounts [0,10) then busy at 10
    a.unblockWarp(WaitCat::Comp, 11);
    a.blockWarp(WaitCat::Sync, 11);
    a.unblockWarp(WaitCat::Sync, 20);
    a.warpFinished(20);
    a.catchUp(25); // idle tail
    const StallBreakdown& b = a.breakdown();
    EXPECT_DOUBLE_EQ(b.total(), 25.0);
    EXPECT_DOUBLE_EQ(b.busy, 1.0);
    EXPECT_DOUBLE_EQ(b.comp, 10.0);
    EXPECT_DOUBLE_EQ(b.sync, 9.0);
    EXPECT_DOUBLE_EQ(b.idle, 5.0);
}

TEST(Stall, ExplicitAccounting)
{
    SmAccounting a;
    a.accountExplicit(WaitCat::Sync, 0, 40);
    EXPECT_DOUBLE_EQ(a.breakdown().sync, 40.0);
}

TEST(Stall, DescribeBreakdownFormats)
{
    StallBreakdown b;
    b.busy = 50;
    b.idle = 50;
    const std::string s = describeBreakdown(b);
    EXPECT_NE(s.find("busy=50.0%"), std::string::npos);
    EXPECT_NE(s.find("idle=50.0%"), std::string::npos);
}

} // namespace
} // namespace gga
