// gga_lint fixture: determinism-rng must fire on every libc RNG entry
// point when the file is scoped into src/sim/ or src/graph/. Not
// compiled — linted as text by test_lint.
#include <cstdlib>
#include <random>

namespace gga {

unsigned
noisySeed()
{
    std::random_device rd; // nondeterministic seed
    std::srand(rd());
    return static_cast<unsigned>(std::rand());
}

} // namespace gga
