// gga_lint fixture: everything here is ALLOWED — the self-test asserts
// zero findings even when this file is scoped into src/sim/ or the
// byte-identity-gated renderer set. Exercises every deliberate
// exemption in the rules. Not compiled — linted as text by test_lint.
#include <charconv>
#include <cstdio>
#include <new>
#include <string>

// Mentions of rand(), std::unordered_map, new/delete, std::mutex, and
// "%f" in comments must never fire: rules run on a comment-stripped
// view. /* %e inside a block comment is fine too */

namespace gga {

struct Slot
{
    alignas(double) unsigned char storage[sizeof(double)];

    Slot(const Slot&) = delete; // deleted function, not a delete-expr
    Slot& operator=(const Slot&) = delete;
    Slot() = default;
};

double*
emplace(Slot& slot, double v)
{
    return ::new (slot.storage) double(v); // placement new allocates nothing
}

std::string
formatFixed(double v)
{
    char buf[64];
    // Integer conversions are locale-independent; only the float family
    // (%f/%e/%g/%a) follows LC_NUMERIC. "100%% done" is a literal '%'.
    std::snprintf(buf, sizeof(buf), "%d of %u (100%% done)", 1, 2u);
    char out[64];
    const auto res = std::to_chars(out, out + sizeof(out), v,
                                   std::chars_format::fixed, 3);
    return std::string(out, res.ptr);
}

constexpr long kBigCount = 1'000'000; // digit separators, not char literals

const char* kDoc = R"(raw strings may mention std::mutex and rand()
without tripping token rules)";

} // namespace gga
