// gga_lint fixture: locale-float must fire on printf float conversions,
// setprecision, and locale-dependent parsing in the byte-identity-gated
// renderers. Not compiled — linted as text by test_lint.
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>

namespace gga {

std::string
formatLatency(double cycles)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", cycles); // follows LC_NUMERIC
    std::ostringstream os;
    os << std::setprecision(3) << cycles;
    const double back = std::stod(os.str());
    (void)back;
    return buf;
}

} // namespace gga
