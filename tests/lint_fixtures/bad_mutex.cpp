// gga_lint fixture: raw-mutex must fire on unannotated standard lock
// types in src/ — shared state goes through gga::Mutex so clang
// -Wthread-safety sees every acquisition. Not compiled — linted as
// text by test_lint.
#include <condition_variable>
#include <mutex>

namespace gga {

class Counter
{
  public:
    void bump()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++n_;
        cv_.notify_all();
    }

  private:
    std::mutex mu_; // invisible to the thread-safety analyzer
    std::condition_variable cv_;
    int n_ = 0;
};

} // namespace gga
