// gga_lint fixture: raw-new must fire on new and delete expressions in
// src/ outside support/object_pool.hpp. Not compiled — linted as text
// by test_lint.

namespace gga {

struct Node
{
    int value = 0;
};

int
leakyRoundTrip(int v)
{
    Node* n = new Node{v};
    Node* arr = new Node[4];
    const int out = n->value;
    delete n;
    delete[] arr;
    return out;
}

} // namespace gga
