// gga_lint fixture: determinism-unordered must fire on hash-container
// use in the determinism core (iteration order is implementation-
// defined). Not compiled — linted as text by test_lint.
#include <unordered_map>

namespace gga {

int
sumDegrees(const std::unordered_map<int, int>& degree)
{
    int total = 0;
    for (const auto& [v, d] : degree) { // order varies run to run
        (void)v;
        total += d;
    }
    return total;
}

} // namespace gga
