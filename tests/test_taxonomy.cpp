/**
 * @file
 * Unit tests for the taxonomy: k-means, Volume/Reuse/Imbalance formulas
 * (including checks against the paper's published Table II values), and
 * the classification thresholds.
 */

#include <gtest/gtest.h>

#include "api/graph_store.hpp"
#include "graph/builder.hpp"
#include "graph/presets.hpp"
#include "taxonomy/kmeans.hpp"
#include "taxonomy/profile.hpp"

namespace gga {
namespace {

TEST(KMeans, TwoObviousClusters)
{
    const std::vector<double> v{1, 2, 1, 2, 100, 99};
    const KMeans1dResult r = kmeans1d2(v);
    EXPECT_NEAR(r.lowCentroid, 1.5, 0.01);
    EXPECT_NEAR(r.highCentroid, 99.5, 0.01);
    EXPECT_GT(r.centroidGap, 90.0);
}

TEST(KMeans, UniformValuesHaveZeroGap)
{
    const std::vector<double> v{7, 7, 7, 7};
    EXPECT_DOUBLE_EQ(kmeans1d2(v).centroidGap, 0.0);
}

TEST(KMeans, DegenerateInputs)
{
    EXPECT_DOUBLE_EQ(kmeans1d2({}).centroidGap, 0.0);
    EXPECT_DOUBLE_EQ(kmeans1d2(std::vector<double>{5.0}).centroidGap, 0.0);
}

TEST(Volume, MatchesPaperFormula)
{
    // Eq. 1 with the published |V|,|E| must reproduce the printed KB for
    // every Table II row (4 bytes per element, 15 SMs).
    GpuGeometry geom;
    for (GraphPreset p : kAllGraphPresets) {
        const PaperGraphStats& s = paperStats(p);
        const double elems = double(s.vertices) + double(s.edges);
        const double kb = elems * 4 / 15 / 1024.0;
        // WNG's printed value (79.458) disagrees with its own V/E by
        // ~0.3 KB; all others match to the printed precision.
        if (p != GraphPreset::Wng) {
            EXPECT_NEAR(kb, s.volumeKb, 0.01) << presetName(p);
        }
    }
}

TEST(Volume, ClassThresholds)
{
    GpuGeometry geom;
    TaxonomyThresholds th;
    EXPECT_EQ(classifyVolume(47.9, geom, th), Level::Low);    // < 48
    EXPECT_EQ(classifyVolume(48.1, geom, th), Level::Medium);
    EXPECT_EQ(classifyVolume(273.0, geom, th), Level::Medium); // < 4096/15
    EXPECT_EQ(classifyVolume(274.0, geom, th), Level::High);
}

TEST(Reuse, RingInsideOneBlockIsFullyLocal)
{
    // 64 vertices in a ring, all within one 256-thread block.
    GraphBuilder b(64);
    for (VertexId v = 0; v < 64; ++v)
        b.addUndirected(v, (v + 1) % 64);
    const CsrGraph g = b.build();
    const ReuseMetrics m = computeReuse(g, GpuGeometry{});
    EXPECT_DOUBLE_EQ(m.anr, 0.0);
    EXPECT_DOUBLE_EQ(m.anl, 2.0);
    EXPECT_DOUBLE_EQ(m.reuse, 1.0);
}

TEST(Reuse, CrossBlockBipartiteIsFullyRemote)
{
    // Vertices i and i+256 are paired: every edge crosses blocks.
    GraphBuilder b(512);
    for (VertexId v = 0; v < 256; ++v)
        b.addUndirected(v, v + 256);
    const CsrGraph g = b.build();
    const ReuseMetrics m = computeReuse(g, GpuGeometry{});
    EXPECT_DOUBLE_EQ(m.anl, 0.0);
    EXPECT_DOUBLE_EQ(m.reuse, 0.0);
}

TEST(Reuse, AnlPlusAnrIsAverageDegree)
{
    const GraphStore::GraphPtr g = GraphStore::instance().get(GraphPreset::Dct);
    const ReuseMetrics m = computeReuse(*g, GpuGeometry{});
    EXPECT_NEAR(m.anl + m.anr, g->avgDegree(), 1e-9);
}

TEST(Imbalance, UniformDegreesAreBalanced)
{
    GraphBuilder b(512);
    for (VertexId v = 0; v < 512; ++v)
        b.addUndirected(v, (v + 1) % 512);
    const CsrGraph g = b.build();
    EXPECT_DOUBLE_EQ(computeImbalance(g, GpuGeometry{}, {}), 0.0);
}

TEST(Imbalance, OneHubPerBlockMarksAllBlocks)
{
    // Two blocks of 256; in each, vertex 0 of the block is a hub with
    // degree far above the k-means gap threshold.
    GraphBuilder b(512);
    for (VertexId v = 0; v < 512; ++v)
        b.addUndirected(v, (v + 1) % 512);
    for (VertexId t = 2; t < 100; ++t) {
        b.addUndirected(0, t);
        b.addUndirected(256, 256 + t);
    }
    const CsrGraph g = b.build();
    EXPECT_DOUBLE_EQ(computeImbalance(g, GpuGeometry{}, {}), 1.0);
}

TEST(Imbalance, GapBelowThresholdNotMarked)
{
    // Hub degree only ~8 above the rest: below the 10-centroid-gap cut.
    GraphBuilder b(256);
    for (VertexId v = 0; v < 256; ++v)
        b.addUndirected(v, (v + 1) % 256);
    for (VertexId t = 2; t < 9; ++t)
        b.addUndirected(0, t);
    const CsrGraph g = b.build();
    EXPECT_DOUBLE_EQ(computeImbalance(g, GpuGeometry{}, {}), 0.0);
}

TEST(Profile, PresetClassesMatchTableII)
{
    for (GraphPreset p : kAllGraphPresets) {
        const TaxonomyProfile prof =
            profileGraph(*GraphStore::instance().get(p));
        const PaperGraphStats& paper = paperStats(p);
        EXPECT_EQ(levelChar(prof.volume), paper.volumeClass)
            << presetName(p);
        EXPECT_EQ(levelChar(prof.reuseLevel), paper.reuseClass)
            << presetName(p);
        EXPECT_EQ(levelChar(prof.imbalanceLevel), paper.imbalanceClass)
            << presetName(p);
    }
}

TEST(Profile, PresetCountsAreExact)
{
    for (GraphPreset p : kAllGraphPresets) {
        const GraphStore::GraphPtr g = GraphStore::instance().get(p);
        const PaperGraphStats& paper = paperStats(p);
        EXPECT_EQ(g->numVertices(), paper.vertices) << presetName(p);
        EXPECT_EQ(g->numEdges(), paper.edges) << presetName(p);
        EXPECT_TRUE(g->isSymmetric()) << presetName(p);
        EXPECT_TRUE(g->hasNoSelfLoops()) << presetName(p);
    }
}

} // namespace
} // namespace gga
