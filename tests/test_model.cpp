/**
 * @file
 * Unit tests for the model layer: configuration naming/parsing, algorithm
 * properties (Table III), the full decision tree against the paper's
 * Table V, and the partial-design-space variant.
 */

#include <gtest/gtest.h>

#include "api/graph_store.hpp"
#include "graph/presets.hpp"
#include "model/algo_props.hpp"
#include "model/config.hpp"
#include "model/decision_tree.hpp"
#include "model/partial_tree.hpp"
#include "taxonomy/profile.hpp"

namespace gga {
namespace {

TEST(Config, NamesRoundTrip)
{
    for (bool dynamic : {false, true}) {
        for (const SystemConfig& c : allConfigs(dynamic)) {
            EXPECT_EQ(parseConfig(c.name()), c);
            EXPECT_EQ(c.name().size(), 3u);
        }
    }
}

TEST(Config, EnumeratesTwelveAndSix)
{
    EXPECT_EQ(allConfigs(false).size(), 12u);
    EXPECT_EQ(allConfigs(true).size(), 6u);
    EXPECT_EQ(figureConfigs(false).size(), 5u);
    EXPECT_EQ(figureConfigs(true).size(), 4u);
}

TEST(Config, KnownNames)
{
    const SystemConfig sgr = parseConfig("SGR");
    EXPECT_EQ(sgr.prop, UpdateProp::Push);
    EXPECT_EQ(sgr.coh, CoherenceKind::Gpu);
    EXPECT_EQ(sgr.con, ConsistencyKind::DrfRlx);
    const SystemConfig dd1 = parseConfig("DD1");
    EXPECT_EQ(dd1.prop, UpdateProp::PushPull);
    EXPECT_EQ(dd1.coh, CoherenceKind::DeNovo);
    EXPECT_EQ(dd1.con, ConsistencyKind::Drf1);
}

TEST(AlgoProps, TableIII)
{
    EXPECT_EQ(algoProperties(AppId::Pr).information, Preference::Source);
    EXPECT_EQ(algoProperties(AppId::Pr).control, Preference::Symmetric);
    EXPECT_EQ(algoProperties(AppId::Sssp).control, Preference::Source);
    EXPECT_EQ(algoProperties(AppId::Mis).information,
              Preference::Symmetric);
    EXPECT_EQ(algoProperties(AppId::Clr).information, Preference::Target);
    EXPECT_EQ(algoProperties(AppId::Bc).control, Preference::Source);
    EXPECT_EQ(algoProperties(AppId::Cc).traversal, TraversalKind::Dynamic);
}

/** Build a synthetic profile with the given classes. */
TaxonomyProfile
profileWith(Level volume, Level reuse, Level imbalance)
{
    TaxonomyProfile p;
    p.volume = volume;
    p.reuseLevel = reuse;
    p.imbalanceLevel = imbalance;
    return p;
}

TEST(DecisionTree, DynamicTraversalAlwaysDD1)
{
    const auto cfg = predictFullDesignSpace(
        profileWith(Level::High, Level::Low, Level::High),
        algoProperties(AppId::Cc));
    EXPECT_EQ(cfg.name(), "DD1");
}

TEST(DecisionTree, PullForHighReuseBalancedSymmetricApps)
{
    // MIS on an OLS-like profile: high reuse, low imbalance, med volume.
    const auto cfg = predictFullDesignSpace(
        profileWith(Level::Medium, Level::High, Level::Low),
        algoProperties(AppId::Mis));
    EXPECT_EQ(cfg.name(), "TG0");
}

TEST(DecisionTree, SourceControlForcesPush)
{
    // SSSP elides at the source: push even on a pull-friendly profile.
    const auto cfg = predictFullDesignSpace(
        profileWith(Level::Medium, Level::High, Level::Low),
        algoProperties(AppId::Sssp));
    EXPECT_EQ(cfg.prop, UpdateProp::Push);
    EXPECT_EQ(cfg.coh, CoherenceKind::DeNovo); // high reuse, med volume
    EXPECT_EQ(cfg.con, ConsistencyKind::DrfRlx); // med volume
}

TEST(DecisionTree, CoherenceFollowsReuseAndVolume)
{
    // Low reuse -> GPU coherence even with low volume.
    auto cfg = predictFullDesignSpace(
        profileWith(Level::Low, Level::Low, Level::High),
        algoProperties(AppId::Pr));
    EXPECT_EQ(cfg.coh, CoherenceKind::Gpu);
    // High reuse + high volume -> still GPU (thrashing).
    cfg = predictFullDesignSpace(
        profileWith(Level::High, Level::High, Level::Low),
        algoProperties(AppId::Pr));
    EXPECT_EQ(cfg.coh, CoherenceKind::Gpu);
}

TEST(DecisionTree, ConsistencyNeedsImbalanceOrVolume)
{
    // Low volume + low imbalance -> DRF1 (programmability).
    const auto cfg = predictFullDesignSpace(
        profileWith(Level::Low, Level::Low, Level::Low),
        algoProperties(AppId::Pr));
    EXPECT_EQ(cfg.con, ConsistencyKind::Drf1);
}

TEST(DecisionTree, TraceExplainsDecisions)
{
    std::vector<std::string> trace;
    predictFullDesignSpace(profileWith(Level::Low, Level::High, Level::High),
                           algoProperties(AppId::Mis), &trace);
    EXPECT_GE(trace.size(), 3u);
}

TEST(DecisionTree, ReproducesPaperTableV)
{
    const char* const expected[6][6] = {
        {"SGR", "SGR", "SGR", "SGR", "SGR", "DD1"},
        {"SGR", "SGR", "SGR", "SGR", "SGR", "DD1"},
        {"SGR", "SGR", "SGR", "SGR", "SGR", "DD1"},
        {"SDR", "SDR", "TG0", "TG0", "SDR", "DD1"},
        {"SDR", "SDR", "SDR", "SDR", "SDR", "DD1"},
        {"SGR", "SGR", "SGR", "SGR", "SGR", "DD1"},
    };
    for (std::size_t gi = 0; gi < kAllGraphPresets.size(); ++gi) {
        const TaxonomyProfile prof = profileGraph(
            *GraphStore::instance().get(kAllGraphPresets[gi]));
        for (std::size_t ai = 0; ai < kAllApps.size(); ++ai) {
            const auto cfg =
                predictFullDesignSpace(prof, algoProperties(kAllApps[ai]));
            EXPECT_EQ(cfg.name(), expected[gi][ai])
                << presetName(kAllGraphPresets[gi]) << " / "
                << appName(kAllApps[ai]);
        }
    }
}

TEST(PartialTree, FullSpaceDelegates)
{
    DesignSpaceRestriction r; // everything allowed
    const auto full = predictFullDesignSpace(
        profileWith(Level::Low, Level::High, Level::High),
        algoProperties(AppId::Mis));
    const auto part = predictPartialDesignSpace(
        profileWith(Level::Low, Level::High, Level::High),
        algoProperties(AppId::Mis), r);
    EXPECT_EQ(full, part);
}

TEST(PartialTree, NoRlxNeverPredictsRelaxed)
{
    DesignSpaceRestriction r;
    r.allowDrfRlx = false;
    for (AppId app : kAllApps) {
        for (Level vol : {Level::Low, Level::Medium, Level::High}) {
            for (Level reuse : {Level::Low, Level::Medium, Level::High}) {
                for (Level imb :
                     {Level::Low, Level::Medium, Level::High}) {
                    const auto cfg = predictPartialDesignSpace(
                        profileWith(vol, reuse, imb), algoProperties(app),
                        r);
                    EXPECT_NE(cfg.con, ConsistencyKind::DrfRlx);
                }
            }
        }
    }
}

TEST(PartialTree, NoDeNovoFallsBackToGpu)
{
    DesignSpaceRestriction r;
    r.allowDeNovo = false;
    const auto cfg = predictPartialDesignSpace(
        profileWith(Level::Low, Level::High, Level::High),
        algoProperties(AppId::Pr), r);
    EXPECT_EQ(cfg.coh, CoherenceKind::Gpu);
}

TEST(PartialTree, SymmetricAppNeedsHighVolumeWithoutRlx)
{
    DesignSpaceRestriction r;
    r.allowDrfRlx = false;
    // MIS (symmetric/symmetric): medium volume alone no longer justifies
    // push; the graph below has high reuse + low imbalance.
    auto cfg = predictPartialDesignSpace(
        profileWith(Level::Medium, Level::High, Level::Low),
        algoProperties(AppId::Mis), r);
    EXPECT_EQ(cfg.prop, UpdateProp::Pull);
    cfg = predictPartialDesignSpace(
        profileWith(Level::High, Level::High, Level::Low),
        algoProperties(AppId::Mis), r);
    EXPECT_EQ(cfg.prop, UpdateProp::Push);
    EXPECT_EQ(cfg.con, ConsistencyKind::Drf1);
}

TEST(PartialTree, AiSourceAcceptsMediumVolumeWithoutRlx)
{
    DesignSpaceRestriction r;
    r.allowDrfRlx = false;
    // PR hoists at the source (AI source): medium volume suffices.
    const auto cfg = predictPartialDesignSpace(
        profileWith(Level::Medium, Level::High, Level::Low),
        algoProperties(AppId::Pr), r);
    EXPECT_EQ(cfg.prop, UpdateProp::Push);
}

} // namespace
} // namespace gga
