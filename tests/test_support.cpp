/**
 * @file
 * Unit tests for the support layer: RNG determinism and distributions,
 * statistics helpers, table rendering, inline function/vector, and the
 * hot-path containers (FlatMap, ObjectPool, RingBuffer).
 */

#include <memory>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "support/flat_map.hpp"
#include "support/inline_function.hpp"
#include "support/inline_vec.hpp"
#include "support/object_pool.hpp"
#include "support/ring_buffer.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace gga {
namespace {

TEST(SplitMix64, DeterministicAndDistinct)
{
    SplitMix64 a(42), b(42), c(43);
    const auto a1 = a.next();
    EXPECT_EQ(a1, b.next());
    EXPECT_NE(a1, c.next());
    EXPECT_NE(a.next(), a1);
}

TEST(HashMix, AvalanchesAndIsStable)
{
    EXPECT_EQ(hashMix64(1234), hashMix64(1234));
    EXPECT_NE(hashMix64(1), hashMix64(2));
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Xoshiro, BoundedStaysInBounds)
{
    Xoshiro256StarStar rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Xoshiro, DoubleInUnitInterval)
{
    Xoshiro256StarStar rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Xoshiro, GaussianMoments)
{
    Xoshiro256StarStar rng(11);
    std::vector<double> samples(20000);
    for (auto& s : samples)
        s = rng.nextGaussian();
    const Summary sum = summarize(samples);
    EXPECT_NEAR(sum.mean, 0.0, 0.05);
    EXPECT_NEAR(sum.stddev, 1.0, 0.05);
}

TEST(SplitRng, CounterIsRandomAccess)
{
    // Draw i of stream (s, t) must equal draw 0 of the same stream
    // started at counter i: that is what lets parallel phases jump to
    // any position without replaying the prefix.
    SplitRng seq(42, 7);
    std::vector<std::uint64_t> draws(32);
    for (auto& d : draws)
        d = seq.next();
    for (std::uint64_t i = 0; i < draws.size(); ++i) {
        SplitRng jump(42, 7, i);
        EXPECT_EQ(jump.next(), draws[i]) << "counter " << i;
    }
}

TEST(SplitRng, StreamsAreIndependentAndReproducible)
{
    SplitRng a(42, 1);
    SplitRng a2(42, 1);
    SplitRng b(42, 2);
    SplitRng c(43, 1);
    bool differs_ab = false;
    bool differs_ac = false;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t va = a.next();
        EXPECT_EQ(va, a2.next());
        differs_ab |= va != b.next();
        differs_ac |= va != c.next();
    }
    EXPECT_TRUE(differs_ab);
    EXPECT_TRUE(differs_ac);
}

TEST(SplitRng, BoundedAndDoubleRanges)
{
    SplitRng rng(7, 0);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBounded(17), 17u);
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(SplitRng, GaussianMoments)
{
    SplitRng rng(11, 3);
    std::vector<double> samples(20000);
    for (auto& s : samples)
        s = rng.nextGaussian();
    const Summary sum = summarize(samples);
    EXPECT_NEAR(sum.mean, 0.0, 0.05);
    EXPECT_NEAR(sum.stddev, 1.0, 0.05);
}

TEST(Stats, SummaryBasics)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    const Summary s = summarize(v);
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_NEAR(s.stddev, 1.118, 1e-3);
}

TEST(Stats, SummaryEmpty)
{
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, Geomean)
{
    const std::vector<double> v{1.0, 4.0};
    EXPECT_DOUBLE_EQ(geomean(v), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
}

TEST(Stats, Percentile)
{
    const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(TextTable, AlignedTextAndCsv)
{
    TextTable t;
    t.setHeader({"a", "bee"});
    t.addRow({"1", "2"});
    t.addRow({"333"});
    const std::string text = t.toText();
    EXPECT_NE(text.find("a    bee"), std::string::npos);
    EXPECT_NE(text.find("333"), std::string::npos);
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("a,bee\n"), std::string::npos);
    EXPECT_NE(csv.find("1,2\n"), std::string::npos);
}

TEST(TextTable, CsvEscaping)
{
    TextTable t;
    t.setHeader({"x"});
    t.addRow({"has,comma"});
    t.addRow({"has\"quote"});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(FmtHelpers, Format)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtPct(0.5), "50.0%");
}

TEST(InlineFunction, CallsAndMoves)
{
    int x = 0;
    InlineFunction<void()> f([&x] { ++x; });
    f();
    EXPECT_EQ(x, 1);
    InlineFunction<void()> g = std::move(f);
    g();
    EXPECT_EQ(x, 2);
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_TRUE(static_cast<bool>(g));
}

TEST(InlineFunction, ReturnsValues)
{
    InlineFunction<int(int)> f([](int v) { return v * 2; });
    EXPECT_EQ(f(21), 42);
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    m[7] = 70;
    m[8] = 80;
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70);
    EXPECT_EQ(m.find(9), nullptr);
    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_EQ(m.size(), 1u);
    m[7] = 71; // reuses the tombstone
    EXPECT_EQ(*m.find(7), 71);
}

TEST(FlatMap, MatchesUnorderedMapUnderChurn)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Xoshiro256StarStar rng(99);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rng.nextBounded(512) * 64;
        switch (rng.nextBounded(3)) {
          case 0:
            m[key] = key + 1;
            ref[key] = key + 1;
            break;
          case 1:
            EXPECT_EQ(m.erase(key), ref.erase(key) != 0);
            break;
          default: {
            const auto it = ref.find(key);
            const std::uint64_t* v = m.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(v, nullptr);
            } else {
                ASSERT_NE(v, nullptr);
                EXPECT_EQ(*v, it->second);
            }
            break;
          }
        }
    }
    EXPECT_EQ(m.size(), ref.size());
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(64), nullptr);
}

TEST(FlatMap, HoldsMoveOnlyValues)
{
    FlatMap<std::uint32_t, std::unique_ptr<int>> m;
    m[3] = std::make_unique<int>(33);
    ASSERT_NE(m.find(3), nullptr);
    EXPECT_EQ(**m.find(3), 33);
    EXPECT_TRUE(m.erase(3));
}

TEST(ObjectPool, RecyclesStorage)
{
    struct Rec
    {
        int a;
        int b;
    };
    ObjectPool<Rec> pool;
    Rec* x = pool.create(Rec{1, 2});
    EXPECT_EQ(x->a, 1);
    pool.destroy(x);
    EXPECT_EQ(pool.live(), 0u);
    Rec* y = pool.create(Rec{3, 4});
    EXPECT_EQ(y, x); // LIFO recycling hands back the same block
    // Exhaust well past one chunk.
    std::vector<Rec*> live;
    for (int i = 0; i < 500; ++i)
        live.push_back(pool.create(Rec{i, i}));
    EXPECT_EQ(pool.live(), 501u);
    for (Rec* r : live)
        pool.destroy(r);
    pool.destroy(y);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(RingBuffer, FifoAcrossGrowth)
{
    RingBuffer<int> rb;
    EXPECT_TRUE(rb.empty());
    // Interleave pushes and pops so head wraps before growth.
    for (int i = 0; i < 10; ++i)
        rb.push_back(i);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(rb.front(), i);
        rb.pop_front();
    }
    for (int i = 0; i < 100; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rb.take_front(), i);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, MovesOutMoveOnlyElements)
{
    RingBuffer<InlineFunction<int()>> rb;
    rb.push_back([] { return 1; });
    rb.push_back([] { return 2; });
    auto f = rb.take_front();
    EXPECT_EQ(f(), 1);
    EXPECT_EQ(rb.take_front()(), 2);
}

TEST(InlineVec, PushUniqueAndOverflowGuards)
{
    InlineVec<int, 4> v;
    v.pushUnique(1);
    v.pushUnique(2);
    v.pushUnique(1);
    EXPECT_EQ(v.size(), 2u);
    EXPECT_TRUE(v.contains(2));
    EXPECT_FALSE(v.contains(3));
    v.clear();
    EXPECT_TRUE(v.empty());
}

} // namespace
} // namespace gga
