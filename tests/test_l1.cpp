/**
 * @file
 * Unit tests for the L1 controller under both coherence protocols:
 * load hits/misses, GPU write-combining and release flush, acquire
 * self-invalidation, DeNovo ownership and local atomics, recalls.
 */

#include <gtest/gtest.h>

#include "sim/dram.hpp"
#include "sim/engine.hpp"
#include "sim/l1.hpp"
#include "sim/l2.hpp"
#include "sim/noc.hpp"
#include "sim/params.hpp"

namespace gga {
namespace {

struct L1Fixture : ::testing::Test
{
    explicit L1Fixture(CoherenceKind coh = CoherenceKind::Gpu)
        : noc(params),
          dram(params),
          l2(engine, params, noc, dram),
          l1(engine, params, coh, /*sm_id=*/0, l2)
    {
        l2.setRecallHandler(
            [this](std::uint32_t, Addr line) { l1.onRecall(line); });
    }

    Cycles
    timedLoad(std::initializer_list<Addr> lines)
    {
        std::vector<Addr> v(lines);
        const Cycles start = engine.now();
        Cycles done = 0;
        l1.load(v.data(), static_cast<std::uint32_t>(v.size()),
                [this, &done] { done = engine.now(); });
        engine.run();
        return done - start;
    }

    Cycles
    timedAtomic(std::initializer_list<Addr> words)
    {
        std::vector<Addr> v(words);
        const Cycles start = engine.now();
        Cycles done = 0;
        l1.atomic(v.data(), static_cast<std::uint32_t>(v.size()),
                  [this, &done] { done = engine.now(); });
        engine.run();
        return done - start;
    }

    void
    doStore(std::initializer_list<Addr> lines)
    {
        std::vector<Addr> v(lines);
        l1.store(v.data(), static_cast<std::uint32_t>(v.size()), [] {});
        engine.run();
    }

    SimParams params;
    Engine engine;
    MeshNoc noc;
    Dram dram;
    L2System l2;
    L1Controller l1;
};

struct GpuL1 : L1Fixture
{
    GpuL1() : L1Fixture(CoherenceKind::Gpu) {}
};

struct DeNovoL1 : L1Fixture
{
    DeNovoL1() : L1Fixture(CoherenceKind::DeNovo) {}
};

TEST_F(GpuL1, LoadMissThenHit)
{
    const Cycles miss = timedLoad({0x1000});
    EXPECT_GT(miss, params.l2BankLatency);
    const Cycles hit = timedLoad({0x1000});
    EXPECT_EQ(hit, params.l1HitLatency);
    EXPECT_EQ(l1.stats().loadMisses, 1u);
    EXPECT_EQ(l1.stats().loadHits, 1u);
}

TEST_F(GpuL1, MultiLineLoadWaitsForAll)
{
    timedLoad({0x1000}); // warm one line
    const Cycles mixed = timedLoad({0x1000, 0x2000});
    EXPECT_GT(mixed, params.l1HitLatency); // the missing line dominates
}

TEST_F(GpuL1, StoresCombineAndFlushAtRelease)
{
    doStore({0x3000, 0x3040});
    EXPECT_EQ(l1.stats().stores, 1u);
    Cycles done = 0;
    l1.releaseFlush([this, &done] { done = engine.now(); });
    engine.run();
    EXPECT_EQ(l1.stats().flushedLines, 2u);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(l2.stats().writes, 2u);
    // Second release has nothing dirty to flush.
    l1.releaseFlush([] {});
    engine.run();
    EXPECT_EQ(l1.stats().flushedLines, 2u);
}

TEST_F(GpuL1, AcquireInvalidatesEverything)
{
    timedLoad({0x1000});
    l1.acquireInvalidate([] {});
    engine.run();
    EXPECT_GE(l1.stats().acquireInvalidatedLines, 1u);
    const Cycles after = timedLoad({0x1000});
    EXPECT_GT(after, params.l1HitLatency); // miss again
}

TEST_F(GpuL1, AtomicsBypassL1)
{
    timedAtomic({0x5000});
    timedAtomic({0x5000});
    EXPECT_EQ(l1.stats().l2AtomicsSent, 2u);
    EXPECT_EQ(l2.stats().atomics, 2u);
    EXPECT_EQ(l1.stats().atomicL1Hits, 0u);
    // The atomic did not populate the L1.
    const Cycles load = timedLoad({0x5000});
    EXPECT_GT(load, params.l1HitLatency);
}

TEST_F(DeNovoL1, StoreObtainsOwnership)
{
    doStore({0x6000});
    engine.run();
    EXPECT_EQ(l1.stats().ownershipRequests, 1u);
    ASSERT_TRUE(l2.ownerOf(0x6000).has_value());
    EXPECT_EQ(*l2.ownerOf(0x6000), 0u);
    // Owned line: subsequent stores are free, loads hit.
    doStore({0x6000});
    EXPECT_EQ(l1.stats().ownershipRequests, 1u);
    EXPECT_EQ(timedLoad({0x6000}), params.l1HitLatency);
}

TEST_F(DeNovoL1, AcquireKeepsOwnedLines)
{
    doStore({0x6000});
    timedLoad({0x7000});
    l1.acquireInvalidate([] {});
    engine.run();
    EXPECT_EQ(timedLoad({0x6000}), params.l1HitLatency); // still owned
    EXPECT_GT(timedLoad({0x7000}), params.l1HitLatency); // was invalidated
}

TEST_F(DeNovoL1, AtomicMissesThenHitsLocally)
{
    const Cycles first = timedAtomic({0x8000});
    EXPECT_GT(first, params.l1AtomicLatency);
    EXPECT_EQ(l1.stats().ownershipRequests, 1u);
    // The miss path re-enters the local unit once ownership lands, so the
    // first atomic already counts one local execution.
    EXPECT_EQ(l1.stats().atomicL1Hits, 1u);
    const Cycles second = timedAtomic({0x8000});
    EXPECT_EQ(l1.stats().atomicL1Hits, 2u);
    EXPECT_LE(second, 2 * (params.l1AtomicLatency +
                           params.l1AtomicServiceInterval));
    EXPECT_LT(second, first);
}

TEST_F(DeNovoL1, RecallDropsOwnershipAndReacquires)
{
    timedAtomic({0x9000});
    l1.onRecall(0x9000 & ~63ull);
    EXPECT_EQ(l1.stats().recalls, 1u);
    timedAtomic({0x9000});
    EXPECT_EQ(l1.stats().ownershipRequests, 2u);
}

TEST_F(DeNovoL1, ReleaseWaitsForPendingFills)
{
    std::vector<Addr> line{0xa000};
    l1.store(line.data(), 1, [] {});
    Cycles release_done = 0;
    l1.releaseFlush([this, &release_done] { release_done = engine.now(); });
    engine.run();
    EXPECT_EQ(l1.pendingStoreFills(), 0u);
    EXPECT_GT(release_done, 0u);
    // DeNovo flushes nothing at releases.
    EXPECT_EQ(l1.stats().flushedLines, 0u);
}

} // namespace
} // namespace gga
