/**
 * @file
 * Advisor: the workload-driven specialization model as a command-line
 * tool. Given an input graph (a preset name or a MatrixMarket file) and an
 * application, it prints the taxonomy profile, the decision trace through
 * the Fig. 4 tree, and the recommended configuration — including under a
 * restricted design space (hardware without DRFrlx and/or DeNovo).
 *
 * Usage: example_advisor [GRAPH] [APP]
 *   GRAPH: AMZ|DCT|EML|OLS|RAJ|WNG or a path to a .mtx file (default RAJ)
 *   APP:   PR|SSSP|MIS|CLR|BC|CC (default PR)
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "model/partial_tree.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "taxonomy/profile.hpp"

namespace {

std::shared_ptr<const gga::CsrGraph>
loadGraph(gga::Session& session, const std::string& name)
{
    for (gga::GraphPreset p : gga::kAllGraphPresets) {
        if (gga::presetName(p) == name)
            return session.graphs().get(p);
    }
    // MatrixMarket inputs resolve through the session's GraphStore like
    // presets do: cached by path, shared across concurrent users, and
    // usable in RunPlans (RunPlan::graphFile) and work units.
    std::cout << "loading MatrixMarket file " << name << "\n";
    return session.graphs().getFile(name);
}

} // namespace

int
main(int argc, char** argv)
{
    gga::setVerbose(false);
    gga::Session session;
    const std::string graph_name = argc > 1 ? argv[1] : "RAJ";
    const std::string app_name = argc > 2 ? argv[2] : "PR";
    const gga::AppRegistry::Entry* entry =
        session.registry().findByName(app_name);
    if (!entry)
        GGA_FATAL("unknown app '", app_name, "'");

    const auto graph_ptr = loadGraph(session, graph_name);
    const gga::CsrGraph& graph = *graph_ptr;
    const gga::TaxonomyProfile profile = gga::profileGraph(graph);
    const gga::AlgoProperties& props = entry->properties;

    std::cout << "=== workload: " << entry->name << " on "
              << graph_name << " (|V|=" << graph.numVertices()
              << ", |E|=" << graph.numEdges() << ") ===\n\n";

    gga::TextTable tax;
    tax.setHeader({"Metric", "Value", "Class"});
    tax.addRow({"Volume (KB/SM)", gga::fmtDouble(profile.volumeKb, 3),
                std::string(1, gga::levelChar(profile.volume))});
    tax.addRow({"ANL", gga::fmtDouble(profile.anl, 3), ""});
    tax.addRow({"ANR", gga::fmtDouble(profile.anr, 3), ""});
    tax.addRow({"Reuse", gga::fmtDouble(profile.reuse, 3),
                std::string(1, gga::levelChar(profile.reuseLevel))});
    tax.addRow({"Imbalance", gga::fmtDouble(profile.imbalance, 3),
                std::string(1, gga::levelChar(profile.imbalanceLevel))});
    std::cout << tax.toText() << "\n";

    std::cout << "algorithm: traversal=" << gga::traversalLabel(props.traversal)
              << " control=" << gga::preferenceLabel(props.control)
              << " information=" << gga::preferenceLabel(props.information)
              << "\n\n";

    std::vector<std::string> trace;
    const gga::SystemConfig full =
        gga::predictFullDesignSpace(profile, props, &trace);
    std::cout << "full design space decision trace:\n";
    for (const std::string& line : trace)
        std::cout << "  - " << line << "\n";
    std::cout << "=> recommended configuration: " << full.name() << " ("
              << gga::propLabel(full.prop) << " / " << gga::cohLabel(full.coh)
              << " / " << gga::conLabel(full.con) << ")\n\n";

    // Restricted hardware variants (paper Sec. IV-B).
    struct Restriction
    {
        const char* label;
        bool allowRlx;
        bool allowDeNovo;
    };
    for (const Restriction& rst :
         {Restriction{"no DRFrlx", false, true},
          Restriction{"no DeNovo", true, false},
          Restriction{"GPU-coherence DRF1 hardware", false, false}}) {
        gga::DesignSpaceRestriction r;
        r.allowDrfRlx = rst.allowRlx;
        r.allowDeNovo = rst.allowDeNovo;
        trace.clear();
        const gga::SystemConfig part =
            gga::predictPartialDesignSpace(profile, props, r, &trace);
        std::cout << "restricted (" << rst.label << "): " << part.name()
                  << "\n";
    }
    return 0;
}
