/**
 * @file
 * Example: sweep one workload (application + input graph) across the full
 * hardware/software design space and print the execution-time breakdown
 * of every configuration, normalized to the baseline (TG0, or DG1 for CC)
 * — one workload's worth of the paper's Figure 5.
 *
 * The whole space is enumerated as a work-unit Manifest and executed on
 * the session executor (eval runManifest) — the same serializable units
 * the gga_worker/gga_merge sharded pipeline runs, so the table is
 * identical to a serial run() loop at any thread count (and to any
 * sharding of the same manifest).
 *
 * Usage: example_design_space_sweep [APP] [GRAPH] [scale] [threads]
 *   APP     in {PR, SSSP, MIS, CLR, BC, CC}    (default PR)
 *   GRAPH   in {AMZ, DCT, EML, OLS, RAJ, WNG}  (default RAJ)
 *   scale   in (0, 1]: graph size multiplier    (default 0.25)
 *   threads: executor width                     (default
 *            GGA_SESSION_THREADS, then 1)
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "eval/run.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace {

gga::GraphPreset
parsePreset(const std::string& name)
{
    for (gga::GraphPreset p : gga::kAllGraphPresets) {
        if (gga::presetName(p) == name)
            return p;
    }
    GGA_FATAL("unknown graph '", name, "'");
}

} // namespace

int
main(int argc, char** argv)
{
    gga::setVerbose(false);
    gga::SessionOptions opts;
    if (argc > 4)
        opts.threads = static_cast<unsigned>(
            std::clamp<long>(std::atol(argv[4]), 1, 256));
    gga::Session session(opts);
    const std::string app_name = argc > 1 ? argv[1] : "PR";
    const gga::AppRegistry::Entry* entry =
        session.registry().findByName(app_name);
    if (!entry)
        GGA_FATAL("unknown app '", app_name, "'");
    const gga::GraphPreset preset =
        parsePreset(argc > 2 ? argv[2] : "RAJ");
    const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;

    const auto graph = session.graphs().get(preset, scale);
    std::cout << "workload: " << entry->name << " on "
              << gga::presetName(preset) << " x" << scale << "  (|V|="
              << graph->numVertices() << ", |E|=" << graph->numEdges()
              << ")\n\n";

    // The registry's valid-config predicate filters the raw design points
    // down to this app's space (12 static / 6 dynamic).
    std::vector<gga::SystemConfig> candidates = gga::allConfigs(false);
    for (const gga::SystemConfig& c : gga::allConfigs(true))
        candidates.push_back(c);
    const auto configs =
        session.registry().validConfigs(entry->id, candidates);

    // One work unit per design point, all in flight on the session
    // executor.
    gga::Manifest manifest;
    for (const gga::SystemConfig& cfg : configs) {
        gga::WorkUnit unit;
        unit.app = entry->id;
        unit.preset = preset;
        unit.scale = scale;
        unit.config = cfg;
        manifest.add(std::move(unit));
    }
    const gga::ResultSet results = gga::runManifest(session, manifest);

    gga::TextTable table;
    table.setHeader({"Config", "Cycles", "Norm", "Busy", "Comp", "Data",
                     "Sync", "Idle", "Kernels"});
    double baseline = 0.0;
    for (std::size_t i = 0; i < manifest.size(); ++i) {
        const gga::SystemConfig& cfg = configs[i];
        const gga::RunResult& r =
            results.at(manifest.units()[i].key()).run;
        if (baseline == 0.0)
            baseline = static_cast<double>(r.cycles);
        const double total = r.breakdown.total();
        table.addRow({cfg.name(), std::to_string(r.cycles),
                      gga::fmtDouble(r.cycles / baseline, 3),
                      gga::fmtPct(r.breakdown.busy / total),
                      gga::fmtPct(r.breakdown.comp / total),
                      gga::fmtPct(r.breakdown.data / total),
                      gga::fmtPct(r.breakdown.sync / total),
                      gga::fmtPct(r.breakdown.idle / total),
                      std::to_string(r.kernels)});
    }
    std::cout << table.toText();
    return 0;
}
