/**
 * @file
 * Example: sweep one workload (application + input graph) across the full
 * hardware/software design space and print the execution-time breakdown
 * of every configuration, normalized to the baseline (TG0, or DG1 for CC)
 * — one workload's worth of the paper's Figure 5.
 *
 * Usage: example_design_space_sweep [APP] [GRAPH] [scale]
 *   APP   in {PR, SSSP, MIS, CLR, BC, CC}      (default PR)
 *   GRAPH in {AMZ, DCT, EML, OLS, RAJ, WNG}    (default RAJ)
 *   scale in (0, 1]: graph size multiplier      (default 0.25)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/runner.hpp"
#include "graph/presets.hpp"
#include "model/algo_props.hpp"
#include "model/config.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace {

gga::AppId
parseApp(const std::string& name)
{
    for (gga::AppId a : gga::kAllApps) {
        if (gga::appName(a) == name)
            return a;
    }
    GGA_FATAL("unknown app '", name, "'");
}

gga::GraphPreset
parsePreset(const std::string& name)
{
    for (gga::GraphPreset p : gga::kAllGraphPresets) {
        if (gga::presetName(p) == name)
            return p;
    }
    GGA_FATAL("unknown graph '", name, "'");
}

} // namespace

int
main(int argc, char** argv)
{
    const gga::AppId app = parseApp(argc > 1 ? argv[1] : "PR");
    const gga::GraphPreset preset =
        parsePreset(argc > 2 ? argv[2] : "RAJ");
    const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;

    gga::setVerbose(false);
    const gga::CsrGraph graph = gga::buildPresetScaled(preset, scale);
    std::cout << "workload: " << gga::appName(app) << " on "
              << gga::presetName(preset) << " x" << scale << "  (|V|="
              << graph.numVertices() << ", |E|=" << graph.numEdges()
              << ")\n\n";

    const bool dynamic = gga::algoProperties(app).traversal ==
                         gga::TraversalKind::Dynamic;
    const auto configs = gga::allConfigs(dynamic);

    gga::TextTable table;
    table.setHeader({"Config", "Cycles", "Norm", "Busy", "Comp", "Data",
                     "Sync", "Idle", "Kernels"});
    double baseline = 0.0;
    for (const gga::SystemConfig& cfg : configs) {
        const gga::RunResult r =
            gga::runWorkload(app, graph, cfg, gga::SimParams{});
        if (baseline == 0.0)
            baseline = static_cast<double>(r.cycles);
        const double total = r.breakdown.total();
        table.addRow({cfg.name(), std::to_string(r.cycles),
                      gga::fmtDouble(r.cycles / baseline, 3),
                      gga::fmtPct(r.breakdown.busy / total),
                      gga::fmtPct(r.breakdown.comp / total),
                      gga::fmtPct(r.breakdown.data / total),
                      gga::fmtPct(r.breakdown.sync / total),
                      gga::fmtPct(r.breakdown.idle / total),
                      std::to_string(r.kernels)});
    }
    std::cout << table.toText();
    return 0;
}
