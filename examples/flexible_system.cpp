/**
 * @file
 * Flexible-system demo: the paper's headline motivation is hardware with
 * *flexible* coherence/consistency (e.g. Spandex) that reconfigures per
 * workload. This example contrasts three machines over a mixed workload
 * suite, all driven through the Plan/Session API:
 *
 *   fixed-SGR   — one-size-fits-all (best single static configuration)
 *   fixed-TG0   — conservative pull baseline
 *   flexible    — reconfigures per workload using the specialization model
 *
 * Usage: example_flexible_system [scale]   (default 0.25)
 */

#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "api/session.hpp"
#include "model/decision_tree.hpp"
#include "support/log.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "taxonomy/profile.hpp"

int
main(int argc, char** argv)
{
    gga::setVerbose(false);
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;

    gga::SessionOptions opts;
    opts.scale = scale;
    opts.collectOutputs = false; // timing study only
    gga::Session session(opts);

    // A mixed suite: one balanced-local input, one imbalanced-local, one
    // scattered power-law — with apps of differing control/information.
    const std::vector<std::pair<gga::AppId, gga::GraphPreset>> suite = {
        {gga::AppId::Pr, gga::GraphPreset::Ols},
        {gga::AppId::Mis, gga::GraphPreset::Raj},
        {gga::AppId::Sssp, gga::GraphPreset::Eml},
        {gga::AppId::Clr, gga::GraphPreset::Dct},
    };

    gga::TextTable table;
    table.setHeader({"Workload", "FixedTG0", "FixedSGR", "Flexible",
                     "FlexConfig", "FlexVsSGR"});

    std::vector<double> tg0_norm, sgr_norm, flex_norm;
    for (const auto& [app, preset] : suite) {
        const auto graph = session.graphs().get(preset, scale);
        const gga::TaxonomyProfile profile = gga::profileGraph(*graph);
        const gga::SystemConfig chosen = gga::predictFullDesignSpace(
            profile, session.registry().at(app).properties);

        const gga::RunPlan base = gga::RunPlan{}.app(app).graph(preset);
        const auto tg0 = session.run(gga::RunPlan(base).config("TG0"));
        const auto sgr = session.run(gga::RunPlan(base).config("SGR"));
        const auto flex = session.run(gga::RunPlan(base).config(chosen));

        const double baseline = static_cast<double>(tg0.result.cycles);
        tg0_norm.push_back(1.0);
        sgr_norm.push_back(sgr.result.cycles / baseline);
        flex_norm.push_back(flex.result.cycles / baseline);

        table.addRow({tg0.appName + "-" + tg0.graphName,
                      std::to_string(tg0.result.cycles),
                      std::to_string(sgr.result.cycles),
                      std::to_string(flex.result.cycles), chosen.name(),
                      gga::fmtDouble(double(sgr.result.cycles) /
                                         flex.result.cycles, 2) +
                          "x"});
    }

    std::cout << "Flexible coherence/consistency (Spandex-style) vs fixed "
                 "configurations\n(scale=" << scale << ")\n\n";
    std::cout << table.toText();
    std::cout << "\ngeomean normalized time (lower is better): TG0="
              << gga::fmtDouble(gga::geomean(tg0_norm), 3)
              << " SGR=" << gga::fmtDouble(gga::geomean(sgr_norm), 3)
              << " flexible=" << gga::fmtDouble(gga::geomean(flex_norm), 3)
              << "\n";
    return 0;
}
