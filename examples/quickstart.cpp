/**
 * @file
 * Quickstart: generate a graph, profile it with the taxonomy, ask the
 * specialization model for the best configuration, and run the workload
 * on the simulator — the complete public-API round trip in ~60 lines.
 */

#include <iostream>

#include "apps/runner.hpp"
#include "graph/presets.hpp"
#include "model/decision_tree.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "taxonomy/profile.hpp"

int
main()
{
    gga::setVerbose(false);

    // 1. An input graph: the RAJ-like preset (circuit: heavy-tailed
    //    degrees, high intra-thread-block locality), scaled down so the
    //    quickstart finishes in seconds.
    const gga::CsrGraph graph =
        gga::buildPresetScaled(gga::GraphPreset::Raj, 0.25);
    std::cout << "graph: |V|=" << graph.numVertices()
              << " |E|=" << graph.numEdges() << "\n";

    // 2. Profile its structure (paper Sec. III-A).
    const gga::TaxonomyProfile profile = gga::profileGraph(graph);
    std::cout << "taxonomy: volume=" << gga::fmtDouble(profile.volumeKb, 1)
              << "KB(" << gga::levelChar(profile.volume) << ")"
              << " reuse=" << gga::fmtDouble(profile.reuse, 3) << "("
              << gga::levelChar(profile.reuseLevel) << ")"
              << " imbalance=" << gga::fmtDouble(profile.imbalance, 3)
              << "(" << gga::levelChar(profile.imbalanceLevel) << ")\n";

    // 3. Ask the model for the best configuration for PageRank on it.
    const gga::AppId app = gga::AppId::Pr;
    const gga::SystemConfig predicted =
        gga::predictFullDesignSpace(profile, gga::algoProperties(app));
    std::cout << "model prediction for " << gga::appName(app) << ": "
              << predicted.name() << " (" << gga::propLabel(predicted.prop)
              << " / " << gga::cohLabel(predicted.coh) << " / "
              << gga::conLabel(predicted.con) << ")\n";

    // 4. Run it, and a baseline, on the simulated CPU-GPU system.
    const gga::RunResult pred_run =
        gga::runWorkload(app, graph, predicted);
    const gga::RunResult base_run =
        gga::runWorkload(app, graph, gga::parseConfig("TG0"));

    std::cout << "predicted config:  " << pred_run.cycles << " cycles ("
              << gga::describeBreakdown(pred_run.breakdown) << ")\n";
    std::cout << "baseline TG0:      " << base_run.cycles << " cycles ("
              << gga::describeBreakdown(base_run.breakdown) << ")\n";
    std::cout << "speedup over TG0:  "
              << gga::fmtDouble(double(base_run.cycles) / pred_run.cycles, 2)
              << "x\n";
    return 0;
}
