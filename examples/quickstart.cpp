/**
 * @file
 * Quickstart: profile a graph with the taxonomy, ask the specialization
 * model for the best configuration, and run the workload through the
 * Plan/Session API — the complete public-API round trip in ~60 lines.
 */

#include <iostream>

#include "api/session.hpp"
#include "model/decision_tree.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "taxonomy/profile.hpp"

int
main()
{
    gga::setVerbose(false);

    // 1. A session scoped to quarter-scale inputs so the quickstart
    //    finishes in seconds; graphs are built once and cached in the
    //    thread-safe GraphStore.
    gga::SessionOptions opts;
    opts.scale = 0.25;
    gga::Session session(opts);

    // 2. The input: the RAJ-like preset (circuit: heavy-tailed degrees,
    //    high intra-thread-block locality).
    const auto graph = session.graphs().get(gga::GraphPreset::Raj, 0.25);
    std::cout << "graph: |V|=" << graph->numVertices()
              << " |E|=" << graph->numEdges() << "\n";

    // 3. Profile its structure (paper Sec. III-A) and ask the model for
    //    the best configuration for PageRank on it.
    const gga::TaxonomyProfile profile = gga::profileGraph(*graph);
    std::cout << "taxonomy: volume=" << gga::fmtDouble(profile.volumeKb, 1)
              << "KB(" << gga::levelChar(profile.volume) << ")"
              << " reuse=" << gga::fmtDouble(profile.reuse, 3) << "("
              << gga::levelChar(profile.reuseLevel) << ")"
              << " imbalance=" << gga::fmtDouble(profile.imbalance, 3)
              << "(" << gga::levelChar(profile.imbalanceLevel) << ")\n";

    const gga::AppId app = gga::AppId::Pr;
    const gga::SystemConfig predicted = gga::predictFullDesignSpace(
        profile, session.registry().at(app).properties);
    std::cout << "model prediction for " << session.registry().at(app).name
              << ": " << predicted.name() << " ("
              << gga::propLabel(predicted.prop) << " / "
              << gga::cohLabel(predicted.coh) << " / "
              << gga::conLabel(predicted.con) << ")\n";

    // 4. Run the prediction, and a baseline, on the simulated system.
    const gga::RunOutcome pred_run = session.run(gga::RunPlan{}
                                                     .app(app)
                                                     .graph(gga::GraphPreset::Raj)
                                                     .config(predicted));
    const gga::RunOutcome base_run = session.run(
        gga::RunPlan{}.app(app).graph(gga::GraphPreset::Raj).config("TG0"));

    std::cout << "predicted config:  " << pred_run.result.cycles
              << " cycles ("
              << gga::describeBreakdown(pred_run.result.breakdown) << ")\n";
    std::cout << "baseline TG0:      " << base_run.result.cycles
              << " cycles ("
              << gga::describeBreakdown(base_run.result.breakdown) << ")\n";
    std::cout << "speedup over TG0:  "
              << gga::fmtDouble(double(base_run.result.cycles) /
                                    pred_run.result.cycles, 2)
              << "x\n";

    // 5. Typed functional outputs: both runs computed the same ranks.
    const gga::PrOutput* ranks = pred_run.pr();
    double sum = 0.0;
    for (float r : ranks->ranks)
        sum += r;
    std::cout << "pagerank mass (should be ~1): " << gga::fmtDouble(sum, 4)
              << " over " << ranks->ranks.size() << " vertices\n";
    return 0;
}
