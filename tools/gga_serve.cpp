/**
 * @file
 * gga_serve: the resident analytics service. Accepts RunPlans and eval
 * manifests over HTTP (see src/serve/server.hpp for the endpoint
 * schema), executes them on an in-process Session executor or fans them
 * out to connected gga_worker --connect processes, and serves status,
 * streamed results, rendered figure tables, and /stats telemetry.
 *
 * Usage: gga_serve [--port P] [--port-file FILE] [--threads T]
 *                  [--pin-threads]
 *                  [--max-queued-per-tenant N] [--lease-ms MS]
 *                  [--retry-base-ms MS] [--retry-cap-ms MS]
 *                  [--max-attempts N] [--tick-ms MS] [--state-dir DIR]
 *                  [--worker-token T] [--rate-per-tenant N]
 *                  [--io-timeout-ms MS] [--drain-ms MS]
 *                  [--graph-budget-mb M] [--graph-cache DIR] [--verbose]
 *   --port       listen port on 127.0.0.1; 0 picks an ephemeral port
 *                (default 7421)
 *   --port-file  write the bound port to FILE once listening — the
 *                rendezvous for scripts that start with --port 0
 *   --threads    local-job executor width; default GGA_SESSION_THREADS
 *   --pin-threads  pin executor worker i to CPU i mod cores (Linux);
 *                default GGA_PIN_THREADS
 *   --max-queued-per-tenant  admission bound (HTTP 429 past it)
 *   --lease-ms / --retry-base-ms / --retry-cap-ms / --max-attempts
 *                remote-shard lease and capped-exponential-retry policy
 *   --tick-ms    lease expiry scan period
 *   --state-dir  durable job journal; on restart unfinished jobs resume
 *                and completed remote shards are never re-executed
 *   --worker-token  shared secret the worker endpoints require
 *                (X-GGA-Worker-Token header), else 401
 *   --rate-per-tenant  sustained POST /v1/jobs rate per tenant
 *                (jobs/sec; 0 = unlimited) -> 429 + Retry-After past it
 *   --io-timeout-ms  per-connection socket read deadline (slow-loris
 *                defense; 0 = none; default 30000)
 *   --drain-ms   how long shutdown waits for in-flight requests
 *   --graph-budget-mb / --graph-cache  as in gga_worker
 *
 * Runs until SIGINT/SIGTERM, then drains and exits 0. Deterministic
 * fault injection for tests: set GGA_FAULTS (see src/support/faults.hpp).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "support/json.hpp"
#include "support/log.hpp"

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

/** Strict non-negative integer argument parse; fatal on garbage. */
unsigned long
parseCount(const char* flag, const char* text)
{
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || text[0] == '-')
        GGA_FATAL(flag, " wants a non-negative integer, got '", text, "'");
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    gga::ServiceOptions opts;
    std::string port_file;
    std::size_t budget_mb = 0;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
            opts.port = static_cast<std::uint16_t>(
                parseCount("--port", argv[++i]));
        } else if (!std::strcmp(argv[i], "--port-file") && i + 1 < argc) {
            port_file = argv[++i];
        } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            opts.session.threads = static_cast<unsigned>(
                parseCount("--threads", argv[++i]));
        } else if (!std::strcmp(argv[i], "--pin-threads")) {
            opts.session.pinThreads = true;
        } else if (!std::strcmp(argv[i], "--max-queued-per-tenant") &&
                   i + 1 < argc) {
            opts.maxQueuedPerTenant = static_cast<std::size_t>(
                parseCount("--max-queued-per-tenant", argv[++i]));
            if (opts.maxQueuedPerTenant == 0)
                GGA_FATAL("--max-queued-per-tenant must be at least 1");
        } else if (!std::strcmp(argv[i], "--lease-ms") && i + 1 < argc) {
            opts.retry.leaseMs = static_cast<unsigned>(
                parseCount("--lease-ms", argv[++i]));
        } else if (!std::strcmp(argv[i], "--retry-base-ms") &&
                   i + 1 < argc) {
            opts.retry.retryBaseMs = static_cast<unsigned>(
                parseCount("--retry-base-ms", argv[++i]));
        } else if (!std::strcmp(argv[i], "--retry-cap-ms") &&
                   i + 1 < argc) {
            opts.retry.retryCapMs = static_cast<unsigned>(
                parseCount("--retry-cap-ms", argv[++i]));
        } else if (!std::strcmp(argv[i], "--max-attempts") &&
                   i + 1 < argc) {
            opts.retry.maxAttempts = static_cast<unsigned>(
                parseCount("--max-attempts", argv[++i]));
            if (opts.retry.maxAttempts == 0)
                GGA_FATAL("--max-attempts must be at least 1");
        } else if (!std::strcmp(argv[i], "--tick-ms") && i + 1 < argc) {
            opts.tickMs = static_cast<unsigned>(
                parseCount("--tick-ms", argv[++i]));
            if (opts.tickMs == 0)
                GGA_FATAL("--tick-ms must be at least 1");
        } else if (!std::strcmp(argv[i], "--state-dir") && i + 1 < argc) {
            opts.stateDir = argv[++i];
        } else if (!std::strcmp(argv[i], "--worker-token") &&
                   i + 1 < argc) {
            opts.workerToken = argv[++i];
        } else if (!std::strcmp(argv[i], "--rate-per-tenant") &&
                   i + 1 < argc) {
            const char* text = argv[++i];
            char* end = nullptr;
            opts.ratePerTenant = std::strtod(text, &end);
            if (end == text || *end != '\0' || opts.ratePerTenant < 0)
                GGA_FATAL("--rate-per-tenant wants a non-negative "
                          "number, got '",
                          text, "'");
        } else if (!std::strcmp(argv[i], "--io-timeout-ms") &&
                   i + 1 < argc) {
            opts.ioTimeoutMs = static_cast<unsigned>(
                parseCount("--io-timeout-ms", argv[++i]));
        } else if (!std::strcmp(argv[i], "--drain-ms") && i + 1 < argc) {
            opts.drainMs = static_cast<unsigned>(
                parseCount("--drain-ms", argv[++i]));
        } else if (!std::strcmp(argv[i], "--graph-budget-mb") &&
                   i + 1 < argc) {
            budget_mb = static_cast<std::size_t>(
                parseCount("--graph-budget-mb", argv[++i]));
        } else if (!std::strcmp(argv[i], "--graph-cache") && i + 1 < argc) {
            opts.session.graphCacheDir = argv[++i];
        } else if (!std::strcmp(argv[i], "--verbose")) {
            verbose = true;
        } else {
            GGA_FATAL("unknown argument '", argv[i],
                      "'; usage: gga_serve [--port P] [--port-file FILE] "
                      "[--threads T] [--pin-threads] "
                      "[--max-queued-per-tenant N] "
                      "[--lease-ms MS] [--retry-base-ms MS] "
                      "[--retry-cap-ms MS] [--max-attempts N] "
                      "[--tick-ms MS] [--state-dir DIR] "
                      "[--worker-token T] [--rate-per-tenant N] "
                      "[--io-timeout-ms MS] [--drain-ms MS] "
                      "[--graph-budget-mb M] "
                      "[--graph-cache DIR] [--verbose]");
        }
    }
    gga::setVerbose(verbose);
    opts.session.graphBudgetBytes = budget_mb * 1024 * 1024;
    // A resident service wants progress lines even when unit-level
    // verbosity is off; GGA_INFORM is gated on setVerbose, so leave the
    // startup line to std::cout below.

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    try {
        gga::Service service(opts);
        service.start();
        std::cout << "gga_serve listening on 127.0.0.1:" << service.port()
                  << " (" << service.session().threads()
                  << " executor threads)" << std::endl;
        if (!port_file.empty())
            gga::writeTextFile(port_file,
                               std::to_string(service.port()) + "\n");
        while (!g_stop.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        std::cout << "gga_serve: shutting down" << std::endl;
        service.stop();
    } catch (const std::exception& err) {
        GGA_FATAL(err.what());
    }
    return 0;
}
