/**
 * @file
 * gga_loadgen: closed-loop HTTP load generator for a live gga_serve.
 *
 * Drives a configurable mix of interactive clients (single-RunPlan jobs,
 * one in flight each) and batch clients (multi-unit manifest jobs)
 * against POST /v1/jobs + the long-poll status endpoint, and reports
 * served jobs/sec plus p50/p95/p99 end-to-end job latency per lane.
 *
 * Two phases run back to back over the same server:
 *
 *   fifo   every job is submitted at batch priority — one lane, so the
 *          small interactive jobs head-of-line-block behind manifest
 *          backlogs. This is the reproducible stand-in for the old
 *          single-FIFO executor.
 *   lanes  interactive jobs ride the interactive lane (the default for
 *          plan jobs); batch manifests stay on the batch lane.
 *
 * The JSON report (scripts/bench.sh serve -> BENCH_serve.json) carries
 * both phases, the /stats executor snapshot after each, and
 * interactive_p99_improvement = fifo p99 / lanes p99 — the number the
 * serve-load CI job and the PR-tracked trajectory gate on.
 *
 * Usage: gga_loadgen --port P [--duration-s D] [--interactive N]
 *                    [--batch M] [--batch-units K] [--scale S]
 *                    [--batch-scale S] [--json OUT]
 *
 * Transport is the same one-shot httpRequest the worker client uses —
 * plain POSIX sockets, Connection: close, loopback only.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "eval/manifest.hpp"
#include "eval/work_unit.hpp"
#include "model/config.hpp"
#include "serve/http.hpp"
#include "support/json.hpp"
#include "support/log.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/** Strict non-negative integer argument parse; fatal on garbage. */
unsigned long
parseCount(const char* flag, const char* text)
{
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || text[0] == '-')
        GGA_FATAL(flag, " wants a non-negative integer, got '", text, "'");
    return v;
}

double
parseScale(const char* flag, const char* text)
{
    char* end = nullptr;
    const double s = std::strtod(text, &end);
    if (end == text || *end != '\0' || s <= 0.0 || s > 1.0)
        GGA_FATAL(flag, " wants a scale in (0, 1], got '", text, "'");
    return s;
}

struct Options
{
    std::uint16_t port = 0;
    double durationS = 10;
    unsigned interactiveClients = 4;
    unsigned batchClients = 2;
    unsigned batchUnits = 12;
    double scale = 0.05;      ///< interactive plan input scale
    double batchScale = 0.1;  ///< batch manifest input scale
    std::string jsonOut;
};

/** One client's closed-loop tally. */
struct ClientLog
{
    std::vector<double> latenciesMs;
    std::uint64_t errors = 0;
};

/** The interactive unit: PR on the small dictionary preset. */
gga::WorkUnit
interactiveUnit(double scale)
{
    gga::WorkUnit u;
    u.app = gga::AppId::Pr;
    u.preset = gga::GraphPreset::Dct;
    u.scale = scale;
    u.config = *gga::tryParseConfig("SG1");
    return u;
}

/** A batch manifest: K PR units on the larger RAJ preset, keys made
 *  distinct by seed (PR ignores the seed, so the work is uniform). */
gga::Manifest
batchManifest(unsigned units, double scale, std::uint64_t iteration)
{
    gga::Manifest m;
    for (unsigned i = 0; i < units; ++i) {
        gga::WorkUnit u;
        u.app = gga::AppId::Pr;
        u.preset = gga::GraphPreset::Raj;
        u.scale = scale;
        u.config = *gga::tryParseConfig("SG1");
        u.seed = iteration * units + i + 1;
        m.add(u);
    }
    return m;
}

/**
 * Submit one job and long-poll it to a terminal state. Returns whether
 * the job finished done (latency recorded by the caller).
 */
bool
runJob(std::uint16_t port, const std::string& body)
{
    gga::HttpResponse r = gga::httpRequest(port, "POST", "/v1/jobs", body);
    if (r.status == 429) {
        // Over an admission or rate bound: back off briefly, not an error.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return false;
    }
    if (r.status != 202)
        throw gga::ServeError("submit failed: HTTP " +
                              std::to_string(r.status) + " " + r.body);
    gga::Json snap = gga::Json::parse(r.body);
    const std::string id = snap.find("id")->asString();
    std::uint64_t version = snap.find("version")->asU64();
    for (;;) {
        const std::string state = snap.find("state")->asString();
        if (state == "done")
            return true;
        if (state == "failed" || state == "canceled")
            throw gga::ServeError("job " + id + " ended " + state);
        gga::HttpResponse poll = gga::httpRequest(
            port, "GET",
            "/v1/jobs/" + id + "?wait_ms=5000&since=" +
                std::to_string(version));
        if (poll.status != 200)
            throw gga::ServeError("poll failed: HTTP " +
                                  std::to_string(poll.status));
        snap = gga::Json::parse(poll.body);
        version = snap.find("version")->asU64();
    }
}

void
clientLoop(std::uint16_t port, const std::string& tenant, bool interactive,
           const Options& opt, const std::string& priority,
           Clock::time_point deadline, ClientLog* log)
{
    std::uint64_t iteration = 0;
    const gga::Json planJson = interactiveUnit(opt.scale).toJson();
    while (Clock::now() < deadline) {
        gga::Json body = gga::Json::object();
        if (interactive) {
            body.set("plan", gga::Json::parse(planJson.dump()));
        } else {
            body.set("manifest", batchManifest(opt.batchUnits,
                                               opt.batchScale,
                                               iteration)
                                     .toJson());
        }
        body.set("tenant", gga::Json(tenant));
        body.set("priority", gga::Json(priority));
        ++iteration;
        const auto t0 = Clock::now();
        try {
            if (runJob(port, body.dump()))
                log->latenciesMs.push_back(
                    std::chrono::duration<double, std::milli>(Clock::now() -
                                                              t0)
                        .count());
        } catch (const gga::ServeError& err) {
            ++log->errors;
            GGA_WARN("loadgen ", tenant, ": ", err.what());
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0;
    const auto n = static_cast<double>(sorted.size());
    const auto idx = static_cast<std::size_t>(
        std::min(n - 1, std::max(0.0, std::ceil(q * n) - 1)));
    return sorted[idx];
}

gga::Json
laneJson(const std::vector<ClientLog>& logs)
{
    std::vector<double> all;
    std::uint64_t errors = 0;
    for (const ClientLog& log : logs) {
        all.insert(all.end(), log.latenciesMs.begin(),
                   log.latenciesMs.end());
        errors += log.errors;
    }
    std::sort(all.begin(), all.end());
    gga::Json j = gga::Json::object();
    j.set("jobs", gga::Json(static_cast<std::uint64_t>(all.size())));
    j.set("errors", gga::Json(errors));
    j.set("p50_ms", gga::Json(percentile(all, 0.50)));
    j.set("p95_ms", gga::Json(percentile(all, 0.95)));
    j.set("p99_ms", gga::Json(percentile(all, 0.99)));
    j.set("max_ms", gga::Json(all.empty() ? 0.0 : all.back()));
    return j;
}

struct PhaseResult
{
    gga::Json json = gga::Json::object();
    double interactiveP99 = 0;
    double batchP99 = 0;
};

/** Run one closed-loop phase; @p interactivePriority is the lane the
 *  small plan jobs ask for ("batch" reproduces the single-FIFO world). */
PhaseResult
runPhase(const Options& opt, const std::string& name,
         const std::string& interactivePriority)
{
    std::vector<ClientLog> interactiveLogs(opt.interactiveClients);
    std::vector<ClientLog> batchLogs(opt.batchClients);
    std::vector<std::thread> clients;
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(opt.durationS));
    for (unsigned i = 0; i < opt.interactiveClients; ++i)
        clients.emplace_back([&, i] {
            clientLoop(opt.port, "lg-" + name + "-i" + std::to_string(i),
                       true, opt, interactivePriority, deadline,
                       &interactiveLogs[i]);
        });
    for (unsigned i = 0; i < opt.batchClients; ++i)
        clients.emplace_back([&, i] {
            clientLoop(opt.port, "lg-" + name + "-b" + std::to_string(i),
                       false, opt, "batch", deadline, &batchLogs[i]);
        });
    for (std::thread& t : clients)
        t.join();
    const double elapsedS =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::uint64_t jobs = 0;
    for (const ClientLog& log : interactiveLogs)
        jobs += log.latenciesMs.size();
    for (const ClientLog& log : batchLogs)
        jobs += log.latenciesMs.size();

    PhaseResult out;
    gga::Json lanes = gga::Json::object();
    gga::Json inter = laneJson(interactiveLogs);
    gga::Json batch = laneJson(batchLogs);
    out.interactiveP99 = inter.find("p99_ms")->asDouble();
    out.batchP99 = batch.find("p99_ms")->asDouble();
    lanes.set("interactive", std::move(inter));
    lanes.set("batch", std::move(batch));
    out.json.set("elapsed_s", gga::Json(elapsedS));
    out.json.set("jobs_per_sec",
                 gga::Json(elapsedS > 0 ? static_cast<double>(jobs) /
                                              elapsedS
                                        : 0.0));
    out.json.set("lanes", std::move(lanes));

    // The executor's view after the phase (steal counters are cumulative
    // across phases — the serve-load gate only needs "> 0").
    gga::HttpResponse stats =
        gga::httpRequest(opt.port, "GET", "/stats");
    if (stats.status == 200) {
        const gga::Json parsed = gga::Json::parse(stats.body);
        if (const gga::Json* exec = parsed.find("executor"))
            out.json.set("executor", gga::Json::parse(exec->dump()));
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
            opt.port = static_cast<std::uint16_t>(
                parseCount("--port", argv[++i]));
        } else if (!std::strcmp(argv[i], "--duration-s") && i + 1 < argc) {
            opt.durationS = std::strtod(argv[++i], nullptr);
            if (opt.durationS <= 0)
                GGA_FATAL("--duration-s wants a positive number");
        } else if (!std::strcmp(argv[i], "--interactive") && i + 1 < argc) {
            opt.interactiveClients = static_cast<unsigned>(
                parseCount("--interactive", argv[++i]));
        } else if (!std::strcmp(argv[i], "--batch") && i + 1 < argc) {
            opt.batchClients = static_cast<unsigned>(
                parseCount("--batch", argv[++i]));
        } else if (!std::strcmp(argv[i], "--batch-units") && i + 1 < argc) {
            opt.batchUnits = static_cast<unsigned>(
                parseCount("--batch-units", argv[++i]));
            if (opt.batchUnits == 0)
                GGA_FATAL("--batch-units must be at least 1");
        } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            opt.scale = parseScale("--scale", argv[++i]);
        } else if (!std::strcmp(argv[i], "--batch-scale") && i + 1 < argc) {
            opt.batchScale = parseScale("--batch-scale", argv[++i]);
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            opt.jsonOut = argv[++i];
        } else {
            GGA_FATAL("unknown argument '", argv[i],
                      "'; usage: gga_loadgen --port P [--duration-s D] "
                      "[--interactive N] [--batch M] [--batch-units K] "
                      "[--scale S] [--batch-scale S] [--json OUT]");
        }
    }
    if (opt.port == 0)
        GGA_FATAL("missing --port (the gga_serve port to drive)");
    if (opt.interactiveClients == 0 && opt.batchClients == 0)
        GGA_FATAL("need at least one client "
                  "(--interactive and/or --batch)");

    // Warm the server's graph cache so neither phase pays one-time
    // synthesis costs: one interactive unit and one batch unit, serially.
    try {
        runJob(opt.port, [&] {
            gga::Json body = gga::Json::object();
            body.set("plan", interactiveUnit(opt.scale).toJson());
            body.set("tenant", gga::Json("lg-warmup"));
            return body.dump();
        }());
        runJob(opt.port, [&] {
            gga::Json body = gga::Json::object();
            body.set("manifest",
                     batchManifest(1, opt.batchScale, 0).toJson());
            body.set("tenant", gga::Json("lg-warmup"));
            return body.dump();
        }());
    } catch (const gga::ServeError& err) {
        GGA_FATAL("warmup against port ", opt.port, " failed: ",
                  err.what());
    }

    std::fprintf(stderr,
                 "[loadgen] port %u: %u interactive + %u batch clients, "
                 "%u-unit batches, %.0fs per phase\n",
                 opt.port, opt.interactiveClients, opt.batchClients,
                 opt.batchUnits, opt.durationS);
    const PhaseResult fifo = runPhase(opt, "fifo", "batch");
    std::fprintf(stderr,
                 "[loadgen] fifo:  interactive p99 %.1fms, batch p99 "
                 "%.1fms\n",
                 fifo.interactiveP99, fifo.batchP99);
    const PhaseResult lanes = runPhase(opt, "lanes", "interactive");
    std::fprintf(stderr,
                 "[loadgen] lanes: interactive p99 %.1fms, batch p99 "
                 "%.1fms\n",
                 lanes.interactiveP99, lanes.batchP99);

    const double improvement = lanes.interactiveP99 > 0
                                   ? fifo.interactiveP99 /
                                         lanes.interactiveP99
                                   : 0.0;
    gga::Json report = gga::Json::object();
    report.set("suite", gga::Json("gga loadgen"));
    report.set("duration_s", gga::Json(opt.durationS));
    report.set("interactive_clients", gga::Json(opt.interactiveClients));
    report.set("batch_clients", gga::Json(opt.batchClients));
    report.set("batch_units", gga::Json(opt.batchUnits));
    report.set("scale", gga::Json(opt.scale));
    report.set("batch_scale", gga::Json(opt.batchScale));
    gga::Json phases = gga::Json::object();
    phases.set("fifo", gga::Json::parse(fifo.json.dump()));
    phases.set("lanes", gga::Json::parse(lanes.json.dump()));
    report.set("phases", std::move(phases));
    report.set("interactive_p99_improvement", gga::Json(improvement));

    std::fprintf(stderr, "[loadgen] interactive p99 improvement: %.2fx\n",
                 improvement);
    if (!opt.jsonOut.empty()) {
        gga::writeTextFile(opt.jsonOut, report.dump(2) + "\n");
        std::fprintf(stderr, "[loadgen] wrote %s\n", opt.jsonOut.c_str());
    } else {
        std::printf("%s\n", report.dump(2).c_str());
    }
    return 0;
}
