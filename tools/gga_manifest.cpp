/**
 * @file
 * gga_manifest: emit the serializable work-unit manifest of a figure.
 *
 * First step of the sharded evaluation pipeline:
 *
 *   gga_manifest fig5 --scale 0.1 --out fig5.json
 *   gga_worker --manifest fig5.json --shard 0/2 --out part0.json   (host A)
 *   gga_worker --manifest fig5.json --shard 1/2 --out part1.json   (host B)
 *   gga_merge --manifest fig5.json --render part0.json part1.json
 *
 * Usage: gga_manifest <fig5|fig6|partial> [--full] [--scale S] [--out FILE]
 *   --full   fig5 only: sweep the whole space for BEST, not the figure
 *            subset
 *   --scale  preset scale in (0, 1]; default GGA_SCALE (then 1.0)
 *   --out    output path; default <figure>_manifest.json
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/figures.hpp"
#include "harness/workloads.hpp"
#include "support/log.hpp"

int
main(int argc, char** argv)
{
    std::string figure;
    std::string out;
    double scale = 0.0;
    bool full = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--full")) {
            full = true;
        } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            const char* text = argv[++i];
            char* end = nullptr;
            scale = std::strtod(text, &end);
            if (end == text || *end != '\0' || scale <= 0.0 || scale > 1.0)
                GGA_FATAL("--scale wants a value in (0, 1], got '", text,
                          "'");
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else if (argv[i][0] != '-' && figure.empty()) {
            figure = argv[i];
        } else {
            GGA_FATAL("unknown argument '", argv[i],
                      "'; usage: gga_manifest <fig5|fig6|partial> "
                      "[--full] [--scale S] [--out FILE]");
        }
    }
    if (figure.empty())
        GGA_FATAL("missing figure; usage: gga_manifest "
                  "<fig5|fig6|partial> [--full] [--scale S] [--out FILE]");
    if (full && figure != "fig5")
        GGA_FATAL("--full only applies to fig5; a ", figure,
                  " manifest would silently cover the figure subset");
    if (scale == 0.0)
        scale = gga::evaluationScale();
    if (out.empty())
        out = figure + "_manifest.json";

    try {
        const gga::FigureSet set = gga::figureSet(figure, scale, full);
        set.manifest.save(out);
        std::cout << "wrote " << out << ": " << set.manifest.size()
                  << " work units (" << figure << ", scale " << scale
                  << (set.full ? ", full space" : "") << ")\n";
    } catch (const std::exception& err) {
        GGA_FATAL(err.what());
    }
    return 0;
}
