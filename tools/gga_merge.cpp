/**
 * @file
 * gga_merge: deterministically merge per-shard ResultSets and render the
 * figure their manifest describes.
 *
 * The merge sorts by work-unit key, rejects duplicate units (two shards
 * reporting the same unit), and verifies complete coverage of the
 * manifest (a lost shard is a loud error) — so the merged output is
 * byte-identical no matter how many workers produced the parts or in
 * which order they are listed.
 *
 * Usage: gga_merge --manifest FILE [--out FILE] [--render] [--csv]
 *                  PART.json...
 *   --out     write the merged ResultSet JSON here
 *   --render  print the figure's tables (from the manifest's meta) to
 *             stdout — byte-identical to the corresponding bench binary
 *   --csv     render CSV instead of aligned text
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "eval/result_set.hpp"
#include "harness/figures.hpp"
#include "support/log.hpp"

int
main(int argc, char** argv)
{
    std::string manifest_path;
    std::string out;
    bool render = false;
    bool csv = false;
    std::vector<std::string> part_paths;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--manifest") && i + 1 < argc) {
            manifest_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else if (!std::strcmp(argv[i], "--render")) {
            render = true;
        } else if (!std::strcmp(argv[i], "--csv")) {
            csv = true;
        } else if (argv[i][0] != '-') {
            part_paths.push_back(argv[i]);
        } else {
            GGA_FATAL("unknown argument '", argv[i],
                      "'; usage: gga_merge --manifest FILE [--out FILE] "
                      "[--render] [--csv] PART.json...");
        }
    }
    if (manifest_path.empty())
        GGA_FATAL("missing --manifest FILE");
    if (part_paths.empty())
        GGA_FATAL("no shard result files to merge");

    try {
        const gga::Manifest manifest = gga::Manifest::load(manifest_path);
        std::vector<gga::ResultSet> parts;
        parts.reserve(part_paths.size());
        for (const std::string& path : part_paths)
            parts.push_back(gga::ResultSet::load(path));
        const gga::ResultSet merged = gga::ResultSet::merge(parts);
        merged.verifyComplete(manifest);

        if (!out.empty()) {
            merged.save(out);
            std::cerr << "wrote " << out << ": " << merged.size()
                      << " units from " << parts.size() << " part(s)\n";
        }
        if (render) {
            const gga::FigureSet set = gga::figureSetFromManifest(manifest);
            std::cout << gga::renderFigure(set, merged, csv);
        }
    } catch (const std::exception& err) {
        GGA_FATAL(err.what());
    }
    return 0;
}
