/**
 * @file
 * gga_worker: execute manifest shards, either offline or connected.
 *
 * Offline (the original mode): execute one shard of a work-unit
 * manifest file and write the shard's ResultSet as JSON.
 *
 * Connected (--connect): register with a resident gga_serve instance,
 * pull shard assignments over HTTP, run each one, and push the parts
 * back — no files involved. Both modes run the same runManifest path,
 * so a connected worker's parts are bit-identical to offline shards.
 *
 * Workers are stateless: everything a unit needs (app, input, config,
 * hardware parameters, seed) is in the manifest, and the simulator is
 * deterministic, so any number of workers on any hosts produce parts
 * that merge bit-identically to a single in-process run. Execution fans
 * out on the in-process TaskPool executor (--threads).
 *
 * Usage: gga_worker --manifest FILE [--shard I/N] [--policy rr|cost]
 *                   [--out FILE] [common options]
 *        gga_worker --connect PORT [--name NAME] [--token T]
 *                   [--idle-exit-ms MS] [--poll-ms MS]
 *                   [--exit-after-assignments N] [common options]
 *   --shard   this worker's slice; default 0/1 (the whole manifest)
 *   --policy  shard assignment: rr (round-robin, default) or cost
 *             (balance estimated edge-work)
 *   --out     output path; default part_<I>.json
 *   --connect  port of a local gga_serve to pull assignments from
 *   --token   worker auth token, when the server runs --worker-token
 *   --idle-exit-ms  exit after this long with no assignment (0 = never)
 *   --exit-after-assignments  test hook: die (exit 17) upon receiving
 *             the Nth assignment, before running it — exercises the
 *             server's lease retry
 *   common:
 *   --threads executor width; default GGA_SESSION_THREADS (then 1)
 *   --graph-budget-mb  LRU byte budget for cached input graphs, so many
 *             workers on one host don't each hold every graph
 *   --graph-cache  directory of prebuilt .csrbin snapshots (see
 *             gga_graphs); input graphs load from it instead of being
 *             re-synthesized at cold start. Default GGA_GRAPH_CACHE.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "eval/run.hpp"
#include "serve/worker_client.hpp"
#include "support/log.hpp"

namespace {

/** Strict non-negative integer argument parse; fatal on garbage. */
unsigned long
parseCount(const char* flag, const char* text)
{
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || text[0] == '-')
        GGA_FATAL(flag, " wants a non-negative integer, got '", text, "'");
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string manifest_path;
    std::string out;
    std::size_t shard_index = 0;
    std::size_t shard_count = 1;
    gga::ShardPolicy policy = gga::ShardPolicy::RoundRobin;
    unsigned threads = 0;
    std::size_t budget_mb = 0;
    std::string graph_cache;
    bool verbose = false;
    gga::WorkerClientOptions client;
    bool connect = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--manifest") && i + 1 < argc) {
            manifest_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--shard") && i + 1 < argc) {
            // Strict parse: a malformed index must not silently become
            // shard 0 and burn a whole shard's compute on the wrong
            // slice (the merge would only catch it as duplicates later).
            const char* spec = argv[++i];
            char* end = nullptr;
            shard_index =
                static_cast<std::size_t>(std::strtoul(spec, &end, 10));
            if (end == spec || *end != '/' || spec[0] == '-')
                GGA_FATAL("--shard wants I/N, got '", spec, "'");
            const char* count_text = end + 1;
            shard_count = static_cast<std::size_t>(
                std::strtoul(count_text, &end, 10));
            if (end == count_text || *end != '\0' || count_text[0] == '-')
                GGA_FATAL("--shard wants I/N, got '", spec, "'");
        } else if (!std::strcmp(argv[i], "--policy") && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "rr")
                policy = gga::ShardPolicy::RoundRobin;
            else if (p == "cost")
                policy = gga::ShardPolicy::ByCost;
            else
                GGA_FATAL("--policy wants rr or cost, got '", p, "'");
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else if (!std::strcmp(argv[i], "--connect") && i + 1 < argc) {
            connect = true;
            client.port = static_cast<std::uint16_t>(
                parseCount("--connect", argv[++i]));
        } else if (!std::strcmp(argv[i], "--name") && i + 1 < argc) {
            client.name = argv[++i];
        } else if (!std::strcmp(argv[i], "--token") && i + 1 < argc) {
            client.token = argv[++i];
        } else if (!std::strcmp(argv[i], "--idle-exit-ms") && i + 1 < argc) {
            client.idleExitMs = static_cast<unsigned>(
                parseCount("--idle-exit-ms", argv[++i]));
        } else if (!std::strcmp(argv[i], "--poll-ms") && i + 1 < argc) {
            client.pollMs = static_cast<unsigned>(
                parseCount("--poll-ms", argv[++i]));
        } else if (!std::strcmp(argv[i], "--exit-after-assignments") &&
                   i + 1 < argc) {
            client.exitAfterAssignments = static_cast<unsigned>(
                parseCount("--exit-after-assignments", argv[++i]));
        } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            threads =
                static_cast<unsigned>(parseCount("--threads", argv[++i]));
        } else if (!std::strcmp(argv[i], "--graph-budget-mb") &&
                   i + 1 < argc) {
            budget_mb = static_cast<std::size_t>(
                parseCount("--graph-budget-mb", argv[++i]));
        } else if (!std::strcmp(argv[i], "--graph-cache") && i + 1 < argc) {
            graph_cache = argv[++i];
        } else if (!std::strcmp(argv[i], "--verbose")) {
            verbose = true;
        } else {
            GGA_FATAL("unknown argument '", argv[i],
                      "'; usage: gga_worker --manifest FILE [--shard I/N] "
                      "[--policy rr|cost] [--out FILE] | --connect PORT "
                      "[--name NAME] [--token T] [--idle-exit-ms MS] "
                      "[--poll-ms MS] "
                      "[--exit-after-assignments N]  plus [--threads T] "
                      "[--graph-budget-mb M] [--graph-cache DIR] "
                      "[--verbose]");
        }
    }
    if (connect == !manifest_path.empty())
        GGA_FATAL("need exactly one of --manifest FILE or --connect PORT");
    gga::setVerbose(verbose);

    gga::SessionOptions opts;
    opts.threads = threads;
    opts.verboseRuns = verbose;
    opts.graphBudgetBytes = budget_mb * 1024 * 1024;
    opts.graphCacheDir = graph_cache;

    try {
        gga::Session session(opts);
        if (connect) {
            const std::size_t posted =
                gga::runWorkerClient(session, client);
            std::cout << "posted " << posted << " part"
                      << (posted == 1 ? "" : "s") << " ("
                      << session.threads() << " threads)\n";
            return 0;
        }

        const gga::Manifest manifest = gga::Manifest::load(manifest_path);
        const gga::Manifest shard =
            manifest.shard(shard_index, shard_count, policy);
        if (out.empty())
            out = "part_" + std::to_string(shard_index) + ".json";

        const gga::ResultSet results = gga::runManifest(session, shard);
        results.save(out);
        std::cout << "wrote " << out << ": " << results.size() << "/"
                  << manifest.size() << " units (shard " << shard_index
                  << "/" << shard_count << ", " << session.threads()
                  << " threads)\n";
    } catch (const std::exception& err) {
        GGA_FATAL(err.what());
    }
    return 0;
}
