/**
 * @file
 * gga_lint: the project-invariant checker. Greps with a lexer, not a
 * parser — it strips comments and string literals first, so a comment
 * mentioning std::mutex or a doc example using rand() never trips it —
 * and applies repo-specific rules that generic tools cannot know:
 *
 *   determinism-rng        src/sim/ and src/graph/ are the determinism
 *                          core behind the golden tests: no rand()/
 *                          srand()/random_device — use support/rng.
 *   determinism-unordered  no std::unordered_map/set in src/sim/ or
 *                          src/graph/: iteration order is
 *                          implementation-defined and has already been
 *                          a source of nondeterminism bugs in graph
 *                          codes — use support/flat_map.hpp or a sorted
 *                          container.
 *   raw-new                no raw new/delete expressions in src/ outside
 *                          support/object_pool.hpp (placement new is
 *                          fine): ownership goes through containers,
 *                          smart pointers, or the pool.
 *   locale-float           src/support/json.*, src/support/table.*, and
 *                          src/harness/figures.* produce byte-identity-
 *                          gated output: no locale-dependent float
 *                          formatting or parsing (printf %f/%g/%e,
 *                          setprecision, strtod/stod/atof, setlocale) —
 *                          use std::to_chars / std::from_chars.
 *   raw-mutex              no std::mutex / std::condition_variable /
 *                          std::lock_guard / std::unique_lock /
 *                          std::scoped_lock in src/ outside
 *                          support/thread_annotations.hpp: shared state
 *                          uses the annotated gga::Mutex vocabulary so
 *                          clang -Wthread-safety sees every lock.
 *
 * Usage:
 *   gga_lint [--root DIR]              lint the tree under DIR (default .)
 *   gga_lint [--as RELPATH] FILE...    lint FILEs, scoping rules as if
 *                                      each lived at RELPATH (fixture
 *                                      self-tests)
 *
 * Exit: 0 clean, 1 findings, 2 usage/IO error.
 * Findings print as "path:line: [rule] message" — clickable, greppable.
 */

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding
{
    std::string file;
    std::size_t line;
    std::string rule;
    std::string message;
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Split @p text into two same-length views: @p code keeps everything
 * outside comments and literals (the rest blanked with spaces, newlines
 * preserved), @p strings keeps only the contents of string literals
 * (everything else blanked). Rules over tokens use the code view; rules
 * over format strings use the strings view. Handles //, block comments,
 * escapes, char literals, and R"delim(...)delim" raw strings.
 */
void
lexViews(const std::string& text, std::string& code, std::string& strings)
{
    code.assign(text.size(), ' ');
    strings.assign(text.size(), ' ');
    enum class St
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    St st = St::Code;
    std::string rawEnd; // ")delim\"" terminator of the active raw string
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '\n') { // keep line structure in both views
            code[i] = '\n';
            strings[i] = '\n';
            if (st == St::LineComment)
                st = St::Code;
            continue;
        }
        switch (st) {
        case St::Code:
            if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
                st = St::LineComment;
            } else if (c == '/' && i + 1 < text.size() &&
                       text[i + 1] == '*') {
                st = St::BlockComment;
                ++i;
            } else if (c == '"') {
                // R"delim( ... )delim" — only when R directly abuts the
                // quote and is not the tail of a longer identifier.
                if (i >= 1 && text[i - 1] == 'R' &&
                    (i < 2 || !isIdentChar(text[i - 2]))) {
                    std::string delim;
                    std::size_t j = i + 1;
                    while (j < text.size() && text[j] != '(' &&
                           delim.size() <= 16)
                        delim.push_back(text[j++]);
                    if (j < text.size() && text[j] == '(') {
                        rawEnd = ")" + delim + "\"";
                        st = St::RawString;
                        i = j; // skip past the opening '('
                        break;
                    }
                }
                st = St::String;
            } else if (c == '\'') {
                // Heuristic: a quote after an identifier/digit is a
                // digit separator (1'000'000), not a char literal.
                if (!(i >= 1 && isIdentChar(text[i - 1])))
                    st = St::Char;
            } else {
                code[i] = c;
            }
            break;
        case St::LineComment:
            break;
        case St::BlockComment:
            if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
                ++i;
                st = St::Code;
            }
            break;
        case St::String:
            if (c == '\\' && i + 1 < text.size()) {
                strings[i] = c;
                if (text[i + 1] != '\n')
                    strings[i + 1] = text[i + 1];
                ++i;
            } else if (c == '"') {
                st = St::Code;
            } else {
                strings[i] = c;
            }
            break;
        case St::Char:
            if (c == '\\' && i + 1 < text.size())
                ++i;
            else if (c == '\'')
                st = St::Code;
            break;
        case St::RawString:
            if (text.compare(i, rawEnd.size(), rawEnd) == 0) {
                i += rawEnd.size() - 1;
                st = St::Code;
            } else {
                strings[i] = c;
            }
            break;
        }
    }
}

/**
 * Blank preprocessor directives (and their backslash continuations) in
 * the code view: `#include <mutex>` is how the exempt wrapper gets the
 * raw type, not a use of it.
 */
void
blankPreprocessorLines(std::string& code)
{
    std::size_t lineStart = 0;
    while (lineStart < code.size()) {
        std::size_t eol = code.find('\n', lineStart);
        if (eol == std::string::npos)
            eol = code.size();
        std::size_t i = lineStart;
        while (i < eol && (code[i] == ' ' || code[i] == '\t'))
            ++i;
        if (i < eol && code[i] == '#') {
            bool continued = true;
            while (continued) {
                continued = false;
                for (std::size_t j = lineStart; j < eol; ++j) {
                    if (code[j] == '\\' && j + 1 == eol)
                        continued = true;
                    code[j] = ' ';
                }
                if (continued && eol < code.size()) {
                    lineStart = eol + 1;
                    eol = code.find('\n', lineStart);
                    if (eol == std::string::npos)
                        eol = code.size();
                }
            }
        }
        lineStart = eol + 1;
    }
}

std::size_t
lineOf(const std::string& text, std::size_t pos)
{
    return 1 + static_cast<std::size_t>(
                   std::count(text.begin(), text.begin() +
                              static_cast<std::ptrdiff_t>(pos), '\n'));
}

/** Next whole-identifier occurrence of @p word in @p code from @p from. */
std::size_t
findIdent(const std::string& code, const std::string& word,
          std::size_t from)
{
    for (std::size_t pos = code.find(word, from);
         pos != std::string::npos; pos = code.find(word, pos + 1)) {
        const bool leftOk = pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool rightOk = end >= code.size() || !isIdentChar(code[end]);
        if (leftOk && rightOk)
            return pos;
    }
    return std::string::npos;
}

void
flagIdents(const std::string& code, const std::vector<std::string>& words,
           const std::string& rule, const std::string& message,
           const std::string& path, std::vector<Finding>& out)
{
    for (const std::string& w : words) {
        for (std::size_t pos = findIdent(code, w, 0);
             pos != std::string::npos;
             pos = findIdent(code, w, pos + 1)) {
            out.push_back({path, lineOf(code, pos), rule,
                           w + ": " + message});
        }
    }
}

/** First non-space char at or after @p pos ('\0' at end). */
char
nextNonSpace(const std::string& s, std::size_t pos)
{
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n'))
        ++pos;
    return pos < s.size() ? s[pos] : '\0';
}

/** Last non-space char before @p pos ('\0' at start). */
char
prevNonSpace(const std::string& s, std::size_t pos)
{
    while (pos > 0) {
        const char c = s[--pos];
        if (c != ' ' && c != '\t' && c != '\n')
            return c;
    }
    return '\0';
}

void
checkRawNew(const std::string& code, const std::string& path,
            std::vector<Finding>& out)
{
    for (std::size_t pos = findIdent(code, "new", 0);
         pos != std::string::npos; pos = findIdent(code, "new", pos + 1)) {
        // Placement new — `new (addr) T` / `::new (addr) T` — is the
        // pool's own mechanism and allocates nothing.
        if (nextNonSpace(code, pos + 3) == '(')
            continue;
        // `#include <new>` leaves `new` followed by '>' in the code
        // view; anything not starting a type expression is not a
        // new-expression.
        const char next = nextNonSpace(code, pos + 3);
        if (!isIdentChar(next) && next != ':')
            continue;
        out.push_back({path, lineOf(code, pos), "raw-new",
                       "raw new expression: use containers, smart "
                       "pointers, or support/object_pool"});
    }
    for (std::size_t pos = findIdent(code, "delete", 0);
         pos != std::string::npos;
         pos = findIdent(code, "delete", pos + 1)) {
        if (prevNonSpace(code, pos) == '=')
            continue; // deleted function, not a delete-expression
        out.push_back({path, lineOf(code, pos), "raw-new",
                       "raw delete expression: use containers, smart "
                       "pointers, or support/object_pool"});
    }
}

void
checkLocaleFloat(const std::string& code, const std::string& strings,
                 const std::string& path, std::vector<Finding>& out)
{
    flagIdents(code,
               {"setprecision", "strtod", "strtof", "strtold", "stod",
                "stof", "stold", "atof", "setlocale", "localeconv"},
               "locale-float",
               "locale-dependent float formatting/parsing in a "
               "byte-identity-gated file: use std::to_chars / "
               "std::from_chars",
               path, out);
    // printf-family float conversions inside format strings:
    // %[flags][width][.prec][length] then one of eEfFgGaA.
    for (std::size_t i = 0; i + 1 < strings.size(); ++i) {
        if (strings[i] != '%')
            continue;
        std::size_t j = i + 1;
        if (j < strings.size() && strings[j] == '%') { // literal %%
            i = j;
            continue;
        }
        while (j < strings.size() &&
               (std::isdigit(static_cast<unsigned char>(strings[j])) ||
                strings[j] == '-' || strings[j] == '+' ||
                strings[j] == ' ' || strings[j] == '#' ||
                strings[j] == '.' || strings[j] == '*'))
            ++j;
        // length modifiers (l, L) before the conversion char
        while (j < strings.size() &&
               (strings[j] == 'l' || strings[j] == 'L'))
            ++j;
        if (j < strings.size() &&
            std::string("eEfFgGaA").find(strings[j]) != std::string::npos) {
            out.push_back(
                {path, lineOf(strings, i), "locale-float",
                 std::string("printf %") + strings[j] +
                     " conversion is locale-dependent (decimal point "
                     "follows LC_NUMERIC): use std::to_chars"});
        }
        i = j;
    }
}

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.rfind(prefix, 0) == 0;
}

void
lintFile(const std::string& relPath, const std::string& text,
         std::vector<Finding>& out)
{
    std::string code, strings;
    lexViews(text, code, strings);
    blankPreprocessorLines(code);

    const bool inDeterminismCore =
        startsWith(relPath, "src/sim/") || startsWith(relPath, "src/graph/");
    const bool inSrc = startsWith(relPath, "src/");
    const bool byteIdentityGated =
        startsWith(relPath, "src/support/json.") ||
        startsWith(relPath, "src/support/table.") ||
        startsWith(relPath, "src/harness/figures.");

    if (inDeterminismCore) {
        flagIdents(code,
                   {"rand", "srand", "rand_r", "drand48", "lrand48",
                    "random_device"},
                   "determinism-rng",
                   "nondeterministic RNG in the determinism core (golden "
                   "tests pin results): use support/rng",
                   relPath, out);
        flagIdents(code, {"unordered_map", "unordered_set"},
                   "determinism-unordered",
                   "iteration order is implementation-defined; use "
                   "support/flat_map.hpp or a sorted container",
                   relPath, out);
    }
    if (inSrc && relPath != "src/support/object_pool.hpp")
        checkRawNew(code, relPath, out);
    if (byteIdentityGated)
        checkLocaleFloat(code, strings, relPath, out);
    if (inSrc && relPath != "src/support/thread_annotations.hpp") {
        flagIdents(code,
                   {"mutex", "condition_variable", "lock_guard",
                    "unique_lock", "scoped_lock", "condition_variable_any",
                    "shared_mutex", "recursive_mutex"},
                   "raw-mutex",
                   "raw standard lock type: use the annotated "
                   "gga::Mutex/MutexLock/CondVar from "
                   "support/thread_annotations.hpp so clang "
                   "-Wthread-safety can check the lock discipline",
                   relPath, out);
    }
}

bool
lintableExtension(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::string
readFileOrDie(const fs::path& p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        std::cerr << "gga_lint: cannot open " << p << "\n";
        std::exit(2);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    std::string root = ".";
    std::string asPath;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--as" && i + 1 < argc) {
            asPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: gga_lint [--root DIR] "
                         "[--as RELPATH] [FILE...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "gga_lint: unknown option " << arg << "\n";
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    std::vector<Finding> findings;
    std::size_t scanned = 0;
    if (!files.empty()) {
        for (const std::string& f : files) {
            const std::string effective = asPath.empty() ? f : asPath;
            lintFile(effective, readFileOrDie(f), findings);
            ++scanned;
        }
    } else {
        const fs::path srcRoot = fs::path(root) / "src";
        if (!fs::is_directory(srcRoot)) {
            std::cerr << "gga_lint: no src/ under " << root << "\n";
            return 2;
        }
        std::vector<fs::path> paths;
        for (const auto& entry : fs::recursive_directory_iterator(srcRoot))
            if (entry.is_regular_file() &&
                lintableExtension(entry.path()))
                paths.push_back(entry.path());
        // Deterministic report order regardless of directory order.
        std::sort(paths.begin(), paths.end());
        for (const fs::path& p : paths) {
            const std::string rel =
                fs::relative(p, fs::path(root)).generic_string();
            lintFile(rel, readFileOrDie(p), findings);
            ++scanned;
        }
    }

    for (const Finding& f : findings)
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    std::cerr << "gga_lint: " << scanned << " files, " << findings.size()
              << " finding" << (findings.size() == 1 ? "" : "s") << "\n";
    return findings.empty() ? 0 : 1;
}
