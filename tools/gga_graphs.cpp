/**
 * @file
 * gga_graphs: prebuild (and verify) the binary CSR snapshot cache the
 * sharded evaluation pipeline loads its input graphs from.
 *
 * Prebuild once, then point every worker at the shared directory:
 *
 *   gga_manifest fig5 --full --out fig5.json
 *   gga_graphs --cache /shared/graphs --manifest fig5.json --threads 8
 *   gga_worker --manifest fig5.json --shard 0/8 --graph-cache /shared/graphs
 *
 * Workers then pay a checksummed binary load per input instead of the
 * full synthesis cost at every cold start.
 *
 * Usage: gga_graphs --cache DIR [--manifest FILE] [--presets A,B|all]
 *                   [--scale S] [--threads T] [--verify] [--force]
 *   --cache    snapshot directory (created if missing)
 *   --manifest prebuild exactly the graphs a manifest needs (file-path
 *              inputs are skipped — they already live on disk)
 *   --presets  comma-separated preset names, or "all"; default: all six
 *              when no manifest is given
 *   --scale    preset scale for --presets entries; default 1.0 (paper size)
 *   --threads  total thread budget, split between concurrent targets and
 *              per-build synthesis threads (pool width = min(T, targets),
 *              each build gets T/width); default
 *              GGA_BUILD_THREADS/GGA_SESSION_THREADS
 *   --verify   load every selected snapshot, rebuild from scratch at two
 *              different thread counts, and require all three byte-
 *              identical (exit 1 on any mismatch or unreadable snapshot)
 *              instead of writing anything
 *   --force    rebuild and overwrite snapshots that already load cleanly
 *
 * Targets run concurrently on a TaskPool; each target's log lines are
 * buffered and printed in target order, so the output reads the same at
 * every --threads value.
 */

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/graph_store.hpp"
#include "api/task_pool.hpp"
#include "eval/manifest.hpp"
#include "graph/builder.hpp"
#include "graph/generator.hpp"
#include "graph/presets.hpp"
#include "graph/snapshot.hpp"
#include "support/log.hpp"

namespace {

struct Target
{
    gga::GraphPreset preset;
    double scale;
};

/**
 * The scale the GraphStore will actually build and look up under: its
 * keys quantize to 1e-6 and builds use the quantized value, so the
 * snapshot file name must be derived from the same number — an
 * off-grid scale (1/3) would otherwise hash to a file no worker ever
 * opens, silently leaving the cache cold.
 */
double
canonicalScale(double scale)
{
    return static_cast<double>(gga::GraphStore::quantizeScale(scale)) /
           1e6;
}

std::optional<gga::GraphPreset>
parsePresetName(const std::string& name)
{
    for (gga::GraphPreset p : gga::kAllGraphPresets) {
        if (name == gga::presetName(p))
            return p;
    }
    return std::nullopt;
}

std::string
snapshotPathFor(const std::string& cache, const Target& t)
{
    const std::int64_t units = gga::GraphStore::quantizeScale(t.scale);
    const gga::GenSpec spec = gga::presetSpecScaled(t.preset, t.scale);
    return cache + "/" +
           gga::csrSnapshotFileName(gga::presetName(t.preset), units,
                                    gga::specContentHash(spec));
}

} // namespace

int
main(int argc, char** argv)
{
    std::string cache;
    std::string manifest_path;
    std::string presets_arg;
    double scale = 1.0;
    unsigned threads = 0;
    bool verify = false;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--cache") && i + 1 < argc) {
            cache = argv[++i];
        } else if (!std::strcmp(argv[i], "--manifest") && i + 1 < argc) {
            manifest_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--presets") && i + 1 < argc) {
            presets_arg = argv[++i];
        } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            const char* text = argv[++i];
            char* end = nullptr;
            scale = std::strtod(text, &end);
            if (end == text || *end != '\0' || scale <= 0.0 || scale > 1.0)
                GGA_FATAL("--scale wants a value in (0, 1], got '", text,
                          "'");
        } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            const char* text = argv[++i];
            char* end = nullptr;
            threads = static_cast<unsigned>(std::strtoul(text, &end, 10));
            if (end == text || *end != '\0' || text[0] == '-')
                GGA_FATAL("--threads wants a non-negative integer, got '",
                          text, "'");
        } else if (!std::strcmp(argv[i], "--verify")) {
            verify = true;
        } else if (!std::strcmp(argv[i], "--force")) {
            force = true;
        } else {
            GGA_FATAL("unknown argument '", argv[i],
                      "'; usage: gga_graphs --cache DIR [--manifest FILE] "
                      "[--presets A,B|all] [--scale S] [--threads T] "
                      "[--verify] [--force]");
        }
    }
    if (cache.empty())
        GGA_FATAL("missing --cache DIR");

    try {
        std::vector<Target> targets;
        if (!manifest_path.empty()) {
            const gga::Manifest manifest =
                gga::Manifest::load(manifest_path);
            std::size_t skipped_files = 0;
            for (const gga::Manifest::GraphInput& in :
                 manifest.graphInputs()) {
                if (in.preset)
                    targets.push_back(
                        Target{*in.preset, canonicalScale(in.scale)});
                else
                    ++skipped_files;
            }
            if (skipped_files > 0) {
                std::cout << "note: " << skipped_files
                          << " file input(s) skipped (already on disk)\n";
            }
        }
        if (!presets_arg.empty() ||
            (manifest_path.empty() && targets.empty())) {
            if (presets_arg.empty() || presets_arg == "all") {
                for (gga::GraphPreset p : gga::kAllGraphPresets)
                    targets.push_back(Target{p, canonicalScale(scale)});
            } else {
                std::size_t start = 0;
                while (start <= presets_arg.size()) {
                    const std::size_t comma =
                        presets_arg.find(',', start);
                    const std::string name = presets_arg.substr(
                        start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
                    const auto p = parsePresetName(name);
                    if (!p)
                        GGA_FATAL("unknown preset '", name,
                                  "' (want AMZ, DCT, EML, OLS, RAJ, WNG)");
                    targets.push_back(Target{*p, canonicalScale(scale)});
                    if (comma == std::string::npos)
                        break;
                    start = comma + 1;
                }
            }
        }
        if (targets.empty())
            GGA_FATAL("nothing to do: the manifest names no preset inputs "
                      "and no --presets were given");

        if (!verify)
            std::filesystem::create_directories(cache);

        // Split the thread budget: as many concurrent targets as the
        // budget (or the target list) allows, remaining threads to each
        // build. Generation is deterministic at every split, so this is
        // purely a wall-clock decision.
        const unsigned budget =
            threads ? threads : gga::defaultBuildThreads();
        const unsigned width = static_cast<unsigned>(std::min<std::size_t>(
            std::max(1u, budget), targets.size()));
        const unsigned per_build = std::max(1u, budget / width);

        struct Report
        {
            std::string out;
            std::string err;
            int failures = 0;
        };
        const auto process = [&cache, verify, force,
                              per_build](const Target& t) -> Report {
            Report r;
            std::ostringstream out;
            std::ostringstream err;
            const std::string path = snapshotPathFor(cache, t);
            const std::string label =
                std::string(gga::presetName(t.preset)) + " @ " +
                std::to_string(t.scale);
            if (verify) {
                try {
                    const gga::CsrGraph loaded = gga::loadCsrSnapshot(path);
                    // Rebuild at two different thread counts: catches a
                    // stale snapshot and a thread-count-dependent
                    // generator in one pass.
                    const unsigned alt = std::max(2u, per_build);
                    const gga::CsrGraph rebuilt =
                        gga::buildPresetScaled(t.preset, t.scale, 1);
                    const gga::CsrGraph rebuilt_alt =
                        gga::buildPresetScaled(t.preset, t.scale, alt);
                    if (!(rebuilt == rebuilt_alt)) {
                        err << "MISMATCH " << label
                            << ": fresh builds at 1 and " << alt
                            << " threads differ\n";
                        ++r.failures;
                    } else if (loaded == rebuilt) {
                        out << "verified " << label
                            << ": snapshot is byte-identical to fresh "
                               "builds at 1 and "
                            << alt << " threads (" << loaded.numEdges()
                            << " edges)\n";
                    } else {
                        err << "MISMATCH " << label << ": " << path
                            << " loads but differs from a fresh build\n";
                        ++r.failures;
                    }
                } catch (const gga::SnapshotError& e) {
                    err << "FAIL " << label << ": " << e.what() << "\n";
                    ++r.failures;
                }
                r.out = out.str();
                r.err = err.str();
                return r;
            }
            bool cached = false;
            if (!force) {
                try {
                    const gga::CsrGraph loaded = gga::loadCsrSnapshot(path);
                    out << "cached " << label << ": " << path << " ("
                        << loaded.numEdges() << " edges)\n";
                    cached = true;
                } catch (const gga::SnapshotError& e) {
                    // Missing is a routine cold cache; a present-but-
                    // unloadable file deserves a loud line before the
                    // rebuild overwrites it.
                    if (std::filesystem::exists(path))
                        err << "rejecting damaged snapshot for " << label
                            << ": " << e.what() << "; rebuilding\n";
                }
            }
            if (!cached) {
                const gga::CsrGraph built =
                    gga::buildPresetScaled(t.preset, t.scale, per_build);
                gga::saveCsrSnapshot(path, built);
                out << "wrote " << label << ": " << path << " ("
                    << built.numEdges() << " edges)\n";
            }
            r.out = out.str();
            r.err = err.str();
            return r;
        };

        int failures = 0;
        gga::TaskPool pool(width);
        std::vector<std::future<Report>> reports;
        reports.reserve(targets.size());
        for (const Target& t : targets)
            reports.push_back(
                pool.submit([&process, t] { return process(t); }));
        for (std::future<Report>& f : reports) {
            const Report r = f.get();
            std::cout << r.out;
            std::cerr << r.err;
            failures += r.failures;
        }
        if (failures > 0) {
            std::cerr << failures << " snapshot(s) failed verification\n";
            return 1;
        }
    } catch (const std::exception& err) {
        GGA_FATAL(err.what());
    }
    return 0;
}
