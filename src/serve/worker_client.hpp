/**
 * @file
 * WorkerClient: the remote-worker side of the serve protocol — what
 * `gga_worker --connect` runs. Registers with a Service, polls for
 * shard assignments, executes each assigned sub-manifest on its own
 * Session (the same runManifest path the offline CLI uses, so parts are
 * bit-identical to offline shards), and posts the ResultSet back.
 *
 * The loop exits when idleExitMs passes without an assignment (so CI
 * workers drain and leave) or when the server becomes unreachable after
 * registration. exitAfterAssignments is a fault-injection hook: the
 * worker hard-exits the process the moment it receives its Nth
 * assignment, before running it — exactly the "worker died mid-job"
 * case the orchestrator's lease retry exists for.
 *
 * Deliberately single-threaded: one blocking loop, no members, no locks
 * — concurrency lives inside the borrowed Session (annotated classes
 * one layer down), so there is nothing here for -Wthread-safety to see.
 */

#ifndef GGA_SERVE_WORKER_CLIENT_HPP
#define GGA_SERVE_WORKER_CLIENT_HPP

#include <cstdint>
#include <string>

#include "api/session.hpp"

namespace gga {

struct WorkerClientOptions
{
    std::uint16_t port = 0;      ///< service port (required)
    std::string name;            ///< advisory worker name
    unsigned pollMs = 100;       ///< delay between idle polls
    unsigned idleExitMs = 0;     ///< 0 = poll forever
    /** Fault injection: _exit(kCrashExitCode) on receiving the Nth
     *  assignment (1-based); 0 disables. */
    unsigned exitAfterAssignments = 0;
    /** Sent as X-GGA-Worker-Token on every request when non-empty; must
     *  match the server's --worker-token or everything answers 401. */
    std::string token;
};

/** The exit code of the exitAfterAssignments crash hook. */
constexpr int kCrashExitCode = 17;

/**
 * Run the worker loop until idle-exit or server shutdown. Returns the
 * number of parts successfully posted. Throws ServeError when the
 * service cannot be reached at registration time.
 */
std::size_t runWorkerClient(Session& session,
                            const WorkerClientOptions& opts);

} // namespace gga

#endif // GGA_SERVE_WORKER_CLIENT_HPP
