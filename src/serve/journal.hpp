/**
 * @file
 * Journal: the resident service's write-ahead log — what makes a
 * gga_serve restart a non-event instead of a data loss.
 *
 * Layout under --state-dir:
 *
 *   journal.jsonl        append-only, one JSON record per line:
 *     {"t":"admit","job","tenant","remote","shards","manifest":{...}}
 *     {"t":"state","job","state","error"}
 *     {"t":"part","job","shard","file","checksum","bytes"}
 *   parts/<job>.s<shard>.json   one verified shard ResultSet each,
 *                               written atomically (temp + rename, the
 *                               graph-snapshot pattern) BEFORE its
 *                               journal record — a record never points
 *                               at a file that might not exist.
 *
 * Durability contract: a record is flushed before the action it
 * describes is acknowledged, so after any crash the journal describes a
 * prefix of what actually happened. Replay (the constructor) tolerates a
 * torn tail — the first unparseable line is warned about and everything
 * from it on is dropped, recovering to the last good record — and a part
 * file that fails its checksum is dropped so its shard simply re-runs.
 *
 * Compaction: when a job reaches a terminal state the server calls
 * finish(), which drops the job's records, deletes its part files, and
 * rewrites journal.jsonl (temp + rename again); terminal jobs found at
 * replay are compacted the same way, so the log stays proportional to
 * live work, not service uptime.
 *
 * Thread-safe; append order under mu_ is the replay order.
 */

#ifndef GGA_SERVE_JOURNAL_HPP
#define GGA_SERVE_JOURNAL_HPP

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "eval/manifest.hpp"
#include "eval/result_set.hpp"
#include "serve/job_table.hpp"
#include "support/thread_annotations.hpp"

namespace gga {

class Journal
{
  public:
    /** One non-terminal job reconstructed from the log at startup. */
    struct RecoveredJob
    {
        std::string id;
        std::string tenant;
        bool remote = false;
        std::size_t shards = 0;
        JobState state = JobState::Queued;
        std::string error;
        Manifest manifest;
        /** Verified shard parts by shard index (remote jobs only). */
        std::map<std::size_t, ResultSet> parts;
    };

    /**
     * Open (creating @p stateDir and its parts/ subdirectory when
     * absent), replay the existing log, compact terminal jobs away, and
     * leave the log open for appending. Throws ServeError when the
     * directory cannot be created or the compacted log cannot be
     * written; a damaged log never throws — it recovers.
     */
    explicit Journal(std::string stateDir);

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /** Jobs that were live at the last crash, in admission order. */
    const std::vector<RecoveredJob>& recovered() const
    {
        return recovered_;
    }

    /** Whether replay hit (and dropped) a torn or corrupt tail. */
    bool tailWasDamaged() const { return tailDamaged_; }

    /** Record an admission; flushed before returning. */
    void admit(const std::string& job, const std::string& tenant,
               bool remote, std::size_t shards, const Manifest& manifest);

    /** Record a state transition; flushed before returning. */
    void state(const std::string& job, JobState s,
               const std::string& error);

    /**
     * Persist a verified shard part (@p partJson is the part's compact
     * ResultSet JSON): part file first, then the checksummed record.
     */
    void part(const std::string& job, std::size_t shard,
              const std::string& partJson);

    /** Terminal job: drop its records, delete its parts, compact. */
    void finish(const std::string& job);

    /** Flush the append stream (drain path). */
    void sync();

    /** Bytes/records/compaction counters for /stats. */
    Json statsJson() const;

  private:
    /** The retained raw lines of one live job, for compaction. */
    struct JobRecords
    {
        std::uint64_t seq = 0; ///< admission order, for stable rewrites
        std::string admitLine;
        std::string stateLine; ///< latest only; older ones are dead
        std::map<std::size_t, std::string> partLines;
    };

    void appendLocked(const std::string& line) GGA_REQUIRES(mu_);
    void rewriteLocked() GGA_REQUIRES(mu_);
    std::string partPath(const std::string& job, std::size_t shard) const;
    std::string journalPath() const;

    const std::string dir_;
    mutable Mutex mu_;
    std::ofstream out_ GGA_GUARDED_BY(mu_);
    std::map<std::string, JobRecords> live_ GGA_GUARDED_BY(mu_);
    std::uint64_t nextSeq_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t records_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t bytes_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t compactions_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t droppedParts_ = 0; ///< ctor-only write
    bool tailDamaged_ = false;       ///< ctor-only write
    std::vector<RecoveredJob> recovered_; ///< ctor-only write
};

} // namespace gga

#endif // GGA_SERVE_JOURNAL_HPP
