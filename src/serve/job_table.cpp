#include "serve/job_table.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "support/log.hpp"

namespace gga {

std::string
jobStateName(JobState s)
{
    switch (s) {
    case JobState::Queued:   return "queued";
    case JobState::Running:  return "running";
    case JobState::Done:     return "done";
    case JobState::Failed:   return "failed";
    case JobState::Canceled: return "canceled";
    }
    return "unknown";
}

std::optional<JobState>
jobStateFromName(const std::string& name)
{
    for (const JobState s :
         {JobState::Queued, JobState::Running, JobState::Done,
          JobState::Failed, JobState::Canceled})
        if (jobStateName(s) == name)
            return s;
    return std::nullopt;
}

void
LatencyHistogram::record(double ms)
{
    ++count;
    totalMs += ms;
    maxMs = std::max(maxMs, ms);
    std::size_t b = 0;
    // Bucket i covers [2^(i-1), 2^i) ms; everything under 1ms lands in 0.
    while (b + 1 < kBuckets && ms >= static_cast<double>(1ull << b))
        ++b;
    ++buckets[b];
}

Json
LatencyHistogram::toJson() const
{
    Json j = Json::object();
    j.set("count", Json(count));
    j.set("total_ms", Json(totalMs));
    j.set("max_ms", Json(maxMs));
    Json b = Json::array();
    for (const std::uint64_t n : buckets)
        b.push(Json(n));
    j.set("buckets_log2_ms", std::move(b));
    return j;
}

Json
JobSnapshot::toJson() const
{
    Json j = Json::object();
    j.set("id", Json(id));
    j.set("tenant", Json(tenant));
    j.set("state", Json(jobStateName(state)));
    j.set("execution", Json(remote ? "remote" : "local"));
    if (remote)
        j.set("shards", Json(static_cast<std::uint64_t>(shards)));
    j.set("total_units", Json(static_cast<std::uint64_t>(totalUnits)));
    j.set("completed_units",
          Json(static_cast<std::uint64_t>(completedUnits)));
    j.set("failed_units", Json(static_cast<std::uint64_t>(failedUnits)));
    j.set("version", Json(version));
    if (!error.empty())
        j.set("error", Json(error));
    return j;
}

std::string
JobTable::create(const std::string& tenant, Manifest manifest, bool remote,
                 std::size_t shards)
{
    MutexLock lock(mu_);
    if (liveCountLocked(tenant) >= maxQueuedPerTenant_)
        throw AdmissionError("tenant '" + tenant + "' already has " +
                             std::to_string(maxQueuedPerTenant_) +
                             " queued or running jobs");
    Job j;
    j.seq = ++nextId_;
    j.id = "job-" + std::to_string(j.seq);
    j.tenant = tenant;
    j.manifest = std::move(manifest);
    j.remote = remote;
    j.shards = shards;
    const std::string id = j.id;
    jobs_.emplace(id, std::move(j));
    cv_.notify_all();
    return id;
}

void
JobTable::setObserver(Observer obs)
{
    MutexLock lock(mu_);
    observer_ = std::move(obs);
}

void
JobTable::restore(const JobRestore& r)
{
    MutexLock lock(mu_);
    if (jobs_.count(r.id) != 0) {
        GGA_WARN("serve: restore of ", r.id, " ignored (id exists)");
        return;
    }
    Job j;
    j.id = r.id;
    j.tenant = r.tenant;
    j.manifest = r.manifest;
    j.remote = r.remote;
    j.shards = r.shards;
    j.state = r.state;
    j.error = r.error;
    j.rows = r.rows;
    // Resume numbering past the restored id so new jobs never collide.
    std::uint64_t seq = 0;
    if (r.id.rfind("job-", 0) == 0) {
        char* end = nullptr;
        seq = std::strtoull(r.id.c_str() + 4, &end, 10);
        if (end == nullptr || *end != '\0')
            seq = 0;
    }
    if (seq == 0)
        seq = nextId_ + 1;
    nextId_ = std::max(nextId_, seq);
    j.seq = seq;
    jobs_.emplace(r.id, std::move(j));
    cv_.notify_all();
}

std::optional<Manifest>
JobTable::manifestOf(const std::string& id) const
{
    MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return it->second.manifest;
}

void
JobTable::unitDone(const std::string& id, const UnitEvent& ev)
{
    MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    Job& j = it->second;
    if (!ev.appName.empty())
        latency_[ev.appName].record(ev.millis);
    if (terminal(j.state))
        return; // late event for a canceled/failed job
    const JobState before = j.state;
    if (j.state == JobState::Queued)
        j.state = JobState::Running;
    if (ev.result) {
        j.rows.push_back(*ev.result);
    } else {
        ++j.failedUnits;
        if (j.error.empty())
            j.error = ev.error;
    }
    maybeFinishLocalLocked(j);
    if (j.state != before)
        notifyLocked(j);
    bumpLocked(j);
}

void
JobTable::markRunning(const std::string& id)
{
    MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::Queued)
        return;
    it->second.state = JobState::Running;
    notifyLocked(it->second);
    bumpLocked(it->second);
}

void
JobTable::addRemoteProgress(const std::string& id,
                            const std::vector<UnitResult>& rows)
{
    MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || terminal(it->second.state))
        return;
    Job& j = it->second;
    if (j.state == JobState::Queued) {
        j.state = JobState::Running;
        notifyLocked(j);
    }
    j.rows.insert(j.rows.end(), rows.begin(), rows.end());
    bumpLocked(j);
}

void
JobTable::finishRemote(const std::string& id, ResultSet merged)
{
    MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || terminal(it->second.state))
        return;
    Job& j = it->second;
    j.finalResults = std::move(merged);
    j.state = JobState::Done;
    notifyLocked(j);
    bumpLocked(j);
}

void
JobTable::fail(const std::string& id, const std::string& why)
{
    MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || terminal(it->second.state))
        return;
    Job& j = it->second;
    j.state = JobState::Failed;
    if (j.error.empty())
        j.error = why;
    notifyLocked(j);
    bumpLocked(j);
}

bool
JobTable::cancel(const std::string& id)
{
    MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || terminal(it->second.state))
        return false;
    it->second.state = JobState::Canceled;
    notifyLocked(it->second);
    bumpLocked(it->second);
    return true;
}

std::optional<JobSnapshot>
JobTable::snapshot(const std::string& id) const
{
    MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return snapshotLocked(it->second);
}

std::optional<JobSnapshot>
JobTable::waitForChange(const std::string& id, std::uint64_t since,
                        unsigned waitMs) const
{
    MutexLock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(waitMs);
    while (true) {
        const auto it = jobs_.find(id);
        if (it == jobs_.end())
            return std::nullopt;
        if (it->second.version > since || shutdown_)
            return snapshotLocked(it->second);
        if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
            const auto again = jobs_.find(id);
            if (again == jobs_.end())
                return std::nullopt;
            return snapshotLocked(again->second);
        }
    }
}

std::vector<JobSnapshot>
JobTable::list(const std::string& tenant) const
{
    std::vector<std::pair<std::uint64_t, JobSnapshot>> rows;
    {
        MutexLock lock(mu_);
        for (const auto& [id, j] : jobs_) {
            (void)id;
            if (!tenant.empty() && j.tenant != tenant)
                continue;
            rows.emplace_back(j.seq, snapshotLocked(j));
        }
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<JobSnapshot> out;
    out.reserve(rows.size());
    for (auto& [seq, snap] : rows) {
        (void)seq;
        out.push_back(std::move(snap));
    }
    return out;
}

std::optional<JobTable::RowsPage>
JobTable::resultsAfter(const std::string& id, std::size_t after) const
{
    MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    const Job& j = it->second;
    RowsPage page;
    if (after < j.rows.size())
        page.rows.assign(j.rows.begin() +
                             static_cast<std::ptrdiff_t>(after),
                         j.rows.end());
    page.next = j.rows.size();
    page.terminal = terminal(j.state);
    return page;
}

std::optional<ResultSet>
JobTable::finalResults(const std::string& id) const
{
    MutexLock lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::Done ||
        !it->second.finalResults)
        return std::nullopt;
    return it->second.finalResults;
}

Json
JobTable::statsJson() const
{
    MutexLock lock(mu_);
    std::uint64_t queued = 0, running = 0, done = 0, failed = 0,
                  canceled = 0;
    std::map<std::string, std::uint64_t> perTenant;
    for (const auto& [id, j] : jobs_) {
        (void)id;
        ++perTenant[j.tenant];
        switch (j.state) {
        case JobState::Queued:   ++queued; break;
        case JobState::Running:  ++running; break;
        case JobState::Done:     ++done; break;
        case JobState::Failed:   ++failed; break;
        case JobState::Canceled: ++canceled; break;
        }
    }
    Json jobs = Json::object();
    jobs.set("total", Json(static_cast<std::uint64_t>(jobs_.size())));
    jobs.set("queued", Json(queued));
    jobs.set("running", Json(running));
    jobs.set("done", Json(done));
    jobs.set("failed", Json(failed));
    jobs.set("canceled", Json(canceled));
    Json tenants = Json::object();
    for (const auto& [name, n] : perTenant)
        tenants.set(name, Json(n));
    Json lat = Json::object();
    for (const auto& [app, hist] : latency_)
        lat.set(app, hist.toJson());
    Json out = Json::object();
    out.set("jobs", std::move(jobs));
    out.set("jobs_by_tenant", std::move(tenants));
    out.set("unit_latency_ms_by_app", std::move(lat));
    return out;
}

void
JobTable::shutdown()
{
    MutexLock lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
}

JobSnapshot
JobTable::snapshotLocked(const Job& j) const
{
    JobSnapshot s;
    s.id = j.id;
    s.tenant = j.tenant;
    s.state = j.state;
    s.remote = j.remote;
    s.shards = j.shards;
    s.totalUnits = j.manifest.size();
    s.completedUnits = j.rows.size();
    s.failedUnits = j.failedUnits;
    s.version = j.version;
    s.error = j.error;
    return s;
}

void
JobTable::notifyLocked(const Job& j)
{
    if (observer_)
        observer_(snapshotLocked(j));
}

void
JobTable::bumpLocked(Job& j)
{
    ++j.version;
    cv_.notify_all();
}

std::size_t
JobTable::liveCountLocked(const std::string& tenant) const
{
    std::size_t n = 0;
    for (const auto& [id, j] : jobs_) {
        (void)id;
        if (j.tenant == tenant && !terminal(j.state))
            ++n;
    }
    return n;
}

void
JobTable::maybeFinishLocalLocked(Job& j)
{
    if (j.remote || j.rows.size() + j.failedUnits < j.manifest.size())
        return;
    if (j.failedUnits > 0) {
        j.state = JobState::Failed;
        return;
    }
    // Assembling from rows re-sorts by key, so the final set is
    // bit-identical to the blocking runManifest path's.
    try {
        ResultSet rs = ResultSet::fromRows(j.rows);
        rs.verifyComplete(j.manifest);
        j.finalResults = std::move(rs);
        j.state = JobState::Done;
    } catch (const EvalError& err) {
        j.state = JobState::Failed;
        if (j.error.empty())
            j.error = err.what();
    }
}

} // namespace gga
