#include "serve/journal.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <utility>

#include "support/faults.hpp"
#include "serve/http.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace gga {

namespace {

bool
isTerminal(JobState s)
{
    return s == JobState::Done || s == JobState::Failed ||
           s == JobState::Canceled;
}

} // namespace

std::string
Journal::journalPath() const
{
    return dir_ + "/journal.jsonl";
}

std::string
Journal::partPath(const std::string& job, std::size_t shard) const
{
    return dir_ + "/parts/" + job + ".s" + std::to_string(shard) + ".json";
}

Journal::Journal(std::string stateDir) : dir_(std::move(stateDir))
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir_ + "/parts", ec);
    if (ec)
        throw ServeError("state-dir '" + dir_ + "': " + ec.message());

    // --- replay ----------------------------------------------------------
    struct Pending
    {
        RecoveredJob job;
        JobRecords recs;
    };
    std::vector<std::string> order;
    std::map<std::string, Pending> pending;
    std::ifstream in(journalPath());
    std::string line;
    std::size_t lineNo = 0;
    while (in && std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        try {
            const Json rec = Json::parse(line);
            const std::string t = rec.at("t").asString();
            const std::string job = rec.at("job").asString();
            if (t == "admit") {
                Pending p;
                p.job.id = job;
                p.job.tenant = rec.at("tenant").asString();
                p.job.remote = rec.at("remote").asBool();
                p.job.shards =
                    static_cast<std::size_t>(rec.at("shards").asU64());
                p.job.manifest = Manifest::fromJson(rec.at("manifest"));
                p.recs.admitLine = line;
                if (pending.emplace(job, std::move(p)).second)
                    order.push_back(job);
            } else if (t == "state") {
                const auto it = pending.find(job);
                if (it == pending.end())
                    continue; // job already compacted away
                const std::string name = rec.at("state").asString();
                const std::optional<JobState> s = jobStateFromName(name);
                if (!s)
                    throw JsonError("unknown job state '" + name + "'");
                it->second.job.state = *s;
                if (const Json* e = rec.find("error"))
                    it->second.job.error = e->asString();
                it->second.recs.stateLine = line;
            } else if (t == "part") {
                const auto it = pending.find(job);
                if (it == pending.end())
                    continue;
                const std::size_t shard =
                    static_cast<std::size_t>(rec.at("shard").asU64());
                const std::uint64_t sum = rec.at("checksum").asU64();
                // A part that fails its checksum (or won't parse) is not
                // tail damage: drop just this shard and let it re-run.
                try {
                    const std::string text =
                        readTextFile(partPath(job, shard));
                    if (fnv1a(text.data(), text.size()) != sum)
                        throw EvalError("part checksum mismatch");
                    it->second.job.parts[shard] =
                        ResultSet::fromJson(Json::parse(text));
                    it->second.recs.partLines[shard] = line;
                } catch (const std::exception& err) {
                    ++droppedParts_;
                    GGA_WARN("journal: dropping part shard ", shard,
                             " of ", job, " (", err.what(),
                             "); the shard will re-run");
                }
            } else {
                throw JsonError("unknown record type '" + t + "'");
            }
        } catch (const std::exception& err) {
            // Torn or corrupt tail: recover to the last good record and
            // drop everything after it — loudly, because whatever those
            // lines described is about to be forgotten.
            tailDamaged_ = true;
            GGA_WARN("journal: ", journalPath(), " line ", lineNo,
                     " unreadable (", err.what(),
                     "); recovering to the last good record and "
                     "discarding the rest of the log");
            break;
        }
    }
    in.close();

    // Terminal jobs are compacted away right here (deferred compaction
    // for a server that crashed between finishing a job and finish()).
    MutexLock lock(mu_);
    for (const std::string& id : order) {
        Pending& p = pending.at(id);
        if (isTerminal(p.job.state))
            continue;
        p.recs.seq = ++nextSeq_;
        live_.emplace(id, std::move(p.recs));
        recovered_.push_back(std::move(p.job));
    }

    // Delete every part file the compacted log no longer references:
    // terminal jobs' parts, checksum-failed parts, and orphaned temp
    // files from a writer that crashed mid-rename.
    std::set<std::string> keep;
    for (const auto& [id, recs] : live_)
        for (const auto& [shard, partLine] : recs.partLines) {
            (void)partLine;
            keep.insert(partPath(id, shard));
        }
    for (const auto& entry : fs::directory_iterator(dir_ + "/parts", ec)) {
        const std::string p = entry.path().string();
        if (keep.count(p) == 0)
            fs::remove(entry.path(), ec);
    }

    rewriteLocked();
    if (!recovered_.empty())
        GGA_WARN("journal: recovered ", recovered_.size(),
                 " live job(s) from ", journalPath());
}

void
Journal::appendLocked(const std::string& line)
{
    faults::crashPoint("crash.journal.before-append");
    out_ << line << '\n';
    out_.flush();
    if (!out_) {
        // Durability is gone (disk full?): keep serving, but make sure
        // nobody mistakes this for a recoverable deployment.
        GGA_WARN("journal: append to ", journalPath(),
                 " FAILED; state written from here on will not survive "
                 "a restart");
        out_.clear();
    }
    ++records_;
    bytes_ += line.size() + 1;
    faults::crashPoint("crash.journal.after-append");
}

void
Journal::rewriteLocked()
{
    if (out_.is_open())
        out_.close();
    std::vector<std::pair<std::uint64_t, const JobRecords*>> jobs;
    jobs.reserve(live_.size());
    for (const auto& [id, recs] : live_) {
        (void)id;
        jobs.emplace_back(recs.seq, &recs);
    }
    std::sort(jobs.begin(), jobs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::string text;
    std::uint64_t records = 0;
    for (const auto& [seq, recs] : jobs) {
        (void)seq;
        text += recs->admitLine + "\n";
        ++records;
        if (!recs->stateLine.empty()) {
            text += recs->stateLine + "\n";
            ++records;
        }
        for (const auto& [shard, partLine] : recs->partLines) {
            (void)shard;
            text += partLine + "\n";
            ++records;
        }
    }
    // Same atomic pattern as the graph snapshots: the journal under its
    // final name is always a complete, parseable log.
    const std::string path = journalPath();
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream f(tmp, std::ios::trunc);
        if (f)
            f << text;
        f.flush();
        if (!f) {
            std::remove(tmp.c_str());
            throw ServeError("cannot write journal '" + tmp + "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw ServeError("cannot rename '" + tmp + "' to '" + path + "'");
    }
    out_.open(path, std::ios::app);
    if (!out_)
        throw ServeError("cannot reopen journal '" + path + "'");
    records_ = records;
    bytes_ = text.size();
}

void
Journal::admit(const std::string& job, const std::string& tenant,
               bool remote, std::size_t shards, const Manifest& manifest)
{
    Json rec = Json::object();
    rec.set("t", Json("admit"));
    rec.set("job", Json(job));
    rec.set("tenant", Json(tenant));
    rec.set("remote", Json(remote));
    rec.set("shards", Json(static_cast<std::uint64_t>(shards)));
    rec.set("manifest", manifest.toJson());
    const std::string line = rec.dump();
    MutexLock lock(mu_);
    JobRecords recs;
    recs.seq = ++nextSeq_;
    recs.admitLine = line;
    live_.emplace(job, std::move(recs));
    appendLocked(line);
}

void
Journal::state(const std::string& job, JobState s,
               const std::string& error)
{
    Json rec = Json::object();
    rec.set("t", Json("state"));
    rec.set("job", Json(job));
    rec.set("state", Json(jobStateName(s)));
    if (!error.empty())
        rec.set("error", Json(error));
    const std::string line = rec.dump();
    MutexLock lock(mu_);
    const auto it = live_.find(job);
    if (it == live_.end())
        return; // already compacted
    it->second.stateLine = line;
    appendLocked(line);
}

void
Journal::part(const std::string& job, std::size_t shard,
              const std::string& partJson)
{
    const std::uint64_t sum = fnv1a(partJson.data(), partJson.size());
    const std::string path = partPath(job, shard);
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream f(tmp, std::ios::trunc);
        if (f)
            f << partJson;
        f.flush();
        if (!f) {
            std::remove(tmp.c_str());
            GGA_WARN("journal: cannot persist part shard ", shard, " of ",
                     job, " to '", tmp, "'; it would re-run on restart");
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        GGA_WARN("journal: cannot rename part '", tmp, "'");
        return;
    }
    // The file is durable before the record that points at it exists; a
    // crash in between leaves an orphan the next replay deletes.
    faults::crashPoint("crash.journal.part-file");

    Json rec = Json::object();
    rec.set("t", Json("part"));
    rec.set("job", Json(job));
    rec.set("shard", Json(static_cast<std::uint64_t>(shard)));
    rec.set("file", Json("parts/" + job + ".s" + std::to_string(shard) +
                         ".json"));
    rec.set("checksum", Json(sum));
    rec.set("bytes", Json(static_cast<std::uint64_t>(partJson.size())));
    const std::string line = rec.dump();
    MutexLock lock(mu_);
    const auto it = live_.find(job);
    if (it == live_.end()) {
        // The job finished (and compacted) while this part was being
        // written — a final-part race. The record must not resurrect it.
        std::remove(path.c_str());
        return;
    }
    it->second.partLines[shard] = line;
    appendLocked(line);
}

void
Journal::finish(const std::string& job)
{
    std::vector<std::string> doomed;
    {
        MutexLock lock(mu_);
        const auto it = live_.find(job);
        if (it == live_.end())
            return;
        for (const auto& [shard, partLine] : it->second.partLines) {
            (void)partLine;
            doomed.push_back(partPath(job, shard));
        }
        live_.erase(it);
        rewriteLocked();
        ++compactions_;
    }
    for (const std::string& p : doomed)
        std::remove(p.c_str());
}

void
Journal::sync()
{
    MutexLock lock(mu_);
    if (out_.is_open())
        out_.flush();
}

Json
Journal::statsJson() const
{
    MutexLock lock(mu_);
    Json j = Json::object();
    j.set("records", Json(records_));
    j.set("bytes", Json(bytes_));
    j.set("live_jobs", Json(static_cast<std::uint64_t>(live_.size())));
    j.set("compactions_total", Json(compactions_));
    j.set("recovered_jobs",
          Json(static_cast<std::uint64_t>(recovered_.size())));
    j.set("dropped_parts", Json(droppedParts_));
    j.set("tail_damaged", Json(tailDamaged_));
    return j;
}

} // namespace gga
