/**
 * @file
 * Orchestrator: shard assignment, lease tracking, and retry for remote
 * jobs.
 *
 * A remote job is a manifest split into N shards (Manifest::shard, the
 * same deterministic split the offline gga_worker CLI uses). Registered
 * workers pull assignments (poll), run the shard in their own process,
 * and push the shard's ResultSet back (partArrived). Every assignment
 * carries a lease: a worker that dies or stalls past the lease simply
 * never reports, tick() notices the expiry, and the shard is reassigned
 * with capped exponential backoff. A part is verified against its
 * shard's sub-manifest on arrival — a wrong or partial part is rejected
 * and the shard retried — and a duplicate part for a shard that already
 * completed (a slow worker racing its own replacement) is discarded and
 * counted, never merged twice. When the last shard lands, the parts are
 * merged with the same strict ResultSet::merge the offline pipeline
 * uses and verified against the full manifest, so a served remote job is
 * byte-identical to an in-process runManifest.
 *
 * Threading: every public method is safe to call from any connection
 * thread; tick() is driven by the server's ticker. Completion and
 * failure are reported through the JobTable passed at construction.
 */

#ifndef GGA_SERVE_ORCHESTRATOR_HPP
#define GGA_SERVE_ORCHESTRATOR_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "eval/manifest.hpp"
#include "eval/result_set.hpp"
#include "serve/job_table.hpp"
#include "support/thread_annotations.hpp"

namespace gga {

class Journal;

/** Lease/retry policy for remote shard execution. */
struct RetryPolicy
{
    unsigned leaseMs = 15000;    ///< assignment expires after this
    unsigned retryBaseMs = 500;  ///< first retry delay
    unsigned retryCapMs = 8000;  ///< exponential backoff ceiling
    unsigned maxAttempts = 6;    ///< per shard; exhausted -> job fails

    /** min(base * 2^(attempt-1), cap); attempt is 1-based. */
    unsigned backoffMs(unsigned attempt) const;
};

/** One pulled assignment, as handed to a worker. */
struct Assignment
{
    std::string job;
    std::size_t shard = 0;
    std::size_t shardCount = 0;
    Manifest manifest; ///< the shard's sub-manifest
};

class Orchestrator
{
  public:
    using Clock = std::chrono::steady_clock;

    /** @p journal, when non-null, receives every verified part. */
    Orchestrator(JobTable& jobs, RetryPolicy policy,
                 Journal* journal = nullptr)
        : jobs_(jobs), policy_(policy), journal_(journal)
    {
    }

    /** Register a worker; returns its id ("w-<n>"). */
    std::string registerWorker(const std::string& name);

    /** Known worker? (Unknown ids are rejected at the wire layer.) */
    bool knownWorker(const std::string& worker) const;

    /**
     * Add a remote job's shards to the assignment pool. @p shardCount
     * must be >= 1; the manifest is fetched from the JobTable by id.
     * Returns false when the job id is unknown.
     */
    bool enqueueJob(const std::string& jobId, std::size_t shardCount);

    /**
     * Pull the next runnable shard for @p worker: the oldest job's
     * lowest-index unassigned shard whose backoff has elapsed. Updates
     * the worker's liveness stamp. nullopt when nothing is runnable
     * (idle) or the worker is unknown.
     */
    std::optional<Assignment> poll(const std::string& worker);

    /** Outcome of partArrived, for the wire layer's status code. */
    enum class PartOutcome
    {
        Accepted,  ///< verified and recorded (job may now be done)
        Duplicate, ///< shard already completed; part discarded
        Rejected,  ///< failed verification; shard will be retried
        Unknown,   ///< no such job/shard/worker
    };

    /**
     * A worker's completed shard part. Verifies the part against the
     * shard's sub-manifest; on the final part, merges and completes the
     * job through the JobTable (or fails it if the strict merge
     * rejects). @p error receives the verification failure on Rejected.
     * @p checksum, when present, is the worker's FNV-1a over the part's
     * compact JSON; a mismatch (bit rot in transit) is Rejected before
     * the manifest check. Accepted parts are journaled when a Journal
     * was wired at construction.
     */
    PartOutcome partArrived(const std::string& worker,
                            const std::string& jobId, std::size_t shard,
                            ResultSet part, std::string* error = nullptr,
                            std::optional<std::uint64_t> checksum =
                                std::nullopt);

    /**
     * Re-admit a journal-recovered remote job: shards with a recovered
     * part are Done (counted in recovered_parts_total, never
     * re-executed); the rest are leased out as usual. When every shard
     * was already done — the crash hit between the last part and the
     * job's done record — the job is merged and finished immediately.
     */
    void restoreJob(const std::string& jobId, std::size_t shardCount,
                    const std::map<std::size_t, ResultSet>& parts);

    /**
     * Expire overdue leases: a shard assigned longer ago than the lease
     * becomes runnable again after backoff, counting one attempt; a
     * shard out of attempts fails its whole job. Called periodically by
     * the server's ticker.
     */
    void tick();

    /** Drop a job's unfinished shards (after cancel/failure). */
    void forgetJob(const std::string& jobId);

    /** Telemetry for /stats. */
    Json statsJson() const;

  private:
    enum class ShardState
    {
        Waiting,  ///< runnable once notBefore has passed
        Assigned, ///< leased to a worker
        Done,     ///< part verified and stored
    };

    struct Shard
    {
        ShardState state = ShardState::Waiting;
        unsigned attempts = 0;
        std::string worker;
        Clock::time_point notBefore{}; ///< backoff gate (Waiting)
        Clock::time_point deadline{};  ///< lease expiry (Assigned)
        std::optional<ResultSet> part;
    };

    struct RemoteJob
    {
        std::uint64_t seq = 0; ///< FIFO fairness across jobs
        Manifest manifest;
        std::vector<Shard> shards;
    };

    struct Worker
    {
        std::string name;
        Clock::time_point lastSeen{};
    };

    /** Fails the job and drops its shard state. */
    void failJobLocked(const std::string& jobId, const std::string& why)
        GGA_REQUIRES(mu_);

    /**
     * The last shard's payload, extracted under mu_ by
     * partArrivedLocked and merged by partArrived after the lock is
     * gone — merging a full manifest's results is too much work to do
     * while holding the assignment lock.
     */
    struct Finalize
    {
        std::vector<ResultSet> parts;
        Manifest manifest;
    };

    /**
     * The locked body of partArrived; fills @p fin on the final part.
     * @p preVerifyError, when non-empty, fails verification outright
     * (the caller's checksum check, done outside the lock).
     */
    PartOutcome partArrivedLocked(const std::string& worker,
                                  const std::string& jobId,
                                  std::size_t shard, ResultSet part,
                                  const std::string& preVerifyError,
                                  std::string* error,
                                  std::optional<Finalize>& fin)
        GGA_REQUIRES(mu_);

    /** Merge @p fin and complete/fail the job. Call without mu_. */
    void finalizeJob(const std::string& jobId, Finalize fin);

    JobTable& jobs_;
    const RetryPolicy policy_;
    Journal* const journal_; ///< may be null; internally synchronized
    mutable Mutex mu_;
    std::uint64_t nextWorker_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t nextJobSeq_ GGA_GUARDED_BY(mu_) = 0;
    std::map<std::string, Worker> workers_ GGA_GUARDED_BY(mu_);
    std::map<std::string, RemoteJob> remote_ GGA_GUARDED_BY(mu_);
    // Lifetime counters (monotonic).
    std::uint64_t assignments_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t retries_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t expiredLeases_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t rejectedParts_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t duplicateParts_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t completedShards_ GGA_GUARDED_BY(mu_) = 0;
    /** Shards restored Done from the journal (not re-executed here). */
    std::uint64_t recoveredParts_ GGA_GUARDED_BY(mu_) = 0;
};

} // namespace gga

#endif // GGA_SERVE_ORCHESTRATOR_HPP
