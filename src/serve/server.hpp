/**
 * @file
 * Service: the resident analytics server — HTTP routing over the
 * JobTable, the Orchestrator, and a shared Session executor.
 *
 * Endpoints (all bodies JSON):
 *
 *   GET  /healthz                      liveness
 *   GET  /stats                        graph store, executor, jobs, workers
 *   POST /v1/jobs                      submit {"plan": unit} or
 *                                      {"manifest": ..., "execution":
 *                                      "local"|"remote", "shards": N};
 *                                      tenant from "tenant" member or the
 *                                      X-GGA-Tenant header -> 202/400/429
 *   GET  /v1/jobs[?tenant=t]           list
 *   GET  /v1/jobs/{id}                 status; ?wait_ms=&since= long-polls
 *   GET  /v1/jobs/{id}/results?after=N stream completed unit rows
 *   GET  /v1/jobs/{id}/render[?csv=1]  rendered figure table (409 until done)
 *   DELETE /v1/jobs/{id}               cancel
 *   POST /v1/workers/register          {"name": ...} -> {"worker","lease_ms"}
 *   POST /v1/workers/poll              {"worker"} -> 200 assignment | 204
 *   POST /v1/workers/parts             {"worker","job","shard","results"}
 *
 * Local jobs run on the Session's TaskPool via submitManifestStreamed;
 * remote jobs are sharded by the Orchestrator across connected
 * gga_worker processes. Either path ends in the same key-sorted
 * ResultSet, so /render output is byte-identical to the offline
 * gga_merge --render pipeline.
 *
 * handle() is exposed directly so tests can drive the full routing
 * logic without sockets; start() binds the real listener.
 */

#ifndef GGA_SERVE_SERVER_HPP
#define GGA_SERVE_SERVER_HPP

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "api/session.hpp"
#include "serve/http.hpp"
#include "serve/job_table.hpp"
#include "serve/orchestrator.hpp"
#include "serve/rate_limiter.hpp"

namespace gga {

class Journal;

struct ServiceOptions
{
    std::uint16_t port = 7421;       ///< 0 = ephemeral (read back via port())
    std::size_t maxQueuedPerTenant = 8;
    RetryPolicy retry;               ///< remote lease/backoff policy
    unsigned tickMs = 200;           ///< lease-expiry scan period
    SessionOptions session;          ///< executor for local jobs
    /**
     * Durable state directory. "" runs in-memory (the pre-journal
     * behavior); otherwise every admission, state change, and verified
     * remote part is journaled there, and construction replays the
     * journal: unfinished jobs come back, completed shards are never
     * re-executed, and the final render is byte-identical.
     */
    std::string stateDir;
    /**
     * Shared secret for the worker endpoints. "" leaves them open;
     * otherwise register/poll/parts require the X-GGA-Worker-Token
     * header to match, else 401.
     */
    std::string workerToken;
    /**
     * Sustained POST /v1/jobs rate per tenant (tokens/sec, burst of
     * ceil(rate)). 0 disables. Over-rate submits get 429 with a
     * Retry-After header — distinct from the admission-bound 429,
     * which carries none.
     */
    double ratePerTenant = 0;
    unsigned ioTimeoutMs = 30000; ///< socket read deadline; 0 = none
    unsigned drainMs = 1000; ///< stop() waits this long for in-flight requests
};

class Service
{
  public:
    explicit Service(ServiceOptions opts = {});

    /** stop()s if still running. */
    ~Service();

    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /** Bind and serve (loopback). Throws ServeError on bind failure. */
    void start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return http_.port(); }

    /** Unblock long-polls, stop the ticker, drain, join. Idempotent. */
    void stop();

    /** Full request routing — the socketless seam tests drive. */
    HttpResponse handle(const HttpRequest& req);

    Session& session() { return session_; }
    JobTable& jobs() { return jobs_; }
    Orchestrator& orchestrator() { return orch_; }

  private:
    HttpResponse submitJob(const HttpRequest& req);
    HttpResponse jobStatus(const HttpRequest& req, const std::string& id);
    HttpResponse jobResults(const HttpRequest& req, const std::string& id);
    HttpResponse jobRender(const HttpRequest& req, const std::string& id);
    HttpResponse workerEndpoint(const HttpRequest& req,
                                const std::string& action);
    HttpResponse statsResponse();

    /** Kick off local execution of an admitted job. */
    void startLocalJob(const std::string& id, const Manifest& manifest);

    ServiceOptions opts_;
    // Destruction order matters (members destroy bottom-up): http_ stops
    // first so no new requests arrive, the ticker joins, then session_
    // drains its executor — whose callbacks touch jobs_ — then jobs_
    // (whose observer writes to journal_), and journal_ goes last.
    // No mutex of its own, so nothing here is GUARDED_BY: every member
    // below is internally synchronized (JobTable/Orchestrator/HttpServer/
    // Journal/TenantRateLimiter carry annotated gga::Mutexes; Session is
    // lock-free by design), and the tick thread's only shared state is
    // the stopping_ flag. recoveredJobs_ is written once in the ctor,
    // before any thread exists.
    std::unique_ptr<Journal> journal_; ///< null when stateDir is ""
    std::uint64_t recoveredJobs_ = 0;
    TenantRateLimiter limiter_;
    JobTable jobs_;
    Orchestrator orch_;
    Session session_;
    std::atomic<bool> stopping_{false};
    std::thread ticker_;
    HttpServer http_;
};

} // namespace gga

#endif // GGA_SERVE_SERVER_HPP
