/**
 * @file
 * Service: the resident analytics server — HTTP routing over the
 * JobTable, the Orchestrator, and a shared Session executor.
 *
 * Endpoints (all bodies JSON):
 *
 *   GET  /healthz                      liveness
 *   GET  /stats                        graph store, executor, jobs, workers
 *   POST /v1/jobs                      submit {"plan": unit} or
 *                                      {"manifest": ..., "execution":
 *                                      "local"|"remote", "shards": N};
 *                                      tenant from "tenant" member or the
 *                                      X-GGA-Tenant header -> 202/400/429
 *   GET  /v1/jobs[?tenant=t]           list
 *   GET  /v1/jobs/{id}                 status; ?wait_ms=&since= long-polls
 *   GET  /v1/jobs/{id}/results?after=N stream completed unit rows
 *   GET  /v1/jobs/{id}/render[?csv=1]  rendered figure table (409 until done)
 *   DELETE /v1/jobs/{id}               cancel
 *   POST /v1/workers/register          {"name": ...} -> {"worker","lease_ms"}
 *   POST /v1/workers/poll              {"worker"} -> 200 assignment | 204
 *   POST /v1/workers/parts             {"worker","job","shard","results"}
 *
 * Local jobs run on the Session's TaskPool via submitManifestStreamed;
 * remote jobs are sharded by the Orchestrator across connected
 * gga_worker processes. Either path ends in the same key-sorted
 * ResultSet, so /render output is byte-identical to the offline
 * gga_merge --render pipeline.
 *
 * handle() is exposed directly so tests can drive the full routing
 * logic without sockets; start() binds the real listener.
 */

#ifndef GGA_SERVE_SERVER_HPP
#define GGA_SERVE_SERVER_HPP

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "api/session.hpp"
#include "serve/http.hpp"
#include "serve/job_table.hpp"
#include "serve/orchestrator.hpp"

namespace gga {

struct ServiceOptions
{
    std::uint16_t port = 7421;       ///< 0 = ephemeral (read back via port())
    std::size_t maxQueuedPerTenant = 8;
    RetryPolicy retry;               ///< remote lease/backoff policy
    unsigned tickMs = 200;           ///< lease-expiry scan period
    SessionOptions session;          ///< executor for local jobs
};

class Service
{
  public:
    explicit Service(ServiceOptions opts = {});

    /** stop()s if still running. */
    ~Service();

    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /** Bind and serve (loopback). Throws ServeError on bind failure. */
    void start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return http_.port(); }

    /** Unblock long-polls, stop the ticker, drain, join. Idempotent. */
    void stop();

    /** Full request routing — the socketless seam tests drive. */
    HttpResponse handle(const HttpRequest& req);

    Session& session() { return session_; }
    JobTable& jobs() { return jobs_; }
    Orchestrator& orchestrator() { return orch_; }

  private:
    HttpResponse submitJob(const HttpRequest& req);
    HttpResponse jobStatus(const HttpRequest& req, const std::string& id);
    HttpResponse jobResults(const HttpRequest& req, const std::string& id);
    HttpResponse jobRender(const HttpRequest& req, const std::string& id);
    HttpResponse workerEndpoint(const HttpRequest& req,
                                const std::string& action);
    HttpResponse statsResponse();

    /** Kick off local execution of an admitted job. */
    void startLocalJob(const std::string& id, const Manifest& manifest);

    ServiceOptions opts_;
    // Destruction order matters (members destroy bottom-up): http_ stops
    // first so no new requests arrive, the ticker joins, then session_
    // drains its executor — whose callbacks touch jobs_ — and jobs_ goes
    // last.
    // No mutex of its own, so nothing here is GUARDED_BY: every member
    // below is internally synchronized (JobTable/Orchestrator/HttpServer
    // carry annotated gga::Mutexes; Session is lock-free by design), and
    // the tick thread's only shared state is the stopping_ flag.
    JobTable jobs_;
    Orchestrator orch_;
    Session session_;
    std::atomic<bool> stopping_{false};
    std::thread ticker_;
    HttpServer http_;
};

} // namespace gga

#endif // GGA_SERVE_SERVER_HPP
