/**
 * @file
 * JobTable: the resident service's multi-tenant job registry.
 *
 * Every submitted RunPlan or Manifest becomes a Job with a process-unique
 * id, a tenant, a lifecycle (Queued -> Running -> Done/Failed/Canceled),
 * and a monotonically increasing version that bumps on every visible
 * change — the long-poll primitive: waitForChange(id, since) blocks until
 * version > since or a timeout.
 *
 * Admission is bounded per tenant: a tenant may hold at most
 * maxQueuedPerTenant jobs in Queued+Running at once; the next submit is
 * rejected with AdmissionError (HTTP 429) instead of queueing unbounded
 * work behind a shared executor. Completed unit rows are kept in
 * completion order so clients can stream results incrementally
 * (resultsAfter) while the job still runs.
 *
 * Latency telemetry: per-app log2-bucketed histograms of unit wall
 * times, fed by every locally executed unit.
 */

#ifndef GGA_SERVE_JOB_TABLE_HPP
#define GGA_SERVE_JOB_TABLE_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/manifest.hpp"
#include "eval/result_set.hpp"
#include "eval/run.hpp"
#include "support/thread_annotations.hpp"

namespace gga {

/** Thrown when a tenant's admission quota is exhausted (HTTP 429). */
class AdmissionError : public std::runtime_error
{
  public:
    explicit AdmissionError(const std::string& why)
        : std::runtime_error(why)
    {
    }
};

enum class JobState
{
    Queued,   ///< accepted, no unit finished yet
    Running,  ///< at least one unit (or shard) in flight or finished
    Done,     ///< every unit finished, results complete
    Failed,   ///< a unit plan was invalid or a remote shard exhausted retries
    Canceled, ///< client canceled before completion
};

std::string jobStateName(JobState s);

/** Inverse of jobStateName; nullopt for an unrecognized name. */
std::optional<JobState> jobStateFromName(const std::string& name);

/** Log2-bucketed wall-time histogram (bucket i: [2^(i-1), 2^i) ms). */
struct LatencyHistogram
{
    static constexpr std::size_t kBuckets = 16;

    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    double totalMs = 0;
    double maxMs = 0;

    void record(double ms);
    Json toJson() const;
};

/** Immutable status snapshot handed to the wire layer. */
struct JobSnapshot
{
    std::string id;
    std::string tenant;
    JobState state = JobState::Queued;
    bool remote = false;
    std::size_t shards = 0;    ///< 0 for local jobs
    std::size_t totalUnits = 0;
    std::size_t completedUnits = 0;
    std::size_t failedUnits = 0;
    std::uint64_t version = 0; ///< long-poll cursor
    std::string error;         ///< first failure, "" while healthy

    Json toJson() const;
};

class JobTable
{
  public:
    explicit JobTable(std::size_t maxQueuedPerTenant = 8)
        : maxQueuedPerTenant_(maxQueuedPerTenant)
    {
    }

    /**
     * Admit a job for @p tenant over @p manifest. Throws AdmissionError
     * when the tenant already holds maxQueuedPerTenant live jobs.
     * Returns the new job id ("job-<n>").
     */
    std::string create(const std::string& tenant, Manifest manifest,
                       bool remote, std::size_t shards);

    /**
     * Observer called (under the table lock — keep it lock-ordered and
     * quick) after every job STATE transition, with the fresh snapshot.
     * The journal's state-record feed. Set before traffic starts.
     */
    using Observer = std::function<void(const JobSnapshot&)>;
    void setObserver(Observer obs);

    /** One journal-recovered job, re-inserted verbatim by restore(). */
    struct JobRestore
    {
        std::string id; ///< original id ("job-<n>"); numbering resumes past it
        std::string tenant;
        Manifest manifest;
        bool remote = false;
        std::size_t shards = 0;
        JobState state = JobState::Queued;
        std::string error;
        std::vector<UnitResult> rows; ///< already-completed units
    };

    /**
     * Re-insert a recovered job under its original id, bypassing the
     * admission bound and the observer (its history is already in the
     * journal). The id counter resumes past the restored id so new jobs
     * never collide. Quietly ignores an id that already exists.
     */
    void restore(const JobRestore& r);

    /** The job's manifest (throws ServeError-free: nullopt if unknown). */
    std::optional<Manifest> manifestOf(const std::string& id) const;

    /** Record one locally executed unit's completion event. */
    void unitDone(const std::string& id, const UnitEvent& ev);

    /** Remote path: mark running (first shard assigned). */
    void markRunning(const std::string& id);

    /** Remote path: per-shard progress (units another host completed). */
    void addRemoteProgress(const std::string& id,
                           const std::vector<UnitResult>& rows);

    /** Remote path: the verified merged results; moves the job to Done. */
    void finishRemote(const std::string& id, ResultSet merged);

    /** Move the job to Failed with @p why (idempotent once terminal). */
    void fail(const std::string& id, const std::string& why);

    /**
     * Cancel: Queued/Running -> Canceled (true); terminal states are left
     * alone (false). Units already posted to an executor still run; their
     * late events are dropped.
     */
    bool cancel(const std::string& id);

    /** Status snapshot; nullopt for an unknown id. */
    std::optional<JobSnapshot> snapshot(const std::string& id) const;

    /**
     * Long-poll: block until the job's version exceeds @p since or
     * @p waitMs elapses (0 = return immediately); nullopt for an unknown
     * id. Returns promptly once shutdown() has been called.
     */
    std::optional<JobSnapshot> waitForChange(const std::string& id,
                                             std::uint64_t since,
                                             unsigned waitMs) const;

    /** All jobs (optionally one tenant's), newest first. */
    std::vector<JobSnapshot> list(const std::string& tenant = {}) const;

    /**
     * Completed unit rows after row index @p after (completion order),
     * plus whether the job is terminal; nullopt for an unknown id.
     */
    struct RowsPage
    {
        std::vector<UnitResult> rows; ///< rows [after, after+n)
        std::size_t next = 0;         ///< cursor for the next page
        bool terminal = false;
    };
    std::optional<RowsPage> resultsAfter(const std::string& id,
                                         std::size_t after) const;

    /**
     * The finished job's complete ResultSet (key-sorted — for local jobs
     * assembled from the event rows, for remote jobs the orchestrator's
     * verified merge); nullopt while not Done or for an unknown id.
     */
    std::optional<ResultSet> finalResults(const std::string& id) const;

    /** Aggregate counts + per-app latency histograms, for /stats. */
    Json statsJson() const;

    /** Wake every long-poller (no more changes will come). */
    void shutdown();

  private:
    struct Job
    {
        std::string id;
        std::string tenant;
        Manifest manifest;
        bool remote = false;
        std::size_t shards = 0;
        JobState state = JobState::Queued;
        std::vector<UnitResult> rows; ///< completion order
        std::size_t failedUnits = 0;
        std::uint64_t version = 1;
        std::string error;
        std::optional<ResultSet> finalResults;
        std::uint64_t seq = 0; ///< creation order, for list()
    };

    static bool terminal(JobState s)
    {
        return s == JobState::Done || s == JobState::Failed ||
               s == JobState::Canceled;
    }

    JobSnapshot snapshotLocked(const Job& j) const GGA_REQUIRES(mu_);
    void notifyLocked(const Job& j) GGA_REQUIRES(mu_);
    void bumpLocked(Job& j) GGA_REQUIRES(mu_);
    std::size_t liveCountLocked(const std::string& tenant) const
        GGA_REQUIRES(mu_);
    void maybeFinishLocalLocked(Job& j) GGA_REQUIRES(mu_);

    const std::size_t maxQueuedPerTenant_;
    mutable Mutex mu_;
    mutable CondVar cv_;
    bool shutdown_ GGA_GUARDED_BY(mu_) = false;
    std::uint64_t nextId_ GGA_GUARDED_BY(mu_) = 0;
    std::map<std::string, Job> jobs_ GGA_GUARDED_BY(mu_);
    Observer observer_ GGA_GUARDED_BY(mu_);
    /** Unit wall-time histograms by app name. */
    std::map<std::string, LatencyHistogram> latency_ GGA_GUARDED_BY(mu_);
};

} // namespace gga

#endif // GGA_SERVE_JOB_TABLE_HPP
