/**
 * @file
 * Minimal HTTP/1.1 transport for the resident service: a blocking
 * thread-per-connection server and a one-shot client, both over plain
 * POSIX sockets.
 *
 * Scope is deliberately narrow — the service speaks small JSON bodies
 * between trusted tools on a private interface, so there is no TLS, no
 * chunked transfer encoding, and no pipelining. What IS here is strict:
 * request lines and headers are parsed exactly, bodies require an
 * accurate Content-Length (capped, so a hostile peer cannot balloon the
 * process), and malformed input closes the connection with a 4xx rather
 * than being guessed at. Keep-alive is supported because the worker
 * protocol polls in a tight loop.
 *
 * The handler runs on the connection's thread and may block (long-poll
 * endpoints do); stop() unblocks every connection by shutting the
 * sockets down and then joins, so destruction is always clean.
 */

#ifndef GGA_SERVE_HTTP_HPP
#define GGA_SERVE_HTTP_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_annotations.hpp"

namespace gga {

/** Thrown for transport-level failures (bind, connect, torn response). */
class ServeError : public std::runtime_error
{
  public:
    explicit ServeError(const std::string& why) : std::runtime_error(why) {}
};

/** One parsed request. Header names are lower-cased; values trimmed. */
struct HttpRequest
{
    std::string method; ///< "GET", "POST", ...
    std::string target; ///< raw request target ("/v1/jobs?tenant=a")
    std::string path;   ///< target up to '?', percent-decoded
    std::map<std::string, std::string> query; ///< decoded key=value pairs
    std::map<std::string, std::string> headers;
    std::string body;

    /** Query parameter or @p fallback when absent. */
    const std::string& queryOr(const std::string& key,
                               const std::string& fallback) const;
};

struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    /** Extra response headers (e.g. Retry-After), emitted verbatim. */
    std::map<std::string, std::string> headers;
};

/** The reason phrase for @p status ("Not Found"); "Unknown" otherwise. */
std::string httpStatusText(int status);

/**
 * Thread-per-connection HTTP/1.1 server. The handler is invoked for
 * every well-formed request (any method, any path) and must be
 * thread-safe; transport-level garbage is answered with 400 and a close
 * without reaching it.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest&)>;

    explicit HttpServer(Handler handler);

    /** stop()s if still running. */
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /**
     * Bind @p port on the loopback interface and start accepting.
     * Port 0 picks an ephemeral port — read it back with port().
     * @p ioTimeoutMs > 0 arms a per-connection read deadline: a client
     * that stalls mid-request for longer (slow loris) is answered 408
     * and disconnected instead of pinning its thread forever.
     * Throws ServeError on bind failure; calling start twice is an error.
     */
    void start(std::uint16_t port, unsigned ioTimeoutMs = 0);

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /**
     * Shut every connection down, join all threads, close the listener.
     * @p drainMs > 0 first closes the listener only and waits up to that
     * long for in-flight handlers to write their responses (graceful
     * drain); idle keep-alive connections don't delay it. Idempotent.
     * Handlers blocked in long-polls must be unblocked by their own
     * shutdown paths before stop() is called, or stop() waits for them.
     */
    void stop(unsigned drainMs = 0);

    /** Largest accepted request body, bytes. */
    static constexpr std::size_t kMaxBodyBytes = 64u << 20;

  private:
    void acceptLoop();
    void serveConnection(int fd);
    /** True once stop() has begun (checked between requests). */
    bool stopRequested();

    Handler handler_;
    /**
     * Written by start() before the accept thread exists and reset by
     * stop() after every thread joined, so the unlocked reads in
     * acceptLoop() are ordered by thread creation/join; stop()'s
     * ::shutdown() on it is a syscall on a stable fd, not a data race.
     */
    int listenFd_ = -1;
    std::uint16_t port_ = 0; ///< same start()-only write discipline
    unsigned ioTimeoutMs_ = 0; ///< same start()-only write discipline
    /** Requests currently inside the handler/response write (drain). */
    std::atomic<int> active_{0};
    std::thread acceptThread_;
    Mutex mu_;
    bool stopping_ GGA_GUARDED_BY(mu_) = false;
    std::set<int> connFds_ GGA_GUARDED_BY(mu_);
    std::vector<std::thread> connThreads_ GGA_GUARDED_BY(mu_);
};

/**
 * One-shot HTTP/1.1 client request to 127.0.0.1:@p port (Connection:
 * close). Returns the parsed response; throws ServeError when the
 * server is unreachable or the response is torn. Any status code is
 * returned, not thrown — protocol errors are the caller's to interpret.
 */
HttpResponse httpRequest(std::uint16_t port, const std::string& method,
                         const std::string& target,
                         const std::string& body = {},
                         const std::map<std::string, std::string>& headers = {});

} // namespace gga

#endif // GGA_SERVE_HTTP_HPP
