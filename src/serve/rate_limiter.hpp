/**
 * @file
 * TenantRateLimiter: a token bucket per tenant for POST /v1/jobs.
 *
 * Distinct from the JobTable's admission bound: that caps how much work
 * a tenant may HOLD (queued + running), this caps how fast a tenant may
 * SUBMIT. A burst of up to the bucket capacity passes immediately; past
 * it, acquire() rejects with the whole seconds to wait until a token
 * accrues — the wire layer turns that into 429 + Retry-After, which the
 * admission-bound 429 deliberately lacks.
 *
 * Buckets refill continuously at ratePerSec and are created on first
 * sight of a tenant, full (a new tenant's first burst is never
 * throttled). A rate of 0 disables the limiter entirely.
 */

#ifndef GGA_SERVE_RATE_LIMITER_HPP
#define GGA_SERVE_RATE_LIMITER_HPP

#include <chrono>
#include <map>
#include <optional>
#include <string>

#include "support/json.hpp"
#include "support/thread_annotations.hpp"

namespace gga {

class TenantRateLimiter
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * @p ratePerSec tokens accrue per second per tenant; capacity (burst)
     * is ceil(ratePerSec), at least 1. 0 disables.
     */
    explicit TenantRateLimiter(double ratePerSec);

    bool enabled() const { return rate_ > 0; }

    /**
     * Take one token from @p tenant's bucket. nullopt on success;
     * otherwise the whole seconds (>= 1) until the next token, for the
     * Retry-After header. @p now is injectable for tests.
     */
    std::optional<unsigned> acquire(const std::string& tenant,
                                    Clock::time_point now = Clock::now());

    /** {"rate_per_tenant": ..., "throttled_total": N} for /stats. */
    Json statsJson() const;

  private:
    struct Bucket
    {
        double tokens = 0;
        Clock::time_point refilled{};
    };

    const double rate_;     ///< tokens per second; <= 0 disables
    const double capacity_; ///< burst size
    mutable Mutex mu_;
    std::map<std::string, Bucket> buckets_ GGA_GUARDED_BY(mu_);
    std::uint64_t throttled_ GGA_GUARDED_BY(mu_) = 0;
};

} // namespace gga

#endif // GGA_SERVE_RATE_LIMITER_HPP
