#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "harness/figures.hpp"
#include "support/faults.hpp"
#include "serve/journal.hpp"
#include "support/json.hpp"
#include "support/log.hpp"

namespace gga {

namespace {

HttpResponse
jsonResponse(int status, Json body)
{
    return HttpResponse{status, "application/json", body.dump() + "\n",
                        {}};
}

HttpResponse
errorResponse(int status, const std::string& why)
{
    Json j = Json::object();
    j.set("error", Json(why));
    return jsonResponse(status, std::move(j));
}

/** Strict non-negative integer query parameter; nullopt on garbage. */
std::optional<std::uint64_t>
parseU64(const std::string& s)
{
    if (s.empty())
        return std::nullopt;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

/** Split "/v1/jobs/job-3/render" into segments. */
std::vector<std::string>
pathSegments(const std::string& path)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin < path.size()) {
        while (begin < path.size() && path[begin] == '/')
            ++begin;
        std::size_t end = begin;
        while (end < path.size() && path[end] != '/')
            ++end;
        if (end > begin)
            out.push_back(path.substr(begin, end - begin));
        begin = end;
    }
    return out;
}

} // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      journal_(opts_.stateDir.empty()
                   ? nullptr
                   : std::make_unique<Journal>(opts_.stateDir)),
      limiter_(opts_.ratePerTenant),
      jobs_(opts_.maxQueuedPerTenant),
      orch_(jobs_, opts_.retry, journal_.get()),
      session_(opts_.session),
      http_([this](const HttpRequest& req) { return handle(req); })
{
    if (!journal_)
        return;
    // Every state transition lands in the journal; terminal states also
    // compact the job away. Called under the JobTable lock — the lock
    // order is JobTable -> Journal, and the Journal never calls out.
    jobs_.setObserver([this](const JobSnapshot& s) {
        journal_->state(s.id, s.state, s.error);
        if (s.state == JobState::Done || s.state == JobState::Failed ||
            s.state == JobState::Canceled)
            journal_->finish(s.id);
    });
    // Replay: resume unfinished work. Remote jobs keep their recovered
    // shards (never re-executed); local jobs are deterministic, so they
    // simply re-run from scratch and land on the same bytes.
    for (const Journal::RecoveredJob& rj : journal_->recovered()) {
        JobTable::JobRestore r;
        r.id = rj.id;
        r.tenant = rj.tenant;
        r.manifest = rj.manifest;
        r.remote = rj.remote;
        r.shards = rj.shards;
        r.state = rj.state;
        r.error = rj.error;
        if (rj.remote) {
            for (const auto& [shard, part] : rj.parts) {
                (void)shard;
                for (const UnitResult& row : part.results())
                    r.rows.push_back(row);
            }
        } else {
            r.state = JobState::Queued; // re-executed below
        }
        jobs_.restore(r);
        ++recoveredJobs_;
        if (rj.remote)
            orch_.restoreJob(rj.id, rj.shards, rj.parts);
        else
            startLocalJob(rj.id, rj.manifest);
    }
    if (recoveredJobs_ > 0)
        GGA_INFORM("serve: recovered ", recoveredJobs_,
                   " unfinished job(s) from ", opts_.stateDir);
}

Service::~Service()
{
    stop();
}

void
Service::start()
{
    http_.start(opts_.port, opts_.ioTimeoutMs);
    ticker_ = std::thread([this] {
        while (!stopping_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts_.tickMs));
            orch_.tick();
        }
    });
    GGA_INFORM("serve: listening on 127.0.0.1:", port());
}

void
Service::stop()
{
    if (stopping_.exchange(true))
        return;
    jobs_.shutdown(); // wake long-polls so connections can drain
    http_.stop(opts_.drainMs);
    if (ticker_.joinable())
        ticker_.join();
    if (journal_)
        journal_->sync();
}

HttpResponse
Service::handle(const HttpRequest& req)
{
    const std::vector<std::string> seg = pathSegments(req.path);
    try {
        if (seg.size() == 1 && seg[0] == "healthz") {
            if (req.method != "GET")
                return errorResponse(405, "GET only");
            Json j = Json::object();
            j.set("status", Json("ok"));
            return jsonResponse(200, std::move(j));
        }
        if (seg.size() == 1 && seg[0] == "stats") {
            if (req.method != "GET")
                return errorResponse(405, "GET only");
            return statsResponse();
        }
        if (seg.size() >= 2 && seg[0] == "v1" && seg[1] == "jobs") {
            if (seg.size() == 2) {
                if (req.method == "POST")
                    return submitJob(req);
                if (req.method == "GET") {
                    Json arr = Json::array();
                    for (const JobSnapshot& s :
                         jobs_.list(req.queryOr("tenant", "")))
                        arr.push(s.toJson());
                    Json j = Json::object();
                    j.set("jobs", std::move(arr));
                    return jsonResponse(200, std::move(j));
                }
                return errorResponse(405, "GET or POST");
            }
            const std::string& id = seg[2];
            if (seg.size() == 3) {
                if (req.method == "GET")
                    return jobStatus(req, id);
                if (req.method == "DELETE") {
                    if (!jobs_.snapshot(id))
                        return errorResponse(404, "no such job: " + id);
                    jobs_.cancel(id);
                    orch_.forgetJob(id);
                    return jsonResponse(200,
                                        jobs_.snapshot(id)->toJson());
                }
                return errorResponse(405, "GET or DELETE");
            }
            if (seg.size() == 4 && req.method == "GET" &&
                seg[3] == "results")
                return jobResults(req, id);
            if (seg.size() == 4 && req.method == "GET" &&
                seg[3] == "render")
                return jobRender(req, id);
            return errorResponse(404, "unknown endpoint");
        }
        if (seg.size() == 3 && seg[0] == "v1" && seg[1] == "workers") {
            if (req.method != "POST")
                return errorResponse(405, "POST only");
            if (!opts_.workerToken.empty()) {
                const auto it = req.headers.find("x-gga-worker-token");
                if (it == req.headers.end() ||
                    it->second != opts_.workerToken)
                    return errorResponse(
                        401, "missing or invalid worker token");
            }
            return workerEndpoint(req, seg[2]);
        }
        return errorResponse(404, "unknown endpoint");
    } catch (const JsonError& err) {
        return errorResponse(400, std::string("bad JSON: ") + err.what());
    } catch (const EvalError& err) {
        return errorResponse(400, err.what());
    } catch (const AdmissionError& err) {
        return errorResponse(429, err.what());
    }
}

HttpResponse
Service::submitJob(const HttpRequest& req)
{
    const Json body = Json::parse(req.body);
    std::string tenant;
    if (const Json* t = body.find("tenant"))
        tenant = t->asString();
    if (tenant.empty()) {
        const auto it = req.headers.find("x-gga-tenant");
        tenant = it == req.headers.end() ? "default" : it->second;
    }

    // Rate limit before any parsing work: a tenant over its sustained
    // submit rate gets 429 + Retry-After (the admission-bound 429 below
    // carries no Retry-After — that one clears when a job finishes, not
    // on a clock).
    if (const std::optional<unsigned> retryAfter = limiter_.acquire(tenant)) {
        HttpResponse r = errorResponse(
            429, "tenant \"" + tenant + "\" is over its submit rate");
        r.headers["Retry-After"] = std::to_string(*retryAfter);
        return r;
    }

    const Json* plan = body.find("plan");
    const Json* manifestJson = body.find("manifest");
    if (!!plan == !!manifestJson)
        return errorResponse(
            400, "body needs exactly one of \"plan\" or \"manifest\"");
    Manifest manifest;
    if (plan) {
        manifest.add(WorkUnit::fromJson(*plan));
    } else {
        manifest = Manifest::fromJson(*manifestJson);
        if (manifest.empty())
            return errorResponse(400, "manifest has no units");
    }

    // Scheduling lane: single plans are someone waiting on one result
    // (interactive); manifests are bulk sweeps (batch). An explicit
    // "priority" wins either way, and lands in the manifest's meta so it
    // survives the journal and a crash replay.
    Lane lane = plan ? Lane::Interactive : Lane::Batch;
    if (const Json* p = body.find("priority")) {
        const std::optional<Lane> parsed = parseLane(p->asString());
        if (!parsed)
            return errorResponse(400,
                                 "priority must be \"interactive\" or "
                                 "\"batch\", got \"" +
                                     p->asString() + "\"");
        lane = *parsed;
    }
    manifest.meta["priority"] = laneName(lane);

    std::string execution = "local";
    if (const Json* e = body.find("execution"))
        execution = e->asString();
    if (execution != "local" && execution != "remote")
        return errorResponse(400, "execution must be \"local\" or "
                                  "\"remote\", got \"" +
                                      execution + "\"");
    std::size_t shards = 0;
    if (execution == "remote") {
        shards = 2;
        if (const Json* s = body.find("shards"))
            shards = static_cast<std::size_t>(s->asU64());
        if (shards < 1 || shards > manifest.size())
            return errorResponse(
                400, "shards must be in [1, " +
                         std::to_string(manifest.size()) + "]");
    } else if (body.find("shards")) {
        return errorResponse(400, "shards applies to remote jobs only");
    }

    const std::string id =
        jobs_.create(tenant, manifest, execution == "remote", shards);
    if (journal_)
        journal_->admit(id, tenant, execution == "remote", shards,
                        manifest);
    if (execution == "remote") {
        orch_.enqueueJob(id, shards);
    } else {
        startLocalJob(id, manifest);
    }
    GGA_INFORM("serve: job ", id, " (", tenant, ", ", execution, ", ",
               manifest.size(), " units) admitted");
    return jsonResponse(202, jobs_.snapshot(id)->toJson());
}

void
Service::startLocalJob(const std::string& id, const Manifest& manifest)
{
    submitManifestStreamed(
        session_, manifest,
        [this, id](const UnitEvent& ev) { jobs_.unitDone(id, ev); });
}

HttpResponse
Service::jobStatus(const HttpRequest& req, const std::string& id)
{
    const std::optional<std::uint64_t> waitMs =
        parseU64(req.queryOr("wait_ms", "0"));
    const std::optional<std::uint64_t> since =
        parseU64(req.queryOr("since", "0"));
    if (!waitMs || !since)
        return errorResponse(400, "wait_ms/since must be integers");
    std::optional<JobSnapshot> snap =
        *waitMs == 0
            ? jobs_.snapshot(id)
            : jobs_.waitForChange(
                  id, *since,
                  static_cast<unsigned>(std::min<std::uint64_t>(
                      *waitMs, 60000)));
    if (!snap)
        return errorResponse(404, "no such job: " + id);
    return jsonResponse(200, snap->toJson());
}

HttpResponse
Service::jobResults(const HttpRequest& req, const std::string& id)
{
    const std::optional<std::uint64_t> after =
        parseU64(req.queryOr("after", "0"));
    if (!after)
        return errorResponse(400, "after must be an integer");
    const std::optional<JobTable::RowsPage> page =
        jobs_.resultsAfter(id, static_cast<std::size_t>(*after));
    if (!page)
        return errorResponse(404, "no such job: " + id);
    Json rows = Json::array();
    for (const UnitResult& r : page->rows)
        rows.push(r.toJson());
    Json j = Json::object();
    j.set("rows", std::move(rows));
    j.set("next", Json(static_cast<std::uint64_t>(page->next)));
    j.set("done", Json(page->terminal));
    return jsonResponse(200, std::move(j));
}

HttpResponse
Service::jobRender(const HttpRequest& req, const std::string& id)
{
    const std::optional<JobSnapshot> snap = jobs_.snapshot(id);
    if (!snap)
        return errorResponse(404, "no such job: " + id);
    if (snap->state != JobState::Done)
        return errorResponse(409, "job " + id + " is " +
                                      jobStateName(snap->state) +
                                      "; render needs done");
    const std::optional<ResultSet> results = jobs_.finalResults(id);
    const std::optional<Manifest> manifest = jobs_.manifestOf(id);
    if (!results || !manifest)
        return errorResponse(404, "no such job: " + id);
    // Throws EvalError (-> 400) when the manifest carries no figure
    // meta, e.g. a single-plan job.
    const FigureSet set = figureSetFromManifest(*manifest);
    const bool csv = req.queryOr("csv", "0") == "1";
    return HttpResponse{200, "text/plain",
                        renderFigure(set, *results, csv), {}};
}

HttpResponse
Service::workerEndpoint(const HttpRequest& req, const std::string& action)
{
    const Json body = Json::parse(req.body);
    if (action == "register") {
        std::string name;
        if (const Json* n = body.find("name"))
            name = n->asString();
        Json j = Json::object();
        j.set("worker", Json(orch_.registerWorker(name)));
        j.set("lease_ms", Json(static_cast<std::uint64_t>(
                              opts_.retry.leaseMs)));
        return jsonResponse(200, std::move(j));
    }
    const Json* workerJson = body.find("worker");
    if (!workerJson)
        return errorResponse(400, "body needs \"worker\"");
    const std::string worker = workerJson->asString();
    if (!orch_.knownWorker(worker))
        return errorResponse(404, "unknown worker: " + worker);

    if (action == "poll") {
        const std::optional<Assignment> a = orch_.poll(worker);
        if (!a)
            return HttpResponse{204, "application/json", "", {}};
        Json j = Json::object();
        j.set("job", Json(a->job));
        j.set("shard", Json(static_cast<std::uint64_t>(a->shard)));
        j.set("shard_count",
              Json(static_cast<std::uint64_t>(a->shardCount)));
        j.set("manifest", a->manifest.toJson());
        return jsonResponse(200, std::move(j));
    }
    if (action == "parts") {
        const Json* jobJson = body.find("job");
        const Json* shardJson = body.find("shard");
        const Json* resultsJson = body.find("results");
        if (!jobJson || !shardJson || !resultsJson)
            return errorResponse(
                400, "body needs \"job\", \"shard\", \"results\"");
        ResultSet part = ResultSet::fromJson(*resultsJson);
        std::optional<std::uint64_t> checksum;
        if (const Json* c = body.find("checksum"))
            checksum = c->asU64();
        std::string why;
        const Orchestrator::PartOutcome outcome = orch_.partArrived(
            worker, jobJson->asString(),
            static_cast<std::size_t>(shardJson->asU64()), std::move(part),
            &why, checksum);
        switch (outcome) {
        case Orchestrator::PartOutcome::Accepted: {
            Json j = Json::object();
            j.set("status", Json("accepted"));
            return jsonResponse(200, std::move(j));
        }
        case Orchestrator::PartOutcome::Duplicate: {
            Json j = Json::object();
            j.set("status", Json("duplicate"));
            return jsonResponse(200, std::move(j));
        }
        case Orchestrator::PartOutcome::Rejected:
            return errorResponse(400, "part rejected: " + why);
        case Orchestrator::PartOutcome::Unknown:
            return errorResponse(404, "unknown job/shard");
        }
        return errorResponse(500, "unreachable");
    }
    return errorResponse(404, "unknown worker action: " + action);
}

HttpResponse
Service::statsResponse()
{
    const GraphStore::Counters gc = session_.graphs().counters();
    Json store = Json::object();
    store.set("hits", Json(gc.hits));
    store.set("misses", Json(gc.misses));
    store.set("evictions", Json(gc.evictions));
    store.set("entries", Json(static_cast<std::uint64_t>(gc.entries)));
    store.set("resident_bytes",
              Json(static_cast<std::uint64_t>(gc.residentBytes)));
    store.set("budget_bytes",
              Json(static_cast<std::uint64_t>(gc.budgetBytes)));

    const TaskPool::Stats es = session_.executorStats();
    Json exec = Json::object();
    exec.set("threads", Json(session_.threads()));
    exec.set("queue_depth",
             Json(static_cast<std::uint64_t>(session_.queueDepth())));
    exec.set("running", Json(session_.runningTasks()));
    exec.set("completed_total", Json(session_.completedTasks()));
    exec.set("interactive_depth",
             Json(static_cast<std::uint64_t>(es.interactiveDepth)));
    exec.set("batch_depth", Json(static_cast<std::uint64_t>(es.batchDepth)));
    exec.set("steals_total", Json(es.stealsTotal));
    exec.set("steal_failures", Json(es.stealFailures));
    exec.set("pinned", Json(es.pinned));
    exec.set("batch_niced", Json(es.batchNiced));

    Json j = jobs_.statsJson();
    j.set("graph_store", std::move(store));
    j.set("executor", std::move(exec));
    j.set("orchestrator", orch_.statsJson());
    if (journal_) {
        Json jj = journal_->statsJson();
        jj.set("recovered_jobs_total", Json(recoveredJobs_));
        j.set("journal", std::move(jj));
    }
    if (limiter_.enabled())
        j.set("rate_limiter", limiter_.statsJson());
    j.set("faults", faults::statsJson());
    return jsonResponse(200, std::move(j));
}

} // namespace gga
