#include "serve/worker_client.hpp"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "eval/run.hpp"
#include "support/faults.hpp"
#include "serve/http.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace gga {

std::size_t
runWorkerClient(Session& session, const WorkerClientOptions& opts)
{
    GGA_ASSERT(opts.port != 0, "worker client needs a service port");

    std::map<std::string, std::string> auth;
    if (!opts.token.empty())
        auth["X-GGA-Worker-Token"] = opts.token;

    Json reg = Json::object();
    reg.set("name", Json(opts.name));
    const HttpResponse regResp = httpRequest(
        opts.port, "POST", "/v1/workers/register", reg.dump(), auth);
    if (regResp.status != 200)
        throw ServeError("worker registration failed (HTTP " +
                         std::to_string(regResp.status) + ")");
    const std::string worker =
        Json::parse(regResp.body).at("worker").asString();
    GGA_INFORM("worker ", worker, ": connected to 127.0.0.1:", opts.port);

    Json pollBody = Json::object();
    pollBody.set("worker", Json(worker));
    const std::string poll = pollBody.dump();

    std::size_t posted = 0;
    unsigned assignments = 0;
    auto lastWork = std::chrono::steady_clock::now();
    while (true) {
        HttpResponse resp;
        try {
            resp = httpRequest(opts.port, "POST", "/v1/workers/poll",
                               poll, auth);
        } catch (const ServeError&) {
            GGA_INFORM("worker ", worker, ": server gone, exiting");
            return posted;
        }
        if (resp.status == 204) {
            if (opts.idleExitMs != 0 &&
                std::chrono::steady_clock::now() - lastWork >
                    std::chrono::milliseconds(opts.idleExitMs)) {
                GGA_INFORM("worker ", worker, ": idle, exiting");
                return posted;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.pollMs));
            continue;
        }
        if (resp.status != 200) {
            GGA_WARN("worker ", worker, ": poll returned HTTP ",
                     resp.status, ", exiting");
            return posted;
        }

        const Json a = Json::parse(resp.body);
        const std::string job = a.at("job").asString();
        const std::uint64_t shard = a.at("shard").asU64();
        ++assignments;
        if (opts.exitAfterAssignments != 0 &&
            assignments >= opts.exitAfterAssignments) {
            // Fault injection: die holding the lease, part never posted.
            GGA_INFORM("worker ", worker, ": crash hook firing on "
                       "assignment ", assignments);
            ::_exit(kCrashExitCode);
        }
        const Manifest manifest = Manifest::fromJson(a.at("manifest"));
        GGA_INFORM("worker ", worker, ": running shard ", shard + 1, "/",
                   a.at("shard_count").asU64(), " of ", job, " (",
                   manifest.size(), " units)");
        ResultSet results = runManifest(session, manifest);

        // Fault injection: drop the last row BEFORE the checksum is
        // taken — the checksum matches the thinned payload, so the
        // server's sub-manifest verification is what catches it.
        if (faults::fire("worker.part.thin") && !results.results().empty()) {
            Json arr = Json::array();
            const std::vector<UnitResult>& rows = results.results();
            for (std::size_t i = 0; i + 1 < rows.size(); ++i)
                arr.push(rows[i].toJson());
            Json thin = Json::object();
            thin.set("results", std::move(arr));
            results = ResultSet::fromJson(thin);
        }

        std::string canon = results.toJson().dump();
        const std::uint64_t checksum = fnv1a(canon.data(), canon.size());
        // Fault injection: corrupt the payload AFTER the checksum, the
        // bit-rot-in-transit case the server's checksum check catches.
        faults::corrupt("worker.part.corrupt", canon);

        std::string body = "{\"worker\":\"" + worker + "\",\"job\":\"" +
                           job + "\",\"shard\":" + std::to_string(shard) +
                           ",\"checksum\":" + std::to_string(checksum) +
                           ",\"results\":" + canon + "}";
        // Fault injection: tear the request mid-body (connection lost).
        faults::truncate("worker.part.truncate", body);
        try {
            const HttpResponse pr = httpRequest(
                opts.port, "POST", "/v1/workers/parts", body, auth);
            if (pr.status == 200)
                ++posted;
            else
                GGA_WARN("worker ", worker, ": part for ", job, " shard ",
                         shard, " answered HTTP ", pr.status);
        } catch (const ServeError& err) {
            GGA_WARN("worker ", worker, ": posting part failed: ",
                     err.what());
            return posted;
        }
        lastWork = std::chrono::steady_clock::now();
    }
}

} // namespace gga
