#include "serve/rate_limiter.hpp"

#include <algorithm>
#include <cmath>

namespace gga {

TenantRateLimiter::TenantRateLimiter(double ratePerSec)
    : rate_(ratePerSec), capacity_(std::max(1.0, std::ceil(ratePerSec)))
{
}

std::optional<unsigned>
TenantRateLimiter::acquire(const std::string& tenant, Clock::time_point now)
{
    if (!enabled())
        return std::nullopt;
    MutexLock lock(mu_);
    auto [it, inserted] = buckets_.try_emplace(tenant);
    Bucket& b = it->second;
    if (inserted) {
        b.tokens = capacity_; // a new tenant starts with a full burst
        b.refilled = now;
    } else {
        const double elapsed =
            std::chrono::duration<double>(now - b.refilled).count();
        if (elapsed > 0) {
            b.tokens = std::min(capacity_, b.tokens + elapsed * rate_);
            b.refilled = now;
        }
    }
    if (b.tokens >= 1.0) {
        b.tokens -= 1.0;
        return std::nullopt;
    }
    ++throttled_;
    const double wait = (1.0 - b.tokens) / rate_;
    return static_cast<unsigned>(
        std::max(1.0, std::ceil(std::min(wait, 3600.0))));
}

Json
TenantRateLimiter::statsJson() const
{
    MutexLock lock(mu_);
    Json j = Json::object();
    j.set("rate_per_tenant", Json(rate_));
    j.set("throttled_total", Json(throttled_));
    return j;
}

} // namespace gga
