#include "serve/orchestrator.hpp"

#include <algorithm>

#include "support/faults.hpp"
#include "serve/journal.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace gga {

unsigned
RetryPolicy::backoffMs(unsigned attempt) const
{
    if (attempt == 0)
        return 0;
    unsigned delay = retryBaseMs;
    for (unsigned i = 1; i < attempt && delay < retryCapMs; ++i)
        delay *= 2;
    return std::min(delay, retryCapMs);
}

std::string
Orchestrator::registerWorker(const std::string& name)
{
    MutexLock lock(mu_);
    Worker w;
    w.name = name.empty() ? "worker" : name;
    w.lastSeen = Clock::now();
    const std::string id = "w-" + std::to_string(++nextWorker_);
    workers_.emplace(id, std::move(w));
    GGA_INFORM("serve: worker ", id, " (", name, ") registered");
    return id;
}

bool
Orchestrator::knownWorker(const std::string& worker) const
{
    MutexLock lock(mu_);
    return workers_.count(worker) != 0;
}

bool
Orchestrator::enqueueJob(const std::string& jobId, std::size_t shardCount)
{
    GGA_ASSERT(shardCount >= 1, "remote job needs at least one shard");
    const std::optional<Manifest> manifest = jobs_.manifestOf(jobId);
    if (!manifest)
        return false;
    MutexLock lock(mu_);
    RemoteJob rj;
    rj.seq = ++nextJobSeq_;
    rj.manifest = *manifest;
    rj.shards.resize(shardCount);
    remote_.emplace(jobId, std::move(rj));
    return true;
}

std::optional<Assignment>
Orchestrator::poll(const std::string& worker)
{
    MutexLock lock(mu_);
    const auto wit = workers_.find(worker);
    if (wit == workers_.end())
        return std::nullopt;
    const auto now = Clock::now();
    wit->second.lastSeen = now;

    // Oldest job first, lowest shard index within it: deterministic and
    // fair, and a retried shard naturally lands on whichever worker
    // polls next (usually not the one that lost it).
    const RemoteJob* bestJob = nullptr;
    std::string bestId;
    std::size_t bestShard = 0;
    for (const auto& [jobId, rj] : remote_) {
        if (bestJob && rj.seq >= bestJob->seq)
            continue;
        for (std::size_t s = 0; s < rj.shards.size(); ++s) {
            const Shard& sh = rj.shards[s];
            if (sh.state == ShardState::Waiting && sh.notBefore <= now) {
                bestJob = &rj;
                bestId = jobId;
                bestShard = s;
                break;
            }
        }
    }
    if (!bestJob)
        return std::nullopt;

    RemoteJob& rj = remote_.at(bestId);
    Shard& sh = rj.shards[bestShard];
    sh.state = ShardState::Assigned;
    sh.worker = worker;
    sh.deadline = now + std::chrono::milliseconds(policy_.leaseMs);
    ++assignments_;

    Assignment a;
    a.job = bestId;
    a.shard = bestShard;
    a.shardCount = rj.shards.size();
    a.manifest = rj.manifest.shard(bestShard, rj.shards.size());
    jobs_.markRunning(bestId);
    GGA_INFORM("serve: shard ", bestShard + 1, "/", rj.shards.size(),
               " of ", bestId, " -> ", worker);
    return a;
}

Orchestrator::PartOutcome
Orchestrator::partArrived(const std::string& worker,
                          const std::string& jobId, std::size_t shard,
                          ResultSet part, std::string* error,
                          std::optional<std::uint64_t> checksum)
{
    // Canonical compact JSON of the part, computed outside the lock: the
    // checksum input and (verbatim) what the journal persists. The key
    // coverage check alone would accept a part whose metric VALUES were
    // corrupted in transit; the checksum closes that hole.
    std::string canon;
    std::string preVerifyError;
    if (checksum || journal_ != nullptr)
        canon = part.toJson().dump();
    if (checksum &&
        fnv1a(canon.data(), canon.size()) != *checksum)
        preVerifyError = "part checksum mismatch (corrupted in transit)";

    std::optional<Finalize> fin;
    PartOutcome outcome;
    {
        MutexLock lock(mu_);
        outcome = partArrivedLocked(worker, jobId, shard, std::move(part),
                                    preVerifyError, error, fin);
    }
    // Journal before finalize: if the process dies during the merge the
    // part is already durable and the restart redoes only the merge.
    if (outcome == PartOutcome::Accepted && journal_ != nullptr)
        journal_->part(jobId, shard, canon);
    if (fin)
        finalizeJob(jobId, std::move(*fin));
    return outcome;
}

void
Orchestrator::finalizeJob(const std::string& jobId, Finalize fin)
{
    // Strict merge + full-manifest verification — the same checks
    // gga_merge applies, so a lost or doubled shard can never produce a
    // quietly wrong table. Runs outside mu_ so polls and other parts
    // keep flowing during the merge.
    try {
        ResultSet merged = ResultSet::merge(fin.parts);
        merged.verifyComplete(fin.manifest);
        jobs_.finishRemote(jobId, std::move(merged));
    } catch (const EvalError& err) {
        jobs_.fail(jobId, std::string("merge failed: ") + err.what());
    }
}

void
Orchestrator::restoreJob(const std::string& jobId, std::size_t shardCount,
                         const std::map<std::size_t, ResultSet>& parts)
{
    GGA_ASSERT(shardCount >= 1, "remote job needs at least one shard");
    const std::optional<Manifest> manifest = jobs_.manifestOf(jobId);
    if (!manifest)
        return;
    std::optional<Finalize> fin;
    std::size_t restored = 0;
    {
        MutexLock lock(mu_);
        RemoteJob rj;
        rj.seq = ++nextJobSeq_;
        rj.manifest = *manifest;
        rj.shards.resize(shardCount);
        for (const auto& [shard, part] : parts) {
            if (shard >= shardCount)
                continue;
            Shard& sh = rj.shards[shard];
            sh.state = ShardState::Done;
            sh.part = part;
            ++restored;
        }
        recoveredParts_ += restored;
        if (restored == shardCount) {
            // The crash hit between the last part and the job's done
            // record: nothing left to execute, just merge and finish.
            Finalize f;
            f.parts.reserve(shardCount);
            for (Shard& s : rj.shards)
                f.parts.push_back(std::move(*s.part));
            f.manifest = rj.manifest;
            fin = std::move(f);
        } else {
            remote_.emplace(jobId, std::move(rj));
        }
    }
    GGA_WARN("serve: restored ", jobId, " with ", restored, "/",
             shardCount, " shard(s) already done");
    if (fin)
        finalizeJob(jobId, std::move(*fin));
}

Orchestrator::PartOutcome
Orchestrator::partArrivedLocked(const std::string& worker,
                                const std::string& jobId,
                                std::size_t shard, ResultSet part,
                                const std::string& preVerifyError,
                                std::string* error,
                                std::optional<Finalize>& fin)
{
    if (workers_.count(worker) == 0)
        return PartOutcome::Unknown;
    workers_.at(worker).lastSeen = Clock::now();
    const auto jit = remote_.find(jobId);
    if (jit == remote_.end() || shard >= jit->second.shards.size())
        return PartOutcome::Unknown;
    RemoteJob& rj = jit->second;
    Shard& sh = rj.shards[shard];
    if (sh.state == ShardState::Done) {
        ++duplicateParts_;
        GGA_INFORM("serve: duplicate part for shard ", shard + 1, "/",
                   rj.shards.size(), " of ", jobId, " from ", worker,
                   " discarded");
        return PartOutcome::Duplicate;
    }

    // Verify against the shard's sub-manifest: a worker must return
    // exactly the units it was assigned, nothing thinner, nothing else.
    // A checksum mismatch found by the caller fails the shard the same
    // way — the payload can't be trusted at all.
    std::string why = preVerifyError;
    if (why.empty()) {
        try {
            part.verifyComplete(
                rj.manifest.shard(shard, rj.shards.size()));
        } catch (const EvalError& err) {
            why = err.what();
        }
    }
    if (!why.empty()) {
        ++rejectedParts_;
        ++sh.attempts;
        if (error)
            *error = why;
        if (sh.attempts >= policy_.maxAttempts) {
            failJobLocked(jobId, "shard " + std::to_string(shard) +
                                     " exhausted retries: " + why);
            return PartOutcome::Rejected;
        }
        sh.state = ShardState::Waiting;
        sh.worker.clear();
        sh.notBefore = Clock::now() + std::chrono::milliseconds(
                                          policy_.backoffMs(sh.attempts));
        ++retries_;
        GGA_WARN("serve: part for shard ", shard + 1, "/",
                 rj.shards.size(), " of ", jobId, " rejected (", why,
                 "); retrying");
        return PartOutcome::Rejected;
    }

    sh.part = std::move(part);
    sh.state = ShardState::Done;
    sh.worker.clear();
    ++completedShards_;
    jobs_.addRemoteProgress(jobId, sh.part->results());

    const bool allDone =
        std::all_of(rj.shards.begin(), rj.shards.end(),
                    [](const Shard& s) { return s.state == ShardState::Done; });
    if (!allDone)
        return PartOutcome::Accepted;

    // Hand the parts to the caller's unlocked finalize step.
    Finalize f;
    f.parts.reserve(rj.shards.size());
    for (Shard& s : rj.shards)
        f.parts.push_back(std::move(*s.part));
    f.manifest = rj.manifest;
    remote_.erase(jit);
    fin = std::move(f);
    return PartOutcome::Accepted;
}

void
Orchestrator::tick()
{
    std::vector<std::pair<std::string, std::string>> failures;
    {
        MutexLock lock(mu_);
        const auto now = Clock::now();
        for (auto& [jobId, rj] : remote_) {
            for (std::size_t s = 0; s < rj.shards.size(); ++s) {
                Shard& sh = rj.shards[s];
                if (sh.state != ShardState::Assigned)
                    continue;
                // Fault injection: force this lease to expire now, as if
                // the worker had gone silent past the deadline.
                const bool forced = faults::fire("lease.expire");
                if (sh.deadline > now && !forced)
                    continue;
                ++expiredLeases_;
                ++sh.attempts;
                GGA_WARN("serve: lease expired on shard ", s + 1, "/",
                         rj.shards.size(), " of ", jobId, " (worker ",
                         sh.worker, ", attempt ", sh.attempts, ")");
                if (sh.attempts >= policy_.maxAttempts) {
                    failures.emplace_back(
                        jobId, "shard " + std::to_string(s) +
                                   " exhausted " +
                                   std::to_string(policy_.maxAttempts) +
                                   " attempts (lost workers)");
                    break;
                }
                sh.state = ShardState::Waiting;
                sh.worker.clear();
                sh.notBefore =
                    now + std::chrono::milliseconds(
                              policy_.backoffMs(sh.attempts));
                ++retries_;
            }
        }
        for (const auto& [jobId, why] : failures) {
            (void)why;
            remote_.erase(jobId);
        }
    }
    for (const auto& [jobId, why] : failures)
        jobs_.fail(jobId, why);
}

void
Orchestrator::forgetJob(const std::string& jobId)
{
    MutexLock lock(mu_);
    remote_.erase(jobId);
}

Json
Orchestrator::statsJson() const
{
    MutexLock lock(mu_);
    std::uint64_t assigned = 0, waiting = 0;
    for (const auto& [jobId, rj] : remote_) {
        (void)jobId;
        for (const Shard& s : rj.shards) {
            if (s.state == ShardState::Assigned)
                ++assigned;
            else if (s.state == ShardState::Waiting)
                ++waiting;
        }
    }
    Json j = Json::object();
    j.set("workers", Json(static_cast<std::uint64_t>(workers_.size())));
    j.set("jobs_in_flight",
          Json(static_cast<std::uint64_t>(remote_.size())));
    j.set("shards_assigned", Json(assigned));
    j.set("shards_waiting", Json(waiting));
    j.set("assignments_total", Json(assignments_));
    j.set("completed_shards_total", Json(completedShards_));
    j.set("retries_total", Json(retries_));
    j.set("expired_leases_total", Json(expiredLeases_));
    j.set("rejected_parts_total", Json(rejectedParts_));
    j.set("duplicate_parts_total", Json(duplicateParts_));
    j.set("recovered_parts_total", Json(recoveredParts_));
    return j;
}

void
Orchestrator::failJobLocked(const std::string& jobId,
                            const std::string& why)
{
    remote_.erase(jobId);
    // JobTable has its own lock; safe to call while holding mu_ because
    // JobTable never calls back into the Orchestrator.
    jobs_.fail(jobId, why);
}

} // namespace gga
