#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "support/faults.hpp"
#include "support/log.hpp"

namespace gga {

namespace {

enum class RecvResult
{
    Ok,      ///< appended at least one byte
    Closed,  ///< EOF or hard error: the peer is gone
    TimedOut ///< SO_RCVTIMEO elapsed with no bytes (slow loris)
};

/** recv() the next chunk into @p buf. */
RecvResult
recvSome(int fd, std::string& buf)
{
    if (faults::fire("http.read.fail"))
        return RecvResult::Closed;
    char chunk[4096];
    std::size_t want = sizeof chunk;
    if (faults::fire("http.read.short"))
        want = 1; // exercise the caller's accumulate loop
    const ssize_t n = ::recv(fd, chunk, want, 0);
    if (n == 0)
        return RecvResult::Closed;
    if (n < 0)
        return (errno == EAGAIN || errno == EWOULDBLOCK)
                   ? RecvResult::TimedOut
                   : RecvResult::Closed;
    buf.append(chunk, static_cast<std::size_t>(n));
    return RecvResult::Ok;
}

/** Blocking full write; false on error (peer gone). */
bool
sendAll(int fd, std::string_view data)
{
    if (faults::fire("http.write.fail"))
        return false;
    while (!data.empty()) {
        const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

std::string
toLower(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
trim(std::string_view s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    return std::string(s.substr(b, e - b));
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** %XX and '+' decoding; a malformed escape is kept literally. */
std::string
percentDecode(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '+') {
            out.push_back(' ');
        } else if (s[i] == '%' && i + 2 < s.size() &&
                   hexDigit(s[i + 1]) >= 0 && hexDigit(s[i + 2]) >= 0) {
            out.push_back(static_cast<char>(hexDigit(s[i + 1]) * 16 +
                                            hexDigit(s[i + 2])));
            i += 2;
        } else {
            out.push_back(s[i]);
        }
    }
    return out;
}

void
parseQuery(std::string_view qs, std::map<std::string, std::string>& out)
{
    while (!qs.empty()) {
        const std::size_t amp = qs.find('&');
        const std::string_view pair = qs.substr(0, amp);
        const std::size_t eq = pair.find('=');
        if (!pair.empty()) {
            if (eq == std::string_view::npos)
                out[percentDecode(pair)] = "";
            else
                out[percentDecode(pair.substr(0, eq))] =
                    percentDecode(pair.substr(eq + 1));
        }
        if (amp == std::string_view::npos)
            break;
        qs.remove_prefix(amp + 1);
    }
}

/**
 * Parse the head (request line + headers) of @p buf, which must contain
 * the terminating blank line at @p headEnd. Returns false on malformed
 * input.
 */
bool
parseHead(std::string_view head, HttpRequest& req)
{
    const std::size_t lineEnd = head.find("\r\n");
    if (lineEnd == std::string_view::npos)
        return false;
    const std::string_view line = head.substr(0, lineEnd);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos)
        return false;
    req.method = std::string(line.substr(0, sp1));
    req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    const std::string_view version = line.substr(sp2 + 1);
    if (req.method.empty() || req.target.empty() ||
        (version != "HTTP/1.1" && version != "HTTP/1.0"))
        return false;

    const std::size_t qmark = req.target.find('?');
    req.path = percentDecode(std::string_view(req.target).substr(0, qmark));
    if (qmark != std::string::npos)
        parseQuery(std::string_view(req.target).substr(qmark + 1),
                   req.query);

    std::string_view rest = head.substr(lineEnd + 2);
    while (!rest.empty()) {
        const std::size_t eol = rest.find("\r\n");
        const std::string_view hline =
            rest.substr(0, eol == std::string_view::npos ? rest.size() : eol);
        if (!hline.empty()) {
            const std::size_t colon = hline.find(':');
            if (colon == std::string_view::npos)
                return false;
            req.headers[toLower(std::string(hline.substr(0, colon)))] =
                trim(hline.substr(colon + 1));
        }
        if (eol == std::string_view::npos)
            break;
        rest.remove_prefix(eol + 2);
    }
    return true;
}

std::string
formatResponse(const HttpResponse& r, bool close)
{
    std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                      httpStatusText(r.status) + "\r\n";
    if (!r.body.empty() || r.status != 204)
        out += "Content-Type: " + r.contentType + "\r\n";
    for (const auto& [name, value] : r.headers)
        out += name + ": " + value + "\r\n";
    out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
    out += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
    out += "\r\n";
    out += r.body;
    return out;
}

} // namespace

const std::string&
HttpRequest::queryOr(const std::string& key,
                     const std::string& fallback) const
{
    const auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
}

std::string
httpStatusText(int status)
{
    switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
    }
}

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler))
{
    GGA_ASSERT(handler_, "HttpServer needs a handler");
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start(std::uint16_t port, unsigned ioTimeoutMs)
{
    GGA_ASSERT(listenFd_ < 0, "HttpServer already started");
    ioTimeoutMs_ = ioTimeoutMs;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw ServeError(std::string("socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        throw ServeError("bind 127.0.0.1:" + std::to_string(port) + ": " +
                         why);
    }
    if (::listen(fd, 64) < 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        throw ServeError("listen: " + why);
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        throw ServeError("getsockname: " + why);
    }
    port_ = ntohs(addr.sin_port);
    listenFd_ = fd;
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
HttpServer::stop(unsigned drainMs)
{
    {
        MutexLock lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        // Unblock accept(): no new connections from here on.
        if (listenFd_ >= 0)
            ::shutdown(listenFd_, SHUT_RDWR);
    }
    // Graceful drain: requests already inside the handler get a bounded
    // window to write their responses. Idle keep-alive connections hold
    // no active request, so they never delay this loop.
    if (drainMs > 0) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(drainMs);
        while (active_.load(std::memory_order_acquire) > 0 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    {
        MutexLock lock(mu_);
        // Unblock every connection's recv().
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::thread> threads;
    {
        MutexLock lock(mu_);
        threads.swap(connThreads_);
    }
    for (std::thread& t : threads)
        if (t.joinable())
            t.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

bool
HttpServer::stopRequested()
{
    MutexLock lock(mu_);
    return stopping_;
}

void
HttpServer::acceptLoop()
{
    while (true) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            const int err = errno; // before any lock/syscall clobbers it
            if (stopRequested())
                return;
            if (err == EINTR || err == ECONNABORTED)
                continue;
            return; // listener gone
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        MutexLock lock(mu_);
        if (stopping_) {
            ::close(fd);
            return;
        }
        connFds_.insert(fd);
        connThreads_.emplace_back([this, fd] { serveConnection(fd); });
    }
}

void
HttpServer::serveConnection(int fd)
{
    if (ioTimeoutMs_ > 0) {
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(ioTimeoutMs_ / 1000);
        tv.tv_usec = static_cast<suseconds_t>(ioTimeoutMs_ % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }
    std::string buf;
    bool keepAlive = true;
    while (keepAlive) {
        // Accumulate until the blank line ending the head.
        std::size_t headEnd;
        while ((headEnd = buf.find("\r\n\r\n")) == std::string::npos) {
            if (buf.size() > kMaxBodyBytes)
                goto done;
            switch (recvSome(fd, buf)) {
            case RecvResult::Ok:
                continue;
            case RecvResult::Closed:
                goto done;
            case RecvResult::TimedOut:
                // A half-sent request stalled past the deadline is a
                // slow loris: answer 408 and disconnect. An idle
                // keep-alive connection (empty buffer) between requests
                // is torn down silently.
                if (!buf.empty())
                    sendAll(fd,
                            formatResponse(
                                {408, "application/json",
                                 "{\"error\":\"request read timed "
                                 "out\"}",
                                 {}},
                                /*close=*/true));
                goto done;
            }
        }

        HttpRequest req;
        if (!parseHead(std::string_view(buf).substr(0, headEnd), req)) {
            sendAll(fd, formatResponse(
                            {400, "application/json",
                             "{\"error\":\"malformed request\"}",
                             {}},
                            /*close=*/true));
            goto done;
        }
        buf.erase(0, headEnd + 4);

        std::size_t bodyLen = 0;
        if (const auto it = req.headers.find("content-length");
            it != req.headers.end()) {
            try {
                bodyLen = std::stoull(it->second);
            } catch (...) {
                bodyLen = kMaxBodyBytes + 1;
            }
        }
        if (bodyLen > kMaxBodyBytes) {
            sendAll(fd, formatResponse(
                            {413, "application/json",
                             "{\"error\":\"body too large\"}",
                             {}},
                            /*close=*/true));
            goto done;
        }
        while (buf.size() < bodyLen) {
            const RecvResult r = recvSome(fd, buf);
            if (r == RecvResult::TimedOut)
                sendAll(fd, formatResponse(
                                {408, "application/json",
                                 "{\"error\":\"request read timed "
                                 "out\"}",
                                 {}},
                                /*close=*/true));
            if (r != RecvResult::Ok)
                goto done;
        }
        req.body = buf.substr(0, bodyLen);
        buf.erase(0, bodyLen);

        if (const auto it = req.headers.find("connection");
            it != req.headers.end())
            keepAlive = toLower(it->second) != "close";
        if (stopRequested())
            break;

        active_.fetch_add(1, std::memory_order_acq_rel);
        HttpResponse resp;
        try {
            resp = handler_(req);
        } catch (const std::exception& e) {
            resp.status = 500;
            resp.body =
                std::string("{\"error\":\"internal: ") + e.what() + "\"}";
        }
        const bool sent = sendAll(fd, formatResponse(resp, !keepAlive));
        active_.fetch_sub(1, std::memory_order_acq_rel);
        if (!sent)
            break;
    }
done:
    ::close(fd);
    MutexLock lock(mu_);
    connFds_.erase(fd);
}

HttpResponse
httpRequest(std::uint16_t port, const std::string& method,
            const std::string& target, const std::string& body,
            const std::map<std::string, std::string>& headers)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw ServeError(std::string("socket: ") + std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        throw ServeError("connect 127.0.0.1:" + std::to_string(port) +
                         ": " + why);
    }
    std::string req = method + " " + target + " HTTP/1.1\r\n";
    req += "Host: 127.0.0.1:" + std::to_string(port) + "\r\n";
    req += "Connection: close\r\n";
    for (const auto& [k, v] : headers)
        req += k + ": " + v + "\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    req += body;
    if (!sendAll(fd, req)) {
        ::close(fd);
        throw ServeError("send failed (peer closed)");
    }

    std::string buf;
    while (recvSome(fd, buf) == RecvResult::Ok) {
    }
    ::close(fd);

    const std::size_t headEnd = buf.find("\r\n\r\n");
    if (headEnd == std::string::npos)
        throw ServeError("torn HTTP response (no header terminator)");
    const std::string_view head = std::string_view(buf).substr(0, headEnd);
    const std::size_t lineEnd = head.find("\r\n");
    const std::string_view statusLine =
        head.substr(0, lineEnd == std::string_view::npos ? head.size()
                                                         : lineEnd);
    // "HTTP/1.1 200 OK"
    const std::size_t sp = statusLine.find(' ');
    if (sp == std::string_view::npos || statusLine.size() < sp + 4)
        throw ServeError("torn HTTP response (bad status line)");
    HttpResponse resp;
    try {
        resp.status = std::stoi(std::string(statusLine.substr(sp + 1, 3)));
    } catch (...) {
        throw ServeError("torn HTTP response (bad status code)");
    }
    resp.body = buf.substr(headEnd + 4);
    return resp;
}

} // namespace gga
