/**
 * @file
 * Workload registry: the 6 applications x 6 inputs of the evaluation, and
 * the per-workload configuration sets (full space and the Fig. 5 subset).
 */

#ifndef GGA_HARNESS_WORKLOADS_HPP
#define GGA_HARNESS_WORKLOADS_HPP

#include <string>
#include <vector>

#include "graph/presets.hpp"
#include "model/algo_props.hpp"
#include "model/config.hpp"

namespace gga {

/** One (application, input) pair. */
struct Workload
{
    AppId app;
    GraphPreset graph;

    std::string
    name() const
    {
        return appName(app) + "-" + presetName(graph);
    }

    bool
    dynamic() const
    {
        return algoProperties(app).traversal == TraversalKind::Dynamic;
    }
};

/** All 36 workloads in paper order (apps major, inputs minor). */
std::vector<Workload> allWorkloads();

/**
 * The global scale factor for evaluation runs, from the GGA_SCALE
 * environment variable (default 1.0 = the paper's full-size inputs).
 * Values below 1 shrink every input proportionally for quick passes.
 */
double evaluationScale();

} // namespace gga

#endif // GGA_HARNESS_WORKLOADS_HPP
