#include "harness/workloads.hpp"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "api/graph_store.hpp"
#include "support/log.hpp"

namespace gga {

std::vector<Workload>
allWorkloads()
{
    std::vector<Workload> out;
    for (AppId app : kAllApps) {
        for (GraphPreset g : kAllGraphPresets)
            out.push_back({app, g});
    }
    return out;
}

double
evaluationScale()
{
    static const double scale = [] {
        const char* env = std::getenv("GGA_SCALE");
        if (!env)
            return 1.0;
        const double s = std::atof(env);
        if (s <= 0.0 || s > 1.0)
            GGA_FATAL("GGA_SCALE must be in (0, 1], got '", env, "'");
        if (s < 1.0)
            GGA_WARN("GGA_SCALE=", s, ": inputs are scaled down; results "
                     "are not the paper-sized evaluation");
        return s;
    }();
    return scale;
}

const CsrGraph&
workloadGraph(GraphPreset p)
{
    const double scale = evaluationScale();
    // Thread-safe shim over the GraphStore, kept only for legacy callers
    // that want a reference: it pins each handle for the process lifetime
    // so the reference survives eviction, which also means nothing pinned
    // here is ever really evictable and the GGA_SCALE env is the only
    // scale it honors. The sweep/predict paths no longer come through
    // here — new code should hold a GraphStore::get shared_ptr instead.
    static std::mutex mu;
    static std::map<std::pair<GraphPreset, double>,
                    std::shared_ptr<const CsrGraph>>
        pinned;
    std::shared_ptr<const CsrGraph> g = GraphStore::instance().get(p, scale);
    std::lock_guard<std::mutex> lock(mu);
    auto& slot = pinned[{p, scale}];
    if (!slot)
        slot = std::move(g);
    return *slot;
}

} // namespace gga
