#include "harness/workloads.hpp"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "api/graph_store.hpp"
#include "support/log.hpp"

namespace gga {

std::vector<Workload>
allWorkloads()
{
    std::vector<Workload> out;
    for (AppId app : kAllApps) {
        for (GraphPreset g : kAllGraphPresets)
            out.push_back({app, g});
    }
    return out;
}

double
evaluationScale()
{
    static const double scale = [] {
        const char* env = std::getenv("GGA_SCALE");
        if (!env)
            return 1.0;
        const double s = std::atof(env);
        if (s <= 0.0 || s > 1.0)
            GGA_FATAL("GGA_SCALE must be in (0, 1], got '", env, "'");
        if (s < 1.0)
            GGA_WARN("GGA_SCALE=", s, ": inputs are scaled down; results "
                     "are not the paper-sized evaluation");
        return s;
    }();
    return scale;
}

} // namespace gga
