#include "harness/figures.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <future>

#include "api/graph_store.hpp"
#include "model/partial_tree.hpp"
#include "support/stats.hpp"

namespace gga {

namespace {

constexpr double kScaleUnitsPerOne = 1e6;

/** The restricted (no DRFrlx anywhere) configuration list of a workload. */
std::vector<SystemConfig>
restrictedConfigs(bool dynamic)
{
    if (dynamic)
        return {parseConfig("DG1"), parseConfig("DD1")};
    return {parseConfig("TG0"), parseConfig("SG1"), parseConfig("SD1")};
}

std::string
renderFig5(const FigureSet& set, const ResultSet& results, bool csv)
{
    TextTable table;
    table.setHeader({"Workload", "Config", "Norm", "Busy", "Comp", "Data",
                     "Sync", "Idle", "Cycles", "Tag"});
    TextTable summary;
    summary.setHeader({"App", "GeomeanBEST", "GeomeanPRED", "PredHitRate"});

    // Specs are in paper order (apps major, inputs minor): 6 per app.
    std::size_t next = 0;
    for (AppId app : kAllApps) {
        std::vector<double> best_norm;
        std::vector<double> pred_norm;
        std::uint32_t exact = 0;
        for (GraphPreset g : kAllGraphPresets) {
            (void)g;
            const SweepResult sweep =
                sweepFromResults(set.specs[next++], results);
            addSweepRows(table, sweep);
            table.addSeparator();
            const double base = static_cast<double>(sweep.baselineCycles);
            best_norm.push_back(sweep.bestCycles / base);
            pred_norm.push_back(sweep.predictedCycles / base);
            if (sweep.predicted == sweep.best)
                ++exact;
        }
        summary.addRow({appName(app), fmtDouble(geomean(best_norm), 3),
                        fmtDouble(geomean(pred_norm), 3),
                        std::to_string(exact) + "/6"});
    }

    return (csv ? table.toCsv() : table.toText()) +
           "\nPer-app geomean of BEST and PRED normalized times:\n" +
           (csv ? summary.toCsv() : summary.toText());
}

std::string
renderFig6(const FigureSet& set, const ResultSet& results, bool csv)
{
    TextTable table;
    table.setHeader({"Workload", "Config", "NormToSGR", "Busy", "Comp",
                     "Data", "Sync", "Idle", "Reduction"});

    std::vector<double> reductions;
    for (const SweepSpec& spec : set.specs) {
        const Workload& wl = spec.workload;
        const SystemConfig sgr = parseConfig(wl.dynamic() ? "DGR" : "SGR");
        const SweepResult sweep = sweepFromResults(spec, results);
        const ConfigResult* sgr_run = sweep.find(sgr);
        if (sweep.best == sgr)
            continue; // SGR is optimal here; not a Figure 6 case

        const double sgr_cycles = static_cast<double>(sgr_run->run.cycles);
        const double reduction = 1.0 - sweep.bestCycles / sgr_cycles;
        reductions.push_back(reduction);

        for (const SystemConfig& cfg : {sgr, sweep.best, sweep.predicted}) {
            const ConfigResult* r = sweep.find(cfg);
            std::vector<std::string> cells{wl.name(), cfg.name()};
            for (std::string& c : breakdownCells(r->run, sgr_cycles))
                cells.push_back(std::move(c));
            if (cfg == sweep.best)
                cells.push_back(fmtPct(reduction));
            table.addRow(std::move(cells));
        }
        table.addSeparator();
    }

    std::string out = csv ? table.toCsv() : table.toText();
    out += "\nCases: " + std::to_string(reductions.size()) +
           " (paper: 12); reduction over SGR: min=" +
           fmtPct(reductions.empty()
                      ? 0.0
                      : *std::min_element(reductions.begin(),
                                          reductions.end())) +
           " max=" +
           fmtPct(reductions.empty()
                      ? 0.0
                      : *std::max_element(reductions.begin(),
                                          reductions.end())) +
           " avg=" + fmtPct(mean(reductions)) +
           " (paper: 7%-87%, avg 44%)\n";
    return out;
}

std::string
renderPartial(const FigureSet& set, const ResultSet& results, bool csv)
{
    TextTable table;
    table.setHeader({"Workload", "FullBest", "NoRlxBest", "PartialPred",
                     "PredHit", "Flip", "SG1/TG0"});

    std::uint32_t flips = 0;
    std::uint32_t pred_hits = 0;
    std::uint32_t rows = 0;
    for (std::size_t i = 0; i < set.specs.size(); ++i) {
        const Workload& wl = set.specs[i].workload;
        // Full-space sweep for reference best.
        const SweepResult full = sweepFromResults(set.specs[i], results);
        // Restricted sweep.
        const SweepResult part =
            sweepFromResults(set.restricted[i], results);
        SystemConfig no_rlx_best = part.results.front().config;
        Cycles best_cycles = part.results.front().run.cycles;
        for (const ConfigResult& r : part.results) {
            // Only consider configurations in the restricted space.
            if (r.config.con == ConsistencyKind::DrfRlx)
                continue;
            if (r.run.cycles < best_cycles ||
                no_rlx_best.con == ConsistencyKind::DrfRlx) {
                best_cycles = r.run.cycles;
                no_rlx_best = r.config;
            }
        }

        const SystemConfig pred = set.partialPredicted[i];

        const bool full_best_push = full.best.prop == UpdateProp::Push;
        const bool flip =
            full_best_push && no_rlx_best.prop == UpdateProp::Pull;
        flips += flip;
        const bool hit = pred == no_rlx_best;
        pred_hits += hit;
        ++rows;

        std::string ratio = "-";
        if (!wl.dynamic()) {
            const ConfigResult* sg1 = part.find(parseConfig("SG1"));
            const ConfigResult* tg0 = part.find(parseConfig("TG0"));
            ratio = fmtDouble(
                double(sg1->run.cycles) / double(tg0->run.cycles), 2);
        }
        table.addRow({wl.name(), full.best.name(), no_rlx_best.name(),
                      pred.name(), hit ? "yes" : "no",
                      flip ? "PULL-FLIP" : "", ratio});
    }

    std::string out = csv ? table.toCsv() : table.toText();
    out += "\nPush-to-pull flips without DRFrlx: " + std::to_string(flips) +
           " (paper: 7). Partial-model hits: " + std::to_string(pred_hits) +
           "/" + std::to_string(rows) + "\n";
    return out;
}

/**
 * Shared figure builder. With @p predictions (one full-space PRED per
 * workload in paper order) the build touches no graphs; without, each
 * workload is profiled (predictWorkload) after a concurrent graph warm.
 */
FigureSet
buildFigureSet(const std::string& figure, double scale, bool full,
               const SimParams& params,
               const std::vector<SystemConfig>* predictions,
               const std::vector<SystemConfig>* partial_predictions)
{
    if (figure != "fig5" && figure != "fig6" && figure != "partial")
        throw EvalError("unknown figure '" + figure +
                        "' (expected fig5, fig6, or partial)");
    FigureSet set;
    set.figure = figure;
    // Snap to the GraphStore's 1e-6 key grid up front: the manifest meta
    // stores scale_units, and figureSetFromManifest must rebuild units
    // (whose WorkUnit::scale is compared exactly) from that alone.
    set.scale = static_cast<double>(GraphStore::quantizeScale(scale)) /
                kScaleUnitsPerOne;
    set.full = full && figure == "fig5";

    if (!predictions) {
        // Warm the input graphs concurrently before the serial spec loop
        // — buildSweepSpec profiles each workload for its prediction,
        // and the graph builds dominate that cost at large scales.
        std::vector<std::future<void>> warm;
        for (GraphPreset g : kAllGraphPresets) {
            warm.push_back(std::async(std::launch::async, [g, &set] {
                GraphStore::instance().get(g, set.scale);
            }));
        }
        for (std::future<void>& f : warm)
            f.get();
    }

    std::size_t index = 0;
    for (AppId app : kAllApps) {
        for (GraphPreset g : kAllGraphPresets) {
            const Workload wl{app, g};
            const auto configs = set.full ? allConfigs(wl.dynamic())
                                          : figureConfigs(wl.dynamic());
            // The restricted sweep reuses the same full-space PRED, so
            // one prediction per workload covers both spec lists.
            const SystemConfig pred =
                predictions ? (*predictions)[index]
                            : predictWorkload(wl, params, set.scale);
            set.specs.push_back(
                buildSweepSpec(wl, configs, params, set.scale, pred));
            if (figure == "partial") {
                set.restricted.push_back(
                    buildSweepSpec(wl, restrictedConfigs(wl.dynamic()),
                                   params, set.scale, pred));
                if (partial_predictions) {
                    set.partialPredicted.push_back(
                        (*partial_predictions)[index]);
                } else {
                    // The legacy render-time computation, moved to build
                    // time: the default GpuGeometry, the workload's
                    // profile at the figure scale, no DRFrlx.
                    DesignSpaceRestriction restriction;
                    restriction.allowDrfRlx = false;
                    GpuGeometry geom;
                    const TaxonomyProfile profile = profileGraph(
                        *GraphStore::instance().get(wl.graph, set.scale),
                        geom);
                    set.partialPredicted.push_back(
                        predictPartialDesignSpace(
                            profile, algoProperties(wl.app), restriction));
                }
            }
            ++index;
        }
    }

    // Interleave full/restricted per workload (the legacy submission
    // order); addUnique drops the units the two sweeps share.
    std::vector<SweepSpec> ordered;
    for (std::size_t i = 0; i < set.specs.size(); ++i) {
        ordered.push_back(set.specs[i]);
        if (!set.restricted.empty())
            ordered.push_back(set.restricted[i]);
    }
    set.manifest = manifestForSpecs(ordered);
    set.manifest.meta["figure"] = figure;
    set.manifest.meta["scale_units"] =
        std::to_string(GraphStore::quantizeScale(set.scale));
    if (set.full)
        set.manifest.meta["full"] = "1";
    // A non-default hardware point is part of the figure's identity:
    // without it figureSetFromManifest could not rebuild the units (they
    // embed the override) and the merged results would be unrenderable.
    if (!(params == SimParams{}))
        set.manifest.meta["params"] = simParamsToJson(params).dump();
    // Record the predictions so a merge/render host can rebuild the set
    // without constructing or profiling any input graph.
    std::string preds;
    for (const SweepSpec& s : set.specs)
        preds += (preds.empty() ? "" : ",") + s.predicted.name();
    set.manifest.meta["predictions"] = std::move(preds);
    if (figure == "partial") {
        std::string ppreds;
        for (const SystemConfig& cfg : set.partialPredicted)
            ppreds += (ppreds.empty() ? "" : ",") + cfg.name();
        set.manifest.meta["partial_predictions"] = std::move(ppreds);
    }
    return set;
}

/** Parse a comma-joined config-name list from manifest meta. */
std::vector<SystemConfig>
parseConfigList(const std::string& text, const char* what)
{
    std::vector<SystemConfig> out;
    std::string name;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i < text.size() && text[i] != ',') {
            name += text[i];
            continue;
        }
        const std::optional<SystemConfig> cfg = tryParseConfig(name);
        if (!cfg)
            throw EvalError(std::string("malformed ") + what + " '" +
                            name + "' in manifest meta");
        out.push_back(*cfg);
        name.clear();
    }
    if (out.size() != kAllApps.size() * kAllGraphPresets.size())
        throw EvalError("manifest meta carries " +
                        std::to_string(out.size()) + " " + what +
                        " entries, expected one per workload");
    return out;
}

} // namespace

FigureSet
figureSet(const std::string& figure, double scale, bool full,
          const SimParams& params)
{
    return buildFigureSet(figure, scale, full, params, nullptr, nullptr);
}

FigureSet
figureSetFromManifest(const Manifest& manifest)
{
    const auto figure = manifest.meta.find("figure");
    const auto scale_units = manifest.meta.find("scale_units");
    const auto pred_meta = manifest.meta.find("predictions");
    if (figure == manifest.meta.end() ||
        scale_units == manifest.meta.end() ||
        pred_meta == manifest.meta.end())
        throw EvalError(
            "manifest carries no figure/scale_units/predictions meta; it "
            "was not generated by figureSet (gga_manifest)");
    // scale_units is written as integer micro-units (quantizeScale);
    // parse with from_chars — std::stod honours LC_NUMERIC and this
    // value must round-trip byte-identically across locales.
    std::int64_t units = 0;
    const char* ub = scale_units->second.data();
    const char* ue = ub + scale_units->second.size();
    const auto ur = std::from_chars(ub, ue, units);
    if (ur.ec != std::errc() || ur.ptr != ue)
        throw EvalError("manifest scale_units is not an integer: " +
                        scale_units->second);
    const double scale = static_cast<double>(units) / kScaleUnitsPerOne;
    const bool full = manifest.meta.count("full") != 0;

    const std::vector<SystemConfig> predictions =
        parseConfigList(pred_meta->second, "prediction");
    std::vector<SystemConfig> partial_predictions;
    if (figure->second == "partial") {
        const auto ppred_meta = manifest.meta.find("partial_predictions");
        if (ppred_meta == manifest.meta.end())
            throw EvalError(
                "partial manifest carries no partial_predictions meta");
        partial_predictions =
            parseConfigList(ppred_meta->second, "partial prediction");
    }
    SimParams params;
    if (const auto params_meta = manifest.meta.find("params");
        params_meta != manifest.meta.end())
        params = simParamsFromJson(Json::parse(params_meta->second));

    FigureSet set = buildFigureSet(
        figure->second, scale, full, params, &predictions,
        partial_predictions.empty() ? nullptr : &partial_predictions);
    // The rebuilt units must be exactly the serialized ones — a stale or
    // hand-edited manifest must not silently render mislabeled results.
    if (!(set.manifest.units() == manifest.units()))
        throw EvalError("manifest units do not match the '" +
                        figure->second +
                        "' figure rebuilt from its meta; the manifest was "
                        "edited or generated by an incompatible build");
    set.manifest.meta = manifest.meta;
    return set;
}

std::string
renderFigure(const FigureSet& set, const ResultSet& results, bool csv)
{
    if (set.figure == "fig6")
        return renderFig6(set, results, csv);
    if (set.figure == "partial")
        return renderPartial(set, results, csv);
    return renderFig5(set, results, csv);
}

std::vector<std::string>
breakdownCells(const RunResult& run, double baseline_cycles)
{
    const double total = run.breakdown.total();
    std::vector<std::string> cells;
    cells.push_back(fmtDouble(run.cycles / baseline_cycles, 3));
    cells.push_back(fmtPct(run.breakdown.busy / total));
    cells.push_back(fmtPct(run.breakdown.comp / total));
    cells.push_back(fmtPct(run.breakdown.data / total));
    cells.push_back(fmtPct(run.breakdown.sync / total));
    cells.push_back(fmtPct(run.breakdown.idle / total));
    return cells;
}

void
addSweepRows(TextTable& table, const SweepResult& sweep)
{
    const double baseline = static_cast<double>(sweep.baselineCycles);
    for (const ConfigResult& r : sweep.results) {
        std::string tag;
        if (r.config == sweep.best)
            tag += "BEST ";
        if (r.config == sweep.predicted)
            tag += "PRED";
        std::vector<std::string> cells{sweep.workload.name(),
                                       r.config.name()};
        for (std::string& c : breakdownCells(r.run, baseline))
            cells.push_back(std::move(c));
        cells.push_back(std::to_string(r.run.cycles));
        cells.push_back(tag);
        table.addRow(std::move(cells));
    }
}

double
geomeanNormalized(const std::vector<double>& normalized)
{
    return geomean(normalized);
}

} // namespace gga
