#include "harness/figures.hpp"

#include "support/stats.hpp"

namespace gga {

std::vector<std::string>
breakdownCells(const RunResult& run, double baseline_cycles)
{
    const double total = run.breakdown.total();
    std::vector<std::string> cells;
    cells.push_back(fmtDouble(run.cycles / baseline_cycles, 3));
    cells.push_back(fmtPct(run.breakdown.busy / total));
    cells.push_back(fmtPct(run.breakdown.comp / total));
    cells.push_back(fmtPct(run.breakdown.data / total));
    cells.push_back(fmtPct(run.breakdown.sync / total));
    cells.push_back(fmtPct(run.breakdown.idle / total));
    return cells;
}

void
addSweepRows(TextTable& table, const SweepResult& sweep)
{
    const double baseline = static_cast<double>(sweep.baselineCycles);
    for (const ConfigResult& r : sweep.results) {
        std::string tag;
        if (r.config == sweep.best)
            tag += "BEST ";
        if (r.config == sweep.predicted)
            tag += "PRED";
        std::vector<std::string> cells{sweep.workload.name(),
                                       r.config.name()};
        for (std::string& c : breakdownCells(r.run, baseline))
            cells.push_back(std::move(c));
        cells.push_back(std::to_string(r.run.cycles));
        cells.push_back(tag);
        table.addRow(std::move(cells));
    }
}

double
geomeanNormalized(const std::vector<double>& normalized)
{
    return geomean(normalized);
}

} // namespace gga
