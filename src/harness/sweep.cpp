#include "harness/sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "api/graph_store.hpp"
#include "support/log.hpp"

namespace gga {

namespace {

double
resolveScale(double scale)
{
    return scale > 0.0 ? scale : evaluationScale();
}

} // namespace

const ConfigResult*
SweepResult::find(const SystemConfig& cfg) const
{
    for (const ConfigResult& r : results) {
        if (r.config == cfg)
            return &r;
    }
    return nullptr;
}

SystemConfig
baselineConfig(const Workload& workload)
{
    return workload.dynamic() ? parseConfig("DG1") : parseConfig("TG0");
}

SystemConfig
predictWorkload(const Workload& workload, const SimParams& params,
                double scale)
{
    GpuGeometry geom;
    geom.numSms = params.numSms;
    geom.threadBlockSize = params.threadBlockSize;
    geom.warpSize = params.warpSize;
    geom.l1KiB = params.l1SizeKiB;
    geom.l2KiB = params.l2SizeKiB;
    // Resolve through the GraphStore so the handle is released after
    // profiling and eviction stays effective.
    const GraphStore::GraphPtr graph =
        GraphStore::instance().get(workload.graph, resolveScale(scale));
    const TaxonomyProfile profile = profileGraph(*graph, geom);
    return predictFullDesignSpace(profile, algoProperties(workload.app));
}

SweepSpec
buildSweepSpec(const Workload& workload, std::vector<SystemConfig> configs,
               const SimParams& params, double scale)
{
    return buildSweepSpec(workload, std::move(configs), params, scale,
                          predictWorkload(workload, params, scale));
}

SweepSpec
buildSweepSpec(const Workload& workload, std::vector<SystemConfig> configs,
               const SimParams& params, double scale,
               const SystemConfig& predicted)
{
    SweepSpec spec;
    spec.workload = workload;

    const SystemConfig baseline = baselineConfig(workload);
    if (std::find(configs.begin(), configs.end(), baseline) == configs.end())
        configs.push_back(baseline);
    spec.predicted = predicted;
    // Appended last — exactly where the legacy serial path put a missing
    // prediction, so the result ordering stays bit-identical.
    if (std::find(configs.begin(), configs.end(), spec.predicted) ==
        configs.end())
        configs.push_back(spec.predicted);

    // Sweeps never collect functional outputs (timing/counters only), and
    // they omit the params override when it is just the app's registered
    // preset so the unit keys stay canonical across callers.
    const SimParams& preset = AppRegistry::instance().at(workload.app).params;
    spec.units.reserve(configs.size());
    for (const SystemConfig& cfg : configs) {
        WorkUnit u;
        u.app = workload.app;
        u.preset = workload.graph;
        u.scale = scale;
        u.config = cfg;
        if (!(params == preset))
            u.params = params;
        spec.units.push_back(std::move(u));
    }
    spec.configs = std::move(configs);
    return spec;
}

SweepResult
sweepFromResults(const SweepSpec& spec, const ResultSet& results)
{
    GGA_ASSERT(spec.units.size() == spec.configs.size() &&
                   !spec.configs.empty(),
               "malformed sweep spec for ", spec.workload.name());

    SweepResult sweep;
    sweep.workload = spec.workload;
    sweep.predicted = spec.predicted;

    // Slot i holds configs[i]'s result, so the result ordering (and the
    // first-minimum BEST tie-break below) is identical no matter where —
    // or across how many shards — the runs executed.
    sweep.results.reserve(spec.configs.size());
    for (std::size_t i = 0; i < spec.configs.size(); ++i) {
        sweep.results.push_back(
            ConfigResult{spec.configs[i], results.at(spec.units[i].key()).run});
    }

    const ConfigResult* best = &sweep.results.front();
    for (const ConfigResult& r : sweep.results) {
        if (r.run.cycles < best->run.cycles)
            best = &r;
    }
    sweep.best = best->config;
    sweep.bestCycles = best->run.cycles;
    sweep.predictedCycles = sweep.find(sweep.predicted)->run.cycles;
    sweep.baselineCycles =
        sweep.find(baselineConfig(spec.workload))->run.cycles;
    return sweep;
}

Manifest
manifestForSpecs(const std::vector<SweepSpec>& specs)
{
    Manifest manifest;
    for (const SweepSpec& spec : specs) {
        // addUnique: overlapping sweeps (e.g. the partial-design-space
        // full and restricted sweeps of one workload) share their common
        // units instead of simulating them twice.
        for (const WorkUnit& u : spec.units)
            manifest.addUnique(u);
    }
    return manifest;
}

PendingSweep
submitSweep(Session& session, const Workload& workload,
            std::vector<SystemConfig> configs,
            std::optional<SimParams> params, double scale)
{
    // Unset knobs defer to the session — the same defaults every plain
    // run() on this session uses — so one Session never mixes scales or
    // hardware parameters between sweeps and direct runs.
    const double graph_scale =
        scale > 0.0 ? scale : session.options().scale;
    const SimParams run_params = params.value_or(session.options().params);

    PendingSweep pending;
    pending.spec_ =
        buildSweepSpec(workload, std::move(configs), run_params, graph_scale);
    Manifest manifest;
    // addUnique: a duplicated configuration in the caller's list is not
    // an error (the legacy path ran it twice); the single shared unit
    // fans back out to one result slot per list entry in
    // sweepFromResults.
    for (const WorkUnit& u : pending.spec_.units)
        manifest.addUnique(u);
    pending.pending_ = submitManifest(session, manifest);
    return pending;
}

SweepResult
PendingSweep::collect()
{
    GGA_ASSERT(pending_.size() > 0 && !spec_.units.empty(),
               "PendingSweep collected twice or never submitted");
    try {
        const ResultSet results = pending_.collect();
        return sweepFromResults(spec_, results);
    } catch (const EvalError& err) {
        GGA_FATAL("sweep of ", spec_.workload.name(), ": ", err.what());
    }
}

SweepResult
sweepWorkload(Session& session, const Workload& workload,
              std::vector<SystemConfig> configs,
              std::optional<SimParams> params, double scale)
{
    return submitSweep(session, workload, std::move(configs),
                       std::move(params), scale)
        .collect();
}

SweepResult
sweepWorkload(const Workload& workload, std::vector<SystemConfig> configs,
              const SimParams& params, const SweepOptions& opts)
{
    SessionOptions session_opts;
    // Clamp the private pool to the work available: buildSweepSpec adds at
    // most the baseline and the prediction to @p configs, so anything
    // wider than that would sit idle for this one sweep.
    const unsigned requested =
        opts.threads == 0 ? defaultSessionThreads() : opts.threads;
    session_opts.threads = static_cast<unsigned>(
        std::min<std::size_t>(requested, configs.size() + 2));
    session_opts.scale = resolveScale(opts.scale);
    session_opts.verboseRuns = true; // match the legacy per-run inform
    Session session(session_opts);
    return sweepWorkload(session, workload, std::move(configs), params);
}

} // namespace gga
