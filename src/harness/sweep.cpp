#include "harness/sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "api/graph_store.hpp"
#include "support/log.hpp"

namespace gga {

namespace {

double
resolveScale(double scale)
{
    return scale > 0.0 ? scale : evaluationScale();
}

RunPlan
sweepPlan(const Workload& workload, const SystemConfig& cfg,
          const SimParams& params, double scale)
{
    return RunPlan{}
        .app(workload.app)
        .graph(workload.graph)
        .scale(scale)
        .config(cfg)
        .params(params)
        .collectOutputs(false);
}

} // namespace

const ConfigResult*
SweepResult::find(const SystemConfig& cfg) const
{
    for (const ConfigResult& r : results) {
        if (r.config == cfg)
            return &r;
    }
    return nullptr;
}

SystemConfig
baselineConfig(const Workload& workload)
{
    return workload.dynamic() ? parseConfig("DG1") : parseConfig("TG0");
}

SystemConfig
predictWorkload(const Workload& workload, const SimParams& params,
                double scale)
{
    GpuGeometry geom;
    geom.numSms = params.numSms;
    geom.threadBlockSize = params.threadBlockSize;
    geom.warpSize = params.warpSize;
    geom.l1KiB = params.l1SizeKiB;
    geom.l2KiB = params.l2SizeKiB;
    // Resolve through the GraphStore (not the pinning workloadGraph shim)
    // so the handle is released after profiling and eviction stays
    // effective.
    const GraphStore::GraphPtr graph =
        GraphStore::instance().get(workload.graph, resolveScale(scale));
    const TaxonomyProfile profile = profileGraph(*graph, geom);
    return predictFullDesignSpace(profile, algoProperties(workload.app));
}

unsigned
defaultSweepThreads()
{
    static const unsigned threads = [] {
        const char* env = std::getenv("GGA_SWEEP_THREADS");
        if (!env)
            return 1u;
        const long t = std::atol(env);
        if (t < 1) {
            GGA_WARN("GGA_SWEEP_THREADS='", env, "' is invalid; using 1");
            return 1u;
        }
        return static_cast<unsigned>(t);
    }();
    return threads;
}

PendingSweep
submitSweep(Session& session, const Workload& workload,
            std::vector<SystemConfig> configs,
            std::optional<SimParams> params, double scale)
{
    // Unset knobs defer to the session — the same defaults every plain
    // run() on this session uses — so one Session never mixes scales or
    // hardware parameters between sweeps and direct runs.
    const double graph_scale =
        scale > 0.0 ? scale : session.options().scale;
    const SimParams run_params = params.value_or(session.options().params);

    PendingSweep pending;
    pending.session_ = &session;
    pending.workload_ = workload;
    pending.params_ = run_params;
    pending.scale_ = graph_scale;

    const SystemConfig baseline = baselineConfig(workload);
    if (std::find(configs.begin(), configs.end(), baseline) == configs.end())
        configs.push_back(baseline);

    std::vector<RunPlan> plans;
    plans.reserve(configs.size());
    for (const SystemConfig& cfg : configs)
        plans.push_back(sweepPlan(workload, cfg, run_params, graph_scale));
    pending.configs_ = std::move(configs);
    pending.futures_ = session.submitAll(std::move(plans));
    // The prediction (graph build + taxonomy profiling) rides the same
    // executor instead of blocking this thread, so submitting 36 sweeps
    // back to back enqueues immediately; collect() appends the
    // predicted configuration's run if the set didn't include it.
    pending.predicted_ = session.executor().submit(
        [workload, run_params, graph_scale] {
            return predictWorkload(workload, run_params, graph_scale);
        });
    return pending;
}

SweepResult
PendingSweep::collect()
{
    GGA_ASSERT(session_ && !configs_.empty() &&
                   futures_.size() == configs_.size(),
               "PendingSweep collected twice or never submitted");

    SweepResult sweep;
    sweep.workload = workload_;

    // Resolve the prediction first: if the sweep set doesn't cover it,
    // its run is submitted *before* draining the config futures, so it
    // overlaps with them instead of serializing at the tail.
    sweep.predicted = predicted_.get();
    std::future<RunOutcome> predicted_run;
    if (std::find(configs_.begin(), configs_.end(), sweep.predicted) ==
        configs_.end()) {
        predicted_run = session_->submit(
            sweepPlan(workload_, sweep.predicted, params_, scale_));
    }

    // Slot i holds configs_[i]'s result, so the result ordering (and the
    // first-minimum BEST tie-break below) is identical no matter how wide
    // the executor fans out the runs.
    sweep.results.resize(configs_.size());
    for (std::size_t i = 0; i < futures_.size(); ++i) {
        try {
            RunOutcome out = futures_[i].get();
            sweep.results[i] =
                ConfigResult{configs_[i], std::move(out.result)};
        } catch (const PlanError& err) {
            GGA_FATAL("sweep of ", workload_.name(), ": ", err.what());
        }
    }
    futures_.clear();

    if (predicted_run.valid()) {
        // Appended last — exactly where the serial path's ensure() put
        // the missing prediction, so the ordering stays bit-identical.
        try {
            RunOutcome out = predicted_run.get();
            sweep.results.push_back(
                ConfigResult{sweep.predicted, std::move(out.result)});
        } catch (const PlanError& err) {
            GGA_FATAL("sweep of ", workload_.name(), ": ", err.what());
        }
    }
    session_ = nullptr;

    const ConfigResult* best = &sweep.results.front();
    for (const ConfigResult& r : sweep.results) {
        if (r.run.cycles < best->run.cycles)
            best = &r;
    }
    sweep.best = best->config;
    sweep.bestCycles = best->run.cycles;
    sweep.predictedCycles = sweep.find(sweep.predicted)->run.cycles;
    sweep.baselineCycles = sweep.find(baselineConfig(workload_))->run.cycles;
    return sweep;
}

SweepResult
sweepWorkload(Session& session, const Workload& workload,
              std::vector<SystemConfig> configs,
              std::optional<SimParams> params, double scale)
{
    return submitSweep(session, workload, std::move(configs),
                       std::move(params), scale)
        .collect();
}

SweepResult
sweepWorkload(const Workload& workload, std::vector<SystemConfig> configs,
              const SimParams& params, const SweepOptions& opts)
{
    SessionOptions session_opts;
    // Clamp the private pool to the work available: submitSweep adds at
    // most the baseline and the prediction to @p configs, so anything
    // wider than that would sit idle for this one sweep.
    const unsigned requested =
        opts.threads == 0 ? defaultSessionThreads() : opts.threads;
    session_opts.threads = static_cast<unsigned>(
        std::min<std::size_t>(requested, configs.size() + 2));
    session_opts.scale = resolveScale(opts.scale);
    session_opts.verboseRuns = true; // match the legacy per-run inform
    Session session(session_opts);
    return sweepWorkload(session, workload, std::move(configs), params);
}

} // namespace gga
