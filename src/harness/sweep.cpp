#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "api/registry.hpp"
#include "support/log.hpp"

namespace gga {

const ConfigResult*
SweepResult::find(const SystemConfig& cfg) const
{
    for (const ConfigResult& r : results) {
        if (r.config == cfg)
            return &r;
    }
    return nullptr;
}

SystemConfig
baselineConfig(const Workload& workload)
{
    return workload.dynamic() ? parseConfig("DG1") : parseConfig("TG0");
}

SystemConfig
predictWorkload(const Workload& workload, const SimParams& params)
{
    GpuGeometry geom;
    geom.numSms = params.numSms;
    geom.threadBlockSize = params.threadBlockSize;
    geom.warpSize = params.warpSize;
    geom.l1KiB = params.l1SizeKiB;
    geom.l2KiB = params.l2SizeKiB;
    const TaxonomyProfile profile =
        profileGraph(workloadGraph(workload.graph), geom);
    return predictFullDesignSpace(profile, algoProperties(workload.app));
}

unsigned
defaultSweepThreads()
{
    static const unsigned threads = [] {
        const char* env = std::getenv("GGA_SWEEP_THREADS");
        if (!env)
            return 1u;
        const long t = std::atol(env);
        if (t < 1) {
            GGA_WARN("GGA_SWEEP_THREADS='", env, "' is invalid; using 1");
            return 1u;
        }
        return static_cast<unsigned>(t);
    }();
    return threads;
}

SweepResult
sweepWorkload(const Workload& workload, std::vector<SystemConfig> configs,
              const SimParams& params, const SweepOptions& opts)
{
    SweepResult sweep;
    sweep.workload = workload;
    sweep.predicted = predictWorkload(workload, params);

    auto ensure = [&configs](const SystemConfig& cfg) {
        if (std::find(configs.begin(), configs.end(), cfg) == configs.end())
            configs.push_back(cfg);
    };
    ensure(baselineConfig(workload));
    ensure(sweep.predicted);

    const CsrGraph& graph = workloadGraph(workload.graph);
    const AppRegistry::Entry& entry =
        AppRegistry::instance().at(workload.app);

    // Slot i holds configs[i]'s result, so the result ordering (and the
    // first-minimum BEST tie-break below) is identical no matter how many
    // threads fan out the runs.
    sweep.results.resize(configs.size());
    std::mutex log_mu;
    auto runOne = [&](std::size_t i) {
        const SystemConfig& cfg = configs[i];
        {
            std::lock_guard<std::mutex> lock(log_mu);
            GGA_INFORM("running ", workload.name(), " on ", cfg.name());
        }
        sweep.results[i] =
            ConfigResult{cfg, entry.run(graph, cfg, params, nullptr)};
    };

    const unsigned requested =
        opts.threads == 0 ? defaultSweepThreads() : opts.threads;
    const unsigned threads = static_cast<unsigned>(
        std::min<std::size_t>(requested, configs.size()));
    if (threads <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            runOne(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            pool.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < sweep.results.size(); i = next.fetch_add(1))
                    runOne(i);
            });
        }
        for (std::thread& th : pool)
            th.join();
    }

    const ConfigResult* best = &sweep.results.front();
    for (const ConfigResult& r : sweep.results) {
        if (r.run.cycles < best->run.cycles)
            best = &r;
    }
    sweep.best = best->config;
    sweep.bestCycles = best->run.cycles;
    sweep.predictedCycles = sweep.find(sweep.predicted)->run.cycles;
    sweep.baselineCycles = sweep.find(baselineConfig(workload))->run.cycles;
    return sweep;
}

} // namespace gga
