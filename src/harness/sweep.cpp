#include "harness/sweep.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace gga {

const ConfigResult*
SweepResult::find(const SystemConfig& cfg) const
{
    for (const ConfigResult& r : results) {
        if (r.config == cfg)
            return &r;
    }
    return nullptr;
}

SystemConfig
baselineConfig(const Workload& workload)
{
    return workload.dynamic() ? parseConfig("DG1") : parseConfig("TG0");
}

SystemConfig
predictWorkload(const Workload& workload, const SimParams& params)
{
    GpuGeometry geom;
    geom.numSms = params.numSms;
    geom.threadBlockSize = params.threadBlockSize;
    geom.warpSize = params.warpSize;
    geom.l1KiB = params.l1SizeKiB;
    geom.l2KiB = params.l2SizeKiB;
    const TaxonomyProfile profile =
        profileGraph(workloadGraph(workload.graph), geom);
    return predictFullDesignSpace(profile, algoProperties(workload.app));
}

SweepResult
sweepWorkload(const Workload& workload, std::vector<SystemConfig> configs,
              const SimParams& params)
{
    SweepResult sweep;
    sweep.workload = workload;
    sweep.predicted = predictWorkload(workload, params);

    auto ensure = [&configs](const SystemConfig& cfg) {
        if (std::find(configs.begin(), configs.end(), cfg) == configs.end())
            configs.push_back(cfg);
    };
    ensure(baselineConfig(workload));
    ensure(sweep.predicted);

    const CsrGraph& graph = workloadGraph(workload.graph);
    for (const SystemConfig& cfg : configs) {
        GGA_INFORM("running ", workload.name(), " on ", cfg.name());
        ConfigResult r{cfg, runWorkload(workload.app, graph, cfg, params)};
        sweep.results.push_back(std::move(r));
    }

    const ConfigResult* best = &sweep.results.front();
    for (const ConfigResult& r : sweep.results) {
        if (r.run.cycles < best->run.cycles)
            best = &r;
    }
    sweep.best = best->config;
    sweep.bestCycles = best->run.cycles;
    sweep.predictedCycles = sweep.find(sweep.predicted)->run.cycles;
    sweep.baselineCycles = sweep.find(baselineConfig(workload))->run.cycles;
    return sweep;
}

} // namespace gga
