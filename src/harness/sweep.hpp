/**
 * @file
 * Design-space sweeps: run a workload across configuration sets, find the
 * empirical BEST, and pair it with the model's PRED.
 *
 * All execution goes through a Session's shared executor
 * (Session::submitAll): submitSweep() enqueues one RunPlan per
 * configuration and returns a PendingSweep whose collect() gathers the
 * futures in configuration order — so many sweeps can be in flight on one
 * executor (parallelism across workloads *and* configurations) while each
 * SweepResult stays bit-identical to a serial run() loop.
 */

#ifndef GGA_HARNESS_SWEEP_HPP
#define GGA_HARNESS_SWEEP_HPP

#include <future>
#include <optional>
#include <vector>

#include "api/session.hpp"
#include "apps/runner.hpp"
#include "harness/workloads.hpp"
#include "model/decision_tree.hpp"
#include "taxonomy/profile.hpp"

namespace gga {

/** One configuration's outcome for a workload. */
struct ConfigResult
{
    SystemConfig config;
    RunResult run;
};

/** A full sweep of one workload. */
struct SweepResult
{
    Workload workload;
    std::vector<ConfigResult> results;
    SystemConfig best;       ///< lowest-cycle configuration in the sweep
    SystemConfig predicted;  ///< the model's choice (full design space)
    Cycles bestCycles = 0;
    Cycles predictedCycles = 0;
    Cycles baselineCycles = 0; ///< TG0 (DG1 for dynamic apps)

    const ConfigResult* find(const SystemConfig& cfg) const;
};

/**
 * A sweep whose per-configuration runs — and the model prediction, which
 * rides the same executor so submitting many sweeps never serializes
 * graph profiling on the caller's thread — are enqueued on a Session
 * executor but not yet gathered. Move-only; collect() may be called
 * once. The Session must outlive the PendingSweep's collect().
 */
class PendingSweep
{
  public:
    const Workload& workload() const { return workload_; }

    /**
     * Block until every run finishes and assemble the SweepResult.
     * Results are ordered by configuration exactly as submitted (with
     * the predicted configuration's run appended last when the sweep
     * didn't already include it, as the serial path always did), and the
     * BEST tie-break is the first minimum in that order, so the outcome
     * is bit-identical at any executor width.
     */
    SweepResult collect();

  private:
    friend PendingSweep submitSweep(Session&, const Workload&,
                                    std::vector<SystemConfig>,
                                    std::optional<SimParams>, double);

    Session* session_ = nullptr;
    Workload workload_{};
    SimParams params_{};
    double scale_ = 0.0;
    std::vector<SystemConfig> configs_;
    std::vector<std::future<RunOutcome>> futures_;
    std::future<SystemConfig> predicted_;
};

/**
 * Enqueue @p workload under every configuration in @p configs (the
 * baseline and the model's prediction are added when missing) on
 * @p session's executor, without blocking on the runs. @p params and
 * @p scale default to the session's SessionOptions (nullopt / 0), the
 * same defaults every plain run() on the session uses, so a sweep is
 * never silently inconsistent with direct runs on the same session.
 */
PendingSweep submitSweep(Session& session, const Workload& workload,
                         std::vector<SystemConfig> configs,
                         std::optional<SimParams> params = std::nullopt,
                         double scale = 0.0);

/** submitSweep + collect: the blocking sweep through a shared Session. */
SweepResult sweepWorkload(Session& session, const Workload& workload,
                          std::vector<SystemConfig> configs,
                          std::optional<SimParams> params = std::nullopt,
                          double scale = 0.0);

/** Execution knobs for the standalone sweepWorkload overload. */
struct SweepOptions
{
    /**
     * Executor width for the internally-created Session. 0 = the
     * GGA_SESSION_THREADS environment default (which honors the
     * deprecated GGA_SWEEP_THREADS as a fallback). The SweepResult is
     * bit-identical to the serial path at any thread count.
     */
    unsigned threads = 0;

    /**
     * Preset graph scale for the internally-created Session; 0 = the
     * GGA_SCALE evaluation scale (the legacy default).
     */
    double scale = 0.0;
};

/**
 * Deprecated: GGA_SWEEP_THREADS environment value, or 1 when
 * unset/invalid. Prefer defaultSessionThreads() / SessionOptions::threads.
 */
unsigned defaultSweepThreads();

/**
 * Standalone sweep: creates a private Session sized by @p opts. Prefer
 * the Session-taking overload (or submitSweep) so concurrent sweeps share
 * one executor.
 */
SweepResult sweepWorkload(const Workload& workload,
                          std::vector<SystemConfig> configs,
                          const SimParams& params = SimParams{},
                          const SweepOptions& opts = SweepOptions{});

/** The baseline configuration a workload's Fig. 5 group normalizes to. */
SystemConfig baselineConfig(const Workload& workload);

/**
 * The model's prediction for a workload (full design space), profiling
 * the input through the GraphStore at @p scale (0 = the GGA_SCALE
 * evaluation scale).
 */
SystemConfig predictWorkload(const Workload& workload,
                             const SimParams& params = SimParams{},
                             double scale = 0.0);

} // namespace gga

#endif // GGA_HARNESS_SWEEP_HPP
