/**
 * @file
 * Design-space sweeps: run a workload across configuration sets, find the
 * empirical BEST, and pair it with the model's PRED.
 */

#ifndef GGA_HARNESS_SWEEP_HPP
#define GGA_HARNESS_SWEEP_HPP

#include <vector>

#include "apps/runner.hpp"
#include "harness/workloads.hpp"
#include "model/decision_tree.hpp"
#include "taxonomy/profile.hpp"

namespace gga {

/** One configuration's outcome for a workload. */
struct ConfigResult
{
    SystemConfig config;
    RunResult run;
};

/** A full sweep of one workload. */
struct SweepResult
{
    Workload workload;
    std::vector<ConfigResult> results;
    SystemConfig best;       ///< lowest-cycle configuration in the sweep
    SystemConfig predicted;  ///< the model's choice (full design space)
    Cycles bestCycles = 0;
    Cycles predictedCycles = 0;
    Cycles baselineCycles = 0; ///< TG0 (DG1 for dynamic apps)

    const ConfigResult* find(const SystemConfig& cfg) const;
};

/** Execution knobs for sweepWorkload. */
struct SweepOptions
{
    /**
     * Worker threads fanning out the per-configuration runs. 0 = the
     * GGA_SWEEP_THREADS environment default (1 when unset). Each
     * configuration's simulation is independent and deterministic, so
     * the SweepResult — result ordering, BEST, and PRED — is
     * bit-identical to the serial path at any thread count.
     */
    unsigned threads = 0;
};

/** GGA_SWEEP_THREADS environment value, or 1 when unset/invalid. */
unsigned defaultSweepThreads();

/**
 * Run @p workload under every configuration in @p configs (must include
 * the model's prediction and the baseline, or they are added), and fill
 * in BEST/PRED. With opts.threads > 1 the per-config runs execute on a
 * thread pool.
 */
SweepResult sweepWorkload(const Workload& workload,
                          std::vector<SystemConfig> configs,
                          const SimParams& params = SimParams{},
                          const SweepOptions& opts = SweepOptions{});

/** The baseline configuration a workload's Fig. 5 group normalizes to. */
SystemConfig baselineConfig(const Workload& workload);

/** The model's prediction for a workload (full design space). */
SystemConfig predictWorkload(const Workload& workload,
                             const SimParams& params = SimParams{});

} // namespace gga

#endif // GGA_HARNESS_SWEEP_HPP
