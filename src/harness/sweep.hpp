/**
 * @file
 * Design-space sweeps: run a workload across configuration sets, find the
 * empirical BEST, and pair it with the model's PRED.
 *
 * A sweep is a SweepSpec — an ordered configuration list (baseline and
 * the model's prediction appended when missing) plus the serializable
 * WorkUnits realizing it. Execution goes through the eval pipeline:
 * submitSweep() turns the spec into a manifest on the session's shared
 * executor, and sweepFromResults() reassembles a SweepResult from any
 * ResultSet covering the spec's units — in-process or merged from worker
 * shards — bit-identically to the old serial run() loop.
 */

#ifndef GGA_HARNESS_SWEEP_HPP
#define GGA_HARNESS_SWEEP_HPP

#include <optional>
#include <vector>

#include "api/session.hpp"
#include "apps/runner.hpp"
#include "eval/run.hpp"
#include "harness/workloads.hpp"
#include "model/decision_tree.hpp"
#include "taxonomy/profile.hpp"

namespace gga {

/** One configuration's outcome for a workload. */
struct ConfigResult
{
    SystemConfig config;
    RunResult run;
};

/** A full sweep of one workload. */
struct SweepResult
{
    Workload workload;
    std::vector<ConfigResult> results;
    SystemConfig best;       ///< lowest-cycle configuration in the sweep
    SystemConfig predicted;  ///< the model's choice (full design space)
    Cycles bestCycles = 0;
    Cycles predictedCycles = 0;
    Cycles baselineCycles = 0; ///< TG0 (DG1 for dynamic apps)

    const ConfigResult* find(const SystemConfig& cfg) const;
};

/**
 * The declarative shape of one workload's sweep: the configurations in
 * execution order (the caller's list, then the baseline when missing,
 * then the model's prediction when missing — the legacy serial order)
 * and the WorkUnit realizing each, so the sweep can run in-process or be
 * shipped to workers through a Manifest.
 */
struct SweepSpec
{
    Workload workload{};
    SystemConfig predicted;
    std::vector<SystemConfig> configs;
    std::vector<WorkUnit> units; ///< parallel to configs
};

/**
 * Build the spec for @p workload: append the baseline and the model's
 * prediction (computed here, via the GraphStore at @p scale) when the
 * caller's list lacks them, and realize each configuration as a WorkUnit
 * at @p scale. @p params is omitted from the units when it matches the
 * app's registered preset, keeping unit keys canonical.
 */
SweepSpec buildSweepSpec(const Workload& workload,
                         std::vector<SystemConfig> configs,
                         const SimParams& params, double scale);

/**
 * Same, with the full-space prediction supplied by the caller instead of
 * computed — no graph build or profiling. Used when rebuilding a figure
 * from a serialized manifest whose meta already records the predictions
 * (so a merge/render host never has to construct the inputs).
 */
SweepSpec buildSweepSpec(const Workload& workload,
                         std::vector<SystemConfig> configs,
                         const SimParams& params, double scale,
                         const SystemConfig& predicted);

/**
 * Reassemble the SweepResult from any ResultSet covering the spec's
 * units (throws EvalError naming the first missing unit). Result order
 * is the spec's configuration order and the BEST tie-break is the first
 * minimum, so the outcome is identical no matter where or in how many
 * shards the units ran.
 */
SweepResult sweepFromResults(const SweepSpec& spec, const ResultSet& results);

/** The deduplicating union of the specs' units (shared meta untouched). */
Manifest manifestForSpecs(const std::vector<SweepSpec>& specs);

/**
 * A sweep whose runs are enqueued on a Session executor but not yet
 * gathered. Move-only; collect() may be called once. The Session must
 * outlive the PendingSweep's collect().
 */
class PendingSweep
{
  public:
    const Workload& workload() const { return spec_.workload; }

    /**
     * Block until every run finishes and assemble the SweepResult,
     * bit-identical at any executor width.
     */
    SweepResult collect();

  private:
    friend PendingSweep submitSweep(Session&, const Workload&,
                                    std::vector<SystemConfig>,
                                    std::optional<SimParams>, double);

    SweepSpec spec_;
    PendingManifest pending_;
};

/**
 * Enqueue @p workload under every configuration in @p configs (the
 * baseline and the model's prediction are added when missing) on
 * @p session's executor, without blocking on the runs. @p params and
 * @p scale default to the session's SessionOptions (nullopt / 0), the
 * same defaults every plain run() on the session uses, so a sweep is
 * never silently inconsistent with direct runs on the same session.
 *
 * The model prediction (graph build + profiling) happens here, on the
 * caller's thread, because the spec's unit list depends on it — a
 * deliberate trade for serializable sweeps. Callers submitting many
 * sweeps over many *distinct* inputs should pre-warm the graphs (see
 * figureSet's concurrent warm) or use figureSet directly.
 */
PendingSweep submitSweep(Session& session, const Workload& workload,
                         std::vector<SystemConfig> configs,
                         std::optional<SimParams> params = std::nullopt,
                         double scale = 0.0);

/** submitSweep + collect: the blocking sweep through a shared Session. */
SweepResult sweepWorkload(Session& session, const Workload& workload,
                          std::vector<SystemConfig> configs,
                          std::optional<SimParams> params = std::nullopt,
                          double scale = 0.0);

/** Execution knobs for the standalone sweepWorkload overload. */
struct SweepOptions
{
    /**
     * Executor width for the internally-created Session. 0 = the
     * GGA_SESSION_THREADS environment default (which honors the
     * deprecated GGA_SWEEP_THREADS as a fallback). The SweepResult is
     * bit-identical to the serial path at any thread count.
     */
    unsigned threads = 0;

    /**
     * Preset graph scale for the internally-created Session; 0 = the
     * GGA_SCALE evaluation scale (the legacy default).
     */
    double scale = 0.0;
};

/**
 * Standalone sweep: creates a private Session sized by @p opts. Prefer
 * the Session-taking overload (or submitSweep) so concurrent sweeps share
 * one executor.
 */
SweepResult sweepWorkload(const Workload& workload,
                          std::vector<SystemConfig> configs,
                          const SimParams& params = SimParams{},
                          const SweepOptions& opts = SweepOptions{});

/** The baseline configuration a workload's Fig. 5 group normalizes to. */
SystemConfig baselineConfig(const Workload& workload);

/**
 * The model's prediction for a workload (full design space), profiling
 * the input through the GraphStore at @p scale (0 = the GGA_SCALE
 * evaluation scale).
 */
SystemConfig predictWorkload(const Workload& workload,
                             const SimParams& params = SimParams{},
                             double scale = 0.0);

} // namespace gga

#endif // GGA_HARNESS_SWEEP_HPP
