/**
 * @file
 * Design-space sweeps: run a workload across configuration sets, find the
 * empirical BEST, and pair it with the model's PRED.
 */

#ifndef GGA_HARNESS_SWEEP_HPP
#define GGA_HARNESS_SWEEP_HPP

#include <vector>

#include "apps/runner.hpp"
#include "harness/workloads.hpp"
#include "model/decision_tree.hpp"
#include "taxonomy/profile.hpp"

namespace gga {

/** One configuration's outcome for a workload. */
struct ConfigResult
{
    SystemConfig config;
    RunResult run;
};

/** A full sweep of one workload. */
struct SweepResult
{
    Workload workload;
    std::vector<ConfigResult> results;
    SystemConfig best;       ///< lowest-cycle configuration in the sweep
    SystemConfig predicted;  ///< the model's choice (full design space)
    Cycles bestCycles = 0;
    Cycles predictedCycles = 0;
    Cycles baselineCycles = 0; ///< TG0 (DG1 for dynamic apps)

    const ConfigResult* find(const SystemConfig& cfg) const;
};

/**
 * Run @p workload under every configuration in @p configs (must include
 * the model's prediction and the baseline, or they are added), and fill
 * in BEST/PRED.
 */
SweepResult sweepWorkload(const Workload& workload,
                          std::vector<SystemConfig> configs,
                          const SimParams& params = SimParams{});

/** The baseline configuration a workload's Fig. 5 group normalizes to. */
SystemConfig baselineConfig(const Workload& workload);

/** The model's prediction for a workload (full design space). */
SystemConfig predictWorkload(const Workload& workload,
                             const SimParams& params = SimParams{});

} // namespace gga

#endif // GGA_HARNESS_SWEEP_HPP
