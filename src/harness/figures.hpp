/**
 * @file
 * Table/figure assembly helpers shared by the bench binaries.
 */

#ifndef GGA_HARNESS_FIGURES_HPP
#define GGA_HARNESS_FIGURES_HPP

#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "support/table.hpp"

namespace gga {

/**
 * Append one row per configuration of @p sweep: normalized execution time
 * (to the workload's baseline) with the Busy/Comp/Data/Sync/Idle split,
 * tagging the BEST and PRED configurations.
 */
void addSweepRows(TextTable& table, const SweepResult& sweep);

/** Cells for one run: norm, busy%, comp%, data%, sync%, idle%. */
std::vector<std::string> breakdownCells(const RunResult& run,
                                        double baseline_cycles);

/** Geometric-mean normalized time of a set of (cycles, baseline) pairs. */
double geomeanNormalized(const std::vector<double>& normalized);

} // namespace gga

#endif // GGA_HARNESS_FIGURES_HPP
