/**
 * @file
 * Figure/table assembly over the evaluation pipeline.
 *
 * Each figure is (1) a FigureSet — the per-workload SweepSpecs plus the
 * deduplicated Manifest realizing them — built by figureSet(), and (2) a
 * renderer that turns any ResultSet covering that manifest into the
 * figure's text/CSV tables. The bench binaries run the manifest
 * in-process (runManifest) and render; the gga_worker/gga_merge CLIs run
 * shards out-of-process and render the merged parts — both produce
 * byte-identical tables because the units and the renderers are shared.
 */

#ifndef GGA_HARNESS_FIGURES_HPP
#define GGA_HARNESS_FIGURES_HPP

#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "support/table.hpp"

namespace gga {

/** A figure's sweeps and the manifest that executes them. */
struct FigureSet
{
    std::string figure; ///< "fig5" | "fig6" | "partial"
    double scale = 1.0;
    bool full = false; ///< fig5 --full: sweep the whole space for BEST
    /** One spec per workload, paper order (apps major, inputs minor). */
    std::vector<SweepSpec> specs;
    /** partial only: the no-DRFrlx restricted sweep of each workload. */
    std::vector<SweepSpec> restricted;
    /** partial only: the restricted model's pick per workload — computed
     *  at build time (and carried in manifest meta) so rendering merged
     *  results never needs to construct or profile an input graph. */
    std::vector<SystemConfig> partialPredicted;
    /** Deduplicated union of all spec units, with rendering meta. */
    Manifest manifest;
};

/**
 * Build @p figure ("fig5", "fig6", or "partial") at @p scale. fig5 and
 * fig6 share their units (the Fig. 5 sweep matrix; @p full widens the
 * BEST search to the whole space); "partial" adds the restricted
 * no-DRFrlx sweeps, deduplicated against the full ones. The manifest
 * meta records figure/scale/full so figureSetFromManifest can rebuild
 * the rendering structure from the serialized manifest alone.
 */
FigureSet figureSet(const std::string& figure, double scale,
                    bool full = false,
                    const SimParams& params = SimParams{});

/**
 * Rebuild the FigureSet a serialized manifest was generated from (its
 * meta names figure/scale/full) and verify the rebuilt units match the
 * manifest exactly; throws EvalError on unknown meta or a mismatch
 * (e.g. a hand-edited unit list).
 */
FigureSet figureSetFromManifest(const Manifest& manifest);

/**
 * Render @p set from any ResultSet covering its manifest: the figure's
 * tables plus its summary footer, exactly as the corresponding bench
 * binary prints after its header line. Throws EvalError when a unit's
 * result is missing.
 */
std::string renderFigure(const FigureSet& set, const ResultSet& results,
                         bool csv);

/**
 * Append one row per configuration of @p sweep: normalized execution time
 * (to the workload's baseline) with the Busy/Comp/Data/Sync/Idle split,
 * tagging the BEST and PRED configurations.
 */
void addSweepRows(TextTable& table, const SweepResult& sweep);

/** Cells for one run: norm, busy%, comp%, data%, sync%, idle%. */
std::vector<std::string> breakdownCells(const RunResult& run,
                                        double baseline_cycles);

/** Geometric-mean normalized time of a set of (cycles, baseline) pairs. */
double geomeanNormalized(const std::vector<double>& normalized);

} // namespace gga

#endif // GGA_HARNESS_FIGURES_HPP
