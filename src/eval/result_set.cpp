#include "eval/result_set.hpp"

#include <algorithm>

namespace gga {

namespace {

Json
memStatsToJson(const MemStats& m)
{
    Json j = Json::object();
    j.set("l1_load_hits", m.l1LoadHits);
    j.set("l1_load_misses", m.l1LoadMisses);
    j.set("l1_stores", m.l1Stores);
    j.set("l1_atomic_hits", m.l1AtomicHits);
    j.set("ownership_requests", m.ownershipRequests);
    j.set("ownership_forwards", m.ownershipForwards);
    j.set("l2_atomics", m.l2Atomics);
    j.set("l2_reads", m.l2Reads);
    j.set("l2_read_misses", m.l2ReadMisses);
    j.set("l2_writes", m.l2Writes);
    j.set("flushed_lines", m.flushedLines);
    j.set("acquire_invalidated_lines", m.acquireInvalidatedLines);
    j.set("recalls", m.recalls);
    j.set("dram_reads", m.dramReads);
    j.set("dram_writes", m.dramWrites);
    j.set("l1_retries", m.l1Retries);
    j.set("l2_read_lag_sum", m.l2ReadLagSum);
    j.set("l2_atomic_lag_sum", m.l2AtomicLagSum);
    return j;
}

MemStats
memStatsFromJson(const Json& j)
{
    // Every member below is required; a count match therefore proves
    // there are no unknown extras either.
    if (j.asObject().size() != 18)
        throw EvalError("mem stats object must have exactly its 18 "
                        "counters");
    MemStats m;
    m.l1LoadHits = j.at("l1_load_hits").asU64();
    m.l1LoadMisses = j.at("l1_load_misses").asU64();
    m.l1Stores = j.at("l1_stores").asU64();
    m.l1AtomicHits = j.at("l1_atomic_hits").asU64();
    m.ownershipRequests = j.at("ownership_requests").asU64();
    m.ownershipForwards = j.at("ownership_forwards").asU64();
    m.l2Atomics = j.at("l2_atomics").asU64();
    m.l2Reads = j.at("l2_reads").asU64();
    m.l2ReadMisses = j.at("l2_read_misses").asU64();
    m.l2Writes = j.at("l2_writes").asU64();
    m.flushedLines = j.at("flushed_lines").asU64();
    m.acquireInvalidatedLines = j.at("acquire_invalidated_lines").asU64();
    m.recalls = j.at("recalls").asU64();
    m.dramReads = j.at("dram_reads").asU64();
    m.dramWrites = j.at("dram_writes").asU64();
    m.l1Retries = j.at("l1_retries").asU64();
    m.l2ReadLagSum = j.at("l2_read_lag_sum").asU64();
    m.l2AtomicLagSum = j.at("l2_atomic_lag_sum").asU64();
    return m;
}

} // namespace

Json
UnitResult::toJson() const
{
    Json j = Json::object();
    j.set("key", key);
    j.set("cycles", run.cycles);
    Json bd = Json::object();
    bd.set("busy", run.breakdown.busy);
    bd.set("comp", run.breakdown.comp);
    bd.set("data", run.breakdown.data);
    bd.set("sync", run.breakdown.sync);
    bd.set("idle", run.breakdown.idle);
    j.set("breakdown", std::move(bd));
    j.set("mem", memStatsToJson(run.mem));
    j.set("kernels", static_cast<std::uint64_t>(run.kernels));
    j.set("events", run.events);
    if (output) {
        Json o = Json::object();
        o.set("kind", output->kind);
        o.set("elements", output->elements);
        o.set("hash", output->hash);
        j.set("output", std::move(o));
    }
    return j;
}

UnitResult
UnitResult::fromJson(const Json& j)
{
    // Strict like the manifest side: unknown members are rejected so a
    // hand-edited part file fails loudly.
    for (const auto& [key, value] : j.asObject()) {
        if (key != "key" && key != "cycles" && key != "breakdown" &&
            key != "mem" && key != "kernels" && key != "events" &&
            key != "output")
            throw EvalError("unknown unit-result member '" + key + "'");
    }
    UnitResult r;
    r.key = j.at("key").asString();
    if (r.key.empty())
        throw EvalError("unit result with an empty key");
    r.run.cycles = j.at("cycles").asU64();
    const Json& bd = j.at("breakdown");
    if (bd.asObject().size() != 5)
        throw EvalError("breakdown object must have exactly its 5 "
                        "categories");
    r.run.breakdown.busy = bd.at("busy").asDouble();
    r.run.breakdown.comp = bd.at("comp").asDouble();
    r.run.breakdown.data = bd.at("data").asDouble();
    r.run.breakdown.sync = bd.at("sync").asDouble();
    r.run.breakdown.idle = bd.at("idle").asDouble();
    r.run.mem = memStatsFromJson(j.at("mem"));
    r.run.kernels = static_cast<std::uint32_t>(j.at("kernels").asU64());
    r.run.events = j.at("events").asU64();
    if (const Json* o = j.find("output")) {
        if (o->asObject().size() != 3)
            throw EvalError("output summary must have exactly "
                            "kind/elements/hash");
        OutputSummary s;
        s.kind = o->at("kind").asString();
        s.elements = o->at("elements").asU64();
        s.hash = o->at("hash").asU64();
        r.output = std::move(s);
    }
    return r;
}

void
ResultSet::add(UnitResult r)
{
    const auto pos = std::lower_bound(
        results_.begin(), results_.end(), r.key,
        [](const UnitResult& a, const std::string& key) {
            return a.key < key;
        });
    if (pos != results_.end() && pos->key == r.key)
        throw EvalError("duplicate result for work unit '" + r.key + "'");
    results_.insert(pos, std::move(r));
}

const UnitResult*
ResultSet::find(std::string_view key) const
{
    const auto pos = std::lower_bound(
        results_.begin(), results_.end(), key,
        [](const UnitResult& a, std::string_view k) { return a.key < k; });
    if (pos == results_.end() || pos->key != key)
        return nullptr;
    return &*pos;
}

const UnitResult&
ResultSet::at(std::string_view key) const
{
    if (const UnitResult* r = find(key))
        return *r;
    throw EvalError("no result for work unit '" + std::string(key) + "'");
}

ResultSet
ResultSet::fromRows(std::vector<UnitResult> rows)
{
    std::stable_sort(rows.begin(), rows.end(),
                     [](const UnitResult& a, const UnitResult& b) {
                         return a.key < b.key;
                     });
    for (std::size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].key == rows[i - 1].key)
            throw EvalError("duplicate result for work unit '" +
                            rows[i].key + "'");
    }
    ResultSet out;
    out.results_ = std::move(rows);
    return out;
}

ResultSet
ResultSet::merge(const std::vector<ResultSet>& parts)
{
    std::vector<UnitResult> rows;
    std::size_t total = 0;
    for (const ResultSet& part : parts)
        total += part.size();
    rows.reserve(total);
    for (const ResultSet& part : parts)
        rows.insert(rows.end(), part.results_.begin(), part.results_.end());
    return fromRows(std::move(rows)); // throws on a duplicate key
}

void
ResultSet::verifyComplete(const Manifest& manifest) const
{
    std::vector<std::string> expected;
    expected.reserve(manifest.size());
    for (const WorkUnit& u : manifest.units())
        expected.push_back(u.key());
    std::sort(expected.begin(), expected.end());

    std::string missing;
    for (const std::string& key : expected) {
        if (!find(key))
            missing += (missing.empty() ? "" : ", ") + key;
    }
    std::string unexpected;
    for (const UnitResult& r : results_) {
        if (!std::binary_search(expected.begin(), expected.end(), r.key))
            unexpected += (unexpected.empty() ? "" : ", ") + r.key;
    }
    if (missing.empty() && unexpected.empty())
        return;
    std::string why = "merged results do not cover the manifest:";
    if (!missing.empty())
        why += " missing [" + missing + "]";
    if (!unexpected.empty())
        why += " unexpected [" + unexpected + "]";
    throw EvalError(why);
}

Json
ResultSet::toJson() const
{
    Json j = Json::object();
    Json arr = Json::array();
    for (const UnitResult& r : results_)
        arr.push(r.toJson());
    j.set("results", std::move(arr));
    return j;
}

ResultSet
ResultSet::fromJson(const Json& j)
{
    for (const auto& [key, value] : j.asObject()) {
        if (key != "results")
            throw EvalError("unknown result-set member '" + key + "'");
    }
    std::vector<UnitResult> rows;
    rows.reserve(j.at("results").asArray().size());
    for (const Json& r : j.at("results").asArray())
        rows.push_back(UnitResult::fromJson(r));
    return fromRows(std::move(rows));
}

void
ResultSet::save(const std::string& file_path) const
{
    writeTextFile(file_path, toJson().dump(2) + "\n");
}

ResultSet
ResultSet::load(const std::string& file_path)
{
    return fromJson(Json::parse(readTextFile(file_path)));
}

} // namespace gga
