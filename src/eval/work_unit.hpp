/**
 * @file
 * WorkUnit: one serializable cell of the evaluation matrix.
 *
 * A work unit names everything needed to reproduce one simulator run in
 * any process — application, input (synthetic preset at a scale, or a
 * MatrixMarket file path), design-space configuration, an optional
 * hardware-parameter override, and a seed — plus a deterministic string
 * key that identifies the unit across manifest, shards, and merged
 * results. Execution anywhere yields bit-identical results because the
 * simulator itself is deterministic.
 */

#ifndef GGA_EVAL_WORK_UNIT_HPP
#define GGA_EVAL_WORK_UNIT_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "graph/presets.hpp"
#include "model/algo_props.hpp"
#include "model/config.hpp"
#include "sim/params.hpp"
#include "support/json.hpp"

namespace gga {

/**
 * Thrown by the evaluation pipeline on malformed manifests/result sets
 * and on merge conflicts (duplicate or missing units). An exception, not
 * a fatal: a bad shard file from disk is user input the worker/merge
 * tools must be able to report cleanly, and tests must be able to catch.
 */
class EvalError : public std::runtime_error
{
  public:
    explicit EvalError(const std::string& why) : std::runtime_error(why) {}
};

/** One (app, input, config, params, seed) cell of the evaluation matrix. */
struct WorkUnit
{
    AppId app = AppId::Pr;
    /** Exactly one of preset/path identifies the input graph. */
    std::optional<GraphPreset> preset;
    std::string path;  ///< MatrixMarket file; empty for preset inputs
    double scale = 1.0; ///< preset scale in (0, 1]; 1.0 for file inputs
    SystemConfig config;
    /** Hardware point; absent = the app's AppRegistry params preset. */
    std::optional<SimParams> params;
    /** Reserved for stochastic apps; part of the unit's identity. */
    std::uint64_t seed = 0;
    /** Collect (and summarize) the app's functional output. */
    bool collectOutputs = false;

    bool operator==(const WorkUnit&) const = default;

    /** "RAJ" for presets, the path for files. */
    std::string inputName() const;

    /**
     * Deterministic identity string, e.g.
     * "PR-RAJ@SGR x100000" (preset RAJ at scale 0.1) with optional
     * " #s<seed>", " #p<params-hash>", and " +out" suffixes. Equal keys
     * mean identical runs; ResultSet ordering and merge are keyed on it.
     */
    std::string key() const;

    Json toJson() const;
    /** Throws EvalError on unknown names / malformed structure. */
    static WorkUnit fromJson(const Json& j);
};

/** Full (all fields, fixed order) SimParams serialization. */
Json simParamsToJson(const SimParams& p);

/**
 * Rebuild SimParams from JSON: starts from the defaults and applies the
 * members present, so manifests stay readable across parameter additions.
 * Throws EvalError on an unknown member (a typo must not silently run
 * the default hardware).
 */
SimParams simParamsFromJson(const Json& j);

/** FNV-1a over the canonical serialization (the "#p" key component). */
std::uint64_t simParamsHash(const SimParams& p);

} // namespace gga

#endif // GGA_EVAL_WORK_UNIT_HPP
