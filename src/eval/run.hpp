/**
 * @file
 * Manifest execution on the in-process Session executor — the fast path
 * the worker CLI and the bench binaries share.
 *
 * submitManifest enqueues every unit on the session's TaskPool in
 * manifest order (exactly the submitAll ordering the pre-manifest
 * benches used) without blocking; PendingManifest::collect gathers the
 * futures and returns the key-sorted ResultSet. Because every unit is an
 * independent deterministic simulation, the results are bit-identical at
 * any executor width and any sharding of the manifest.
 */

#ifndef GGA_EVAL_RUN_HPP
#define GGA_EVAL_RUN_HPP

#include <functional>
#include <future>
#include <vector>

#include "api/session.hpp"
#include "eval/manifest.hpp"
#include "eval/result_set.hpp"

namespace gga {

/** Typed digest of a run's functional output (empty optional if none). */
std::optional<OutputSummary> summarizeOutput(const RunOutcome& outcome);

/** The RunPlan a work unit executes as (params default: registry preset). */
RunPlan planForUnit(const WorkUnit& unit);

/**
 * The executor lane a manifest's units run on: its meta "priority" entry
 * parsed as a lane name, defaulting to Lane::Batch (manifests are the
 * bulk work the interactive lane overtakes). An unparseable value warns
 * and falls back to batch.
 */
Lane manifestLane(const Manifest& manifest);

/**
 * A manifest whose runs are enqueued on a Session executor but not yet
 * gathered. Move-only; collect() may be called once; the Session must
 * outlive it.
 */
class PendingManifest
{
  public:
    /** Block until every unit finishes; throws EvalError if any plan
     *  failed validation (naming the unit). */
    ResultSet collect();

    std::size_t size() const { return keys_.size(); }

  private:
    friend PendingManifest submitManifest(Session&, const Manifest&);

    std::vector<std::string> keys_;
    std::vector<std::future<RunOutcome>> futures_;
};

/** Enqueue every unit of @p manifest on @p session's executor. */
PendingManifest submitManifest(Session& session, const Manifest& manifest);

/** submitManifest + collect: the blocking in-process fast path. */
ResultSet runManifest(Session& session, const Manifest& manifest);

/**
 * One unit's completion notice for streaming consumers (the resident
 * service's job table). Exactly one of result/error is meaningful: on
 * success @c result is set; when the unit's plan fails validation
 * @c error carries the reason and @c result stays empty.
 */
struct UnitEvent
{
    std::size_t index = 0; ///< position in the manifest
    std::string key;       ///< WorkUnit::key()
    std::optional<UnitResult> result;
    std::string error;
    std::string appName; ///< "PR", "BC", ... (empty on a plan error)
    double millis = 0;   ///< wall time of the unit's run
};

/**
 * Enqueue every unit of @p manifest and invoke @p onUnit as each one
 * finishes, in completion order (not manifest order). The callback runs
 * on executor threads — possibly several at once — so it must be
 * thread-safe and cheap; a unit whose plan fails validation produces an
 * error event instead of throwing. The caller is responsible for
 * counting manifest.size() events before tearing anything down, and the
 * Session (plus whatever the callback captures) must stay alive until
 * then. UnitResult rows carry the same data as runManifest's, so a
 * ResultSet assembled from the events is bit-identical to the blocking
 * path's.
 */
void submitManifestStreamed(Session& session, const Manifest& manifest,
                            std::function<void(const UnitEvent&)> onUnit);

} // namespace gga

#endif // GGA_EVAL_RUN_HPP
