#include "eval/manifest.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "api/graph_store.hpp"

namespace gga {

void
Manifest::append(WorkUnit unit)
{
    keys_.insert(unit.key());
    units_.push_back(std::move(unit));
}

void
Manifest::add(WorkUnit unit)
{
    if (contains(unit.key()))
        throw EvalError("duplicate work unit '" + unit.key() +
                        "' in manifest");
    append(std::move(unit));
}

bool
Manifest::addUnique(WorkUnit unit)
{
    if (contains(unit.key()))
        return false;
    append(std::move(unit));
    return true;
}

bool
Manifest::contains(const std::string& key) const
{
    return keys_.count(key) != 0;
}

Manifest
Manifest::filter(const std::function<bool(const WorkUnit&)>& pred) const
{
    Manifest out;
    out.meta = meta;
    for (const WorkUnit& u : units_) {
        if (pred(u))
            out.append(u);
    }
    return out;
}

double
Manifest::unitCost(const WorkUnit& unit)
{
    if (!unit.preset)
        return 1.0; // file size unknown until loaded; assume uniform
    return static_cast<double>(paperStats(*unit.preset).edges) * unit.scale;
}

Manifest
Manifest::shard(std::size_t index, std::size_t count,
                ShardPolicy policy) const
{
    if (count == 0)
        throw EvalError("shard count must be positive");
    if (index >= count)
        throw EvalError("shard index " + std::to_string(index) +
                        " out of range for " + std::to_string(count) +
                        " shards");
    Manifest out;
    out.meta = meta;
    out.meta["shard"] =
        std::to_string(index) + "/" + std::to_string(count);
    if (policy == ShardPolicy::RoundRobin) {
        for (std::size_t i = index; i < units_.size(); i += count)
            out.append(units_[i]);
        return out;
    }
    // ByCost: greedy LPT — visit units by descending estimated cost
    // (stable on the enumeration index, so the assignment is fully
    // deterministic) and assign each to the currently lightest shard.
    std::vector<std::size_t> order(units_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return unitCost(units_[a]) > unitCost(units_[b]);
                     });
    std::vector<double> load(count, 0.0);
    std::vector<std::vector<std::size_t>> members(count);
    for (std::size_t i : order) {
        const std::size_t lightest = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        load[lightest] += unitCost(units_[i]);
        members[lightest].push_back(i);
    }
    // Keep enumeration order within the shard.
    std::sort(members[index].begin(), members[index].end());
    for (std::size_t i : members[index])
        out.append(units_[i]);
    return out;
}

std::vector<Manifest::GraphInput>
Manifest::graphInputs() const
{
    std::vector<GraphInput> inputs;
    std::set<std::pair<int, std::int64_t>> seen_presets;
    std::set<std::string> seen_paths;
    for (const WorkUnit& u : units_) {
        if (u.preset) {
            // Dedup at the GraphStore's key granularity so prebuilding
            // this list warms exactly the entries the workers will ask
            // for — no more, no less.
            const auto key =
                std::make_pair(static_cast<int>(*u.preset),
                               GraphStore::quantizeScale(u.scale));
            if (!seen_presets.insert(key).second)
                continue;
            inputs.push_back(GraphInput{u.preset, {}, u.scale});
        } else {
            if (!seen_paths.insert(u.path).second)
                continue;
            inputs.push_back(GraphInput{std::nullopt, u.path, 1.0});
        }
    }
    return inputs;
}

std::vector<std::string>
Manifest::sweepParams(AppId app, GraphPreset preset,
                      const SystemConfig& config,
                      const std::vector<SimParams>& points, double scale,
                      bool collect_outputs)
{
    std::vector<std::string> keys;
    keys.reserve(points.size());
    for (const SimParams& p : points) {
        WorkUnit u;
        u.app = app;
        u.preset = preset;
        u.scale = scale;
        u.config = config;
        u.params = p;
        u.collectOutputs = collect_outputs;
        keys.push_back(u.key());
        add(std::move(u));
    }
    return keys;
}

Json
Manifest::toJson() const
{
    Json j = Json::object();
    if (!meta.empty()) {
        Json m = Json::object();
        for (const auto& [k, v] : meta)
            m.set(k, v);
        j.set("meta", std::move(m));
    }
    Json units = Json::array();
    for (const WorkUnit& u : units_)
        units.push(u.toJson());
    j.set("units", std::move(units));
    return j;
}

Manifest
Manifest::fromJson(const Json& j)
{
    // Strict like WorkUnit::fromJson: a misplaced member in a
    // hand-edited manifest must fail loudly, not be dropped.
    for (const auto& [key, value] : j.asObject()) {
        if (key != "meta" && key != "units")
            throw EvalError("unknown manifest member '" + key + "'");
    }
    Manifest out;
    if (const Json* m = j.find("meta")) {
        for (const auto& [k, v] : m->asObject())
            out.meta[k] = v.asString();
    }
    for (const Json& u : j.at("units").asArray())
        out.add(WorkUnit::fromJson(u));
    return out;
}

void
Manifest::save(const std::string& file_path) const
{
    writeTextFile(file_path, toJson().dump(2) + "\n");
}

Manifest
Manifest::load(const std::string& file_path)
{
    return fromJson(Json::parse(readTextFile(file_path)));
}

} // namespace gga
