/**
 * @file
 * Manifest: a flat, serializable list of WorkUnits — the unit of
 * distribution for the evaluation pipeline.
 *
 * Every figure/table/bench is expressed as a manifest instead of an
 * imperative loop over Session: enumerate the matrix once, optionally
 * filter it, shard it across workers (round-robin or cost-balanced),
 * round-trip it through JSON, and execute each shard anywhere. Because
 * WorkUnit keys are deterministic and the simulator is deterministic,
 * the merged results never depend on the shard count.
 */

#ifndef GGA_EVAL_MANIFEST_HPP
#define GGA_EVAL_MANIFEST_HPP

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "eval/work_unit.hpp"

namespace gga {

/** How Manifest::shard distributes units across workers. */
enum class ShardPolicy
{
    RoundRobin, ///< unit i goes to shard i % count
    ByCost,     ///< greedy longest-processing-time on estimated unit cost
};

class Manifest
{
  public:
    /** The units, in enumeration order (the in-process execution order). */
    const std::vector<WorkUnit>& units() const { return units_; }

    /**
     * Free-form metadata carried through JSON (e.g. figure="fig5",
     * scale="0.1") so render tools can rebuild the figure structure from
     * the manifest alone. Keys serialize sorted (std::map) — dumps are
     * deterministic.
     */
    std::map<std::string, std::string> meta;

    bool empty() const { return units_.empty(); }
    std::size_t size() const { return units_.size(); }

    /** Append @p unit; throws EvalError if its key is already present. */
    void add(WorkUnit unit);

    /**
     * Append @p unit unless an identical key is already present; returns
     * whether it was added. The dedup point for figure builders whose
     * sweeps overlap (e.g. the partial-design-space full and restricted
     * sweeps share their non-relaxed configurations).
     */
    bool addUnique(WorkUnit unit);

    bool contains(const std::string& key) const;

    /** The units for which @p pred holds, same order, same meta. */
    Manifest filter(const std::function<bool(const WorkUnit&)>& pred) const;

    /**
     * The sub-manifest shard @p index of @p count. Deterministic for a
     * given (manifest, policy, count): every unit lands in exactly one
     * shard, and the union over all indices is the whole manifest.
     * RoundRobin preserves enumeration order within a shard; ByCost
     * balances estimated work (greedy LPT over unitCost) so one slow
     * shard doesn't gate the merge. Throws EvalError on index >= count
     * or count == 0.
     */
    Manifest shard(std::size_t index, std::size_t count,
                   ShardPolicy policy = ShardPolicy::RoundRobin) const;

    /**
     * Estimated relative cost of @p unit: the input's directed edge count
     * at the unit's scale (file inputs fall back to a uniform constant —
     * their size is unknown until loaded). Cheap (no graph builds).
     */
    static double unitCost(const WorkUnit& unit);

    /** One distinct input graph a manifest's units reference. */
    struct GraphInput
    {
        std::optional<GraphPreset> preset; ///< absent for file inputs
        std::string path;                  ///< empty for preset inputs
        double scale = 1.0;

        bool operator==(const GraphInput&) const = default;
    };

    /**
     * The distinct input graphs this manifest's units need, in first-use
     * order — preset inputs deduplicated at GraphStore scale-key
     * granularity (quantizeScale), file inputs by path. The prebuild
     * seam: gga_graphs snapshots exactly this set into a cache directory
     * before the workers start.
     */
    std::vector<GraphInput> graphInputs() const;

    /**
     * Append one unit per hardware point in @p points for the same
     * (app, input, config) cell — the ablation-bench helper. Returns the
     * keys of the appended units in point order, for result lookup.
     */
    std::vector<std::string>
    sweepParams(AppId app, GraphPreset preset, const SystemConfig& config,
                const std::vector<SimParams>& points, double scale,
                bool collect_outputs = false);

    Json toJson() const;
    static Manifest fromJson(const Json& j); ///< throws EvalError

    /** File round trip (pretty-printed JSON). Throws on IO failure. */
    void save(const std::string& file_path) const;
    static Manifest load(const std::string& file_path);

    bool
    operator==(const Manifest& o) const
    {
        return units_ == o.units_ && meta == o.meta;
    }

  private:
    /** Append without a duplicate check (units known distinct). */
    void append(WorkUnit unit);

    std::vector<WorkUnit> units_;
    /** Key index: O(log n) duplicate checks instead of re-deriving every
     *  stored unit's key per insertion. */
    std::set<std::string> keys_;
};

} // namespace gga

#endif // GGA_EVAL_MANIFEST_HPP
