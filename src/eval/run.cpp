#include "eval/run.hpp"

#include <chrono>
#include <memory>

#include "support/log.hpp"
#include "support/rng.hpp"

namespace gga {

namespace {

template <typename T>
std::uint64_t
hashVector(const std::vector<T>& v, std::uint64_t h = kFnv1aBasis)
{
    return fnv1a(v.data(), v.size() * sizeof(T), h);
}

} // namespace

std::optional<OutputSummary>
summarizeOutput(const RunOutcome& outcome)
{
    if (!outcome.hasOutput())
        return std::nullopt;
    OutputSummary s;
    s.kind = outcome.appName;
    if (const PrOutput* pr = outcome.pr()) {
        s.elements = pr->ranks.size();
        s.hash = hashVector(pr->ranks);
    } else if (const SsspOutput* sssp = outcome.sssp()) {
        s.elements = sssp->dist.size();
        s.hash = hashVector(sssp->dist);
    } else if (const MisOutput* mis = outcome.mis()) {
        s.elements = mis->state.size();
        s.hash = hashVector(mis->state);
    } else if (const ClrOutput* clr = outcome.clr()) {
        s.elements = clr->colors.size();
        s.hash = hashVector(clr->colors);
    } else if (const BcOutput* bc = outcome.bc()) {
        s.elements = bc->delta.size();
        s.hash = hashVector(bc->sigma,
                            hashVector(bc->level, hashVector(bc->delta)));
    } else if (const CcOutput* cc = outcome.cc()) {
        s.elements = cc->labels.size();
        s.hash = hashVector(cc->labels);
    }
    return s;
}

RunPlan
planForUnit(const WorkUnit& unit)
{
    RunPlan plan;
    plan.app(unit.app);
    if (unit.preset)
        plan.graph(*unit.preset).scale(unit.scale);
    else
        plan.graphFile(unit.path);
    plan.config(unit.config);
    if (unit.params) {
        plan.params(*unit.params);
    } else if (const AppRegistry::Entry* e =
                   AppRegistry::instance().find(unit.app)) {
        // The app's registered hardware preset, not the session default:
        // a unit must run identically no matter which session executes
        // its shard.
        plan.params(e->params);
    }
    plan.collectOutputs(unit.collectOutputs);
    plan.seed(unit.seed);
    return plan;
}

Lane
manifestLane(const Manifest& manifest)
{
    const auto it = manifest.meta.find("priority");
    if (it == manifest.meta.end())
        return Lane::Batch;
    if (const std::optional<Lane> lane = parseLane(it->second))
        return *lane;
    GGA_WARN("manifest priority '", it->second,
             "' is not a lane name; using batch");
    return Lane::Batch;
}

PendingManifest
submitManifest(Session& session, const Manifest& manifest)
{
    const Lane lane = manifestLane(manifest);
    PendingManifest pending;
    pending.keys_.reserve(manifest.size());
    std::vector<RunPlan> plans;
    plans.reserve(manifest.size());
    for (const WorkUnit& u : manifest.units()) {
        pending.keys_.push_back(u.key());
        plans.push_back(planForUnit(u).priority(lane));
    }
    pending.futures_ = session.submitAll(std::move(plans));
    return pending;
}

ResultSet
PendingManifest::collect()
{
    std::vector<UnitResult> rows;
    rows.reserve(futures_.size());
    for (std::size_t i = 0; i < futures_.size(); ++i) {
        try {
            RunOutcome outcome = futures_[i].get();
            UnitResult r;
            r.key = keys_[i];
            r.run = outcome.result;
            r.output = summarizeOutput(outcome);
            rows.push_back(std::move(r));
        } catch (const PlanError& err) {
            throw EvalError("work unit '" + keys_[i] + "': " + err.what());
        }
    }
    futures_.clear();
    keys_.clear();
    return ResultSet::fromRows(std::move(rows));
}

ResultSet
runManifest(Session& session, const Manifest& manifest)
{
    return submitManifest(session, manifest).collect();
}

namespace {

/**
 * Per-unit context of a streamed manifest, heap-boxed so the queue task
 * is one unique_ptr — InlineFunction's 64 inline bytes hold it with room
 * to spare, and the RunPlan/key/callback live in one allocation.
 */
struct StreamedUnit
{
    Session* session = nullptr;
    std::shared_ptr<std::function<void(const UnitEvent&)>> cb;
    std::size_t index = 0;
    std::string key;
    RunPlan plan;
};

void
runStreamedUnit(const StreamedUnit& unit)
{
    UnitEvent ev;
    ev.index = unit.index;
    ev.key = unit.key;
    std::string why;
    const auto t0 = std::chrono::steady_clock::now();
    if (std::optional<RunOutcome> out = unit.session->tryRun(unit.plan, &why)) {
        UnitResult r;
        r.key = unit.key;
        r.run = out->result;
        r.output = summarizeOutput(*out);
        ev.result = std::move(r);
        ev.appName = out->appName;
    } else {
        ev.error = "work unit '" + unit.key + "': invalid run plan: " + why;
    }
    ev.millis = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    (*unit.cb)(ev);
}

} // namespace

void
submitManifestStreamed(Session& session, const Manifest& manifest,
                       std::function<void(const UnitEvent&)> onUnit)
{
    GGA_ASSERT(onUnit, "submitManifestStreamed needs a callback");
    const Lane lane = manifestLane(manifest);
    // One shared copy of the callback: the caller's functor may be heavy.
    auto cb = std::make_shared<std::function<void(const UnitEvent&)>>(
        std::move(onUnit));
    std::vector<TaskPool::Task> tasks;
    tasks.reserve(manifest.size());
    std::size_t index = 0;
    for (const WorkUnit& u : manifest.units()) {
        auto unit = std::make_unique<StreamedUnit>();
        unit->session = &session;
        unit->cb = cb;
        unit->index = index;
        unit->key = u.key();
        unit->plan = planForUnit(u).priority(lane);
        tasks.emplace_back(
            [unit = std::move(unit)] { runStreamedUnit(*unit); });
        ++index;
    }
    session.executor().postAll(std::move(tasks), lane);
}

} // namespace gga
