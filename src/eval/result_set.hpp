/**
 * @file
 * ResultSet: the serializable per-unit outcomes of executing a manifest
 * (or one shard of it), plus the deterministic merge.
 *
 * Results are keyed on WorkUnit::key() and stored sorted by key, so a
 * merged set is byte-identical no matter how many shards produced it or
 * in which order the parts arrive. Merge rejects duplicate units, and
 * verifyComplete rejects a merge that doesn't cover its manifest —
 * losing a shard must be a loud error, not a quietly thinner table.
 */

#ifndef GGA_EVAL_RESULT_SET_HPP
#define GGA_EVAL_RESULT_SET_HPP

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/app.hpp"
#include "eval/manifest.hpp"

namespace gga {

/**
 * Compact typed digest of an app's functional output: enough to check
 * cross-shard/cross-host agreement without shipping per-vertex vectors.
 */
struct OutputSummary
{
    std::string kind;          ///< producing app ("PR", "BC", ...)
    std::uint64_t elements = 0; ///< per-vertex output length
    std::uint64_t hash = 0;     ///< FNV-1a over the raw output bytes

    bool operator==(const OutputSummary&) const = default;
};

/** Everything one executed work unit produced. */
struct UnitResult
{
    std::string key; ///< WorkUnit::key() of the unit that produced this
    RunResult run;   ///< cycles, stall breakdown, MemStats, kernels, events
    std::optional<OutputSummary> output; ///< when the unit collected outputs

    bool operator==(const UnitResult&) const = default;

    Json toJson() const;
    static UnitResult fromJson(const Json& j); ///< throws EvalError
};

class ResultSet
{
  public:
    /** All results, sorted by unit key (the canonical order). */
    const std::vector<UnitResult>& results() const { return results_; }

    bool empty() const { return results_.empty(); }
    std::size_t size() const { return results_.size(); }

    /** Insert in key order; throws EvalError on a duplicate key. */
    void add(UnitResult r);

    /**
     * Bulk constructor: one sort plus an adjacent-duplicate scan instead
     * of per-element sorted inserts — O(n log n) where an add() loop is
     * O(n^2). Throws EvalError naming the first duplicated key.
     */
    static ResultSet fromRows(std::vector<UnitResult> rows);

    /** Binary search by key; nullptr when absent. */
    const UnitResult* find(std::string_view key) const;

    /** find() that must succeed; throws EvalError naming the key. */
    const UnitResult& at(std::string_view key) const;

    /**
     * Union of @p parts. Throws EvalError naming the first duplicated
     * unit key — two shards reporting the same unit means the shard
     * assignment (or a retry) went wrong, and silently preferring one
     * would hide it. The result is sorted by key, so it is independent
     * of both shard count and argument order.
     */
    static ResultSet merge(const std::vector<ResultSet>& parts);

    /**
     * Verify this set covers @p manifest exactly: every manifest unit
     * present and nothing else. Throws EvalError listing the missing
     * and/or unexpected unit keys.
     */
    void verifyComplete(const Manifest& manifest) const;

    Json toJson() const;
    static ResultSet fromJson(const Json& j); ///< throws EvalError

    /** File round trip (pretty-printed JSON). Throws on IO failure. */
    void save(const std::string& file_path) const;
    static ResultSet load(const std::string& file_path);

    bool operator==(const ResultSet&) const = default;

  private:
    std::vector<UnitResult> results_; ///< invariant: sorted by key
};

} // namespace gga

#endif // GGA_EVAL_RESULT_SET_HPP
