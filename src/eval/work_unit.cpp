#include "eval/work_unit.hpp"

#include <cinttypes>
#include <cstdio>

#include "api/graph_store.hpp"
#include "api/registry.hpp"
#include "support/rng.hpp"

namespace gga {

namespace {

/**
 * One X-macro list drives serialization, deserialization, and hashing —
 * the single table to extend when SimParams grows a field. Nothing
 * enforces the table at compile time, but the failure mode is loud
 * across versions: simParamsFromJson rejects members it doesn't know,
 * so a manifest written by a build with the new field cannot silently
 * run stale hardware on a build without it.
 */
#define GGA_SIM_PARAMS_FIELDS(X)                                            \
    X(numSms)                                                               \
    X(warpSize)                                                             \
    X(threadBlockSize)                                                      \
    X(maxBlocksPerSm)                                                       \
    X(lineBytes)                                                            \
    X(l1SizeKiB)                                                            \
    X(l1Assoc)                                                              \
    X(l1Mshrs)                                                              \
    X(storeBufferEntries)                                                   \
    X(l1HitLatency)                                                         \
    X(l1AtomicLatency)                                                      \
    X(l1AtomicServiceInterval)                                              \
    X(flashInvalidateLatency)                                               \
    X(l2SizeKiB)                                                            \
    X(l2Banks)                                                              \
    X(l2Assoc)                                                              \
    X(l2BankLatency)                                                        \
    X(l2ServiceInterval)                                                    \
    X(atomicServiceInterval)                                                \
    X(directoryServiceInterval)                                             \
    X(nocPerHopLatency)                                                     \
    X(nocRouterLatency)                                                     \
    X(nocPortInterval)                                                      \
    X(dramLatency)                                                          \
    X(dramChannels)                                                         \
    X(dramServiceInterval)                                                  \
    X(relaxedAtomicWindow)                                                  \
    X(kernelLaunchOverhead)

std::optional<GraphPreset>
presetByName(const std::string& name)
{
    for (GraphPreset p : kAllGraphPresets) {
        if (presetName(p) == name)
            return p;
    }
    return std::nullopt;
}

} // namespace

Json
simParamsToJson(const SimParams& p)
{
    Json j = Json::object();
#define GGA_X(field) j.set(#field, static_cast<std::uint64_t>(p.field));
    GGA_SIM_PARAMS_FIELDS(GGA_X)
#undef GGA_X
    return j;
}

SimParams
simParamsFromJson(const Json& j)
{
    SimParams p;
    for (const auto& [key, value] : j.asObject()) {
        bool known = false;
#define GGA_X(field)                                                        \
        if (key == #field) {                                                \
            p.field = static_cast<decltype(p.field)>(value.asU64());        \
            known = true;                                                   \
        }
        GGA_SIM_PARAMS_FIELDS(GGA_X)
#undef GGA_X
        if (!known)
            throw EvalError("unknown SimParams member '" + key + "'");
    }
    return p;
}

std::uint64_t
simParamsHash(const SimParams& p)
{
    const std::string text = simParamsToJson(p).dump();
    return fnv1a(text.data(), text.size());
}

std::string
WorkUnit::inputName() const
{
    return preset ? presetName(*preset) : path;
}

std::string
WorkUnit::key() const
{
    std::string k = appName(app) + "-" + inputName() + "@" + config.name();
    if (preset) {
        // Quantized micro-units, not a formatted double, so every process
        // derives the same key from the same scale.
        k += " x" + std::to_string(GraphStore::quantizeScale(scale));
    }
    if (seed != 0)
        k += " #s" + std::to_string(seed);
    if (params) {
        char buf[24];
        std::snprintf(buf, sizeof buf, " #p%016" PRIx64,
                      simParamsHash(*params));
        k += buf;
    }
    if (collectOutputs)
        k += " +out";
    return k;
}

Json
WorkUnit::toJson() const
{
    Json j = Json::object();
    j.set("app", appName(app));
    Json input = Json::object();
    if (preset) {
        input.set("preset", presetName(*preset));
        input.set("scale", scale);
    } else {
        input.set("path", path);
    }
    j.set("input", std::move(input));
    j.set("config", config.name());
    if (seed != 0)
        j.set("seed", seed);
    if (params)
        j.set("params", simParamsToJson(*params));
    if (collectOutputs)
        j.set("collect_outputs", true);
    return j;
}

WorkUnit
WorkUnit::fromJson(const Json& j)
{
    // Strict like simParamsFromJson: a typo'd member in a hand-edited
    // manifest must not silently run a different unit than intended.
    for (const auto& [key, value] : j.asObject()) {
        if (key != "app" && key != "input" && key != "config" &&
            key != "seed" && key != "params" && key != "collect_outputs")
            throw EvalError("unknown work-unit member '" + key + "'");
    }
    WorkUnit u;
    const std::string& app_name = j.at("app").asString();
    const AppRegistry::Entry* app =
        AppRegistry::instance().findByName(app_name);
    if (!app)
        throw EvalError("unknown application '" + app_name + "'");
    u.app = app->id;

    const Json& input = j.at("input");
    for (const auto& [key, value] : input.asObject()) {
        if (key != "preset" && key != "scale" && key != "path")
            throw EvalError("unknown work-unit input member '" + key + "'");
    }
    if (const Json* preset = input.find("preset")) {
        if (input.find("path"))
            throw EvalError("work-unit input has both 'preset' and 'path'");
        u.preset = presetByName(preset->asString());
        if (!u.preset)
            throw EvalError("unknown graph preset '" + preset->asString() +
                            "'");
        if (const Json* scale = input.find("scale"))
            u.scale = scale->asDouble();
        if (u.scale <= 0.0 || u.scale > 1.0)
            throw EvalError("work-unit scale must be in (0, 1]");
    } else if (const Json* path = input.find("path")) {
        if (input.find("scale"))
            throw EvalError(
                "work-unit scale applies to preset inputs only");
        u.path = path->asString();
        if (u.path.empty())
            throw EvalError("work-unit input path must not be empty");
    } else {
        throw EvalError("work-unit input needs 'preset' or 'path'");
    }

    const std::string& cfg_name = j.at("config").asString();
    const std::optional<SystemConfig> cfg = tryParseConfig(cfg_name);
    if (!cfg)
        throw EvalError("malformed configuration name '" + cfg_name + "'");
    u.config = *cfg;

    if (const Json* seed = j.find("seed"))
        u.seed = seed->asU64();
    if (const Json* params = j.find("params"))
        u.params = simParamsFromJson(*params);
    if (const Json* collect = j.find("collect_outputs"))
        u.collectOutputs = collect->asBool();
    return u;
}

} // namespace gga
