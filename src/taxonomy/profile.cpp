#include "taxonomy/profile.hpp"

namespace gga {

TaxonomyProfile
profileGraph(const CsrGraph& g, const GpuGeometry& geom,
             const TaxonomyThresholds& thresholds)
{
    TaxonomyProfile p;
    p.volumeKb = computeVolumeKb(g, geom);
    p.volume = classifyVolume(p.volumeKb, geom, thresholds);

    const ReuseMetrics rm = computeReuse(g, geom);
    p.anl = rm.anl;
    p.anr = rm.anr;
    p.reuse = rm.reuse;
    p.reuseLevel = classifyReuse(rm.reuse, thresholds);

    p.imbalance = computeImbalance(g, geom, thresholds);
    p.imbalanceLevel = classifyImbalance(p.imbalance, thresholds);
    return p;
}

} // namespace gga
