#include "taxonomy/metrics.hpp"

#include <algorithm>
#include <vector>

#include "support/log.hpp"
#include "taxonomy/kmeans.hpp"

namespace gga {

char
levelChar(Level l)
{
    switch (l) {
      case Level::Low:
        return 'L';
      case Level::Medium:
        return 'M';
      case Level::High:
        return 'H';
    }
    return '?';
}

double
computeVolumeKb(const CsrGraph& g, const GpuGeometry& geom)
{
    const double elems = static_cast<double>(g.numVertices()) +
                         static_cast<double>(g.numEdges());
    return elems * geom.bytesPerElement / geom.numSms / 1024.0;
}

ReuseMetrics
computeReuse(const CsrGraph& g, const GpuGeometry& geom)
{
    ReuseMetrics m;
    const VertexId n = g.numVertices();
    if (n == 0 || g.numEdges() == 0)
        return m;

    // Eqs. 2-5: an edge endpoint is "local" when source and target fall in
    // the same thread block (vertex-per-thread mapping).
    std::uint64_t local = 0;
    std::uint64_t remote = 0;
    const std::uint32_t tb = geom.threadBlockSize;
    for (VertexId v = 0; v < n; ++v) {
        const VertexId block = v / tb;
        for (VertexId nb : g.neighbors(v)) {
            if (nb == v)
                continue; // TBL/TBR are 0 for self edges by definition
            if (nb / tb == block)
                ++local;
            else
                ++remote;
        }
    }
    m.anl = static_cast<double>(local) / n;
    m.anr = static_cast<double>(remote) / n;

    // Eq. 6: normalize the local-vs-remote skew by the average degree and
    // shift into [0, 1].
    const double avg_deg = g.avgDegree();
    m.reuse = 0.5 * (1.0 + (m.anl - m.anr) / avg_deg);
    m.reuse = std::clamp(m.reuse, 0.0, 1.0);
    return m;
}

double
computeImbalance(const CsrGraph& g, const GpuGeometry& geom,
                 const TaxonomyThresholds& thresholds)
{
    const VertexId n = g.numVertices();
    if (n == 0)
        return 0.0;
    const std::uint32_t tb_size = geom.threadBlockSize;
    const std::uint32_t warp = geom.warpSize;
    const VertexId num_tbs = (n + tb_size - 1) / tb_size;

    VertexId marked = 0;
    std::vector<double> warp_max;
    for (VertexId tb = 0; tb < num_tbs; ++tb) {
        warp_max.clear();
        const VertexId tb_begin = tb * tb_size;
        const VertexId tb_end = std::min<VertexId>(tb_begin + tb_size, n);
        for (VertexId w = tb_begin; w < tb_end; w += warp) {
            const VertexId w_end = std::min<VertexId>(w + warp, tb_end);
            std::uint32_t max_deg = 0;
            for (VertexId v = w; v < w_end; ++v)
                max_deg = std::max(max_deg, g.degree(v));
            warp_max.push_back(static_cast<double>(max_deg));
        }
        const KMeans1dResult km = kmeans1d2(warp_max);
        if (km.centroidGap > thresholds.kmeansCentroidGap)
            ++marked;
    }
    return static_cast<double>(marked) / static_cast<double>(num_tbs);
}

Level
classifyVolume(double volume_kb, const GpuGeometry& geom,
               const TaxonomyThresholds& thresholds)
{
    const double low_cut = thresholds.volumeLowL1Multiple * geom.l1KiB;
    const double high_cut =
        static_cast<double>(geom.l2KiB) / static_cast<double>(geom.numSms);
    if (volume_kb < low_cut)
        return Level::Low;
    if (volume_kb > high_cut)
        return Level::High;
    return Level::Medium;
}

Level
classifyReuse(double reuse, const TaxonomyThresholds& thresholds)
{
    if (reuse < thresholds.reuseLow)
        return Level::Low;
    if (reuse > thresholds.reuseHigh)
        return Level::High;
    return Level::Medium;
}

Level
classifyImbalance(double imbalance, const TaxonomyThresholds& thresholds)
{
    if (imbalance < thresholds.imbalanceLow)
        return Level::Low;
    if (imbalance > thresholds.imbalanceHigh)
        return Level::High;
    return Level::Medium;
}

} // namespace gga
