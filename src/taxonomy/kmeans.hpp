/**
 * @file
 * Deterministic 1-D 2-means clustering, used by the Imbalance metric
 * (paper Sec. III-A3) to split a thread block's per-warp max degrees into
 * "low" and "high" clusters.
 */

#ifndef GGA_TAXONOMY_KMEANS_HPP
#define GGA_TAXONOMY_KMEANS_HPP

#include <span>

namespace gga {

/** Result of 1-D 2-means clustering. */
struct KMeans1dResult
{
    double lowCentroid = 0.0;
    double highCentroid = 0.0;
    /** highCentroid - lowCentroid; 0 when all values identical. */
    double centroidGap = 0.0;
};

/**
 * Cluster @p values into two groups.
 *
 * Centroids are initialized at the sample min and max (deterministic) and
 * refined with standard Lloyd iterations until stable or @p max_iters.
 * An empty or single-value sample yields a zero gap.
 */
KMeans1dResult kmeans1d2(std::span<const double> values, int max_iters = 32);

} // namespace gga

#endif // GGA_TAXONOMY_KMEANS_HPP
