/**
 * @file
 * TaxonomyProfile: the bundled graph-structure inputs to the
 * specialization model.
 */

#ifndef GGA_TAXONOMY_PROFILE_HPP
#define GGA_TAXONOMY_PROFILE_HPP

#include "taxonomy/metrics.hpp"

namespace gga {

/** All graph-structure metrics plus their discretized classes. */
struct TaxonomyProfile
{
    double volumeKb = 0.0;
    Level volume = Level::Low;

    double anl = 0.0;
    double anr = 0.0;
    double reuse = 0.0;
    Level reuseLevel = Level::Low;

    double imbalance = 0.0;
    Level imbalanceLevel = Level::Low;
};

/**
 * Compute the full taxonomy profile for @p g under @p geom, discretized
 * with @p thresholds. This is the input-side half of the specialization
 * model; the algorithm-side half is AlgoProperties.
 */
TaxonomyProfile profileGraph(const CsrGraph& g, const GpuGeometry& geom = {},
                             const TaxonomyThresholds& thresholds = {});

} // namespace gga

#endif // GGA_TAXONOMY_PROFILE_HPP
