#include "taxonomy/kmeans.hpp"

#include <algorithm>
#include <cmath>

namespace gga {

KMeans1dResult
kmeans1d2(std::span<const double> values, int max_iters)
{
    KMeans1dResult r;
    if (values.size() < 2)
        return r;

    double lo = values[0];
    double hi = values[0];
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    if (lo == hi)
        return r; // all identical: one cluster, zero gap

    double c0 = lo;
    double c1 = hi;
    for (int it = 0; it < max_iters; ++it) {
        double sum0 = 0.0, sum1 = 0.0;
        std::size_t n0 = 0, n1 = 0;
        for (double v : values) {
            if (std::abs(v - c0) <= std::abs(v - c1)) {
                sum0 += v;
                ++n0;
            } else {
                sum1 += v;
                ++n1;
            }
        }
        // The extremal initialization guarantees both clusters non-empty on
        // the first pass; keep centroids put if one empties later.
        const double n0c = n0 ? sum0 / static_cast<double>(n0) : c0;
        const double n1c = n1 ? sum1 / static_cast<double>(n1) : c1;
        if (n0c == c0 && n1c == c1)
            break;
        c0 = n0c;
        c1 = n1c;
    }
    r.lowCentroid = std::min(c0, c1);
    r.highCentroid = std::max(c0, c1);
    r.centroidGap = r.highCentroid - r.lowCentroid;
    return r;
}

} // namespace gga
