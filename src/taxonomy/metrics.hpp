/**
 * @file
 * The paper's graph-structure taxonomy metrics (Sec. III-A):
 * Volume (Eq. 1), Reuse via ANL/ANR (Eqs. 2-6), Imbalance (Eq. 7).
 */

#ifndef GGA_TAXONOMY_METRICS_HPP
#define GGA_TAXONOMY_METRICS_HPP

#include <cstdint>

#include "graph/csr.hpp"

namespace gga {

/** GPU geometry inputs the taxonomy needs (defaults = paper Table IV). */
struct GpuGeometry
{
    std::uint32_t numSms = 15;
    std::uint32_t threadBlockSize = 256;
    std::uint32_t warpSize = 32;
    std::uint32_t l1KiB = 32;
    std::uint32_t l2KiB = 4096;
    /** Bytes per vertex/edge element for the Volume estimate. */
    std::uint32_t bytesPerElement = 4;
};

/** Discretized metric level. */
enum class Level
{
    Low,
    Medium,
    High,
};

/** 'L' / 'M' / 'H' for table output. */
char levelChar(Level l);

/** Classification thresholds (paper Sec. V-A, empirically chosen). */
struct TaxonomyThresholds
{
    /** Volume is Low below this multiple of the L1 capacity... */
    double volumeLowL1Multiple = 1.5;
    /** ...and High above l2KiB / numSms (each SM's fair share of L2). */

    double reuseLow = 0.15;
    double reuseHigh = 0.40;

    double imbalanceLow = 0.05;
    double imbalanceHigh = 0.25;

    /** k-means max-degree centroid gap marking a thread block imbalanced. */
    double kmeansCentroidGap = 10.0;
};

/**
 * Eq. 1: Volume(G) = (|V| + |E|) / |SM|, scaled to KB by bytesPerElement.
 * A proxy for the average per-SM working-set size.
 */
double computeVolumeKb(const CsrGraph& g, const GpuGeometry& geom);

/** ANL/ANR/Reuse bundle (Eqs. 4, 5, 6). */
struct ReuseMetrics
{
    double anl = 0.0;   ///< average local (same thread block) neighbors
    double anr = 0.0;   ///< average remote neighbors
    double reuse = 0.0; ///< Eq. 6, in [0, 1]
};

/**
 * Eqs. 2-6: average numbers of thread-block-local and -remote neighbors,
 * combined into the [0, 1] Reuse score (1 = all edges local).
 */
ReuseMetrics computeReuse(const CsrGraph& g, const GpuGeometry& geom);

/**
 * Eq. 7: fraction of thread blocks whose per-warp max-degree 2-means
 * clustering shows a centroid gap above the threshold.
 */
double computeImbalance(const CsrGraph& g, const GpuGeometry& geom,
                        const TaxonomyThresholds& thresholds);

/** Discretize Volume (see TaxonomyThresholds). */
Level classifyVolume(double volume_kb, const GpuGeometry& geom,
                     const TaxonomyThresholds& thresholds);

/** Discretize Reuse. */
Level classifyReuse(double reuse, const TaxonomyThresholds& thresholds);

/** Discretize Imbalance. */
Level classifyImbalance(double imbalance,
                        const TaxonomyThresholds& thresholds);

} // namespace gga

#endif // GGA_TAXONOMY_METRICS_HPP
