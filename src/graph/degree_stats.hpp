/**
 * @file
 * Degree-distribution statistics (the "Max Deg / Avg Deg / Std Dev" columns
 * of the paper's Table II).
 */

#ifndef GGA_GRAPH_DEGREE_STATS_HPP
#define GGA_GRAPH_DEGREE_STATS_HPP

#include <cstdint>

#include "graph/csr.hpp"

namespace gga {

/** Degree distribution summary of a graph. */
struct DegreeStats
{
    std::uint32_t maxDegree = 0;
    double avgDegree = 0.0;
    double stddevDegree = 0.0;
};

/** Compute degree statistics over all vertices. */
DegreeStats computeDegreeStats(const CsrGraph& g);

} // namespace gga

#endif // GGA_GRAPH_DEGREE_STATS_HPP
