/**
 * @file
 * Compressed-sparse-row graph representation.
 *
 * Following the paper's methodology (Sec. V-A), every input is a *directed,
 * symmetric* graph with self-edges removed, so the same CSR serves as both
 * the out-edge (push) and in-edge (pull) view.
 */

#ifndef GGA_GRAPH_CSR_HPP
#define GGA_GRAPH_CSR_HPP

#include <span>
#include <vector>

#include "support/types.hpp"

namespace gga {

/**
 * An immutable CSR graph. Edges are directed; the builders in this library
 * always produce symmetric edge sets (u->v present iff v->u present).
 */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Construct from raw CSR arrays.
     *
     * @param row_offsets |V|+1 monotone offsets into col_indices.
     * @param col_indices edge targets, sorted within each row.
     * @param weights optional per-edge weights (same length as col_indices).
     */
    CsrGraph(std::vector<EdgeId> row_offsets,
             std::vector<VertexId> col_indices,
             std::vector<std::uint32_t> weights = {});

    /** Number of vertices. */
    VertexId numVertices() const { return numVertices_; }

    /** Number of directed edges (2x the undirected pair count). */
    EdgeId numEdges() const { return static_cast<EdgeId>(colIndices_.size()); }

    /** Out-degree (== in-degree for symmetric graphs). */
    std::uint32_t
    degree(VertexId v) const
    {
        return rowOffsets_[v + 1] - rowOffsets_[v];
    }

    /** First edge index of vertex v's adjacency list. */
    EdgeId edgeBegin(VertexId v) const { return rowOffsets_[v]; }

    /** One-past-last edge index of vertex v's adjacency list. */
    EdgeId edgeEnd(VertexId v) const { return rowOffsets_[v + 1]; }

    /** Neighbors of v as a span. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {colIndices_.data() + rowOffsets_[v], degree(v)};
    }

    /** Target of directed edge e. */
    VertexId edgeTarget(EdgeId e) const { return colIndices_[e]; }

    /** Weight of directed edge e (graphs without weights report 1). */
    std::uint32_t
    edgeWeight(EdgeId e) const
    {
        return weights_.empty() ? 1u : weights_[e];
    }

    bool hasWeights() const { return !weights_.empty(); }

    /** Average degree |E|/|V| (0 for empty graphs). */
    double avgDegree() const;

    /**
     * Resident size of the CSR arrays in bytes (GraphStore budget
     * accounting / telemetry).
     */
    std::size_t
    memoryBytes() const
    {
        return sizeof(CsrGraph) + rowOffsets_.size() * sizeof(EdgeId) +
               colIndices_.size() * sizeof(VertexId) +
               weights_.size() * sizeof(std::uint32_t);
    }

    /** Raw arrays (used by the simulator to place graph data in memory). */
    const std::vector<EdgeId>& rowOffsets() const { return rowOffsets_; }
    const std::vector<VertexId>& colIndices() const { return colIndices_; }
    const std::vector<std::uint32_t>& weights() const { return weights_; }

    /**
     * Exact structural equality over all CSR arrays (offsets, targets,
     * weights). Used to verify that alternative build paths — the
     * parallel counting-sort builder, binary snapshot round trips — are
     * byte-identical to the reference.
     */
    bool
    operator==(const CsrGraph& o) const
    {
        return numVertices_ == o.numVertices_ &&
               rowOffsets_ == o.rowOffsets_ &&
               colIndices_ == o.colIndices_ && weights_ == o.weights_;
    }

    /** True if for every edge u->v the reverse edge v->u exists. */
    bool isSymmetric() const;

    /** True if no vertex has an edge to itself. */
    bool hasNoSelfLoops() const;

  private:
    VertexId numVertices_ = 0;
    std::vector<EdgeId> rowOffsets_{0};
    std::vector<VertexId> colIndices_;
    std::vector<std::uint32_t> weights_;
};

} // namespace gga

#endif // GGA_GRAPH_CSR_HPP
