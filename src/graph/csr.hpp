/**
 * @file
 * Compressed-sparse-row graph representation.
 *
 * Following the paper's methodology (Sec. V-A), every input is a *directed,
 * symmetric* graph with self-edges removed, so the same CSR serves as both
 * the out-edge (push) and in-edge (pull) view.
 */

#ifndef GGA_GRAPH_CSR_HPP
#define GGA_GRAPH_CSR_HPP

#include <algorithm>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "support/types.hpp"

namespace gga {

/**
 * An immutable CSR graph. Edges are directed; the builders in this library
 * always produce symmetric edge sets (u->v present iff v->u present).
 *
 * Two storage modes share one read API:
 *  - **Owning**: constructed from vectors, which the graph holds.
 *  - **Borrowed**: the arrays alias caller-provided memory (e.g. an
 *    mmap'ed snapshot) kept alive by a type-erased keeper, so loading a
 *    multi-hundred-MB graph copies nothing.
 */
class CsrGraph
{
  public:
    CsrGraph() { rebindOwned(); }

    /**
     * Construct from raw CSR arrays (owning mode).
     *
     * @param row_offsets |V|+1 monotone offsets into col_indices.
     * @param col_indices edge targets, sorted within each row.
     * @param weights optional per-edge weights (same length as col_indices).
     */
    CsrGraph(std::vector<EdgeId> row_offsets,
             std::vector<VertexId> col_indices,
             std::vector<std::uint32_t> weights = {});

    /**
     * Borrowed-storage mode: the spans alias memory owned by @p storage
     * (an mmap'ed snapshot, an arena...), which is held alive for the
     * graph's lifetime and shared by copies. Same structural
     * preconditions as the owning constructor.
     */
    CsrGraph(std::span<const EdgeId> row_offsets,
             std::span<const VertexId> col_indices,
             std::span<const std::uint32_t> weights,
             std::shared_ptr<const void> storage);

    CsrGraph(const CsrGraph& o) { assignCopy(o); }
    CsrGraph(CsrGraph&& o) noexcept { assignMove(std::move(o)); }

    CsrGraph&
    operator=(const CsrGraph& o)
    {
        if (this != &o)
            assignCopy(o);
        return *this;
    }

    CsrGraph&
    operator=(CsrGraph&& o) noexcept
    {
        if (this != &o)
            assignMove(std::move(o));
        return *this;
    }

    /** Number of vertices. */
    VertexId numVertices() const { return numVertices_; }

    /** Number of directed edges (2x the undirected pair count). */
    EdgeId numEdges() const { return static_cast<EdgeId>(colIndices_.size()); }

    /** Out-degree (== in-degree for symmetric graphs). */
    std::uint32_t
    degree(VertexId v) const
    {
        return rowOffsets_[v + 1] - rowOffsets_[v];
    }

    /** First edge index of vertex v's adjacency list. */
    EdgeId edgeBegin(VertexId v) const { return rowOffsets_[v]; }

    /** One-past-last edge index of vertex v's adjacency list. */
    EdgeId edgeEnd(VertexId v) const { return rowOffsets_[v + 1]; }

    /** Neighbors of v as a span. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {colIndices_.data() + rowOffsets_[v], degree(v)};
    }

    /** Target of directed edge e. */
    VertexId edgeTarget(EdgeId e) const { return colIndices_[e]; }

    /** Weight of directed edge e (graphs without weights report 1). */
    std::uint32_t
    edgeWeight(EdgeId e) const
    {
        return weights_.empty() ? 1u : weights_[e];
    }

    bool hasWeights() const { return !weights_.empty(); }

    /** Average degree |E|/|V| (0 for empty graphs). */
    double avgDegree() const;

    /**
     * Resident size of the CSR arrays in bytes (GraphStore budget
     * accounting / telemetry). Borrowed graphs report the aliased bytes:
     * mapped pages become resident once touched, so they budget the same.
     */
    std::size_t
    memoryBytes() const
    {
        return sizeof(CsrGraph) + rowOffsets_.size() * sizeof(EdgeId) +
               colIndices_.size() * sizeof(VertexId) +
               weights_.size() * sizeof(std::uint32_t);
    }

    /** Raw arrays (used by the simulator to place graph data in memory). */
    std::span<const EdgeId> rowOffsets() const { return rowOffsets_; }
    std::span<const VertexId> colIndices() const { return colIndices_; }
    std::span<const std::uint32_t> weights() const { return weights_; }

    /** True when the arrays alias external storage (e.g. a snapshot map). */
    bool borrowsStorage() const { return storage_ != nullptr; }

    /**
     * Exact structural equality over all CSR arrays (offsets, targets,
     * weights). Used to verify that alternative build paths — the
     * parallel counting-sort builder, parallel synthesis, binary snapshot
     * round trips — are byte-identical to the reference. Storage mode is
     * deliberately not part of the comparison.
     */
    bool
    operator==(const CsrGraph& o) const
    {
        const auto eq = [](const auto& a, const auto& b) {
            return a.size() == b.size() &&
                   std::equal(a.begin(), a.end(), b.begin());
        };
        return numVertices_ == o.numVertices_ &&
               eq(rowOffsets_, o.rowOffsets_) &&
               eq(colIndices_, o.colIndices_) && eq(weights_, o.weights_);
    }

    /** True if for every edge u->v the reverse edge v->u exists. */
    bool isSymmetric() const;

    /** True if no vertex has an edge to itself. */
    bool hasNoSelfLoops() const;

  private:
    void validate() const;

    /** Point the spans at the owned vectors (owning mode only). */
    void
    rebindOwned()
    {
        rowOffsets_ = ownedOffsets_;
        colIndices_ = ownedCols_;
        weights_ = ownedWeights_;
    }

    void assignCopy(const CsrGraph& o);
    void assignMove(CsrGraph&& o) noexcept;

    VertexId numVertices_ = 0;
    // Owning mode keeps the arrays here; borrowed mode leaves them empty
    // and holds the real owner in storage_. The spans are the single
    // source of truth for readers in both modes.
    std::vector<EdgeId> ownedOffsets_{0};
    std::vector<VertexId> ownedCols_;
    std::vector<std::uint32_t> ownedWeights_;
    std::span<const EdgeId> rowOffsets_;
    std::span<const VertexId> colIndices_;
    std::span<const std::uint32_t> weights_;
    std::shared_ptr<const void> storage_;
};

} // namespace gga

#endif // GGA_GRAPH_CSR_HPP
