#include "graph/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "support/rng.hpp"
#include "support/types.hpp"

namespace gga {

namespace {

// The format stores these exact widths; widening either type is a
// layout change and must bump kSnapshotFormatVersion.
static_assert(sizeof(EdgeId) == 4, "snapshot layout assumes 32-bit EdgeId");
static_assert(sizeof(VertexId) == 4,
              "snapshot layout assumes 32-bit VertexId");

constexpr char kMagic[8] = {'G', 'G', 'A', 'C', 'S', 'R', 'B', '\n'};
/** Reads back permuted on a foreign-endian host; loaders reject it. */
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kSnapshotHasWeights = 1u << 0;

struct SnapshotHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t endian;
    std::uint32_t flags;
    std::uint32_t reserved;
    std::uint64_t numVertices;
    std::uint64_t numEdges;
    std::uint64_t checksum;
};
static_assert(sizeof(SnapshotHeader) == 48, "header must be packed");

std::uint64_t
blobChecksum(std::span<const EdgeId> offsets, std::span<const VertexId> cols,
             std::span<const std::uint32_t> weights)
{
    std::uint64_t h = fnv1a(offsets.data(), offsets.size() * sizeof(EdgeId));
    h = fnv1a(cols.data(), cols.size() * sizeof(VertexId), h);
    h = fnv1a(weights.data(), weights.size() * sizeof(std::uint32_t), h);
    return h;
}

/**
 * Shared header validation for both load paths; every check throws the
 * same SnapshotError it did when loading was ifstream-only.
 */
void
validateHeader(const SnapshotHeader& header, const std::string& path)
{
    if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0)
        throw SnapshotError("'" + path + "': not a GGA CSR snapshot");
    if (header.endian != kEndianTag)
        throw SnapshotError("'" + path +
                            "': written on a foreign-endian host");
    if (header.version != kSnapshotFormatVersion)
        throw SnapshotError(
            "'" + path + "': format version " +
            std::to_string(header.version) + ", this build reads " +
            std::to_string(kSnapshotFormatVersion));
    if (header.flags & ~kSnapshotHasWeights)
        throw SnapshotError("'" + path + "': unknown flag bits");
    // The dims drive allocations below; reject sizes the CSR types
    // cannot represent before trusting them.
    if (header.numVertices >= 0xffffffffull ||
        header.numEdges > 0xffffffffull)
        throw SnapshotError("'" + path + "': dimensions out of range");
}

/**
 * Structural validation before the CsrGraph constructor: its GGA_ASSERTs
 * are fatal, and a malformed-but-checksummed file must surface as a
 * catchable SnapshotError instead.
 */
void
validateStructure(std::span<const EdgeId> offsets,
                  std::span<const VertexId> cols, const std::string& path)
{
    if (offsets.front() != 0 || offsets.back() != cols.size() ||
        !std::is_sorted(offsets.begin(), offsets.end()))
        throw SnapshotError("'" + path + "': malformed row offsets");
    const std::size_t v = offsets.size() - 1;
    for (VertexId t : cols) {
        if (t >= v)
            throw SnapshotError("'" + path + "': edge target out of range");
    }
}

/** RAII keeper for an mmap'ed snapshot; the CsrGraph holds it alive. */
struct MappedFile
{
    MappedFile(void* data, std::size_t bytes) : data(data), bytes(bytes) {}
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;
    ~MappedFile() { ::munmap(data, bytes); }

    void* data;
    std::size_t bytes;
};

CsrGraph
loadViaCopy(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError("cannot open snapshot '" + path + "'");

    SnapshotHeader header{};
    in.read(reinterpret_cast<char*>(&header), sizeof header);
    if (in.gcount() != sizeof header)
        throw SnapshotError("'" + path + "': truncated header");
    validateHeader(header, path);

    const std::size_t v = static_cast<std::size_t>(header.numVertices);
    const std::size_t e = static_cast<std::size_t>(header.numEdges);
    const bool weighted = header.flags & kSnapshotHasWeights;
    std::vector<EdgeId> offsets(v + 1);
    std::vector<VertexId> cols(e);
    std::vector<std::uint32_t> weights(weighted ? e : 0);
    const auto get = [&in, &path](void* data, std::size_t bytes,
                                  const char* what) {
        in.read(static_cast<char*>(data),
                static_cast<std::streamsize>(bytes));
        if (static_cast<std::size_t>(in.gcount()) != bytes)
            throw SnapshotError("'" + path + "': truncated " +
                                std::string(what) + " blob");
    };
    get(offsets.data(), offsets.size() * sizeof(EdgeId), "offsets");
    get(cols.data(), cols.size() * sizeof(VertexId), "targets");
    if (weighted)
        get(weights.data(), weights.size() * sizeof(std::uint32_t),
            "weights");
    if (in.peek() != std::ifstream::traits_type::eof())
        throw SnapshotError("'" + path + "': trailing bytes after payload");

    if (blobChecksum(offsets, cols, weights) != header.checksum)
        throw SnapshotError("'" + path + "': content checksum mismatch");

    validateStructure(offsets, cols, path);
    return CsrGraph(std::move(offsets), std::move(cols),
                    std::move(weights));
}

/**
 * Zero-copy load: map the file read-only, validate in place, and return
 * a borrowed-storage graph aliasing the mapping. Only open/stat/mmap
 * syscall failures set @p *unavailable (the cue for Auto to fall back to
 * the copying path); a file that maps but fails validation is corrupt on
 * every path and throws.
 */
CsrGraph
loadViaMmap(const std::string& path, bool* unavailable)
{
    *unavailable = false;
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        *unavailable = true;
        return {};
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        *unavailable = true;
        return {};
    }
    const std::size_t file_bytes = static_cast<std::size_t>(st.st_size);
    if (file_bytes < sizeof(SnapshotHeader)) {
        ::close(fd);
        throw SnapshotError("'" + path + "': truncated header");
    }
    void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps the file's pages reachable
    if (map == MAP_FAILED) {
        *unavailable = true;
        return {};
    }
    auto keeper = std::make_shared<MappedFile>(map, file_bytes);

    SnapshotHeader header{};
    std::memcpy(&header, map, sizeof header);
    validateHeader(header, path);

    const std::size_t v = static_cast<std::size_t>(header.numVertices);
    const std::size_t e = static_cast<std::size_t>(header.numEdges);
    const bool weighted = header.flags & kSnapshotHasWeights;
    const std::size_t offs_bytes = (v + 1) * sizeof(EdgeId);
    const std::size_t cols_bytes = e * sizeof(VertexId);
    const std::size_t wts_bytes = weighted ? e * sizeof(std::uint32_t) : 0;

    // Every blob is 4-byte aligned: the header is 48 bytes and both
    // element types are 4 bytes wide (static_asserts above).
    std::size_t at = sizeof(SnapshotHeader);
    const auto blob = [&](std::size_t bytes,
                          const char* what) -> const char* {
        if (file_bytes - at < bytes)
            throw SnapshotError("'" + path + "': truncated " +
                                std::string(what) + " blob");
        const char* p = static_cast<const char*>(map) + at;
        at += bytes;
        return p;
    };
    const std::span<const EdgeId> offsets{
        reinterpret_cast<const EdgeId*>(blob(offs_bytes, "offsets")),
        v + 1};
    const std::span<const VertexId> cols{
        reinterpret_cast<const VertexId*>(blob(cols_bytes, "targets")), e};
    const std::span<const std::uint32_t> weights{
        weighted
            ? reinterpret_cast<const std::uint32_t*>(
                  blob(wts_bytes, "weights"))
            : nullptr,
        weighted ? e : 0};
    if (at != file_bytes)
        throw SnapshotError("'" + path + "': trailing bytes after payload");

    if (blobChecksum(offsets, cols, weights) != header.checksum)
        throw SnapshotError("'" + path + "': content checksum mismatch");

    validateStructure(offsets, cols, path);
    return CsrGraph(offsets, cols, weights, std::move(keeper));
}

} // namespace

std::string
csrSnapshotFileName(const std::string& name, std::int64_t scale_units,
                    std::uint64_t content_hash)
{
    char suffix[64];
    std::snprintf(suffix, sizeof suffix, "_s%lld_%016llx.csrbin",
                  static_cast<long long>(scale_units),
                  static_cast<unsigned long long>(content_hash));
    return name + suffix;
}

void
saveCsrSnapshot(const std::string& path, const CsrGraph& g)
{
    SnapshotHeader header{};
    std::memcpy(header.magic, kMagic, sizeof kMagic);
    header.version = kSnapshotFormatVersion;
    header.endian = kEndianTag;
    header.flags = g.hasWeights() ? kSnapshotHasWeights : 0;
    header.numVertices = g.numVertices();
    header.numEdges = g.numEdges();
    header.checksum =
        blobChecksum(g.rowOffsets(), g.colIndices(), g.weights());

    // Temp file + rename: a crashed writer can leave a stale .tmp
    // around, but never a torn .csrbin under the final name. The pid
    // suffix keeps concurrent workers sharing one cache directory from
    // clobbering each other's in-flight writes.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError("cannot open '" + tmp + "' for writing");
        const auto put = [&out](const void* data, std::size_t bytes) {
            out.write(static_cast<const char*>(data),
                      static_cast<std::streamsize>(bytes));
        };
        put(&header, sizeof header);
        put(g.rowOffsets().data(), g.rowOffsets().size() * sizeof(EdgeId));
        put(g.colIndices().data(),
            g.colIndices().size() * sizeof(VertexId));
        put(g.weights().data(), g.weights().size() * sizeof(std::uint32_t));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw SnapshotError("short write to '" + tmp + "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("cannot rename '" + tmp + "' to '" + path +
                            "'");
    }
}

CsrGraph
loadCsrSnapshot(const std::string& path, SnapshotLoadMode mode)
{
    if (mode == SnapshotLoadMode::Copy)
        return loadViaCopy(path);
    bool unavailable = false;
    CsrGraph g = loadViaMmap(path, &unavailable);
    if (!unavailable)
        return g;
    if (mode == SnapshotLoadMode::Mmap)
        throw SnapshotError("cannot mmap snapshot '" + path + "'");
    return loadViaCopy(path);
}

} // namespace gga
