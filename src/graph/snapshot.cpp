#include "graph/snapshot.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "support/rng.hpp"
#include "support/types.hpp"

namespace gga {

namespace {

// The format stores these exact widths; widening either type is a
// layout change and must bump kSnapshotFormatVersion.
static_assert(sizeof(EdgeId) == 4, "snapshot layout assumes 32-bit EdgeId");
static_assert(sizeof(VertexId) == 4,
              "snapshot layout assumes 32-bit VertexId");

constexpr char kMagic[8] = {'G', 'G', 'A', 'C', 'S', 'R', 'B', '\n'};
/** Reads back permuted on a foreign-endian host; loaders reject it. */
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kSnapshotHasWeights = 1u << 0;

struct SnapshotHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t endian;
    std::uint32_t flags;
    std::uint32_t reserved;
    std::uint64_t numVertices;
    std::uint64_t numEdges;
    std::uint64_t checksum;
};
static_assert(sizeof(SnapshotHeader) == 48, "header must be packed");

std::uint64_t
blobChecksum(const std::vector<EdgeId>& offsets,
             const std::vector<VertexId>& cols,
             const std::vector<std::uint32_t>& weights)
{
    std::uint64_t h = fnv1a(offsets.data(), offsets.size() * sizeof(EdgeId));
    h = fnv1a(cols.data(), cols.size() * sizeof(VertexId), h);
    h = fnv1a(weights.data(), weights.size() * sizeof(std::uint32_t), h);
    return h;
}

} // namespace

std::string
csrSnapshotFileName(const std::string& name, std::int64_t scale_units,
                    std::uint64_t content_hash)
{
    char suffix[64];
    std::snprintf(suffix, sizeof suffix, "_s%lld_%016llx.csrbin",
                  static_cast<long long>(scale_units),
                  static_cast<unsigned long long>(content_hash));
    return name + suffix;
}

void
saveCsrSnapshot(const std::string& path, const CsrGraph& g)
{
    SnapshotHeader header{};
    std::memcpy(header.magic, kMagic, sizeof kMagic);
    header.version = kSnapshotFormatVersion;
    header.endian = kEndianTag;
    header.flags = g.hasWeights() ? kSnapshotHasWeights : 0;
    header.numVertices = g.numVertices();
    header.numEdges = g.numEdges();
    header.checksum =
        blobChecksum(g.rowOffsets(), g.colIndices(), g.weights());

    // Temp file + rename: a crashed writer can leave a stale .tmp
    // around, but never a torn .csrbin under the final name. The pid
    // suffix keeps concurrent workers sharing one cache directory from
    // clobbering each other's in-flight writes.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError("cannot open '" + tmp + "' for writing");
        const auto put = [&out](const void* data, std::size_t bytes) {
            out.write(static_cast<const char*>(data),
                      static_cast<std::streamsize>(bytes));
        };
        put(&header, sizeof header);
        put(g.rowOffsets().data(), g.rowOffsets().size() * sizeof(EdgeId));
        put(g.colIndices().data(),
            g.colIndices().size() * sizeof(VertexId));
        put(g.weights().data(), g.weights().size() * sizeof(std::uint32_t));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw SnapshotError("short write to '" + tmp + "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("cannot rename '" + tmp + "' to '" + path +
                            "'");
    }
}

CsrGraph
loadCsrSnapshot(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError("cannot open snapshot '" + path + "'");

    SnapshotHeader header{};
    in.read(reinterpret_cast<char*>(&header), sizeof header);
    if (in.gcount() != sizeof header)
        throw SnapshotError("'" + path + "': truncated header");
    if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0)
        throw SnapshotError("'" + path + "': not a GGA CSR snapshot");
    if (header.endian != kEndianTag)
        throw SnapshotError("'" + path +
                            "': written on a foreign-endian host");
    if (header.version != kSnapshotFormatVersion)
        throw SnapshotError(
            "'" + path + "': format version " +
            std::to_string(header.version) + ", this build reads " +
            std::to_string(kSnapshotFormatVersion));
    if (header.flags & ~kSnapshotHasWeights)
        throw SnapshotError("'" + path + "': unknown flag bits");
    // The dims drive allocations below; reject sizes the CSR types
    // cannot represent before trusting them.
    if (header.numVertices >= 0xffffffffull ||
        header.numEdges > 0xffffffffull)
        throw SnapshotError("'" + path + "': dimensions out of range");

    const std::size_t v = static_cast<std::size_t>(header.numVertices);
    const std::size_t e = static_cast<std::size_t>(header.numEdges);
    const bool weighted = header.flags & kSnapshotHasWeights;
    std::vector<EdgeId> offsets(v + 1);
    std::vector<VertexId> cols(e);
    std::vector<std::uint32_t> weights(weighted ? e : 0);
    const auto get = [&in, &path](void* data, std::size_t bytes,
                                  const char* what) {
        in.read(static_cast<char*>(data),
                static_cast<std::streamsize>(bytes));
        if (static_cast<std::size_t>(in.gcount()) != bytes)
            throw SnapshotError("'" + path + "': truncated " +
                                std::string(what) + " blob");
    };
    get(offsets.data(), offsets.size() * sizeof(EdgeId), "offsets");
    get(cols.data(), cols.size() * sizeof(VertexId), "targets");
    if (weighted)
        get(weights.data(), weights.size() * sizeof(std::uint32_t),
            "weights");
    if (in.peek() != std::ifstream::traits_type::eof())
        throw SnapshotError("'" + path + "': trailing bytes after payload");

    if (blobChecksum(offsets, cols, weights) != header.checksum)
        throw SnapshotError("'" + path + "': content checksum mismatch");

    // Structural validation before the CsrGraph constructor: its
    // GGA_ASSERTs are fatal, and a malformed-but-checksummed file must
    // surface as a catchable SnapshotError instead.
    if (offsets.front() != 0 || offsets.back() != e ||
        !std::is_sorted(offsets.begin(), offsets.end()))
        throw SnapshotError("'" + path + "': malformed row offsets");
    for (VertexId t : cols) {
        if (t >= v)
            throw SnapshotError("'" + path + "': edge target out of range");
    }
    return CsrGraph(std::move(offsets), std::move(cols),
                    std::move(weights));
}

} // namespace gga
