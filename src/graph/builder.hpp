/**
 * @file
 * Edge-list accumulator that produces canonical CsrGraph instances.
 */

#ifndef GGA_GRAPH_BUILDER_HPP
#define GGA_GRAPH_BUILDER_HPP

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace gga {

/**
 * Collects (possibly duplicated, possibly self-looping, possibly one-sided)
 * edges and builds a deduplicated CSR. Matches the paper's input
 * canonicalization: self-edges removed, graph converted to directed
 * symmetric form (Sec. V-A).
 */
class GraphBuilder
{
  public:
    explicit GraphBuilder(VertexId num_vertices);

    /** Add a directed edge u->v (duplicates and self-loops filtered later). */
    void addEdge(VertexId u, VertexId v);

    /** Pre-size the raw edge arrays for @p raw_edges addEdge calls. */
    void
    reserveEdges(std::size_t raw_edges)
    {
        srcs_.reserve(srcs_.size() + raw_edges);
        dsts_.reserve(dsts_.size() + raw_edges);
    }

    /** Add both u->v and v->u. */
    void addUndirected(VertexId u, VertexId v);

    VertexId numVertices() const { return numVertices_; }

    /** Number of raw (pre-canonicalization) directed edges added so far. */
    std::size_t numRawEdges() const { return srcs_.size(); }

    /**
     * Keep self-loops in the built graph (one u->u edge each) instead of
     * dropping them. Off by default, matching the paper's
     * canonicalization; the MatrixMarket reader turns it on for lossless
     * round trips.
     */
    void keepSelfLoops(bool keep) { keepSelfLoops_ = keep; }

    /**
     * Worker threads for build(). 0 (the default) resolves through
     * defaultBuildThreads(). The built graph is bit-identical at every
     * thread count — threads only change wall time.
     */
    void threads(unsigned t) { threads_ = t; }

    /**
     * Build the canonical graph: drop self-loops (unless keepSelfLoops),
     * symmetrize, dedupe, sort adjacency lists.
     *
     * Runs the two-pass counting-sort construction: per-thread partitions
     * of the raw edge list are counted and scattered into per-row
     * segments, rows are sorted/deduped in parallel, and the result is
     * compacted — O(|E| + |V|) instead of the reference path's global
     * O(|E| log |E|) sort, and parallel across threads(). The output is
     * byte-identical to buildReferenceSort() at every thread count (the
     * canonical form — sorted, deduplicated rows — does not depend on
     * construction order; tests assert it).
     *
     * @param with_weights derive deterministic per-undirected-pair weights
     *        in [1, 31] from a hash of the endpoint ids (both directions of
     *        a pair share the weight, as an undirected weighted graph
     *        requires).
     */
    CsrGraph build(bool with_weights = false) const;

    /**
     * The pre-PR-5 serial build path (pack pairs, std::sort, unique),
     * kept verbatim as the in-tree measurement baseline and oracle for
     * build() — the same role the binary-heap engine plays for the time
     * wheel in bench/micro_substrate.
     */
    CsrGraph buildReferenceSort(bool with_weights = false) const;

  private:
    CsrGraph buildCounting(bool with_weights, unsigned threads) const;

    VertexId numVertices_;
    bool keepSelfLoops_ = false;
    unsigned threads_ = 0;
    std::vector<VertexId> srcs_;
    std::vector<VertexId> dsts_;
};

/** Deterministic weight in [1, 31] for the undirected pair {u, v}. */
std::uint32_t pairWeight(VertexId u, VertexId v);

/**
 * Build-thread default when GraphBuilder::threads was never set (or set
 * to 0): GGA_BUILD_THREADS, else GGA_SESSION_THREADS, else 1. The
 * GraphStore overrides this with the owning session's executor width.
 */
unsigned defaultBuildThreads();

} // namespace gga

#endif // GGA_GRAPH_BUILDER_HPP
