/**
 * @file
 * Edge-list accumulator that produces canonical CsrGraph instances.
 */

#ifndef GGA_GRAPH_BUILDER_HPP
#define GGA_GRAPH_BUILDER_HPP

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace gga {

/**
 * Collects (possibly duplicated, possibly self-looping, possibly one-sided)
 * edges and builds a deduplicated CSR. Matches the paper's input
 * canonicalization: self-edges removed, graph converted to directed
 * symmetric form (Sec. V-A).
 */
class GraphBuilder
{
  public:
    explicit GraphBuilder(VertexId num_vertices);

    /** Add a directed edge u->v (duplicates and self-loops filtered later). */
    void addEdge(VertexId u, VertexId v);

    /** Add both u->v and v->u. */
    void addUndirected(VertexId u, VertexId v);

    VertexId numVertices() const { return numVertices_; }

    /** Number of raw (pre-canonicalization) directed edges added so far. */
    std::size_t numRawEdges() const { return srcs_.size(); }

    /**
     * Keep self-loops in the built graph (one u->u edge each) instead of
     * dropping them. Off by default, matching the paper's
     * canonicalization; the MatrixMarket reader turns it on for lossless
     * round trips.
     */
    void keepSelfLoops(bool keep) { keepSelfLoops_ = keep; }

    /**
     * Build the canonical graph: drop self-loops (unless keepSelfLoops),
     * symmetrize, dedupe, sort adjacency lists.
     *
     * @param with_weights derive deterministic per-undirected-pair weights
     *        in [1, 31] from a hash of the endpoint ids (both directions of
     *        a pair share the weight, as an undirected weighted graph
     *        requires).
     */
    CsrGraph build(bool with_weights = false) const;

  private:
    VertexId numVertices_;
    bool keepSelfLoops_ = false;
    std::vector<VertexId> srcs_;
    std::vector<VertexId> dsts_;
};

/** Deterministic weight in [1, 31] for the undirected pair {u, v}. */
std::uint32_t pairWeight(VertexId u, VertexId v);

} // namespace gga

#endif // GGA_GRAPH_BUILDER_HPP
