/**
 * @file
 * Parametric synthetic graph generator.
 *
 * The paper evaluates six SuiteSparse graphs. Those inputs are proprietary
 * to reproduce bit-for-bit, so GGA-Sim synthesizes stand-ins whose
 * *taxonomy-relevant* structure matches the published Table II rows:
 * exact |V| and |E| (hence the Volume metric to three decimals), degree
 * distribution shape (max/avg/stddev), intra-thread-block locality (ANL/ANR,
 * hence Reuse), and the distribution of high-degree vertices across thread
 * blocks (hence Imbalance).
 *
 * Two topology families cover all six inputs:
 *  - DegreeDriven: configuration-model-style synthesis with a target degree
 *    distribution, locality-controlled partner selection, optional
 *    random-ancestor backbone (connectivity + low diameter), and controlled
 *    hub placement (degree-sorted order with a tunable number of hubs
 *    scattered into random thread blocks).
 *  - Grid2d: a rows x cols 4-neighbour mesh (plus pendant vertices to hit an
 *    exact |V|) with optionally permuted labels — the FEM-mesh-like "wing"
 *    input.
 *
 * After synthesis the undirected pair set is trimmed/padded to the exact
 * target |E| so the working-set Volume metric matches the paper exactly.
 */

#ifndef GGA_GRAPH_GENERATOR_HPP
#define GGA_GRAPH_GENERATOR_HPP

#include <cstdint>
#include <string>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace gga {

/** Degree-distribution family for DegreeDriven synthesis. */
enum class DegreeDist
{
    Regular,   ///< constant degree p1
    LogNormal, ///< exp(N(p1, p2^2))
    PowerLaw,  ///< P(d) ~ d^-p1 with d >= p2 (p2 = minimum degree)
};

/** Topology family. */
enum class Topology
{
    DegreeDriven,
    Grid2d,
};

/** Full recipe for one synthetic graph. */
struct GenSpec
{
    std::string name = "anon";
    Topology topology = Topology::DegreeDriven;

    VertexId numVertices = 0;
    /** Exact directed edge count after trim/pad; must be even. */
    EdgeId numDirectedEdges = 0;

    // --- DegreeDriven parameters ---
    DegreeDist dist = DegreeDist::LogNormal;
    double p1 = 1.0; ///< mu (LogNormal), alpha (PowerLaw), degree (Regular)
    double p2 = 0.5; ///< sigma (LogNormal), min degree (PowerLaw)
    std::uint32_t maxDegree = 64;

    /** Probability a generated edge stays within the source's 256-block. */
    double fracIntraBlock = 0.0;
    /** Probability a generated edge lands within +-bandWidth of the source. */
    double fracBand = 0.0;
    std::uint32_t bandWidth = 1024;

    /**
     * Hub placement. Vertices are ordered by descending target degree
     * (clustered hubs, low Imbalance). fullShuffle randomizes the whole
     * order (scattered hubs, high Imbalance). Otherwise scatterHubCount
     * vertices from the top hubPoolSize slots are swapped with random slots
     * (tunable medium Imbalance).
     */
    bool fullShuffle = false;
    std::uint32_t scatterHubCount = 0;
    std::uint32_t hubPoolSize = 512;

    /** Random-ancestor spanning backbone (connectivity, ~log diameter). */
    bool backbone = true;
    /**
     * When nonzero, backbone ancestors are drawn within this index band
     * below the vertex instead of uniformly, keeping the backbone
     * band-local (diameter ~ |V|/band) and its children spread evenly.
     */
    std::uint32_t backboneBand = 0;

    /**
     * Overwrite the top target-degree slots with a geometric ramp from
     * maxDegree (decay 0.72, 16 slots) so the published maximum degree is
     * actually realized; forced slots initiate their full degree.
     */
    bool forceTopDegrees = false;

    // --- Grid2d parameters ---
    std::uint32_t gridRows = 0;
    std::uint32_t gridCols = 0;
    /** Randomly permute vertex labels (destroys index locality). */
    bool permuteLabels = false;

    std::uint64_t seed = 1;
    std::uint32_t blockSize = 256;
};

/**
 * Synthesize the graph described by @p spec.
 *
 * Deterministic for a fixed spec (seed included) at every
 * @p build_threads value: synthesis decomposes over fixed vertex blocks
 * and hash shards with counter-based per-owner RNG streams (SplitRng),
 * and the CSR construction is canonical, so the output is byte-identical
 * whether it runs on 1 thread or 8. 0 = defaultBuildThreads(). The
 * result is directed symmetric with no self-loops and exactly
 * spec.numDirectedEdges edges, with deterministic per-pair weights
 * attached.
 */
CsrGraph generateGraph(const GenSpec& spec, unsigned build_threads = 0);

/**
 * The frozen v1 synthesis path: one sequential Xoshiro stream feeding a
 * single global pair set, with a binary-search partner sampler. Kept as
 * the measured baseline for bench/graph_build's synth_speedup column —
 * not content-addressed, never snapshot-cached, and its output differs
 * from generateGraph's.
 */
CsrGraph generateGraphReference(const GenSpec& spec,
                                unsigned build_threads = 1);

/**
 * Version of the synthesis algorithm, folded into specContentHash. Bump
 * whenever a change alters any generated graph so content-addressed
 * snapshot caches (GraphStore / .csrbin files) can never serve a graph
 * the current code would not synthesize.
 *
 * v2: parallel deterministic synthesis — per-vertex/per-block SplitRng
 * streams, alias-table partner sampling, sharded dedup, merge-time
 * degree caps. Every degree-driven graph changed vs v1.
 */
inline constexpr std::uint64_t kGeneratorVersion = 2;

/**
 * Content hash of every generation-relevant GenSpec field (the name is
 * excluded) chained with kGeneratorVersion — the identity under which
 * snapshot files are addressed.
 */
std::uint64_t specContentHash(const GenSpec& spec);

} // namespace gga

#endif // GGA_GRAPH_GENERATOR_HPP
