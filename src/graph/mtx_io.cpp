#include "graph/mtx_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "graph/builder.hpp"
#include "support/log.hpp"

namespace gga {

namespace {

std::string
lower(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace

CsrGraph
readMatrixMarket(std::istream& in, bool with_weights, bool keep_self_loops)
{
    std::string line;
    if (!std::getline(in, line))
        GGA_FATAL("empty MatrixMarket stream");

    std::istringstream hdr(line);
    std::string banner, object, format, field, symmetry;
    hdr >> banner >> object >> format >> field >> symmetry;
    if (lower(banner) != "%%matrixmarket")
        GGA_FATAL("not a MatrixMarket stream: ", line);
    if (lower(object) != "matrix" || lower(format) != "coordinate")
        GGA_FATAL("only 'matrix coordinate' supported, got: ", line);
    const std::string f = lower(field);
    if (f != "pattern" && f != "real" && f != "integer")
        GGA_FATAL("unsupported field type: ", field);
    const std::string sym = lower(symmetry);
    if (sym != "general" && sym != "symmetric")
        GGA_FATAL("unsupported symmetry: ", symmetry);

    // Skip comments and blank lines to the size line.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream size_line(line);
    std::uint64_t rows = 0, cols = 0, nnz = 0;
    size_line >> rows >> cols >> nnz;
    if (rows == 0 || cols == 0)
        GGA_FATAL("bad MatrixMarket size line: ", line);
    if (rows != cols)
        GGA_FATAL("adjacency matrix must be square, got ", rows, "x", cols);

    GraphBuilder builder(static_cast<VertexId>(rows));
    builder.keepSelfLoops(keep_self_loops);
    std::uint64_t seen = 0;
    while (seen < nnz && std::getline(in, line)) {
        if (line.empty() || line[0] == '%')
            continue;
        std::istringstream row(line);
        std::uint64_t r = 0, c = 0;
        row >> r >> c;
        if (r == 0 || c == 0 || r > rows || c > cols)
            GGA_FATAL("bad MatrixMarket entry: ", line);
        // Values (real/integer) are ignored; builder symmetrizes anyway.
        builder.addEdge(static_cast<VertexId>(r - 1),
                        static_cast<VertexId>(c - 1));
        ++seen;
    }
    if (seen != nnz)
        GGA_FATAL("MatrixMarket stream truncated: expected ", nnz,
                  " entries, got ", seen);
    return builder.build(with_weights);
}

CsrGraph
readMatrixMarketFile(const std::string& path, bool with_weights,
                     bool keep_self_loops)
{
    std::ifstream in(path);
    if (!in)
        GGA_FATAL("cannot open MatrixMarket file: ", path);
    return readMatrixMarket(in, with_weights, keep_self_loops);
}

void
writeMatrixMarket(std::ostream& out, const CsrGraph& g)
{
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
    out << "% written by GGA-Sim\n";
    // Each undirected pair once (v <= u, lower triangle): v == u keeps
    // self-loops in the file — a strict v < u silently dropped them and
    // made the round trip lossy for graphs that carry self-edges.
    std::uint64_t pairs = 0;
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        for (VertexId v : g.neighbors(u)) {
            if (v <= u)
                ++pairs;
        }
    }
    out << g.numVertices() << ' ' << g.numVertices() << ' ' << pairs << '\n';
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        for (VertexId v : g.neighbors(u)) {
            if (v <= u)
                out << (u + 1) << ' ' << (v + 1) << '\n';
        }
    }
}

} // namespace gga
