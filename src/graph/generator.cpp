#include "graph/generator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "graph/builder.hpp"
#include "support/flat_map.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace gga {

namespace {

/** Canonical key for an undirected pair. */
inline std::uint64_t
pairKey(VertexId a, VertexId b)
{
    const VertexId lo = std::min(a, b);
    const VertexId hi = std::max(a, b);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/**
 * Mutable pair-set during synthesis: O(1) membership + random removal.
 * Membership lives in open-addressing FlatSets (the node allocations of
 * the former std::unordered_set dominated synthesis time); the list_
 * vector preserves insertion order, which the trim loop's random indexing
 * depends on — membership answers are order-free, so swapping the set
 * implementation leaves every generated graph bit-identical.
 */
class PairSet
{
  public:
    bool
    insert(VertexId a, VertexId b, bool protect)
    {
        const std::uint64_t key = pairKey(a, b);
        if (!set_.insert(key))
            return false;
        list_.push_back(key);
        if (protect)
            protected_.insert(key);
        return true;
    }

    bool contains(VertexId a, VertexId b) const
    {
        return set_.contains(pairKey(a, b));
    }

    std::size_t size() const { return list_.size(); }

    /** Pre-size for @p n pairs (halves rehash churn during synthesis). */
    void reserve(std::size_t n) { set_.reserve(n); }

    /**
     * Remove a random unprotected pair; returns it, or nullopt when 256
     * draws all hit protected pairs. A sentinel return would be
     * ambiguous: key 0 encodes the legal pair (0, 0).
     */
    std::optional<std::uint64_t>
    removeRandom(Xoshiro256StarStar& rng)
    {
        for (int attempts = 0; attempts < 256; ++attempts) {
            const std::size_t i = rng.nextBounded(list_.size());
            const std::uint64_t key = list_[i];
            if (protected_.contains(key))
                continue;
            list_[i] = list_.back();
            list_.pop_back();
            set_.erase(key);
            return key;
        }
        return std::nullopt;
    }

    const std::vector<std::uint64_t>& pairs() const { return list_; }

  private:
    FlatSet<std::uint64_t> set_;
    FlatSet<std::uint64_t> protected_;
    std::vector<std::uint64_t> list_;
};

/** Draw one target degree from the spec's distribution. */
double
drawDegree(const GenSpec& spec, Xoshiro256StarStar& rng)
{
    switch (spec.dist) {
      case DegreeDist::Regular:
        return spec.p1;
      case DegreeDist::LogNormal:
        return std::exp(spec.p1 + spec.p2 * rng.nextGaussian());
      case DegreeDist::PowerLaw: {
        // Inverse-CDF sampling of P(d) ~ d^-alpha for d >= dmin.
        const double alpha = spec.p1;
        const double dmin = spec.p2;
        const double u = rng.nextDouble();
        return dmin * std::pow(1.0 - u, -1.0 / (alpha - 1.0));
      }
    }
    GGA_PANIC("unknown degree distribution");
}

/** Stochastic rounding: floor(x) + Bernoulli(frac(x)). */
std::uint32_t
stochRound(double x, Xoshiro256StarStar& rng)
{
    if (x <= 0.0)
        return 0;
    const double fl = std::floor(x);
    const double frac = x - fl;
    return static_cast<std::uint32_t>(fl) + (rng.nextDouble() < frac ? 1 : 0);
}

/** Degree-biased vertex sampler over a static weight array. */
class BiasedSampler
{
  public:
    explicit BiasedSampler(const std::vector<double>& weights)
    {
        cum_.reserve(weights.size());
        double acc = 0.0;
        for (double w : weights) {
            acc += w;
            cum_.push_back(acc);
        }
        total_ = acc;
    }

    VertexId
    draw(Xoshiro256StarStar& rng) const
    {
        const double x = rng.nextDouble() * total_;
        const auto it = std::upper_bound(cum_.begin(), cum_.end(), x);
        const std::size_t i = static_cast<std::size_t>(it - cum_.begin());
        return static_cast<VertexId>(std::min(i, cum_.size() - 1));
    }

  private:
    std::vector<double> cum_;
    double total_ = 0.0;
};

void
synthesizeDegreeDriven(const GenSpec& spec, Xoshiro256StarStar& rng,
                       PairSet& pairs)
{
    const VertexId n = spec.numVertices;

    // 1. Target degrees, descending (clustered hubs).
    std::vector<double> degree(n);
    for (auto& d : degree) {
        d = std::clamp(drawDegree(spec, rng), 1.0,
                       static_cast<double>(spec.maxDegree));
    }
    std::sort(degree.begin(), degree.end(), std::greater<>());

    // Pin the published maximum degree: a short geometric ramp of "forced"
    // hubs that will initiate their entire target degree themselves.
    std::vector<char> forced(n, 0);
    if (spec.forceTopDegrees) {
        double d = spec.maxDegree;
        for (VertexId i = 0; i < std::min<VertexId>(16, n); ++i) {
            degree[i] = std::max(degree[i], d);
            forced[i] = 1;
            d *= 0.72;
        }
    }

    // 2. Hub placement.
    if (spec.fullShuffle) {
        for (VertexId i = n; i > 1; --i) {
            const auto j = rng.nextBounded(i);
            std::swap(degree[i - 1], degree[j]);
            std::swap(forced[i - 1], forced[j]);
        }
    } else {
        const std::uint32_t pool = std::min<std::uint32_t>(spec.hubPoolSize, n);
        for (std::uint32_t s = 0; s < spec.scatterHubCount && pool > 0; ++s) {
            const auto a = rng.nextBounded(pool);
            const auto b = rng.nextBounded(n);
            std::swap(degree[a], degree[b]);
            std::swap(forced[a], forced[b]);
        }
    }

    // 3. Connectivity backbone: random-ancestor tree. Uniform ancestors
    // give ~log(n) depth; banded ancestors keep the backbone index-local
    // (depth ~ n/band) with evenly spread children.
    if (spec.backbone) {
        for (VertexId u = 1; u < n; ++u) {
            VertexId anc;
            if (spec.backboneBand > 0) {
                const std::uint64_t span =
                    std::min<std::uint64_t>(spec.backboneBand, u);
                anc = u - 1 - static_cast<VertexId>(rng.nextBounded(span));
            } else {
                anc = static_cast<VertexId>(rng.nextBounded(u));
            }
            pairs.insert(u, anc, true);
        }
    }

    BiasedSampler global(degree);
    std::vector<std::uint32_t> curDeg(n, 0);
    if (spec.backbone) {
        for (std::uint64_t key : pairs.pairs()) {
            curDeg[key >> 32]++;
            curDeg[key & 0xffffffffu]++;
        }
    }

    // 4. Locality-controlled stub initiation. Regular vertices initiate
    // half their degree (the other half arrives via degree-biased partner
    // selection); forced hubs initiate everything since the thin global
    // fraction of some presets cannot feed them.
    const double backbone_share = spec.backbone ? 1.0 : 0.0;
    for (VertexId u = 0; u < n; ++u) {
        const double init_frac = forced[u] ? 1.0 : 0.5;
        const std::uint32_t budget =
            stochRound(degree[u] * init_frac - backbone_share, rng);
        for (std::uint32_t i = 0; i < budget; ++i) {
            if (curDeg[u] >= spec.maxDegree)
                break;
            for (int attempt = 0; attempt < 8; ++attempt) {
                // The last attempts fall back to global partners so hub
                // blocks that saturate locally still place their stubs.
                const double r =
                    attempt >= 6 ? 1.0 : rng.nextDouble();
                VertexId v;
                if (r < spec.fracIntraBlock) {
                    const VertexId block = u / spec.blockSize;
                    const VertexId lo = block * spec.blockSize;
                    const VertexId span =
                        std::min<VertexId>(spec.blockSize, n - lo);
                    v = lo + static_cast<VertexId>(rng.nextBounded(span));
                } else if (r < spec.fracIntraBlock + spec.fracBand) {
                    const auto off =
                        1 + static_cast<std::int64_t>(
                                rng.nextBounded(spec.bandWidth));
                    const std::int64_t signedv =
                        (rng.next() & 1) ? static_cast<std::int64_t>(u) + off
                                         : static_cast<std::int64_t>(u) - off;
                    if (signedv < 0 || signedv >= static_cast<std::int64_t>(n))
                        continue;
                    v = static_cast<VertexId>(signedv);
                } else {
                    v = global.draw(rng);
                }
                if (v == u || curDeg[v] >= spec.maxDegree ||
                    pairs.contains(u, v)) {
                    continue;
                }
                pairs.insert(u, v, false);
                curDeg[u]++;
                curDeg[v]++;
                break;
            }
        }
    }
}

void
synthesizeGrid2d(const GenSpec& spec, Xoshiro256StarStar& rng, PairSet& pairs)
{
    const std::uint64_t rows = spec.gridRows;
    const std::uint64_t cols = spec.gridCols;
    const std::uint64_t grid_n = rows * cols;
    GGA_ASSERT(grid_n <= spec.numVertices,
               "grid larger than vertex budget in spec ", spec.name);

    // Label permutation (identity when disabled).
    std::vector<VertexId> label(spec.numVertices);
    for (VertexId i = 0; i < spec.numVertices; ++i)
        label[i] = i;
    if (spec.permuteLabels) {
        for (VertexId i = spec.numVertices; i > 1; --i) {
            const auto j = rng.nextBounded(i);
            std::swap(label[i - 1], label[j]);
        }
    }

    auto at = [&](std::uint64_t r, std::uint64_t c) {
        return label[static_cast<VertexId>(r * cols + c)];
    };
    for (std::uint64_t r = 0; r < rows; ++r) {
        for (std::uint64_t c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                pairs.insert(at(r, c), at(r, c + 1), false);
            if (r + 1 < rows)
                pairs.insert(at(r, c), at(r + 1, c), false);
        }
    }

    // Pendant vertices (exact |V|): attach each to a distinct border
    // vertex (degree <= 3) so the mesh's maximum degree stays 4. The
    // single edge is protected so trimming cannot disconnect it.
    const std::uint64_t pendants = spec.numVertices - grid_n;
    const std::uint64_t stride = pendants ? std::max<std::uint64_t>(
                                                1, cols / (pendants + 1))
                                          : 1;
    for (std::uint64_t i = 0; i < pendants; ++i) {
        const auto p = static_cast<VertexId>(grid_n + i);
        const std::uint64_t c = std::min(cols - 2, 1 + i * stride);
        pairs.insert(label[p], at(0, c), true);
    }
}

} // namespace

CsrGraph
generateGraph(const GenSpec& spec, unsigned build_threads)
{
    GGA_ASSERT(spec.numVertices > 1, "graph needs >= 2 vertices");
    GGA_ASSERT(spec.numDirectedEdges % 2 == 0,
               "directed edge target must be even (symmetric graph)");

    Xoshiro256StarStar rng(hashCombine(spec.seed, 0x66a51ull));

    PairSet pairs;
    // Synthesis overshoots the pair target before trimming; reserving a
    // little past it keeps the membership set from rehashing mid-stream.
    pairs.reserve(static_cast<std::size_t>(spec.numDirectedEdges / 2) +
                  spec.numDirectedEdges / 8);
    switch (spec.topology) {
      case Topology::DegreeDriven:
        synthesizeDegreeDriven(spec, rng, pairs);
        break;
      case Topology::Grid2d:
        synthesizeGrid2d(spec, rng, pairs);
        break;
    }

    // Trim or pad to the exact undirected pair target.
    const std::size_t target_pairs = spec.numDirectedEdges / 2;
    while (pairs.size() > target_pairs) {
        if (!pairs.removeRandom(rng))
            GGA_FATAL("cannot trim graph ", spec.name,
                      ": too many protected pairs");
    }
    std::size_t pad_failures = 0;
    while (pairs.size() < target_pairs) {
        const auto a = static_cast<VertexId>(rng.nextBounded(spec.numVertices));
        const auto b = static_cast<VertexId>(rng.nextBounded(spec.numVertices));
        if (a == b || !pairs.insert(a, b, false)) {
            if (++pad_failures > 64 * target_pairs)
                GGA_FATAL("cannot pad graph ", spec.name, " to ",
                          target_pairs, " pairs");
        }
    }

    GraphBuilder builder(spec.numVertices);
    builder.threads(build_threads);
    for (std::uint64_t key : pairs.pairs()) {
        builder.addEdge(static_cast<VertexId>(key >> 32),
                        static_cast<VertexId>(key & 0xffffffffu));
    }
    return builder.build(/*with_weights=*/true);
}

std::uint64_t
specContentHash(const GenSpec& spec)
{
    // Canonical fixed-width serialization of every generation-relevant
    // field (name excluded: it only labels log lines). kGeneratorVersion
    // participates so stale snapshot files are orphaned — never loaded —
    // whenever the synthesis algorithm changes.
    std::uint64_t h = kFnv1aBasis;
    const auto mix_u64 = [&h](std::uint64_t x) {
        h = fnv1a(&x, sizeof x, h);
    };
    const auto mix_f64 = [&h](double x) { h = fnv1a(&x, sizeof x, h); };
    mix_u64(kGeneratorVersion);
    mix_u64(static_cast<std::uint64_t>(spec.topology));
    mix_u64(spec.numVertices);
    mix_u64(spec.numDirectedEdges);
    mix_u64(static_cast<std::uint64_t>(spec.dist));
    mix_f64(spec.p1);
    mix_f64(spec.p2);
    mix_u64(spec.maxDegree);
    mix_f64(spec.fracIntraBlock);
    mix_f64(spec.fracBand);
    mix_u64(spec.bandWidth);
    mix_u64(spec.fullShuffle ? 1 : 0);
    mix_u64(spec.scatterHubCount);
    mix_u64(spec.hubPoolSize);
    mix_u64(spec.backbone ? 1 : 0);
    mix_u64(spec.backboneBand);
    mix_u64(spec.forceTopDegrees ? 1 : 0);
    mix_u64(spec.gridRows);
    mix_u64(spec.gridCols);
    mix_u64(spec.permuteLabels ? 1 : 0);
    mix_u64(spec.seed);
    mix_u64(spec.blockSize);
    return h;
}

} // namespace gga
