#include "graph/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "graph/builder.hpp"
#include "support/flat_map.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace gga {

namespace {

/** Canonical key for an undirected pair. */
inline std::uint64_t
pairKey(VertexId a, VertexId b)
{
    const VertexId lo = std::min(a, b);
    const VertexId hi = std::max(a, b);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

inline VertexId
keyLo(std::uint64_t key)
{
    return static_cast<VertexId>(key >> 32);
}

inline VertexId
keyHi(std::uint64_t key)
{
    return static_cast<VertexId>(key & 0xffffffffu);
}

/** Draw one target degree from the spec's distribution. */
template <typename Rng>
double
drawDegree(const GenSpec& spec, Rng& rng)
{
    switch (spec.dist) {
      case DegreeDist::Regular:
        return spec.p1;
      case DegreeDist::LogNormal:
        return std::exp(spec.p1 + spec.p2 * rng.nextGaussian());
      case DegreeDist::PowerLaw: {
        // Inverse-CDF sampling of P(d) ~ d^-alpha for d >= dmin.
        const double alpha = spec.p1;
        const double dmin = spec.p2;
        const double u = rng.nextDouble();
        return dmin * std::pow(1.0 - u, -1.0 / (alpha - 1.0));
      }
    }
    GGA_PANIC("unknown degree distribution");
}

/** Stochastic rounding: floor(x) + Bernoulli(frac(x)). */
template <typename Rng>
std::uint32_t
stochRound(double x, Rng& rng)
{
    if (x <= 0.0)
        return 0;
    const double fl = std::floor(x);
    const double frac = x - fl;
    return static_cast<std::uint32_t>(fl) + (rng.nextDouble() < frac ? 1 : 0);
}

// ---------------------------------------------------------------------------
// Parallel deterministic synthesis (generator v2).
//
// Every stochastic choice draws from a counter-based SplitRng stream keyed
// by (spec.seed, phase, owner index) — per vertex for degree/backbone
// draws, per fixed-size vertex block for stub initiation, one dedicated
// stream each for placement, trim, and pad. Work decomposes over those
// fixed owners (never over threads), and cross-block merging is resolved
// in a fixed block order, so the output is byte-identical at every thread
// count. The phases:
//
//   1. per-vertex target degrees            (parallel, stream per vertex)
//   2. sort + forced ramp + hub placement   (serial, own stream)
//   3. per-vertex backbone ancestors        (parallel, stream per vertex)
//   4. alias-table build over the degrees   (serial, no draws)
//   5. per-block stub initiation into       (parallel, stream per block)
//      per-(block, shard) candidate buckets
//   6. per-shard dedup in block order       (parallel, no draws)
//   7. degree-cap merge pass                (serial, no draws)
//   8. trim/pad to the exact pair target    (serial, own streams)
//
// Versus v1 (one sequential Xoshiro stream feeding one giant pair set),
// the hot loops also get algorithmically cheaper: partner sampling is a
// Walker alias table (two O(1) draws instead of a binary search over a
// |V|-sized cumulative array) and membership tests hit block-local or
// shard-local sets that stay cache-resident instead of one DRAM-sized
// table. That is where the committed single-core speedup comes from; the
// fork-join only multiplies it.
// ---------------------------------------------------------------------------

/** Fixed stub-initiation block: 4096 vertices per RNG stream/bucket row.
 *  Part of the deterministic decomposition — changing it changes graphs,
 *  so it participates in the generator version, not in tuning. */
constexpr std::uint64_t kSynthBlockVerts = 4096;

/** Fixed dedup shard count (hash-partitioned, so each shard's membership
 *  set stays small enough to be cache-resident). */
constexpr std::uint64_t kDedupShards = 64;

/**
 * Stub budgets are inflated by this factor so synthesis reliably
 * overshoots the pair target and lands on the cheap trim path (random
 * removals) instead of the pad path, which must first build a
 * membership set over every surviving pair. Trimming removes uniformly
 * at random, so the overshoot shrinks all degrees proportionally and
 * the distribution shape is preserved.
 */
constexpr double kBudgetOverdraw = 1.04;

/** Stream tags: one namespace per phase so no two phases ever share a
 *  counter sequence. Folded into SplitRng's stream id as
 *  (tag << 32) | owner_index. */
enum SynthStream : std::uint64_t
{
    kStreamDegree = 1,
    kStreamPlace = 2,
    kStreamBackbone = 3,
    kStreamStub = 4,
    kStreamTrim = 5,
    kStreamPad = 6,
    kStreamGrid = 7,
};

inline SplitRng
synthRng(const GenSpec& spec, SynthStream phase, std::uint64_t index = 0)
{
    return SplitRng(spec.seed, (static_cast<std::uint64_t>(phase) << 32) |
                                   index);
}

inline std::size_t
shardOf(std::uint64_t key)
{
    return static_cast<std::size_t>(hashMix64(key) >> 58); // top 6 bits
}
static_assert(kDedupShards == 64, "shardOf extracts log2(kDedupShards) bits");

/**
 * Walker alias table: degree-biased vertex sampling in O(1) draws.
 * Construction is the deterministic two-stack method (indices processed
 * ascending); the sampled distribution matches a cumulative-array
 * sampler over the same weights (up to the float rounding of the stored
 * acceptance probabilities). Each entry packs its acceptance probability
 * and alias target into 8 bytes so a draw costs one random cache line,
 * not two — the table is the one per-draw structure that cannot be made
 * cache-resident (it is |V|-sized), so its footprint is the floor on
 * global-draw cost.
 */
class AliasSampler
{
  public:
    explicit AliasSampler(const std::vector<double>& weights)
        : entries_(weights.size())
    {
        const std::size_t n = weights.size();
        double total = 0.0;
        for (double w : weights)
            total += w;
        GGA_ASSERT(n > 0 && total > 0.0, "alias table needs positive mass");
        std::vector<double> scaled(n);
        for (std::size_t i = 0; i < n; ++i) {
            scaled[i] = weights[i] * static_cast<double>(n) / total;
            entries_[i] = {1.0f, static_cast<VertexId>(i)};
        }
        std::vector<VertexId> small;
        std::vector<VertexId> large;
        for (std::size_t i = 0; i < n; ++i) {
            (scaled[i] < 1.0 ? small : large)
                .push_back(static_cast<VertexId>(i));
        }
        while (!small.empty() && !large.empty()) {
            const VertexId s = small.back();
            small.pop_back();
            const VertexId l = large.back();
            entries_[s] = {static_cast<float>(scaled[s]), l};
            scaled[l] -= 1.0 - scaled[s];
            if (scaled[l] < 1.0) {
                large.pop_back();
                small.push_back(l);
            }
        }
        // Leftovers on either stack are 1.0 up to rounding: self-alias.
    }

    VertexId
    draw(SplitRng& rng) const
    {
        const auto i =
            static_cast<std::size_t>(rng.nextBounded(entries_.size()));
        const Entry e = entries_[i];
        return rng.nextDouble() < e.prob ? static_cast<VertexId>(i)
                                         : e.alias;
    }

  private:
    struct Entry
    {
        float prob;
        VertexId alias;
    };
    static_assert(sizeof(Entry) == 8, "one cache line holds 8 entries");

    std::vector<Entry> entries_;
};

/**
 * Phases 1-7: produce the protected backbone pairs, the deduped capped
 * free pairs, and the running degree of every vertex (for the cap-aware
 * pad). All outputs are thread-count-invariant.
 */
void
degreeDrivenPairs(const GenSpec& spec, unsigned threads,
                  std::vector<std::uint64_t>& protected_pairs,
                  std::vector<std::uint64_t>& free_pairs,
                  std::vector<std::uint32_t>& curDeg)
{
    const VertexId n = spec.numVertices;

    // Phase 1: per-vertex target degrees. Keyed by vertex id, so the
    // draw for vertex u is the same no matter which thread runs it.
    std::vector<double> degree(n);
    parallelFor(threads, n, [&](std::size_t u) {
        SplitRng rng = synthRng(spec, kStreamDegree, u);
        degree[u] = std::clamp(drawDegree(spec, rng), 1.0,
                               static_cast<double>(spec.maxDegree));
    });

    // Phase 2 (serial): descending sort (clustered hubs), forced ramp,
    // hub placement — cheap O(n log n) on one dedicated stream.
    std::sort(degree.begin(), degree.end(), std::greater<>());
    std::vector<char> forced(n, 0);
    if (spec.forceTopDegrees) {
        // Pin the published maximum degree: a short geometric ramp of
        // "forced" hubs that initiate their entire target degree.
        double d = spec.maxDegree;
        for (VertexId i = 0; i < std::min<VertexId>(16, n); ++i) {
            degree[i] = std::max(degree[i], d);
            forced[i] = 1;
            d *= 0.72;
        }
    }
    {
        SplitRng rng = synthRng(spec, kStreamPlace);
        if (spec.fullShuffle) {
            for (VertexId i = n; i > 1; --i) {
                const auto j = rng.nextBounded(i);
                std::swap(degree[i - 1], degree[j]);
                std::swap(forced[i - 1], forced[j]);
            }
        } else {
            const std::uint32_t pool =
                std::min<std::uint32_t>(spec.hubPoolSize, n);
            for (std::uint32_t s = 0;
                 s < spec.scatterHubCount && pool > 0; ++s) {
                const auto a = rng.nextBounded(pool);
                const auto b = rng.nextBounded(n);
                std::swap(degree[a], degree[b]);
                std::swap(forced[a], forced[b]);
            }
        }
    }

    // Phase 3: backbone ancestors, one stream per vertex. anc doubles as
    // an O(1) backbone-membership oracle for the stub loop: (u, v) is a
    // backbone pair iff anc[u] == v or anc[v] == u (ancestors are always
    // strictly below their vertex, so the two directions cannot collide).
    std::vector<VertexId> anc(n, kInvalidVertex);
    if (spec.backbone) {
        protected_pairs.resize(n - 1);
        parallelFor(threads, n - 1, [&](std::size_t i) {
            const VertexId u = static_cast<VertexId>(i + 1);
            SplitRng rng = synthRng(spec, kStreamBackbone, u);
            VertexId a;
            if (spec.backboneBand > 0) {
                const std::uint64_t span =
                    std::min<std::uint64_t>(spec.backboneBand, u);
                a = u - 1 - static_cast<VertexId>(rng.nextBounded(span));
            } else {
                a = static_cast<VertexId>(rng.nextBounded(u));
            }
            anc[u] = a;
            protected_pairs[i] = pairKey(u, a);
        });
    }
    curDeg.assign(n, 0);
    for (std::uint64_t key : protected_pairs) {
        curDeg[keyLo(key)]++;
        curDeg[keyHi(key)]++;
    }

    // Phase 4 (serial, no draws): O(1) degree-biased partner sampler.
    const AliasSampler global(degree);

    // Phase 5: stub initiation over fixed 4096-vertex blocks, one stream
    // and one set of per-shard candidate buckets per block. Blocks dedup
    // locally (small cache-resident set) and against the backbone via
    // anc; cross-block duplicates survive until phase 6. Degree caps are
    // not consulted here — self-initiated budgets respect them by
    // construction, and partner-side overflow is settled in phase 7.
    const std::size_t num_blocks =
        (static_cast<std::size_t>(n) + kSynthBlockVerts - 1) /
        kSynthBlockVerts;
    std::vector<std::array<std::vector<std::uint64_t>, kDedupShards>>
        buckets(num_blocks);
    const double backbone_share = spec.backbone ? 1.0 : 0.0;
    parallelFor(threads, num_blocks, [&](std::size_t b) {
        SplitRng rng = synthRng(spec, kStreamStub, b);
        const VertexId lo = static_cast<VertexId>(b * kSynthBlockVerts);
        const VertexId hi = static_cast<VertexId>(
            std::min<std::uint64_t>(n, (b + 1) * kSynthBlockVerts));
        double expected = 0.0;
        for (VertexId u = lo; u < hi; ++u)
            expected += degree[u] * (forced[u] ? 1.0 : 0.5);
        expected *= kBudgetOverdraw;
        FlatSet<std::uint64_t> seen;
        seen.reserve(static_cast<std::size_t>(expected) + 16);
        auto& row = buckets[b];
        for (auto& bucket : row)
            bucket.reserve(static_cast<std::size_t>(expected) /
                               kDedupShards +
                           8);
        for (VertexId u = lo; u < hi; ++u) {
            const double init_frac = forced[u] ? 1.0 : 0.5;
            const std::uint32_t budget = stochRound(
                degree[u] * init_frac * kBudgetOverdraw - backbone_share,
                rng);
            for (std::uint32_t i = 0; i < budget; ++i) {
                for (int attempt = 0; attempt < 8; ++attempt) {
                    // The last attempts fall back to global partners so
                    // hub blocks that saturate locally still place
                    // their stubs.
                    const double r =
                        attempt >= 6 ? 1.0 : rng.nextDouble();
                    VertexId v;
                    if (r < spec.fracIntraBlock) {
                        const VertexId block = u / spec.blockSize;
                        const VertexId blo = block * spec.blockSize;
                        const VertexId span =
                            std::min<VertexId>(spec.blockSize, n - blo);
                        v = blo +
                            static_cast<VertexId>(rng.nextBounded(span));
                    } else if (r < spec.fracIntraBlock + spec.fracBand) {
                        const auto off =
                            1 + static_cast<std::int64_t>(
                                    rng.nextBounded(spec.bandWidth));
                        const std::int64_t signedv =
                            (rng.next() & 1)
                                ? static_cast<std::int64_t>(u) + off
                                : static_cast<std::int64_t>(u) - off;
                        if (signedv < 0 ||
                            signedv >= static_cast<std::int64_t>(n))
                            continue;
                        v = static_cast<VertexId>(signedv);
                    } else {
                        v = global.draw(rng);
                    }
                    if (v == u || anc[u] == v || anc[v] == u)
                        continue;
                    const std::uint64_t key = pairKey(u, v);
                    if (!seen.insert(key))
                        continue;
                    row[shardOf(key)].push_back(key);
                    break;
                }
            }
        }
    });

    // Phase 6: per-shard dedup. Each shard walks its buckets in block
    // order, so "first insertion wins" is a fixed order no matter how
    // shards are scheduled onto threads.
    std::array<std::vector<std::uint64_t>, kDedupShards> shard_kept;
    parallelFor(threads, kDedupShards, [&](std::size_t s) {
        std::size_t total = 0;
        for (std::size_t b = 0; b < num_blocks; ++b)
            total += buckets[b][s].size();
        FlatSet<std::uint64_t> set;
        set.reserve(total);
        auto& kept = shard_kept[s];
        kept.reserve(total);
        for (std::size_t b = 0; b < num_blocks; ++b) {
            for (std::uint64_t key : buckets[b][s]) {
                if (set.insert(key))
                    kept.push_back(key);
            }
        }
    });

    // Phase 7 (serial): merge shards in index order under the degree
    // cap. Pure array arithmetic — cheap enough that serializing it
    // costs little while making the cap outcome order-deterministic.
    std::size_t kept_total = 0;
    for (const auto& kept : shard_kept)
        kept_total += kept.size();
    free_pairs.reserve(kept_total);
    for (const auto& kept : shard_kept) {
        for (std::uint64_t key : kept) {
            const VertexId a = keyLo(key);
            const VertexId b = keyHi(key);
            if (curDeg[a] >= spec.maxDegree || curDeg[b] >= spec.maxDegree)
                continue;
            curDeg[a]++;
            curDeg[b]++;
            free_pairs.push_back(key);
        }
    }
}

/**
 * Grid synthesis (serial: the mesh is deterministic structure, only the
 * label permutation draws, and the grid presets are tiny next to the
 * degree-driven ones). Mesh edges are free; pendant attachments are
 * protected so trimming cannot disconnect them.
 */
void
grid2dPairs(const GenSpec& spec,
            std::vector<std::uint64_t>& protected_pairs,
            std::vector<std::uint64_t>& free_pairs)
{
    const std::uint64_t rows = spec.gridRows;
    const std::uint64_t cols = spec.gridCols;
    const std::uint64_t grid_n = rows * cols;
    GGA_ASSERT(grid_n <= spec.numVertices,
               "grid larger than vertex budget in spec ", spec.name);

    SplitRng rng = synthRng(spec, kStreamGrid);

    // Label permutation (identity when disabled).
    std::vector<VertexId> label(spec.numVertices);
    for (VertexId i = 0; i < spec.numVertices; ++i)
        label[i] = i;
    if (spec.permuteLabels) {
        for (VertexId i = spec.numVertices; i > 1; --i) {
            const auto j = rng.nextBounded(i);
            std::swap(label[i - 1], label[j]);
        }
    }

    auto at = [&](std::uint64_t r, std::uint64_t c) {
        return label[static_cast<VertexId>(r * cols + c)];
    };
    free_pairs.reserve(2 * grid_n);
    for (std::uint64_t r = 0; r < rows; ++r) {
        for (std::uint64_t c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                free_pairs.push_back(pairKey(at(r, c), at(r, c + 1)));
            if (r + 1 < rows)
                free_pairs.push_back(pairKey(at(r, c), at(r + 1, c)));
        }
    }

    // Pendant vertices (exact |V|): attach each to a distinct border
    // vertex (degree <= 3) so the mesh's maximum degree stays 4.
    const std::uint64_t pendants = spec.numVertices - grid_n;
    const std::uint64_t stride = pendants ? std::max<std::uint64_t>(
                                                1, cols / (pendants + 1))
                                          : 1;
    for (std::uint64_t i = 0; i < pendants; ++i) {
        const auto p = static_cast<VertexId>(grid_n + i);
        const std::uint64_t c = std::min(cols - 2, 1 + i * stride);
        protected_pairs.push_back(pairKey(label[p], at(0, c)));
    }
}

} // namespace

CsrGraph
generateGraph(const GenSpec& spec, unsigned build_threads)
{
    GGA_ASSERT(spec.numVertices > 1, "graph needs >= 2 vertices");
    GGA_ASSERT(spec.numDirectedEdges % 2 == 0,
               "directed edge target must be even (symmetric graph)");

    const unsigned threads =
        build_threads == 0 ? defaultBuildThreads() : build_threads;

    // Synthesize: protected pairs (never trimmed) + free pairs, and for
    // degree-driven graphs the realized per-vertex degrees so padding
    // can respect the cap.
    std::vector<std::uint64_t> protected_pairs;
    std::vector<std::uint64_t> free_pairs;
    std::vector<std::uint32_t> curDeg;
    switch (spec.topology) {
      case Topology::DegreeDriven:
        degreeDrivenPairs(spec, threads, protected_pairs, free_pairs,
                          curDeg);
        break;
      case Topology::Grid2d:
        grid2dPairs(spec, protected_pairs, free_pairs);
        break;
    }

    // Trim or pad to the exact undirected pair target, each on its own
    // dedicated stream (so the draw sequence is independent of how many
    // pairs synthesis produced at any thread count — it is already
    // independent of thread count by construction).
    const std::size_t target_pairs = spec.numDirectedEdges / 2;
    const std::size_t num_protected = protected_pairs.size();
    std::size_t total = num_protected + free_pairs.size();
    {
        SplitRng rng = synthRng(spec, kStreamTrim);
        int protected_hits = 0;
        while (total > target_pairs) {
            const std::size_t i =
                static_cast<std::size_t>(rng.nextBounded(total));
            if (i < num_protected) {
                if (++protected_hits >= 256)
                    GGA_FATAL("cannot trim graph ", spec.name,
                              ": too many protected pairs");
                continue;
            }
            protected_hits = 0;
            const std::size_t j = i - num_protected;
            const std::uint64_t key = free_pairs[j];
            free_pairs[j] = free_pairs.back();
            free_pairs.pop_back();
            --total;
            if (!curDeg.empty()) {
                curDeg[keyLo(key)]--;
                curDeg[keyHi(key)]--;
            }
        }
    }
    if (total < target_pairs) {
        // Membership oracle only the pad path needs; the normal
        // overshoot-then-trim route never pays for it.
        FlatSet<std::uint64_t> member;
        member.reserve(total + (target_pairs - total) * 2);
        for (std::uint64_t key : protected_pairs)
            member.insert(key);
        for (std::uint64_t key : free_pairs)
            member.insert(key);
        SplitRng rng = synthRng(spec, kStreamPad);
        std::size_t failures = 0;
        const std::size_t relax_at = 8 * target_pairs + 64;
        while (total < target_pairs) {
            const auto a = static_cast<VertexId>(
                rng.nextBounded(spec.numVertices));
            const auto b = static_cast<VertexId>(
                rng.nextBounded(spec.numVertices));
            // Cap-aware while it can afford to be: stop rejecting
            // saturated endpoints once draws suggest too little spare
            // capacity, rather than spinning forever.
            const bool cap_ok =
                curDeg.empty() || failures > relax_at ||
                (curDeg[a] < spec.maxDegree && curDeg[b] < spec.maxDegree);
            if (a == b || !cap_ok || !member.insert(pairKey(a, b))) {
                if (++failures > 64 * target_pairs)
                    GGA_FATAL("cannot pad graph ", spec.name, " to ",
                              target_pairs, " pairs");
                continue;
            }
            free_pairs.push_back(pairKey(a, b));
            ++total;
            if (!curDeg.empty()) {
                curDeg[a]++;
                curDeg[b]++;
            }
        }
    }

    GraphBuilder builder(spec.numVertices);
    builder.threads(build_threads);
    builder.reserveEdges(total);
    for (std::uint64_t key : protected_pairs)
        builder.addEdge(keyLo(key), keyHi(key));
    for (std::uint64_t key : free_pairs)
        builder.addEdge(keyLo(key), keyHi(key));
    return builder.build(/*with_weights=*/true);
}

// ---------------------------------------------------------------------------
// Frozen v1 synthesis (sequential single-stream) — the perf baseline that
// bench/graph_build measures the parallel path against. Not addressed by
// specContentHash and never cached; deliberately kept byte-for-byte as it
// shipped so the committed speedup always compares against the same work.
// ---------------------------------------------------------------------------

namespace {

/**
 * Mutable pair-set during v1 synthesis: O(1) membership + random
 * removal. Membership lives in open-addressing FlatSets; the list_
 * vector preserves insertion order, which the trim loop's random
 * indexing depends on.
 */
class PairSet
{
  public:
    bool
    insert(VertexId a, VertexId b, bool protect)
    {
        const std::uint64_t key = pairKey(a, b);
        if (!set_.insert(key))
            return false;
        list_.push_back(key);
        if (protect)
            protected_.insert(key);
        return true;
    }

    bool contains(VertexId a, VertexId b) const
    {
        return set_.contains(pairKey(a, b));
    }

    std::size_t size() const { return list_.size(); }

    /**
     * Pre-size for @p n pairs, @p protected_hint of which will be
     * protected — the set, the insertion-order list, and the protected
     * set all get their storage up front, so nothing rehashes or
     * reallocates mid-synthesis.
     */
    void
    reserve(std::size_t n, std::size_t protected_hint = 0)
    {
        set_.reserve(n);
        list_.reserve(n);
        protected_.reserve(protected_hint);
    }

    /**
     * Remove a random unprotected pair; returns it, or nullopt when 256
     * draws all hit protected pairs. A sentinel return would be
     * ambiguous: key 0 encodes the legal pair (0, 0).
     */
    std::optional<std::uint64_t>
    removeRandom(Xoshiro256StarStar& rng)
    {
        for (int attempts = 0; attempts < 256; ++attempts) {
            const std::size_t i = rng.nextBounded(list_.size());
            const std::uint64_t key = list_[i];
            if (protected_.contains(key))
                continue;
            list_[i] = list_.back();
            list_.pop_back();
            set_.erase(key);
            return key;
        }
        return std::nullopt;
    }

    const std::vector<std::uint64_t>& pairs() const { return list_; }

  private:
    FlatSet<std::uint64_t> set_;
    FlatSet<std::uint64_t> protected_;
    std::vector<std::uint64_t> list_;
};

/** v1 degree-biased sampler: binary search over a cumulative array. */
class BiasedSampler
{
  public:
    explicit BiasedSampler(const std::vector<double>& weights)
    {
        cum_.reserve(weights.size());
        double acc = 0.0;
        for (double w : weights) {
            acc += w;
            cum_.push_back(acc);
        }
        total_ = acc;
    }

    VertexId
    draw(Xoshiro256StarStar& rng) const
    {
        const double x = rng.nextDouble() * total_;
        const auto it = std::upper_bound(cum_.begin(), cum_.end(), x);
        const std::size_t i = static_cast<std::size_t>(it - cum_.begin());
        return static_cast<VertexId>(std::min(i, cum_.size() - 1));
    }

  private:
    std::vector<double> cum_;
    double total_ = 0.0;
};

void
synthesizeDegreeDrivenV1(const GenSpec& spec, Xoshiro256StarStar& rng,
                         PairSet& pairs)
{
    const VertexId n = spec.numVertices;

    // 1. Target degrees, descending (clustered hubs).
    std::vector<double> degree(n);
    for (auto& d : degree) {
        d = std::clamp(drawDegree(spec, rng), 1.0,
                       static_cast<double>(spec.maxDegree));
    }
    std::sort(degree.begin(), degree.end(), std::greater<>());

    std::vector<char> forced(n, 0);
    if (spec.forceTopDegrees) {
        double d = spec.maxDegree;
        for (VertexId i = 0; i < std::min<VertexId>(16, n); ++i) {
            degree[i] = std::max(degree[i], d);
            forced[i] = 1;
            d *= 0.72;
        }
    }

    // 2. Hub placement.
    if (spec.fullShuffle) {
        for (VertexId i = n; i > 1; --i) {
            const auto j = rng.nextBounded(i);
            std::swap(degree[i - 1], degree[j]);
            std::swap(forced[i - 1], forced[j]);
        }
    } else {
        const std::uint32_t pool =
            std::min<std::uint32_t>(spec.hubPoolSize, n);
        for (std::uint32_t s = 0; s < spec.scatterHubCount && pool > 0;
             ++s) {
            const auto a = rng.nextBounded(pool);
            const auto b = rng.nextBounded(n);
            std::swap(degree[a], degree[b]);
            std::swap(forced[a], forced[b]);
        }
    }

    // 3. Connectivity backbone: random-ancestor tree.
    if (spec.backbone) {
        for (VertexId u = 1; u < n; ++u) {
            VertexId anc;
            if (spec.backboneBand > 0) {
                const std::uint64_t span =
                    std::min<std::uint64_t>(spec.backboneBand, u);
                anc = u - 1 - static_cast<VertexId>(rng.nextBounded(span));
            } else {
                anc = static_cast<VertexId>(rng.nextBounded(u));
            }
            pairs.insert(u, anc, true);
        }
    }

    BiasedSampler global(degree);
    std::vector<std::uint32_t> curDeg(n, 0);
    if (spec.backbone) {
        for (std::uint64_t key : pairs.pairs()) {
            curDeg[key >> 32]++;
            curDeg[key & 0xffffffffu]++;
        }
    }

    // 4. Locality-controlled stub initiation, one global stream.
    const double backbone_share = spec.backbone ? 1.0 : 0.0;
    for (VertexId u = 0; u < n; ++u) {
        const double init_frac = forced[u] ? 1.0 : 0.5;
        const std::uint32_t budget =
            stochRound(degree[u] * init_frac - backbone_share, rng);
        for (std::uint32_t i = 0; i < budget; ++i) {
            if (curDeg[u] >= spec.maxDegree)
                break;
            for (int attempt = 0; attempt < 8; ++attempt) {
                const double r = attempt >= 6 ? 1.0 : rng.nextDouble();
                VertexId v;
                if (r < spec.fracIntraBlock) {
                    const VertexId block = u / spec.blockSize;
                    const VertexId lo = block * spec.blockSize;
                    const VertexId span =
                        std::min<VertexId>(spec.blockSize, n - lo);
                    v = lo + static_cast<VertexId>(rng.nextBounded(span));
                } else if (r < spec.fracIntraBlock + spec.fracBand) {
                    const auto off =
                        1 + static_cast<std::int64_t>(
                                rng.nextBounded(spec.bandWidth));
                    const std::int64_t signedv =
                        (rng.next() & 1)
                            ? static_cast<std::int64_t>(u) + off
                            : static_cast<std::int64_t>(u) - off;
                    if (signedv < 0 ||
                        signedv >= static_cast<std::int64_t>(n))
                        continue;
                    v = static_cast<VertexId>(signedv);
                } else {
                    v = global.draw(rng);
                }
                if (v == u || curDeg[v] >= spec.maxDegree ||
                    pairs.contains(u, v)) {
                    continue;
                }
                pairs.insert(u, v, false);
                curDeg[u]++;
                curDeg[v]++;
                break;
            }
        }
    }
}

void
synthesizeGrid2dV1(const GenSpec& spec, Xoshiro256StarStar& rng,
                   PairSet& pairs)
{
    const std::uint64_t rows = spec.gridRows;
    const std::uint64_t cols = spec.gridCols;
    const std::uint64_t grid_n = rows * cols;
    GGA_ASSERT(grid_n <= spec.numVertices,
               "grid larger than vertex budget in spec ", spec.name);

    std::vector<VertexId> label(spec.numVertices);
    for (VertexId i = 0; i < spec.numVertices; ++i)
        label[i] = i;
    if (spec.permuteLabels) {
        for (VertexId i = spec.numVertices; i > 1; --i) {
            const auto j = rng.nextBounded(i);
            std::swap(label[i - 1], label[j]);
        }
    }

    auto at = [&](std::uint64_t r, std::uint64_t c) {
        return label[static_cast<VertexId>(r * cols + c)];
    };
    for (std::uint64_t r = 0; r < rows; ++r) {
        for (std::uint64_t c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                pairs.insert(at(r, c), at(r, c + 1), false);
            if (r + 1 < rows)
                pairs.insert(at(r, c), at(r + 1, c), false);
        }
    }

    const std::uint64_t pendants = spec.numVertices - grid_n;
    const std::uint64_t stride = pendants ? std::max<std::uint64_t>(
                                                1, cols / (pendants + 1))
                                          : 1;
    for (std::uint64_t i = 0; i < pendants; ++i) {
        const auto p = static_cast<VertexId>(grid_n + i);
        const std::uint64_t c = std::min(cols - 2, 1 + i * stride);
        pairs.insert(label[p], at(0, c), true);
    }
}

} // namespace

CsrGraph
generateGraphReference(const GenSpec& spec, unsigned build_threads)
{
    GGA_ASSERT(spec.numVertices > 1, "graph needs >= 2 vertices");
    GGA_ASSERT(spec.numDirectedEdges % 2 == 0,
               "directed edge target must be even (symmetric graph)");

    Xoshiro256StarStar rng(hashCombine(spec.seed, 0x66a51ull));

    PairSet pairs;
    // Synthesis overshoots the pair target before trimming; reserving a
    // little past it keeps the membership set from rehashing mid-stream.
    pairs.reserve(static_cast<std::size_t>(spec.numDirectedEdges / 2) +
                      spec.numDirectedEdges / 8,
                  spec.backbone && spec.topology == Topology::DegreeDriven
                      ? spec.numVertices - 1
                      : 0);
    switch (spec.topology) {
      case Topology::DegreeDriven:
        synthesizeDegreeDrivenV1(spec, rng, pairs);
        break;
      case Topology::Grid2d:
        synthesizeGrid2dV1(spec, rng, pairs);
        break;
    }

    const std::size_t target_pairs = spec.numDirectedEdges / 2;
    while (pairs.size() > target_pairs) {
        if (!pairs.removeRandom(rng))
            GGA_FATAL("cannot trim graph ", spec.name,
                      ": too many protected pairs");
    }
    std::size_t pad_failures = 0;
    while (pairs.size() < target_pairs) {
        const auto a =
            static_cast<VertexId>(rng.nextBounded(spec.numVertices));
        const auto b =
            static_cast<VertexId>(rng.nextBounded(spec.numVertices));
        if (a == b || !pairs.insert(a, b, false)) {
            if (++pad_failures > 64 * target_pairs)
                GGA_FATAL("cannot pad graph ", spec.name, " to ",
                          target_pairs, " pairs");
        }
    }

    GraphBuilder builder(spec.numVertices);
    builder.threads(build_threads);
    for (std::uint64_t key : pairs.pairs()) {
        builder.addEdge(static_cast<VertexId>(key >> 32),
                        static_cast<VertexId>(key & 0xffffffffu));
    }
    return builder.build(/*with_weights=*/true);
}

std::uint64_t
specContentHash(const GenSpec& spec)
{
    // Canonical fixed-width serialization of every generation-relevant
    // field (name excluded: it only labels log lines). kGeneratorVersion
    // participates so stale snapshot files are orphaned — never loaded —
    // whenever the synthesis algorithm changes.
    std::uint64_t h = kFnv1aBasis;
    const auto mix_u64 = [&h](std::uint64_t x) {
        h = fnv1a(&x, sizeof x, h);
    };
    const auto mix_f64 = [&h](double x) { h = fnv1a(&x, sizeof x, h); };
    mix_u64(kGeneratorVersion);
    mix_u64(static_cast<std::uint64_t>(spec.topology));
    mix_u64(spec.numVertices);
    mix_u64(spec.numDirectedEdges);
    mix_u64(static_cast<std::uint64_t>(spec.dist));
    mix_f64(spec.p1);
    mix_f64(spec.p2);
    mix_u64(spec.maxDegree);
    mix_f64(spec.fracIntraBlock);
    mix_f64(spec.fracBand);
    mix_u64(spec.bandWidth);
    mix_u64(spec.fullShuffle ? 1 : 0);
    mix_u64(spec.scatterHubCount);
    mix_u64(spec.hubPoolSize);
    mix_u64(spec.backbone ? 1 : 0);
    mix_u64(spec.backboneBand);
    mix_u64(spec.forceTopDegrees ? 1 : 0);
    mix_u64(spec.gridRows);
    mix_u64(spec.gridCols);
    mix_u64(spec.permuteLabels ? 1 : 0);
    mix_u64(spec.seed);
    mix_u64(spec.blockSize);
    return h;
}

} // namespace gga
