/**
 * @file
 * MatrixMarket coordinate-format IO, so the real SuiteSparse inputs used by
 * the paper (amazon0601, ..., wing) can be dropped in place of the synthetic
 * presets when available.
 */

#ifndef GGA_GRAPH_MTX_IO_HPP
#define GGA_GRAPH_MTX_IO_HPP

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace gga {

/**
 * Parse a MatrixMarket "matrix coordinate" stream into a canonical graph
 * (symmetrized, self-loops removed). Supports pattern/real/integer fields
 * and general/symmetric symmetry. Numeric values are ignored; use
 * @p with_weights to attach the library's deterministic weights.
 *
 * Calls GGA_FATAL on malformed input.
 */
CsrGraph readMatrixMarket(std::istream& in, bool with_weights = false);

/** Convenience overload reading from a file path. */
CsrGraph readMatrixMarketFile(const std::string& path,
                              bool with_weights = false);

/**
 * Write a graph as "matrix coordinate pattern symmetric": each undirected
 * pair emitted once with 1-based indices.
 */
void writeMatrixMarket(std::ostream& out, const CsrGraph& g);

} // namespace gga

#endif // GGA_GRAPH_MTX_IO_HPP
