/**
 * @file
 * MatrixMarket coordinate-format IO, so the real SuiteSparse inputs used by
 * the paper (amazon0601, ..., wing) can be dropped in place of the synthetic
 * presets when available.
 */

#ifndef GGA_GRAPH_MTX_IO_HPP
#define GGA_GRAPH_MTX_IO_HPP

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace gga {

/**
 * Parse a MatrixMarket "matrix coordinate" stream into a canonical graph
 * (symmetrized; self-loops removed unless @p keep_self_loops). Supports
 * pattern/real/integer fields and general/symmetric symmetry. Numeric
 * values are ignored; use @p with_weights to attach the library's
 * deterministic weights. Set @p keep_self_loops for a lossless
 * write->read round trip of graphs that carry self-edges; the default
 * matches the paper's canonicalization (Sec. V-A).
 *
 * Calls GGA_FATAL on malformed input.
 */
CsrGraph readMatrixMarket(std::istream& in, bool with_weights = false,
                          bool keep_self_loops = false);

/** Convenience overload reading from a file path. */
CsrGraph readMatrixMarketFile(const std::string& path,
                              bool with_weights = false,
                              bool keep_self_loops = false);

/**
 * Write a graph as "matrix coordinate pattern symmetric": each undirected
 * pair (including self-loops) emitted once with 1-based indices, so a
 * write->read round trip through readMatrixMarket(in, w, true) is exact.
 */
void writeMatrixMarket(std::ostream& out, const CsrGraph& g);

} // namespace gga

#endif // GGA_GRAPH_MTX_IO_HPP
