/**
 * @file
 * Versioned binary CSR snapshots (".csrbin") — the on-disk cache format
 * that lets sharded evaluation workers load prebuilt input graphs
 * instead of re-synthesizing them at every cold start.
 *
 * Layout (native little-endian, fixed-width fields):
 *
 *   [SnapshotHeader]  magic, format version, endian tag, flags,
 *                     |V|, |E|, content checksum
 *   [offsets blob]    (|V|+1) x EdgeId
 *   [targets blob]    |E| x VertexId
 *   [weights blob]    |E| x uint32 (present iff kSnapshotHasWeights)
 *
 * The checksum is FNV-1a over the three blobs in file order, so any
 * truncation or corruption is rejected loudly (SnapshotError) and the
 * caller falls back to synthesis. Load never aborts the process: every
 * validation failure is an exception, because a stale cache file is user
 * input, not a programming error.
 *
 * Writers go through a temp file + rename so concurrent workers sharing
 * one cache directory never observe a half-written snapshot.
 */

#ifndef GGA_GRAPH_SNAPSHOT_HPP
#define GGA_GRAPH_SNAPSHOT_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/csr.hpp"

namespace gga {

/** Thrown on unreadable/corrupt/foreign snapshot files and save I/O
 *  failures. An exception, not a fatal: callers fall back to synthesis. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string& why) : std::runtime_error(why)
    {
    }
};

/** Bump on any layout change; loaders reject other versions. */
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/**
 * Write @p g to @p path atomically (temp file + rename). Throws
 * SnapshotError on I/O failure; on success the file round-trips through
 * loadCsrSnapshot to a graph that compares equal to @p g.
 */
void saveCsrSnapshot(const std::string& path, const CsrGraph& g);

/** How loadCsrSnapshot materializes the arrays. */
enum class SnapshotLoadMode
{
    /** mmap when the filesystem supports it, else the copying path. */
    Auto,
    /** Zero-copy: the graph borrows the mapping (fails if mmap does). */
    Mmap,
    /** Read every blob through ifstream into owned vectors. */
    Copy,
};

/**
 * Load a snapshot written by saveCsrSnapshot. Throws SnapshotError on a
 * missing file, bad magic/version/endianness, truncated or oversized
 * payload, checksum mismatch, or malformed CSR arrays — never a fatal,
 * so callers can fall back to building from scratch.
 *
 * The default Auto mode maps the file read-only and returns a
 * borrowed-storage CsrGraph aliasing the mapping (the checksum is still
 * verified over the mapped pages), falling back to the copying ifstream
 * path on filesystems where mmap fails. Both modes return graphs that
 * compare equal; the mapping (not the file name) is held alive by the
 * graph, so deleting the snapshot after a load is safe.
 */
CsrGraph loadCsrSnapshot(const std::string& path,
                         SnapshotLoadMode mode = SnapshotLoadMode::Auto);

/**
 * Canonical cache-file name for a graph identified by @p name (preset
 * name, "AMZ"), @p scale_units (GraphStore micro-units, 1000000 = full
 * scale), and @p content_hash (specContentHash of the generating spec):
 * "AMZ_s1000000_<hash hex>.csrbin". Content-addressed: a generator or
 * spec change produces a different hash, orphaning stale files instead
 * of loading them.
 */
std::string csrSnapshotFileName(const std::string& name,
                                std::int64_t scale_units,
                                std::uint64_t content_hash);

} // namespace gga

#endif // GGA_GRAPH_SNAPSHOT_HPP
