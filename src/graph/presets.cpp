#include "graph/presets.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "support/log.hpp"

namespace gga {

const std::string&
presetName(GraphPreset p)
{
    static const std::string names[] = {"AMZ", "DCT", "EML",
                                        "OLS", "RAJ", "WNG"};
    return names[static_cast<int>(p)];
}

const PaperGraphStats&
paperStats(GraphPreset p)
{
    // Verbatim rows of the paper's Table II.
    static const PaperGraphStats stats[] = {
        // V        E        maxD  avgD    stdD    volKB     ANL    ANR     reuse  imb    classes
        {410236, 6713648, 2770, 16.265, 16.298, 1855.178, 2.616, 13.749, 0.160, 0.000, 'H', 'M', 'L'},
        {52652, 178076, 38, 3.382, 4.475, 60.078, 1.215, 2.167, 0.359, 0.083, 'M', 'M', 'M'},
        {265214, 837912, 7636, 3.159, 42.490, 287.272, 0.167, 2.992, 0.053, 1.000, 'H', 'L', 'H'},
        {88263, 683186, 10, 7.740, 2.411, 200.898, 3.446, 4.295, 0.445, 0.000, 'M', 'H', 'L'},
        {20640, 163178, 3469, 7.906, 32.954, 47.869, 4.697, 3.209, 0.594, 0.617, 'L', 'H', 'H'},
        {61032, 243088, 4, 3.919, 0.278, 79.458, 0.020, 3.899, 0.003, 0.000, 'M', 'L', 'L'},
    };
    return stats[static_cast<int>(p)];
}

GenSpec
presetSpec(GraphPreset p)
{
    GenSpec s;
    s.name = presetName(p);
    const PaperGraphStats& t = paperStats(p);
    s.numVertices = t.vertices;
    s.numDirectedEdges = t.edges;
    s.seed = 0xabcd0000ull + static_cast<std::uint64_t>(p);

    switch (p) {
      case GraphPreset::Amz:
        // Moderate lognormal tail (CV ~ 1), hubs clustered by the degree
        // sort, ~16% intra-block edges.
        s.dist = DegreeDist::LogNormal;
        s.p1 = std::log(16.3) - 0.5 * 0.833 * 0.833;
        s.p2 = 0.833;
        s.maxDegree = 2770;
        s.forceTopDegrees = true;
        s.fracIntraBlock = 0.21;
        s.fracBand = 0.0;
        s.backbone = true;
        break;
      case GraphPreset::Dct:
        // Small graph, mild tail, ~36% intra-block, a few scattered hubs
        // for medium imbalance.
        s.dist = DegreeDist::LogNormal;
        s.p1 = std::log(3.38) - 0.5 * 1.0;
        s.p2 = 1.0;
        s.maxDegree = 38;
        s.fracIntraBlock = 0.80;
        s.fracBand = 0.0;
        s.scatterHubCount = 30;
        s.hubPoolSize = 64;
        s.backbone = true;
        break;
      case GraphPreset::Eml:
        // Extreme power law (huge stddev), fully random vertex order so
        // hubs land in nearly every thread block, ~5% local edges.
        s.dist = DegreeDist::PowerLaw;
        s.p1 = 2.5;
        s.p2 = 1.0;
        s.maxDegree = 7636;
        s.forceTopDegrees = true;
        s.fracIntraBlock = 0.14;
        s.fracBand = 0.0;
        s.fullShuffle = true;
        s.backbone = true;
        break;
      case GraphPreset::Ols:
        // FEM-style: narrow degree spread capped at 10, heavy intra-block
        // locality plus a banded component.
        s.dist = DegreeDist::LogNormal;
        s.p1 = std::log(7.9) - 0.5 * 0.09;
        s.p2 = 0.30;
        s.maxDegree = 10;
        s.fracIntraBlock = 0.62;
        s.fracBand = 0.25;
        s.bandWidth = 180;
        s.backbone = true;
        s.backboneBand = 1500;
        break;
      case GraphPreset::Raj:
        // Circuit-like: heavy tail and high locality; a tuned number of
        // hubs scattered into random thread blocks yields the ~0.6
        // imbalance of the paper.
        s.dist = DegreeDist::PowerLaw;
        s.p1 = 2.35;
        s.p2 = 2.0;
        s.maxDegree = 3469;
        s.forceTopDegrees = true;
        s.fracIntraBlock = 0.85;
        s.fracBand = 0.0;
        s.scatterHubCount = 78;
        s.hubPoolSize = 400;
        s.backbone = true;
        break;
      case GraphPreset::Wng:
        // 247x247 4-neighbour mesh + 23 pendant vertices for the exact
        // vertex count; labels permuted so neighbours share a thread block
        // only by accident.
        s.topology = Topology::Grid2d;
        s.gridRows = 247;
        s.gridCols = 247;
        s.permuteLabels = true;
        break;
    }
    return s;
}

GenSpec
presetSpecScaled(GraphPreset p, double scale)
{
    GGA_ASSERT(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    GenSpec s = presetSpec(p);
    // The full-scale spec must come out exactly as presetSpec wrote it
    // (not rounded through the scaling arithmetic): full-scale graphs
    // and their snapshot identities key off it.
    if (scale >= 1.0)
        return s;
    const auto v = static_cast<VertexId>(
        std::max<double>(64.0, std::floor(s.numVertices * scale)));
    auto e = static_cast<EdgeId>(s.numDirectedEdges * scale);
    if (e % 2)
        ++e;
    // Keep the edge budget feasible for the shrunken vertex set.
    const std::uint64_t cap =
        static_cast<std::uint64_t>(v) * (v - 1) / 2;
    e = static_cast<EdgeId>(std::min<std::uint64_t>(e / 2, cap)) * 2;
    s.numVertices = v;
    s.numDirectedEdges = std::max<EdgeId>(e, 2);
    if (s.topology == Topology::Grid2d) {
        const auto side = static_cast<std::uint32_t>(std::sqrt(double(v)));
        s.gridRows = std::max(2u, side);
        s.gridCols = std::max(2u, side);
        GGA_ASSERT(static_cast<std::uint64_t>(s.gridRows) * s.gridCols <= v,
                   "scaled grid exceeds vertex budget");
    }
    s.scatterHubCount = static_cast<std::uint32_t>(
        std::ceil(s.scatterHubCount * scale));
    s.hubPoolSize = std::max<std::uint32_t>(
        16, static_cast<std::uint32_t>(s.hubPoolSize * scale));
    return s;
}

CsrGraph
buildPresetScaled(GraphPreset p, double scale, unsigned build_threads)
{
    return generateGraph(presetSpecScaled(p, scale), build_threads);
}

} // namespace gga
