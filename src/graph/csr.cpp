#include "graph/csr.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace gga {

CsrGraph::CsrGraph(std::vector<EdgeId> row_offsets,
                   std::vector<VertexId> col_indices,
                   std::vector<std::uint32_t> weights)
    : numVertices_(row_offsets.empty()
                       ? 0
                       : static_cast<VertexId>(row_offsets.size() - 1)),
      rowOffsets_(std::move(row_offsets)),
      colIndices_(std::move(col_indices)),
      weights_(std::move(weights))
{
    GGA_ASSERT(!rowOffsets_.empty(), "row offsets must have >= 1 entry");
    GGA_ASSERT(rowOffsets_.front() == 0, "row offsets must start at 0");
    GGA_ASSERT(rowOffsets_.back() == colIndices_.size(),
               "row offsets must end at |E|, got ", rowOffsets_.back(),
               " vs ", colIndices_.size());
    GGA_ASSERT(std::is_sorted(rowOffsets_.begin(), rowOffsets_.end()),
               "row offsets must be monotone");
    GGA_ASSERT(weights_.empty() || weights_.size() == colIndices_.size(),
               "weights must be empty or match edge count");
    for (VertexId t : colIndices_)
        GGA_ASSERT(t < numVertices_, "edge target out of range: ", t);
}

double
CsrGraph::avgDegree() const
{
    if (numVertices_ == 0)
        return 0.0;
    return static_cast<double>(numEdges()) / static_cast<double>(numVertices_);
}

bool
CsrGraph::isSymmetric() const
{
    for (VertexId u = 0; u < numVertices_; ++u) {
        for (VertexId v : neighbors(u)) {
            const auto nb = neighbors(v);
            if (!std::binary_search(nb.begin(), nb.end(), u))
                return false;
        }
    }
    return true;
}

bool
CsrGraph::hasNoSelfLoops() const
{
    for (VertexId u = 0; u < numVertices_; ++u) {
        const auto nb = neighbors(u);
        if (std::binary_search(nb.begin(), nb.end(), u))
            return false;
    }
    return true;
}

} // namespace gga
