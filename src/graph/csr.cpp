#include "graph/csr.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace gga {

CsrGraph::CsrGraph(std::vector<EdgeId> row_offsets,
                   std::vector<VertexId> col_indices,
                   std::vector<std::uint32_t> weights)
    : numVertices_(row_offsets.empty()
                       ? 0
                       : static_cast<VertexId>(row_offsets.size() - 1)),
      ownedOffsets_(std::move(row_offsets)),
      ownedCols_(std::move(col_indices)),
      ownedWeights_(std::move(weights))
{
    rebindOwned();
    validate();
}

CsrGraph::CsrGraph(std::span<const EdgeId> row_offsets,
                   std::span<const VertexId> col_indices,
                   std::span<const std::uint32_t> weights,
                   std::shared_ptr<const void> storage)
    : numVertices_(row_offsets.empty()
                       ? 0
                       : static_cast<VertexId>(row_offsets.size() - 1)),
      ownedOffsets_(),
      rowOffsets_(row_offsets),
      colIndices_(col_indices),
      weights_(weights),
      storage_(std::move(storage))
{
    GGA_ASSERT(storage_ != nullptr,
               "borrowed CSR storage needs a live keeper");
    validate();
}

void
CsrGraph::validate() const
{
    GGA_ASSERT(!rowOffsets_.empty(), "row offsets must have >= 1 entry");
    GGA_ASSERT(rowOffsets_.front() == 0, "row offsets must start at 0");
    GGA_ASSERT(rowOffsets_.back() == colIndices_.size(),
               "row offsets must end at |E|, got ", rowOffsets_.back(),
               " vs ", colIndices_.size());
    GGA_ASSERT(std::is_sorted(rowOffsets_.begin(), rowOffsets_.end()),
               "row offsets must be monotone");
    GGA_ASSERT(weights_.empty() || weights_.size() == colIndices_.size(),
               "weights must be empty or match edge count");
    for (VertexId t : colIndices_)
        GGA_ASSERT(t < numVertices_, "edge target out of range: ", t);
}

void
CsrGraph::assignCopy(const CsrGraph& o)
{
    numVertices_ = o.numVertices_;
    storage_ = o.storage_;
    if (storage_) {
        // Borrowed: share the keeper, alias the same memory.
        ownedOffsets_.clear();
        ownedCols_.clear();
        ownedWeights_.clear();
        rowOffsets_ = o.rowOffsets_;
        colIndices_ = o.colIndices_;
        weights_ = o.weights_;
    } else {
        ownedOffsets_.assign(o.rowOffsets_.begin(), o.rowOffsets_.end());
        ownedCols_.assign(o.colIndices_.begin(), o.colIndices_.end());
        ownedWeights_.assign(o.weights_.begin(), o.weights_.end());
        rebindOwned();
    }
}

void
CsrGraph::assignMove(CsrGraph&& o) noexcept
{
    numVertices_ = o.numVertices_;
    storage_ = std::move(o.storage_);
    ownedOffsets_ = std::move(o.ownedOffsets_);
    ownedCols_ = std::move(o.ownedCols_);
    ownedWeights_ = std::move(o.ownedWeights_);
    if (storage_) {
        // Borrowed: spans point into the keeper's memory, not into the
        // (moved) vectors, so they remain valid verbatim.
        rowOffsets_ = o.rowOffsets_;
        colIndices_ = o.colIndices_;
        weights_ = o.weights_;
    } else {
        // Owning: vector move transfers the heap buffers, so rebinding
        // lands on the same data the source spans viewed.
        rebindOwned();
    }
    // Leave the source destructible/assignable with no dangling spans
    // (moved-from state: empty arrays; allocation-free, keeps noexcept).
    o.numVertices_ = 0;
    o.ownedOffsets_.clear();
    o.ownedCols_.clear();
    o.ownedWeights_.clear();
    o.rowOffsets_ = {};
    o.colIndices_ = {};
    o.weights_ = {};
}

double
CsrGraph::avgDegree() const
{
    if (numVertices_ == 0)
        return 0.0;
    return static_cast<double>(numEdges()) / static_cast<double>(numVertices_);
}

bool
CsrGraph::isSymmetric() const
{
    for (VertexId u = 0; u < numVertices_; ++u) {
        for (VertexId v : neighbors(u)) {
            const auto nb = neighbors(v);
            if (!std::binary_search(nb.begin(), nb.end(), u))
                return false;
        }
    }
    return true;
}

bool
CsrGraph::hasNoSelfLoops() const
{
    for (VertexId u = 0; u < numVertices_; ++u) {
        const auto nb = neighbors(u);
        if (std::binary_search(nb.begin(), nb.end(), u))
            return false;
    }
    return true;
}

} // namespace gga
