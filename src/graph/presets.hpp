/**
 * @file
 * The six input graphs of the paper's Table II, as synthetic presets.
 *
 * Each preset targets the published |V|, |E| exactly and the degree/locality
 * structure approximately, such that the Table II taxonomy *classes*
 * (Volume, Reuse, Imbalance in {L, M, H}) are reproduced.
 */

#ifndef GGA_GRAPH_PRESETS_HPP
#define GGA_GRAPH_PRESETS_HPP

#include <array>
#include <string>

#include "graph/csr.hpp"
#include "graph/generator.hpp"

namespace gga {

/** The six inputs (paper Table II). */
enum class GraphPreset
{
    Amz, ///< amazon-like co-purchase graph: big, moderate tail, clustered hubs
    Dct, ///< small dictionary-like graph: mild tail, medium locality
    Eml, ///< email-like graph: extreme power law, scattered hubs
    Ols, ///< FEM-like banded graph: narrow degrees, high locality
    Raj, ///< circuit-like graph: heavy tail plus high locality
    Wng, ///< wing-like 2D mesh with permuted labels: regular, no locality
};

inline constexpr std::array<GraphPreset, 6> kAllGraphPresets = {
    GraphPreset::Amz, GraphPreset::Dct, GraphPreset::Eml,
    GraphPreset::Ols, GraphPreset::Raj, GraphPreset::Wng,
};

/** Short uppercase name as used in the paper ("AMZ", ...). */
const std::string& presetName(GraphPreset p);

/** Published Table II statistics for comparison in tests and benches. */
struct PaperGraphStats
{
    VertexId vertices;
    EdgeId edges;
    std::uint32_t maxDegree;
    double avgDegree;
    double stddevDegree;
    double volumeKb;
    double anl;
    double anr;
    double reuse;
    double imbalance;
    char volumeClass;    // 'L' | 'M' | 'H'
    char reuseClass;     // 'L' | 'M' | 'H'
    char imbalanceClass; // 'L' | 'M' | 'H'
};

/** Paper-published row of Table II for @p p. */
const PaperGraphStats& paperStats(GraphPreset p);

/** Generation recipe for @p p. */
GenSpec presetSpec(GraphPreset p);

/**
 * Generation recipe for @p p at @p scale in (0, 1]: vertices and edges
 * multiplied by the scale (minimum 64 vertices), hub knobs rescaled,
 * grid presets re-squared. At scale 1.0 this is exactly presetSpec(p) —
 * the identity snapshot files and full-scale builds key off.
 */
GenSpec presetSpecScaled(GraphPreset p, double scale);

/**
 * Build a scaled variant: generateGraph(presetSpecScaled(p, scale)).
 * Not memoized; bit-identical at every @p build_threads value
 * (0 = defaultBuildThreads()).
 */
CsrGraph buildPresetScaled(GraphPreset p, double scale,
                           unsigned build_threads = 0);

} // namespace gga

#endif // GGA_GRAPH_PRESETS_HPP
