#include "graph/degree_stats.hpp"

#include <cmath>

namespace gga {

DegreeStats
computeDegreeStats(const CsrGraph& g)
{
    DegreeStats s;
    const VertexId n = g.numVertices();
    if (n == 0)
        return s;
    double sum = 0.0;
    for (VertexId v = 0; v < n; ++v) {
        const std::uint32_t d = g.degree(v);
        s.maxDegree = std::max(s.maxDegree, d);
        sum += d;
    }
    s.avgDegree = sum / n;
    double var = 0.0;
    for (VertexId v = 0; v < n; ++v) {
        const double d = g.degree(v) - s.avgDegree;
        var += d * d;
    }
    s.stddevDegree = std::sqrt(var / n);
    return s;
}

} // namespace gga
