#include "graph/builder.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace gga {

unsigned
defaultBuildThreads()
{
    static const unsigned threads = [] {
        const char* env = std::getenv("GGA_BUILD_THREADS");
        if (!env)
            env = std::getenv("GGA_SESSION_THREADS");
        if (!env)
            return 1u;
        const long t = std::atol(env);
        if (t < 1) {
            GGA_WARN("build thread count '", env, "' is invalid; using 1");
            return 1u;
        }
        return static_cast<unsigned>(t);
    }();
    return threads;
}

GraphBuilder::GraphBuilder(VertexId num_vertices) : numVertices_(num_vertices)
{
}

void
GraphBuilder::addEdge(VertexId u, VertexId v)
{
    GGA_ASSERT(u < numVertices_ && v < numVertices_,
               "edge endpoint out of range: ", u, "->", v);
    srcs_.push_back(u);
    dsts_.push_back(v);
}

void
GraphBuilder::addUndirected(VertexId u, VertexId v)
{
    addEdge(u, v);
    addEdge(v, u);
}

std::uint32_t
pairWeight(VertexId u, VertexId v)
{
    const VertexId lo = std::min(u, v);
    const VertexId hi = std::max(u, v);
    return 1u + static_cast<std::uint32_t>(hashCombine(lo, hi) % 31ull);
}

CsrGraph
GraphBuilder::build(bool with_weights) const
{
    return buildCounting(with_weights,
                         threads_ == 0 ? defaultBuildThreads() : threads_);
}

CsrGraph
GraphBuilder::buildCounting(bool with_weights, unsigned threads) const
{
    const std::size_t raw = srcs_.size();
    const std::size_t n = numVertices_;
    // Give each worker at least ~16k raw edges: below that the fork-join
    // overhead outweighs the split, and the counting construction beats
    // the reference sort on its own.
    const std::size_t max_useful =
        std::max<std::size_t>(1, raw / (16 * 1024));
    const unsigned T = static_cast<unsigned>(
        std::min<std::size_t>(std::max(1u, threads), max_useful));

    const auto slice_begin = [raw, T](unsigned t) {
        return raw * t / T;
    };

    // Phase 1 (parallel): per-thread, per-row counts of the symmetrized
    // directed edges each slice of the raw list contributes.
    std::vector<std::vector<EdgeId>> counts(
        T, std::vector<EdgeId>(n, 0));
    forkJoin(T, [&](unsigned t) {
        std::vector<EdgeId>& c = counts[t];
        const std::size_t end = slice_begin(t + 1);
        for (std::size_t i = slice_begin(t); i < end; ++i) {
            const VertexId u = srcs_[i];
            const VertexId v = dsts_[i];
            if (u == v) {
                if (keepSelfLoops_)
                    c[u]++;
                continue;
            }
            c[u]++;
            c[v]++;
        }
    });

    // Phase 2 (serial, O(|V| x T)): raw per-row offsets, and each
    // (thread, row) count turned into that thread's absolute write
    // cursor — row segments are laid out [thread 0's part | thread 1's
    // part | ...], so scatter writes are disjoint by construction.
    std::vector<EdgeId> raw_offsets(n + 1);
    EdgeId acc = 0;
    for (std::size_t v = 0; v < n; ++v) {
        raw_offsets[v] = acc;
        for (unsigned t = 0; t < T; ++t) {
            const EdgeId part = counts[t][v];
            counts[t][v] = acc;
            acc += part;
        }
    }
    raw_offsets[n] = acc;

    // Phase 3 (parallel): scatter edge targets into their row segments.
    std::vector<VertexId> scratch(acc);
    forkJoin(T, [&](unsigned t) {
        std::vector<EdgeId>& cursor = counts[t];
        const std::size_t end = slice_begin(t + 1);
        for (std::size_t i = slice_begin(t); i < end; ++i) {
            const VertexId u = srcs_[i];
            const VertexId v = dsts_[i];
            if (u == v) {
                if (keepSelfLoops_)
                    scratch[cursor[u]++] = u;
                continue;
            }
            scratch[cursor[u]++] = v;
            scratch[cursor[v]++] = u;
        }
    });

    // Phase 4 (parallel): sort + dedupe each row in place. Rows are
    // partitioned into contiguous ranges of roughly equal edge mass so
    // one hub-heavy stretch doesn't serialize the phase.
    std::vector<VertexId> row_split(T + 1, 0);
    row_split[T] = static_cast<VertexId>(n);
    for (unsigned t = 1; t < T; ++t) {
        const EdgeId target =
            static_cast<EdgeId>(static_cast<std::uint64_t>(acc) * t / T);
        row_split[t] = static_cast<VertexId>(
            std::upper_bound(raw_offsets.begin(), raw_offsets.end() - 1,
                             target) -
            raw_offsets.begin());
        row_split[t] = std::max(row_split[t], row_split[t - 1]);
    }
    std::vector<EdgeId> dedup_len(n);
    forkJoin(T, [&](unsigned t) {
        for (VertexId v = row_split[t]; v < row_split[t + 1]; ++v) {
            VertexId* const first = scratch.data() + raw_offsets[v];
            VertexId* const last = scratch.data() + raw_offsets[v + 1];
            std::sort(first, last);
            dedup_len[v] =
                static_cast<EdgeId>(std::unique(first, last) - first);
        }
    });

    // Phase 5: final offsets (serial prefix), then parallel compaction
    // and weight derivation over the same row ranges.
    std::vector<EdgeId> offsets(n + 1);
    EdgeId total = 0;
    for (std::size_t v = 0; v < n; ++v) {
        offsets[v] = total;
        total += dedup_len[v];
    }
    offsets[n] = total;
    std::vector<VertexId> cols(total);
    std::vector<std::uint32_t> weights;
    if (with_weights)
        weights.resize(total);
    forkJoin(T, [&](unsigned t) {
        for (VertexId v = row_split[t]; v < row_split[t + 1]; ++v) {
            const VertexId* const src = scratch.data() + raw_offsets[v];
            const EdgeId base = offsets[v];
            for (EdgeId i = 0; i < dedup_len[v]; ++i) {
                cols[base + i] = src[i];
                if (with_weights)
                    weights[base + i] = pairWeight(v, src[i]);
            }
        }
    });
    return CsrGraph(std::move(offsets), std::move(cols), std::move(weights));
}

CsrGraph
GraphBuilder::buildReferenceSort(bool with_weights) const
{
    // Symmetrize: every raw edge contributes both directions; self-loops
    // are dropped (or kept as a single u->u edge). Dedup happens after
    // sorting per row.
    std::vector<std::uint64_t> pairs;
    pairs.reserve(srcs_.size() * 2);
    for (std::size_t i = 0; i < srcs_.size(); ++i) {
        const VertexId u = srcs_[i];
        const VertexId v = dsts_[i];
        if (u == v) {
            if (keepSelfLoops_)
                pairs.push_back((static_cast<std::uint64_t>(u) << 32) | v);
            continue;
        }
        pairs.push_back((static_cast<std::uint64_t>(u) << 32) | v);
        pairs.push_back((static_cast<std::uint64_t>(v) << 32) | u);
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

    std::vector<EdgeId> offsets(static_cast<std::size_t>(numVertices_) + 1, 0);
    for (std::uint64_t p : pairs)
        offsets[(p >> 32) + 1]++;
    for (std::size_t v = 0; v < numVertices_; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<VertexId> cols(pairs.size());
    std::vector<std::uint32_t> weights;
    if (with_weights)
        weights.resize(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        cols[i] = static_cast<VertexId>(pairs[i] & 0xffffffffu);
        if (with_weights) {
            weights[i] =
                pairWeight(static_cast<VertexId>(pairs[i] >> 32), cols[i]);
        }
    }
    return CsrGraph(std::move(offsets), std::move(cols), std::move(weights));
}

} // namespace gga
