#include "graph/builder.hpp"

#include <algorithm>

#include "support/log.hpp"
#include "support/rng.hpp"

namespace gga {

GraphBuilder::GraphBuilder(VertexId num_vertices) : numVertices_(num_vertices)
{
}

void
GraphBuilder::addEdge(VertexId u, VertexId v)
{
    GGA_ASSERT(u < numVertices_ && v < numVertices_,
               "edge endpoint out of range: ", u, "->", v);
    srcs_.push_back(u);
    dsts_.push_back(v);
}

void
GraphBuilder::addUndirected(VertexId u, VertexId v)
{
    addEdge(u, v);
    addEdge(v, u);
}

std::uint32_t
pairWeight(VertexId u, VertexId v)
{
    const VertexId lo = std::min(u, v);
    const VertexId hi = std::max(u, v);
    return 1u + static_cast<std::uint32_t>(hashCombine(lo, hi) % 31ull);
}

CsrGraph
GraphBuilder::build(bool with_weights) const
{
    // Symmetrize: every raw edge contributes both directions; self-loops
    // are dropped (or kept as a single u->u edge). Dedup happens after
    // sorting per row.
    std::vector<std::uint64_t> pairs;
    pairs.reserve(srcs_.size() * 2);
    for (std::size_t i = 0; i < srcs_.size(); ++i) {
        const VertexId u = srcs_[i];
        const VertexId v = dsts_[i];
        if (u == v) {
            if (keepSelfLoops_)
                pairs.push_back((static_cast<std::uint64_t>(u) << 32) | v);
            continue;
        }
        pairs.push_back((static_cast<std::uint64_t>(u) << 32) | v);
        pairs.push_back((static_cast<std::uint64_t>(v) << 32) | u);
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

    std::vector<EdgeId> offsets(static_cast<std::size_t>(numVertices_) + 1, 0);
    for (std::uint64_t p : pairs)
        offsets[(p >> 32) + 1]++;
    for (std::size_t v = 0; v < numVertices_; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<VertexId> cols(pairs.size());
    std::vector<std::uint32_t> weights;
    if (with_weights)
        weights.resize(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        cols[i] = static_cast<VertexId>(pairs[i] & 0xffffffffu);
        if (with_weights) {
            weights[i] =
                pairWeight(static_cast<VertexId>(pairs[i] >> 32), cols[i]);
        }
    }
    return CsrGraph(std::move(offsets), std::move(cols), std::move(weights));
}

} // namespace gga
