/**
 * @file
 * Simulated system parameters (paper Table IV), in GPU core cycles.
 *
 * Latency ranges in the paper (remote L1 hit 35-83, L2 hit 29-61, memory
 * 197-261 cycles) arise here from the 4x4 mesh hop distances plus the fixed
 * bank/DRAM components below.
 */

#ifndef GGA_SIM_PARAMS_HPP
#define GGA_SIM_PARAMS_HPP

#include <cstdint>

#include "support/types.hpp"

namespace gga {

/** All tunable hardware parameters of the simulated CPU-GPU system. */
struct SimParams
{
    // --- GPU organization ---
    std::uint32_t numSms = 15;
    std::uint32_t warpSize = 32;
    std::uint32_t threadBlockSize = 256;
    /** Max thread blocks resident per SM (occupancy / TLP). */
    std::uint32_t maxBlocksPerSm = 6;

    // --- L1 (per SM) ---
    std::uint32_t lineBytes = 64;
    std::uint32_t l1SizeKiB = 32;
    std::uint32_t l1Assoc = 8;
    std::uint32_t l1Mshrs = 128;
    std::uint32_t storeBufferEntries = 128;
    Cycles l1HitLatency = 1;
    /** DeNovo: atomic executed on an owned line at the L1. */
    Cycles l1AtomicLatency = 10;
    /** DeNovo/L1: per-word serialization of local atomics. */
    Cycles l1AtomicServiceInterval = 2;
    /** Flash self-invalidation at acquires. */
    Cycles flashInvalidateLatency = 8;

    // --- L2 (shared, banked NUCA) ---
    std::uint32_t l2SizeKiB = 4096;
    std::uint32_t l2Banks = 16;
    std::uint32_t l2Assoc = 16;
    Cycles l2BankLatency = 28;
    /** Bank occupancy per data access. */
    Cycles l2ServiceInterval = 2;
    /** Bank occupancy and per-word serialization per L2 atomic. */
    Cycles atomicServiceInterval = 2;
    /** Bank occupancy of a DeNovo ownership registration (directory RMW). */
    Cycles directoryServiceInterval = 4;

    // --- NoC (4x4 mesh; SMs on nodes 0-14, one L2 bank per node) ---
    Cycles nocPerHopLatency = 3;
    Cycles nocRouterLatency = 1;
    /** SM NoC port occupancy per request/response message pair. */
    Cycles nocPortInterval = 2;

    // --- DRAM ---
    Cycles dramLatency = 170;
    std::uint32_t dramChannels = 16;
    Cycles dramServiceInterval = 4;

    // --- Consistency ---
    /** DRFrlx: max outstanding relaxed atomic instructions per warp. */
    std::uint32_t relaxedAtomicWindow = 64;

    // --- Host/kernel interface ---
    Cycles kernelLaunchOverhead = 500;

    /** Warps per thread block (derived). */
    std::uint32_t
    warpsPerBlock() const
    {
        return (threadBlockSize + warpSize - 1) / warpSize;
    }

    /** Max resident warps per SM (derived). */
    std::uint32_t
    maxWarpsPerSm() const
    {
        return maxBlocksPerSm * warpsPerBlock();
    }

    /** Panic if the parameter combination is unusable. */
    void validate() const;

    /**
     * Field-wise equality (work units omit their params override when it
     * matches the app's registered preset).
     */
    bool operator==(const SimParams&) const = default;
};

} // namespace gga

#endif // GGA_SIM_PARAMS_HPP
