/**
 * @file
 * GSI-style stall classification (Alsop et al., ISPASS 2016; paper
 * Sec. V-C): every SM cycle is Busy, Comp, Data, Sync, or Idle.
 */

#ifndef GGA_SIM_STALL_HPP
#define GGA_SIM_STALL_HPP

#include <cstdint>
#include <string>

#include "support/types.hpp"

namespace gga {

/** What a blocked warp is waiting on. */
enum class WaitCat : std::uint8_t
{
    Comp = 0, ///< occupied computation unit / result of a computation
    Data = 1, ///< non-atomic memory (loads, store acceptance, MSHR/SB full)
    Sync = 2, ///< atomic results, barriers, flush/invalidate at syncs
};

/** Cycle breakdown of one SM or aggregated over SMs. */
struct StallBreakdown
{
    double busy = 0.0;
    double comp = 0.0;
    double data = 0.0;
    double sync = 0.0;
    double idle = 0.0;

    double
    total() const
    {
        return busy + comp + data + sync + idle;
    }

    /** Field-wise equality (determinism / shard-invariance tests). */
    bool operator==(const StallBreakdown&) const = default;

    StallBreakdown&
    operator+=(const StallBreakdown& o)
    {
        busy += o.busy;
        comp += o.comp;
        data += o.data;
        sync += o.sync;
        idle += o.idle;
        return *this;
    }
};

/** One-line "busy=12% comp=3% ..." summary. */
std::string describeBreakdown(const StallBreakdown& b);

/**
 * Per-SM cycle accounting. Driven by state-change notifications:
 * a cycle with an instruction issue is Busy; a cycle with no resident
 * unfinished warp is Idle; any other cycle is split across Comp/Data/Sync
 * proportionally to the blocked warps' wait categories.
 */
class SmAccounting
{
  public:
    /** An instruction issued at cycle @p t. */
    void onIssue(Cycles t);

    /** A warp blocked at @p t waiting on @p cat. */
    void blockWarp(WaitCat cat, Cycles t);

    /** A warp waiting on @p cat unblocked at @p t. */
    void unblockWarp(WaitCat cat, Cycles t);

    /** A warp became resident (dispatch) at @p t. */
    void warpArrived(Cycles t);

    /** A resident warp fully finished at @p t. */
    void warpFinished(Cycles t);

    /** Account the interval up to @p t with the current state. */
    void catchUp(Cycles t);

    /** Directly account [from, to) to one category (kernel-edge costs). */
    void accountExplicit(WaitCat cat, Cycles from, Cycles to);

    const StallBreakdown& breakdown() const { return bd_; }

    std::uint32_t unfinishedWarps() const { return unfinished_; }

  private:
    void account(Cycles up_to);

    StallBreakdown bd_;
    Cycles lastEnd_ = 0;
    std::uint32_t blocked_[3] = {0, 0, 0};
    std::uint32_t unfinished_ = 0;
};

} // namespace gga

#endif // GGA_SIM_STALL_HPP
