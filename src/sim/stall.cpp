#include "sim/stall.hpp"

#include <cstdio>

#include "support/log.hpp"

namespace gga {

std::string
describeBreakdown(const StallBreakdown& b)
{
    const double t = b.total();
    if (t <= 0.0)
        return "(empty)";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "busy=%.1f%% comp=%.1f%% data=%.1f%% sync=%.1f%% "
                  "idle=%.1f%%",
                  100.0 * b.busy / t, 100.0 * b.comp / t, 100.0 * b.data / t,
                  100.0 * b.sync / t, 100.0 * b.idle / t);
    return buf;
}

void
SmAccounting::account(Cycles up_to)
{
    if (up_to <= lastEnd_)
        return;
    const double gap = static_cast<double>(up_to - lastEnd_);
    lastEnd_ = up_to;
    if (unfinished_ == 0) {
        bd_.idle += gap;
        return;
    }
    const std::uint32_t total = blocked_[0] + blocked_[1] + blocked_[2];
    if (total == 0) {
        // Resident warps exist but none is blocked and none issued: this
        // only happens in dispatch/teardown slivers; treat as idle.
        bd_.idle += gap;
        return;
    }
    const double unit = gap / static_cast<double>(total);
    bd_.comp += unit * blocked_[static_cast<int>(WaitCat::Comp)];
    bd_.data += unit * blocked_[static_cast<int>(WaitCat::Data)];
    bd_.sync += unit * blocked_[static_cast<int>(WaitCat::Sync)];
}

void
SmAccounting::onIssue(Cycles t)
{
    account(t);
    bd_.busy += 1.0;
    lastEnd_ = t + 1;
}

void
SmAccounting::blockWarp(WaitCat cat, Cycles t)
{
    account(t);
    blocked_[static_cast<int>(cat)]++;
}

void
SmAccounting::unblockWarp(WaitCat cat, Cycles t)
{
    account(t);
    GGA_ASSERT(blocked_[static_cast<int>(cat)] > 0,
               "unblock without matching block");
    blocked_[static_cast<int>(cat)]--;
}

void
SmAccounting::warpArrived(Cycles t)
{
    account(t);
    ++unfinished_;
}

void
SmAccounting::warpFinished(Cycles t)
{
    account(t);
    GGA_ASSERT(unfinished_ > 0, "warp finished on empty SM");
    --unfinished_;
}

void
SmAccounting::catchUp(Cycles t)
{
    account(t);
}

void
SmAccounting::accountExplicit(WaitCat cat, Cycles from, Cycles to)
{
    account(from);
    if (to <= lastEnd_)
        return;
    const double gap = static_cast<double>(to - lastEnd_);
    lastEnd_ = to;
    switch (cat) {
      case WaitCat::Comp:
        bd_.comp += gap;
        break;
      case WaitCat::Data:
        bd_.data += gap;
        break;
      case WaitCat::Sync:
        bd_.sync += gap;
        break;
    }
}

} // namespace gga
