/**
 * @file
 * Generic set-associative, LRU tag array. Shared by the per-SM L1s and the
 * L2 banks; coherence semantics live in the controllers, this class only
 * tracks line presence and state.
 */

#ifndef GGA_SIM_CACHE_HPP
#define GGA_SIM_CACHE_HPP

#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace gga {

/** State of a cached line. Meaning depends on the owning controller. */
enum class LineState : std::uint8_t
{
    Invalid = 0,
    Valid,  ///< clean copy (GPU L1 / DeNovo non-owned / L2 clean)
    Dirty,  ///< modified, unflushed (GPU L1 write-combining / L2 vs DRAM)
    Owned,  ///< DeNovo L1 registered ownership (implies writable)
};

/** Set-associative LRU tag array. All addresses must be line-aligned. */
class SetAssocCache
{
  public:
    SetAssocCache(std::uint32_t size_bytes, std::uint32_t assoc,
                  std::uint32_t line_bytes);

    /** State of @p line; bumps LRU on hit. Invalid if absent. */
    LineState lookup(Addr line);

    /** Mutable state pointer without an LRU bump; nullptr if absent. */
    LineState* find(Addr line);

    /** A displaced line from insert(). */
    struct Eviction
    {
        Addr line = 0;
        LineState state = LineState::Invalid;
    };

    /**
     * Insert @p line in state @p st (must not be present). Returns the
     * evicted valid line, if any.
     */
    Eviction insert(Addr line, LineState st);

    /** Drop @p line if present. */
    void invalidate(Addr line);

    /** Collect all lines currently in state @p st. */
    std::vector<Addr> collectLines(LineState st) const;

    /**
     * Append all lines in state @p st to @p out. Callers on the hot path
     * (release flushes) pass a reused scratch buffer so a flush does not
     * allocate a fresh vector.
     */
    void collectLines(LineState st, std::vector<Addr>& out) const;

    /**
     * Invalidate every line for which @p keep_owned is false or the state
     * is not Owned. Returns the number of lines invalidated. Used for
     * flash self-invalidation (GPU: everything; DeNovo: non-owned only).
     */
    std::uint64_t invalidateForAcquire(bool keep_owned);

    /** Downgrade all Dirty lines to Valid (after a release flush). */
    void cleanDirty();

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

  private:
    struct Way
    {
        Addr line = 0;
        LineState state = LineState::Invalid;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t setOf(Addr line) const;

    std::uint32_t numSets_;
    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::uint64_t useClock_ = 0;
    std::vector<Way> ways_; // numSets_ x assoc_, row-major
};

} // namespace gga

#endif // GGA_SIM_CACHE_HPP
