#include "sim/params.hpp"

#include "support/log.hpp"

namespace gga {

namespace {

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

void
SimParams::validate() const
{
    GGA_ASSERT(numSms >= 1 && numSms <= 15,
               "numSms must fit the 4x4 mesh minus the CPU node");
    GGA_ASSERT(isPow2(warpSize), "warp size must be a power of two");
    GGA_ASSERT(threadBlockSize % warpSize == 0,
               "thread block size must be a warp multiple");
    GGA_ASSERT(isPow2(lineBytes), "line size must be a power of two");
    GGA_ASSERT(l2Banks == 16, "the 4x4 mesh hosts exactly 16 L2 banks");
    GGA_ASSERT(maxBlocksPerSm >= 1, "need at least one resident block");
    GGA_ASSERT(relaxedAtomicWindow >= 1, "relaxed window must be >= 1");
    const std::uint64_t l1_lines =
        static_cast<std::uint64_t>(l1SizeKiB) * 1024 / lineBytes;
    GGA_ASSERT(l1_lines % l1Assoc == 0, "L1 geometry must divide evenly");
    const std::uint64_t l2_lines = static_cast<std::uint64_t>(l2SizeKiB) *
                                   1024 / lineBytes / l2Banks;
    GGA_ASSERT(l2_lines % l2Assoc == 0, "L2 geometry must divide evenly");
}

} // namespace gga
