#include "sim/gpu.hpp"

#include "support/log.hpp"

namespace gga {

Gpu::Gpu(const SimParams& params, CoherenceKind coh, ConsistencyKind con)
    : params_(params), coh_(coh), con_(con), noc_(params), dram_(params)
{
    params_.validate();
    l2_ = std::make_unique<L2System>(engine_, params_, noc_, dram_);
    l2_->setRecallHandler([this](std::uint32_t sm_id, Addr line) {
        l1s_[sm_id]->onRecall(line);
    });
    const ConsistencySpec spec = makeConsistencySpec(con, params_);
    for (std::uint32_t s = 0; s < params_.numSms; ++s) {
        l1s_.push_back(std::make_unique<L1Controller>(engine_, params_, coh,
                                                      s, *l2_));
        sms_.push_back(std::make_unique<SmCore>(engine_, params_, s,
                                                *l1s_[s], spec));
        sms_[s]->setBlockCompleteHandler(
            [this, s](std::uint32_t) { onBlockComplete(s); });
    }
}

Gpu::~Gpu() = default;

void
Gpu::dispatchBlocks()
{
    // Greedy refill: hand pending blocks to any SM with a free slot.
    for (std::uint32_t s = 0; s < params_.numSms && nextBlock_ < numBlocks_;
         ++s) {
        SmCore& sm = *sms_[s];
        while (sm.residentBlocks() < params_.maxBlocksPerSm &&
               nextBlock_ < numBlocks_) {
            const std::uint32_t block = nextBlock_++;
            const std::uint32_t first = block * params_.threadBlockSize;
            const std::uint32_t count =
                std::min(params_.threadBlockSize, gridThreads_ - first);
            sm.startBlock(block, first, count, *currentFactory_);
        }
    }
}

void
Gpu::onBlockComplete(std::uint32_t sm_id)
{
    ++blocksDone_;
    if (nextBlock_ < numBlocks_) {
        SmCore& sm = *sms_[sm_id];
        while (sm.residentBlocks() < params_.maxBlocksPerSm &&
               nextBlock_ < numBlocks_) {
            const std::uint32_t block = nextBlock_++;
            const std::uint32_t first = block * params_.threadBlockSize;
            const std::uint32_t count =
                std::min(params_.threadBlockSize, gridThreads_ - first);
            sm.startBlock(block, first, count, *currentFactory_);
        }
    }
}

void
Gpu::launch(const std::string& name, std::uint32_t num_threads,
            const WarpFactory& make_warp)
{
    GGA_ASSERT(num_threads > 0, "kernel '", name, "' with zero threads");
    ++kernelsLaunched_;
    const Cycles launch_start = engine_.now();

    currentFactory_ = &make_warp;
    gridThreads_ = num_threads;
    numBlocks_ =
        (num_threads + params_.threadBlockSize - 1) / params_.threadBlockSize;
    nextBlock_ = 0;
    blocksDone_ = 0;

    l2_->beginKernel();
    for (auto& l1 : l1s_)
        l1->beginKernel();

    // Kernel-entry acquire: flash self-invalidation on every SM (DeNovo
    // keeps owned lines). State change is immediate; the latency is part
    // of the launch overhead.
    for (auto& l1 : l1s_)
        l1->acquireInvalidate([] {});

    engine_.schedule(params_.kernelLaunchOverhead,
                     [this] { dispatchBlocks(); });
    engine_.run();

    GGA_ASSERT(blocksDone_ == numBlocks_, "kernel '", name,
               "' finished with pending blocks");

    // Kernel-exit release: GPU coherence flushes dirty lines; both
    // protocols drain outstanding stores/atomics. Attribute this window
    // to Sync on each SM, then align every SM to the global end (Idle).
    const Cycles warps_done = engine_.now();
    std::uint32_t flushes_left = params_.numSms;
    for (std::uint32_t s = 0; s < params_.numSms; ++s) {
        sms_[s]->accounting().catchUp(warps_done);
        l1s_[s]->releaseFlush([this, s, warps_done, &flushes_left] {
            sms_[s]->accounting().accountExplicit(WaitCat::Sync, warps_done,
                                                  engine_.now());
            --flushes_left;
        });
    }
    engine_.run();
    GGA_ASSERT(flushes_left == 0, "kernel-end flush incomplete");

    const Cycles kernel_end = engine_.now();
    (void)launch_start;
    for (auto& sm : sms_) {
        sm->accounting().catchUp(kernel_end);
        sm->clearKernelState();
    }
    currentFactory_ = nullptr;
}

StallBreakdown
Gpu::totalBreakdown() const
{
    StallBreakdown total;
    for (const auto& sm : sms_)
        total += sm->accounting().breakdown();
    return total;
}

MemStats
Gpu::memStats() const
{
    MemStats m;
    for (const auto& l1 : l1s_) {
        const L1Stats& s = l1->stats();
        m.l1LoadHits += s.loadHits;
        m.l1LoadMisses += s.loadMisses;
        m.l1Stores += s.stores;
        m.l1AtomicHits += s.atomicL1Hits;
        m.ownershipRequests += s.ownershipRequests;
        m.flushedLines += s.flushedLines;
        m.acquireInvalidatedLines += s.acquireInvalidatedLines;
        m.recalls += s.recalls;
        m.l1Retries += s.retries;
    }
    const L2Stats& l2s = l2_->stats();
    m.l2Atomics = l2s.atomics;
    m.l2Reads = l2s.reads;
    m.l2ReadMisses = l2s.readMisses;
    m.l2Writes = l2s.writes;
    m.ownershipForwards = l2s.forwards;
    m.l2ReadLagSum = l2s.readLagSum;
    m.l2AtomicLagSum = l2s.atomicLagSum;
    m.dramReads = dram_.reads();
    m.dramWrites = dram_.writes();
    return m;
}

} // namespace gga
