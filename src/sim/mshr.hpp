/**
 * @file
 * Miss Status Holding Registers: outstanding line fills with waiter
 * merging. A full table back-pressures the core (Data stalls).
 *
 * Hot-path storage: entries live in an open-addressing FlatMap (no
 * per-miss node allocation) and the per-entry waiter vectors are
 * recycled through a spare list, so steady-state misses allocate
 * nothing.
 */

#ifndef GGA_SIM_MSHR_HPP
#define GGA_SIM_MSHR_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "support/flat_map.hpp"
#include "support/types.hpp"

namespace gga {

/** What an in-flight fill will deliver. */
enum class FillKind : std::uint8_t
{
    Data,      ///< GetV: a readable copy
    Ownership, ///< GetO: a registered, writable copy (DeNovo)
};

/** Result of trying to attach a waiter to a line fill. */
enum class MshrAdd : std::uint8_t
{
    NewEntry, ///< allocated; the caller must start the actual fill
    Merged,   ///< attached to a compatible in-flight fill
    Conflict, ///< in-flight fill is weaker than required; retry later
};

/** Outstanding-miss table keyed by line address. */
class MshrTable
{
  public:
    explicit MshrTable(std::uint32_t capacity) : capacity_(capacity)
    {
        entries_.reserve(capacity);
    }

    bool full() const { return entries_.size() >= capacity_; }

    bool isPending(Addr line) const { return entries_.contains(line); }

    std::size_t inFlight() const { return entries_.size(); }

    /**
     * Register @p waiter for the fill of @p line requiring @p kind.
     *
     * A Data request merges with any in-flight fill; an Ownership request
     * merges only with an Ownership fill (a Data fill in flight yields
     * Conflict — the caller retries once it lands).
     */
    MshrAdd
    addWaiter(Addr line, FillKind kind, EventFn waiter)
    {
        if (Entry* e = entries_.find(line)) {
            if (kind == FillKind::Ownership && e->kind == FillKind::Data)
                return MshrAdd::Conflict;
            e->waiters.push_back(std::move(waiter));
            return MshrAdd::Merged;
        }
        Entry& e = entries_[line];
        e.kind = kind;
        e.waiters = takeSpareVec();
        e.waiters.push_back(std::move(waiter));
        return MshrAdd::NewEntry;
    }

    /**
     * Attach @p fn to the in-flight fill of @p line regardless of its
     * kind: used to re-try ownership upgrades once a weaker data fill
     * lands. The line must be pending.
     */
    void
    addRetryOnFill(Addr line, EventFn fn)
    {
        if (Entry* e = entries_.find(line))
            e->waiters.push_back(std::move(fn));
        else
            fn(); // fill already landed; retry immediately
    }

    /**
     * Complete the fill of @p line, appending its waiters to @p out. The
     * entry is removed (and its storage recycled) before waiters run.
     */
    void
    complete(Addr line, std::vector<EventFn>& out)
    {
        Entry* e = entries_.find(line);
        if (e == nullptr)
            return;
        for (EventFn& fn : e->waiters)
            out.push_back(std::move(fn));
        e->waiters.clear();
        recycleVec(std::move(e->waiters));
        entries_.erase(line);
    }

    /** Convenience overload returning the waiters (tests). */
    std::vector<EventFn>
    complete(Addr line)
    {
        std::vector<EventFn> out;
        complete(line, out);
        return out;
    }

  private:
    struct Entry
    {
        FillKind kind = FillKind::Data;
        std::vector<EventFn> waiters;
    };

    std::vector<EventFn>
    takeSpareVec()
    {
        if (spares_.empty())
            return {};
        std::vector<EventFn> v = std::move(spares_.back());
        spares_.pop_back();
        return v;
    }

    void
    recycleVec(std::vector<EventFn>&& v)
    {
        if (spares_.size() < capacity_)
            spares_.push_back(std::move(v));
    }

    FlatMap<Addr, Entry> entries_;
    /** Emptied waiter vectors kept warm for the next miss. */
    std::vector<std::vector<EventFn>> spares_;
    std::uint32_t capacity_;
};

} // namespace gga

#endif // GGA_SIM_MSHR_HPP
