/**
 * @file
 * Miss Status Holding Registers: outstanding line fills with waiter
 * merging. A full table back-pressures the core (Data stalls).
 */

#ifndef GGA_SIM_MSHR_HPP
#define GGA_SIM_MSHR_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "support/types.hpp"

namespace gga {

/** What an in-flight fill will deliver. */
enum class FillKind : std::uint8_t
{
    Data,      ///< GetV: a readable copy
    Ownership, ///< GetO: a registered, writable copy (DeNovo)
};

/** Result of trying to attach a waiter to a line fill. */
enum class MshrAdd : std::uint8_t
{
    NewEntry, ///< allocated; the caller must start the actual fill
    Merged,   ///< attached to a compatible in-flight fill
    Conflict, ///< in-flight fill is weaker than required; retry later
};

/** Outstanding-miss table keyed by line address. */
class MshrTable
{
  public:
    explicit MshrTable(std::uint32_t capacity) : capacity_(capacity) {}

    bool full() const { return entries_.size() >= capacity_; }

    bool isPending(Addr line) const { return entries_.count(line) != 0; }

    std::size_t inFlight() const { return entries_.size(); }

    /**
     * Register @p waiter for the fill of @p line requiring @p kind.
     *
     * A Data request merges with any in-flight fill; an Ownership request
     * merges only with an Ownership fill (a Data fill in flight yields
     * Conflict — the caller retries once it lands).
     */
    MshrAdd
    addWaiter(Addr line, FillKind kind, EventFn waiter)
    {
        auto it = entries_.find(line);
        if (it == entries_.end()) {
            Entry& e = entries_[line];
            e.kind = kind;
            e.waiters.push_back(std::move(waiter));
            return MshrAdd::NewEntry;
        }
        if (kind == FillKind::Ownership && it->second.kind == FillKind::Data)
            return MshrAdd::Conflict;
        it->second.waiters.push_back(std::move(waiter));
        return MshrAdd::Merged;
    }

    /**
     * Attach @p fn to the in-flight fill of @p line regardless of its
     * kind: used to re-try ownership upgrades once a weaker data fill
     * lands. The line must be pending.
     */
    void
    addRetryOnFill(Addr line, EventFn fn)
    {
        auto it = entries_.find(line);
        if (it != entries_.end())
            it->second.waiters.push_back(std::move(fn));
        else
            fn(); // fill already landed; retry immediately
    }

    /**
     * Complete the fill of @p line; returns the waiters to invoke.
     * The entry is removed before waiters run.
     */
    std::vector<EventFn>
    complete(Addr line)
    {
        auto it = entries_.find(line);
        if (it == entries_.end())
            return {};
        std::vector<EventFn> waiters = std::move(it->second.waiters);
        entries_.erase(it);
        return waiters;
    }

  private:
    struct Entry
    {
        FillKind kind = FillKind::Data;
        std::vector<EventFn> waiters;
    };

    std::unordered_map<Addr, Entry> entries_;
    std::uint32_t capacity_;
};

} // namespace gga

#endif // GGA_SIM_MSHR_HPP
