/**
 * @file
 * Consistency-model execution rules (paper Sec. II-C), applied per warp:
 *
 * DRF0  — every atomic is a paired release+atomic+acquire; the warp waits
 *         for the whole sequence (flush dirty, L2/L1 atomic, invalidate).
 * DRF1  — atomics are unpaired: no flush/invalidate, data accesses overlap
 *         them, but a warp's next atomic instruction waits for its
 *         previous one (program order among atomics).
 * DRFrlx — relaxed atomics also overlap each other up to a bounded window;
 *         atomics whose return value feeds the program still block.
 */

#ifndef GGA_SIM_CONSISTENCY_HPP
#define GGA_SIM_CONSISTENCY_HPP

#include <cstdint>

#include "model/design_dims.hpp"
#include "sim/params.hpp"

namespace gga {

/** Operational rules derived from a ConsistencyKind. */
struct ConsistencySpec
{
    ConsistencyKind kind = ConsistencyKind::Drf0;
    /** DRF0: release/acquire envelope around every atomic. */
    bool paired = true;
    /** Max outstanding atomic instructions per warp (1 = ordered). */
    std::uint32_t window = 1;
};

/** Build the execution rules for @p kind under @p params. */
inline ConsistencySpec
makeConsistencySpec(ConsistencyKind kind, const SimParams& params)
{
    switch (kind) {
      case ConsistencyKind::Drf0:
        return {kind, true, 1};
      case ConsistencyKind::Drf1:
        return {kind, false, 1};
      case ConsistencyKind::DrfRlx:
        return {kind, false, params.relaxedAtomicWindow};
    }
    return {};
}

} // namespace gga

#endif // GGA_SIM_CONSISTENCY_HPP
