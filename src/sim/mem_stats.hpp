/**
 * @file
 * Aggregated memory-system counters for a run (all L1s + L2 + DRAM).
 */

#ifndef GGA_SIM_MEM_STATS_HPP
#define GGA_SIM_MEM_STATS_HPP

#include <cstdint>

namespace gga {

/** Whole-run memory-system statistics. */
struct MemStats
{
    std::uint64_t l1LoadHits = 0;
    std::uint64_t l1LoadMisses = 0;
    std::uint64_t l1Stores = 0;
    std::uint64_t l1AtomicHits = 0;      ///< DeNovo atomics on owned lines
    std::uint64_t ownershipRequests = 0; ///< DeNovo GetO issued by L1s
    std::uint64_t ownershipForwards = 0; ///< remote-L1 transfers (ping-pong)
    std::uint64_t l2Atomics = 0;         ///< GPU-coherence atomics at L2
    std::uint64_t l2Reads = 0;
    std::uint64_t l2ReadMisses = 0;
    std::uint64_t l2Writes = 0;
    std::uint64_t flushedLines = 0;      ///< GPU dirty lines written at releases
    std::uint64_t acquireInvalidatedLines = 0;
    std::uint64_t recalls = 0;           ///< L1 lines invalidated by recall
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t l1Retries = 0; ///< MSHR/SB-full retry events
    std::uint64_t l2ReadLagSum = 0;
    std::uint64_t l2AtomicLagSum = 0;

    /** Field-wise equality (determinism/golden-parity tests). */
    bool operator==(const MemStats&) const = default;
};

} // namespace gga

#endif // GGA_SIM_MEM_STATS_HPP
