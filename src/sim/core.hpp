/**
 * @file
 * Streaming multiprocessor model: resident thread blocks, warp issue
 * bandwidth (one instruction per cycle), barrier coordination, and the
 * per-SM stall accounting.
 */

#ifndef GGA_SIM_CORE_HPP
#define GGA_SIM_CORE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/consistency.hpp"
#include "sim/engine.hpp"
#include "sim/l1.hpp"
#include "sim/stall.hpp"
#include "sim/warp.hpp"
#include "support/flat_map.hpp"

namespace gga {

/** Builds the warp coroutine for one warp of a kernel. */
using WarpFactory = std::function<WarpTask(Warp&)>;

/** One GPU core (SM/CU). */
class SmCore
{
  public:
    SmCore(Engine& engine, const SimParams& params, std::uint32_t sm_id,
           L1Controller& l1, const ConsistencySpec& spec);

    /** Called with the block id whenever a resident block completes. */
    void
    setBlockCompleteHandler(std::function<void(std::uint32_t)> fn)
    {
        onBlockComplete_ = std::move(fn);
    }

    /**
     * Dispatch one thread block: creates its warps and starts them after a
     * small dispatch delay.
     */
    void startBlock(std::uint32_t block_id, std::uint32_t first_thread,
                    std::uint32_t thread_count, const WarpFactory& make);

    std::uint32_t residentBlocks() const
    {
        return static_cast<std::uint32_t>(blocks_.size());
    }

    /**
     * Claim @p slots consecutive issue cycles at or after now (memory
     * instructions occupy the LSU once per generated transaction group).
     * Returns the first cycle.
     */
    Cycles claimIssueSlot(std::uint32_t slots = 1);

    /** Discard warp objects of the finished kernel. */
    void clearKernelState();

    SmAccounting& accounting() { return accounting_; }
    Engine& engine() { return engine_; }
    L1Controller& l1() { return l1_; }
    const ConsistencySpec& consistency() const { return spec_; }
    const SimParams& params() const { return params_; }
    std::uint32_t smId() const { return smId_; }

    // --- warp callbacks ---
    void onWarpFinished(Warp& w);
    void barrierArrive(Warp& w);

  private:
    struct BlockRec
    {
        std::uint32_t warpsLeft = 0;
        std::uint32_t barrierArrived = 0;
        std::vector<Warp*> atBarrier;
    };

    Engine& engine_;
    const SimParams& params_;
    std::uint32_t smId_;
    L1Controller& l1_;
    ConsistencySpec spec_;
    SmAccounting accounting_;
    Cycles issueFree_ = 0;
    FlatMap<std::uint32_t, BlockRec> blocks_;
    std::vector<std::unique_ptr<Warp>> warps_;
    std::function<void(std::uint32_t)> onBlockComplete_;

    static constexpr Cycles kDispatchDelay = 8;
};

} // namespace gga

#endif // GGA_SIM_CORE_HPP
