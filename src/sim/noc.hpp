/**
 * @file
 * 4x4 mesh network latency model (Garnet-inspired, paper Sec. V-C):
 * SMs occupy nodes 0-14, the CPU node 15; one L2 bank per node. Latency is
 * hop distance times per-hop latency plus a router constant; bandwidth is
 * modeled at the L2 bank and DRAM channel endpoints.
 */

#ifndef GGA_SIM_NOC_HPP
#define GGA_SIM_NOC_HPP

#include <cstdint>
#include <cstdlib>

#include "sim/params.hpp"
#include "support/types.hpp"

namespace gga {

/** Mesh coordinates and latency queries. */
class MeshNoc
{
  public:
    explicit MeshNoc(const SimParams& params)
        : perHop_(params.nocPerHopLatency), router_(params.nocRouterLatency)
    {
    }

    static constexpr std::uint32_t kWidth = 4;
    static constexpr std::uint32_t kNodes = 16;

    /** Manhattan hop distance between two mesh nodes. */
    std::uint32_t
    hops(std::uint32_t a, std::uint32_t b) const
    {
        const std::int32_t ax = a % kWidth, ay = a / kWidth;
        const std::int32_t bx = b % kWidth, by = b / kWidth;
        return static_cast<std::uint32_t>(std::abs(ax - bx) +
                                          std::abs(ay - by));
    }

    /** One-way message latency between nodes @p a and @p b. */
    Cycles
    latency(std::uint32_t a, std::uint32_t b) const
    {
        return router_ + perHop_ * hops(a, b);
    }

    /** Mesh node of an SM (SM i lives on node i). */
    std::uint32_t smNode(std::uint32_t sm_id) const { return sm_id; }

    /** Mesh node of an L2 bank (bank i lives on node i). */
    std::uint32_t bankNode(std::uint32_t bank) const { return bank; }

  private:
    Cycles perHop_;
    Cycles router_;
};

} // namespace gga

#endif // GGA_SIM_NOC_HPP
