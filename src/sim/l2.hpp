/**
 * @file
 * Shared banked NUCA L2 with a DeNovo ownership directory and per-bank
 * atomic units.
 *
 * GPU coherence executes atomics here (per-word serialization at the home
 * bank). DeNovo registers L1 ownership here and forwards requests to the
 * current owner (the "remote L1 hit" path). The directory is perfect
 * (never evicted) — a common idealization; capacity effects are modeled
 * for data lines only.
 */

#ifndef GGA_SIM_L2_HPP
#define GGA_SIM_L2_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/cache.hpp"
#include "sim/dram.hpp"
#include "sim/engine.hpp"
#include "sim/noc.hpp"
#include "sim/params.hpp"
#include "support/flat_map.hpp"
#include "support/types.hpp"

namespace gga {

/** Counters exposed by the L2 for tests and benches. */
struct L2Stats
{
    std::uint64_t reads = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writes = 0;
    std::uint64_t atomics = 0;       ///< GPU-coherence L2 atomics
    std::uint64_t getO = 0;          ///< DeNovo ownership registrations
    std::uint64_t forwards = 0;      ///< owner-to-requester transfers
    std::uint64_t ownerWritebacks = 0;
    // Latency accounting (sum of response-minus-request cycles).
    std::uint64_t readLagSum = 0;
    std::uint64_t atomicLagSum = 0;
};

/**
 * The entire shared memory side: 16 L2 banks on the mesh, the DeNovo
 * directory, and DRAM behind them. All completion callbacks are delivered
 * through the engine at the time the response reaches the requesting SM.
 */
class L2System
{
  public:
    L2System(Engine& engine, const SimParams& params, const MeshNoc& noc,
             Dram& dram);

    /** Handler invoked when an L1 must drop ownership of a line. */
    using RecallFn = InlineFunction<void(std::uint32_t sm_id, Addr line), 48>;
    void setRecallHandler(RecallFn fn) { recall_ = std::move(fn); }

    /** Fetch a line for reading (GetV). Forwards from a remote owner. */
    void read(std::uint32_t sm_id, Addr line, EventFn done);

    /** Write a full line (GPU write-through flush / L2-bound data). */
    void write(std::uint32_t sm_id, Addr line, EventFn done);

    /** Execute one atomic word operation at the home bank (GPU). */
    void atomic(std::uint32_t sm_id, Addr word, EventFn done);

    /** Register ownership of a line to @p sm_id (DeNovo GetO). */
    void getOwnership(std::uint32_t sm_id, Addr line, EventFn done);

    /** Owner evicted the line: write back data, clear registration. */
    void releaseOwnership(std::uint32_t sm_id, Addr line);

    /** Current registered owner of a line, if any (tests/diagnostics). */
    std::optional<std::uint32_t> ownerOf(Addr line) const;

    /** Clear per-kernel ephemeral serialization state. */
    void beginKernel();

    const L2Stats& stats() const { return stats_; }

  private:
    struct Bank
    {
        explicit Bank(const SimParams& p)
            : tags(p.l2SizeKiB * 1024 / p.l2Banks, p.l2Assoc, p.lineBytes)
        {
        }

        Cycles nextFree = 0;
        /** Dedicated atomic-unit pipeline beside the data port. */
        Cycles atomicNextFree = 0;
        SetAssocCache tags;
        /** Per-word serialization of atomics at this bank's atomic unit. */
        FlatMap<Addr, Cycles> wordNextFree;
        /** Per-line serialization of ownership handoffs. */
        FlatMap<Addr, Cycles> ownershipNextFree;
    };

    std::uint32_t bankOf(Addr line) const;

    /** Occupy the bank and return the service start time. */
    Cycles occupyBank(Bank& bank, Cycles arrival, Cycles interval);

    /**
     * Time at which the line's data is available at the bank (tag hit or
     * DRAM fill, inserting and handling L2 evictions). The fetch launches
     * at @p arrival; the result also waits for @p service_start.
     */
    Cycles dataReady(Bank& bank, Addr line, Cycles arrival,
                     Cycles service_start, LineState on_fill);

    Engine& engine_;
    const SimParams& params_;
    const MeshNoc& noc_;
    Dram& dram_;
    /** Depart through the SM's NoC injection port (bandwidth model). */
    Cycles smPortDepart(std::uint32_t sm_id, Cycles extra = 0);

    std::vector<Bank> banks_;
    std::vector<Cycles> smPortFree_;
    /** DeNovo registration directory: line -> owning SM. */
    FlatMap<Addr, std::uint32_t> owner_;
    RecallFn recall_;
    L2Stats stats_;
};

} // namespace gga

#endif // GGA_SIM_L2_HPP
