/**
 * @file
 * Discrete-event simulation engine: a deterministic time-ordered event
 * queue. Ties break by insertion sequence, so identical runs replay
 * identically.
 *
 * Implementation: a hierarchical time wheel instead of a binary min-heap.
 * Simulator delays are dominated by 0/1/small latencies, which a heap
 * pays O(log n) moves per event for; the wheel appends each event to a
 * bucket (O(1)) and pops it with a single move. Three wheel levels of
 * 1024 buckets cover deltas below 2^30 cycles (level k buckets span
 * 1024^k cycles); the rare farther event waits in an overflow list.
 *
 * Determinism: each bucket is a FIFO, every insertion into any bucket
 * happens in global schedule order (an event can only bypass a wheel
 * level after that level's bucket for its time block has been cascaded
 * down), and cascades preserve relative order — so same-time events
 * always execute in schedule order, exactly like the (time, seq) heap
 * tie-break this replaces. The swap is bit-identical: simulated cycles
 * and MemStats match the heap engine on every app x config
 * (tests/test_determinism.cpp holds the goldens).
 */

#ifndef GGA_SIM_ENGINE_HPP
#define GGA_SIM_ENGINE_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "support/inline_function.hpp"
#include "support/types.hpp"

namespace gga {

/** Callback type for events; must stay within the inline capacity. */
using EventFn = InlineFunction<void(), 48>;

/**
 * Hierarchical-time-wheel event queue. All simulator components schedule
 * through one Engine instance, giving a single global time line.
 */
class Engine
{
  public:
    Engine();

    /** Current simulated time (GPU cycles). */
    Cycles now() const { return now_; }

    /** Schedule @p fn to run @p delay cycles from now (0 allowed). */
    void schedule(Cycles delay, EventFn fn);

    /** Schedule @p fn at absolute time @p when (must be >= now). */
    void scheduleAt(Cycles when, EventFn fn);

    /** Run until the queue drains. */
    void run();

    /** Number of events executed so far (for perf diagnostics). */
    std::uint64_t processedEvents() const { return processed_; }

    bool empty() const { return pending_ == 0; }

  private:
    /** log2 of the bucket count per wheel level. */
    static constexpr std::uint32_t kLogBuckets = 10;
    static constexpr std::size_t kBuckets = std::size_t{1} << kLogBuckets;
    static constexpr Cycles kBucketMask = kBuckets - 1;
    /** Wheel levels; deltas >= 2^(3*kLogBuckets) go to the far list. */
    static constexpr std::uint32_t kLevels = 3;
    static constexpr std::size_t kBitWords = kBuckets / 64;

    struct Event
    {
        Cycles time;
        EventFn fn;
    };

    struct Level
    {
        std::array<std::vector<Event>, kBuckets> buckets;
        /** Occupancy bitmap: bit b set iff buckets[b] is nonempty. */
        std::array<std::uint64_t, kBitWords> bits{};
        std::uint64_t count = 0;
    };

    /** Digit of @p t selecting the level-@p level bucket. */
    static std::size_t
    digit(Cycles t, std::uint32_t level)
    {
        return static_cast<std::size_t>(
            (t >> (level * kLogBuckets)) & kBucketMask);
    }

    /** File an event into the wheel level (or far list) for its delta. */
    void place(Cycles when, EventFn&& fn);
    void pushBucket(std::uint32_t level, std::size_t idx, Cycles when,
                    EventFn&& fn);
    /** Execute every event in the current-time L0 bucket, in FIFO order. */
    void drainBucket(std::vector<Event>& bucket);
    /** Advance now_ to the next pending event's wheel window. */
    void advance();
    /** Move one level-@p level bucket's events down via place(). */
    void cascade(std::uint32_t level, std::size_t idx);
    /** Pull far-list events belonging to now_'s top-level block inward. */
    void refillFromFar();
    /** First nonempty bucket index >= @p from at @p level, or kBuckets. */
    std::size_t firstSetFrom(const Level& lv, std::size_t from) const;

    std::array<Level, kLevels> levels_;
    std::vector<Event> far_;
    Cycles now_ = 0;
    std::uint64_t pending_ = 0;
    std::uint64_t processed_ = 0;
};

} // namespace gga

#endif // GGA_SIM_ENGINE_HPP
