/**
 * @file
 * Discrete-event simulation engine: a deterministic time-ordered event
 * queue. Ties break by insertion sequence, so identical runs replay
 * identically.
 */

#ifndef GGA_SIM_ENGINE_HPP
#define GGA_SIM_ENGINE_HPP

#include <cstdint>
#include <vector>

#include "support/inline_function.hpp"
#include "support/types.hpp"

namespace gga {

/** Callback type for events; must stay within the inline capacity. */
using EventFn = InlineFunction<void(), 48>;

/**
 * Min-heap event queue. All simulator components schedule through one
 * Engine instance, giving a single global time line.
 */
class Engine
{
  public:
    /** Current simulated time (GPU cycles). */
    Cycles now() const { return now_; }

    /** Schedule @p fn to run @p delay cycles from now (0 allowed). */
    void schedule(Cycles delay, EventFn fn);

    /** Schedule @p fn at absolute time @p when (must be >= now). */
    void scheduleAt(Cycles when, EventFn fn);

    /** Run until the queue drains. */
    void run();

    /** Number of events executed so far (for perf diagnostics). */
    std::uint64_t processedEvents() const { return processed_; }

    bool empty() const { return heap_.empty(); }

  private:
    struct Event
    {
        Cycles time;
        std::uint64_t seq;
        EventFn fn;
    };

    /** Heap order: earliest time first, then earliest sequence. */
    static bool
    later(const Event& a, const Event& b)
    {
        return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    std::vector<Event> heap_;
    Cycles now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t processed_ = 0;
};

} // namespace gga

#endif // GGA_SIM_ENGINE_HPP
