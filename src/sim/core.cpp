#include "sim/core.hpp"

#include "support/log.hpp"

namespace gga {

SmCore::SmCore(Engine& engine, const SimParams& params, std::uint32_t sm_id,
               L1Controller& l1, const ConsistencySpec& spec)
    : engine_(engine), params_(params), smId_(sm_id), l1_(l1), spec_(spec)
{
}

void
SmCore::startBlock(std::uint32_t block_id, std::uint32_t first_thread,
                   std::uint32_t thread_count, const WarpFactory& make)
{
    GGA_ASSERT(thread_count > 0, "empty thread block");
    GGA_ASSERT(!blocks_.contains(block_id), "block already resident");
    BlockRec& rec = blocks_[block_id];

    const std::uint32_t warp_size = params_.warpSize;
    const std::uint32_t num_warps =
        (thread_count + warp_size - 1) / warp_size;
    rec.warpsLeft = num_warps;

    for (std::uint32_t w = 0; w < num_warps; ++w) {
        const std::uint32_t first = first_thread + w * warp_size;
        const std::uint32_t lanes =
            std::min(warp_size, first_thread + thread_count - first);
        auto warp = std::make_unique<Warp>(
            *this, (first_thread / warp_size) + w, block_id, first, lanes);
        Warp* wp = warp.get();
        wp->bindTask(make(*wp));
        warps_.push_back(std::move(warp));
        accounting_.warpArrived(engine_.now());
        engine_.schedule(kDispatchDelay, [wp] { wp->start(); });
    }
}

Cycles
SmCore::claimIssueSlot(std::uint32_t slots)
{
    const Cycles t = std::max(engine_.now(), issueFree_);
    issueFree_ = t + std::max<std::uint32_t>(1, slots);
    return t;
}

void
SmCore::onWarpFinished(Warp& w)
{
    accounting_.warpFinished(engine_.now());
    BlockRec* rec = blocks_.find(w.blockId());
    GGA_ASSERT(rec != nullptr, "warp finished for unknown block");
    GGA_ASSERT(rec->warpsLeft > 0, "block warp underflow");
    if (--rec->warpsLeft == 0) {
        const std::uint32_t block_id = w.blockId();
        blocks_.erase(block_id);
        if (onBlockComplete_)
            onBlockComplete_(block_id);
    }
}

void
SmCore::barrierArrive(Warp& w)
{
    BlockRec* found = blocks_.find(w.blockId());
    GGA_ASSERT(found != nullptr, "barrier for unknown block");
    BlockRec& rec = *found;
    rec.atBarrier.push_back(&w);
    rec.barrierArrived++;
    if (rec.barrierArrived == rec.warpsLeft) {
        // All live warps arrived: release everyone.
        std::vector<Warp*> release = std::move(rec.atBarrier);
        rec.atBarrier.clear();
        rec.barrierArrived = 0;
        for (Warp* wp : release) {
            engine_.schedule(1, [wp] { wp->resumeFromBarrier(); });
        }
    }
}

void
SmCore::clearKernelState()
{
    GGA_ASSERT(blocks_.empty(), "clearing SM with resident blocks");
    warps_.clear();
}

} // namespace gga
