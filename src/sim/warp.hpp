/**
 * @file
 * SIMT warp execution: each warp is a C++20 coroutine that co_awaits
 * memory/compute operations against its SM. Functional data lives in host
 * arrays; the awaited operations carry only addresses and drive timing.
 */

#ifndef GGA_SIM_WARP_HPP
#define GGA_SIM_WARP_HPP

#include <coroutine>
#include <cstdint>

#include "sim/stall.hpp"
#include "support/inline_vec.hpp"
#include "support/types.hpp"

namespace gga {

class SmCore;
struct SimParams;

/**
 * Unique lines/words of one warp instruction after coalescing. Capacity
 * allows two fused per-lane gathers (e.g. edge id + weight).
 */
using AddrSet = InlineVec<Addr, 64>;

/** Coroutine return type for warp programs. */
class WarpTask
{
  public:
    struct promise_type
    {
        WarpTask
        get_return_object()
        {
            return WarpTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { std::terminate(); }
    };

    WarpTask() = default;
    explicit WarpTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
    WarpTask(WarpTask&& o) noexcept : handle_(o.handle_)
    {
        o.handle_ = nullptr;
    }
    WarpTask& operator=(WarpTask&& o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = o.handle_;
            o.handle_ = nullptr;
        }
        return *this;
    }
    WarpTask(const WarpTask&) = delete;
    WarpTask& operator=(const WarpTask&) = delete;
    ~WarpTask() { destroy(); }

    std::coroutine_handle<promise_type> handle() const { return handle_; }
    explicit operator bool() const { return handle_ != nullptr; }

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    /** Release without destroying (ownership moved elsewhere). */
    std::coroutine_handle<promise_type>
    release()
    {
        auto h = handle_;
        handle_ = nullptr;
        return h;
    }

  private:
    std::coroutine_handle<promise_type> handle_ = nullptr;
};

/** Kinds of warp-level operations. */
enum class OpKind : std::uint8_t
{
    Compute,
    Load,
    Store,
    Atomic,
    Barrier,
};

/**
 * One warp: SIMT lane bookkeeping plus the coroutine driving it. Kernels
 * receive a Warp& and issue operations through the awaitable methods.
 */
class Warp
{
  public:
    Warp(SmCore& sm, std::uint32_t global_warp_id, std::uint32_t block_id,
         std::uint32_t first_thread, std::uint32_t lane_count);

    // --- kernel-facing API ---

    /** Global id of lane 0's thread (== vertex for 1:1 mappings). */
    std::uint32_t firstThread() const { return firstThread_; }

    /** Number of live lanes (the last warp of a grid may be partial). */
    std::uint32_t laneCount() const { return laneCount_; }

    std::uint32_t globalWarpId() const { return globalWarpId_; }
    std::uint32_t blockId() const { return blockId_; }

    const SimParams& params() const;

    /** Awaitable issued by kernel code; see the op factories below. */
    struct OpAwaiter
    {
        Warp* warp;

        bool await_ready() const noexcept { return false; }
        void
        await_suspend(std::coroutine_handle<>) const
        {
            warp->issuePendingOp();
        }
        void await_resume() const noexcept {}
    };

    /** Dependent computation of @p cycles cycles. */
    OpAwaiter compute(std::uint32_t cycles);

    /** Blocking read of the unique lines in @p lines. */
    OpAwaiter load(const AddrSet& lines);

    /** Store to the unique lines in @p lines (blocks only on acceptance). */
    OpAwaiter store(const AddrSet& lines);

    /**
     * Atomic word operations. @p needs_value marks atomics whose return
     * value feeds the program (CAS loops, racy loads) — those block the
     * warp even under DRFrlx.
     */
    OpAwaiter atomic(const AddrSet& words, bool needs_value);

    /** Thread-block barrier. */
    OpAwaiter barrier();

    // --- simulator-facing API ---

    void bindTask(WarpTask task);
    void start();
    bool finished() const { return finished_; }
    std::uint32_t outstandingAtomics() const { return outstandingAtomics_; }

    /** Resume from a barrier (scheduled by the SM). */
    void resumeFromBarrier();

  private:
    friend struct OpAwaiter;

    void issuePendingOp();
    void executeOp();
    void execAtomic();
    void launchAtomic();
    void onAtomicComplete();
    void drf0AfterRelease();
    void drf0AfterAtomic();
    void block(WaitCat cat);
    void unblock();
    void resumeNow();
    void scheduleResume(Cycles delay);

    SmCore& sm_;
    std::uint32_t globalWarpId_;
    std::uint32_t blockId_;
    std::uint32_t firstThread_;
    std::uint32_t laneCount_;

    std::coroutine_handle<WarpTask::promise_type> handle_ = nullptr;
    bool finished_ = false;

    // Pending-op descriptor (one op in flight per warp coroutine).
    OpKind opKind_ = OpKind::Compute;
    std::uint32_t opCycles_ = 0;
    const AddrSet* opAddrs_ = nullptr;
    bool opNeedsValue_ = false;

    // Blocking/consistency state.
    bool blocked_ = false;
    WaitCat blockedCat_ = WaitCat::Comp;
    std::uint32_t outstandingAtomics_ = 0;
    bool waitingForWindow_ = false;
    bool waitingForValue_ = false;
};

} // namespace gga

#endif // GGA_SIM_WARP_HPP
