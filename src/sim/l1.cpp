#include "sim/l1.hpp"

#include "support/log.hpp"

namespace gga {

L1Controller::L1Controller(Engine& engine, const SimParams& params,
                           CoherenceKind coh, std::uint32_t sm_id,
                           L2System& l2)
    : engine_(engine),
      params_(params),
      coh_(coh),
      smId_(sm_id),
      l2_(l2),
      tags_(params.l1SizeKiB * 1024, params.l1Assoc, params.lineBytes),
      mshr_(params.l1Mshrs),
      sb_(params.storeBufferEntries)
{
}

void
L1Controller::retire(Pending* req)
{
    // Move the continuation out before recycling: done() may start a new
    // request that reuses this very block.
    EventFn done = std::move(req->done);
    pendingPool_.destroy(req);
    done();
}

void
L1Controller::finishOne(Pending* req)
{
    GGA_ASSERT(req->remaining > 0, "pending request underflow");
    if (--req->remaining == 0)
        engine_.schedule(0, [this, req] { retire(req); });
}

void
L1Controller::insertLine(Addr line, LineState st)
{
    if (LineState* existing = tags_.find(line)) {
        // Upgrade in place (e.g. Valid -> Owned after a GetO).
        if (st == LineState::Owned || *existing == LineState::Invalid)
            *existing = st;
        return;
    }
    const SetAssocCache::Eviction ev = tags_.insert(line, st);
    if (ev.state == LineState::Dirty) {
        // GPU write-combining victim: write through in the background.
        l2_.write(smId_, ev.line, [] {});
    } else if (ev.state == LineState::Owned) {
        l2_.releaseOwnership(smId_, ev.line);
    }
}

void
L1Controller::fillLine(Addr line, LineState st)
{
    insertLine(line, st);
    // Fills never nest (all L2 responses arrive through the engine), so
    // one scratch vector serves every completion.
    GGA_ASSERT(fillScratch_.empty(), "re-entrant fill");
    mshr_.complete(line, fillScratch_);
    for (EventFn& waiter : fillScratch_)
        waiter();
    fillScratch_.clear();
    pumpMshrWaiters();
}

bool
L1Controller::drained() const
{
    return sb_.empty() && pendingStoreFills_ == 0;
}

void
L1Controller::maybeNotifyDrain()
{
    if (drainWaiters_.empty() || !drained())
        return;
    // finishOne only schedules the continuation, so no new flush can be
    // registered while this loop runs.
    for (Pending* req : drainWaiters_)
        finishOne(req);
    drainWaiters_.clear();
}

void
L1Controller::releaseSb()
{
    sb_.release();
    pumpSbWaiters();
    maybeNotifyDrain();
}

void
L1Controller::pumpSbWaiters()
{
    // Wake as many stalled continuations as there are free entries. A
    // woken continuation that consumes no entry (e.g. the line became
    // owned meanwhile) simply proceeds; one that still cannot proceed
    // re-queues itself — at that point the buffer is full again, so a
    // future release is guaranteed to pump it.
    std::uint32_t budget = sb_.freeEntries();
    while (budget-- > 0 && !sbWaiters_.empty())
        engine_.schedule(1, sbWaiters_.take_front());
}

void
L1Controller::pumpMshrWaiters()
{
    std::uint32_t budget = static_cast<std::uint32_t>(
        mshr_.full() ? 0 : params_.l1Mshrs - mshr_.inFlight());
    while (budget-- > 0 && !mshrWaiters_.empty())
        engine_.schedule(1, mshrWaiters_.take_front());
}

void
L1Controller::startLoadFill(Addr line, Pending* req)
{
    const MshrAdd r = mshr_.addWaiter(
        line, FillKind::Data, [this, req] { finishOne(req); });
    switch (r) {
      case MshrAdd::NewEntry:
        l2_.read(smId_, line,
                 [this, line] { fillLine(line, LineState::Valid); });
        break;
      case MshrAdd::Merged:
        break;
      case MshrAdd::Conflict:
        GGA_PANIC("data fill cannot conflict");
    }
}

void
L1Controller::retryLoadLine(Addr line, Pending* req)
{
    // The line may have been filled while we waited.
    if (tags_.lookup(line) != LineState::Invalid) {
        ++stats_.loadHits;
        finishOne(req);
        return;
    }
    if (mshr_.full() && !mshr_.isPending(line)) {
        ++stats_.retries;
        mshrWaiters_.push_back(
            [this, line, req] { retryLoadLine(line, req); });
        return;
    }
    startLoadFill(line, req);
}

void
L1Controller::load(const Addr* lines, std::uint32_t count, EventFn done)
{
    // +1 guard until the loop ends
    Pending* req = pendingPool_.create(Pending{1, std::move(done)});
    for (std::uint32_t i = 0; i < count; ++i) {
        const Addr line = lines[i];
        if (tags_.lookup(line) != LineState::Invalid) {
            ++stats_.loadHits;
            continue;
        }
        ++stats_.loadMisses;
        ++req->remaining;
        if (mshr_.full() && !mshr_.isPending(line)) {
            // Table full: wait for an entry to free up.
            ++stats_.retries;
            mshrWaiters_.push_back(
                [this, line, req] { retryLoadLine(line, req); });
        } else {
            startLoadFill(line, req);
        }
    }
    if (req->remaining == 1) {
        // Everything hit: complete after the L1 hit latency.
        req->remaining = 0; // ownership moves to the scheduled event
        engine_.schedule(params_.l1HitLatency,
                         [this, req] { retire(req); });
    } else {
        finishOne(req);
    }
}

void
L1Controller::store(const Addr* lines, std::uint32_t count, EventFn done)
{
    ++stats_.stores;
    Pending* req = pendingPool_.create(Pending{1, std::move(done)});
    stepStore(lines, count, 0, req);
}

void
L1Controller::stepStore(const Addr* lines, std::uint32_t count,
                        std::uint32_t idx, Pending* req)
{
    while (idx < count) {
        const Addr line = lines[idx];
        if (coh_ == CoherenceKind::Gpu) {
            // Write-combining: mark/allocate dirty, no fetch, no stall.
            if (LineState* st = tags_.find(line))
                *st = LineState::Dirty;
            else
                insertLine(line, LineState::Dirty);
            ++idx;
            continue;
        }
        // DeNovo: need ownership.
        const LineState st = tags_.lookup(line);
        if (st == LineState::Owned) {
            ++idx;
            continue;
        }
        if (sb_.full()) {
            ++stats_.retries;
            sbWaiters_.push_back([this, lines, count, idx, req] {
                stepStore(lines, count, idx, req);
            });
            return;
        }
        if (mshr_.full() && !mshr_.isPending(line)) {
            ++stats_.retries;
            mshrWaiters_.push_back([this, lines, count, idx, req] {
                stepStore(lines, count, idx, req);
            });
            return;
        }
        const MshrAdd r = mshr_.addWaiter(line, FillKind::Ownership, [] {});
        if (r == MshrAdd::Conflict) {
            // A plain data fill is in flight; retry once it lands.
            ++stats_.retries;
            mshr_.addRetryOnFill(line, [this, lines, count, idx, req] {
                stepStore(lines, count, idx, req);
            });
            return;
        }
        if (r == MshrAdd::NewEntry) {
            ++stats_.ownershipRequests;
            sb_.acquire();
            ++pendingStoreFills_;
            l2_.getOwnership(smId_, line, [this, line] {
                // Decrement before releaseSb so its drain check sees the
                // fully updated state.
                --pendingStoreFills_;
                releaseSb();
                fillLine(line, LineState::Owned);
            });
        }
        ++idx;
    }
    // Acceptance: the warp resumes next cycle; fills complete in background.
    engine_.schedule(1, [this, req] { retire(req); });
}

void
L1Controller::atomic(const Addr* words, std::uint32_t count, EventFn done)
{
    Pending* req = pendingPool_.create(Pending{count, std::move(done)});
    for (std::uint32_t i = 0; i < count; ++i) {
        if (coh_ == CoherenceKind::Gpu)
            stepGpuAtomic(words[i], req);
        else
            stepDeNovoAtomic(words[i], req);
    }
}

void
L1Controller::stepGpuAtomic(Addr word, Pending* req)
{
    // Atomics bypass the L1; an SB entry models the outstanding slot.
    if (sb_.full()) {
        ++stats_.retries;
        sbWaiters_.push_back(
            [this, word, req] { stepGpuAtomic(word, req); });
        return;
    }
    sb_.acquire();
    ++stats_.l2AtomicsSent;
    l2_.atomic(smId_, word, [this, req] {
        releaseSb();
        finishOne(req);
    });
}

void
L1Controller::stepDeNovoAtomic(Addr word, Pending* req)
{
    const Addr line = lineOf(word);
    if (tags_.lookup(line) == LineState::Owned) {
        ++stats_.atomicL1Hits;
        // Local execution. The atomic unit retires one word per service
        // interval (its pipeline is the throughput limit of owned
        // atomics), and same-word atomics additionally serialize.
        const Cycles unit_start = std::max(engine_.now(), atomicUnitFree_);
        atomicUnitFree_ = unit_start + params_.l1AtomicServiceInterval;
        Cycles& word_free = l1WordFree_[word];
        const Cycles start =
            std::max(unit_start + params_.l1AtomicLatency, word_free);
        word_free = start + params_.l1AtomicServiceInterval;
        engine_.scheduleAt(start + params_.l1AtomicServiceInterval,
                           [this, req] { finishOne(req); });
        return;
    }
    if (sb_.full()) {
        ++stats_.retries;
        sbWaiters_.push_back(
            [this, word, req] { stepDeNovoAtomic(word, req); });
        return;
    }
    if (mshr_.full() && !mshr_.isPending(line)) {
        ++stats_.retries;
        mshrWaiters_.push_back(
            [this, word, req] { stepDeNovoAtomic(word, req); });
        return;
    }
    const MshrAdd r = mshr_.addWaiter(
        line, FillKind::Ownership,
        [this, word, req] { stepDeNovoAtomic(word, req); });
    if (r == MshrAdd::Conflict) {
        ++stats_.retries;
        mshr_.addRetryOnFill(
            line, [this, word, req] { stepDeNovoAtomic(word, req); });
        return;
    }
    if (r == MshrAdd::NewEntry) {
        ++stats_.ownershipRequests;
        sb_.acquire();
        l2_.getOwnership(smId_, line, [this, line] {
            releaseSb();
            fillLine(line, LineState::Owned);
        });
    }
}

void
L1Controller::acquireInvalidate(EventFn done)
{
    const bool keep_owned = coh_ == CoherenceKind::DeNovo;
    stats_.acquireInvalidatedLines += tags_.invalidateForAcquire(keep_owned);
    engine_.schedule(params_.flashInvalidateLatency, std::move(done));
}

void
L1Controller::releaseFlush(EventFn done)
{
    Pending* req = pendingPool_.create(Pending{1, std::move(done)});
    if (coh_ == CoherenceKind::Gpu) {
        flushScratch_.clear();
        tags_.collectLines(LineState::Dirty, flushScratch_);
        stats_.flushedLines += flushScratch_.size();
        tags_.cleanDirty();
        req->remaining += static_cast<std::uint32_t>(flushScratch_.size());
        for (Addr line : flushScratch_)
            l2_.write(smId_, line, [this, req] { finishOne(req); });
    }
    // Drop the guard when outstanding stores/atomics have drained: either
    // right away, or when the last release/fill notifies the waiter list.
    if (drained())
        finishOne(req);
    else
        drainWaiters_.push_back(req);
}

void
L1Controller::onRecall(Addr line)
{
    ++stats_.recalls;
    tags_.invalidate(line);
}

void
L1Controller::beginKernel()
{
    GGA_ASSERT(drainWaiters_.empty(), "release flush pending across kernels");
    l1WordFree_.clear();
    atomicUnitFree_ = 0;
}

} // namespace gga
