/**
 * @file
 * Simulated unified address space. Functional data lives in host vectors
 * (DeviceBuffer<T>); the simulator only sees addresses, which drive all
 * cache/NoC/DRAM timing.
 */

#ifndef GGA_SIM_ADDRESS_SPACE_HPP
#define GGA_SIM_ADDRESS_SPACE_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/log.hpp"
#include "support/types.hpp"

namespace gga {

/** Bump allocator for the unified shared address space. */
class AddressSpace
{
  public:
    /** Allocate @p bytes aligned to a cache line; named for diagnostics. */
    Addr
    allocate(std::uint64_t bytes, const std::string& name)
    {
        constexpr Addr alignment = 256;
        const Addr base = next_;
        next_ += (bytes + alignment - 1) & ~(alignment - 1);
        allocations_.push_back({name, base, bytes});
        return base;
    }

    /** Total bytes allocated so far. */
    Addr bytesAllocated() const { return next_; }

  private:
    struct Allocation
    {
        std::string name;
        Addr base;
        std::uint64_t bytes;
    };

    Addr next_ = 0x1000; // keep address 0 unused
    std::vector<Allocation> allocations_;
};

/**
 * A typed array in the simulated address space: host-side values plus a
 * simulated base address.
 */
template <typename T>
class DeviceBuffer
{
  public:
    DeviceBuffer() = default;

    DeviceBuffer(AddressSpace& space, std::size_t n, const std::string& name,
                 T init = T{})
        : data_(n, init), base_(space.allocate(n * sizeof(T), name))
    {
    }

    /** Construct from existing host data (e.g. CSR arrays). */
    DeviceBuffer(AddressSpace& space, std::vector<T> data,
                 const std::string& name)
        : data_(std::move(data)),
          base_(space.allocate(data_.size() * sizeof(T), name))
    {
    }

    /**
     * Construct by copying borrowed host data (e.g. the arrays of an
     * mmap-backed CsrGraph); the buffer owns its copy either way since
     * simulated kernels mutate device memory.
     */
    DeviceBuffer(AddressSpace& space, std::span<const T> data,
                 const std::string& name)
        : data_(data.begin(), data.end()),
          base_(space.allocate(data_.size() * sizeof(T), name))
    {
    }

    T& operator[](std::size_t i) { return data_[i]; }
    const T& operator[](std::size_t i) const { return data_[i]; }

    /** Simulated byte address of element @p i. */
    Addr
    addrOf(std::size_t i) const
    {
        GGA_ASSERT(i < data_.size(), "DeviceBuffer index out of range");
        return base_ + i * sizeof(T);
    }

    std::size_t size() const { return data_.size(); }
    const std::vector<T>& host() const { return data_; }
    std::vector<T>& host() { return data_; }

  private:
    std::vector<T> data_;
    Addr base_ = 0;
};

} // namespace gga

#endif // GGA_SIM_ADDRESS_SPACE_HPP
