/**
 * @file
 * Store buffer capacity model: a counting semaphore over the 128 entries
 * of Table IV. Stores and in-flight (relaxed) atomics occupy entries; a
 * full buffer back-pressures the issuing warp.
 */

#ifndef GGA_SIM_STORE_BUFFER_HPP
#define GGA_SIM_STORE_BUFFER_HPP

#include <cstdint>

#include "support/log.hpp"

namespace gga {

/** Occupancy counter for the per-SM store buffer. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(std::uint32_t entries) : capacity_(entries) {}

    bool full() const { return inUse_ >= capacity_; }
    bool empty() const { return inUse_ == 0; }
    std::uint32_t inUse() const { return inUse_; }
    std::uint32_t freeEntries() const { return capacity_ - inUse_; }

    void
    acquire()
    {
        GGA_ASSERT(!full(), "store buffer overflow");
        ++inUse_;
    }

    void
    release()
    {
        GGA_ASSERT(inUse_ > 0, "store buffer underflow");
        --inUse_;
    }

  private:
    std::uint32_t capacity_;
    std::uint32_t inUse_ = 0;
};

} // namespace gga

#endif // GGA_SIM_STORE_BUFFER_HPP
