#include "sim/l2.hpp"

#include "support/log.hpp"
#include "support/rng.hpp"

namespace gga {

L2System::L2System(Engine& engine, const SimParams& params,
                   const MeshNoc& noc, Dram& dram)
    : engine_(engine), params_(params), noc_(noc), dram_(dram)
{
    banks_.reserve(params.l2Banks);
    for (std::uint32_t b = 0; b < params.l2Banks; ++b)
        banks_.emplace_back(params);
    smPortFree_.assign(params.numSms, 0);
}

Cycles
L2System::smPortDepart(std::uint32_t sm_id, Cycles extra)
{
    // Each L2 transaction consumes the SM's mesh port for the request and
    // (statistically) its response; three-party transfers cost more.
    Cycles& free = smPortFree_[sm_id];
    const Cycles depart = std::max(engine_.now(), free);
    free = depart + params_.nocPortInterval + extra;
    return depart;
}

std::uint32_t
L2System::bankOf(Addr line) const
{
    return static_cast<std::uint32_t>(
        hashMix64(line / params_.lineBytes) % banks_.size());
}

Cycles
L2System::occupyBank(Bank& bank, Cycles arrival, Cycles interval)
{
    const Cycles start = std::max(arrival, bank.nextFree);
    bank.nextFree = start + interval;
    return start;
}

Cycles
L2System::dataReady(Bank& bank, Addr line, Cycles arrival,
                    Cycles service_start, LineState on_fill)
{
    if (bank.tags.lookup(line) != LineState::Invalid) {
        LineState* st = bank.tags.find(line);
        if (on_fill == LineState::Dirty)
            *st = LineState::Dirty;
        return service_start + params_.l2BankLatency;
    }
    ++stats_.readMisses;
    // The DRAM fetch launches when the request reaches the bank's tag
    // pipeline, overlapping any queueing at serialized units; feeding a
    // future service time into the channel occupancy would make idle
    // channels look busy to unrelated requests.
    const Cycles fill = dram_.access(arrival + params_.l2BankLatency, line,
                                     /*is_write=*/false);
    const SetAssocCache::Eviction ev = bank.tags.insert(line, on_fill);
    if (ev.state == LineState::Dirty) {
        // The victim's data is already on hand; its write-back drains from
        // the write buffer starting now, not at the fill's future time.
        dram_.access(arrival + params_.l2BankLatency, ev.line,
                     /*is_write=*/true);
    }
    return std::max(fill, service_start) + params_.l2BankLatency;
}

void
L2System::read(std::uint32_t sm_id, Addr line, EventFn done)
{
    ++stats_.reads;
    const std::uint32_t b = bankOf(line);
    Bank& bank = banks_[b];
    const Cycles arrival =
        smPortDepart(sm_id) +
        noc_.latency(noc_.smNode(sm_id), noc_.bankNode(b));
    const Cycles start = occupyBank(bank, arrival, params_.l2ServiceInterval);

    Cycles data_at_bank;
    const std::uint32_t* owner = owner_.find(line);
    if (owner != nullptr && *owner != sm_id) {
        // Remote L1 owns the line: forward through the owner. Ownership is
        // unchanged by reads (DeNovo GetV).
        ++stats_.forwards;
        const std::uint32_t owner_node = noc_.smNode(*owner);
        data_at_bank = start + params_.l2BankLatency +
                       noc_.latency(noc_.bankNode(b), owner_node) +
                       params_.l1HitLatency +
                       noc_.latency(owner_node, noc_.bankNode(b));
    } else {
        data_at_bank = dataReady(bank, line, arrival, start,
                                 LineState::Valid);
    }
    const Cycles resp =
        data_at_bank + noc_.latency(noc_.bankNode(b), noc_.smNode(sm_id));
    stats_.readLagSum += resp - engine_.now();
    engine_.scheduleAt(resp, std::move(done));
}

void
L2System::write(std::uint32_t sm_id, Addr line, EventFn done)
{
    ++stats_.writes;
    const std::uint32_t b = bankOf(line);
    Bank& bank = banks_[b];
    const Cycles arrival =
        smPortDepart(sm_id) +
        noc_.latency(noc_.smNode(sm_id), noc_.bankNode(b));
    const Cycles start = occupyBank(bank, arrival, params_.l2ServiceInterval);

    // Full-line write-through: no fetch needed; allocate dirty.
    if (LineState* st = bank.tags.find(line)) {
        *st = LineState::Dirty;
    } else {
        const SetAssocCache::Eviction ev =
            bank.tags.insert(line, LineState::Dirty);
        if (ev.state == LineState::Dirty)
            dram_.access(start + params_.l2BankLatency, ev.line,
                         /*is_write=*/true);
    }
    const Cycles resp = start + params_.l2BankLatency +
                        noc_.latency(noc_.bankNode(b), noc_.smNode(sm_id));
    engine_.scheduleAt(resp, std::move(done));
}

void
L2System::atomic(std::uint32_t sm_id, Addr word, EventFn done)
{
    ++stats_.atomics;
    const Addr line = word & ~static_cast<Addr>(params_.lineBytes - 1);
    const std::uint32_t b = bankOf(line);
    Bank& bank = banks_[b];
    const Cycles arrival =
        smPortDepart(sm_id) +
        noc_.latency(noc_.smNode(sm_id), noc_.bankNode(b));
    // Atomics flow through a dedicated unit: they contend with each other
    // for its pipeline but do not block the bank's data port.
    const Cycles start = std::max(arrival, bank.atomicNextFree);
    bank.atomicNextFree = start + params_.atomicServiceInterval;
    const Cycles data = dataReady(bank, line, arrival, start,
                                  LineState::Dirty);

    // Per-word serialization at the atomic unit: same-address atomics
    // cannot overlap regardless of which warp issued them.
    Cycles& word_free = bank.wordNextFree[word];
    const Cycles exec = std::max(data, word_free);
    word_free = exec + params_.atomicServiceInterval;

    const Cycles resp = exec + params_.atomicServiceInterval +
                        noc_.latency(noc_.bankNode(b), noc_.smNode(sm_id));
    stats_.atomicLagSum += resp - engine_.now();
    engine_.scheduleAt(resp, std::move(done));
}

void
L2System::getOwnership(std::uint32_t sm_id, Addr line, EventFn done)
{
    ++stats_.getO;
    const std::uint32_t b = bankOf(line);
    Bank& bank = banks_[b];
    const Cycles arrival =
        smPortDepart(sm_id, /*extra=*/1) +
        noc_.latency(noc_.smNode(sm_id), noc_.bankNode(b));
    const Cycles start =
        occupyBank(bank, arrival, params_.directoryServiceInterval);

    // Handoffs of the same line serialize: ping-ponging ownership between
    // SMs costs a full transfer per hop of the ping-pong.
    Cycles& own_free = bank.ownershipNextFree[line];
    const Cycles svc = std::max(start, own_free);

    Cycles resp;
    const std::uint32_t* owner = owner_.find(line);
    if (owner != nullptr && *owner != sm_id) {
        ++stats_.forwards;
        const std::uint32_t prev_owner = *owner;
        const std::uint32_t owner_node = noc_.smNode(prev_owner);
        // Invalidate the previous owner when the recall message lands.
        const Cycles recall_at =
            svc + params_.l2BankLatency +
            noc_.latency(noc_.bankNode(b), owner_node);
        if (recall_)
            engine_.scheduleAt(recall_at,
                               [this, prev_owner, line] {
                                   recall_(prev_owner, line);
                               });
        resp = recall_at + params_.l1HitLatency +
               noc_.latency(owner_node, noc_.smNode(sm_id));
    } else if (owner != nullptr) {
        // Re-registration by the same SM (e.g. after a local race); ack.
        resp = svc + params_.l2BankLatency +
               noc_.latency(noc_.bankNode(b), noc_.smNode(sm_id));
    } else {
        const Cycles data =
            dataReady(bank, line, arrival, svc, LineState::Valid);
        resp = data + noc_.latency(noc_.bankNode(b), noc_.smNode(sm_id));
    }
    own_free = resp;
    owner_[line] = sm_id;
    engine_.scheduleAt(resp, std::move(done));
}

void
L2System::releaseOwnership(std::uint32_t sm_id, Addr line)
{
    const std::uint32_t* owner = owner_.find(line);
    if (owner == nullptr || *owner != sm_id)
        return; // already recalled or transferred
    owner_.erase(line);
    ++stats_.ownerWritebacks;

    const std::uint32_t b = bankOf(line);
    Bank& bank = banks_[b];
    const Cycles arrival =
        smPortDepart(sm_id) +
        noc_.latency(noc_.smNode(sm_id), noc_.bankNode(b));
    const Cycles start = occupyBank(bank, arrival, params_.l2ServiceInterval);
    if (LineState* st = bank.tags.find(line)) {
        *st = LineState::Dirty;
    } else {
        const SetAssocCache::Eviction ev =
            bank.tags.insert(line, LineState::Dirty);
        if (ev.state == LineState::Dirty)
            dram_.access(start + params_.l2BankLatency, ev.line,
                         /*is_write=*/true);
    }
}

std::optional<std::uint32_t>
L2System::ownerOf(Addr line) const
{
    const std::uint32_t* owner = owner_.find(line);
    if (owner == nullptr)
        return std::nullopt;
    return *owner;
}

void
L2System::beginKernel()
{
    // Serialization windows are short; dropping them between kernels keeps
    // the maps bounded without measurable timing impact.
    for (Bank& b : banks_) {
        b.wordNextFree.clear();
        b.ownershipNextFree.clear();
    }
}

} // namespace gga
