/**
 * @file
 * DRAM model: fixed access latency plus per-channel bandwidth
 * (service-interval occupancy), hashed across channels by line address.
 */

#ifndef GGA_SIM_DRAM_HPP
#define GGA_SIM_DRAM_HPP

#include <cstdint>
#include <vector>

#include "sim/params.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace gga {

/** Channelized DRAM timing. */
class Dram
{
  public:
    explicit Dram(const SimParams& params)
        : latency_(params.dramLatency),
          interval_(params.dramServiceInterval),
          channelFree_(params.dramChannels, 0)
    {
    }

    /**
     * Access one line at time @p t; returns the completion time (when data
     * is available at the memory controller).
     */
    Cycles
    access(Cycles t, Addr line, bool is_write)
    {
        const std::size_t ch = hashMix64(line) % channelFree_.size();
        const Cycles start = std::max(t, channelFree_[ch]);
        channelFree_[ch] = start + interval_;
        if (is_write) {
            ++writes_;
            return start + interval_; // posted write
        }
        ++reads_;
        return start + latency_;
    }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

  private:
    Cycles latency_;
    Cycles interval_;
    std::vector<Cycles> channelFree_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace gga

#endif // GGA_SIM_DRAM_HPP
