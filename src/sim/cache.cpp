#include "sim/cache.hpp"

#include "support/log.hpp"
#include "support/rng.hpp"

namespace gga {

SetAssocCache::SetAssocCache(std::uint32_t size_bytes, std::uint32_t assoc,
                             std::uint32_t line_bytes)
    : numSets_(size_bytes / line_bytes / assoc),
      assoc_(assoc),
      lineBytes_(line_bytes),
      ways_(static_cast<std::size_t>(numSets_) * assoc)
{
    GGA_ASSERT(numSets_ > 0, "cache too small for its associativity");
}

std::uint32_t
SetAssocCache::setOf(Addr line) const
{
    // Hash the line index so strided graph arrays spread across sets.
    const std::uint64_t idx = line / lineBytes_;
    return static_cast<std::uint32_t>(hashMix64(idx) % numSets_);
}

LineState
SetAssocCache::lookup(Addr line)
{
    const std::size_t base = static_cast<std::size_t>(setOf(line)) * assoc_;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way& way = ways_[base + w];
        if (way.state != LineState::Invalid && way.line == line) {
            way.lastUse = ++useClock_;
            return way.state;
        }
    }
    return LineState::Invalid;
}

LineState*
SetAssocCache::find(Addr line)
{
    const std::size_t base = static_cast<std::size_t>(setOf(line)) * assoc_;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way& way = ways_[base + w];
        if (way.state != LineState::Invalid && way.line == line)
            return &way.state;
    }
    return nullptr;
}

SetAssocCache::Eviction
SetAssocCache::insert(Addr line, LineState st)
{
    GGA_ASSERT(st != LineState::Invalid, "cannot insert an invalid line");
    const std::size_t base = static_cast<std::size_t>(setOf(line)) * assoc_;
    Way* victim = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way& way = ways_[base + w];
        GGA_ASSERT(way.state == LineState::Invalid || way.line != line,
                   "inserting a line that is already present");
        if (way.state == LineState::Invalid) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }
    Eviction ev;
    if (victim->state != LineState::Invalid) {
        ev.line = victim->line;
        ev.state = victim->state;
    }
    victim->line = line;
    victim->state = st;
    victim->lastUse = ++useClock_;
    return ev;
}

void
SetAssocCache::invalidate(Addr line)
{
    if (LineState* st = find(line))
        *st = LineState::Invalid;
}

std::vector<Addr>
SetAssocCache::collectLines(LineState st) const
{
    std::vector<Addr> out;
    collectLines(st, out);
    return out;
}

void
SetAssocCache::collectLines(LineState st, std::vector<Addr>& out) const
{
    for (const Way& w : ways_) {
        if (w.state == st)
            out.push_back(w.line);
    }
}

std::uint64_t
SetAssocCache::invalidateForAcquire(bool keep_owned)
{
    std::uint64_t count = 0;
    for (Way& w : ways_) {
        if (w.state == LineState::Invalid)
            continue;
        if (keep_owned && w.state == LineState::Owned)
            continue;
        w.state = LineState::Invalid;
        ++count;
    }
    return count;
}

void
SetAssocCache::cleanDirty()
{
    for (Way& w : ways_) {
        if (w.state == LineState::Dirty)
            w.state = LineState::Valid;
    }
}

} // namespace gga
