#include "sim/warp.hpp"

#include "sim/core.hpp"
#include "support/log.hpp"

namespace gga {

Warp::Warp(SmCore& sm, std::uint32_t global_warp_id, std::uint32_t block_id,
           std::uint32_t first_thread, std::uint32_t lane_count)
    : sm_(sm),
      globalWarpId_(global_warp_id),
      blockId_(block_id),
      firstThread_(first_thread),
      laneCount_(lane_count)
{
}

const SimParams&
Warp::params() const
{
    return sm_.params();
}

void
Warp::bindTask(WarpTask task)
{
    GGA_ASSERT(task, "binding empty warp task");
    handle_ = task.release();
}

void
Warp::start()
{
    resumeNow();
}

Warp::OpAwaiter
Warp::compute(std::uint32_t cycles)
{
    opKind_ = OpKind::Compute;
    opCycles_ = cycles == 0 ? 1 : cycles;
    opAddrs_ = nullptr;
    return OpAwaiter{this};
}

Warp::OpAwaiter
Warp::load(const AddrSet& lines)
{
    opKind_ = OpKind::Load;
    opAddrs_ = &lines;
    return OpAwaiter{this};
}

Warp::OpAwaiter
Warp::store(const AddrSet& lines)
{
    opKind_ = OpKind::Store;
    opAddrs_ = &lines;
    return OpAwaiter{this};
}

Warp::OpAwaiter
Warp::atomic(const AddrSet& words, bool needs_value)
{
    opKind_ = OpKind::Atomic;
    opAddrs_ = &words;
    opNeedsValue_ = needs_value;
    return OpAwaiter{this};
}

Warp::OpAwaiter
Warp::barrier()
{
    opKind_ = OpKind::Barrier;
    opAddrs_ = nullptr;
    return OpAwaiter{this};
}

void
Warp::issuePendingOp()
{
    // Memory instructions occupy the LSU for one cycle per coalesced
    // transaction group (4 lanes' worth); compute and barriers take one.
    std::uint32_t slots = 1;
    if (opKind_ == OpKind::Load || opKind_ == OpKind::Store ||
        opKind_ == OpKind::Atomic) {
        if (opAddrs_ && !opAddrs_->empty())
            slots = (opAddrs_->size() + 3) / 4;
    }
    const Cycles t = sm_.claimIssueSlot(slots);
    const Cycles now = sm_.engine().now();
    if (t == now) {
        executeOp();
    } else {
        sm_.engine().scheduleAt(t, [this] { executeOp(); });
    }
}

void
Warp::block(WaitCat cat)
{
    GGA_ASSERT(!blocked_, "warp double-blocked");
    blocked_ = true;
    blockedCat_ = cat;
    sm_.accounting().blockWarp(cat, sm_.engine().now());
}

void
Warp::unblock()
{
    GGA_ASSERT(blocked_, "warp not blocked");
    blocked_ = false;
    sm_.accounting().unblockWarp(blockedCat_, sm_.engine().now());
}

void
Warp::resumeNow()
{
    GGA_ASSERT(handle_ && !finished_, "resuming dead warp");
    handle_.resume();
    if (handle_.done()) {
        finished_ = true;
        handle_.destroy();
        handle_ = nullptr;
        sm_.onWarpFinished(*this);
    }
}

void
Warp::scheduleResume(Cycles delay)
{
    sm_.engine().schedule(delay, [this] { resumeNow(); });
}

void
Warp::executeOp()
{
    sm_.accounting().onIssue(sm_.engine().now());
    switch (opKind_) {
      case OpKind::Compute:
        block(WaitCat::Comp);
        sm_.engine().schedule(opCycles_, [this] {
            unblock();
            resumeNow();
        });
        break;
      case OpKind::Load:
        if (opAddrs_->empty()) {
            scheduleResume(1);
            break;
        }
        block(WaitCat::Data);
        sm_.l1().load(opAddrs_->data(), opAddrs_->size(), [this] {
            unblock();
            resumeNow();
        });
        break;
      case OpKind::Store:
        if (opAddrs_->empty()) {
            scheduleResume(1);
            break;
        }
        block(WaitCat::Data);
        sm_.l1().store(opAddrs_->data(), opAddrs_->size(), [this] {
            unblock();
            resumeNow();
        });
        break;
      case OpKind::Atomic:
        if (opAddrs_->empty()) {
            scheduleResume(1);
            break;
        }
        execAtomic();
        break;
      case OpKind::Barrier:
        block(WaitCat::Sync);
        sm_.barrierArrive(*this);
        break;
    }
}

void
Warp::execAtomic()
{
    const ConsistencySpec& spec = sm_.consistency();
    if (spec.paired) {
        // DRF0: release ; atomic ; acquire — fully blocking.
        block(WaitCat::Sync);
        sm_.l1().releaseFlush([this] { drf0AfterRelease(); });
        return;
    }
    if (outstandingAtomics_ >= spec.window) {
        // DRF1 (window 1): wait for the previous atomic instruction.
        // DRFrlx: wait for a slot in the relaxed window.
        block(WaitCat::Sync);
        waitingForWindow_ = true;
        return;
    }
    launchAtomic();
}

void
Warp::launchAtomic()
{
    ++outstandingAtomics_;
    sm_.l1().atomic(opAddrs_->data(), opAddrs_->size(),
                    [this] { onAtomicComplete(); });
    if (opNeedsValue_) {
        if (!blocked_)
            block(WaitCat::Sync);
        waitingForValue_ = true;
    } else {
        if (blocked_)
            unblock();
        scheduleResume(1); // fire-and-forget
    }
}

void
Warp::onAtomicComplete()
{
    GGA_ASSERT(outstandingAtomics_ > 0, "atomic completion underflow");
    --outstandingAtomics_;
    if (waitingForWindow_ && outstandingAtomics_ < sm_.consistency().window) {
        waitingForWindow_ = false;
        launchAtomic();
        return;
    }
    if (waitingForValue_ && outstandingAtomics_ == 0) {
        waitingForValue_ = false;
        unblock();
        scheduleResume(0);
    }
}

void
Warp::drf0AfterRelease()
{
    sm_.l1().atomic(opAddrs_->data(), opAddrs_->size(),
                    [this] { drf0AfterAtomic(); });
}

void
Warp::drf0AfterAtomic()
{
    sm_.l1().acquireInvalidate([this] {
        unblock();
        resumeNow();
    });
}

void
Warp::resumeFromBarrier()
{
    unblock();
    resumeNow();
}

} // namespace gga
