/**
 * @file
 * Per-SM L1 controller implementing both coherence protocols of the study:
 *
 * GPU coherence: write-combining L1; releases write through all dirty
 * lines; acquires flash-invalidate everything; atomics bypass the L1 and
 * execute at the L2 home bank.
 *
 * DeNovo: stores and atomics obtain registered ownership (GetO at the L2
 * directory, possibly forwarded from a remote owner L1); owned lines are
 * neither invalidated at acquires nor flushed at releases; atomics on
 * owned lines execute locally at the L1.
 *
 * Hot-path storage: per-request Pending blocks come from a freelist pool,
 * stalled continuations wait in ring buffers, and per-word serialization
 * state lives in an open-addressing FlatMap — a memory instruction in
 * steady state touches no allocator. Release flushes complete via drain
 * notification (the last outstanding store/atomic wakes them) rather
 * than by polling every few cycles.
 */

#ifndef GGA_SIM_L1_HPP
#define GGA_SIM_L1_HPP

#include <cstdint>
#include <vector>

#include "model/design_dims.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "sim/l2.hpp"
#include "sim/mshr.hpp"
#include "sim/params.hpp"
#include "sim/store_buffer.hpp"
#include "support/flat_map.hpp"
#include "support/object_pool.hpp"
#include "support/ring_buffer.hpp"
#include "support/types.hpp"

namespace gga {

/** Per-L1 counters. */
struct L1Stats
{
    std::uint64_t loadHits = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t stores = 0;
    std::uint64_t atomicL1Hits = 0;
    std::uint64_t ownershipRequests = 0;
    std::uint64_t l2AtomicsSent = 0;
    std::uint64_t flushedLines = 0;
    std::uint64_t acquireInvalidatedLines = 0;
    std::uint64_t recalls = 0;
    std::uint64_t retries = 0; ///< MSHR/SB-full retry events
};

/**
 * One SM's private L1. All `done` callbacks are delivered asynchronously
 * through the engine — never synchronously from within the request call.
 */
class L1Controller
{
  public:
    L1Controller(Engine& engine, const SimParams& params, CoherenceKind coh,
                 std::uint32_t sm_id, L2System& l2);

    /** Read @p count unique lines; done when all are present. */
    void load(const Addr* lines, std::uint32_t count, EventFn done);

    /**
     * Write @p count unique lines; done at *acceptance* (SB space secured
     * and, for DeNovo, ownership requested) — completion is off the
     * warp's critical path.
     */
    void store(const Addr* lines, std::uint32_t count, EventFn done);

    /** Perform @p count unique atomic word ops; done when all complete. */
    void atomic(const Addr* words, std::uint32_t count, EventFn done);

    /** Acquire: flash self-invalidation (DeNovo keeps owned lines). */
    void acquireInvalidate(EventFn done);

    /**
     * Release: GPU flushes all dirty lines to L2 and waits for acks;
     * both protocols additionally drain the store buffer and pending
     * ownership fills. Completion is event-driven — the flush is
     * notified the moment the last outstanding store/atomic retires
     * (not by polling on a cycle grid).
     */
    void releaseFlush(EventFn done);

    /** Lose ownership of @p line (directory recall / transfer). */
    void onRecall(Addr line);

    /** Per-kernel reset of ephemeral serialization state. */
    void beginKernel();

    const L1Stats& stats() const { return stats_; }
    CoherenceKind coherence() const { return coh_; }
    std::uint32_t smId() const { return smId_; }

    /** In-flight ownership/data fills initiated by stores (diagnostics). */
    std::uint32_t pendingStoreFills() const { return pendingStoreFills_; }
    const StoreBuffer& storeBuffer() const { return sb_; }

  private:
    /**
     * Multi-line request bookkeeping. Every load/store/atomic carries one
     * Pending block for its lifetime; blocks come from a freelist pool
     * (pendingPool_) rather than new/delete, so the per-memory-op hot
     * path performs no heap traffic.
     */
    struct Pending
    {
        std::uint32_t remaining = 0;
        EventFn done;
    };

    void finishOne(Pending* req);
    /** Run req->done and recycle the block into the pool. */
    void retire(Pending* req);
    void fillLine(Addr line, LineState st);
    void startLoadFill(Addr line, Pending* req);
    void retryLoadLine(Addr line, Pending* req);
    void stepStore(const Addr* lines, std::uint32_t count, std::uint32_t idx,
                   Pending* req);
    void stepGpuAtomic(Addr word, Pending* req);
    void stepDeNovoAtomic(Addr word, Pending* req);
    void insertLine(Addr line, LineState st);
    bool drained() const;
    /** Complete release flushes once the drain condition holds. */
    void maybeNotifyDrain();
    void releaseSb();
    void pumpSbWaiters();
    void pumpMshrWaiters();

    Addr
    lineOf(Addr a) const
    {
        return a & ~static_cast<Addr>(params_.lineBytes - 1);
    }

    Engine& engine_;
    const SimParams& params_;
    CoherenceKind coh_;
    std::uint32_t smId_;
    L2System& l2_;
    SetAssocCache tags_;
    MshrTable mshr_;
    StoreBuffer sb_;
    /** Freelist pool backing the per-request Pending blocks. */
    ObjectPool<Pending> pendingPool_;
    /** DeNovo: per-word serialization of local L1 atomics. */
    FlatMap<Addr, Cycles> l1WordFree_;
    /** DeNovo: the L1 atomic unit retires one word per service interval. */
    Cycles atomicUnitFree_ = 0;
    std::uint32_t pendingStoreFills_ = 0;
    /** Continuations stalled on store-buffer / MSHR capacity. */
    RingBuffer<EventFn> sbWaiters_;
    RingBuffer<EventFn> mshrWaiters_;
    /** Scratch for MSHR completion waiters (reused across fills). */
    std::vector<EventFn> fillScratch_;
    /** Release flushes waiting for the store buffer/fills to drain. */
    std::vector<Pending*> drainWaiters_;
    /** Scratch for dirty-line collection at releases (reused). */
    std::vector<Addr> flushScratch_;
    L1Stats stats_;

    static constexpr Cycles kRetryInterval = 4;
};

} // namespace gga

#endif // GGA_SIM_L1_HPP
