/**
 * @file
 * Top-level simulated GPU: owns the engine, memory system, SMs, and the
 * thread-block dispatcher. Kernels launch synchronously from the host's
 * perspective (the CPU driver loop in each application).
 */

#ifndef GGA_SIM_GPU_HPP
#define GGA_SIM_GPU_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/design_dims.hpp"
#include "sim/address_space.hpp"
#include "sim/core.hpp"
#include "sim/dram.hpp"
#include "sim/engine.hpp"
#include "sim/l1.hpp"
#include "sim/l2.hpp"
#include "sim/mem_stats.hpp"
#include "sim/noc.hpp"
#include "sim/params.hpp"
#include "sim/stall.hpp"

namespace gga {

/**
 * The simulated integrated GPU. Construct one per run with the coherence
 * and consistency configuration under study, allocate DeviceBuffers from
 * mem(), then launch() kernels.
 */
class Gpu
{
  public:
    Gpu(const SimParams& params, CoherenceKind coh, ConsistencyKind con);
    ~Gpu();

    Gpu(const Gpu&) = delete;
    Gpu& operator=(const Gpu&) = delete;

    /** Address allocator for DeviceBuffers. */
    AddressSpace& mem() { return space_; }

    /**
     * Launch a kernel of @p num_threads threads (vertex-per-thread grids)
     * and run it to completion, including the kernel-boundary acquire
     * (L1 self-invalidation) and release (dirty flush / drain).
     */
    void launch(const std::string& name, std::uint32_t num_threads,
                const WarpFactory& make_warp);

    /** Current simulated time (monotone across launches). */
    Cycles now() const { return engine_.now(); }

    /** Per-category cycle totals summed over SMs, all kernels so far. */
    StallBreakdown totalBreakdown() const;

    /** Aggregated memory-system counters. */
    MemStats memStats() const;

    std::uint32_t kernelsLaunched() const { return kernelsLaunched_; }
    const SimParams& params() const { return params_; }
    CoherenceKind coherence() const { return coh_; }
    ConsistencyKind consistency() const { return con_; }

    // --- component access for white-box tests ---
    Engine& engine() { return engine_; }
    L2System& l2() { return *l2_; }
    L1Controller& l1(std::uint32_t sm) { return *l1s_[sm]; }
    SmCore& sm(std::uint32_t sm) { return *sms_[sm]; }

  private:
    void dispatchBlocks();
    void onBlockComplete(std::uint32_t sm_id);

    SimParams params_;
    CoherenceKind coh_;
    ConsistencyKind con_;
    Engine engine_;
    MeshNoc noc_;
    Dram dram_;
    AddressSpace space_;
    std::unique_ptr<L2System> l2_;
    std::vector<std::unique_ptr<L1Controller>> l1s_;
    std::vector<std::unique_ptr<SmCore>> sms_;

    // Per-launch dispatcher state.
    const WarpFactory* currentFactory_ = nullptr;
    std::uint32_t gridThreads_ = 0;
    std::uint32_t nextBlock_ = 0;
    std::uint32_t numBlocks_ = 0;
    std::uint32_t blocksDone_ = 0;
    std::uint32_t kernelsLaunched_ = 0;
};

} // namespace gga

#endif // GGA_SIM_GPU_HPP
