#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "support/log.hpp"

namespace gga {

Engine::Engine() = default;

void
Engine::schedule(Cycles delay, EventFn fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

void
Engine::scheduleAt(Cycles when, EventFn fn)
{
    GGA_ASSERT(when >= now_, "cannot schedule into the past: ", when,
               " < ", now_);
    place(when, std::move(fn));
    ++pending_;
}

void
Engine::place(Cycles when, EventFn&& fn)
{
    // The highest digit (base 1024) in which `when` differs from `now_`
    // picks the wheel level; anything differing above level 2 is far.
    const Cycles delta = when ^ now_;
    if (!(delta >> kLogBuckets))
        pushBucket(0, digit(when, 0), when, std::move(fn));
    else if (!(delta >> (2 * kLogBuckets)))
        pushBucket(1, digit(when, 1), when, std::move(fn));
    else if (!(delta >> (3 * kLogBuckets)))
        pushBucket(2, digit(when, 2), when, std::move(fn));
    else
        far_.push_back(Event{when, std::move(fn)});
}

void
Engine::pushBucket(std::uint32_t level, std::size_t idx, Cycles when,
                   EventFn&& fn)
{
    Level& lv = levels_[level];
    std::vector<Event>& b = lv.buckets[idx];
    if (b.empty())
        lv.bits[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    b.push_back(Event{when, std::move(fn)});
    ++lv.count;
}

void
Engine::run()
{
    while (pending_ > 0) {
        if (levels_[0].count > 0) {
            // All L0 events live in now_'s level-1 block, at digit-0
            // indices >= the current one: the occupancy scan never wraps.
            const std::size_t idx =
                firstSetFrom(levels_[0], digit(now_, 0));
            GGA_ASSERT(idx < kBuckets, "L0 occupancy out of window");
            now_ = (now_ & ~kBucketMask) | static_cast<Cycles>(idx);
            drainBucket(levels_[0].buckets[idx]);
        } else {
            advance();
        }
    }
}

void
Engine::drainBucket(std::vector<Event>& bucket)
{
    // Index loop: a callback may append same-time events to this very
    // bucket (delay 0); they run in this sweep, in schedule order. Move
    // each event out before invoking — the append may reallocate.
    std::size_t i = 0;
    while (i < bucket.size()) {
        Event ev = std::move(bucket[i]);
        ++i;
        --pending_;
        --levels_[0].count;
        ++processed_;
        ev.fn();
    }
    bucket.clear();
    const std::size_t idx = digit(now_, 0);
    levels_[0].bits[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
}

void
Engine::advance()
{
    while (levels_[0].count == 0) {
        if (levels_[1].count > 0) {
            // Next pending level-1 block; its bucket cascades straight
            // into L0 (every event there shares the new now_'s digit 1).
            const std::size_t idx =
                firstSetFrom(levels_[1], digit(now_, 1) + 1);
            GGA_ASSERT(idx < kBuckets, "L1 occupancy behind now");
            now_ = (now_ & ~((Cycles{1} << (2 * kLogBuckets)) - 1)) |
                   (static_cast<Cycles>(idx) << kLogBuckets);
            cascade(1, idx);
            return;
        }
        if (levels_[2].count > 0) {
            const std::size_t idx =
                firstSetFrom(levels_[2], digit(now_, 2) + 1);
            GGA_ASSERT(idx < kBuckets, "L2 occupancy behind now");
            now_ = (now_ & ~((Cycles{1} << (3 * kLogBuckets)) - 1)) |
                   (static_cast<Cycles>(idx) << (2 * kLogBuckets));
            cascade(2, idx);
            continue; // the bucket landed in L1 and/or L0
        }
        // Only the far list holds events: jump to the earliest one's
        // top-level block and re-file that block's events inward.
        GGA_ASSERT(!far_.empty(), "pending events lost");
        Cycles min_time = far_.front().time;
        for (const Event& ev : far_)
            min_time = std::min(min_time, ev.time);
        now_ = min_time & ~((Cycles{1} << (3 * kLogBuckets)) - 1);
        refillFromFar();
    }
}

void
Engine::cascade(std::uint32_t level, std::size_t idx)
{
    // place() re-files each event at a strictly lower level, so the
    // source bucket is never touched while we iterate. FIFO iteration
    // keeps schedule order within every destination bucket.
    Level& lv = levels_[level];
    std::vector<Event>& b = lv.buckets[idx];
    lv.bits[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    lv.count -= b.size();
    for (Event& ev : b)
        place(ev.time, std::move(ev.fn));
    b.clear();
}

void
Engine::refillFromFar()
{
    std::vector<Event> keep;
    keep.reserve(far_.size());
    for (Event& ev : far_) {
        if ((ev.time ^ now_) >> (3 * kLogBuckets))
            keep.push_back(std::move(ev));
        else
            place(ev.time, std::move(ev.fn));
    }
    far_ = std::move(keep);
}

std::size_t
Engine::firstSetFrom(const Level& lv, std::size_t from) const
{
    if (from >= kBuckets)
        return kBuckets;
    std::size_t w = from >> 6;
    std::uint64_t word = lv.bits[w] & (~std::uint64_t{0} << (from & 63));
    while (true) {
        if (word != 0)
            return (w << 6) +
                   static_cast<std::size_t>(__builtin_ctzll(word));
        if (++w == kBitWords)
            return kBuckets;
        word = lv.bits[w];
    }
}

} // namespace gga
