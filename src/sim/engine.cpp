#include "sim/engine.hpp"

#include <utility>

#include "support/log.hpp"

namespace gga {

void
Engine::schedule(Cycles delay, EventFn fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

void
Engine::scheduleAt(Cycles when, EventFn fn)
{
    GGA_ASSERT(when >= now_, "cannot schedule into the past: ", when,
               " < ", now_);
    heap_.push_back(Event{when, seq_++, std::move(fn)});
    siftUp(heap_.size() - 1);
}

void
Engine::run()
{
    while (!heap_.empty()) {
        // Move the top event out, restore the heap, then execute. The
        // callback may schedule new events.
        Event ev = std::move(heap_.front());
        if (heap_.size() > 1) {
            heap_.front() = std::move(heap_.back());
            heap_.pop_back();
            siftDown(0);
        } else {
            heap_.pop_back();
        }
        now_ = ev.time;
        ++processed_;
        ev.fn();
    }
}

void
Engine::siftUp(std::size_t i)
{
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!later(heap_[parent], heap_[i]))
            break;
        std::swap(heap_[parent], heap_[i]);
        i = parent;
    }
}

void
Engine::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    while (true) {
        const std::size_t l = 2 * i + 1;
        const std::size_t r = 2 * i + 2;
        std::size_t best = i;
        if (l < n && later(heap_[best], heap_[l]))
            best = l;
        if (r < n && later(heap_[best], heap_[r]))
            best = r;
        if (best == i)
            break;
        std::swap(heap_[best], heap_[i]);
        i = best;
    }
}

} // namespace gga
