#include "model/partial_tree.hpp"

namespace gga {

namespace {

void
note(std::vector<std::string>* trace, std::string line)
{
    if (trace)
        trace->push_back(std::move(line));
}

} // namespace

SystemConfig
predictPartialDesignSpace(const TaxonomyProfile& profile,
                          const AlgoProperties& props,
                          const DesignSpaceRestriction& restriction,
                          std::vector<std::string>* trace)
{
    if (restriction.allowDrfRlx) {
        SystemConfig c = predictFullDesignSpace(profile, props, trace);
        if (!restriction.allowDeNovo && c.coh == CoherenceKind::DeNovo) {
            note(trace, "DeNovo unavailable -> GPU coherence");
            c.coh = CoherenceKind::Gpu;
        }
        return c;
    }

    // --- No DRFrlx (Sec. IV-B). ---
    if (props.traversal == TraversalKind::Dynamic) {
        note(trace, "AT dynamic -> push+pull, DRF1");
        const CoherenceKind coh = restriction.allowDeNovo
                                      ? CoherenceKind::DeNovo
                                      : CoherenceKind::Gpu;
        return {UpdateProp::PushPull, coh, ConsistencyKind::Drf1};
    }

    const bool reuse_med_low = profile.reuseLevel != Level::High;
    const bool imb_high_med = profile.imbalanceLevel != Level::Low;

    bool push = false;
    if (props.control == Preference::Source) {
        // First-order: control elision dominates.
        note(trace, "AC source -> push (even without DRFrlx)");
        push = true;
    } else if (props.information == Preference::Source) {
        // Second-order: hoisted loads help less than elided work, so push
        // needs structural support; medium volume suffices on this path.
        push = reuse_med_low || imb_high_med || profile.volume != Level::Low;
        note(trace, push ? "AI source + secondary criteria -> push"
                         : "AI source but graph favors caching -> pull");
    } else {
        // Neither side prefers source: strictest criteria — medium volume
        // is no longer sufficient, it must be high.
        push = reuse_med_low || imb_high_med || profile.volume == Level::High;
        note(trace, push ? "no source preference, strict criteria -> push"
                         : "no source preference -> pull");
    }

    if (!push)
        return {UpdateProp::Pull, CoherenceKind::Gpu, ConsistencyKind::Drf0};

    CoherenceKind coh;
    if (!restriction.allowDeNovo || reuse_med_low ||
        profile.volume == Level::High) {
        coh = CoherenceKind::Gpu;
    } else {
        coh = CoherenceKind::DeNovo;
    }
    note(trace, coh == CoherenceKind::Gpu ? "coherence: GPU"
                                          : "coherence: DeNovo");
    // Consistency: DRFrlx is off the table; DRF0 never wins for push.
    return {UpdateProp::Push, coh, ConsistencyKind::Drf1};
}

} // namespace gga
