#include "model/config.hpp"

#include "support/log.hpp"

namespace gga {

char
propChar(UpdateProp p)
{
    switch (p) {
      case UpdateProp::Pull:
        return 'T';
      case UpdateProp::Push:
        return 'S';
      case UpdateProp::PushPull:
        return 'D';
    }
    return '?';
}

char
cohChar(CoherenceKind c)
{
    return c == CoherenceKind::Gpu ? 'G' : 'D';
}

char
conChar(ConsistencyKind c)
{
    switch (c) {
      case ConsistencyKind::Drf0:
        return '0';
      case ConsistencyKind::Drf1:
        return '1';
      case ConsistencyKind::DrfRlx:
        return 'R';
    }
    return '?';
}

const std::string&
propLabel(UpdateProp p)
{
    static const std::string labels[] = {"Pull", "Push", "Push+Pull"};
    return labels[static_cast<int>(p)];
}

const std::string&
cohLabel(CoherenceKind c)
{
    static const std::string labels[] = {"GPU", "DeNovo"};
    return labels[static_cast<int>(c)];
}

const std::string&
conLabel(ConsistencyKind c)
{
    static const std::string labels[] = {"DRF0", "DRF1", "DRFrlx"};
    return labels[static_cast<int>(c)];
}

std::string
SystemConfig::name() const
{
    return std::string{propChar(prop), cohChar(coh), conChar(con)};
}

std::optional<SystemConfig>
tryParseConfig(std::string_view name)
{
    if (name.size() != 3)
        return std::nullopt;
    SystemConfig c;
    switch (name[0]) {
      case 'T':
        c.prop = UpdateProp::Pull;
        break;
      case 'S':
        c.prop = UpdateProp::Push;
        break;
      case 'D':
        c.prop = UpdateProp::PushPull;
        break;
      default:
        return std::nullopt;
    }
    switch (name[1]) {
      case 'G':
        c.coh = CoherenceKind::Gpu;
        break;
      case 'D':
        c.coh = CoherenceKind::DeNovo;
        break;
      default:
        return std::nullopt;
    }
    switch (name[2]) {
      case '0':
        c.con = ConsistencyKind::Drf0;
        break;
      case '1':
        c.con = ConsistencyKind::Drf1;
        break;
      case 'R':
        c.con = ConsistencyKind::DrfRlx;
        break;
      default:
        return std::nullopt;
    }
    return c;
}

SystemConfig
parseConfig(const std::string& name)
{
    const std::optional<SystemConfig> c = tryParseConfig(name);
    if (!c)
        GGA_FATAL("bad config name: '", name,
                  "', expected <prop:{T,S,D}><coh:{G,D}><con:{0,1,R}>");
    return *c;
}

std::vector<SystemConfig>
allConfigs(bool dynamic_traversal)
{
    std::vector<SystemConfig> out;
    const std::vector<UpdateProp> props =
        dynamic_traversal
            ? std::vector<UpdateProp>{UpdateProp::PushPull}
            : std::vector<UpdateProp>{UpdateProp::Pull, UpdateProp::Push};
    for (UpdateProp p : props) {
        for (CoherenceKind coh : {CoherenceKind::Gpu, CoherenceKind::DeNovo}) {
            for (ConsistencyKind con :
                 {ConsistencyKind::Drf0, ConsistencyKind::Drf1,
                  ConsistencyKind::DrfRlx}) {
                out.push_back({p, coh, con});
            }
        }
    }
    return out;
}

std::vector<SystemConfig>
figureConfigs(bool dynamic_traversal)
{
    std::vector<SystemConfig> out;
    if (dynamic_traversal) {
        for (const char* n : {"DG1", "DGR", "DD1", "DDR"})
            out.push_back(parseConfig(n));
    } else {
        for (const char* n : {"TG0", "SG1", "SGR", "SD1", "SDR"})
            out.push_back(parseConfig(n));
    }
    return out;
}

} // namespace gga
