/**
 * @file
 * Algorithmic properties of the six applications (paper Table III):
 * traversal (static/dynamic), algorithmic control, algorithmic information.
 */

#ifndef GGA_MODEL_ALGO_PROPS_HPP
#define GGA_MODEL_ALGO_PROPS_HPP

#include <array>
#include <string>

namespace gga {

/** The six applications evaluated by the paper. */
enum class AppId
{
    Pr,   ///< PageRank
    Sssp, ///< Single-Source Shortest Path
    Mis,  ///< Maximal Independent Set
    Clr,  ///< Graph Coloring
    Bc,   ///< Betweenness Centrality
    Cc,   ///< Connected Components (dynamic traversal)
};

inline constexpr std::array<AppId, 6> kAllApps = {
    AppId::Pr, AppId::Sssp, AppId::Mis, AppId::Clr, AppId::Bc, AppId::Cc,
};

/** Where information propagates (Sec. III-B1). */
enum class TraversalKind
{
    Static,  ///< updates flow along input-graph edges
    Dynamic, ///< source/target computed at run time (e.g. transitive closure)
};

/**
 * Which side a predicate (control) or property access (information) favors
 * (Sec. III-B2/3). NotApplicable marks dynamic-traversal apps whose racy
 * push+pull body has no push/pull asymmetry to exploit.
 */
enum class Preference
{
    Source,
    Target,
    Symmetric,
    NotApplicable,
};

/** Table III row. */
struct AlgoProperties
{
    TraversalKind traversal = TraversalKind::Static;
    Preference control = Preference::Symmetric;
    Preference information = Preference::Symmetric;
};

/** Properties of @p app (values of the paper's Table III). */
const AlgoProperties& algoProperties(AppId app);

/** Short uppercase name ("PR", "SSSP", ...). */
const std::string& appName(AppId app);

/** Human-readable labels for table output. */
const std::string& traversalLabel(TraversalKind t);
const std::string& preferenceLabel(Preference p);

} // namespace gga

#endif // GGA_MODEL_ALGO_PROPS_HPP
