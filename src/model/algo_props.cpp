#include "model/algo_props.hpp"

namespace gga {

const AlgoProperties&
algoProperties(AppId app)
{
    // Verbatim Table III. Determined in the paper by manual inspection of
    // the kernels; our kernel implementations mirror these structures.
    static const AlgoProperties props[] = {
        // PR: no predicates (symmetric control); rank/degree of the source
        // is hoisted by push (source information).
        {TraversalKind::Static, Preference::Symmetric, Preference::Source},
        // SSSP: frontier predicate on the source; dist[s] hoisted by push.
        {TraversalKind::Static, Preference::Source, Preference::Source},
        // MIS: both sides predicate on "undecided"; both sides read
        // priorities.
        {TraversalKind::Static, Preference::Symmetric, Preference::Symmetric},
        // CLR: both sides predicate on "uncolored"; pull hoists the
        // target's accumulating state.
        {TraversalKind::Static, Preference::Symmetric, Preference::Target},
        // BC: frontier predicate on the source; sigma/delta read both sides.
        {TraversalKind::Static, Preference::Source, Preference::Symmetric},
        // CC: dynamic pointer-chasing traversal; no push/pull asymmetry.
        {TraversalKind::Dynamic, Preference::NotApplicable,
         Preference::NotApplicable},
    };
    return props[static_cast<int>(app)];
}

const std::string&
appName(AppId app)
{
    static const std::string names[] = {"PR", "SSSP", "MIS",
                                        "CLR", "BC", "CC"};
    return names[static_cast<int>(app)];
}

const std::string&
traversalLabel(TraversalKind t)
{
    static const std::string labels[] = {"Static", "Dynamic"};
    return labels[static_cast<int>(t)];
}

const std::string&
preferenceLabel(Preference p)
{
    static const std::string labels[] = {"Source", "Target", "Symmetric",
                                         "-"};
    return labels[static_cast<int>(p)];
}

} // namespace gga
