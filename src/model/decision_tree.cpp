#include "model/decision_tree.hpp"

namespace gga {

namespace {

void
note(std::vector<std::string>* trace, std::string line)
{
    if (trace)
        trace->push_back(std::move(line));
}

bool
reuseMedOrLow(const TaxonomyProfile& p)
{
    return p.reuseLevel != Level::High;
}

bool
imbalanceHighOrMed(const TaxonomyProfile& p)
{
    return p.imbalanceLevel != Level::Low;
}

} // namespace

SystemConfig
predictFullDesignSpace(const TaxonomyProfile& profile,
                       const AlgoProperties& props,
                       std::vector<std::string>* trace)
{
    // AT: dynamic traversal fixes push+pull; DeNovo exploits the shrinking
    // racy working set; DRF1 because racy values feed control flow, so
    // relaxation buys little and costs programmability (Sec. IV-A4).
    if (props.traversal == TraversalKind::Dynamic) {
        note(trace, "AT dynamic -> push+pull, DeNovo, DRF1");
        return {UpdateProp::PushPull, CoherenceKind::DeNovo,
                ConsistencyKind::Drf1};
    }

    // Push vs. pull (Sec. IV-A1). Eliding work (AC) or hoisting loads (AI)
    // at the source is sufficient for push.
    bool push = false;
    if (props.control == Preference::Source) {
        note(trace, "AC source -> push");
        push = true;
    } else if (props.information == Preference::Source) {
        note(trace, "AI source -> push");
        push = true;
    } else if (reuseMedOrLow(profile)) {
        note(trace, "reuse med/low -> push (limited benefit caching pulls)");
        push = true;
    } else if (imbalanceHighOrMed(profile)) {
        note(trace, "imbalance high/med -> push (DRFrlx can overlap atomics)");
        push = true;
    } else if (profile.volume == Level::High) {
        note(trace, "volume high -> push (pull reuse would thrash)");
        push = true;
    }

    if (!push) {
        // Pull pairs with the simplest memory system: no atomics means GPU
        // coherence and DRF0 lose nothing.
        note(trace, "no push trigger -> pull with GPU coherence, DRF0");
        return {UpdateProp::Pull, CoherenceKind::Gpu, ConsistencyKind::Drf0};
    }

    // Coherence (Sec. IV-A2): DeNovo only pays off when atomics brought
    // into the L1 will be reused and not thrashed out.
    CoherenceKind coh;
    if (reuseMedOrLow(profile) || profile.volume == Level::High) {
        note(trace, "reuse med/low or volume high -> GPU coherence");
        coh = CoherenceKind::Gpu;
    } else {
        note(trace, "high reuse, volume <= med -> DeNovo");
        coh = CoherenceKind::DeNovo;
    }

    // Consistency (Sec. IV-A3): imbalance or cache-thrashing volume makes
    // atomic MLP worth the relaxed-atomics reasoning burden.
    ConsistencyKind con;
    if (profile.imbalanceLevel == Level::High ||
        profile.volume != Level::Low) {
        note(trace, "imbalance high or volume high/med -> DRFrlx");
        con = ConsistencyKind::DrfRlx;
    } else {
        note(trace, "balanced, low volume -> DRF1 (programmability)");
        con = ConsistencyKind::Drf1;
    }
    return {UpdateProp::Push, coh, con};
}

} // namespace gga
