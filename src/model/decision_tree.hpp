/**
 * @file
 * The full-design-space specialization model (paper Fig. 4 / Sec. IV-A):
 * a decision tree from (TaxonomyProfile, AlgoProperties) to the predicted
 * best SystemConfig.
 */

#ifndef GGA_MODEL_DECISION_TREE_HPP
#define GGA_MODEL_DECISION_TREE_HPP

#include <string>
#include <vector>

#include "model/algo_props.hpp"
#include "model/config.hpp"
#include "taxonomy/profile.hpp"

namespace gga {

/**
 * Predict the best of the 12 configurations for a workload.
 *
 * @param trace if non-null, receives one line per decision taken (used by
 *        the advisor example for explainability).
 */
SystemConfig predictFullDesignSpace(const TaxonomyProfile& profile,
                                    const AlgoProperties& props,
                                    std::vector<std::string>* trace = nullptr);

} // namespace gga

#endif // GGA_MODEL_DECISION_TREE_HPP
