/**
 * @file
 * The three design-space dimensions as plain enums. Header-only so the
 * simulator can consume them without linking the model library.
 */

#ifndef GGA_MODEL_DESIGN_DIMS_HPP
#define GGA_MODEL_DESIGN_DIMS_HPP

#include <cstdint>

namespace gga {

/** Update propagation dimension (Sec. II-A). */
enum class UpdateProp : std::uint8_t
{
    Pull,     ///< 'T': target-major outer loop, no fine-grained atomics
    Push,     ///< 'S': source-major outer loop, remote atomics
    PushPull, ///< 'D': dynamic traversal with racy reads and updates
};

/** Coherence dimension (Sec. II-B). */
enum class CoherenceKind : std::uint8_t
{
    Gpu,    ///< 'G': self-invalidate/flush at sync, atomics at L2
    DeNovo, ///< 'D': ownership at L1, atomics at L1
};

/** Consistency dimension (Sec. II-C). */
enum class ConsistencyKind : std::uint8_t
{
    Drf0,   ///< '0': every sync is a paired acquire/release
    Drf1,   ///< '1': unpaired atomics overlap data, stay mutually ordered
    DrfRlx, ///< 'R': relaxed atomics also overlap each other (MLP)
};

} // namespace gga

#endif // GGA_MODEL_DESIGN_DIMS_HPP
