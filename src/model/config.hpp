/**
 * @file
 * The hardware+software design space of the paper (Table I): update
 * propagation x coherence x consistency, and the compact configuration
 * naming used throughout the evaluation ("TG0", "SGR", "DD1", ...).
 */

#ifndef GGA_MODEL_CONFIG_HPP
#define GGA_MODEL_CONFIG_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/design_dims.hpp"

namespace gga {

/** One point in the 12-point design space. */
struct SystemConfig
{
    UpdateProp prop = UpdateProp::Pull;
    CoherenceKind coh = CoherenceKind::Gpu;
    ConsistencyKind con = ConsistencyKind::Drf0;

    bool operator==(const SystemConfig&) const = default;

    /** Compact paper-style name, e.g. "SGR". */
    std::string name() const;
};

/** Single-letter code of each dimension value. */
char propChar(UpdateProp p);
char cohChar(CoherenceKind c);
char conChar(ConsistencyKind c);

/** Long-form label of each dimension value ("Push", "DeNovo", "DRFrlx"). */
const std::string& propLabel(UpdateProp p);
const std::string& cohLabel(CoherenceKind c);
const std::string& conLabel(ConsistencyKind c);

/**
 * Parse "SGR"-style names: <prop:{T,S,D}><coh:{G,D}><con:{0,1,R}>.
 * Returns nullopt on malformed input.
 */
std::optional<SystemConfig> tryParseConfig(std::string_view name);

/** Parse "SGR"-style names; fatal wrapper over tryParseConfig. */
SystemConfig parseConfig(const std::string& name);

/**
 * Enumerate the valid configurations: 12 for statically-traversed apps
 * ({T,S} x {G,D} x {0,1,R}) or 6 for dynamic ones ({D} x {G,D} x {0,1,R}).
 */
std::vector<SystemConfig> allConfigs(bool dynamic_traversal);

/**
 * The subset plotted in the paper's Fig. 5: {TG0, SG1, SGR, SD1, SDR} for
 * static apps (pull is consistency/coherence-insensitive and DRF0 push is
 * uniformly poor), {DG1, DGR, DD1, DDR} for dynamic ones.
 */
std::vector<SystemConfig> figureConfigs(bool dynamic_traversal);

} // namespace gga

#endif // GGA_MODEL_CONFIG_HPP
