/**
 * @file
 * Partial-design-space specialization (paper Sec. IV-B): the model variant
 * for hardware that lacks some of the design space — most importantly
 * DRFrlx, which flips several push recommendations back to pull.
 */

#ifndef GGA_MODEL_PARTIAL_TREE_HPP
#define GGA_MODEL_PARTIAL_TREE_HPP

#include <string>
#include <vector>

#include "model/decision_tree.hpp"

namespace gga {

/** Which parts of the design space the target hardware supports. */
struct DesignSpaceRestriction
{
    bool allowDrfRlx = true;
    bool allowDeNovo = true;
};

/**
 * Predict the best configuration under @p restriction.
 *
 * With the full space allowed this defers to predictFullDesignSpace. The
 * paper's Sec. IV-B covers the no-DRFrlx case: push is only chosen when
 * control elides at the source, or (second order) information hoists at
 * the source and the full model's secondary push criteria hold with
 * medium volume now sufficient, or — when neither prefers source — under
 * stricter criteria where only *high* volume qualifies. Pull keeps GPU
 * coherence + DRF0; push takes DRF1 and the usual coherence rule.
 * Without DeNovo, coherence falls back to GPU.
 */
SystemConfig
predictPartialDesignSpace(const TaxonomyProfile& profile,
                          const AlgoProperties& props,
                          const DesignSpaceRestriction& restriction,
                          std::vector<std::string>* trace = nullptr);

} // namespace gga

#endif // GGA_MODEL_PARTIAL_TREE_HPP
