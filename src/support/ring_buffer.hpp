/**
 * @file
 * RingBuffer: a growable circular FIFO used for the L1's stalled-request
 * waiter queues. Replaces std::deque on the hot path: one contiguous
 * power-of-two allocation, no per-block heap traffic, and push/pop are a
 * masked index bump. Grows by doubling (moving elements into FIFO order),
 * so steady-state operation never allocates.
 */

#ifndef GGA_SUPPORT_RING_BUFFER_HPP
#define GGA_SUPPORT_RING_BUFFER_HPP

#include <cstddef>
#include <memory>
#include <utility>

#include "support/log.hpp"

namespace gga {

/** Move-friendly FIFO over a circular power-of-two array. */
template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void
    push_back(T value)
    {
        if (size_ == capacity_)
            grow();
        data_[(head_ + size_) & (capacity_ - 1)] = std::move(value);
        ++size_;
    }

    T&
    front()
    {
        GGA_ASSERT(size_ > 0, "front() on empty ring buffer");
        return data_[head_];
    }

    void
    pop_front()
    {
        GGA_ASSERT(size_ > 0, "pop_front() on empty ring buffer");
        data_[head_] = T{}; // release held resources now
        head_ = (head_ + 1) & (capacity_ - 1);
        --size_;
    }

    /** Move the front element out and pop it. */
    T
    take_front()
    {
        GGA_ASSERT(size_ > 0, "take_front() on empty ring buffer");
        T out = std::move(data_[head_]);
        head_ = (head_ + 1) & (capacity_ - 1);
        --size_;
        return out;
    }

  private:
    void
    grow()
    {
        const std::size_t new_cap = capacity_ == 0 ? 16 : capacity_ * 2;
        auto fresh = std::make_unique<T[]>(new_cap);
        for (std::size_t i = 0; i < size_; ++i)
            fresh[i] = std::move(data_[(head_ + i) & (capacity_ - 1)]);
        data_ = std::move(fresh);
        capacity_ = new_cap;
        head_ = 0;
    }

    std::unique_ptr<T[]> data_;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace gga

#endif // GGA_SUPPORT_RING_BUFFER_HPP
