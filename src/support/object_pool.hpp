/**
 * @file
 * ObjectPool: a chunked freelist allocator for the simulator's transient
 * per-request bookkeeping blocks (e.g. the L1's Pending records, one per
 * in-flight load/store/atomic). create()/destroy() replace new/delete on
 * the hot path: freed objects are recycled in LIFO order from chunks the
 * pool owns, so steady-state operation performs no heap traffic at all.
 */

#ifndef GGA_SUPPORT_OBJECT_POOL_HPP
#define GGA_SUPPORT_OBJECT_POOL_HPP

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "support/log.hpp"

namespace gga {

/**
 * Freelist pool of T. Objects must be destroyed through destroy() before
 * the pool dies; destruction order among live objects is unconstrained.
 */
template <typename T>
class ObjectPool
{
  public:
    ObjectPool() = default;
    ObjectPool(const ObjectPool&) = delete;
    ObjectPool& operator=(const ObjectPool&) = delete;

    ~ObjectPool()
    {
        GGA_ASSERT(live_ == 0, "object pool destroyed with ", live_,
                   " objects still live");
    }

    /** Construct a T in recycled (or freshly chunked) storage. */
    template <typename... Args>
    T*
    create(Args&&... args)
    {
        if (freeHead_ == nullptr)
            grow();
        Node* node = freeHead_;
        freeHead_ = node->next;
        ++live_;
        return ::new (node->storage) T(std::forward<Args>(args)...);
    }

    /** Destroy @p obj and recycle its storage. */
    void
    destroy(T* obj)
    {
        obj->~T();
        Node* node = reinterpret_cast<Node*>(
            reinterpret_cast<unsigned char*>(obj) -
            offsetof(Node, storage));
        node->next = freeHead_;
        freeHead_ = node;
        GGA_ASSERT(live_ > 0, "object pool double free");
        --live_;
    }

    /** Objects currently live (diagnostics). */
    std::size_t live() const { return live_; }

  private:
    struct Node
    {
        alignas(T) unsigned char storage[sizeof(T)];
        Node* next = nullptr;
    };

    void
    grow()
    {
        // Chunks double from 64 up to a cap; each chunk's nodes are
        // threaded onto the freelist in order.
        const std::size_t count = nextChunkSize_;
        nextChunkSize_ = std::min<std::size_t>(count * 2, 4096);
        chunks_.push_back(std::make_unique<Node[]>(count));
        Node* nodes = chunks_.back().get();
        for (std::size_t i = count; i-- > 0;) {
            nodes[i].next = freeHead_;
            freeHead_ = &nodes[i];
        }
    }

    std::vector<std::unique_ptr<Node[]>> chunks_;
    std::size_t nextChunkSize_ = 64;
    Node* freeHead_ = nullptr;
    std::size_t live_ = 0;
};

} // namespace gga

#endif // GGA_SUPPORT_OBJECT_POOL_HPP
