#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/log.hpp"

namespace gga {

Summary
summarize(std::span<const double> values)
{
    Summary s;
    s.count = values.size();
    if (values.empty())
        return s;
    double sum = 0.0;
    s.min = values.front();
    s.max = values.front();
    for (double v : values) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values) {
        const double d = v - s.mean;
        var += d * d;
    }
    s.stddev = std::sqrt(var / static_cast<double>(values.size()));
    return s;
}

double
geomean(std::span<const double> values)
{
    if (values.empty())
        return 1.0;
    double acc = 0.0;
    for (double v : values) {
        GGA_ASSERT(v > 0.0, "geomean requires positive values, got ", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

double
mean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
percentile(std::span<const double> values, double pct)
{
    if (values.empty())
        return 0.0;
    std::vector<double> copy(values.begin(), values.end());
    std::sort(copy.begin(), copy.end());
    const double clamped = std::clamp(pct, 0.0, 100.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(copy.size())));
    return copy[rank == 0 ? 0 : rank - 1];
}

} // namespace gga
