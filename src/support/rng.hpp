/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in GGA-Sim (graph generation, priorities) flow
 * through these generators with fixed seeds so that every simulation is
 * bit-reproducible across runs and platforms.
 */

#ifndef GGA_SUPPORT_RNG_HPP
#define GGA_SUPPORT_RNG_HPP

#include <cstddef>
#include <cstdint>

namespace gga {

/**
 * SplitMix64: tiny, high-quality 64-bit mixer. Used directly for hashing
 * and to seed Xoshiro256StarStar.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64 raw bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * Stateless 64-bit mix of a value; used for deterministic per-edge data
 * and as the hash of the simulator's hot-path tables. Inline: it runs on
 * every cache-set, bank, and FlatMap probe.
 */
inline std::uint64_t
hashMix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Combine two ids into one deterministic hash (order-sensitive). */
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

/** FNV-1a offset basis: the seed for an unchained fnv1a() call. */
inline constexpr std::uint64_t kFnv1aBasis = 14695981039346656037ull;

/**
 * FNV-1a over a byte range, chainable via @p seed. Platform-independent
 * (byte-order sensitive only through the caller's data layout); used for
 * evaluation-pipeline content digests — work-unit params hashes and
 * functional-output summaries — that must agree across hosts.
 */
inline std::uint64_t
fnv1a(const void* data, std::size_t bytes, std::uint64_t seed = kFnv1aBasis)
{
    const unsigned char* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Xoshiro256** — fast, statistically strong generator used for all graph
 * synthesis.
 */
class Xoshiro256StarStar
{
  public:
    explicit Xoshiro256StarStar(std::uint64_t seed);

    /** Next 64 raw bits. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double nextGaussian();

  private:
    std::uint64_t s_[4];
};

/**
 * Counter-based splittable generator: every draw is a pure function of
 * (seed, stream, counter), so any (vertex, block, phase) of a parallel
 * computation can own an independent reproducible stream with no
 * sequential dependence on any other stream. Draw i of
 * SplitRng(s, t) equals draw 0 of SplitRng(s, t, i).
 *
 * The stream key is derived with hashCombine so structured stream ids
 * (e.g. `(phase << 32) | vertex`) land on unrelated sequences; each
 * output applies the SplitMix64 finalizer to key + counter * gamma,
 * i.e. the stream IS a SplitMix64 sequence starting at the key.
 */
class SplitRng
{
  public:
    SplitRng(std::uint64_t seed, std::uint64_t stream,
             std::uint64_t counter = 0)
        : key_(hashCombine(seed, stream)), counter_(counter)
    {
    }

    /** Next 64 raw bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = key_ + (counter_++) * 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Same modulo policy as Xoshiro256StarStar::nextBounded.
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double nextGaussian();

    /** Draws consumed so far (plus the constructor's starting offset). */
    std::uint64_t
    counter() const
    {
        return counter_;
    }

  private:
    std::uint64_t key_;
    std::uint64_t counter_;
};

} // namespace gga

#endif // GGA_SUPPORT_RNG_HPP
