#include "support/rng.hpp"

#include <cmath>

namespace gga {

std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return hashMix64(a * 0x9e3779b97f4a7c15ull + b + 0x7f4a7c159e3779b9ull);
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto& s : s_)
        s = sm.next();
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
Xoshiro256StarStar::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Xoshiro256StarStar::nextBounded(std::uint64_t bound)
{
    // Lemire-style rejection-free bounded draw is overkill here; plain
    // modulo bias is negligible for graph-synthesis bounds << 2^64.
    return next() % bound;
}

double
Xoshiro256StarStar::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Xoshiro256StarStar::nextGaussian()
{
    // Box-Muller; draw until u1 is nonzero to keep log() finite.
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return r * std::cos(2.0 * M_PI * u2);
}

double
SplitRng::nextGaussian()
{
    // Same Box-Muller recipe as Xoshiro256StarStar::nextGaussian.
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return r * std::cos(2.0 * M_PI * u2);
}

} // namespace gga
