#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace gga {

namespace {

[[noreturn]] void
typeError(const char* want)
{
    throw JsonError(std::string("JSON value is not ") + want);
}

void
appendEscaped(std::string& out, const std::string& s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

std::string
formatDouble(double d)
{
    if (!std::isfinite(d))
        throw JsonError("JSON cannot represent a non-finite double");
    // to_chars: shortest round-trip representation, and — unlike an
    // ostringstream — immune to the embedding program's global locale
    // (a comma decimal separator would be invalid JSON).
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
    if (ec != std::errc())
        throw JsonError("failed to format a double");
    std::string s(buf, end);
    // Keep a number token that parses back as a double, not an integer.
    if (s.find_first_of(".eE") == std::string::npos)
        s += ".0";
    return s;
}

/** Recursive-descent parser over a string_view with position tracking. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json
    parseDocument()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string& why)
    {
        throw JsonError("JSON parse error at offset " +
                        std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    Json
    parseValue()
    {
        skipWs();
        // Depth cap: the parser recurses per nesting level, so without a
        // bound a few KB of "[[[[..." from an untrusted peer (the serve
        // endpoints parse network bodies) overflows the stack. 256 is far
        // beyond any artifact this library writes.
        if (depth_ >= kMaxDepth)
            fail("nesting deeper than " + std::to_string(kMaxDepth) +
                 " levels");
        switch (peek()) {
        case '{': {
            ++depth_;
            Json v = parseObject();
            --depth_;
            return v;
        }
        case '[': {
            ++depth_;
            Json v = parseArray();
            --depth_;
            return v;
        }
        case '"': return Json(parseString());
        case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("invalid literal");
        case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("invalid literal");
        case 'n':
            if (consumeLiteral("null"))
                return Json(nullptr);
            fail("invalid literal");
        default: return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("invalid \\u escape");
                    }
                    // UTF-8 encode the BMP code point (no surrogate pairs;
                    // the dumper only emits \u for control characters).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                }
                default: fail("invalid escape character");
                }
            } else {
                out += c;
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string_view tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            fail("invalid number");
        const bool integral =
            tok.find_first_of(".eE") == std::string_view::npos;
        if (integral && tok[0] != '-') {
            std::uint64_t u = 0;
            auto [p, ec] =
                std::from_chars(tok.data(), tok.data() + tok.size(), u);
            if (ec == std::errc() && p == tok.data() + tok.size())
                return Json(u);
        } else if (integral) {
            std::int64_t i = 0;
            auto [p, ec] =
                std::from_chars(tok.data(), tok.data() + tok.size(), i);
            if (ec == std::errc() && p == tok.data() + tok.size())
                return Json(i);
        }
        double d = 0.0;
        auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (ec != std::errc() || p != tok.data() + tok.size())
            fail("invalid number");
        return Json(d);
    }

    Json
    parseArray()
    {
        expect('[');
        Json::Array out;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(out));
        }
        while (true) {
            out.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return Json(std::move(out));
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json::Object out;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(out));
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            // Reject duplicate keys: at()/find() return the first match,
            // so accepting a duplicate would let a hand-edited document
            // carry two conflicting values and silently use one — the
            // exact failure the strict eval-layer loaders must surface.
            for (const auto& [existing, value] : out) {
                if (existing == key)
                    fail("duplicate object key '" + key + "'");
            }
            skipWs();
            expect(':');
            out.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return Json(std::move(out));
        }
    }

    static constexpr int kMaxDepth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

void
dumpValue(const Json& v, std::string& out, int indent, int depth);

void
appendNewline(std::string& out, int indent, int depth)
{
    if (indent < 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // namespace

bool
Json::asBool() const
{
    if (const bool* b = std::get_if<bool>(&value_))
        return *b;
    typeError("a bool");
}

std::int64_t
Json::asI64() const
{
    if (const std::int64_t* i = std::get_if<std::int64_t>(&value_))
        return *i;
    if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_)) {
        if (*u <= static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()))
            return static_cast<std::int64_t>(*u);
    }
    typeError("a signed integer");
}

std::uint64_t
Json::asU64() const
{
    if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_))
        return *u;
    if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) {
        if (*i >= 0)
            return static_cast<std::uint64_t>(*i);
    }
    typeError("an unsigned integer");
}

double
Json::asDouble() const
{
    if (const double* d = std::get_if<double>(&value_))
        return *d;
    if (const std::int64_t* i = std::get_if<std::int64_t>(&value_))
        return static_cast<double>(*i);
    if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_))
        return static_cast<double>(*u);
    typeError("a number");
}

const std::string&
Json::asString() const
{
    if (const std::string* s = std::get_if<std::string>(&value_))
        return *s;
    typeError("a string");
}

const Json::Array&
Json::asArray() const
{
    if (const Array* a = std::get_if<Array>(&value_))
        return *a;
    typeError("an array");
}

const Json::Object&
Json::asObject() const
{
    if (const Object* o = std::get_if<Object>(&value_))
        return *o;
    typeError("an object");
}

Json&
Json::push(Json v)
{
    if (isNull())
        value_ = Array{};
    if (Array* a = std::get_if<Array>(&value_)) {
        a->push_back(std::move(v));
        return *this;
    }
    typeError("an array");
}

Json&
Json::set(std::string key, Json v)
{
    if (isNull())
        value_ = Object{};
    if (Object* o = std::get_if<Object>(&value_)) {
        for (auto& [k, existing] : *o) {
            if (k == key) {
                existing = std::move(v);
                return *this;
            }
        }
        o->emplace_back(std::move(key), std::move(v));
        return *this;
    }
    typeError("an object");
}

const Json*
Json::find(std::string_view key) const
{
    const Object* o = std::get_if<Object>(&value_);
    if (!o)
        return nullptr;
    for (const auto& [k, v] : *o) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const Json&
Json::at(std::string_view key) const
{
    if (const Json* v = find(key))
        return *v;
    throw JsonError("missing JSON object member '" + std::string(key) + "'");
}

namespace {

void
dumpValue(const Json& v, std::string& out, int indent, int depth)
{
    if (v.isNull()) {
        out += "null";
    } else if (v.isBool()) {
        out += v.asBool() ? "true" : "false";
    } else if (v.isString()) {
        appendEscaped(out, v.asString());
    } else if (v.isArray()) {
        const Json::Array& a = v.asArray();
        if (a.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (i)
                out += ',';
            appendNewline(out, indent, depth + 1);
            dumpValue(a[i], out, indent, depth + 1);
        }
        appendNewline(out, indent, depth);
        out += ']';
    } else if (v.isObject()) {
        const Json::Object& o = v.asObject();
        if (o.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto& [k, member] : o) {
            if (!first)
                out += ",";
            first = false;
            appendNewline(out, indent, depth + 1);
            appendEscaped(out, k);
            out += indent < 0 ? ":" : ": ";
            dumpValue(member, out, indent, depth + 1);
        }
        appendNewline(out, indent, depth);
        out += '}';
    } else if (v.isU64()) {
        out += std::to_string(v.asU64());
    } else if (v.isI64()) {
        out += std::to_string(v.asI64());
    } else {
        out += formatDouble(v.asDouble());
    }
}

} // namespace

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpValue(*this, out, indent, 0);
    return out;
}

Json
Json::parse(std::string_view text)
{
    return Parser(text).parseDocument();
}

std::string
readTextFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw JsonError("cannot open '" + path + "' for reading");
    std::ostringstream os;
    os << in.rdbuf();
    if (in.bad())
        throw JsonError("failed reading '" + path + "'");
    return os.str();
}

void
writeTextFile(const std::string& path, std::string_view text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw JsonError("cannot open '" + path + "' for writing");
    out << text;
    out.flush();
    if (!out)
        throw JsonError("failed writing '" + path + "'");
}

} // namespace gga
