/**
 * @file
 * Fixed-capacity inline vector for hot-path address lists (no allocation).
 */

#ifndef GGA_SUPPORT_INLINE_VEC_HPP
#define GGA_SUPPORT_INLINE_VEC_HPP

#include <cstdint>

#include "support/log.hpp"

namespace gga {

/** Tiny fixed-capacity vector; panics on overflow. */
template <typename T, std::uint32_t N>
class InlineVec
{
  public:
    void
    push_back(const T& v)
    {
        GGA_ASSERT(n_ < N, "InlineVec overflow (capacity ", N, ")");
        data_[n_++] = v;
    }

    /** Append only if not already present (linear scan; N is small). */
    void
    pushUnique(const T& v)
    {
        for (std::uint32_t i = 0; i < n_; ++i) {
            if (data_[i] == v)
                return;
        }
        push_back(v);
    }

    bool
    contains(const T& v) const
    {
        for (std::uint32_t i = 0; i < n_; ++i) {
            if (data_[i] == v)
                return true;
        }
        return false;
    }

    T& operator[](std::uint32_t i) { return data_[i]; }
    const T& operator[](std::uint32_t i) const { return data_[i]; }

    std::uint32_t size() const { return n_; }
    bool empty() const { return n_ == 0; }
    void clear() { n_ = 0; }

    const T* data() const { return data_; }
    const T* begin() const { return data_; }
    const T* end() const { return data_ + n_; }

  private:
    T data_[N];
    std::uint32_t n_ = 0;
};

} // namespace gga

#endif // GGA_SUPPORT_INLINE_VEC_HPP
