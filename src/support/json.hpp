/**
 * @file
 * Minimal JSON value type for the evaluation pipeline's serialized
 * artifacts (work-unit manifests, per-shard result sets).
 *
 * Scope is deliberately narrow: exact 64-bit integers (cycles and
 * MemStats counters must survive a round trip bit-identically),
 * round-trippable doubles (max_digits10 formatting), order-preserving
 * objects (so serialization is deterministic), and strict parsing that
 * throws JsonError instead of aborting — a malformed manifest from disk
 * is user input, not a bug.
 */

#ifndef GGA_SUPPORT_JSON_HPP
#define GGA_SUPPORT_JSON_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace gga {

/** Thrown on malformed JSON text or a type-mismatched accessor. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string& why) : std::runtime_error(why) {}
};

class Json
{
  public:
    using Array = std::vector<Json>;
    /** Insertion-ordered key/value pairs: dumps are deterministic. */
    using Object = std::vector<std::pair<std::string, Json>>;

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(std::int64_t i) : value_(i) {}
    Json(std::uint64_t u) : value_(u) {}
    Json(int i) : value_(static_cast<std::int64_t>(i)) {}
    Json(unsigned u) : value_(static_cast<std::uint64_t>(u)) {}
    Json(double d) : value_(d) {}
    Json(const char* s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(Array a) : value_(std::move(a)) {}
    Json(Object o) : value_(std::move(o)) {}

    static Json array() { return Json(Array{}); }
    static Json object() { return Json(Object{}); }

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(value_); }
    bool isBool() const { return std::holds_alternative<bool>(value_); }
    bool isString() const { return std::holds_alternative<std::string>(value_); }
    bool isArray() const { return std::holds_alternative<Array>(value_); }
    bool isObject() const { return std::holds_alternative<Object>(value_); }
    bool isI64() const { return std::holds_alternative<std::int64_t>(value_); }
    bool isU64() const { return std::holds_alternative<std::uint64_t>(value_); }
    bool isDouble() const { return std::holds_alternative<double>(value_); }
    bool isNumber() const { return isI64() || isU64() || isDouble(); }

    /** Typed accessors; throw JsonError on a kind mismatch. */
    bool asBool() const;
    std::int64_t asI64() const;
    std::uint64_t asU64() const;
    double asDouble() const; ///< accepts any number kind
    const std::string& asString() const;
    const Array& asArray() const;
    const Object& asObject() const;

    /** Mutable array/object builders (convert a null value in place). */
    Json& push(Json v);
    Json& set(std::string key, Json v);

    /** Object member lookup; nullptr when absent or not an object. */
    const Json* find(std::string_view key) const;

    /** Object member that must exist; throws JsonError otherwise. */
    const Json& at(std::string_view key) const;

    bool operator==(const Json&) const = default;

    /**
     * Serialize. @p indent < 0 emits compact single-line JSON; >= 0
     * pretty-prints with that many spaces per level. Doubles use
     * max_digits10 so parse(dump(x)) == x.
     */
    std::string dump(int indent = -1) const;

    /** Strict parse of a complete JSON document; throws JsonError. */
    static Json parse(std::string_view text);

  private:
    std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
                 std::string, Array, Object>
        value_;
};

/** Read a whole file into a string; throws JsonError on IO failure. */
std::string readTextFile(const std::string& path);

/** Write @p text to @p path (truncating); throws JsonError on IO failure. */
void writeTextFile(const std::string& path, std::string_view text);

} // namespace gga

#endif // GGA_SUPPORT_JSON_HPP
