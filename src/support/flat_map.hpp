/**
 * @file
 * FlatMap/FlatSet: open-addressing hash containers for hot paths — the
 * simulator's MSHR tables, the L2 ownership directory, per-word
 * serialization windows, and the graph generator's pair-membership set.
 * Replaces std::unordered_map/set where per-operation node allocation
 * and pointer chasing dominate: storage is flat arrays (control bytes +
 * slots), probing is linear, and clear() keeps capacity so resets are
 * allocation-free.
 *
 * Deliberately minimal: no iterators and no rehash-stability guarantees —
 * pointers returned by find()/operator[] are invalidated by any insertion.
 * None of the call sites iterate, so replacing the std containers cannot
 * change observable behavior.
 */

#ifndef GGA_SUPPORT_FLAT_MAP_HPP
#define GGA_SUPPORT_FLAT_MAP_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace gga {

/** Default FlatMap hash: mix the key's bits (identity hashes cluster). */
template <typename K>
struct FlatHash
{
    std::size_t
    operator()(const K& k) const
    {
        static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                      "provide a custom hash for non-integral keys");
        return static_cast<std::size_t>(
            hashMix64(static_cast<std::uint64_t>(k)));
    }
};

/**
 * Open-addressing hash map with tombstone deletion. K must be integral
 * (or provide a custom Hash); V must be default-constructible and
 * move-assignable (move-only types are fine).
 */
template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap
{
  public:
    FlatMap() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    bool contains(const K& key) const { return find(key) != nullptr; }

    /** Value pointer, or nullptr when absent. Invalidated by inserts. */
    V*
    find(const K& key)
    {
        if (ctrl_.empty())
            return nullptr;
        std::size_t i = probeStart(key);
        while (true) {
            const std::uint8_t c = ctrl_[i];
            if (c == kEmpty)
                return nullptr;
            if (c == kFull && slots_[i].key == key)
                return &slots_[i].val;
            i = (i + 1) & mask();
        }
    }

    const V*
    find(const K& key) const
    {
        return const_cast<FlatMap*>(this)->find(key);
    }

    /** Value for @p key, default-constructed and inserted when absent. */
    V&
    operator[](const K& key)
    {
        reserveForOne();
        std::size_t i = probeStart(key);
        std::size_t first_tomb = kNoSlot;
        while (true) {
            const std::uint8_t c = ctrl_[i];
            if (c == kFull && slots_[i].key == key)
                return slots_[i].val;
            if (c == kTomb && first_tomb == kNoSlot)
                first_tomb = i;
            if (c == kEmpty) {
                if (first_tomb != kNoSlot) {
                    i = first_tomb;
                    --tombs_;
                }
                ctrl_[i] = kFull;
                slots_[i].key = key;
                slots_[i].val = V{};
                ++size_;
                return slots_[i].val;
            }
            i = (i + 1) & mask();
        }
    }

    /** Remove @p key; returns whether it was present. Keeps capacity. */
    bool
    erase(const K& key)
    {
        if (ctrl_.empty())
            return false;
        std::size_t i = probeStart(key);
        while (true) {
            const std::uint8_t c = ctrl_[i];
            if (c == kEmpty)
                return false;
            if (c == kFull && slots_[i].key == key) {
                ctrl_[i] = kTomb;
                slots_[i].val = V{}; // release held resources now
                --size_;
                ++tombs_;
                return true;
            }
            i = (i + 1) & mask();
        }
    }

    /** Drop all entries but keep the table's capacity. */
    void
    clear()
    {
        if constexpr (!std::is_trivially_destructible_v<V>) {
            for (std::size_t i = 0; i < ctrl_.size(); ++i) {
                if (ctrl_[i] == kFull)
                    slots_[i].val = V{};
            }
        }
        std::fill(ctrl_.begin(), ctrl_.end(), kEmpty);
        size_ = 0;
        tombs_ = 0;
    }

    /** Pre-size the table for @p n entries without rehash churn. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = kMinCapacity;
        while (cap * 3 < n * 4) // target load factor <= 3/4
            cap *= 2;
        if (cap > ctrl_.size())
            rehash(cap);
    }

  private:
    struct Slot
    {
        K key{};
        V val{};
    };

    static constexpr std::uint8_t kEmpty = 0;
    static constexpr std::uint8_t kFull = 1;
    static constexpr std::uint8_t kTomb = 2;
    static constexpr std::size_t kMinCapacity = 16;
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

    std::size_t mask() const { return ctrl_.size() - 1; }

    std::size_t
    probeStart(const K& key) const
    {
        return Hash{}(key) & mask();
    }

    /** Grow (or compact tombstones) so one more insert keeps load < 3/4. */
    void
    reserveForOne()
    {
        if (ctrl_.empty()) {
            rehash(kMinCapacity);
            return;
        }
        if ((size_ + tombs_ + 1) * 4 > ctrl_.size() * 3) {
            // Double only when live entries need it; otherwise the table
            // is mostly tombstones and an in-place-sized rehash compacts.
            const std::size_t cap = (size_ + 1) * 4 > ctrl_.size() * 3
                                        ? ctrl_.size() * 2
                                        : ctrl_.size();
            rehash(cap);
        }
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
        std::vector<Slot> old_slots = std::move(slots_);
        ctrl_.assign(new_cap, kEmpty);
        slots_.clear();
        slots_.resize(new_cap);
        tombs_ = 0;
        for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
            if (old_ctrl[i] != kFull)
                continue;
            std::size_t j = probeStart(old_slots[i].key);
            while (ctrl_[j] == kFull)
                j = (j + 1) & mask();
            ctrl_[j] = kFull;
            slots_[j].key = old_slots[i].key;
            slots_[j].val = std::move(old_slots[i].val);
        }
    }

    std::vector<std::uint8_t> ctrl_;
    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    std::size_t tombs_ = 0;
};

/**
 * Open-addressing hash set with tombstone deletion — FlatMap without the
 * values. Backs the graph generator's pair-membership tests, where the
 * std::unordered_set node allocations dominated synthesis time. Any key
 * value is legal (occupancy lives in the control bytes, so no sentinel
 * key is reserved).
 *
 * The probing/growth core deliberately mirrors FlatMap's rather than
 * sharing it: instantiating FlatMap with an empty value type would pad
 * every slot (key + empty struct) to twice the key size, and the
 * generator holds millions of live u64 keys. Changes to either table's
 * load-factor or tombstone policy belong in both.
 */
template <typename K, typename Hash = FlatHash<K>>
class FlatSet
{
  public:
    FlatSet() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    bool
    contains(const K& key) const
    {
        if (ctrl_.empty())
            return false;
        std::size_t i = probeStart(key);
        while (true) {
            const std::uint8_t c = ctrl_[i];
            if (c == kEmpty)
                return false;
            if (c == kFull && slots_[i] == key)
                return true;
            i = (i + 1) & mask();
        }
    }

    /** Insert @p key; returns whether it was newly added. */
    bool
    insert(const K& key)
    {
        reserveForOne();
        std::size_t i = probeStart(key);
        std::size_t first_tomb = kNoSlot;
        while (true) {
            const std::uint8_t c = ctrl_[i];
            if (c == kFull && slots_[i] == key)
                return false;
            if (c == kTomb && first_tomb == kNoSlot)
                first_tomb = i;
            if (c == kEmpty) {
                if (first_tomb != kNoSlot) {
                    i = first_tomb;
                    --tombs_;
                }
                ctrl_[i] = kFull;
                slots_[i] = key;
                ++size_;
                return true;
            }
            i = (i + 1) & mask();
        }
    }

    /** Remove @p key; returns whether it was present. Keeps capacity. */
    bool
    erase(const K& key)
    {
        if (ctrl_.empty())
            return false;
        std::size_t i = probeStart(key);
        while (true) {
            const std::uint8_t c = ctrl_[i];
            if (c == kEmpty)
                return false;
            if (c == kFull && slots_[i] == key) {
                ctrl_[i] = kTomb;
                --size_;
                ++tombs_;
                return true;
            }
            i = (i + 1) & mask();
        }
    }

    /** Drop all entries but keep the table's capacity. */
    void
    clear()
    {
        std::fill(ctrl_.begin(), ctrl_.end(), kEmpty);
        size_ = 0;
        tombs_ = 0;
    }

    /** Pre-size the table for @p n entries without rehash churn. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = kMinCapacity;
        while (cap * 3 < n * 4) // target load factor <= 3/4
            cap *= 2;
        if (cap > ctrl_.size())
            rehash(cap);
    }

  private:
    static constexpr std::uint8_t kEmpty = 0;
    static constexpr std::uint8_t kFull = 1;
    static constexpr std::uint8_t kTomb = 2;
    static constexpr std::size_t kMinCapacity = 16;
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

    std::size_t mask() const { return ctrl_.size() - 1; }

    std::size_t
    probeStart(const K& key) const
    {
        return Hash{}(key) & mask();
    }

    void
    reserveForOne()
    {
        if (ctrl_.empty()) {
            rehash(kMinCapacity);
            return;
        }
        if ((size_ + tombs_ + 1) * 4 > ctrl_.size() * 3) {
            const std::size_t cap = (size_ + 1) * 4 > ctrl_.size() * 3
                                        ? ctrl_.size() * 2
                                        : ctrl_.size();
            rehash(cap);
        }
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
        std::vector<K> old_slots = std::move(slots_);
        ctrl_.assign(new_cap, kEmpty);
        slots_.assign(new_cap, K{});
        tombs_ = 0;
        for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
            if (old_ctrl[i] != kFull)
                continue;
            std::size_t j = probeStart(old_slots[i]);
            while (ctrl_[j] == kFull)
                j = (j + 1) & mask();
            ctrl_[j] = kFull;
            slots_[j] = old_slots[i];
        }
    }

    std::vector<std::uint8_t> ctrl_;
    std::vector<K> slots_;
    std::size_t size_ = 0;
    std::size_t tombs_ = 0;
};

} // namespace gga

#endif // GGA_SUPPORT_FLAT_MAP_HPP
