/**
 * @file
 * Deterministic fault injection.
 *
 * Every recovery path in gga_serve — short socket reads, corrupt worker
 * parts, expired leases, crashes between journal appends — plus the
 * executor's scheduling perturbation point (pool.yield) is reachable
 * on demand through named *sites* compiled into the hot seams. A site is
 * inert (one atomic load) until armed through the GGA_FAULTS environment
 * variable or configure():
 *
 *   GGA_FAULTS="seed=7,worker.part.corrupt=1,http.read.fail=3+"
 *
 * Grammar: comma-separated entries. "seed=S" seeds the corruption RNG;
 * every other entry is "site=trigger" where trigger is
 *
 *   N      fire on the Nth hit of the site only (1-based)
 *   N+     fire on the Nth hit and every later one
 *   N/M    fire on the Nth hit and every Mth after it
 *
 * Injection is counter-based and seeded (SplitMix64, no rand()), so a
 * failing run replays exactly — the same spec against the same request
 * sequence injects the same faults at the same points. Crash sites call
 * _exit(kFaultCrashExit), skipping atexit/destructors: the closest
 * userspace approximation of SIGKILL, which is what the journal's
 * recovery guarantees are stated against.
 *
 * Thread-safe; all state is process-global (the sites it arms span the
 * server, worker client, and journal layers).
 */

#ifndef GGA_SUPPORT_FAULTS_HPP
#define GGA_SUPPORT_FAULTS_HPP

#include <string>

#include "support/json.hpp"

namespace gga::faults {

/** Exit code of a crashPoint() hit (distinct from the worker's 17). */
constexpr int kFaultCrashExit = 41;

/**
 * Replace the active fault plan. "" disarms every site and resets all
 * counters. Throws std::invalid_argument on a malformed spec. Wins over
 * (and suppresses) the GGA_FAULTS environment variable.
 */
void configure(const std::string& spec);

/**
 * Count a hit of @p site and report whether its trigger fires. False on
 * every site when no plan is armed (the fast path: one relaxed load).
 */
bool fire(const char* site);

/** fire() && _exit(kFaultCrashExit) — a simulated hard crash. */
void crashPoint(const char* site);

/**
 * fire() && flip one seeded pseudo-random byte of @p data in place.
 * Returns whether the mutation happened. No-op on empty data.
 */
bool corrupt(const char* site, std::string& data);

/** fire() && drop the tail half of @p data. Returns whether it fired. */
bool truncate(const char* site, std::string& data);

/** {"enabled": ..., "injected_total": N, "by_site": {...}} for /stats. */
Json statsJson();

/** Total injections since the last configure(). */
std::uint64_t injectedTotal();

} // namespace gga::faults

#endif // GGA_SUPPORT_FAULTS_HPP
