/**
 * @file
 * Clang thread-safety annotations + the annotated lock vocabulary every
 * shared-state class in the repo uses.
 *
 * The macros expand to Clang's capability attributes under
 * -Wthread-safety (the clang-thread-safety CI job builds the whole tree
 * with -Werror=thread-safety) and to nothing elsewhere, so GCC builds
 * are unaffected. On top of them sit three tiny types:
 *
 *   Mutex     an annotated std::mutex: the capability the analyzer
 *             tracks. gga_lint forbids raw std::mutex members in src/
 *             precisely so every lock-protected invariant is visible to
 *             this analysis.
 *   MutexLock the scoped guard (std::lock_guard shape). Also satisfies
 *             BasicLockable so CondVar can drop/retake it while waiting.
 *   CondVar   a condition variable waiting on Mutex directly. Waits
 *             REQUIRE the mutex, matching the runtime contract, so a
 *             wait outside the lock is a compile error under clang.
 *
 * Discipline the analyzer enforces (and the code follows):
 *  - shared members are GUARDED_BY their mutex and only touched in
 *    frames that hold it (a MutexLock in scope or a REQUIRES method);
 *  - "Locked" helper methods carry GGA_REQUIRES(mu_) instead of a
 *    comment saying "caller holds mu_";
 *  - condition-variable predicates are plain while-loops in the locked
 *    frame, never lambdas (the analysis does not propagate capabilities
 *    into lambdas);
 *  - code that must hand a lock across frames is restructured rather
 *    than annotated away; GGA_NO_THREAD_SAFETY_ANALYSIS exists but
 *    nothing in src/ needs it today.
 */

#ifndef GGA_SUPPORT_THREAD_ANNOTATIONS_HPP
#define GGA_SUPPORT_THREAD_ANNOTATIONS_HPP

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define GGA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GGA_THREAD_ANNOTATION(x) // GCC: annotations compile away
#endif

/** Marks a type as a capability ("mutex") the analyzer tracks. */
#define GGA_CAPABILITY(x) GGA_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define GGA_SCOPED_CAPABILITY GGA_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the capability. */
#define GGA_GUARDED_BY(x) GGA_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by the capability. */
#define GGA_PT_GUARDED_BY(x) GGA_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the capability held on entry (and exit). */
#define GGA_REQUIRES(...) \
    GGA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capability (held on exit, not on entry). */
#define GGA_ACQUIRE(...) \
    GGA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability (held on entry, not on exit). */
#define GGA_RELEASE(...) \
    GGA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p result. */
#define GGA_TRY_ACQUIRE(result, ...) \
    GGA_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/** Function must NOT be called with the capability held (deadlock). */
#define GGA_EXCLUDES(...) GGA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime-checked claim that the capability is already held. */
#define GGA_ASSERT_CAPABILITY(x) \
    GGA_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the capability guarding its result. */
#define GGA_RETURN_CAPABILITY(x) GGA_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: skip analysis of one function. Use never; justify always. */
#define GGA_NO_THREAD_SAFETY_ANALYSIS \
    GGA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gga {

/**
 * std::mutex with the capability attribute the analyzer needs. Satisfies
 * Lockable, so standard algorithms and condition_variable_any work with
 * it unchanged.
 */
class GGA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() GGA_ACQUIRE() { m_.lock(); }
    void unlock() GGA_RELEASE() { m_.unlock(); }
    bool try_lock() GGA_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    std::mutex m_;
};

/**
 * Scoped lock on a Mutex (std::lock_guard shape, tracked by the
 * analyzer). CondVar waits take the Mutex itself, not this guard: a
 * wait drops and retakes the mutex, but holds it again before control
 * returns to the locked frame, which is exactly what the analyzer
 * assumes across an unannotated call.
 */
class GGA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mu) GGA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() GGA_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mu_;
};

/**
 * Condition variable over Mutex. Every wait names the mutex it
 * atomically releases, annotated GGA_REQUIRES so waiting without the
 * lock — the classic lost-wakeup bug — fails to compile under clang.
 * Predicates stay at the call site as while-loops:
 *
 *   MutexLock lock(mu_);
 *   while (!ready_)          // ready_ is GUARDED_BY(mu_): checked
 *       cv_.wait(mu_);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void
    wait(Mutex& mu) GGA_REQUIRES(mu)
    {
        cv_.wait(mu);
    }

    template <typename Clock, typename Duration>
    std::cv_status
    wait_until(Mutex& mu,
               const std::chrono::time_point<Clock, Duration>& deadline)
        GGA_REQUIRES(mu)
    {
        return cv_.wait_until(mu, deadline);
    }

    template <typename Rep, typename Period>
    std::cv_status
    wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
        GGA_REQUIRES(mu)
    {
        return cv_.wait_for(mu, d);
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

  private:
    // _any: waits on our annotated Mutex directly instead of requiring a
    // std::unique_lock<std::mutex> the analyzer cannot see through. The
    // extra internal mutex it carries is irrelevant at this layer's
    // contention (tasks are whole-workload simulations).
    std::condition_variable_any cv_;
};

} // namespace gga

#endif // GGA_SUPPORT_THREAD_ANNOTATIONS_HPP
