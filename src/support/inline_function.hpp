/**
 * @file
 * InlineFunction: a tiny fixed-capacity, non-allocating std::function
 * substitute for the simulator's hot event path. Millions of events flow
 * through the engine per run; keeping callbacks heap-free roughly halves
 * event overhead.
 */

#ifndef GGA_SUPPORT_INLINE_FUNCTION_HPP
#define GGA_SUPPORT_INLINE_FUNCTION_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gga {

/**
 * Move-only callable wrapper with inline storage. Callables larger than
 * Capacity bytes fail to compile; keep captures small.
 */
template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>,
                                  InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
    InlineFunction(F&& f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "callable too large for InlineFunction capacity");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "callable must be nothrow move constructible");
        ::new (storage_) Fn(std::forward<F>(f));
        invoke_ = [](void* s, Args... args) -> R {
            return (*std::launder(reinterpret_cast<Fn*>(s)))(
                std::forward<Args>(args)...);
        };
        moveDestroy_ = [](void* src, void* dst) {
            Fn* f_src = std::launder(reinterpret_cast<Fn*>(src));
            if (dst)
                ::new (dst) Fn(std::move(*f_src));
            f_src->~Fn();
        };
    }

    InlineFunction(InlineFunction&& other) noexcept { moveFrom(other); }

    InlineFunction&
    operator=(InlineFunction&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        return invoke_(storage_, std::forward<Args>(args)...);
    }

  private:
    void
    reset()
    {
        if (moveDestroy_) {
            moveDestroy_(storage_, nullptr);
            invoke_ = nullptr;
            moveDestroy_ = nullptr;
        }
    }

    void
    moveFrom(InlineFunction& other)
    {
        if (other.moveDestroy_) {
            other.moveDestroy_(other.storage_, storage_);
            invoke_ = other.invoke_;
            moveDestroy_ = other.moveDestroy_;
            other.invoke_ = nullptr;
            other.moveDestroy_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[Capacity];
    R (*invoke_)(void*, Args...) = nullptr;
    void (*moveDestroy_)(void* src, void* dst) = nullptr;
};

} // namespace gga

#endif // GGA_SUPPORT_INLINE_FUNCTION_HPP
