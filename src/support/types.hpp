/**
 * @file
 * Fundamental scalar types shared across GGA-Sim.
 */

#ifndef GGA_SUPPORT_TYPES_HPP
#define GGA_SUPPORT_TYPES_HPP

#include <cstdint>

namespace gga {

/** Vertex identifier. Graphs in this study stay below 2^32 vertices. */
using VertexId = std::uint32_t;

/** Edge identifier / CSR offset. Largest input has ~6.7M directed edges. */
using EdgeId = std::uint32_t;

/** Simulated time in GPU core cycles. */
using Cycles = std::uint64_t;

/** Byte address in the simulated unified address space. */
using Addr = std::uint64_t;

/** Sentinel for "no vertex". */
inline constexpr VertexId kInvalidVertex = 0xffffffffu;

/** Sentinel for "infinite distance" in traversal algorithms. */
inline constexpr std::uint32_t kInfDist = 0xffffffffu;

} // namespace gga

#endif // GGA_SUPPORT_TYPES_HPP
