#include "support/table.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace gga {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(Row{std::move(row), false});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{{}, true});
}

std::string
TextTable::toText() const
{
    // Compute column widths over header plus all rows.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string>& cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto& r : rows_)
        grow(r.cells);

    std::ostringstream os;
    auto emit = [&os, &widths](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& c = i < cells.size() ? cells[i] : std::string();
            os << c;
            if (i + 1 < widths.size())
                os << std::string(widths[i] - c.size() + 2, ' ');
        }
        os << '\n';
    };

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    total = total >= 2 ? total - 2 : total;

    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << '\n';
    }
    for (const auto& r : rows_) {
        if (r.separator)
            os << std::string(total, '-') << '\n';
        else
            emit(r.cells);
    }
    return os.str();
}

namespace {

std::string
csvEscape(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
TextTable::toCsv() const
{
    std::ostringstream os;
    auto emit = [&os](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            os << csvEscape(cells[i]);
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto& r : rows_) {
        if (!r.separator)
            emit(r.cells);
    }
    return os.str();
}

std::string
fmtDouble(double v, int precision)
{
    // std::to_chars is locale-independent where snprintf("%.*f") follows
    // LC_NUMERIC; these strings are byte-identity-gated (golden tables,
    // merge equivalence), so the decimal point must be '.' everywhere.
    char buf[512]; // large |v| in fixed notation needs room left of '.'
    const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                   std::chars_format::fixed,
                                   precision < 0 ? 0 : precision);
    if (res.ec != std::errc())
        return "?"; // |v| too wide for buf; no caller formats such values
    return std::string(buf, res.ptr);
}

std::string
fmtPct(double fraction, int precision)
{
    return fmtDouble(fraction * 100.0, precision) + "%";
}

} // namespace gga
