#include "support/faults.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>

#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/thread_annotations.hpp"

namespace gga::faults {

namespace {

struct Trigger
{
    std::uint64_t at = 0;    ///< first firing hit (1-based)
    std::uint64_t every = 0; ///< 0: fire at `at` only; else repeat period
    bool openEnded = false;  ///< "N+": every hit from `at` on
};

struct SiteState
{
    Trigger trigger;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
};

struct Plan
{
    std::uint64_t seed = 1;
    std::map<std::string, SiteState> sites;
};

struct Registry
{
    Mutex mu;
    bool envChecked GGA_GUARDED_BY(mu) = false;
    Plan plan GGA_GUARDED_BY(mu);
};

Registry&
registry()
{
    static Registry r;
    return r;
}

/** Armed-at-all flag: the only thing the disarmed fast path touches. */
std::atomic<bool>&
armedFlag()
{
    static std::atomic<bool> armed{false};
    return armed;
}

/** Set once GGA_FAULTS has been consulted (or configure() ran). */
std::atomic<bool>&
envDoneFlag()
{
    static std::atomic<bool> done{false};
    return done;
}

std::uint64_t
parseU64Strict(const std::string& text, const std::string& entry)
{
    if (text.empty() || text[0] == '-')
        throw std::invalid_argument("GGA_FAULTS: bad count in '" + entry +
                                    "'");
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        throw std::invalid_argument("GGA_FAULTS: bad count in '" + entry +
                                    "'");
    return static_cast<std::uint64_t>(v);
}

Plan
parsePlan(const std::string& spec)
{
    Plan plan;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(',', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(begin, end - begin);
        begin = end + 1;
        if (entry.empty())
            continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size())
            throw std::invalid_argument(
                "GGA_FAULTS: entry '" + entry +
                "' is not site=trigger (or seed=S)");
        const std::string site = entry.substr(0, eq);
        std::string value = entry.substr(eq + 1);
        if (site == "seed") {
            plan.seed = parseU64Strict(value, entry);
            continue;
        }
        Trigger t;
        if (value.back() == '+') {
            t.openEnded = true;
            value.pop_back();
        }
        const std::size_t slash = value.find('/');
        if (slash != std::string::npos) {
            if (t.openEnded)
                throw std::invalid_argument(
                    "GGA_FAULTS: '" + entry + "' mixes N+ and N/M");
            t.at = parseU64Strict(value.substr(0, slash), entry);
            t.every = parseU64Strict(value.substr(slash + 1), entry);
            if (t.every == 0)
                throw std::invalid_argument(
                    "GGA_FAULTS: '" + entry + "' wants a period >= 1");
        } else {
            t.at = parseU64Strict(value, entry);
        }
        if (t.at == 0)
            throw std::invalid_argument(
                "GGA_FAULTS: '" + entry + "' wants a 1-based hit count");
        SiteState st;
        st.trigger = t;
        if (!plan.sites.emplace(site, st).second)
            throw std::invalid_argument("GGA_FAULTS: site '" + site +
                                        "' configured twice");
    }
    return plan;
}

/** Lazily adopt GGA_FAULTS the first time any site is consulted. */
void
initFromEnvLocked(Registry& r) GGA_REQUIRES(r.mu)
{
    if (r.envChecked)
        return;
    r.envChecked = true;
    const char* env = std::getenv("GGA_FAULTS");
    if (env == nullptr || *env == '\0')
        return;
    try {
        r.plan = parsePlan(env);
    } catch (const std::invalid_argument& err) {
        GGA_FATAL(err.what());
    }
    armedFlag().store(!r.plan.sites.empty(), std::memory_order_release);
    GGA_WARN("faults: armed from GGA_FAULTS='", env, "'");
}

} // namespace

void
configure(const std::string& spec)
{
    Plan plan = parsePlan(spec); // may throw; leave state untouched then
    Registry& r = registry();
    MutexLock lock(r.mu);
    r.envChecked = true; // an explicit plan overrides the environment
    r.plan = std::move(plan);
    armedFlag().store(!r.plan.sites.empty(), std::memory_order_release);
    envDoneFlag().store(true, std::memory_order_release);
}

bool
fire(const char* site)
{
    Registry& r = registry();
    if (!envDoneFlag().load(std::memory_order_acquire)) {
        MutexLock lock(r.mu);
        initFromEnvLocked(r);
        envDoneFlag().store(true, std::memory_order_release);
    }
    if (!armedFlag().load(std::memory_order_acquire))
        return false;
    MutexLock lock(r.mu);
    const auto it = r.plan.sites.find(site);
    if (it == r.plan.sites.end())
        return false;
    SiteState& st = it->second;
    const std::uint64_t hit = ++st.hits;
    const Trigger& t = st.trigger;
    bool firing = false;
    if (t.openEnded)
        firing = hit >= t.at;
    else if (t.every != 0)
        firing = hit >= t.at && (hit - t.at) % t.every == 0;
    else
        firing = hit == t.at;
    if (firing) {
        ++st.fired;
        GGA_WARN("faults: injecting '", site, "' (hit ", hit, ")");
    }
    return firing;
}

void
crashPoint(const char* site)
{
    if (!fire(site))
        return;
    GGA_WARN("faults: crashing at '", site, "' (_exit ", kFaultCrashExit,
             ")");
    ::_exit(kFaultCrashExit);
}

bool
corrupt(const char* site, std::string& data)
{
    if (!fire(site) || data.empty())
        return false;
    std::uint64_t seed;
    std::uint64_t fired;
    {
        Registry& r = registry();
        MutexLock lock(r.mu);
        seed = r.plan.seed;
        fired = r.plan.sites.at(site).fired;
    }
    // Derive the mutation from (seed, site, firing ordinal) so a replay
    // with the same spec flips the same byte the same way.
    SplitMix64 rng(hashCombine(fnv1a(site, std::strlen(site), seed), fired));
    const std::size_t pos =
        static_cast<std::size_t>(rng.next()) % data.size();
    const unsigned char flip =
        static_cast<unsigned char>(1 + (rng.next() & 0x7f));
    data[pos] = static_cast<char>(static_cast<unsigned char>(data[pos]) ^
                                  flip);
    return true;
}

bool
truncate(const char* site, std::string& data)
{
    if (!fire(site))
        return false;
    data.resize(data.size() / 2);
    return true;
}

Json
statsJson()
{
    Registry& r = registry();
    MutexLock lock(r.mu);
    std::uint64_t total = 0;
    Json bySite = Json::object();
    for (const auto& [site, st] : r.plan.sites) {
        total += st.fired;
        Json s = Json::object();
        s.set("hits", Json(st.hits));
        s.set("injected", Json(st.fired));
        bySite.set(site, std::move(s));
    }
    Json j = Json::object();
    j.set("enabled", Json(!r.plan.sites.empty()));
    j.set("injected_total", Json(total));
    j.set("by_site", std::move(bySite));
    return j;
}

std::uint64_t
injectedTotal()
{
    Registry& r = registry();
    MutexLock lock(r.mu);
    std::uint64_t total = 0;
    for (const auto& [site, st] : r.plan.sites) {
        (void)site;
        total += st.fired;
    }
    return total;
}

} // namespace gga::faults
