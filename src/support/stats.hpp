/**
 * @file
 * Small descriptive-statistics helpers used by the taxonomy metrics and the
 * benchmark harness.
 */

#ifndef GGA_SUPPORT_STATS_HPP
#define GGA_SUPPORT_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace gga {

/** Summary of a sample: count, extrema, mean, population standard deviation. */
struct Summary
{
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
};

/** Compute a Summary over a span of doubles (empty span yields zeros). */
Summary summarize(std::span<const double> values);

/** Geometric mean; all values must be positive, empty span yields 1.0. */
double geomean(std::span<const double> values);

/** Arithmetic mean; empty span yields 0. */
double mean(std::span<const double> values);

/** In-place-free percentile (0..100) by nearest-rank on a copy. */
double percentile(std::span<const double> values, double pct);

} // namespace gga

#endif // GGA_SUPPORT_STATS_HPP
