/**
 * @file
 * Minimal gem5-style status/error reporting: panic/fatal/warn/inform.
 *
 * panic()  — internal invariant violated (a GGA-Sim bug); aborts.
 * fatal()  — user error (bad configuration/arguments); exits with code 1.
 * warn()   — suspicious but survivable condition.
 * inform() — plain status output.
 */

#ifndef GGA_SUPPORT_LOG_HPP
#define GGA_SUPPORT_LOG_HPP

#include <sstream>
#include <string>

namespace gga {

namespace detail {

[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

/** Stream-concatenate any set of printable arguments into a string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Toggle for inform() output (benchmarks silence it). */
void setVerbose(bool verbose);
bool verbose();

} // namespace gga

#define GGA_PANIC(...) \
    ::gga::detail::panicImpl(__FILE__, __LINE__, ::gga::detail::concat(__VA_ARGS__))

#define GGA_FATAL(...) \
    ::gga::detail::fatalImpl(__FILE__, __LINE__, ::gga::detail::concat(__VA_ARGS__))

#define GGA_WARN(...) \
    ::gga::detail::warnImpl(::gga::detail::concat(__VA_ARGS__))

#define GGA_INFORM(...) \
    ::gga::detail::informImpl(::gga::detail::concat(__VA_ARGS__))

/** Assert that must hold regardless of user input; compiled in all builds. */
#define GGA_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            GGA_PANIC("assertion failed: " #cond " ", __VA_ARGS__);        \
        }                                                                  \
    } while (0)

#endif // GGA_SUPPORT_LOG_HPP
