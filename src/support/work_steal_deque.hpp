/**
 * @file
 * WorkStealDeque: a growable Chase–Lev work-stealing deque.
 *
 * One owner thread pushes and pops at the bottom (LIFO); any number of
 * thief threads steal from the top (FIFO). The owner never blocks, and a
 * thief either takes the oldest element, loses a race (Abort), or finds
 * the deque empty — no locks anywhere, which is why TaskPool's workers
 * can probe each other's queues without serializing on a shared mutex.
 *
 * Design notes (this is the Chase–Lev structure from "Dynamic Circular
 * Work-Stealing Deque", with the C11 memory orderings of Lê et al.,
 * adapted in two ways):
 *
 *  - Elements must be trivially copyable (enforced below) because a
 *    thief copies a slot *speculatively* and only then claims it with a
 *    CAS on top. A move-only element cannot be read speculatively; store
 *    pointers instead (TaskPool stores Task*).
 *  - Orderings are deliberately conservative — seq_cst on the top/bottom
 *    handshakes instead of standalone fences — because ThreadSanitizer
 *    does not model atomic_thread_fence, and this repo's TSan CI job is
 *    a hard gate. The extra cost is nanoseconds; the tasks the pool
 *    carries run for milliseconds to minutes.
 *
 * Growth: when the ring fills, the owner allocates a doubled ring and
 * copies the live range. Retired rings are kept alive until destruction
 * (a thief may still be reading a stale ring pointer); their slots were
 * copied, never cleared, so a stale read remains valid — the CAS on top
 * decides ownership either way. Memory held is bounded by 2x the peak.
 */

#ifndef GGA_SUPPORT_WORK_STEAL_DEQUE_HPP
#define GGA_SUPPORT_WORK_STEAL_DEQUE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "support/log.hpp"

namespace gga {

template <typename T>
class WorkStealDeque
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "Chase-Lev slots are copied speculatively; store "
                  "pointers for non-trivial payloads");

  public:
    enum class Steal
    {
        Got,   ///< out holds the stolen element
        Empty, ///< nothing to steal
        Abort, ///< lost a race with the owner or another thief; retry
    };

    explicit WorkStealDeque(std::size_t initialCapacity = 64)
    {
        std::size_t cap = 1;
        while (cap < initialCapacity)
            cap <<= 1;
        rings_.push_back(std::make_unique<Ring>(cap));
        ring_.store(rings_.back().get(), std::memory_order_release);
    }

    WorkStealDeque(const WorkStealDeque&) = delete;
    WorkStealDeque& operator=(const WorkStealDeque&) = delete;

    /** Owner only. Always succeeds (grows as needed). */
    void
    pushBottom(T item)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        Ring* ring = ring_.load(std::memory_order_relaxed);
        if (b - t >= static_cast<std::int64_t>(ring->capacity)) {
            ring = grow(ring, t, b);
        }
        ring->put(b, item);
        // seq_cst store: orders the slot write before the size increase
        // for a thief whose top/bottom loads are also seq_cst.
        bottom_.store(b + 1, std::memory_order_seq_cst);
    }

    /** Owner only. False when the deque is empty. */
    bool
    popBottom(T& out)
    {
        const std::int64_t b =
            bottom_.load(std::memory_order_relaxed) - 1;
        Ring* ring = ring_.load(std::memory_order_relaxed);
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        if (t > b) {
            // Already empty; restore bottom.
            bottom_.store(b + 1, std::memory_order_relaxed);
            return false;
        }
        out = ring->get(b);
        if (t == b) {
            // Last element: race the thieves for it via top.
            const bool won = top_.compare_exchange_strong(
                t, t + 1, std::memory_order_seq_cst,
                std::memory_order_seq_cst);
            bottom_.store(b + 1, std::memory_order_relaxed);
            return won;
        }
        return true;
    }

    /** Any thread. One attempt; Abort means "contended, try again". */
    Steal
    steal(T& out)
    {
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b)
            return Steal::Empty;
        // Speculative copy: if the CAS below succeeds, no other thread
        // claimed index t, and the owner cannot have overwritten slot t
        // without top first moving past it — so the copy is the element.
        Ring* ring = ring_.load(std::memory_order_acquire);
        const T item = ring->get(t);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst))
            return Steal::Abort;
        out = item;
        return Steal::Got;
    }

    /**
     * Racy size estimate for telemetry and victim selection; never
     * negative. Exact only when the deque is quiescent.
     */
    std::size_t
    sizeEstimate() const
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

  private:
    struct Ring
    {
        explicit Ring(std::size_t cap)
            : capacity(cap), mask(cap - 1),
              slots(std::make_unique<std::atomic<T>[]>(cap))
        {
        }

        T
        get(std::int64_t i) const
        {
            return slots[static_cast<std::size_t>(i) & mask].load(
                std::memory_order_acquire);
        }

        void
        put(std::int64_t i, T v)
        {
            slots[static_cast<std::size_t>(i) & mask].store(
                v, std::memory_order_release);
        }

        std::size_t capacity;
        std::size_t mask;
        std::unique_ptr<std::atomic<T>[]> slots;
    };

    /** Owner only: double the ring, copy [t, b), publish. */
    Ring*
    grow(Ring* old, std::int64_t t, std::int64_t b)
    {
        GGA_ASSERT(old->capacity < (std::size_t{1} << 40),
                   "work-steal deque grew past 2^40 slots — runaway "
                   "producer");
        auto bigger = std::make_unique<Ring>(old->capacity * 2);
        for (std::int64_t i = t; i < b; ++i)
            bigger->put(i, old->get(i));
        Ring* fresh = bigger.get();
        rings_.push_back(std::move(bigger)); // retire the old ring alive
        ring_.store(fresh, std::memory_order_release);
        return fresh;
    }

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Ring*> ring_{nullptr};
    /** All rings ever allocated; owner-mutated only (push path), thieves
     *  go through ring_. Kept until destruction — see file comment. */
    std::vector<std::unique_ptr<Ring>> rings_;
};

} // namespace gga

#endif // GGA_SUPPORT_WORK_STEAL_DEQUE_HPP
