/**
 * @file
 * Minimal fork-join parallelism for deterministic data-parallel phases.
 *
 * Every parallel phase in GGA (CSR construction, graph synthesis) is
 * structured as disjoint index-addressed writes, so a plain fork-join
 * with no shared mutable state is all the machinery needed: thread
 * creation forks, join establishes the happens-before edge, and the
 * output is byte-identical at every thread count because the
 * decomposition is by fixed index ranges, never by thread id.
 */

#ifndef GGA_SUPPORT_PARALLEL_HPP
#define GGA_SUPPORT_PARALLEL_HPP

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace gga {

/**
 * Run fn(t) for t in [0, threads): threads-1 workers plus the calling
 * thread. fn must confine its writes to locations owned by t.
 */
template <typename Fn>
void
forkJoin(unsigned threads, const Fn& fn)
{
    if (threads <= 1) {
        fn(0);
        return;
    }
    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        workers.emplace_back([&fn, t] { fn(t); });
    fn(0);
    for (std::thread& w : workers)
        w.join();
}

/**
 * Run fn(i) for every i in [0, items), items statically striped across
 * `threads` workers in contiguous chunks. The chunk boundaries depend
 * only on (items, threads-independent indices): item i is always
 * processed, alone, with the same arguments — so any fn whose writes
 * are addressed by i produces thread-count-invariant output.
 */
template <typename Fn>
void
parallelFor(unsigned threads, std::size_t items, const Fn& fn)
{
    if (items == 0)
        return;
    const unsigned T = static_cast<unsigned>(
        std::min<std::size_t>(threads == 0 ? 1 : threads, items));
    forkJoin(T, [&](unsigned t) {
        const std::size_t begin = items * t / T;
        const std::size_t end = items * (t + 1) / T;
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
    });
}

} // namespace gga

#endif // GGA_SUPPORT_PARALLEL_HPP
