/**
 * @file
 * Aligned text-table and CSV emission for the table/figure harnesses.
 */

#ifndef GGA_SUPPORT_TABLE_HPP
#define GGA_SUPPORT_TABLE_HPP

#include <string>
#include <vector>

namespace gga {

/**
 * A simple row/column table that renders either as aligned monospace text
 * (for terminals) or CSV (for plotting scripts).
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append one data row; it may be shorter than the header. */
    void addRow(std::vector<std::string> row);

    /** Append a visual separator row (rendered as dashes in text mode). */
    void addSeparator();

    /** Render as aligned text with two-space gutters. */
    std::string toText() const;

    /** Render as RFC-4180-ish CSV (fields with commas/quotes are quoted). */
    std::string toCsv() const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision);

/** Format a percentage (0.37 -> "37.0%"). */
std::string fmtPct(double fraction, int precision = 1);

} // namespace gga

#endif // GGA_SUPPORT_TABLE_HPP
