/**
 * @file
 * Typed per-application functional outputs for the Plan/Session API.
 *
 * Each application publishes a dedicated result struct; a run returns the
 * matching alternative inside the AppOutput variant. This replaces the
 * eight raw output pointers of the legacy AppOutputs sink struct
 * (apps/app.hpp) with owned, type-safe values.
 */

#ifndef GGA_API_OUTPUTS_HPP
#define GGA_API_OUTPUTS_HPP

#include <cstdint>
#include <variant>
#include <vector>

namespace gga {

/** PageRank: final rank per vertex (sums to ~1). */
struct PrOutput
{
    bool operator==(const PrOutput&) const = default;
    std::vector<float> ranks;
};

/** SSSP: weighted distance from vertex 0 (UINT32_MAX = unreachable). */
struct SsspOutput
{
    bool operator==(const SsspOutput&) const = default;
    std::vector<std::uint32_t> dist;
};

/** Maximal independent set: per-vertex state (1 in set, 2 out). */
struct MisOutput
{
    bool operator==(const MisOutput&) const = default;
    std::vector<std::uint32_t> state;
};

/** Graph coloring: color index per vertex. */
struct ClrOutput
{
    bool operator==(const ClrOutput&) const = default;
    std::vector<std::uint32_t> colors;
};

/** Betweenness centrality pieces for source 0. */
struct BcOutput
{
    bool operator==(const BcOutput&) const = default;
    std::vector<double> delta;        ///< dependency accumulation
    std::vector<std::uint32_t> level; ///< BFS level (UINT32_MAX unreachable)
    std::vector<double> sigma;        ///< shortest-path counts
};

/** Connected components: representative label per vertex. */
struct CcOutput
{
    bool operator==(const CcOutput&) const = default;
    std::vector<std::uint32_t> labels;
};

/**
 * The functional output of one run. Holds std::monostate when output
 * collection was disabled (RunPlan::collectOutputs(false)).
 */
using AppOutput = std::variant<std::monostate, PrOutput, SsspOutput,
                               MisOutput, ClrOutput, BcOutput, CcOutput>;

} // namespace gga

#endif // GGA_API_OUTPUTS_HPP
