/**
 * @file
 * GraphStore: a thread-safe, process-wide cache of built input graphs —
 * synthetic presets keyed on (preset, scale) and MatrixMarket files keyed
 * on path — with explicit eviction, an optional LRU byte budget, and a
 * transparent on-disk snapshot cache.
 *
 * Replaces the non-thread-safe function-local cache that used to back
 * workloadGraph(): concurrent callers (e.g. the parallel design-space
 * sweep) may request graphs from any thread; the first requester builds,
 * everyone else blocks on the same build instead of duplicating it.
 * Entries are handed out as shared_ptr so eviction never invalidates a
 * graph an in-flight run is still using. Every entry — full-scale
 * presets included — is store-owned: nothing aliases the deprecated
 * presetGraph() memo any more, so the budget really bounds paper-sized
 * workers.
 *
 * The byte budget (setBudgetBytes / SessionOptions::graphBudgetBytes)
 * exists for sharded evaluation: N worker shards on one host must not
 * each hold every input graph. When the cached total exceeds the budget,
 * least-recently-used completed entries are dropped from the cache (their
 * outstanding handles stay valid; a later get() rebuilds).
 *
 * The snapshot cache (setCacheDir / SessionOptions::graphCacheDir /
 * GGA_GRAPH_CACHE) short-circuits preset synthesis entirely: get() first
 * tries the content-addressed .csrbin file for the requested (preset,
 * scale) — see graph/snapshot.hpp — and only synthesizes (then saves,
 * best-effort) on a miss. A corrupt or stale snapshot is rejected with a
 * loud warning and falls back to synthesis, so the cache can never
 * change results, only cold-start latency.
 */

#ifndef GGA_API_GRAPH_STORE_HPP
#define GGA_API_GRAPH_STORE_HPP

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "graph/presets.hpp"
#include "support/thread_annotations.hpp"

namespace gga {

class GraphStore
{
  public:
    using GraphPtr = std::shared_ptr<const CsrGraph>;

    /** Telemetry row for one cached entry. */
    struct EntryStats
    {
        std::string name;  ///< preset name ("RAJ") or file path
        double scale;      ///< 1.0 for file entries
        std::size_t bytes; ///< resident CSR bytes; 0 while in flight
    };

    /**
     * Lifetime counters plus a snapshot of the resident state. hits are
     * get()/getFile() calls served from the cache (including joins on an
     * in-flight build); misses are calls that started a build; evictions
     * count completed entries dropped for any reason — budget pressure,
     * explicit evict/evictFile, or clear(). Monotonic for the process.
     */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;       ///< cached or in-flight right now
        std::size_t residentBytes = 0; ///< == totalBytes()
        std::size_t budgetBytes = 0;   ///< 0 = unlimited
    };

    /** The process-wide store. */
    static GraphStore& instance();

    GraphStore() = default;
    GraphStore(const GraphStore&) = delete;
    GraphStore& operator=(const GraphStore&) = delete;

    /**
     * The preset graph at @p scale (1.0 = the paper-sized input), built
     * on first request and cached. Thread-safe; concurrent requests for
     * the same key share one deterministic build, and a failed build is
     * dropped from the cache so a later request retries. When a cache
     * directory is set, the build first tries the graph's .csrbin
     * snapshot and saves one after synthesizing. All entries, full-scale
     * included, are store-owned and budget-governed.
     */
    GraphPtr get(GraphPreset p, double scale = 1.0);

    /**
     * The MatrixMarket graph at @p path, loaded (with the library's
     * deterministic weights attached) on first request and cached by
     * path. Thread-safe with the same shared-build semantics as preset
     * entries. A malformed or missing file is fatal, matching
     * readMatrixMarketFile.
     */
    GraphPtr getFile(const std::string& path);

    /**
     * Drop the cached entry for (p, scale). Returns whether an entry was
     * present. Outstanding GraphPtr handles stay valid; the next get()
     * rebuilds (or reloads from the snapshot cache).
     */
    bool evict(GraphPreset p, double scale = 1.0);

    /** Drop the cached entry for @p path; same semantics as evict. */
    bool evictFile(const std::string& path);

    /** Drop every cached entry. */
    void clear();

    /** Number of cached (or in-flight) entries. */
    std::size_t size() const;

    /**
     * LRU capacity policy: keep the sum of cached graph bytes at or under
     * @p bytes by dropping least-recently-used completed entries
     * (in-flight builds are never dropped). 0 = unlimited (the default).
     * Applies immediately and to every later insertion. Every completed
     * entry — scaled preset, full-scale preset, or file graph — is
     * store-owned and charged against the budget; a budget smaller than
     * one graph still keeps the most recent entry resident.
     */
    void setBudgetBytes(std::size_t bytes);

    /** The current byte budget (0 = unlimited). */
    std::size_t budgetBytes() const;

    /**
     * Directory of .csrbin snapshots consulted (and written, best
     * effort) by preset builds. Empty (the default) disables the disk
     * cache. The directory must exist; files are content-addressed by
     * specContentHash, so snapshots from older generator versions are
     * ignored rather than wrongly loaded. Sharded workers pointed at one
     * shared, prebuilt directory (gga_graphs) skip synthesis entirely.
     */
    void setCacheDir(std::string dir);

    /** The current snapshot directory ("" = disabled). */
    std::string cacheDir() const;

    /**
     * Worker threads for graph builds (GraphBuilder::threads). 0 = the
     * defaultBuildThreads() environment default. Sessions set this to
     * their executor width; builds are bit-identical at any value.
     */
    void setBuildThreads(unsigned threads);

    /** Total bytes of completed cached entries. */
    std::size_t totalBytes() const;

    /** Per-entry telemetry, most recently used first. */
    std::vector<EntryStats> stats() const;

    /** Aggregate hit/miss/eviction counters and resident totals. */
    Counters counters() const;

    /**
     * The canonical cache key for @p scale: the value rounded to 1e-6.
     * Raw doubles make terrible keys — 0.3 from the environment and a
     * computed 0.1 + 0.2 differ in the last bits and would cache two
     * copies of the same graph. Builds use the quantized scale too, so
     * equal keys always mean bit-identical graphs.
     */
    static std::int64_t quantizeScale(double scale);

  private:
    /**
     * Preset entries use (preset, quantizeScale(scale)) with an empty
     * path; file entries use (Amz, full-scale) with the path set — the
     * path being nonempty is what distinguishes the two kinds, so the
     * preset fields of a file key are just tie-breakers.
     */
    struct Key
    {
        GraphPreset preset;
        std::int64_t scaleUnits; ///< micro-units, 1000000 = full size
        std::string path;        ///< empty for preset entries

        auto
        operator<=>(const Key& o) const
        {
            if (auto c = path <=> o.path; c != 0)
                return c;
            if (auto c = preset <=> o.preset; c != 0)
                return c;
            return scaleUnits <=> o.scaleUnits;
        }
    };

    struct Slot
    {
        std::shared_future<GraphPtr> future;
        std::size_t bytes = 0;    ///< known once the build completes
        std::uint64_t lastUse = 0; ///< LRU tick
        /**
         * Identity of the build that owns this slot. A builder only
         * accounts/erases a slot whose id it inserted — an evict/clear
         * racing the build may have replaced the slot with a new build's,
         * and completing against that one would double-count its bytes.
         */
        std::uint64_t id = 0;
        bool ready = false;
    };

    GraphPtr getOrBuild(const Key& key);
    /** Synthesize or snapshot-load the preset graph for @p key. */
    GraphPtr buildPreset(const Key& key, const std::string& cache_dir,
                         unsigned threads) const;
    /** Drop LRU completed entries until within budget. */
    void enforceBudgetLocked() GGA_REQUIRES(mu_);
    /** Drop the slot for @p key (if any), keeping byte/eviction
     *  accounting intact; returns whether an entry was present. */
    bool evictSlotLocked(const Key& key) GGA_REQUIRES(mu_);

    mutable Mutex mu_;
    std::map<Key, Slot> cache_ GGA_GUARDED_BY(mu_);
    std::uint64_t hits_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t misses_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t evictions_ GGA_GUARDED_BY(mu_) = 0;
    std::uint64_t useTick_ GGA_GUARDED_BY(mu_) = 0;
    std::size_t budgetBytes_ GGA_GUARDED_BY(mu_) = 0;
    std::size_t totalBytes_ GGA_GUARDED_BY(mu_) = 0;
    std::string cacheDir_ GGA_GUARDED_BY(mu_);
    unsigned buildThreads_ GGA_GUARDED_BY(mu_) = 0;
};

} // namespace gga

#endif // GGA_API_GRAPH_STORE_HPP
