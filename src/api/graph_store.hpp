/**
 * @file
 * GraphStore: a thread-safe, process-wide cache of built preset graphs,
 * keyed on (preset, scale), with explicit eviction.
 *
 * Replaces the non-thread-safe function-local cache that used to back
 * workloadGraph(): concurrent callers (e.g. the parallel design-space
 * sweep) may request graphs from any thread; the first requester builds,
 * everyone else blocks on the same build instead of duplicating it.
 * Entries are handed out as shared_ptr so eviction never invalidates a
 * graph an in-flight run is still using.
 */

#ifndef GGA_API_GRAPH_STORE_HPP
#define GGA_API_GRAPH_STORE_HPP

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "graph/csr.hpp"
#include "graph/presets.hpp"

namespace gga {

class GraphStore
{
  public:
    using GraphPtr = std::shared_ptr<const CsrGraph>;

    /** The process-wide store. */
    static GraphStore& instance();

    GraphStore() = default;
    GraphStore(const GraphStore&) = delete;
    GraphStore& operator=(const GraphStore&) = delete;

    /**
     * The preset graph at @p scale (1.0 = the paper-sized input), built on
     * first request and cached. Thread-safe; concurrent requests for the
     * same key share one deterministic build, and a failed build is
     * dropped from the cache so a later request retries. Full-scale
     * entries alias the presetGraph() memo (one copy process-wide).
     */
    GraphPtr get(GraphPreset p, double scale = 1.0);

    /**
     * Drop the cached entry for (p, scale). Returns whether an entry was
     * present. Outstanding GraphPtr handles stay valid; the next get()
     * rebuilds. For full-scale entries only the alias is dropped — the
     * underlying graph stays memoized in presetGraph().
     */
    bool evict(GraphPreset p, double scale = 1.0);

    /** Drop every cached entry. */
    void clear();

    /** Number of cached (or in-flight) entries. */
    std::size_t size() const;

    /**
     * The canonical cache key for @p scale: the value rounded to 1e-6.
     * Raw doubles make terrible keys — 0.3 from the environment and a
     * computed 0.1 + 0.2 differ in the last bits and would cache two
     * copies of the same graph. Builds use the quantized scale too, so
     * equal keys always mean bit-identical graphs.
     */
    static std::int64_t quantizeScale(double scale);

  private:
    /** (preset, quantizeScale(scale)); micro-units, 1000000 = full size. */
    using Key = std::pair<GraphPreset, std::int64_t>;

    mutable std::mutex mu_;
    std::map<Key, std::shared_future<GraphPtr>> cache_;
};

} // namespace gga

#endif // GGA_API_GRAPH_STORE_HPP
