/**
 * @file
 * The Plan/Session workload API: declarative per-run plans, validated
 * against the AppRegistry, executed through the thread-safe GraphStore.
 *
 *   Session session;
 *   RunOutcome out = session.run(RunPlan{}
 *                                    .app(AppId::Pr)
 *                                    .graph(GraphPreset::Raj)
 *                                    .scale(0.25)
 *                                    .config("SGR"));
 *   out.result.cycles;      // timing
 *   out.pr()->ranks;        // typed functional output
 *
 * This replaces the legacy free-function entry points (runPr, runSssp,
 * ..., runWorkload) and their raw-pointer AppOutputs sinks; those remain
 * as thin deprecated shims for parity testing.
 */

#ifndef GGA_API_SESSION_HPP
#define GGA_API_SESSION_HPP

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "api/graph_store.hpp"
#include "api/outputs.hpp"
#include "api/registry.hpp"
#include "api/task_pool.hpp"
#include "graph/presets.hpp"
#include "model/config.hpp"
#include "sim/params.hpp"

namespace gga {

/** Declarative description of one workload run (builder-style). */
class RunPlan
{
  public:
    RunPlan() = default;

    /** Which application to run (required). */
    RunPlan& app(AppId a);

    /** Run on a preset input, resolved through the session's GraphStore. */
    RunPlan& graph(GraphPreset p);

    /**
     * Run on a MatrixMarket file, loaded (and cached) through the
     * session's GraphStore. Scale does not apply to file inputs.
     */
    RunPlan& graphFile(std::string path);

    /** Run on a caller-owned graph (shared ownership). */
    RunPlan& graph(std::shared_ptr<const CsrGraph> g,
                   std::string label = "custom");

    /**
     * Run on a caller-owned graph without transferring ownership. The
     * graph must outlive the run.
     */
    RunPlan& graph(const CsrGraph& g, std::string label = "custom");

    /** Preset scale override in (0, 1]; defaults to the session's scale. */
    RunPlan& scale(double s);

    /** The design-space point to simulate (required). */
    RunPlan& config(const SystemConfig& c);

    /**
     * Parse a paper-style config name ("SGR"). A malformed name is a
     * validation error reported by Session::validate / tryRun, not a
     * fatal.
     */
    RunPlan& config(std::string_view name);

    /** Hardware-parameter override; defaults to the session's params. */
    RunPlan& params(const SimParams& p);

    /**
     * Seed for the app's deterministic RNG (MIS/CLR vertex priorities).
     * 0 (the default) reproduces the paper runs exactly; distinct seeds
     * yield distinct — but individually reproducible — runs. Apps without
     * stochastic choices ignore it.
     */
    RunPlan& seed(std::uint64_t s);

    /**
     * Collect the app's functional output. An explicit setting — true or
     * false — overrides the session's SessionOptions::collectOutputs
     * default; a plan that never calls this inherits it.
     */
    RunPlan& collectOutputs(bool on = true);

    /**
     * Executor lane for submit/submitAll (Lane::Interactive by default:
     * a directly-submitted plan is someone waiting on a result). Manifest
     * execution plans it to Lane::Batch. Irrelevant to synchronous run().
     */
    RunPlan& priority(Lane lane);

    // --- introspection (used by Session and tests) ---
    std::optional<AppId> plannedApp() const { return app_; }
    std::optional<GraphPreset> plannedPreset() const { return preset_; }
    const std::string& plannedFile() const { return file_; }
    const std::shared_ptr<const CsrGraph>& customGraph() const
    {
        return custom_;
    }
    const std::string& graphLabel() const { return graphLabel_; }
    std::optional<double> plannedScale() const { return scale_; }
    std::optional<SystemConfig> plannedConfig() const { return config_; }
    const std::string& badConfigName() const { return badConfigName_; }
    std::optional<SimParams> plannedParams() const { return params_; }
    std::uint64_t plannedSeed() const { return seed_; }
    /** nullopt = inherit the session default. */
    std::optional<bool> outputsRequested() const { return collectOutputs_; }
    Lane plannedPriority() const { return priority_; }

  private:
    std::optional<AppId> app_;
    std::optional<GraphPreset> preset_;
    std::string file_;
    std::shared_ptr<const CsrGraph> custom_;
    std::string graphLabel_;
    std::optional<double> scale_;
    std::optional<SystemConfig> config_;
    std::string badConfigName_;
    std::optional<SimParams> params_;
    std::uint64_t seed_ = 0;
    std::optional<bool> collectOutputs_;
    Lane priority_ = Lane::Interactive;
};

/** Everything one run produced: identity, timing, typed outputs. */
struct RunOutcome
{
    AppId app{};
    std::string appName;
    std::string graphName;
    SystemConfig config;
    RunResult result;
    AppOutput output; ///< monostate when collection was disabled

    /** Typed accessors; nullptr when this run produced something else. */
    const PrOutput* pr() const { return std::get_if<PrOutput>(&output); }
    const SsspOutput* sssp() const
    {
        return std::get_if<SsspOutput>(&output);
    }
    const MisOutput* mis() const { return std::get_if<MisOutput>(&output); }
    const ClrOutput* clr() const { return std::get_if<ClrOutput>(&output); }
    const BcOutput* bc() const { return std::get_if<BcOutput>(&output); }
    const CcOutput* cc() const { return std::get_if<CcOutput>(&output); }

    bool hasOutput() const
    {
        return !std::holds_alternative<std::monostate>(output);
    }

    /** "PR-RAJ @ SGR"-style label. */
    std::string name() const;
};

/** Session-wide defaults applied to plans that don't override them. */
struct SessionOptions
{
    double scale = 1.0;    ///< preset scale for plans without .scale()
    SimParams params;      ///< hardware parameters for plans without .params()
    bool collectOutputs = true;
    bool verboseRuns = false; ///< GGA_INFORM one line per run
    /**
     * Worker threads of the session's executor (Session::submit). 0 = the
     * GGA_SESSION_THREADS environment default — see
     * defaultSessionThreads(). The executor starts lazily on the first
     * submit, so purely synchronous sessions never spawn threads.
     */
    unsigned threads = 0;
    /**
     * Pin executor workers to CPUs (TaskPoolOptions::pinThreads). Unset =
     * the GGA_PIN_THREADS environment default.
     */
    std::optional<bool> pinThreads;
    /**
     * LRU byte budget applied to the shared GraphStore (see
     * GraphStore::setBudgetBytes). 0 = leave the store's current budget
     * untouched (the default). Nonzero values configure the process-wide
     * store at session construction — last writer wins — so N worker
     * shards on one host can bound how many input graphs stay resident.
     */
    std::size_t graphBudgetBytes = 0;
    /**
     * Snapshot cache directory applied to the shared GraphStore (see
     * GraphStore::setCacheDir): preset graphs load from prebuilt .csrbin
     * files instead of re-synthesizing, and newly built graphs are saved
     * back. Empty = the GGA_GRAPH_CACHE environment default (and when
     * that is unset too, leave the store's current directory untouched).
     * Like the budget, configured at session construction, last writer
     * wins.
     */
    std::string graphCacheDir;
};

/** GGA_GRAPH_CACHE environment value, or "" when unset. */
std::string defaultGraphCacheDir();

/**
 * GGA_SESSION_THREADS environment value; falls back to the deprecated
 * GGA_SWEEP_THREADS (with a one-time warning) and then to 1.
 */
unsigned defaultSessionThreads();

/** What Session::submit's future throws for a plan that fails validate(). */
class PlanError : public std::runtime_error
{
  public:
    explicit PlanError(const std::string& why)
        : std::runtime_error("invalid run plan: " + why)
    {
    }
};

/**
 * Facade over the registry, the graph store, and the simulator: validates
 * RunPlans and executes them, synchronously (run/tryRun) or on the
 * session's fixed-size executor (submit/submitAll). Stateless between
 * runs apart from the shared GraphStore and the lazily-started TaskPool;
 * one Session may serve many threads concurrently.
 */
class Session
{
  public:
    explicit Session(SessionOptions opts = {});

    const SessionOptions& options() const { return opts_; }
    const AppRegistry& registry() const;
    GraphStore& graphs() const;

    /**
     * Why @p plan cannot run — missing app/graph/config, malformed config
     * name, or an app x config mismatch — or nullopt when it is valid.
     */
    std::optional<std::string> validate(const RunPlan& plan) const;

    /**
     * Run @p plan; returns nullopt (and the reason via @p error) instead
     * of aborting when the plan is invalid.
     */
    std::optional<RunOutcome> tryRun(const RunPlan& plan,
                                     std::string* error = nullptr);

    /** Run @p plan; fatal on an invalid plan. */
    RunOutcome run(const RunPlan& plan);

    /**
     * Execute @p plan asynchronously on the session executor. An invalid
     * plan is reported as a PlanError thrown from future::get() — never a
     * fatal — so one bad plan in a batch doesn't take the process down.
     * The Session must outlive the returned future's completion (the
     * destructor drains the executor, so outstanding futures always
     * complete).
     */
    std::future<RunOutcome> submit(RunPlan plan);

    /**
     * Submit a batch; futures are returned in plan order, so gathering
     * them in order yields results bit-identical to a serial run() loop.
     * Goes through TaskPool::postAll per lane, so the units fan out over
     * the workers' stealing deques instead of the shared injection queue.
     */
    std::vector<std::future<RunOutcome>> submitAll(std::vector<RunPlan> plans);

    /**
     * Executor width: the running TaskPool's actual width once the
     * executor has started, else the resolved request (opts().threads or
     * the environment default).
     */
    unsigned threads() const;

    /** The shared executor, started on first use. */
    TaskPool& executor();

    /**
     * Telemetry for resident services: tasks posted to the executor but
     * not yet started, and tasks currently running. Zero before the
     * executor's lazy start (queue depth of a pool that doesn't exist).
     */
    std::size_t queueDepth() const;
    unsigned runningTasks() const;

    /** Tasks the executor has finished since it started (monotonic). */
    std::uint64_t completedTasks() const;

    /** Scheduler telemetry; zero-valued before the executor's lazy start. */
    TaskPool::Stats executorStats() const;

  private:
    // Lock-free by design: opts_ is immutable after construction, and
    // the lazily-started executor is published with std::call_once plus
    // release/acquire atomics — poolStarted_ orders pool_'s construction
    // before any telemetry reader dereferences it. No mutex, so nothing
    // here is GUARDED_BY; the annotated classes live one layer down
    // (TaskPool, GraphStore).
    SessionOptions opts_;
    std::once_flag poolOnce_;
    std::unique_ptr<TaskPool> pool_;
    std::atomic<unsigned> actualThreads_{0}; ///< pool width once started
    /** Set (release) after pool_ is constructed; lets const telemetry
     *  readers check for the pool without racing the lazy start. */
    std::atomic<bool> poolStarted_{false};
};

} // namespace gga

#endif // GGA_API_SESSION_HPP
