/**
 * @file
 * AppRegistry: the queryable table of applications behind the Plan/Session
 * API.
 *
 * Each application translation unit (src/apps/<app>.cpp) self-registers a
 * complete entry — its typed runner, its legacy sink-based runner, its
 * AlgoProperties, and its valid-configuration predicate — via a
 * registerXxxApp hook. The registry replaces the hardcoded switch dispatch
 * and the fatal-on-invalid-config check that used to live in runWorkload
 * with a table that callers can enumerate, query, and extend.
 */

#ifndef GGA_API_REGISTRY_HPP
#define GGA_API_REGISTRY_HPP

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "api/outputs.hpp"
#include "apps/app.hpp"
#include "graph/csr.hpp"
#include "model/algo_props.hpp"
#include "model/config.hpp"
#include "sim/params.hpp"

namespace gga {

class AppRegistry
{
  public:
    /**
     * Typed runner: fills @p out (when non-null) with the app's output.
     * The std::uint64_t is the run's RNG seed (see RunPlan::seed); apps
     * without stochastic choices ignore it, and seed 0 must reproduce
     * the paper runs exactly (the determinism goldens pin this).
     */
    using RunnerFn = std::function<RunResult(
        const CsrGraph&, const SystemConfig&, const SimParams&,
        std::uint64_t, AppOutput*)>;

    /** Legacy runner with raw-pointer sinks (kept for parity shims). */
    using LegacyRunnerFn = std::function<RunResult(
        const CsrGraph&, const SystemConfig&, const SimParams&, AppOutputs*)>;

    /** Is @p cfg's update-propagation dimension valid for this app? */
    using ConfigPredicate = std::function<bool(const SystemConfig&)>;

    /** One registered application. */
    struct Entry
    {
        AppId id{};
        std::string name;              ///< short uppercase name ("PR", ...)
        AlgoProperties properties;     ///< paper Table III row
        std::string configRequirement; ///< human-readable predicate summary
        /**
         * The app's default hardware point: the SimParams an evaluation
         * work unit without an explicit params override runs under. All
         * built-in apps register the paper's Table IV system; the field
         * is the seam for per-app tuned presets (e.g. a wider relaxed-
         * atomic window for atomic-heavy apps) without touching callers.
         */
        SimParams params;
        RunnerFn run;
        LegacyRunnerFn runLegacy;
        ConfigPredicate validConfig;
    };

    /** The process-wide registry with all built-in apps registered. */
    static const AppRegistry& instance();

    /** Add an entry (later registrations of the same id are rejected). */
    void add(Entry entry);

    /** Entry for @p app, or nullptr if not registered. */
    const Entry* find(AppId app) const;

    /** Entry for @p app; fatal if not registered. */
    const Entry& at(AppId app) const;

    /** Entry whose name matches @p name (case-sensitive), or nullptr. */
    const Entry* findByName(std::string_view name) const;

    /** All entries, in registration order. */
    const std::vector<Entry>& entries() const { return entries_; }

    std::size_t size() const { return entries_.size(); }

    /**
     * Configurations from @p candidates that @p app accepts — the
     * registry-backed replacement for hand-filtering allConfigs().
     */
    std::vector<SystemConfig>
    validConfigs(AppId app, const std::vector<SystemConfig>& candidates) const;

  private:
    std::vector<Entry> entries_;
};

/**
 * Self-registration hooks, one per application translation unit. Each app
 * defines its own entry (runner adapters, properties, config predicate)
 * next to its kernels; the registry singleton invokes these once.
 */
void registerPrApp(AppRegistry& reg);
void registerSsspApp(AppRegistry& reg);
void registerMisApp(AppRegistry& reg);
void registerClrApp(AppRegistry& reg);
void registerBcApp(AppRegistry& reg);
void registerCcApp(AppRegistry& reg);

} // namespace gga

#endif // GGA_API_REGISTRY_HPP
