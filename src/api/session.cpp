#include "api/session.hpp"

#include <cstdlib>
#include <utility>

#include "support/log.hpp"

namespace gga {

unsigned
defaultSessionThreads()
{
    static const unsigned threads = [] {
        const char* env = std::getenv("GGA_SESSION_THREADS");
        if (!env) {
            env = std::getenv("GGA_SWEEP_THREADS");
            if (!env)
                return 1u;
            GGA_WARN("GGA_SWEEP_THREADS is deprecated; set "
                     "GGA_SESSION_THREADS (or SessionOptions::threads) "
                     "instead");
        }
        const long t = std::atol(env);
        if (t < 1) {
            GGA_WARN("session thread count '", env,
                     "' is invalid; using 1");
            return 1u;
        }
        return static_cast<unsigned>(t);
    }();
    return threads;
}

RunPlan&
RunPlan::app(AppId a)
{
    app_ = a;
    return *this;
}

RunPlan&
RunPlan::graph(GraphPreset p)
{
    preset_ = p;
    file_.clear();
    custom_.reset();
    graphLabel_.clear();
    return *this;
}

RunPlan&
RunPlan::graphFile(std::string path)
{
    file_ = std::move(path);
    preset_.reset();
    custom_.reset();
    graphLabel_.clear();
    return *this;
}

RunPlan&
RunPlan::graph(std::shared_ptr<const CsrGraph> g, std::string label)
{
    custom_ = std::move(g);
    preset_.reset();
    file_.clear();
    graphLabel_ = std::move(label);
    return *this;
}

RunPlan&
RunPlan::graph(const CsrGraph& g, std::string label)
{
    // Non-owning handle: the caller guarantees the graph outlives the run.
    return graph(std::shared_ptr<const CsrGraph>(&g, [](const CsrGraph*) {}),
                 std::move(label));
}

RunPlan&
RunPlan::scale(double s)
{
    scale_ = s;
    return *this;
}

RunPlan&
RunPlan::config(const SystemConfig& c)
{
    config_ = c;
    badConfigName_.clear();
    return *this;
}

RunPlan&
RunPlan::config(std::string_view name)
{
    const std::optional<SystemConfig> parsed = tryParseConfig(name);
    if (parsed) {
        config_ = *parsed;
        badConfigName_.clear();
    } else {
        config_.reset();
        badConfigName_ = std::string(name);
    }
    return *this;
}

RunPlan&
RunPlan::params(const SimParams& p)
{
    params_ = p;
    return *this;
}

RunPlan&
RunPlan::seed(std::uint64_t s)
{
    seed_ = s;
    return *this;
}

RunPlan&
RunPlan::collectOutputs(bool on)
{
    collectOutputs_ = on;
    return *this;
}

RunPlan&
RunPlan::priority(Lane lane)
{
    priority_ = lane;
    return *this;
}

std::string
RunOutcome::name() const
{
    return appName + "-" + graphName + " @ " + config.name();
}

std::string
defaultGraphCacheDir()
{
    const char* env = std::getenv("GGA_GRAPH_CACHE");
    return env ? std::string(env) : std::string{};
}

Session::Session(SessionOptions opts) : opts_(std::move(opts))
{
    GGA_ASSERT(opts_.scale > 0.0 && opts_.scale <= 1.0,
               "session scale must be in (0, 1], got ", opts_.scale);
    if (opts_.graphBudgetBytes != 0)
        graphs().setBudgetBytes(opts_.graphBudgetBytes);
    const std::string cache_dir = opts_.graphCacheDir.empty()
                                      ? defaultGraphCacheDir()
                                      : opts_.graphCacheDir;
    if (!cache_dir.empty())
        graphs().setCacheDir(cache_dir);
    // Give graph builds the executor's width: a cold-start worker spends
    // its first seconds building inputs, and those builds are
    // bit-identical at any thread count.
    graphs().setBuildThreads(opts_.threads == 0 ? defaultSessionThreads()
                                                : opts_.threads);
}

const AppRegistry&
Session::registry() const
{
    return AppRegistry::instance();
}

GraphStore&
Session::graphs() const
{
    return GraphStore::instance();
}

std::optional<std::string>
Session::validate(const RunPlan& plan) const
{
    if (!plan.plannedApp())
        return "plan has no application (RunPlan::app)";
    const AppRegistry::Entry* entry = registry().find(*plan.plannedApp());
    if (!entry)
        return "application " +
               std::to_string(static_cast<int>(*plan.plannedApp())) +
               " is not registered";
    if (!plan.plannedPreset() && plan.plannedFile().empty() &&
        !plan.customGraph())
        return "plan has no input graph (RunPlan::graph / graphFile)";
    if (plan.plannedScale() &&
        (*plan.plannedScale() <= 0.0 || *plan.plannedScale() > 1.0))
        return "plan scale must be in (0, 1]";
    if (plan.plannedScale() && !plan.plannedPreset())
        return "plan scale applies to preset inputs only";
    if (!plan.badConfigName().empty())
        return "malformed configuration name '" + plan.badConfigName() + "'";
    if (!plan.plannedConfig())
        return "plan has no configuration (RunPlan::config)";
    if (!entry->validConfig(*plan.plannedConfig()))
        return entry->name + " " + entry->configRequirement + ", got " +
               plan.plannedConfig()->name();
    return std::nullopt;
}

std::optional<RunOutcome>
Session::tryRun(const RunPlan& plan, std::string* error)
{
    if (const std::optional<std::string> why = validate(plan)) {
        if (error)
            *error = *why;
        return std::nullopt;
    }
    const AppRegistry::Entry& entry = registry().at(*plan.plannedApp());

    GraphStore::GraphPtr graph = plan.customGraph();
    std::string graph_name = plan.graphLabel();
    if (!graph && !plan.plannedFile().empty()) {
        graph = graphs().getFile(plan.plannedFile());
        graph_name = plan.plannedFile();
    } else if (!graph) {
        const double scale = plan.plannedScale().value_or(opts_.scale);
        graph = graphs().get(*plan.plannedPreset(), scale);
        graph_name = presetName(*plan.plannedPreset());
    }

    RunOutcome out;
    out.app = entry.id;
    out.appName = entry.name;
    out.graphName = std::move(graph_name);
    out.config = *plan.plannedConfig();
    const SimParams params = plan.plannedParams().value_or(opts_.params);
    // An explicit per-plan collectOutputs wins over the session default.
    const bool collect =
        plan.outputsRequested().value_or(opts_.collectOutputs);
    if (opts_.verboseRuns)
        GGA_INFORM("session: running ", out.appName, "-", out.graphName,
                   " on ", out.config.name());
    out.result = entry.run(*graph, out.config, params, plan.plannedSeed(),
                           collect ? &out.output : nullptr);
    return out;
}

RunOutcome
Session::run(const RunPlan& plan)
{
    std::string error;
    std::optional<RunOutcome> out = tryRun(plan, &error);
    if (!out)
        GGA_FATAL("invalid run plan: ", error);
    return std::move(*out);
}

unsigned
Session::threads() const
{
    // Once the executor exists, report its real width (the TaskPool may
    // clamp or fall short of the request); before that, the request.
    const unsigned actual = actualThreads_.load(std::memory_order_acquire);
    if (actual != 0)
        return actual;
    return opts_.threads == 0 ? defaultSessionThreads() : opts_.threads;
}

TaskPool&
Session::executor()
{
    std::call_once(poolOnce_, [this] {
        pool_ = std::make_unique<TaskPool>(
            TaskPoolOptions{threads(), opts_.pinThreads});
        actualThreads_.store(pool_->width(), std::memory_order_release);
        poolStarted_.store(true, std::memory_order_release);
    });
    return *pool_;
}

std::size_t
Session::queueDepth() const
{
    if (!poolStarted_.load(std::memory_order_acquire))
        return 0;
    return pool_->pending();
}

unsigned
Session::runningTasks() const
{
    if (!poolStarted_.load(std::memory_order_acquire))
        return 0;
    return pool_->active();
}

std::uint64_t
Session::completedTasks() const
{
    if (!poolStarted_.load(std::memory_order_acquire))
        return 0;
    return pool_->completedTotal();
}

std::future<RunOutcome>
Session::submit(RunPlan plan)
{
    const Lane lane = plan.plannedPriority();
    return executor().submit(
        [this, plan = std::move(plan)]() -> RunOutcome {
            std::string error;
            std::optional<RunOutcome> out = tryRun(plan, &error);
            if (!out)
                throw PlanError(error);
            return std::move(*out);
        },
        lane);
}

std::vector<std::future<RunOutcome>>
Session::submitAll(std::vector<RunPlan> plans)
{
    // Batch per lane through postAll: one expander task per lane fans the
    // plans out across the workers' stealing deques, so the shared
    // injection lock is touched twice, not once per plan.
    std::vector<std::future<RunOutcome>> futures;
    futures.reserve(plans.size());
    std::vector<TaskPool::Task> lanes[kLaneCount];
    for (RunPlan& plan : plans) {
        const unsigned lane = static_cast<unsigned>(plan.plannedPriority());
        TaskPool::Task task;
        futures.push_back(TaskPool::package(
            [this, plan = std::move(plan)]() -> RunOutcome {
                std::string error;
                std::optional<RunOutcome> out = tryRun(plan, &error);
                if (!out)
                    throw PlanError(error);
                return std::move(*out);
            },
            task));
        lanes[lane].push_back(std::move(task));
    }
    executor().postAll(std::move(lanes[0]), Lane::Interactive);
    executor().postAll(std::move(lanes[1]), Lane::Batch);
    return futures;
}

TaskPool::Stats
Session::executorStats() const
{
    if (!poolStarted_.load(std::memory_order_acquire))
        return {};
    return pool_->stats();
}

} // namespace gga
