#include "api/registry.hpp"

#include "support/log.hpp"

namespace gga {

const AppRegistry&
AppRegistry::instance()
{
    static const AppRegistry reg = [] {
        AppRegistry r;
        registerPrApp(r);
        registerSsspApp(r);
        registerMisApp(r);
        registerClrApp(r);
        registerBcApp(r);
        registerCcApp(r);
        return r;
    }();
    return reg;
}

void
AppRegistry::add(Entry entry)
{
    GGA_ASSERT(entry.run && entry.runLegacy && entry.validConfig,
               "incomplete registry entry for ", entry.name);
    GGA_ASSERT(find(entry.id) == nullptr,
               "duplicate registration for ", entry.name);
    entries_.push_back(std::move(entry));
}

const AppRegistry::Entry*
AppRegistry::find(AppId app) const
{
    for (const Entry& e : entries_) {
        if (e.id == app)
            return &e;
    }
    return nullptr;
}

const AppRegistry::Entry&
AppRegistry::at(AppId app) const
{
    const Entry* e = find(app);
    if (!e)
        GGA_FATAL("application ", static_cast<int>(app),
                  " is not registered");
    return *e;
}

const AppRegistry::Entry*
AppRegistry::findByName(std::string_view name) const
{
    for (const Entry& e : entries_) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

std::vector<SystemConfig>
AppRegistry::validConfigs(AppId app,
                          const std::vector<SystemConfig>& candidates) const
{
    const Entry& e = at(app);
    std::vector<SystemConfig> out;
    for (const SystemConfig& cfg : candidates) {
        if (e.validConfig(cfg))
            out.push_back(cfg);
    }
    return out;
}

} // namespace gga
