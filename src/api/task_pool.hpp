/**
 * @file
 * TaskPool: the fixed-size executor behind Session::submit.
 *
 * A deliberately simple pool — one shared FIFO queue, N worker threads,
 * no work stealing — because every task it carries (a whole-workload
 * simulation) runs for milliseconds to minutes, so queue contention is
 * negligible and FIFO order keeps scheduling easy to reason about.
 * Submission order is preserved per queue; results are deterministic
 * because each task slot is independent of scheduling.
 *
 * Destruction drains the queue: tasks already posted run to completion
 * before the workers join, so futures handed out by submit() never
 * become broken promises.
 */

#ifndef GGA_API_TASK_POOL_HPP
#define GGA_API_TASK_POOL_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/thread_annotations.hpp"

namespace gga {

class TaskPool
{
  public:
    /**
     * Start @p threads workers, clamped to [1, 512] (with a warning
     * above the cap). If the system runs out of thread resources
     * mid-spawn the pool continues at the width it reached; only a pool
     * that cannot spawn a single worker throws.
     */
    explicit TaskPool(unsigned threads);

    /** Drains every posted task, then joins the workers. */
    ~TaskPool();

    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    /** Number of worker threads. */
    unsigned width() const { return static_cast<unsigned>(workers_.size()); }

    /** Tasks posted but not yet picked up by a worker (queue depth). */
    std::size_t pending() const;

    /** Tasks currently executing on a worker. */
    unsigned active() const;

    /** Tasks finished since construction (monotonic). */
    std::uint64_t completedTotal() const;

    /** Enqueue fire-and-forget work. */
    void post(std::function<void()> job);

    /**
     * Enqueue @p fn and get a future for its result. An exception thrown
     * by @p fn is captured and rethrown from future::get().
     */
    template <typename Fn>
    auto
    submit(Fn fn) -> std::future<std::invoke_result_t<Fn&>>
    {
        using R = std::invoke_result_t<Fn&>;
        // shared_ptr because std::function requires copyable callables
        // and packaged_task is move-only.
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> result = task->get_future();
        post([task] { (*task)(); });
        return result;
    }

  private:
    void workerLoop();
    /** Pop the next job; empty once stopping_ with a drained queue. */
    std::function<void()> nextJob();

    mutable Mutex mu_;
    CondVar cv_;
    std::deque<std::function<void()>> queue_ GGA_GUARDED_BY(mu_);
    bool stopping_ GGA_GUARDED_BY(mu_) = false;
    /** Only mutated in the constructor, before and after the spawn loop
     *  runs — never while workers can observe it. */
    std::vector<std::thread> workers_;
    std::atomic<unsigned> active_{0};
    std::atomic<std::uint64_t> completed_{0};
};

} // namespace gga

#endif // GGA_API_TASK_POOL_HPP
