/**
 * @file
 * TaskPool: the work-stealing, priority-aware executor behind
 * Session::submit and every gga_serve job.
 *
 * Two priority lanes — Interactive and Batch — where dequeue order
 * always prefers interactive work: a resident server mixing small
 * single-plan jobs with paper-sized manifest sweeps no longer
 * head-of-line-blocks the small ones. Within a lane:
 *
 *  - Single tasks (post/submit) land in a mutex-guarded global
 *    injection queue, FIFO per lane.
 *  - Batches (postAll) enqueue ONE expander task; the worker that picks
 *    it up pushes every unit into its own lock-free Chase–Lev deque
 *    (support/work_steal_deque.hpp) — the legal owner-side push — and
 *    idle siblings steal from it with randomized victim selection
 *    (SplitRng; gga_lint bans rand()). The shared lock is thus touched
 *    once per batch, not once per unit, and the per-unit hot path is
 *    lock-free.
 *
 * A worker's dequeue priority: own interactive deque, injected
 * interactive, stolen interactive, then the same three for batch.
 * Results stay byte-identical regardless of scheduling order because
 * determinism lives in the task, never the schedule — the fault site
 * "pool.yield" (GGA_FAULTS) perturbs interleavings on demand so tests
 * can prove it.
 *
 * Queue elements are move-only InlineFunction callables, so submit()
 * stores its packaged_task inline instead of wrapping it in a
 * shared_ptr for std::function's copyability rule — one heap allocation
 * per task on the submit path, not two.
 *
 * Optional CPU-affinity pinning (TaskPoolOptions::pinThreads or
 * GGA_PIN_THREADS=1): worker i pins to core i mod N via
 * pthread_setaffinity_np on Linux, a graceful no-op elsewhere — the
 * first step of the ROADMAP NUMA item.
 *
 * Destruction drains both lanes: tasks already posted run to completion
 * before the workers join, so futures handed out by submit() never
 * become broken promises.
 */

#ifndef GGA_API_TASK_POOL_HPP
#define GGA_API_TASK_POOL_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/inline_function.hpp"
#include "support/rng.hpp"
#include "support/thread_annotations.hpp"
#include "support/work_steal_deque.hpp"

namespace gga {

/** Scheduling priority of one task. Interactive always dequeues first. */
enum class Lane : unsigned char
{
    Interactive = 0,
    Batch = 1,
};

inline constexpr unsigned kLaneCount = 2;

/** "interactive" / "batch". */
const char* laneName(Lane lane);

/** Parse a lane name; nullopt on anything else. */
std::optional<Lane> parseLane(std::string_view name);

/** TaskPool construction knobs (see also the legacy width-only ctor). */
struct TaskPoolOptions
{
    /** Worker count, clamped to [1, 512]. */
    unsigned threads = 1;
    /**
     * Pin worker i to CPU i mod hardware_concurrency
     * (pthread_setaffinity_np). Defaulted from GGA_PIN_THREADS ("1"/"0")
     * when unset here; a platform without thread affinity warns once and
     * runs unpinned.
     */
    std::optional<bool> pinThreads;
    /**
     * Nice delta applied to a worker for the duration of each BATCH-lane
     * task, so that when every CPU is busy, the kernel's own scheduler
     * keeps favoring interactive tasks that lane priority alone cannot
     * preempt. 0 disables. Applied only where it is reversible (root or
     * a sufficient RLIMIT_NICE — an unprivileged thread can lower its
     * priority but not restore it); elsewhere the pool silently runs
     * un-niced, so the knob is safe to leave on everywhere.
     */
    int batchNice = 10;
};

/** GGA_PIN_THREADS environment value; false when unset. */
bool defaultPinThreads();

class TaskPool
{
  public:
    /**
     * The queue element: move-only, 64 inline bytes — enough for a
     * packaged_task handle or a unique_ptr to a heavier context, by
     * design not enough for a careless by-value capture of a RunPlan.
     */
    using Task = InlineFunction<void(), 64>;

    /** Executor telemetry for /stats. */
    struct Stats
    {
        std::size_t interactiveDepth = 0; ///< queued, interactive lane
        std::size_t batchDepth = 0;       ///< queued, batch lane
        std::uint64_t stealsTotal = 0;    ///< successful steals
        std::uint64_t stealFailures = 0;  ///< CAS-race aborts while stealing
        bool pinned = false; ///< pinning requested and every worker pinned
        bool batchNiced = false; ///< batch tasks run at a higher nice
    };

    explicit TaskPool(TaskPoolOptions opts);

    /**
     * Start @p threads workers, clamped to [1, 512] (with a warning
     * above the cap). If the system runs out of thread resources
     * mid-spawn the pool continues at the width it reached; only a pool
     * that cannot spawn a single worker throws.
     */
    explicit TaskPool(unsigned threads)
        : TaskPool(TaskPoolOptions{threads, std::nullopt})
    {
    }

    /** Drains every posted task, then joins the workers. */
    ~TaskPool();

    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    /** Number of running worker threads. */
    unsigned width() const { return spawned_; }

    /** Tasks posted but not yet picked up by a worker, both lanes. */
    std::size_t pending() const;

    /** Tasks posted but not yet picked up, one lane. */
    std::size_t pending(Lane lane) const;

    /** Tasks currently executing on a worker. */
    unsigned active() const;

    /** Tasks finished since construction (monotonic). */
    std::uint64_t completedTotal() const;

    /** Point-in-time executor telemetry. */
    Stats stats() const;

    /** Enqueue fire-and-forget work on @p lane. */
    void post(Task job, Lane lane = Lane::Batch);

    /**
     * Enqueue a batch on @p lane through one expander task: the worker
     * that dequeues it owner-pushes every element into its Chase–Lev
     * deque, and idle workers steal. Order of execution is unspecified
     * (tasks must be independent, as every simulation task is); the
     * batch counts toward pending() immediately.
     */
    void postAll(std::vector<Task> jobs, Lane lane);

    /**
     * Enqueue @p fn on @p lane and get a future for its result. An
     * exception thrown by @p fn is captured and rethrown from
     * future::get().
     */
    template <typename Fn>
    auto
    submit(Fn fn, Lane lane = Lane::Interactive)
        -> std::future<std::invoke_result_t<Fn&>>
    {
        using R = std::invoke_result_t<Fn&>;
        std::packaged_task<R()> task(std::move(fn));
        std::future<R> result = task.get_future();
        // The task handle (a control-block pointer) moves into the
        // queue element's inline storage — no shared_ptr wrapper.
        post(Task([job = std::move(task)]() mutable { job(); }), lane);
        return result;
    }

    /**
     * Wrap a callable into a queue element without posting it — the
     * helper Session::submitAll uses to build postAll batches that
     * carry futures.
     */
    template <typename Fn>
    static auto
    package(Fn fn, Task& out) -> std::future<std::invoke_result_t<Fn&>>
    {
        using R = std::invoke_result_t<Fn&>;
        std::packaged_task<R()> task(std::move(fn));
        std::future<R> result = task.get_future();
        out = Task([job = std::move(task)]() mutable { job(); });
        return result;
    }

  private:
    struct Worker
    {
        explicit Worker(unsigned idx)
            : index(idx), rng(0x9e3779b97f4a7c15ull, idx)
        {
        }
        unsigned index;
        /** One owner deque per lane; elements are heap Task nodes. */
        WorkStealDeque<Task*> deq[kLaneCount];
        SplitRng rng; ///< victim randomization; worker-thread only
        std::thread thread;
    };

    void workerLoop(Worker& self);
    /** One dequeue attempt across all sources; true if a task ran. */
    bool runOne(Worker& self);
    /** Take from one lane: own deque, injection, expanders, then steal. */
    bool takeFromLane(Worker& self, Lane lane, Task& out);
    bool takeInjected(Lane lane, Task& out);
    /** Claim a pending batch and owner-push it into @p self's deque. */
    bool takeExpander(Worker& self, Lane lane);
    bool stealFromSiblings(Worker& self, Lane lane, Task& out);
    void execute(Task task, Lane lane);
    /** Bump the work-visible version and wake @p everyone or one. */
    void announce(bool everyone);
    void pinSelf(unsigned index);

    mutable Mutex mu_;
    CondVar cv_;
    /** Per-lane injection queues for single (non-batch) tasks. */
    std::deque<Task> injected_[kLaneCount] GGA_GUARDED_BY(mu_);
    /**
     * Batches posted by postAll, waiting for a worker to unpack them
     * into its own deque (the Chase–Lev owner-push). Stored whole: the
     * injection lock is taken once per batch, not once per unit.
     */
    std::deque<std::vector<Task>> expanders_[kLaneCount]
        GGA_GUARDED_BY(mu_);
    bool stopping_ GGA_GUARDED_BY(mu_) = false;
    /**
     * Bumped (under mu_) every time work becomes visible anywhere —
     * injection, expansion, or a steal that left the victim non-empty.
     * Workers sleep only when the version they scanned at is still
     * current, so a push between "scan found nothing" and "wait" can
     * never be lost.
     */
    std::uint64_t version_ GGA_GUARDED_BY(mu_) = 0;
    /** Only mutated in the constructor, before and after the spawn loop
     *  runs — never while workers can observe it. unique_ptr: deque
     *  addresses must be stable for thieves. May hold more entries than
     *  spawned threads after a mid-spawn resource failure; the threadless
     *  tail just owns forever-empty deques. */
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Threads actually running (<= workers_.size(); see above). */
    unsigned spawned_ = 0;
    bool pinThreads_ = false;
    /** batchNice when adjustment is available and reversible, else 0. */
    int batchNice_ = 0;
    /**
     * Tasks enqueued anywhere (injection, expander, expanded units) and
     * not yet finished. The drain condition: workers exit only once
     * stopping_ and this reaches zero, so postAll batches still inside
     * an expander can never be dropped at shutdown.
     */
    std::atomic<std::uint64_t> outstanding_{0};
    std::atomic<unsigned> active_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> stealFailures_{0};
    std::atomic<unsigned> pinnedWorkers_{0};
};

} // namespace gga

#endif // GGA_API_TASK_POOL_HPP
