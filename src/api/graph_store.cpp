#include "api/graph_store.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <utility>

#include "graph/mtx_io.hpp"
#include "graph/snapshot.hpp"
#include "support/log.hpp"

namespace gga {

constexpr std::int64_t kScaleUnits = 1000000; // 1.0 in micro-units

GraphStore&
GraphStore::instance()
{
    static GraphStore store;
    return store;
}

std::int64_t
GraphStore::quantizeScale(double scale)
{
    return std::llround(scale * static_cast<double>(kScaleUnits));
}

GraphStore::GraphPtr
GraphStore::get(GraphPreset p, double scale)
{
    GGA_ASSERT(scale > 0.0 && scale <= 1.0,
               "GraphStore scale must be in (0, 1], got ", scale);
    const Key key{p, quantizeScale(scale), {}};
    GGA_ASSERT(key.scaleUnits > 0, "scale ", scale, " quantizes to zero; "
               "the minimum representable scale is 5e-7");
    return getOrBuild(key);
}

GraphStore::GraphPtr
GraphStore::getFile(const std::string& path)
{
    GGA_ASSERT(!path.empty(), "GraphStore file path must not be empty");
    return getOrBuild(Key{GraphPreset::Amz, kScaleUnits, path});
}

GraphStore::GraphPtr
GraphStore::buildPreset(const Key& key, const std::string& cache_dir,
                        unsigned threads) const
{
    // Build at the quantized scale, not the raw argument, so every
    // double mapping to this key yields the same graph.
    const double scale = static_cast<double>(key.scaleUnits) /
                         static_cast<double>(kScaleUnits);
    const GenSpec spec = presetSpecScaled(key.preset, scale);
    const std::string snap_path =
        cache_dir.empty()
            ? std::string{}
            : cache_dir + "/" +
                  csrSnapshotFileName(presetName(key.preset),
                                      key.scaleUnits,
                                      specContentHash(spec));
    if (!snap_path.empty() && std::ifstream(snap_path).good()) {
        try {
            return std::make_shared<const CsrGraph>(
                loadCsrSnapshot(snap_path));
        } catch (const SnapshotError& err) {
            // The file exists but won't load — damaged or torn. Say so
            // loudly, fall back to synthesis, and overwrite it with a
            // good copy below; the returned graph is the deterministic
            // synthesis result either way. (A plain miss skips this
            // branch silently: that's just a cold cache.)
            GGA_WARN("graph snapshot rejected, resynthesizing: ",
                     err.what());
        }
    }
    auto built =
        std::make_shared<const CsrGraph>(generateGraph(spec, threads));
    if (!snap_path.empty()) {
        try {
            saveCsrSnapshot(snap_path, *built);
        } catch (const SnapshotError& err) {
            // Best effort: a read-only or full cache directory must not
            // fail the run that synthesized the graph successfully.
            GGA_WARN("cannot write graph snapshot: ", err.what());
        }
    }
    return built;
}

GraphStore::GraphPtr
GraphStore::getOrBuild(const Key& key)
{
    std::promise<GraphPtr> promise;
    std::shared_future<GraphPtr> future;
    bool builder = false;
    std::uint64_t build_id = 0;
    std::string cache_dir;
    unsigned build_threads = 0;
    {
        MutexLock lock(mu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            builder = true;
            ++misses_;
            build_id = ++useTick_;
            future = promise.get_future().share();
            cache_.emplace(key, Slot{future, 0, build_id, build_id, false});
            // Snapshot of the knobs this build runs under: the build
            // happens outside the lock, and a concurrent setCacheDir /
            // setBuildThreads must not race it.
            cache_dir = cacheDir_;
            build_threads = buildThreads_;
        } else {
            ++hits_;
            it->second.lastUse = ++useTick_;
            future = it->second.future;
        }
    }
    if (builder) {
        // Build outside the lock so distinct keys build concurrently;
        // waiters for this key block on the shared future instead.
        try {
            GraphPtr built;
            if (!key.path.empty()) {
                // Weights attached so the file path serves weighted apps
                // (SSSP) exactly like the presets do.
                built = std::make_shared<const CsrGraph>(
                    readMatrixMarketFile(key.path, /*with_weights=*/true));
            } else {
                built = buildPreset(key, cache_dir, build_threads);
            }
            {
                MutexLock lock(mu_);
                auto it = cache_.find(key);
                // Account only the slot this build inserted: an evict()
                // racing the build may have dropped it (and a later get()
                // re-inserted a different build's slot).
                if (it != cache_.end() && it->second.id == build_id) {
                    it->second.bytes = built->memoryBytes();
                    it->second.ready = true;
                    totalBytes_ += it->second.bytes;
                    enforceBudgetLocked();
                }
            }
            promise.set_value(std::move(built));
        } catch (...) {
            // Don't poison the cache slot: drop it so the next get()
            // retries, and propagate the failure to current waiters.
            {
                MutexLock lock(mu_);
                auto it = cache_.find(key);
                if (it != cache_.end() && it->second.id == build_id)
                    cache_.erase(it);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    return future.get();
}

void
GraphStore::enforceBudgetLocked()
{
    if (budgetBytes_ == 0)
        return;
    while (totalBytes_ > budgetBytes_) {
        // Find the least-recently-used *completed* entry. In-flight
        // builds are skipped (their waiters hold the shared future), and
        // so is the sole remaining candidate when everything else is
        // gone — a budget smaller than one graph still keeps the current
        // one.
        auto victim = cache_.end();
        std::size_t candidates = 0;
        for (auto it = cache_.begin(); it != cache_.end(); ++it) {
            if (!it->second.ready || it->second.bytes == 0)
                continue;
            ++candidates;
            if (victim == cache_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == cache_.end() || candidates <= 1)
            return;
        totalBytes_ -= victim->second.bytes;
        ++evictions_;
        cache_.erase(victim);
    }
}

bool
GraphStore::evictSlotLocked(const Key& key)
{
    auto it = cache_.find(key);
    if (it == cache_.end())
        return false;
    if (it->second.ready) {
        totalBytes_ -= it->second.bytes;
        ++evictions_;
    }
    cache_.erase(it);
    return true;
}

bool
GraphStore::evict(GraphPreset p, double scale)
{
    MutexLock lock(mu_);
    return evictSlotLocked(Key{p, quantizeScale(scale), {}});
}

bool
GraphStore::evictFile(const std::string& path)
{
    MutexLock lock(mu_);
    return evictSlotLocked(Key{GraphPreset::Amz, kScaleUnits, path});
}

void
GraphStore::clear()
{
    MutexLock lock(mu_);
    for (const auto& [key, slot] : cache_) {
        (void)key;
        if (slot.ready)
            ++evictions_;
    }
    cache_.clear();
    totalBytes_ = 0;
}

std::size_t
GraphStore::size() const
{
    MutexLock lock(mu_);
    return cache_.size();
}

void
GraphStore::setBudgetBytes(std::size_t bytes)
{
    MutexLock lock(mu_);
    budgetBytes_ = bytes;
    enforceBudgetLocked();
}

void
GraphStore::setCacheDir(std::string dir)
{
    MutexLock lock(mu_);
    cacheDir_ = std::move(dir);
}

std::string
GraphStore::cacheDir() const
{
    MutexLock lock(mu_);
    return cacheDir_;
}

void
GraphStore::setBuildThreads(unsigned threads)
{
    MutexLock lock(mu_);
    buildThreads_ = threads;
}

std::size_t
GraphStore::budgetBytes() const
{
    MutexLock lock(mu_);
    return budgetBytes_;
}

std::size_t
GraphStore::totalBytes() const
{
    MutexLock lock(mu_);
    return totalBytes_;
}

GraphStore::Counters
GraphStore::counters() const
{
    MutexLock lock(mu_);
    Counters c;
    c.hits = hits_;
    c.misses = misses_;
    c.evictions = evictions_;
    c.entries = cache_.size();
    c.residentBytes = totalBytes_;
    c.budgetBytes = budgetBytes_;
    return c;
}

std::vector<GraphStore::EntryStats>
GraphStore::stats() const
{
    struct Row
    {
        EntryStats stats;
        std::uint64_t lastUse;
    };
    std::vector<Row> rows;
    {
        MutexLock lock(mu_);
        rows.reserve(cache_.size());
        for (const auto& [key, slot] : cache_) {
            EntryStats e;
            if (key.path.empty()) {
                e.name = presetName(key.preset);
                e.scale = static_cast<double>(key.scaleUnits) /
                          static_cast<double>(kScaleUnits);
            } else {
                e.name = key.path;
                e.scale = 1.0;
            }
            e.bytes = slot.ready ? slot.bytes : 0;
            rows.push_back({std::move(e), slot.lastUse});
        }
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.lastUse > b.lastUse; });
    std::vector<EntryStats> out;
    out.reserve(rows.size());
    for (Row& r : rows)
        out.push_back(std::move(r.stats));
    return out;
}

} // namespace gga
