#include "api/graph_store.hpp"

#include <cmath>

#include "support/log.hpp"

namespace gga {

constexpr std::int64_t kScaleUnits = 1000000; // 1.0 in micro-units

GraphStore&
GraphStore::instance()
{
    static GraphStore store;
    return store;
}

std::int64_t
GraphStore::quantizeScale(double scale)
{
    return std::llround(scale * static_cast<double>(kScaleUnits));
}

GraphStore::GraphPtr
GraphStore::get(GraphPreset p, double scale)
{
    GGA_ASSERT(scale > 0.0 && scale <= 1.0,
               "GraphStore scale must be in (0, 1], got ", scale);
    const Key key{p, quantizeScale(scale)};
    GGA_ASSERT(key.second > 0, "scale ", scale, " quantizes to zero; "
               "the minimum representable scale is 5e-7");
    std::promise<GraphPtr> promise;
    std::shared_future<GraphPtr> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            builder = true;
            future = promise.get_future().share();
            cache_.emplace(key, future);
        } else {
            future = it->second;
        }
    }
    if (builder) {
        // Build outside the lock so distinct keys build concurrently;
        // waiters for this key block on the shared future instead.
        try {
            GraphPtr built;
            if (key.second >= kScaleUnits) {
                // Alias the process-wide presetGraph memo so the
                // full-size input exists once no matter the access path;
                // evicting such an entry only drops the alias.
                built = GraphPtr(&presetGraph(p), [](const CsrGraph*) {});
            } else {
                // Build at the quantized scale, not the raw argument, so
                // every double mapping to this key yields the same graph.
                built = std::make_shared<const CsrGraph>(buildPresetScaled(
                    p, static_cast<double>(key.second) /
                           static_cast<double>(kScaleUnits)));
            }
            promise.set_value(std::move(built));
        } catch (...) {
            // Don't poison the cache slot: drop it so the next get()
            // retries, and propagate the failure to current waiters.
            {
                std::lock_guard<std::mutex> lock(mu_);
                cache_.erase(key);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    return future.get();
}

bool
GraphStore::evict(GraphPreset p, double scale)
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.erase(Key{p, quantizeScale(scale)}) > 0;
}

void
GraphStore::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
}

std::size_t
GraphStore::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
}

} // namespace gga
