#include "api/task_pool.hpp"

#include <algorithm>
#include <system_error>

#include "support/log.hpp"

namespace gga {

TaskPool::TaskPool(unsigned threads)
{
    // Hard cap: every task is a whole-workload simulation, so widths
    // beyond this never help, and an unclamped environment value
    // (GGA_SESSION_THREADS=1000000) must not spawn until exhaustion.
    constexpr unsigned kMaxThreads = 512;
    const unsigned width = std::clamp(threads, 1u, kMaxThreads);
    if (threads > kMaxThreads)
        GGA_WARN("TaskPool width ", threads, " clamped to ", kMaxThreads);
    workers_.reserve(width);
    try {
        for (unsigned t = 0; t < width; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    } catch (const std::system_error&) {
        // Out of thread resources: run with what we got rather than
        // dying with joinable threads in a half-built vector. With zero
        // workers there is no pool to salvage — propagate (members are
        // cleaned up normally; no threads exist to join).
        if (workers_.empty())
            throw;
        GGA_WARN("TaskPool spawned ", workers_.size(), " of ", width,
                 " requested workers; continuing at reduced width");
    }
}

TaskPool::~TaskPool()
{
    {
        MutexLock lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
TaskPool::post(std::function<void()> job)
{
    GGA_ASSERT(job, "TaskPool::post requires a callable job");
    {
        MutexLock lock(mu_);
        GGA_ASSERT(!stopping_, "TaskPool::post after shutdown began");
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
}

std::size_t
TaskPool::pending() const
{
    MutexLock lock(mu_);
    return queue_.size();
}

unsigned
TaskPool::active() const
{
    return active_.load(std::memory_order_relaxed);
}

std::uint64_t
TaskPool::completedTotal() const
{
    return completed_.load(std::memory_order_relaxed);
}

std::function<void()>
TaskPool::nextJob()
{
    MutexLock lock(mu_);
    while (!stopping_ && queue_.empty())
        cv_.wait(mu_);
    if (queue_.empty())
        return {}; // stopping, queue drained
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    return job;
}

void
TaskPool::workerLoop()
{
    for (;;) {
        std::function<void()> job = nextJob();
        if (!job)
            return;
        active_.fetch_add(1, std::memory_order_relaxed);
        // A submit() job never throws (packaged_task captures); a raw
        // post() job that throws would terminate, same as std::thread.
        job();
        active_.fetch_sub(1, std::memory_order_relaxed);
        completed_.fetch_add(1, std::memory_order_relaxed);
    }
}

} // namespace gga
